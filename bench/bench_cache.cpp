// Microbenchmarks of the derived-geometry cache (google-benchmark).
//
// The cache's pitch is that a round's derived quantities (classification,
// Weber point, views, safe points) are computed at most once per mutation
// generation.  These benchmarks measure the three regimes that matter:
// cold (first read after a mutation -- the old per-call cost), warm (repeat
// reads under one generation -- the new cost), and the engine-shaped cycle
// of mutate-then-read.  The committed baseline is bench/BENCH_PR4.json
// (--benchmark_format=json of this binary at the PR-4 merge).
#include <benchmark/benchmark.h>

#include <utility>
#include <vector>

#include "config/config.h"
#include "core/core.h"
#include "sim/rng.h"
#include "workloads/generators.h"

namespace {

using namespace gather;

std::vector<geom::vec2> cloud(std::size_t n) {
  sim::rng r(n * 31 + 7);
  return workloads::uniform_random(n, r);
}

/// Touch every cached derived quantity once, the way one simulation round
/// does: classify (quasi-regularity, Weber), safe points, views.
double read_derived(const config::configuration& c) {
  double acc = 0.0;
  const config::classification cls = config::classify(c);
  acc += static_cast<double>(cls.qreg_degree);
  acc += config::weber_point(c).point.x;
  acc += static_cast<double>(config::safe_occupied_points(c).size());
  acc += static_cast<double>(config::symmetry(c));
  return acc;
}

// Cold: every iteration pays construction + one full derived computation.
// This is what every classify()/weber_point() call cost before the cache.
void bm_derived_cold(benchmark::State& state) {
  const auto pts = cloud(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    config::configuration c(pts);
    benchmark::DoNotOptimize(read_derived(c));
  }
}
BENCHMARK(bm_derived_cold)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// Warm: one generation, repeat reads.  Measures the cache-hit path the
// engine takes for its second and later reads of the same round.
void bm_derived_warm(benchmark::State& state) {
  const config::configuration c(cloud(static_cast<std::size_t>(state.range(0))));
  benchmark::DoNotOptimize(read_derived(c));  // fill the slots once
  for (auto _ : state) {
    benchmark::DoNotOptimize(read_derived(c));
  }
}
BENCHMARK(bm_derived_warm)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// The engine-shaped cycle: perturb one robot, recanonicalize in place via
// apply_moves (allocation-free steady state), read the derived quantities.
void bm_mutate_then_read(benchmark::State& state) {
  auto pts = cloud(static_cast<std::size_t>(state.range(0)));
  config::configuration c(pts);
  double nudge = 1e-7;
  for (auto _ : state) {
    pts[0].x += nudge;
    nudge = -nudge;
    c.apply_moves(pts);
    benchmark::DoNotOptimize(read_derived(c));
  }
}
BENCHMARK(bm_mutate_then_read)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// The bitwise no-op fast path: apply_moves with unchanged input keeps the
// generation and the warm cache.
void bm_apply_moves_unchanged(benchmark::State& state) {
  const auto pts = cloud(static_cast<std::size_t>(state.range(0)));
  config::configuration c(pts);
  benchmark::DoNotOptimize(read_derived(c));
  for (auto _ : state) {
    c.apply_moves(pts);
    benchmark::DoNotOptimize(config::classify(c).qreg_degree);
  }
}
BENCHMARK(bm_apply_moves_unchanged)->Arg(8)->Arg(64)->Arg(512);

// Rebuild-from-scratch reference for the same input sizes, so the in-place
// apply_moves path can be compared against constructing a configuration.
void bm_rebuild_reference(benchmark::State& state) {
  const auto pts = cloud(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    config::configuration c(pts);
    benchmark::DoNotOptimize(config::classify(c).qreg_degree);
  }
}
BENCHMARK(bm_rebuild_reference)->Arg(8)->Arg(64)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
