// Experiment E8 -- ablations of the algorithm's design ingredients.
//
// Three constructed adversarial scenarios, each run with the full algorithm
// and with one ingredient removed:
//   1. side-step rule (M case):     a magnet adversary parks charging robots
//                                   on a blocker -> bivalent trap;
//   2. safe-point filter (A case):  electing an unsafe leader lets the same
//                                   magnet adversary split the swarm 50/50;
//   3. chirality view tie-break:    an axially symmetric swarm splits towards
//                                   mirror-twin leaders.
// The full algorithm gathers in all three scenarios; each ablation fails in
// exactly the way the paper's design discussion predicts.
#include <cstdio>

#include "ablated_algorithms.h"
#include "core/wait_free_gather.h"
#include "harness.h"

namespace {

using namespace gather;

void run_pair(const char* scenario, const std::vector<geom::vec2>& pts,
              const core::gathering_algorithm& full,
              const core::gathering_algorithm& ablated,
              sim::movement_adversary& movement) {
  auto once = [&](const core::gathering_algorithm& algo) {
    auto sched = sim::make_synchronous();
    auto crash = sim::make_no_crash();
    sim::sim_options opts;
    opts.max_rounds = 2'000;
    opts.check_wait_freeness = true;
    return bench::run_pieces(pts, algo, *sched, movement, *crash, opts);
  };
  const auto res_full = once(full);
  const auto res_abl = once(ablated);
  const auto show = [&](const char* which, std::string_view name,
                        const sim::sim_result& r) {
    std::printf("  %-8s %-20s %-16s rounds=%-6zu bivalent-entries=%zu\n", which,
                std::string(name).c_str(),
                std::string(sim::to_string(r.status)).c_str(), r.rounds,
                r.bivalent_entries);
  };
  std::printf("%s\n", scenario);
  std::printf("  initial class: %s\n",
              std::string(config::to_string(
                  config::classify(config::configuration(pts)).cls)).c_str());
  show("full", full.name(), res_full);
  show("ablated", ablated.name(), res_abl);
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("E8: ablations -- removing one ingredient breaks gathering\n\n");

  const core::wait_free_gather full;

  // 1. Side-step: target (0,0) holds 3 robots; a blocker at (2,0) sits in
  // front of four chargers.  The magnet parks path-crossers on the blocker's
  // position: without side-steps the blocker walks in (4 at the target) while
  // all four chargers pile up at (2,0) -- the bivalent 4-vs-4 trap.
  {
    const std::vector<geom::vec2> pts = {{0, 0}, {0, 0}, {0, 0},  {2, 0},
                                         {4, 0}, {6, 0}, {8, 0}, {10, 0}};
    bench::no_side_step_gather ablated;
    bench::magnet_stop magnet({2, 0});
    run_pair("scenario 1: M-case blockers + magnet adversary", pts, full,
             ablated, magnet);
  }

  // 2. Safe points: (0,0) and (-3,4) both have multiplicity 2, but (0,0)
  // carries four robots on one outgoing ray (unsafe; ceil(8/2) = 4).  The
  // ablated election prefers (0,0) (smaller sum of distances); the magnet at
  // (0.5,0) then catches all four ray robots while both (-3,4) robots reach
  // the leader: 4-vs-4.  The full algorithm elects the *safe* (-3,4) instead.
  {
    const std::vector<geom::vec2> pts = {{0, 0}, {0, 0}, {1, 0}, {2, 0},
                                         {3, 0}, {4, 0}, {-3, 4}, {-3, 4}};
    bench::unsafe_election_gather ablated;
    bench::magnet_stop magnet({0.5, 0});
    run_pair("scenario 2: unsafe leader + magnet adversary", pts, full, ablated,
             magnet);
  }

  // 3. Chirality: a mirror-symmetric swarm.  The view tie-break (clockwise
  // reading) elects one of the two twins for everybody; breaking ties by
  // proximity instead splits the swarm down the axis.
  {
    const std::vector<geom::vec2> pts = {{1, 0},    {-1, 0},  {2, 1.5},
                                         {-2, 1.5}, {0.8, -2}, {-0.8, -2}};
    bench::proximity_tiebreak_gather ablated;
    auto move = sim::make_full_movement();
    run_pair("scenario 3: axial symmetry without the chirality tie-break", pts,
             full, ablated, *move);
  }

  std::printf(
      "Paper's claims: the side-step rule preserves the unique maximum\n"
      "multiplicity (proof of Lemma 5.3, claim C1); leaders must be safe\n"
      "points or B becomes reachable (Lemma 4.3 / Lemma 5.6 C1); chirality\n"
      "is what disambiguates mirror-symmetric views (Sec. I).\n");
  return 0;
}
