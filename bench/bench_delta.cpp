// Experiment E6 -- sensitivity to the movement guarantee delta (Sec. II).
//
// The model promises only that an interrupted robot covers at least delta.
// Sweeps delta (as a fraction of the initial diameter) against the three
// movement adversaries and reports the median rounds to gather.  Expectation:
// rounds scale roughly with 1/delta under the minimal-movement adversary and
// are essentially flat under full movement (delta then only matters for the
// final approach).
#include <cstdio>

#include "core/wait_free_gather.h"
#include "harness.h"
#include "workloads/generators.h"

int main() {
  using namespace gather;
  const core::wait_free_gather algo;
  const std::size_t n = 8;
  const int seeds = 8;

  std::printf("E6: rounds-to-gather vs delta (n=%zu, f=2, fair-random scheduler)\n\n",
              n);
  std::printf("%8s |", "delta");
  for (const auto& move : sim::all_movements()) {
    std::printf(" %12s", std::string(move.name).c_str());
  }
  std::printf("\n");
  bench::print_rule(50);

  for (double delta : {0.5, 0.2, 0.1, 0.05, 0.02, 0.01}) {
    std::printf("%8.2f |", delta);
    for (const auto& move : sim::all_movements()) {
      bench::cell_stats stats;
      for (int seed = 0; seed < seeds; ++seed) {
        sim::rng r(6200 + seed);
        const auto pts = workloads::uniform_random(n, r);
        auto s = sim::make_fair_random();
        auto m = move.make();
        auto c = sim::make_random_crashes(2, 30);
        sim::sim_options opts;
        opts.seed = 500 + seed;
        opts.delta_fraction = delta;
        stats.add(bench::run_pieces(pts, algo, *s, *m, *c, opts));
      }
      // success_rate() is k/n with integer k, n; exactly 1.0 iff k == n.
      if (stats.success_rate() == 1.0) {  // gather-lint: allow(R3)
        std::printf(" %12zu", stats.median_rounds());
      } else {
        std::printf(" %11.0f%%", 100.0 * stats.success_rate());
      }
    }
    std::printf("\n");
  }

  std::printf("\nPaper's model: gathering terminates for every delta > 0; the\n"
              "adversary can only stretch the round count (inversely in delta\n"
              "for the minimal-movement adversary), never prevent gathering.\n");
  return 0;
}
