// Experiment E9 (extension) -- the ATOM/ASYNC model boundary.
//
// The paper proves WAIT-FREE-GATHER correct in the ATOM model only.  This
// experiment runs the same algorithm in the asynchronous (CORDA-style)
// engine, where Look and Move decouple and robots can move on stale
// snapshots, sweeping interleaving hostility and crash counts.  Reported per
// cell: success rate, median completed Look-Move cycles, and how many moves
// executed against stale snapshots.  Expectation: the sequential policy is
// exactly ATOM (100%); random interleaving succeeds on generic instances
// despite heavy staleness; the look-all-move-all sweep is the adversarial
// frontier where failures concentrate.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/wait_free_gather.h"
#include "harness.h"
#include "workloads/generators.h"

int main() {
  using namespace gather;
  const core::wait_free_gather algo;
  const int seeds = 12;
  const std::size_t n = 7;

  std::printf("E9 (extension): WAIT-FREE-GATHER beyond ATOM, n=%zu, %d seeds\n\n",
              n, seeds);
  std::printf("%-22s %3s | %9s %10s %12s\n", "interleaving", "f", "success",
              "med.cycles", "stale moves");
  bench::print_rule(66);

  for (const sim::async_policy policy :
       {sim::async_policy::atomic_sequential,
        sim::async_policy::random_interleaving,
        sim::async_policy::look_all_move_all}) {
    for (std::size_t f : {std::size_t{0}, std::size_t{2}, n - 1}) {
      int ok = 0;
      std::vector<std::size_t> cycles;
      std::size_t stale = 0;
      for (int seed = 0; seed < seeds; ++seed) {
        sim::rng r(40'000 + seed);
        auto move = sim::make_random_stop();
        auto crash = f == 0 ? sim::make_no_crash() : sim::make_random_crashes(f, 60);
        sim::async_options opts;
        opts.policy = policy;
        opts.seed = 9'000 + seed;
        const auto res = bench::run_async_pieces(workloads::uniform_random(n, r), algo,
                                             *move, *crash, opts);
        stale += res.stale_moves;
        if (res.status == sim::sim_status::gathered) {
          ok++;
          cycles.push_back(res.cycles);
        }
      }
      std::sort(cycles.begin(), cycles.end());
      std::printf("%-22s %3zu | %8.0f%% %10zu %12zu\n",
                  std::string(sim::to_string(policy)).c_str(), f,
                  100.0 * ok / seeds,
                  cycles.empty() ? 0 : cycles[cycles.size() / 2],
                  stale / seeds);
    }
    bench::print_rule(66);
  }

  std::printf(
      "\nInterpretation: the paper's correctness proof needs Look-Compute-Move\n"
      "atomicity; the sequential policy reproduces it exactly (zero stale\n"
      "moves).  Empirically the algorithm also tolerates heavy random\n"
      "asynchrony on generic instances -- extending the proof to ASYNC is the\n"
      "natural follow-up work the data motivates.\n");
  return 0;
}
