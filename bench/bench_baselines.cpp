// Experiment E4 -- baseline comparison (the introduction's motivation and
// Lemma 5.1).
//
// Compares WAIT-FREE-GATHER against (a) the gravitational/center-of-gravity
// convergence algorithm, (b) an Agmon-Peleg-style 1-crash-tolerant
// algorithm, and (c) numeric geometric-median pursuit, across crash counts
// f in {0, 1, 2, n/2}.  For the single-fault baseline the crash schedule is
// adversarial (it kills the designated movers); for the others crashes are
// random.  Reported per (algorithm, f): gathering success rate, convergence
// rate (final live spread < 1% of the initial), and median rounds.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "baselines/baselines.h"
#include "core/wait_free_gather.h"
#include "harness.h"
#include "workloads/generators.h"

namespace {

using namespace gather;

// Crash the two designated movers of the single-fault baseline (the two
// occupied locations closest to the sec center) at round 0.
std::unique_ptr<sim::crash_policy> mover_crashes(const std::vector<geom::vec2>& pts,
                                                 std::size_t f) {
  const config::configuration c(pts);
  const geom::vec2 goal = c.sec().center;
  std::vector<std::pair<double, std::size_t>> byd;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    byd.emplace_back(geom::distance(pts[i], goal), i);
  }
  std::sort(byd.begin(), byd.end());
  std::vector<std::pair<std::size_t, std::size_t>> events;
  for (std::size_t k = 0; k < std::min(f, pts.size() - 1); ++k) {
    events.push_back({0, byd[k].second});
  }
  return sim::make_scheduled_crashes(std::move(events));
}

}  // namespace

int main() {
  const std::size_t n = 8;
  const int seeds = 10;
  const std::size_t budget = 3'000;

  const core::wait_free_gather wfg;
  const baselines::center_of_gravity cog;
  const baselines::single_fault_gather sfg;
  const baselines::median_pursuit mp;
  const core::gathering_algorithm* algos[] = {&wfg, &sfg, &cog, &mp};

  std::printf("E4: baseline comparison, n=%zu, %d seeds, adversarial crashes "
              "for the 1-crash baseline\n\n", n, seeds);
  std::printf("%-18s %3s | %9s %10s %11s %8s\n", "algorithm", "f", "gathered",
              "converged", "mult.point", "med.rnd");
  bench::print_rule(70);

  for (const core::gathering_algorithm* algo : algos) {
    for (std::size_t f : {std::size_t{0}, std::size_t{1}, std::size_t{2}, n / 2}) {
      bench::cell_stats stats;
      int converged = 0;
      int mult_formed = 0;
      for (int seed = 0; seed < seeds; ++seed) {
        sim::rng r(9100 + seed);
        const auto pts = workloads::uniform_random(n, r);
        auto sched = sim::make_fair_random();
        auto move = sim::make_random_stop();
        auto crash = (algo == &sfg) ? mover_crashes(pts, f)
                                    : sim::make_random_crashes(f, 30);
        sim::sim_options opts;
        opts.seed = 77 + seed;
        opts.max_rounds = budget;
        opts.record_trace = true;
        const auto res = bench::run_pieces(pts, *algo, *sched, *move, *crash, opts);
        stats.add(res);
        if (sim::live_spread(res.final_positions, res.final_live) <
            0.01 * sim::spread(pts)) {
          ++converged;
        }
        // Did a *stationary* multiplicity point form while the swarm was
        // still spread out -- a location holding >= 2 live robots that the
        // algorithm instructs to stay?  Exact gathering deliberately builds
        // and holds one (the paper's "point of multiplicity" technique);
        // gravitational convergence only produces transient stacks that chase
        // the moving centroid.
        const double spread0 = sim::spread(pts);
        for (const auto& rec : res.trace) {
          if (sim::live_spread(rec.positions, rec.live) < 0.05 * spread0) break;
          const config::configuration c(rec.positions);
          bool found = false;
          for (std::size_t i = 0; i < rec.positions.size() && !found; ++i) {
            if (!rec.live[i]) continue;
            const geom::vec2 p = c.snapped(rec.positions[i]);
            if (c.multiplicity(p) < 2) continue;
            const geom::vec2 d = algo->destination({c, p});
            found = c.tolerance().same_point(d, p);
          }
          if (found) {
            ++mult_formed;
            break;
          }
        }
      }
      std::printf("%-18s %3zu | %8.0f%% %9.0f%% %10.0f%% %8zu\n",
                  std::string(algo->name()).c_str(), f,
                  100.0 * stats.success_rate(), 100.0 * converged / seeds,
                  100.0 * mult_formed / seeds, stats.median_rounds());
    }
    bench::print_rule(70);
  }

  std::printf(
      "\nPaper's claims reproduced here:\n"
      "  * wait-free-gather: gathers at every f (Theorem 5.1), by building a\n"
      "    multiplicity point early (mult.point column);\n"
      "  * single-fault baseline: fine at f<=1, deadlocks at f>=2 (Sec. I);\n"
      "  * center-of-gravity: only converges -- no stationary multiplicity point\n"
      "    ever forms (mult.point 0%%); its 'gathered' entries are finite-precision\n"
      "    collapse below the 1e-9 tolerance (note the order-of-magnitude round\n"
      "    gap), which in the paper's real-plane model is convergence, not\n"
      "    gathering;\n"
      "  * median pursuit is the oracle the paper alludes to (Sec. I): *if* the\n"
      "    Weber point were computable, gathering would be trivial -- here a\n"
      "    numerical oracle stands in, which no real robot algorithm has.\n");
  return 0;
}
