// Observability overhead microbenchmarks (google-benchmark).
//
// The acceptance bar for the obs layer is "free when off": a full engine run
// with no sink/registry attached must cost the same as before the layer
// existed, and GATHER_PROF with no active prof_session must be a single
// thread-local load plus an untaken branch.  These benchmarks pin both the
// off-path and the on-path costs so regressions show up as numbers, not
// vibes.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/core.h"
#include "obs/obs.h"
#include "sim/sim.h"
#include "workloads/generators.h"

namespace {

using namespace gather;

sim::sim_spec make_spec(std::vector<geom::vec2>& pts,
                        const core::gathering_algorithm& algo,
                        sim::activation_scheduler& sched,
                        sim::movement_adversary& move,
                        sim::crash_policy& crash) {
  sim::sim_spec s;
  s.initial = pts;
  s.algorithm = &algo;
  s.scheduler = &sched;
  s.movement = &move;
  s.crash = &crash;
  s.options.seed = 42;
  s.options.max_rounds = 5'000;
  return s;
}

/// Full ATOM run, no observability attached (the default path).
void bm_engine_null_observer(benchmark::State& state) {
  sim::rng r(17);
  auto pts = workloads::uniform_random(static_cast<std::size_t>(state.range(0)), r);
  const core::wait_free_gather algo;
  for (auto _ : state) {
    auto sched = sim::make_fair_random();
    auto move = sim::make_full_movement();
    auto crash = sim::make_no_crash();
    auto s = make_spec(pts, algo, *sched, *move, *crash);
    benchmark::DoNotOptimize(sim::run(s).rounds);
  }
}
BENCHMARK(bm_engine_null_observer)->Arg(8)->Arg(32);

/// Same run with JSONL sink + metrics registry + profiler all attached.
void bm_engine_full_observer(benchmark::State& state) {
  sim::rng r(17);
  auto pts = workloads::uniform_random(static_cast<std::size_t>(state.range(0)), r);
  const core::wait_free_gather algo;
  for (auto _ : state) {
    auto sched = sim::make_fair_random();
    auto move = sim::make_full_movement();
    auto crash = sim::make_no_crash();
    std::string trace;
    obs::jsonl_string_sink sink(&trace);
    obs::metrics_registry metrics;
    obs::prof_registry prof;
    auto s = make_spec(pts, algo, *sched, *move, *crash);
    s.sink = &sink;
    s.metrics = &metrics;
    s.profile = &prof;
    benchmark::DoNotOptimize(sim::run(s).rounds);
    benchmark::DoNotOptimize(trace.size());
  }
}
BENCHMARK(bm_engine_full_observer)->Arg(8)->Arg(32);

/// GATHER_PROF with no session: thread-local load + untaken branch.
void bm_prof_disabled(benchmark::State& state) {
  for (auto _ : state) {
    GATHER_PROF("bench.noop");
    benchmark::DoNotOptimize(obs::current_prof());
  }
}
BENCHMARK(bm_prof_disabled);

/// GATHER_PROF with an active session: two clock reads + map upsert.
void bm_prof_enabled(benchmark::State& state) {
  obs::prof_registry prof;
  obs::prof_session session(&prof);
  for (auto _ : state) {
    GATHER_PROF("bench.noop");
    benchmark::DoNotOptimize(obs::current_prof());
  }
}
BENCHMARK(bm_prof_enabled);

/// Registry counter bump through a cached reference (the engine's pattern).
void bm_counter_cached_ref(benchmark::State& state) {
  obs::metrics_registry reg;
  std::uint64_t& c = reg.counter("bench.counter");
  for (auto _ : state) {
    ++c;
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(bm_counter_cached_ref);

/// Histogram observe across its bucket range.
void bm_histogram_observe(benchmark::State& state) {
  obs::metrics_registry reg;
  obs::histogram& h = reg.hist("bench.hist", obs::pow2_bounds(10));
  double v = 1.0;
  for (auto _ : state) {
    h.observe(v);
    v = v >= 512.0 ? 1.0 : v * 2.0;
    benchmark::DoNotOptimize(h.count());
  }
}
BENCHMARK(bm_histogram_observe);

/// One event rendered to JSONL (string append path of the sink).
void bm_event_to_jsonl(benchmark::State& state) {
  std::string line;
  const obs::event e = obs::event::move_truncated(3, 42, 5, 1.25, 0.5);
  for (auto _ : state) {
    line.clear();
    obs::append_jsonl(line, e);
    benchmark::DoNotOptimize(line.size());
  }
}
BENCHMARK(bm_event_to_jsonl);

/// Registry merge of two populated registries (campaign fold path).
void bm_registry_merge(benchmark::State& state) {
  obs::metrics_registry a;
  a.counter("x") = 3;
  a.gauge("g") = 0.5;
  a.hist("h", obs::pow2_bounds(8)).observe(17.0);
  for (auto _ : state) {
    obs::metrics_registry into;
    into.merge(a);
    into.merge(a);
    benchmark::DoNotOptimize(into.counters().size());
  }
}
BENCHMARK(bm_registry_merge);

}  // namespace

BENCHMARK_MAIN();
