// Experiment E11 -- round-complexity scaling.
//
// The paper proves termination but gives no explicit round bound.  This
// experiment measures how the rounds-to-gather grow with the swarm size n,
// per scheduler, at fixed delta, on uniform-random (class A) instances and on
// majority (class M) instances.  Expected shape: roughly linear in n for the
// one-robot-per-round schedulers (round-robin, laggard) and near-constant in
// n (set by 1/delta) for the synchronous scheduler.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/wait_free_gather.h"
#include "harness.h"
#include "workloads/generators.h"

int main() {
  using namespace gather;
  const core::wait_free_gather algo;
  const int seeds = 5;

  for (const char* family : {"uniform", "majority"}) {
    std::printf("E11: median rounds to gather vs n  (workload: %s, delta 5%%)\n\n",
                family);
    std::printf("%6s |", "n");
    for (const auto& sched : sim::all_schedulers()) {
      std::printf(" %16s", std::string(sched.name).c_str());
    }
    std::printf("\n");
    bench::print_rule(95);
    for (std::size_t n : {4u, 8u, 16u, 32u, 64u}) {
      std::printf("%6zu |", n);
      for (const auto& sched : sim::all_schedulers()) {
        std::vector<std::size_t> rounds;
        for (int seed = 0; seed < seeds; ++seed) {
          sim::rng r(80'000 + 131 * seed + n);
          const auto pts = family[0] == 'u'
                               ? workloads::uniform_random(n, r)
                               : workloads::with_majority(n, n / 3, r);
          auto s = sched.make();
          auto m = sim::make_full_movement();
          auto c = sim::make_no_crash();
          sim::sim_options opts;
          opts.seed = 90'000 + seed;
          const auto res = bench::run_pieces(pts, algo, *s, *m, *c, opts);
          if (res.status == sim::sim_status::gathered) rounds.push_back(res.rounds);
        }
        std::sort(rounds.begin(), rounds.end());
        if (rounds.size() == static_cast<std::size_t>(seeds)) {
          std::printf(" %16zu", rounds[rounds.size() / 2]);
        } else {
          std::printf(" %13zu/%zu", rounds.size(), static_cast<std::size_t>(seeds));
        }
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("Reading: one-robot-per-round schedulers scale linearly in n;\n"
              "synchronous rounds are set by the geometry, not the swarm size.\n");
  return 0;
}
