// Experiment E11 -- round-complexity scaling -- plus the PR 5 view-pipeline
// phase-scaling study.
//
// Part 1 (default): the paper proves termination but gives no explicit round
// bound, so this experiment measures how the rounds-to-gather grow with the
// swarm size n, per scheduler, at fixed delta, on uniform-random (class A)
// and majority (class M) instances.  Expected shape: roughly linear in n for
// the one-robot-per-round schedulers (round-robin, laggard) and
// near-constant in n (set by 1/delta) for the synchronous scheduler.
//
// Part 2: config-calculus phase scaling for n up to 512.  Each phase of the
// view pipeline (all_views, view_classes, symmetry) is timed against the
// pre-subquadratic reference oracle kept in views_reference.cpp, a log-log
// slope is fitted per phase, and GATHER_PROF call counters are captured on a
// small fixed grid.  --json PATH writes the machine-readable results
// (schema gather-bench-scaling-v1; committed baseline: bench/BENCH_PR5.json,
// compared by tools/bench/compare.py under the `bench-smoke` ctest label).
//
// Part 3 (PR 9): round-phase cost of the delta-aware mutation API.  At fixed
// n = 10^4 isolated singletons under the engines' refreshed-tolerance policy,
// one round moves k in {1, sqrt(n), n} robots and the hinted
// apply_moves(raw, mask) recanonicalization is timed against a cold rebuild
// of the same input.  The JSON phase is "round_update" with the point key
// holding k (not n); its committed baseline is bench/BENCH_PR9.json, gated
// by the `bench_smoke_incremental` ctest.  The fitted slope uses only the
// k >= sqrt(n) segment: below that the honest O(n) floors (the hint-mask
// walk and the per-round refreshed-tolerance bounds check) dominate and the
// curve is deliberately flat.
//
// Part 4 (PR 10): batch-kernel phases.  "fill" times the bulk all-view fill
// (shared SoA distance table + SIMD angle/key kernels + sharded emission)
// against fill_all_view_slots_reference on a *warm* derived pool -- the pool
// is grow-only, so after the first fill each rep only resets the ready flags
// and re-fills, which is exactly the per-round regime of the engines.
// "qr_scan" times the Lemma 3.4 quasi-regularity test over every occupied
// center (divisor-driven candidates + companion prefilter) against the
// O(n^2) per-candidate reference; the reference is ~n^3.5 end to end, so it
// is capped at a small n in full mode.  "round_class_a" is a single
// end-to-end point: construct + classify a class-A (uniform-random) instance
// at n = 10^4 cold, the full per-round decision cost at the paper's largest
// advertised swarm size.  Committed baseline: bench/BENCH_PR10.json, gated
// by the `bench_smoke_kernels` ctest.
//
// Flags: --smoke   small phase grid, skip the (slow) E11 simulations
//        --json P  write results as JSON to P
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "config/classify.h"
#include "config/configuration.h"
#include "config/derived.h"
#include "config/regularity.h"
#include "config/views.h"
#include "core/wait_free_gather.h"
#include "harness.h"
#include "obs/profile.h"
#include "workloads/generators.h"

namespace {

using namespace gather;

std::size_t g_sink = 0;  // keeps timed results observable

/// Median wall time of `fn(c)` over `reps` fresh configurations built from
/// `pts`.  The configuration is constructed outside the clock: its SEC /
/// canonicalization cost is identical shared work on the fast and reference
/// sides, and each rep starts with a cold derived-geometry cache, so the
/// sample times exactly one pipeline phase.
template <typename Fn>
std::uint64_t median_ns(int reps, const std::vector<geom::vec2>& pts, Fn&& fn) {
  std::vector<std::uint64_t> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int rep = 0; rep < reps; ++rep) {
    const config::configuration c(pts);
    g_sink += static_cast<std::size_t>(c.sec().radius > 0.0);  // canonicalize
    const auto t0 = std::chrono::steady_clock::now();
    fn(c);
    const auto t1 = std::chrono::steady_clock::now();
    samples.push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

struct phase_point {
  std::size_t n = 0;
  std::uint64_t fast_ns = 0;
  std::uint64_t ref_ns = 0;  // 0 when the reference was not run at this n
};

struct phase_result {
  std::string name;
  std::vector<phase_point> points;
  double slope = 0.0;  // log-log slope of fast_ns vs n
};

/// Least-squares slope of ln(t) against ln(n).
double loglog_slope(const std::vector<phase_point>& pts) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int m = 0;
  for (const phase_point& p : pts) {
    if (p.fast_ns == 0) continue;
    const double x = std::log(static_cast<double>(p.n));
    const double y = std::log(static_cast<double>(p.fast_ns));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++m;
  }
  if (m < 2) return 0.0;
  const double denom = m * sxx - sx * sx;
  return denom > 0.0 ? (m * sxy - sx * sy) / denom : 0.0;
}

std::vector<geom::vec2> phase_workload(std::size_t n) {
  sim::rng r(70'000 + n);
  return workloads::uniform_random(n, r);
}

/// Times the three view-pipeline phases, fast vs reference, on one shared
/// deterministic workload per n.
std::vector<phase_result> run_phase_scaling(const std::vector<std::size_t>& ns,
                                            std::size_t max_ref_n) {
  phase_result views{"views", {}, 0.0};
  phase_result classes{"classes", {}, 0.0};
  phase_result symmetry{"symmetry", {}, 0.0};

  for (std::size_t n : ns) {
    const std::vector<geom::vec2> pts = phase_workload(n);
    const bool run_ref = n <= max_ref_n;
    const int fast_reps = n <= 128 ? 9 : 5;
    const int ref_reps = n <= 64 ? 5 : 3;

    // Phase 1: views of every occupied location on a cold derived cache
    // (shared pairwise-distance table + run-emission builds vs the
    // re-cluster-per-entry reference oracle).
    phase_point pv{n, 0, 0};
    pv.fast_ns = median_ns(fast_reps, pts, [&](const config::configuration& c) {
      g_sink += config::all_views(c).size();
    });
    if (run_ref) {
      pv.ref_ns = median_ns(ref_reps, pts, [&](const config::configuration& c) {
        g_sink += config::detail::all_views_reference(c).size();
      });
    }
    views.points.push_back(pv);

    // Phase 2: view classification end to end on a cold derived cache --
    // what the old pipeline did per snapshot (reference views +
    // tolerance-comparator sort) against the fast path (fast views + lazy
    // canonical-key grouping).
    phase_point pc{n, 0, 0};
    pc.fast_ns = median_ns(fast_reps, pts, [&](const config::configuration& c) {
      g_sink += config::view_classes(c).size();
    });
    if (run_ref) {
      pc.ref_ns = median_ns(ref_reps, pts, [&](const config::configuration& c) {
        g_sink += config::detail::view_classes_reference(c).size();
      });
    }
    classes.points.push_back(pc);

    // Phase 3: sym(C) end to end on a cold derived cache (Booth string path
    // vs the old largest-view-class computation).
    phase_point ps{n, 0, 0};
    ps.fast_ns = median_ns(fast_reps, pts, [&](const config::configuration& c) {
      g_sink += static_cast<std::size_t>(config::symmetry(c));
    });
    if (run_ref) {
      ps.ref_ns = median_ns(ref_reps, pts, [&](const config::configuration& c) {
        g_sink +=
            static_cast<std::size_t>(config::detail::symmetry_reference(c));
      });
    }
    symmetry.points.push_back(ps);
  }

  views.slope = loglog_slope(views.points);
  classes.slope = loglog_slope(classes.points);
  symmetry.slope = loglog_slope(symmetry.points);
  return {views, classes, symmetry};
}

/// Jittered sqrt(n) x sqrt(n) lattice with spacing 10: every location is a
/// tolerance-isolated singleton, so sub-cell interior moves stay on the
/// configuration's delta repair path.
std::vector<geom::vec2> round_workload(std::size_t n) {
  const auto side = static_cast<std::size_t>(
      std::llround(std::ceil(std::sqrt(static_cast<double>(n)))));
  sim::rng r(91'000 + n);
  std::vector<geom::vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double col = static_cast<double>(i % side);
    const double row = static_cast<double>(i / side);
    pts.push_back({10.0 * col + r.uniform(-1.0, 1.0),
                   10.0 * row + r.uniform(-1.0, 1.0)});
  }
  return pts;
}

/// k mover indices strictly interior to the lattice (the refreshed-tolerance
/// delta proof is cheapest for movers inside the input bounding box), spread
/// evenly; k == n means everyone moves.
std::vector<std::size_t> round_movers(std::size_t n, std::size_t k) {
  if (k >= n) {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  const auto side = static_cast<std::size_t>(
      std::llround(std::ceil(std::sqrt(static_cast<double>(n)))));
  std::vector<std::size_t> interior;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t col = i % side;
    const std::size_t row = i / side;
    if (col == 0 || row == 0 || col + 1 >= side || (i + side) >= n) continue;
    interior.push_back(i);
  }
  std::vector<std::size_t> movers;
  movers.reserve(k);
  const std::size_t stride = std::max<std::size_t>(interior.size() / k, 1);
  for (std::size_t j = 0; j < interior.size() && movers.size() < k;
       j += stride) {
    movers.push_back(interior[j]);
  }
  return movers;
}

/// Round-phase study: hinted incremental recanonicalization vs cold rebuild
/// at fixed n, k movers per round.  Point key `n` holds k.
phase_result run_round_phase(std::size_t n, bool smoke) {
  phase_result round{"round_update", {}, 0.0};
  const std::vector<geom::vec2> home = round_workload(n);
  const double floor = 1e-12;  // engines run refreshed; any fixed floor works

  for (const std::size_t k :
       {std::size_t{1},
        static_cast<std::size_t>(std::llround(std::sqrt(static_cast<double>(n)))),
        n}) {
    const std::vector<std::size_t> movers = round_movers(n, k);
    const int inc_reps = smoke ? (k <= 1 ? 15 : (k < n ? 9 : 5))
                               : (k <= 1 ? 31 : (k < n ? 15 : 9));
    const int rebuild_reps = smoke ? 3 : 5;
    sim::rng r(92'000 + k);

    std::vector<geom::vec2> raw = home;
    config::configuration inc;
    inc.set_tol_refresh(floor);
    inc.apply_moves(raw);
    std::vector<std::uint8_t> mask(n, 0);

    std::vector<std::uint64_t> samples;
    samples.reserve(static_cast<std::size_t>(inc_reps));
    for (int rep = 0; rep < inc_reps; ++rep) {
      std::fill(mask.begin(), mask.end(), std::uint8_t{0});
      for (const std::size_t i : movers) {
        // Re-jitter about the home cell (no drift): isolation is preserved.
        raw[i] = {home[i].x + r.uniform(-1.0, 1.0),
                  home[i].y + r.uniform(-1.0, 1.0)};
        mask[i] = 1;
      }
      const auto t0 = std::chrono::steady_clock::now();
      const config::mutation_report rep_out = inc.apply_moves(raw, mask);
      const auto t1 = std::chrono::steady_clock::now();
      g_sink += rep_out.moved + inc.distinct_count();
      samples.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()));
    }
    std::sort(samples.begin(), samples.end());

    std::vector<std::uint64_t> rebuilds;
    rebuilds.reserve(static_cast<std::size_t>(rebuild_reps));
    for (int rep = 0; rep < rebuild_reps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      config::configuration fresh;
      fresh.set_tol_refresh(floor);
      fresh.apply_moves(raw);
      const auto t1 = std::chrono::steady_clock::now();
      g_sink += fresh.distinct_count();
      rebuilds.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()));
    }
    std::sort(rebuilds.begin(), rebuilds.end());

    round.points.push_back(
        {k, samples[samples.size() / 2], rebuilds[rebuilds.size() / 2]});
  }

  // Slope over the k >= sqrt(n) segment only (see the file comment).
  const std::vector<phase_point> tail(round.points.begin() + 1,
                                      round.points.end());
  round.slope = loglog_slope(tail);
  return round;
}

void print_round_table(const phase_result& round, std::size_t n) {
  std::printf(
      "PR9: round-phase recanonicalization at n = %zu "
      "(hinted incremental vs cold rebuild)\n\n",
      n);
  std::printf("%10s %14s %14s %10s\n", "k movers", "incr (us)", "rebuild (us)",
              "speedup");
  bench::print_rule(60);
  for (const phase_point& p : round.points) {
    std::printf("%10zu %14.1f %14.1f %9.1fx\n", p.n,
                static_cast<double>(p.fast_ns) / 1e3,
                static_cast<double>(p.ref_ns) / 1e3,
                static_cast<double>(p.ref_ns) /
                    static_cast<double>(p.fast_ns));
  }
  std::printf(
      "%10s log-log slope in k (k >= sqrt(n) segment): %.2f\n\n",
      round.name.c_str(), round.slope);
}

/// Median wall time of `fn(c)` on the *same* configuration, with the view
/// slots invalidated (ready flags cleared, pool kept) before each rep.  One
/// untimed call warms the grow-only pool first, so the sample isolates the
/// fill itself -- no allocation, no canonicalization.
template <typename Fn>
std::uint64_t median_warm_fill_ns(int reps, const config::configuration& c,
                                  Fn&& fn) {
  fn(c);
  std::vector<std::uint64_t> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int rep = 0; rep < reps; ++rep) {
    // Deliberate cache poke: re-timing the fill requires invalidating the
    // ready flags without discarding the warm pool, which no public wrapper
    // can express.
    config::derived_geometry& d = c.derived();  // gather-lint: allow(R5)
    std::fill(d.view_ready.begin(), d.view_ready.end(), char{0});
    const auto t0 = std::chrono::steady_clock::now();
    fn(c);
    const auto t1 = std::chrono::steady_clock::now();
    g_sink += d.views.size();
    samples.push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()));
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Part 4 phase 1: warm bulk view fill, fast vs reference, on one shared
/// deterministic workload per n.
phase_result run_fill_phase(const std::vector<std::size_t>& ns) {
  phase_result fill{"fill", {}, 0.0};
  for (std::size_t n : ns) {
    const config::configuration c(phase_workload(n));
    g_sink += static_cast<std::size_t>(c.sec().radius > 0.0);
    const int reps = n <= 256 ? 9 : 5;
    phase_point p{n, 0, 0};
    p.fast_ns = median_warm_fill_ns(reps, c, [](const config::configuration& cc) {
      config::detail::fill_all_view_slots(cc);
    });
    p.ref_ns = median_warm_fill_ns(reps, c, [](const config::configuration& cc) {
      config::detail::fill_all_view_slots_reference(cc);
    });
    fill.points.push_back(p);
  }
  fill.slope = loglog_slope(fill.points);
  return fill;
}

/// Part 4 phase 2: the Lemma 3.4 quasi-regularity test over every occupied
/// center -- the classify-time scan -- fast vs reference.  Neither side
/// touches the derived cache, so one configuration per n serves both.
phase_result run_qr_phase(const std::vector<std::size_t>& ns,
                          std::size_t max_ref_n) {
  phase_result qr{"qr_scan", {}, 0.0};
  for (std::size_t n : ns) {
    const config::configuration c(phase_workload(n));
    g_sink += static_cast<std::size_t>(c.sec().radius > 0.0);
    const int reps = n <= 256 ? 5 : 3;
    const auto scan = [&](int r, auto&& probe) {
      std::vector<std::uint64_t> samples;
      samples.reserve(static_cast<std::size_t>(r));
      for (int rep = 0; rep < r; ++rep) {
        const auto t0 = std::chrono::steady_clock::now();
        std::size_t hits = 0;
        for (const config::occupied_point& o : c.occupied()) {
          hits += probe(c, o.position).has_value();
        }
        const auto t1 = std::chrono::steady_clock::now();
        g_sink += hits;
        samples.push_back(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                .count()));
      }
      std::sort(samples.begin(), samples.end());
      return samples[samples.size() / 2];
    };
    phase_point p{n, 0, 0};
    p.fast_ns = scan(reps, [](const config::configuration& cc, geom::vec2 ctr) {
      return config::quasi_regular_about_occupied(cc, ctr);
    });
    if (n <= max_ref_n) {
      p.ref_ns = scan(reps, [](const config::configuration& cc, geom::vec2 ctr) {
        return config::detail::quasi_regular_about_occupied_reference(cc, ctr);
      });
    }
    qr.points.push_back(p);
  }
  qr.slope = loglog_slope(qr.points);
  return qr;
}

/// Part 4 phase 3: one cold end-to-end classification of a class-A
/// (uniform-random) instance at n = 10^4 -- construction (canonicalize +
/// SEC) plus the full classify pipeline (symmetry, quasi-regularity scan,
/// safe points).  Single rep: the point exists to pin the order of magnitude
/// of a round at the paper's largest advertised swarm size, and the 3x
/// compare.py margin absorbs shared-machine noise.
phase_result run_round_class_a(std::size_t n) {
  phase_result round{"round_class_a", {}, 0.0};
  const std::vector<geom::vec2> pts = phase_workload(n);
  const auto t0 = std::chrono::steady_clock::now();
  const config::configuration c(pts);
  const config::classification verdict = config::classify(c);
  const auto t1 = std::chrono::steady_clock::now();
  g_sink += static_cast<std::size_t>(verdict.cls) + c.distinct_count();
  round.points.push_back(
      {n,
       static_cast<std::uint64_t>(
           std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
               .count()),
       0});
  return round;
}

/// GATHER_PROF call counts over a small fixed grid: the same configurations
/// and calls in every mode and on every machine, so the counts are exact
/// invariants of the algorithm (compare.py rejects any increase).
std::vector<std::pair<std::string, std::uint64_t>> run_counter_grid() {
  obs::prof_registry reg;
  {
    obs::prof_session session(&reg);
    for (std::size_t n : {8u, 16u, 32u}) {
      const config::configuration c(phase_workload(n));
      g_sink += config::all_views(c).size();
      g_sink += config::view_classes(c).size();
      g_sink += static_cast<std::size_t>(config::symmetry(c));
      g_sink += static_cast<std::size_t>(config::classify(c).cls);
    }
  }
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const auto& [site, stats] : reg.sites()) {
    out.emplace_back(site, stats.calls);
  }
  return out;
}

void print_phase_table(const char* title,
                       const std::vector<phase_result>& phases) {
  std::printf("%s\n\n", title);
  std::printf("%10s %6s %14s %14s %10s\n", "phase", "n", "fast (us)",
              "reference (us)", "speedup");
  bench::print_rule(60);
  for (const phase_result& ph : phases) {
    for (const phase_point& p : ph.points) {
      std::printf("%10s %6zu %14.1f", ph.name.c_str(), p.n,
                  static_cast<double>(p.fast_ns) / 1e3);
      if (p.ref_ns > 0) {
        std::printf(" %14.1f %9.1fx", static_cast<double>(p.ref_ns) / 1e3,
                    static_cast<double>(p.ref_ns) /
                        static_cast<double>(p.fast_ns));
      } else {
        std::printf(" %14s %10s", "-", "-");
      }
      std::printf("\n");
    }
    std::printf("%10s log-log slope of fast path: %.2f\n\n", ph.name.c_str(),
                ph.slope);
  }
}

bool write_json(const char* path, const std::vector<phase_result>& phases,
                const std::vector<std::pair<std::string, std::uint64_t>>& counters,
                bool smoke) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_scaling: cannot open %s for writing\n", path);
    return false;
  }
  std::fprintf(f, "{\n  \"schema\": \"gather-bench-scaling-v1\",\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
  std::fprintf(f, "  \"phases\": {\n");
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const phase_result& ph = phases[i];
    std::fprintf(f, "    \"%s\": {\n      \"slope\": %.4f,\n      \"points\": [\n",
                 ph.name.c_str(), ph.slope);
    for (std::size_t j = 0; j < ph.points.size(); ++j) {
      const phase_point& p = ph.points[j];
      std::fprintf(f,
                   "        {\"n\": %zu, \"fast_ns\": %llu, \"ref_ns\": %llu}%s\n",
                   p.n, static_cast<unsigned long long>(p.fast_ns),
                   static_cast<unsigned long long>(p.ref_ns),
                   j + 1 < ph.points.size() ? "," : "");
    }
    std::fprintf(f, "      ]\n    }%s\n", i + 1 < phases.size() ? "," : "");
  }
  std::fprintf(f, "  },\n  \"counters\": {\n");
  for (std::size_t i = 0; i < counters.size(); ++i) {
    std::fprintf(f, "    \"%s\": %llu%s\n", counters[i].first.c_str(),
                 static_cast<unsigned long long>(counters[i].second),
                 i + 1 < counters.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  return true;
}

void run_e11() {
  const core::wait_free_gather algo;
  const int seeds = 5;

  for (const char* family : {"uniform", "majority"}) {
    std::printf("E11: median rounds to gather vs n  (workload: %s, delta 5%%)\n\n",
                family);
    std::printf("%6s |", "n");
    for (const auto& sched : sim::all_schedulers()) {
      std::printf(" %16s", std::string(sched.name).c_str());
    }
    std::printf("\n");
    bench::print_rule(95);
    for (std::size_t n : {4u, 8u, 16u, 32u, 64u}) {
      std::printf("%6zu |", n);
      for (const auto& sched : sim::all_schedulers()) {
        std::vector<std::size_t> rounds;
        for (int seed = 0; seed < seeds; ++seed) {
          sim::rng r(80'000 + 131 * seed + n);
          const auto pts = family[0] == 'u'
                               ? workloads::uniform_random(n, r)
                               : workloads::with_majority(n, n / 3, r);
          auto s = sched.make();
          auto m = sim::make_full_movement();
          auto c = sim::make_no_crash();
          sim::sim_options opts;
          opts.seed = 90'000 + seed;
          const auto res = bench::run_pieces(pts, algo, *s, *m, *c, opts);
          if (res.status == sim::sim_status::gathered) rounds.push_back(res.rounds);
        }
        std::sort(rounds.begin(), rounds.end());
        if (rounds.size() == static_cast<std::size_t>(seeds)) {
          std::printf(" %16zu", rounds[rounds.size() / 2]);
        } else {
          std::printf(" %13zu/%zu", rounds.size(), static_cast<std::size_t>(seeds));
        }
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  std::printf("Reading: one-robot-per-round schedulers scale linearly in n;\n"
              "synchronous rounds are set by the geometry, not the swarm size.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: bench_scaling [--smoke] [--json PATH]\n");
      return 2;
    }
  }

  if (!smoke) run_e11();

  const std::vector<std::size_t> ns =
      smoke ? std::vector<std::size_t>{32, 64}
            : std::vector<std::size_t>{16, 32, 64, 128, 256, 512};
  const std::size_t max_ref_n = smoke ? 64 : 512;
  auto phases = run_phase_scaling(ns, max_ref_n);
  print_phase_table("PR5: view-pipeline phase scaling (fast vs reference oracle)",
                    phases);
  if (max_ref_n < ns.back()) {
    std::printf("note: reference oracle capped at n = %zu\n", max_ref_n);
  }

  const std::size_t round_n = 10'000;
  phases.push_back(run_round_phase(round_n, smoke));
  print_round_table(phases.back(), round_n);

  // Part 4: batch-kernel phases (see the file comment).
  const std::vector<std::size_t> fill_ns =
      smoke ? std::vector<std::size_t>{256, 1024}
            : std::vector<std::size_t>{256, 1024, 4096};
  const std::vector<std::size_t> qr_ns =
      smoke ? std::vector<std::size_t>{64, 128}
            : std::vector<std::size_t>{128, 256, 512, 1024, 2048, 4096};
  const std::size_t qr_max_ref_n = smoke ? 128 : 256;
  std::vector<phase_result> kernel_phases;
  kernel_phases.push_back(run_fill_phase(fill_ns));
  kernel_phases.push_back(run_qr_phase(qr_ns, qr_max_ref_n));
  kernel_phases.push_back(run_round_class_a(10'000));
  print_phase_table(
      "PR10: batch-kernel phases (warm fill, QR scan, cold class-A round)",
      kernel_phases);
  std::printf("note: qr_scan reference capped at n = %zu; round_class_a has "
              "no reference\n",
              qr_max_ref_n);
  for (phase_result& ph : kernel_phases) phases.push_back(std::move(ph));

  const auto counters = run_counter_grid();
  std::printf("GATHER_PROF call counts on the fixed grid (n = 8, 16, 32):\n");
  for (const auto& [site, calls] : counters) {
    std::printf("  prof.%s.calls = %llu\n", site.c_str(),
                static_cast<unsigned long long>(calls));
  }

  if (json_path != nullptr && !write_json(json_path, phases, counters, smoke)) {
    return 1;
  }
  std::printf("(sink %zu)\n", g_sink % 10);
  return 0;
}
