// Experiment E2 -- the bivalent impossibility boundary (Lemma 5.2).
//
// Starting from the bivalent configuration B (n/2 robots at each of two
// points) no deterministic algorithm can gather; WAIT-FREE-GATHER correctly
// holds position forever.  One extra robot on either side makes the instance
// an M configuration and gathering succeeds immediately.  The table sweeps n
// and reports the outcome and the live-spread after the run: unchanged for B,
// zero for the unbalanced variants.
#include <cstdio>

#include "core/wait_free_gather.h"
#include "harness.h"
#include "workloads/generators.h"

int main() {
  using namespace gather;
  const core::wait_free_gather algo;

  std::printf("E2: Lemma 5.2 -- bivalent configurations are the only unsolvable ones\n\n");
  std::printf("%-26s %4s | %-17s %8s %12s\n", "instance", "n", "outcome", "rounds",
              "final spread");
  bench::print_rule(76);

  for (std::size_t n : {4u, 8u, 16u, 32u}) {
    sim::rng r(300 + n);
    const auto biv = workloads::bivalent(n, r);
    const double spread0 = sim::spread(biv);

    auto run = [&](const std::vector<geom::vec2>& pts) {
      auto sched = sim::make_synchronous();
      auto move = sim::make_full_movement();
      auto crash = sim::make_no_crash();
      sim::sim_options opts;
      opts.max_rounds = 10'000;
      return bench::run_pieces(pts, algo, *sched, *move, *crash, opts);
    };

    const auto res_b = run(biv);
    std::printf("%-26s %4zu | %-17s %8zu %12.4f\n", "bivalent (exact)", n,
                std::string(sim::to_string(res_b.status)).c_str(), res_b.rounds,
                sim::spread(res_b.final_positions) / spread0);

    auto plus = biv;
    plus.push_back(plus.front());  // n/2+1 vs n/2: class M
    const auto res_p = run(plus);
    std::printf("%-26s %4zu | %-17s %8zu %12.4f\n", "bivalent +1 stacked", n + 1,
                std::string(sim::to_string(res_p.status)).c_str(), res_p.rounds,
                sim::spread(res_p.final_positions) / spread0);

    auto nudged = biv;
    nudged.back() = geom::lerp(nudged.back(), nudged.front(), 0.01);
    const auto res_n = run(nudged);
    std::printf("%-26s %4zu | %-17s %8zu %12.4f\n", "bivalent, one nudged", n,
                std::string(sim::to_string(res_n.status)).c_str(), res_n.rounds,
                sim::spread(res_n.final_positions) / spread0);
  }

  std::printf("\nPaper's claim: exact B never makes progress (relative spread "
              "stays 1);\nevery neighbouring instance gathers (spread 0).\n");
  return 0;
}
