// Bounded model checker throughput and pruning leverage (docs/CHECKING.md).
//
// Sweeps (n, rounds) on the 3x3 lattice with WAIT-FREE-GATHER and reports,
// per cell, the explored/generated state counts, the within-run symmetry
// reduction (raw-unique / canonical-unique), the end-to-end pruning factor
// against the exact-key search of the same space, and the explorer's
// states/second.  All counts are deterministic; only the timing column is
// machine-dependent.
#include <chrono>
#include <cstdio>

#include "check/check.h"
#include "core/wait_free_gather.h"
#include "harness.h"

int main() {
  using namespace gather;
  using clock = std::chrono::steady_clock;
  const core::wait_free_gather algo;

  std::printf("gather_check: exhaustive adversary search on the 3x3 lattice\n\n");
  std::printf("%2s %6s | %10s %10s %8s | %9s %9s | %10s %7s\n", "n", "rounds",
              "generated", "explored", "pruned%", "raw/canon", "vs exact",
              "states/s", "ms");
  bench::print_rule(96);

  for (std::size_t n : {2u, 3u, 4u}) {
    for (std::size_t rounds : {2u, 3u}) {
      check::check_spec spec;
      spec.seeds = check::lattice_multisets(3, 3, n);
      spec.algorithm = &algo;
      spec.options.max_rounds = rounds;

      const auto t0 = clock::now();
      const check::check_result canon = check::explore(spec);
      const auto t1 = clock::now();

      spec.options.canonical_dedup = false;
      const check::check_result exact = check::explore(spec);

      const double ms =
          std::chrono::duration<double, std::milli>(t1 - t0).count();
      const double pruned_pct =
          canon.states_generated == 0
              ? 0.0
              : 100.0 * static_cast<double>(canon.duplicates_pruned) /
                    static_cast<double>(canon.states_generated);
      const double vs_exact =
          canon.states_explored == 0
              ? 1.0
              : static_cast<double>(exact.states_explored) /
                    static_cast<double>(canon.states_explored);
      const double rate = ms <= 0.0 ? 0.0
                                    : 1e3 *
                                          static_cast<double>(
                                              canon.states_generated) /
                                          ms;
      std::printf(
          "%2zu %6zu | %10llu %10llu %7.1f%% | %8.2fx %8.2fx | %10.0f %7.2f\n",
          n, rounds,
          static_cast<unsigned long long>(canon.states_generated),
          static_cast<unsigned long long>(canon.states_explored), pruned_pct,
          canon.symmetry_reduction(), vs_exact, rate, ms);

      if (canon.total_violations() != 0) {
        std::printf("  UNEXPECTED: %llu lemma violations\n",
                    static_cast<unsigned long long>(canon.total_violations()));
        return 1;
      }
    }
  }
  std::printf(
      "\ncounts are deterministic; wall time is the only machine-dependent "
      "column.\n");
  return 0;
}
