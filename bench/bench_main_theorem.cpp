// Experiment E1 -- the main theorem (Theorem 5.1).
//
// WAIT-FREE-GATHER gathers all correct robots from every non-bivalent
// configuration class, for every tested swarm size, crash count f < n,
// scheduler and movement adversary.  The table reports, per (class, n, f):
// success rate over seeds x schedulers, median and max rounds to gather, and
// the number of wait-freeness breaches / bivalent entries observed (both
// must be zero).
#include <cstdio>
#include <map>

#include "core/wait_free_gather.h"
#include "harness.h"
#include "workloads/generators.h"

int main() {
  using namespace gather;
  const core::wait_free_gather algo;
  const int seeds = 3;
  util::thread_pool pool(bench::bench_jobs());

  std::printf("E1: Theorem 5.1 -- gathering from every class with f < n crashes\n");
  std::printf("(success over %d seeds x %zu schedulers x %zu movement adversaries)\n\n",
              seeds, sim::all_schedulers().size(), sim::all_movements().size());
  // Thread count goes to stderr so stdout stays byte-identical across jobs.
  std::fprintf(stderr, "bench_main_theorem: %zu threads\n", pool.size());
  std::printf("%-20s %4s %5s | %8s %8s %8s | %6s %6s\n", "workload/class", "n",
              "f", "success", "med.rnd", "max.rnd", "wfviol", "biv");
  bench::print_rule(84);

  for (std::size_t n : {4u, 8u, 16u, 32u}) {
    for (const auto& wl : workloads::corpus(n, 10'000 + n)) {
      const std::size_t wn = wl.points.size();
      for (std::size_t f : {std::size_t{0}, std::size_t{1}, wn / 2, wn - 1}) {
        // One parallel cell over the (seed, scheduler, movement) combos;
        // run_cell merges in index order, so the table is independent of
        // the thread count.
        const auto& scheds = sim::all_schedulers();
        const auto& moves = sim::all_movements();
        const std::size_t combos = seeds * scheds.size() * moves.size();
        auto stats =
            bench::run_cell(pool, combos, [&](std::size_t i) {
              const std::size_t seed = i / (scheds.size() * moves.size());
              const std::size_t rest = i % (scheds.size() * moves.size());
              return bench::run_once(wl.points, algo, scheds[rest / moves.size()],
                                     moves[rest % moves.size()], f,
                                     1000 * n + 17 * seed + f);
            });
        const auto cls = config::classify(config::configuration(wl.points)).cls;
        std::printf("%-14s (%3s) %4zu %5zu | %7.0f%% %8zu %8zu | %6zu %6zu\n",
                    wl.name.c_str(), std::string(config::to_string(cls)).c_str(),
                    wn, f, 100.0 * stats.success_rate(), stats.median_rounds(),
                    stats.max_rounds_seen(), stats.wait_free_violations,
                    stats.bivalent_entries);
        if (f == wn - 1) break;  // avoid duplicate rows when wn/2 == wn-1 etc.
      }
    }
    bench::print_rule(84);
  }
  std::printf("\nPaper's claim: 100%% success everywhere, zero wait-freeness "
              "violations,\nzero bivalent entries (Theorem 5.1, Lemma 5.1).\n");
  return 0;
}
