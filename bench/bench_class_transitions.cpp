// Experiment E5 -- per-class progress (Lemmas 5.3 - 5.9).
//
// Runs every workload class under hostile schedules and aggregates the
// observed class-transition matrix across all rounds of all runs.  The
// lemmas admit exactly:
//     M   -> M            (Lemma 5.3 C1)
//     L1W -> M, L1W       (Lemma 5.4 C1)
//     QR  -> M, L1W, QR   (Lemma 5.5 C1)
//     A   -> M, L1W, QR, A(Lemma 5.6 C1)
//     L2W -> anything but B (Lemmas 5.7/5.8)
// Entries outside this set are counted as violations (expected zero).
// Also verifies Weber-point invariance along QR/L1W stretches (Lemma 3.2).
#include <cstdio>

#include "config/weber.h"
#include "core/wait_free_gather.h"
#include "harness.h"
#include "workloads/generators.h"

int main() {
  using namespace gather;
  const core::wait_free_gather algo;

  sim::transition_matrix total{};
  std::size_t violations = 0;
  std::size_t runs = 0;
  std::size_t weber_drift = 0;

  for (std::size_t n : {5u, 6u, 8u, 12u}) {
    for (const auto& wl : workloads::corpus(n, 20'000 + n)) {
      for (int seed = 0; seed < 4; ++seed) {
        for (const auto& sched : sim::all_schedulers()) {
          auto s = sched.make();
          auto m = sim::make_random_stop();
          auto c = sim::make_random_crashes(n / 2, 40);
          sim::sim_options opts;
          opts.seed = 31 * seed + n;
          opts.record_trace = true;
          const auto res = bench::run_pieces(wl.points, algo, *s, *m, *c, opts);
          ++runs;
          if (!sim::transitions_allowed(res.class_history)) {
            ++violations;
            std::printf("violation: workload=%s n=%zu seed=%d sched=%s\n",
                        wl.name.c_str(), n, seed,
                        std::string(sched.name).c_str());
            for (std::size_t k = 0; k + 1 < res.class_history.size(); ++k) {
              if (!sim::transitions_allowed(
                      {res.class_history[k], res.class_history[k + 1]})) {
                std::printf("  round %zu: %s -> %s\n", k,
                            std::string(config::to_string(res.class_history[k]))
                                .c_str(),
                            std::string(config::to_string(res.class_history[k + 1]))
                                .c_str());
                for (const auto& p : res.trace[k].positions) {
                  std::printf("    (%.17g, %.17g)\n", p.x, p.y);
                }
              }
            }
          }
          const auto mat = sim::count_transitions(res.class_history);
          for (int i = 0; i < 6; ++i) {
            for (int j = 0; j < 6; ++j) total[i][j] += mat[i][j];
          }
          // Weber invariance along consecutive QR/L1W rounds.
          for (std::size_t k = 0; k + 1 < res.trace.size(); ++k) {
            using cc = config::config_class;
            if (res.trace[k].cls != cc::quasi_regular &&
                res.trace[k].cls != cc::linear_1w) {
              continue;
            }
            if (res.trace[k + 1].cls != cc::quasi_regular &&
                res.trace[k + 1].cls != cc::linear_1w) {
              continue;
            }
            const config::configuration c1(res.trace[k].positions);
            const config::configuration c2(res.trace[k + 1].positions);
            const auto w1 = config::weber_point(c1);
            const auto w2 = config::weber_point(c2);
            if (w1.unique && w2.unique &&
                geom::distance(w1.point, w2.point) > 1e-5 * c1.diameter()) {
              ++weber_drift;
            }
          }
        }
      }
    }
  }

  static const char* names[] = {"B", "M", "L1W", "L2W", "QR", "A"};
  std::printf("E5: observed class-transition counts over %zu runs\n\n", runs);
  std::printf("%6s", "from\\to");
  for (const char* c : names) std::printf("%9s", c);
  std::printf("\n");
  bench::print_rule(62);
  for (int i = 0; i < 6; ++i) {
    std::printf("%6s", names[i]);
    for (int j = 0; j < 6; ++j) std::printf("%9zu", total[i][j]);
    std::printf("\n");
  }
  std::printf("\nruns with disallowed transitions : %zu (expect 0)\n", violations);
  std::printf("Weber-point drifts in QR/L1W runs: %zu (expect 0, Lemma 3.2)\n",
              weber_drift);
  std::printf("\nPaper's claim: only the transitions admitted by Lemmas 5.3-5.9\n"
              "appear; the B row and column stay zero for non-bivalent starts.\n");
  return violations == 0 && weber_drift == 0 ? 0 : 1;
}
