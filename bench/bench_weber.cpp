// Experiment E3 -- quasi-regularity detection and Weber point computation
// (Theorem 3.1, Lemmas 3.3/3.4).
//
// Sweeps positive instances (regular polygons, symmetric rings, biangular
// sets, occupied-center variants) and negative instances (perturbations,
// random clouds), reporting detection accuracy and the distance between the
// detected center and the Weiszfeld ground-truth geometric median.
#include <cstdio>
#include <string>
#include <vector>

#include "config/config.h"
#include "harness.h"
#include "workloads/generators.h"

namespace {

struct row {
  std::string name;
  int trials = 0;
  int detected = 0;
  double worst_center_err = 0.0;
};

}  // namespace

int main() {
  using namespace gather;
  const int trials = 25;

  std::printf("E3: Theorem 3.1 -- quasi-regularity detection + Weber points\n\n");
  std::printf("%-34s %7s %9s %14s\n", "instance family", "trials",
              "detected", "max |c - med|");
  bench::print_rule(70);

  std::vector<row> rows;
  auto sweep = [&](const std::string& name, bool expect,
                   auto&& make_points) {
    row r{name};
    sim::rng rng_src(5000 + rows.size());
    for (int t = 0; t < trials; ++t) {
      const std::vector<geom::vec2> pts = make_points(rng_src, t);
      const config::configuration c(pts);
      if (c.is_linear()) continue;
      ++r.trials;
      const auto qr = config::detect_quasi_regularity(c);
      if (qr) {
        ++r.detected;
        if (const auto med = config::geometric_median_weiszfeld(c, 20'000)) {
          r.worst_center_err = std::max(
              r.worst_center_err, geom::distance(qr->center, *med) / c.diameter());
        }
      }
    }
    std::printf("%-34s %7d %8d%% %14.2e   %s\n", r.name.c_str(), r.trials,
                r.trials ? 100 * r.detected / r.trials : 0, r.worst_center_err,
                expect ? "(expect 100%)" : "(expect 0%)");
    rows.push_back(r);
  };

  sweep("regular n-gon, n in [3,18]", true, [](sim::rng& r, int t) {
    return workloads::regular_polygon(3 + t % 16, {}, 1.0 + 0.1 * (t % 5),
                                      r.uniform(0, 6));
  });
  sweep("symmetric rings (k in [3,7])", true, [](sim::rng& r, int t) {
    return workloads::symmetric_rings(3 + t % 5, 2 + t % 3, r);
  });
  sweep("biangular, random radii", true, [](sim::rng& r, int t) {
    return workloads::biangular(3 + t % 5, 0.15 + 0.05 * (t % 6), r);
  });
  sweep("polygon + occupied center", true, [](sim::rng& r, int t) {
    return workloads::quasi_regular_with_center(5 + t % 9, 1 + t % 2, r);
  });
  // Perturbed 4-gons stay genuinely quasi-regular (degree 2 about the
  // diagonal crossing), so the negative family starts at 5.
  sweep("perturbed polygon (1% noise)", false, [](sim::rng& r, int t) {
    return workloads::perturbed(workloads::regular_polygon(5 + t % 9), 0.01, r);
  });
  sweep("uniform random cloud (n=5..12)", false, [](sim::rng& r, int t) {
    return workloads::uniform_random(5 + t % 8, r);
  });

  std::printf(
      "\nPaper's claim: detection is complete on quasi-regular families and\n"
      "the detected center coincides with the Weber point (Lemma 3.3); generic\n"
      "and perturbed configurations are rejected.  (Random 4-point clouds are\n"
      "genuinely quasi-regular -- degree 2 about the diagonal crossing -- and\n"
      "are excluded from the negative family by using n >= 5.)\n");
  return 0;
}
