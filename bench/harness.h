// Shared experiment-harness helpers for the bench binaries.
//
// Each bench binary regenerates one experiment from EXPERIMENTS.md: it sweeps
// a parameter grid, repeats every cell over several seeds, and prints one
// formatted table to stdout.  Everything is deterministic in the seeds.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/algorithm.h"
#include "util/thread_pool.h"
#include "sim/sim.h"

namespace gather::bench {

/// Aggregate of repeated simulation runs for one grid cell.
struct cell_stats {
  int runs = 0;
  int gathered = 0;
  int stalled = 0;
  std::size_t wait_free_violations = 0;
  std::size_t bivalent_entries = 0;
  std::vector<std::size_t> rounds;  // of gathered runs

  void add(const sim::sim_result& r) {
    ++runs;
    wait_free_violations += r.wait_free_violations;
    bivalent_entries += r.bivalent_entries;
    if (r.status == sim::sim_status::gathered) {
      ++gathered;
      rounds.push_back(r.rounds);
    } else if (r.status == sim::sim_status::stalled ||
               r.status == sim::sim_status::round_limit) {
      ++stalled;
    }
  }

  [[nodiscard]] double success_rate() const {
    return runs == 0 ? 0.0 : static_cast<double>(gathered) / runs;
  }

  [[nodiscard]] std::size_t median_rounds() {
    if (rounds.empty()) return 0;
    std::sort(rounds.begin(), rounds.end());
    return rounds[rounds.size() / 2];
  }

  [[nodiscard]] std::size_t max_rounds_seen() {
    if (rounds.empty()) return 0;
    return *std::max_element(rounds.begin(), rounds.end());
  }
};

/// Fold the positional pieces every bench sweep produces into a sim_spec and
/// execute it through the public sim::run() entry point.
inline sim::sim_result run_pieces(std::vector<geom::vec2> pts,
                                  const core::gathering_algorithm& algo,
                                  sim::activation_scheduler& sched,
                                  sim::movement_adversary& move,
                                  sim::crash_policy& crash,
                                  const sim::sim_options& opts) {
  sim::sim_spec spec;
  spec.initial = std::move(pts);
  spec.algorithm = &algo;
  spec.scheduler = &sched;
  spec.movement = &move;
  spec.crash = &crash;
  spec.options = opts;
  return sim::run(spec);
}

/// ASYNC-engine counterpart of run_pieces.
inline sim::async_result run_async_pieces(std::vector<geom::vec2> pts,
                                          const core::gathering_algorithm& algo,
                                          sim::movement_adversary& move,
                                          sim::crash_policy& crash,
                                          const sim::async_options& opts) {
  sim::sim_spec spec;
  spec.initial = std::move(pts);
  spec.algorithm = &algo;
  spec.movement = &move;
  spec.crash = &crash;
  spec.async = opts;
  return sim::run_async(spec);
}

/// One simulation with freshly-built scheduler/movement/crash components.
inline sim::sim_result run_once(const std::vector<geom::vec2>& pts,
                                const core::gathering_algorithm& algo,
                                const sim::scheduler_factory& sched,
                                const sim::movement_factory& move,
                                std::size_t crashes, std::uint64_t seed,
                                std::size_t max_rounds = 50'000) {
  auto s = sched.make();
  auto m = move.make();
  auto c = crashes == 0 ? sim::make_no_crash()
                        : sim::make_random_crashes(crashes, 50);
  sim::sim_options opts;
  opts.seed = seed;
  opts.check_wait_freeness = true;
  opts.max_rounds = max_rounds;
  return run_pieces(pts, algo, *s, *m, *c, opts);
}

inline void print_rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

/// Worker threads for bench sweeps: GATHER_BENCH_JOBS env var when set,
/// otherwise one per hardware thread.  GATHER_BENCH_JOBS=1 reproduces the
/// historical serial execution exactly.
inline std::size_t bench_jobs() {
  if (const char* env = std::getenv("GATHER_BENCH_JOBS")) {
    const unsigned long v = std::strtoul(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  return util::thread_pool::default_jobs();
}

/// Run `count` independent seeded simulations across the pool and merge
/// them into cell_stats *in index order*, so every table is identical for
/// every jobs value.  `run(i)` must be a pure function of i (derive seeds
/// from i; never draw them from shared state).
template <typename RunIndex>
cell_stats run_cell(util::thread_pool& pool, std::size_t count,
                    const RunIndex& run) {
  std::vector<sim::sim_result> results(count);
  pool.parallel_for(count,
                    [&](std::size_t i) { results[i] = run(i); });
  cell_stats stats;
  for (const auto& r : results) stats.add(r);
  return stats;
}

}  // namespace gather::bench
