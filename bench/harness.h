// Shared experiment-harness helpers for the bench binaries.
//
// Each bench binary regenerates one experiment from EXPERIMENTS.md: it sweeps
// a parameter grid, repeats every cell over several seeds, and prints one
// formatted table to stdout.  Everything is deterministic in the seeds.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/algorithm.h"
#include "sim/sim.h"

namespace gather::bench {

/// Aggregate of repeated simulation runs for one grid cell.
struct cell_stats {
  int runs = 0;
  int gathered = 0;
  int stalled = 0;
  std::size_t wait_free_violations = 0;
  std::size_t bivalent_entries = 0;
  std::vector<std::size_t> rounds;  // of gathered runs

  void add(const sim::sim_result& r) {
    ++runs;
    wait_free_violations += r.wait_free_violations;
    bivalent_entries += r.bivalent_entries;
    if (r.status == sim::sim_status::gathered) {
      ++gathered;
      rounds.push_back(r.rounds);
    } else if (r.status == sim::sim_status::stalled ||
               r.status == sim::sim_status::round_limit) {
      ++stalled;
    }
  }

  [[nodiscard]] double success_rate() const {
    return runs == 0 ? 0.0 : static_cast<double>(gathered) / runs;
  }

  [[nodiscard]] std::size_t median_rounds() {
    if (rounds.empty()) return 0;
    std::sort(rounds.begin(), rounds.end());
    return rounds[rounds.size() / 2];
  }

  [[nodiscard]] std::size_t max_rounds_seen() {
    if (rounds.empty()) return 0;
    return *std::max_element(rounds.begin(), rounds.end());
  }
};

/// One simulation with freshly-built scheduler/movement/crash components.
inline sim::sim_result run_once(const std::vector<geom::vec2>& pts,
                                const core::gathering_algorithm& algo,
                                const sim::scheduler_factory& sched,
                                const sim::movement_factory& move,
                                std::size_t crashes, std::uint64_t seed,
                                std::size_t max_rounds = 50'000) {
  auto s = sched.make();
  auto m = move.make();
  auto c = crashes == 0 ? sim::make_no_crash()
                        : sim::make_random_crashes(crashes, 50);
  sim::sim_options opts;
  opts.seed = seed;
  opts.check_wait_freeness = true;
  opts.max_rounds = max_rounds;
  return sim::simulate(pts, algo, *s, *m, *c, opts);
}

inline void print_rule(int width) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

}  // namespace gather::bench
