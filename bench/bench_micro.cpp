// Experiment E7 -- microbenchmarks of the per-round computations
// (google-benchmark).
//
// The paper's algorithm is meant to run in every Look-Compute-Move cycle, so
// the per-snapshot cost of each pipeline stage matters: smallest enclosing
// circle, views/symmetry, quasi-regularity detection, Weber points, full
// classification and the complete destination computation.
#include <benchmark/benchmark.h>

#include "config/config.h"
#include "core/core.h"
#include "geometry/geometry.h"
#include "sim/rng.h"
#include "workloads/generators.h"

namespace {

using namespace gather;

std::vector<geom::vec2> cloud(std::size_t n) {
  sim::rng r(n * 31 + 7);
  return workloads::uniform_random(n, r);
}

void bm_configuration_build(benchmark::State& state) {
  const auto pts = cloud(state.range(0));
  for (auto _ : state) {
    config::configuration c(pts);
    benchmark::DoNotOptimize(c.distinct_count());
  }
}
BENCHMARK(bm_configuration_build)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void bm_smallest_enclosing_circle(benchmark::State& state) {
  const auto pts = cloud(state.range(0));
  const geom::tol t = geom::tol::for_points(pts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::smallest_enclosing_circle(pts, t).radius);
  }
}
BENCHMARK(bm_smallest_enclosing_circle)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void bm_convex_hull(benchmark::State& state) {
  const auto pts = cloud(state.range(0));
  const geom::tol t = geom::tol::for_points(pts);
  for (auto _ : state) {
    benchmark::DoNotOptimize(geom::convex_hull(pts, t).size());
  }
}
BENCHMARK(bm_convex_hull)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void bm_views_symmetry(benchmark::State& state) {
  const config::configuration c(cloud(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(config::symmetry(c));
  }
}
BENCHMARK(bm_views_symmetry)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void bm_qr_detection_negative(benchmark::State& state) {
  const config::configuration c(cloud(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(config::detect_quasi_regularity(c).has_value());
  }
}
BENCHMARK(bm_qr_detection_negative)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void bm_qr_detection_positive(benchmark::State& state) {
  sim::rng r(5);
  const config::configuration c(
      workloads::symmetric_rings(state.range(0) / 2, 2, r));
  for (auto _ : state) {
    benchmark::DoNotOptimize(config::detect_quasi_regularity(c).has_value());
  }
}
BENCHMARK(bm_qr_detection_positive)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void bm_weiszfeld(benchmark::State& state) {
  const config::configuration c(cloud(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(config::geometric_median_weiszfeld(c)->x);
  }
}
BENCHMARK(bm_weiszfeld)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void bm_classify(benchmark::State& state) {
  const config::configuration c(cloud(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(config::classify(c).cls);
  }
}
BENCHMARK(bm_classify)->Arg(8)->Arg(16)->Arg(32)->Arg(64)->Arg(128);

void bm_destination_asymmetric(benchmark::State& state) {
  const core::wait_free_gather algo;
  const config::configuration c(cloud(state.range(0)));
  const geom::vec2 self = c.occupied().front().position;
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo.destination({c, self}).x);
  }
}
BENCHMARK(bm_destination_asymmetric)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void bm_destination_multiple(benchmark::State& state) {
  const core::wait_free_gather algo;
  sim::rng r(9);
  const config::configuration c(
      workloads::with_majority(state.range(0), state.range(0) / 3, r));
  const geom::vec2 self = c.occupied().back().position;
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo.destination({c, self}).x);
  }
}
BENCHMARK(bm_destination_multiple)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void bm_full_round_synchronous(benchmark::State& state) {
  // One complete ATOM round for n robots (all active), per-snapshot calls.
  const core::wait_free_gather algo;
  const auto pts = cloud(state.range(0));
  for (auto _ : state) {
    const config::configuration c(pts);
    geom::vec2 acc{};
    for (const config::occupied_point& o : c.occupied()) {
      acc += algo.destination({c, o.position});
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(bm_full_round_synchronous)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void bm_full_round_bulk(benchmark::State& state) {
  // Same round through the batched entry point (one classification/election
  // per configuration) -- the speedup engines rely on.
  const core::wait_free_gather algo;
  const auto pts = cloud(state.range(0));
  for (auto _ : state) {
    const config::configuration c(pts);
    benchmark::DoNotOptimize(algo.destinations(c).size());
  }
}
BENCHMARK(bm_full_round_bulk)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
