// Ablated variants of WAIT-FREE-GATHER for experiment E8.
//
// Each variant removes one design ingredient whose necessity the paper argues
// for, keeping everything else identical:
//   * no_side_step     -- blocked robots in the M case charge straight at the
//                         target instead of side-stepping (Fig. 2 lines 7-12);
//                         a movement adversary can park them on blockers and
//                         destroy the unique maximum multiplicity.
//   * unsafe_election  -- the A case elects among *all* occupied points
//                         instead of only safe ones (Def. 8); an adversary
//                         can then herd the swarm into the bivalent trap.
//   * proximity_tiebreak -- the A case drops the chirality-based view
//                         tie-break; tied (mirror-twin) leaders are resolved
//                         by each robot picking the nearest, so an axially
//                         symmetric swarm splits in two.
#pragma once

#include <algorithm>
#include <optional>

#include "config/config.h"
#include "core/core.h"
#include "geometry/predicates.h"
#include "sim/movement.h"

namespace gather::bench {

using config::configuration;
using core::snapshot;
using geom::vec2;

class no_side_step_gather final : public core::gathering_algorithm {
 public:
  [[nodiscard]] vec2 destination(const snapshot& s) const override {
    const configuration& c = s.observed;
    const auto cls = config::classify(c);
    if (cls.cls == config::config_class::multiple) {
      // Ablation: ignore blockers, go straight.
      return *cls.target;
    }
    return base_.destination(s);
  }
  [[nodiscard]] std::string_view name() const override { return "no-side-step"; }

 private:
  core::wait_free_gather base_;
};

class unsafe_election_gather final : public core::gathering_algorithm {
 public:
  [[nodiscard]] vec2 destination(const snapshot& s) const override {
    const configuration& c = s.observed;
    const auto cls = config::classify(c);
    if (cls.cls == config::config_class::asymmetric) {
      return elect_anywhere(c);
    }
    return base_.destination(s);
  }
  [[nodiscard]] std::string_view name() const override { return "unsafe-election"; }

 private:
  // The same (mult, -sum, view) key as the real algorithm, but over all
  // occupied points rather than the safe ones.
  static vec2 elect_anywhere(const configuration& c) {
    const geom::tol& t = c.tolerance();
    const config::occupied_point* best = nullptr;
    config::view best_view;
    double best_sum = 0.0;
    for (const config::occupied_point& o : c.occupied()) {
      const double sum = c.sum_distances(o.position);
      if (best == nullptr) {
        best = &o;
        best_sum = sum;
        best_view = config::view_of(c, o.position);
        continue;
      }
      if (o.multiplicity != best->multiplicity) {
        if (o.multiplicity > best->multiplicity) {
          best = &o;
          best_sum = sum;
          best_view = config::view_of(c, o.position);
        }
        continue;
      }
      const int scmp = t.len_cmp(sum, best_sum);
      if (scmp != 0) {
        if (scmp < 0) {
          best = &o;
          best_sum = sum;
          best_view = config::view_of(c, o.position);
        }
        continue;
      }
      auto v = config::view_of(c, o.position);
      if (config::compare_views(v, best_view, t) > 0) {
        best = &o;
        best_sum = sum;
        best_view = std::move(v);
      }
    }
    return best->position;
  }

  core::wait_free_gather base_;
};

class proximity_tiebreak_gather final : public core::gathering_algorithm {
 public:
  [[nodiscard]] vec2 destination(const snapshot& s) const override {
    const configuration& c = s.observed;
    const auto cls = config::classify(c);
    if (cls.cls == config::config_class::asymmetric) {
      return elect_without_views(c, s.self);
    }
    return base_.destination(s);
  }
  [[nodiscard]] std::string_view name() const override {
    return "proximity-tiebreak";
  }

 private:
  // Ablation: the chirality-based view comparison is unavailable, so the
  // election key stops at (mult, -sum of distances).  Mirror twins tie; each
  // robot resolves the tie towards the nearest candidate.
  static vec2 elect_without_views(const configuration& c, vec2 self) {
    const geom::tol& t = c.tolerance();
    const auto safe = config::safe_occupied_points(c);
    std::vector<const config::occupied_point*> cands;
    for (std::size_t idx : safe) cands.push_back(&c.occupied()[idx]);
    if (cands.empty()) return self;
    int best_mult = 0;
    for (const auto* o : cands) best_mult = std::max(best_mult, o->multiplicity);
    std::erase_if(cands, [&](const auto* o) { return o->multiplicity != best_mult; });
    double best_sum = c.sum_distances(cands.front()->position);
    for (const auto* o : cands) {
      best_sum = std::min(best_sum, c.sum_distances(o->position));
    }
    std::erase_if(cands, [&](const auto* o) {
      return t.len_cmp(c.sum_distances(o->position), best_sum) != 0;
    });
    // Tie: nearest to self (the robot-dependent, chirality-free fallback).
    const config::occupied_point* pick = cands.front();
    for (const auto* o : cands) {
      if (geom::distance(o->position, self) < geom::distance(pick->position, self)) {
        pick = o;
      }
    }
    return pick->position;
  }

  core::wait_free_gather base_;
};

/// Movement adversary that parks any robot whose path crosses the magnet
/// point exactly there (model-legal: only when at least delta has been
/// covered and the destination is farther than delta).
class magnet_stop final : public sim::movement_adversary {
 public:
  explicit magnet_stop(vec2 magnet) : magnet_(magnet) {}

  double travelled(double want, double, sim::rng&) override { return want; }

  vec2 stop_point(vec2 from, vec2 dest, double delta, sim::rng&) override {
    const double want = geom::distance(from, dest);
    // Mirrors movement_adversary::stop_point's exact-zero guard.
    if (want <= delta || want == 0.0) return dest;  // gather-lint: allow(R3)
    const vec2 dir = (dest - from) / want;
    const double along = dot(magnet_ - from, dir);
    const double off = geom::distance(from + along * dir, magnet_);
    if (along >= delta && along <= want && off <= 1e-9 * want) {
      return magnet_;
    }
    return dest;
  }

  std::string_view name() const override { return "magnet"; }

 private:
  vec2 magnet_;
};

}  // namespace gather::bench
