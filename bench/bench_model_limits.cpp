// Experiment E10 (extension) -- the capability/fault-model boundaries the
// paper states around its main theorem.
//
//   (a) Strong multiplicity detection is *necessary* (Sec. I): under weak
//       detection a (k, n-k) two-stack configuration is indistinguishable
//       from the bivalent one, so the algorithm freezes exactly there.
//   (b) Transient faults are tolerated for free (oblivious = self-stabilizing,
//       Sec. I): scattering the whole swarm mid-run just restarts it.
//   (c) Byzantine faults are beyond crash tolerance ([1], cited in Sec. I:
//       one byzantine robot defeats gathering for n = 3): a splitter
//       byzantine keeps the correct robots from ever resting gathered.
#include <cstdio>

#include "core/wait_free_gather.h"
#include "core/weak_multiplicity.h"
#include "harness.h"
#include "workloads/generators.h"

int main() {
  using namespace gather;
  const core::wait_free_gather algo;

  std::printf("E10 (extension): capability and fault-model boundaries\n\n");

  // (a) weak multiplicity -----------------------------------------------------
  std::printf("(a) multiplicity detection on two-stack configurations (k, n-k):\n");
  std::printf("    %-10s %-10s | %-12s %-12s\n", "stacks", "class", "strong",
              "weak");
  bench::print_rule(56);
  const core::weak_multiplicity_adapter weak(algo);
  for (const auto& [k, m] : std::vector<std::pair<int, int>>{
           {3, 2}, {4, 2}, {5, 3}, {4, 4}}) {
    std::vector<geom::vec2> pts;
    for (int i = 0; i < k; ++i) pts.push_back({0, 0});
    for (int i = 0; i < m; ++i) pts.push_back({6, 0});
    auto run = [&](const core::gathering_algorithm& a) {
      auto sched = sim::make_synchronous();
      auto move = sim::make_full_movement();
      auto crash = sim::make_no_crash();
      sim::sim_options opts;
      opts.max_rounds = 1'000;
      return bench::run_pieces(pts, a, *sched, *move, *crash, opts);
    };
    const auto rs = run(algo);
    const auto rw = run(weak);
    std::printf("    (%d,%d)%5s %-10s | %-12s %-12s\n", k, m, "",
                std::string(config::to_string(
                    config::classify(config::configuration(pts)).cls)).c_str(),
                std::string(sim::to_string(rs.status)).c_str(),
                std::string(sim::to_string(rw.status)).c_str());
  }
  std::printf("    -> weak detection freezes every unequal stack pair it\n"
              "       cannot tell from bivalent; strong detection gathers all\n"
              "       but the true bivalent (4,4).\n\n");

  // (b) transient faults -------------------------------------------------------
  std::printf("(b) transient faults (full scatter of all positions mid-run):\n");
  std::printf("    %-12s %-12s | %9s %9s\n", "scatters", "crashes f", "success",
              "med.rnd");
  bench::print_rule(56);
  for (const std::size_t scatters : {std::size_t{1}, std::size_t{3}}) {
    for (const std::size_t f : {std::size_t{0}, std::size_t{3}}) {
      bench::cell_stats stats;
      for (int seed = 0; seed < 10; ++seed) {
        sim::rng r(60'000 + seed);
        auto sched = sim::make_fair_random();
        auto move = sim::make_random_stop();
        auto crash = f == 0 ? sim::make_no_crash() : sim::make_random_crashes(f, 40);
        std::vector<std::size_t> rounds;
        for (std::size_t s = 0; s < scatters; ++s) rounds.push_back(5 + 7 * s);
        auto perturb = sim::make_scatter_at(rounds, 10.0);
        sim::sim_options opts;
        opts.seed = 61'000 + seed;
        sim::sim_spec spec;
        spec.initial = workloads::uniform_random(8, r);
        spec.algorithm = &algo;
        spec.scheduler = sched.get();
        spec.movement = move.get();
        spec.crash = crash.get();
        spec.options = opts;
        spec.perturbation = perturb.get();
        stats.add(sim::run(spec));
      }
      std::printf("    %-12zu %-12zu | %8.0f%% %9zu\n", scatters, f,
                  100.0 * stats.success_rate(), stats.median_rounds());
    }
  }
  std::printf("    -> oblivious algorithms restart from any corrupted state:\n"
              "       self-stabilization for free (Sec. I).\n\n");

  // (c) byzantine --------------------------------------------------------------
  std::printf("(c) one splitter-byzantine robot among n (20k-round budget):\n");
  std::printf("    %-6s | %9s %14s\n", "n", "success", "med.rnd(gath.)");
  bench::print_rule(40);
  for (const std::size_t n : {std::size_t{3}, std::size_t{5}, std::size_t{9}}) {
    bench::cell_stats stats;
    for (int seed = 0; seed < 10; ++seed) {
      sim::rng r(70'000 + seed);
      auto sched = sim::make_fair_random();
      auto move = sim::make_full_movement();
      auto crash = sim::make_no_crash();
      auto byz = sim::make_splitter_byzantine({0});
      sim::sim_options opts;
      opts.seed = 71'000 + seed;
      opts.max_rounds = 20'000;
      sim::sim_spec spec;
      spec.initial = workloads::uniform_random(n, r);
      spec.algorithm = &algo;
      spec.scheduler = sched.get();
      spec.movement = move.get();
      spec.crash = crash.get();
      spec.options = opts;
      spec.byzantine = byz.get();
      stats.add(sim::run(spec));
    }
    std::printf("    %-6zu | %8.0f%% %14zu\n", n, 100.0 * stats.success_rate(),
                stats.median_rounds());
  }
  std::printf(
      "    -> observed: these byzantine *heuristics* fail to stop the\n"
      "       algorithm -- once two correct robots merge, strong multiplicity\n"
      "       detection anchors them and the splitter cannot dissolve the\n"
      "       stack.  The formal n=3 impossibility of Agmon-Peleg [1] needs a\n"
      "       fully coordinated adversary (scheduler + movement truncation +\n"
      "       indistinguishable mimicry) that no simple policy reproduces;\n"
      "       mapping that boundary empirically is open follow-up work.\n");
  return 0;
}
