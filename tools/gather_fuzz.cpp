// gather_fuzz -- randomized counterexample search for the main theorem.
//
// Samples random instances (size, configuration, scheduler, movement
// adversary, crash pattern, frames) and checks the full contract on each run:
//
//   * gathering succeeds (Theorem 5.1),
//   * zero wait-freeness violations (Lemma 5.1),
//   * the bivalent configuration is never entered (Lemmas 5.6/5.7),
//   * only lawful class transitions occur (Lemmas 5.3-5.9).
//
// On a violation the harness *shrinks* the instance -- dropping robots while
// the failure reproduces -- and prints the minimal configuration in the
// points-file format, ready for `gather_cli --points`.  Exit code 0 = no
// counterexample found.
//
//   gather_fuzz [iterations] [max_n] [base_seed]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "core/wait_free_gather.h"
#include "sim/sim.h"
#include "workloads/generators.h"
#include "workloads/io.h"

namespace {

using namespace gather;

struct instance {
  std::vector<geom::vec2> points;
  std::size_t scheduler = 0;
  std::size_t movement = 0;
  std::size_t crashes = 0;
  std::uint64_t seed = 0;
  bool local_frames = false;
};

struct verdict {
  bool ok = true;
  std::string reason;
};

verdict check(const instance& in) {
  const core::wait_free_gather algo;
  auto sched = sim::all_schedulers()[in.scheduler].make();
  auto move = sim::all_movements()[in.movement].make();
  auto crash = in.crashes == 0 ? sim::make_no_crash()
                               : sim::make_random_crashes(in.crashes, 40);
  sim::sim_options opts;
  opts.seed = in.seed;
  opts.check_wait_freeness = true;
  opts.local_frames = in.local_frames;
  opts.max_rounds = 100'000;
  const auto res = sim::simulate(in.points, algo, *sched, *move, *crash, opts);

  const bool started_bivalent =
      config::classify(config::configuration(in.points)).cls ==
      config::config_class::bivalent;
  verdict v;
  if (started_bivalent) return v;  // unsolvable by design; skip
  if (res.status != sim::sim_status::gathered) {
    v.ok = false;
    v.reason = "status=" + std::string(sim::to_string(res.status));
  } else if (res.wait_free_violations > 0) {
    v.ok = false;
    v.reason = "wait-freeness violated " +
               std::to_string(res.wait_free_violations) + "x";
  } else if (res.bivalent_entries > 0) {
    v.ok = false;
    v.reason = "entered bivalent configuration";
  } else if (!sim::transitions_allowed(res.class_history)) {
    v.ok = false;
    v.reason = "disallowed class transition";
  }
  return v;
}

/// Greedily drop robots while the failure reproduces.
instance shrink(instance in, const std::string& original_reason) {
  bool progress = true;
  while (progress && in.points.size() > 2) {
    progress = false;
    for (std::size_t i = 0; i < in.points.size(); ++i) {
      instance smaller = in;
      smaller.points.erase(smaller.points.begin() + i);
      if (smaller.crashes >= smaller.points.size()) {
        smaller.crashes = smaller.points.size() - 1;
      }
      const verdict v = check(smaller);
      if (!v.ok && v.reason == original_reason) {
        in = std::move(smaller);
        progress = true;
        break;
      }
    }
  }
  return in;
}

}  // namespace

int main(int argc, char** argv) {
  const int iterations = argc > 1 ? std::atoi(argv[1]) : 200;
  const std::size_t max_n = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 12;
  const std::uint64_t base_seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

  sim::rng meta(base_seed);
  int failures = 0;
  for (int it = 0; it < iterations; ++it) {
    instance in;
    const std::size_t n = 3 + meta.uniform_int(0, max_n - 3);
    // Mix generators, including the structured classes.
    switch (meta.uniform_int(0, 6)) {
      case 0: in.points = workloads::with_majority(n, 2 + n / 3, meta); break;
      case 1: in.points = workloads::linear_unique_weber(n, meta); break;
      case 2: in.points = workloads::linear_two_weber(n, meta); break;
      case 3: in.points = workloads::axially_symmetric(n, meta); break;
      case 4: in.points = workloads::clustered(n, 2 + n / 4, 1.0, meta); break;
      case 5: in.points = workloads::jittered_grid(n, 0.3, meta); break;
      default: in.points = workloads::uniform_random(n, meta); break;
    }
    in.scheduler = meta.uniform_int(0, sim::all_schedulers().size() - 1);
    in.movement = meta.uniform_int(0, sim::all_movements().size() - 1);
    in.crashes = meta.uniform_int(0, in.points.size() - 1);
    in.seed = meta.uniform_int(0, 1'000'000);
    in.local_frames = meta.flip(0.25);

    const verdict v = check(in);
    if (v.ok) continue;

    ++failures;
    const instance minimal = shrink(in, v.reason);
    std::printf("counterexample #%d: %s\n", failures, v.reason.c_str());
    std::printf("  scheduler=%s movement=%s crashes=%zu seed=%llu frames=%d\n",
                std::string(sim::all_schedulers()[minimal.scheduler].name).c_str(),
                std::string(sim::all_movements()[minimal.movement].name).c_str(),
                minimal.crashes,
                static_cast<unsigned long long>(minimal.seed),
                minimal.local_frames ? 1 : 0);
    std::printf("  minimal configuration (%zu robots):\n", minimal.points.size());
    workloads::write_points(std::cout, minimal.points);
  }

  std::printf("gather_fuzz: %d iterations, %d counterexamples\n", iterations,
              failures);
  return failures == 0 ? 0 : 1;
}
