// gather_fuzz -- randomized counterexample search for the main theorem.
//
// Samples random instances (size, configuration, scheduler, movement
// adversary, crash pattern, frames) and checks the full contract on each run:
//
//   * gathering succeeds (Theorem 5.1),
//   * zero wait-freeness violations (Lemma 5.1),
//   * the bivalent configuration is never entered (Lemmas 5.6/5.7),
//   * only lawful class transitions occur (Lemmas 5.3-5.9).
//
// On a violation the harness *shrinks* the instance -- dropping robots while
// the failure reproduces -- and prints the minimal configuration in the
// points-file format, ready for `gather_cli --points`.  Exit code 0 = no
// counterexample found.
//
// Iterations run across `--jobs` threads (runner library): every iteration's
// instance is derived from a pure hash of (base seed, iteration index), and
// reports are printed in iteration order, so output is identical for every
// jobs value.
//
//   gather_fuzz [iterations] [max_n] [base_seed]
//   gather_fuzz --iterations 500 --max-n 12 --seed 1 --jobs 4
//               --workloads uniform,axial,clustered
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/wait_free_gather.h"
#include "runner/runner.h"
#include "sim/sim.h"
#include "util/cli.h"
#include "workloads/io.h"

namespace {

using namespace gather;

struct instance {
  std::vector<geom::vec2> points;
  std::size_t scheduler = 0;
  std::size_t movement = 0;
  std::size_t crashes = 0;
  std::uint64_t seed = 0;
  bool local_frames = false;
};

struct verdict {
  bool ok = true;
  std::string reason;
};

verdict check(const instance& in) {
  const core::wait_free_gather algo;
  auto sched = sim::all_schedulers()[in.scheduler].make();
  auto move = sim::all_movements()[in.movement].make();
  auto crash = in.crashes == 0 ? sim::make_no_crash()
                               : sim::make_random_crashes(in.crashes, 40);
  sim::sim_options opts;
  opts.seed = in.seed;
  opts.check_wait_freeness = true;
  opts.local_frames = in.local_frames;
  opts.max_rounds = 100'000;
  sim::sim_spec spec;
  spec.initial = in.points;
  spec.algorithm = &algo;
  spec.scheduler = sched.get();
  spec.movement = move.get();
  spec.crash = crash.get();
  spec.options = opts;
  const auto res = sim::run(spec);

  const bool started_bivalent =
      config::classify(config::configuration(in.points)).cls ==
      config::config_class::bivalent;
  verdict v;
  if (started_bivalent) return v;  // unsolvable by design; skip
  if (res.status != sim::sim_status::gathered) {
    v.ok = false;
    v.reason = "status=" + std::string(sim::to_string(res.status));
  } else if (res.wait_free_violations > 0) {
    v.ok = false;
    v.reason = "wait-freeness violated " +
               std::to_string(res.wait_free_violations) + "x";
  } else if (res.bivalent_entries > 0) {
    v.ok = false;
    v.reason = "entered bivalent configuration";
  } else if (!sim::transitions_allowed(res.class_history)) {
    v.ok = false;
    v.reason = "disallowed class transition";
  }
  return v;
}

/// Greedily drop robots while the failure reproduces.
instance shrink(instance in, const std::string& original_reason) {
  bool progress = true;
  while (progress && in.points.size() > 2) {
    progress = false;
    for (std::size_t i = 0; i < in.points.size(); ++i) {
      instance smaller = in;
      smaller.points.erase(smaller.points.begin() + i);
      if (smaller.crashes >= smaller.points.size()) {
        smaller.crashes = smaller.points.size() - 1;
      }
      const verdict v = check(smaller);
      if (!v.ok && v.reason == original_reason) {
        in = std::move(smaller);
        progress = true;
        break;
      }
    }
  }
  return in;
}

/// The instance of iteration `it` -- a pure function of (base_seed, it).
instance make_instance(std::uint64_t base_seed, std::size_t it,
                       std::size_t max_n,
                       const std::vector<std::string>& workload_pool) {
  sim::rng r(runner::derive_seed(base_seed, it));
  instance in;
  const std::size_t n = 3 + r.uniform_int(0, max_n - 3);
  const std::size_t w = r.uniform_int(0, workload_pool.size() - 1);
  in.points = runner::build_workload(workload_pool[w], n, r);
  in.scheduler = r.uniform_int(0, sim::all_schedulers().size() - 1);
  in.movement = r.uniform_int(0, sim::all_movements().size() - 1);
  in.crashes = r.uniform_int(0, in.points.size() - 1);
  in.seed = r.uniform_int(0, 1'000'000);
  in.local_frames = r.flip(0.25);
  return in;
}

/// A fully-rendered counterexample report, built in the worker and printed
/// later in iteration order.
std::string report(const instance& minimal, const std::string& reason) {
  std::ostringstream os;
  os << reason << "\n"
     << "  scheduler=" << sim::all_schedulers()[minimal.scheduler].name
     << " movement=" << sim::all_movements()[minimal.movement].name
     << " crashes=" << minimal.crashes << " seed=" << minimal.seed
     << " frames=" << (minimal.local_frames ? 1 : 0) << "\n"
     << "  minimal configuration (" << minimal.points.size() << " robots):\n";
  workloads::write_points(os, minimal.points);
  return os.str();
}

struct args {
  int iterations = 200;
  std::size_t max_n = 12;
  std::uint64_t base_seed = 1;
  std::size_t jobs = 0;  // 0 = hardware concurrency
  // Default pool: the generator mix biased towards the structured classes.
  std::vector<std::string> workloads = {"majority", "linear-1w", "linear-2w",
                                        "axial",    "clustered", "grid",
                                        "uniform"};
};

cli::parser make_parser(args& a) {
  cli::parser p("gather_fuzz", "randomized counterexample search");
  p.opt_int("--iterations", "random instances to try (default 200)",
            &a.iterations);
  p.opt_size("--max-n", "largest instance size sampled (default 12)",
             &a.max_n);
  p.opt_u64("--seed", "base seed for per-iteration hashed seeds",
            &a.base_seed);
  p.opt("--jobs", "N", "worker threads (default: all hardware threads)",
        [&a](const std::string& v) {
          a.jobs = cli::parse_size(v);
          if (a.jobs == 0) {
            throw std::invalid_argument("must be >= 1");
          }
        });
  p.opt("--workloads", "W1,W2|all", "generator pool",
        [&a](const std::string& v) {
          a.workloads = (v == "all") ? runner::workload_names()
                                     : runner::split_csv_strict(v);
        });
  // Legacy positional form, kept for muscle memory and old scripts.
  p.positionals("[iterations] [max_n] [base_seed]",
                [&a](std::size_t ordinal, const std::string& v) {
                  switch (ordinal) {
                    case 0: a.iterations = cli::parse_int(v); break;
                    case 1: a.max_n = cli::parse_size(v); break;
                    case 2: a.base_seed = cli::parse_u64(v); break;
                    default:
                      throw std::invalid_argument("too many positional arguments");
                  }
                });
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  args a;
  make_parser(a).parse_or_exit(argc, argv);
  try {
    if (a.max_n < 3) {
      std::fprintf(stderr, "--max-n must be >= 3\n");
      return 2;
    }
    // Validate the generator pool up front.
    sim::rng probe(1);
    for (const auto& w : a.workloads) (void)runner::build_workload(w, 4, probe);

    const std::size_t total =
        a.iterations > 0 ? static_cast<std::size_t>(a.iterations) : 0;
    std::vector<std::optional<std::string>> failures(total);
    util::thread_pool pool(a.jobs);
    pool.parallel_for(total, [&](std::size_t it) {
      const instance in = make_instance(a.base_seed, it, a.max_n, a.workloads);
      const verdict v = check(in);
      if (v.ok) return;
      failures[it] = report(shrink(in, v.reason), v.reason);
    });

    int count = 0;
    for (const auto& f : failures) {
      if (!f) continue;
      std::printf("counterexample #%d: %s", ++count, f->c_str());
    }
    std::printf("gather_fuzz: %zu iterations, %d counterexamples\n", total,
                count);
    return count == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gather_fuzz: %s\n", e.what());
    return 2;
  }
}
