// gather_cli -- command-line scenario runner for the gathering library.
//
// Composes a workload, an algorithm, and the three adversaries (scheduler,
// movement, crashes) from flags, runs the ATOM (or ASYNC) engine, and reports
// a summary, a CSV trace, or ASCII frames.
//
//   gather_cli --workload uniform --n 12 --f 3 --scheduler fair-random
//              --movement random-stop --delta 0.05 --seed 7 --output summary
//   gather_cli --workload biangular --n 12 --output frames
//   gather_cli --workload linear-2w --n 8 --algorithm cog --output csv
//   gather_cli --list
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>

#include "baselines/baselines.h"
#include "obs/obs.h"
#include "core/weak_multiplicity.h"
#include "core/wait_free_gather.h"
#include "sim/sim.h"
#include "util/cli.h"
#include "workloads/generators.h"
#include "workloads/io.h"

namespace {

using namespace gather;

struct options {
  std::string workload = "uniform";
  std::string points_file;  // overrides workload when set
  std::string algorithm = "wfg";
  std::string scheduler = "fair-random";
  std::string movement = "random-stop";
  std::string output = "summary";
  std::string engine = "atom";         // atom | async
  std::string async_policy = "random"; // sequential | random | look-move
  std::string trace_jsonl;             // JSONL event trace output path
  std::size_t n = 8;
  std::size_t f = 0;
  double delta = 0.05;
  std::uint64_t seed = 1;
  std::size_t max_rounds = 50'000;
  bool local_frames = false;
  bool metrics = false;
  bool list = false;
};

cli::parser make_parser(options& o) {
  cli::parser p("gather_cli", "run a robot-gathering scenario");
  p.opt_string("--workload", "W",
               "uniform | majority | linear-1w | linear-2w | polygon | rings "
               "| biangular | qr-center | axial | bivalent | grid | clustered",
               &o.workload);
  p.opt_string("--points", "FILE",
               "read the initial configuration from FILE (one 'x y' per "
               "line; overrides --workload/--n)", &o.points_file);
  p.opt_string("--algorithm", "A",
               "wfg (wait-free-gather) | cog (center-of-gravity) | sfg "
               "(single-fault) | median | weak (weak-multiplicity wfg)",
               &o.algorithm);
  p.opt_string("--scheduler", "S",
               "synchronous | round-robin | fair-random | laggard | "
               "half-alternating", &o.scheduler);
  p.opt_string("--movement", "M", "full | minimal | random-stop", &o.movement);
  p.opt_string("--engine", "E", "atom (default) | async", &o.engine);
  p.opt_string("--async-policy", "P",
               "sequential | random | look-move (async engine only)",
               &o.async_policy);
  p.opt_size("--n", "number of robots (default 8)", &o.n);
  p.opt_size("--f", "crash faults, f < n (default 0)", &o.f);
  p.opt_double("--delta",
               "movement guarantee as fraction of diameter (default 0.05)",
               &o.delta);
  p.opt_u64("--seed", "RNG seed (default 1)", &o.seed);
  p.opt_size("--max-rounds", "round budget (default 50000)", &o.max_rounds);
  p.toggle("--local-frames", "observe through per-robot similarity frames",
           &o.local_frames);
  p.opt_string("--trace-jsonl", "P",
               "write the structured event trace to P (JSONL)", &o.trace_jsonl);
  p.toggle("--metrics",
           "print the run's metrics registry (JSON) after the summary, "
           "including hot-path profile timings", &o.metrics);
  p.opt_string("--output", "O", "summary | csv | frames | json | svg",
               &o.output);
  p.toggle("--list", "list available components and exit", &o.list);
  return p;
}

void print_list() {
  std::puts("workloads:  uniform majority linear-1w linear-2w polygon rings");
  std::puts("            biangular qr-center axial bivalent");
  std::puts("algorithms: wfg cog sfg median weak");
  std::printf("schedulers:");
  for (const auto& s : sim::all_schedulers()) {
    std::printf(" %s", std::string(s.name).c_str());
  }
  std::printf("\nmovements: ");
  for (const auto& m : sim::all_movements()) {
    std::printf(" %s", std::string(m.name).c_str());
  }
  std::puts("\nengines:    atom async");
}

std::vector<geom::vec2> make_workload(const options& o, sim::rng& r) {
  const std::size_t n = std::max<std::size_t>(o.n, 2);
  if (o.workload == "uniform") return workloads::uniform_random(n, r);
  if (o.workload == "majority") {
    return workloads::with_majority(n, std::max<std::size_t>(2, n / 3), r);
  }
  if (o.workload == "linear-1w") return workloads::linear_unique_weber(n, r);
  if (o.workload == "linear-2w") return workloads::linear_two_weber(n, r);
  if (o.workload == "polygon") return workloads::regular_polygon(n);
  if (o.workload == "rings") {
    return workloads::symmetric_rings(std::max<std::size_t>(3, n / 2), 2, r);
  }
  if (o.workload == "biangular") {
    return workloads::biangular(std::max<std::size_t>(2, n / 2), 0.4, r);
  }
  if (o.workload == "qr-center") return workloads::quasi_regular_with_center(n, 1, r);
  if (o.workload == "axial") return workloads::axially_symmetric(n, r);
  if (o.workload == "bivalent") return workloads::bivalent(n, r);
  if (o.workload == "grid") return workloads::jittered_grid(n, 0.2, r);
  if (o.workload == "clustered") {
    return workloads::clustered(n, std::max<std::size_t>(2, n / 4), 1.0, r);
  }
  std::fprintf(stderr, "unknown workload: %s\n", o.workload.c_str());
  std::exit(2);
}

const core::gathering_algorithm& make_algorithm(const options& o) {
  static const core::wait_free_gather wfg;
  static const core::weak_multiplicity_adapter weak(wfg);
  static const baselines::center_of_gravity cog;
  static const baselines::single_fault_gather sfg;
  static const baselines::median_pursuit median;
  if (o.algorithm == "wfg") return wfg;
  if (o.algorithm == "weak") return weak;
  if (o.algorithm == "cog") return cog;
  if (o.algorithm == "sfg") return sfg;
  if (o.algorithm == "median") return median;
  std::fprintf(stderr, "unknown algorithm: %s\n", o.algorithm.c_str());
  std::exit(2);
}

std::unique_ptr<sim::activation_scheduler> make_sched(const options& o) {
  for (const auto& s : sim::all_schedulers()) {
    if (s.name == o.scheduler) return s.make();
  }
  std::fprintf(stderr, "unknown scheduler: %s\n", o.scheduler.c_str());
  std::exit(2);
}

std::unique_ptr<sim::movement_adversary> make_move(const options& o) {
  for (const auto& m : sim::all_movements()) {
    if (m.name == o.movement) return m.make();
  }
  std::fprintf(stderr, "unknown movement: %s\n", o.movement.c_str());
  std::exit(2);
}

/// Observability attachments shared by both engine paths: an optional JSONL
/// trace file and an optional metrics registry (with hot-path profiling).
struct observability {
  explicit observability(const options& o)
      : trace_path(o.trace_jsonl), want_metrics(o.metrics), sink(&trace) {}

  /// Attach to a spec (call before running).
  void attach(sim::sim_spec& spec) {
    if (!trace_path.empty()) spec.sink = &sink;
    if (want_metrics) {
      spec.metrics = &registry;
      spec.profile = &profile;
    }
  }

  /// Write the trace file / print the registry (call after running).
  /// Returns false when the trace file cannot be written.
  [[nodiscard]] bool finish() {
    if (want_metrics) {
      obs::export_profile(profile, registry);
      std::printf("metrics:    %s\n", registry.to_json().c_str());
    }
    if (trace_path.empty()) return true;
    std::ofstream out(trace_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "--trace-jsonl %s: cannot open for writing\n",
                   trace_path.c_str());
      return false;
    }
    out << trace;
    return static_cast<bool>(out);
  }

  std::string trace_path;
  bool want_metrics;
  std::string trace;
  obs::jsonl_string_sink sink;
  obs::metrics_registry registry;
  obs::prof_registry profile;
};

int run_async(const options& o, const std::vector<geom::vec2>& pts) {
  const auto& algo = make_algorithm(o);
  auto move = make_move(o);
  auto crash = o.f == 0 ? sim::make_no_crash() : sim::make_random_crashes(o.f, 50);

  sim::sim_spec spec;
  spec.initial = pts;
  spec.algorithm = &algo;
  spec.movement = move.get();
  spec.crash = crash.get();
  spec.async.delta_fraction = o.delta;
  spec.async.seed = o.seed;
  if (o.async_policy == "sequential") {
    spec.async.policy = sim::async_policy::atomic_sequential;
  } else if (o.async_policy == "look-move") {
    spec.async.policy = sim::async_policy::look_all_move_all;
  } else {
    spec.async.policy = sim::async_policy::random_interleaving;
  }
  observability watch(o);
  watch.attach(spec);
  const auto res = sim::run_async(spec);
  std::printf("engine:     async (%s)\n", std::string(sim::to_string(spec.async.policy)).c_str());
  std::printf("status:     %s\n", std::string(sim::to_string(res.status)).c_str());
  std::printf("steps:      %zu (cycles %zu, stale moves %zu)\n", res.steps,
              res.cycles, res.stale_moves);
  std::printf("crashes:    %zu\n", res.crashes);
  if (res.status == sim::sim_status::gathered) {
    std::printf("gathered:   (%g, %g)\n", res.gather_point.x, res.gather_point.y);
  }
  if (!watch.finish()) return 2;
  return res.status == sim::sim_status::gathered ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  options o;
  make_parser(o).parse_or_exit(argc, argv);
  if (o.list) {
    print_list();
    return 0;
  }

  sim::rng workload_rng(o.seed);
  std::vector<geom::vec2> pts;
  if (!o.points_file.empty()) {
    std::string err;
    const auto loaded = workloads::read_points_file(o.points_file, &err);
    if (!loaded || loaded->size() < 2) {
      std::fprintf(stderr, "--points %s: %s\n", o.points_file.c_str(),
                   loaded ? "need at least 2 robots" : err.c_str());
      return 2;
    }
    pts = *loaded;
  } else {
    pts = make_workload(o, workload_rng);
  }
  const config::configuration c0(pts);
  std::printf("workload:   %s  (n=%zu, |U|=%zu, class %s)\n",
              o.points_file.empty() ? o.workload.c_str() : o.points_file.c_str(),
              pts.size(), c0.distinct_count(),
              std::string(config::to_string(config::classify(c0).cls)).c_str());

  if (o.engine == "async") return run_async(o, pts);

  const auto& algo = make_algorithm(o);
  auto sched = make_sched(o);
  auto move = make_move(o);
  auto crash = o.f == 0 ? sim::make_no_crash() : sim::make_random_crashes(o.f, 50);

  sim::sim_spec spec;
  spec.initial = pts;
  spec.algorithm = &algo;
  spec.scheduler = sched.get();
  spec.movement = move.get();
  spec.crash = crash.get();
  spec.options.delta_fraction = o.delta;
  spec.options.seed = o.seed;
  spec.options.max_rounds = o.max_rounds;
  spec.options.local_frames = o.local_frames;
  spec.options.check_wait_freeness = true;
  spec.options.record_trace = (o.output != "summary");
  observability watch(o);
  watch.attach(spec);

  const auto res = sim::run(spec);

  if (o.output == "json" || o.output == "svg") {
    if (o.output == "json") {
      sim::write_json_report(std::cout, res);
    } else {
      sim::write_svg(std::cout, res);
    }
    // The document owns stdout here; suppress the metrics line but still
    // honour --trace-jsonl.
    watch.want_metrics = false;
    if (!watch.finish()) return 2;
    return res.status == sim::sim_status::gathered ? 0 : 1;
  }
  if (o.output == "csv") {
    sim::write_trace_csv(std::cout, res);
    std::fflush(stdout);
  } else if (o.output == "frames") {
    const std::size_t frames = res.trace.size();
    for (std::size_t k = 0; k < 5 && frames > 0; ++k) {
      const auto& rec = res.trace[k * (frames - 1) / 4];
      std::printf("--- round %zu (class %s)\n%s\n", rec.round,
                  std::string(config::to_string(rec.cls)).c_str(),
                  sim::ascii_plot(rec.positions, rec.live, 56, 18).c_str());
    }
  }

  std::printf("algorithm:  %s\n", std::string(algo.name()).c_str());
  std::printf("status:     %s\n", std::string(sim::to_string(res.status)).c_str());
  std::printf("rounds:     %zu\n", res.rounds);
  std::printf("delta:      %g of diameter (abs %g)\n", o.delta, res.delta_abs);
  std::printf("crashes:    %zu\n", res.crashes);
  std::printf("wf-breach:  %zu, bivalent entries: %zu\n", res.wait_free_violations,
              res.bivalent_entries);
  if (res.status == sim::sim_status::gathered) {
    std::printf("gathered:   (%g, %g)\n", res.gather_point.x, res.gather_point.y);
  }
  if (!watch.finish()) return 2;
  return res.status == sim::sim_status::gathered ? 0 : 1;
}
