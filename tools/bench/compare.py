#!/usr/bin/env python3
"""Compare a bench_scaling JSON result against a committed baseline.

Usage:
    compare.py CURRENT.json BASELINE.json [--max-regress X]
    compare.py --bench BENCH_EXE BASELINE.json [--max-regress X]

With --bench, runs `BENCH_EXE --smoke --json <tmp>` first and compares that
output; this is the form the `bench-smoke` ctest uses.

Checks (exit 1 on any violation):
  * schema must be gather-bench-scaling-v1 on both sides;
  * GATHER_PROF call counters are exact algorithmic invariants of the fixed
    grid: any counter that increases relative to the baseline -- or any new
    counter site -- fails (more calls means the pipeline lost a cache hit or
    grew a redundant pass);
  * per-phase fast-path wall times may not regress by more than --max-regress
    (default 3.0: generous, because the smoke sizes are sub-millisecond and
    shared-machine timing noise is real; the counters are the tight gate).

Only grid points present on both sides are compared, so a smoke run (n = 32,
64) checks against the committed full baseline.
"""

import argparse
import json
import subprocess
import sys
import tempfile

SCHEMA = "gather-bench-scaling-v1"


def load(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("schema") != SCHEMA:
        sys.exit(f"compare.py: {path}: schema {doc.get('schema')!r}, "
                 f"expected {SCHEMA!r}")
    return doc


def compare(current, baseline, max_regress):
    failures = []

    base_counters = baseline.get("counters", {})
    cur_counters = current.get("counters", {})
    for site, calls in sorted(cur_counters.items()):
        if site not in base_counters:
            failures.append(f"new counter site prof.{site}.calls = {calls} "
                            "(not in baseline)")
        elif calls > base_counters[site]:
            failures.append(f"prof.{site}.calls increased: "
                            f"{base_counters[site]} -> {calls}")
    for site in sorted(set(base_counters) - set(cur_counters)):
        print(f"note: counter prof.{site}.calls absent from current run")

    base_phases = baseline.get("phases", {})
    for name, phase in sorted(current.get("phases", {}).items()):
        base_points = {p["n"]: p for p in base_phases.get(name, {}).get(
            "points", [])}
        for point in phase.get("points", []):
            base = base_points.get(point["n"])
            if base is None or base["fast_ns"] == 0 or point["fast_ns"] == 0:
                continue
            ratio = point["fast_ns"] / base["fast_ns"]
            status = "ok" if ratio <= max_regress else "FAIL"
            print(f"{name:>10} n={point['n']:<4} fast "
                  f"{point['fast_ns'] / 1e3:10.1f} us  baseline "
                  f"{base['fast_ns'] / 1e3:10.1f} us  x{ratio:.2f}  {status}")
            if ratio > max_regress:
                failures.append(f"phase {name} n={point['n']}: fast path "
                                f"{ratio:.2f}x baseline "
                                f"(limit {max_regress:.2f}x)")
    return failures


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("inputs", nargs="+", metavar="JSON",
                    help="CURRENT.json BASELINE.json, or just BASELINE.json "
                         "with --bench")
    ap.add_argument("--bench", metavar="EXE",
                    help="run EXE --smoke --json <tmp> as the current side")
    ap.add_argument("--max-regress", type=float, default=3.0)
    args = ap.parse_args()

    if args.bench:
        if len(args.inputs) != 1:
            ap.error("--bench takes exactly one JSON argument (the baseline)")
        with tempfile.NamedTemporaryFile(suffix=".json") as tmp:
            subprocess.run([args.bench, "--smoke", "--json", tmp.name],
                           check=True, stdout=subprocess.DEVNULL)
            current = load(tmp.name)
        baseline = load(args.inputs[0])
    else:
        if len(args.inputs) != 2:
            ap.error("expected CURRENT.json BASELINE.json")
        current = load(args.inputs[0])
        baseline = load(args.inputs[1])

    failures = compare(current, baseline, args.max_regress)
    for failure in failures:
        print(f"compare.py: {failure}", file=sys.stderr)
    if failures:
        return 1
    print("compare.py: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
