// gather_campaign -- combinatorial experiment campaigns to CSV.
//
// Expands comma-separated parameter lists into a full grid, runs every cell
// `--repeats` times with distinct seeds, and streams one CSV row per run:
//
//   workload,n,f,scheduler,movement,delta,seed,status,rounds,crashes,
//   wait_free_violations,bivalent_entries,first_mult_round,phases
//
// Examples:
//   gather_campaign --workloads uniform,majority --n 6,10 --f 0,2,5 \
//                   --schedulers fair-random,laggard --repeats 5 > runs.csv
//   gather_campaign --workloads all --n 8 --f 0 --schedulers all --repeats 2
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/wait_free_gather.h"
#include "sim/sim.h"
#include "workloads/generators.h"

namespace {

using namespace gather;

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char ch : s) {
    if (ch == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += ch;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

const std::vector<std::string>& all_workload_names() {
  static const std::vector<std::string> names = {
      "uniform",   "majority", "linear-1w", "linear-2w", "polygon",
      "rings",     "biangular", "qr-center", "axial",     "grid",
      "clustered"};
  return names;
}

std::vector<geom::vec2> build_workload(const std::string& name, std::size_t n,
                                       sim::rng& r) {
  if (name == "uniform") return workloads::uniform_random(n, r);
  if (name == "majority") {
    return workloads::with_majority(n, std::max<std::size_t>(2, n / 3), r);
  }
  if (name == "linear-1w") return workloads::linear_unique_weber(n, r);
  if (name == "linear-2w") return workloads::linear_two_weber(n, r);
  if (name == "polygon") return workloads::regular_polygon(n);
  if (name == "rings") {
    return workloads::symmetric_rings(std::max<std::size_t>(3, n / 2), 2, r);
  }
  if (name == "biangular") {
    return workloads::biangular(std::max<std::size_t>(2, n / 2), 0.4, r);
  }
  if (name == "qr-center") return workloads::quasi_regular_with_center(n, 1, r);
  if (name == "axial") return workloads::axially_symmetric(n, r);
  if (name == "grid") return workloads::jittered_grid(n, 0.2, r);
  if (name == "clustered") {
    return workloads::clustered(n, std::max<std::size_t>(2, n / 4), 1.0, r);
  }
  std::fprintf(stderr, "unknown workload: %s\n", name.c_str());
  std::exit(2);
}

struct args {
  std::vector<std::string> workloads = {"uniform"};
  std::vector<std::size_t> ns = {8};
  std::vector<std::size_t> fs = {0};
  std::vector<std::string> schedulers = {"fair-random"};
  std::vector<std::string> movements = {"random-stop"};
  std::vector<double> deltas = {0.05};
  int repeats = 3;
  std::uint64_t base_seed = 1;
  bool help = false;
};

void usage() {
  std::puts(
      "gather_campaign: grid sweeps to CSV\n"
      "  --workloads W1,W2|all   --n N1,N2   --f F1,F2   --repeats R\n"
      "  --schedulers S1,S2|all  --movements M1,M2|all   --deltas D1,D2\n"
      "  --seed S (base seed)    --help");
}

bool parse(int argc, char** argv, args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto need = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--workloads") {
      const std::string v = need();
      a.workloads = (v == "all") ? all_workload_names() : split_csv(v);
    } else if (flag == "--n") {
      a.ns.clear();
      for (const auto& s : split_csv(need())) a.ns.push_back(std::strtoul(s.c_str(), nullptr, 10));
    } else if (flag == "--f") {
      a.fs.clear();
      for (const auto& s : split_csv(need())) a.fs.push_back(std::strtoul(s.c_str(), nullptr, 10));
    } else if (flag == "--schedulers") {
      const std::string v = need();
      a.schedulers.clear();
      if (v == "all") {
        for (const auto& s : sim::all_schedulers()) a.schedulers.emplace_back(s.name);
      } else {
        a.schedulers = split_csv(v);
      }
    } else if (flag == "--movements") {
      const std::string v = need();
      a.movements.clear();
      if (v == "all") {
        for (const auto& m : sim::all_movements()) a.movements.emplace_back(m.name);
      } else {
        a.movements = split_csv(v);
      }
    } else if (flag == "--deltas") {
      a.deltas.clear();
      for (const auto& s : split_csv(need())) a.deltas.push_back(std::strtod(s.c_str(), nullptr));
    } else if (flag == "--repeats") {
      a.repeats = std::atoi(need().c_str());
    } else if (flag == "--seed") {
      a.base_seed = std::strtoull(need().c_str(), nullptr, 10);
    } else if (flag == "--help" || flag == "-h") {
      a.help = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

std::unique_ptr<sim::activation_scheduler> sched_by_name(const std::string& name) {
  for (const auto& s : sim::all_schedulers()) {
    if (s.name == name) return s.make();
  }
  std::fprintf(stderr, "unknown scheduler: %s\n", name.c_str());
  std::exit(2);
}

std::unique_ptr<sim::movement_adversary> move_by_name(const std::string& name) {
  for (const auto& m : sim::all_movements()) {
    if (m.name == name) return m.make();
  }
  std::fprintf(stderr, "unknown movement: %s\n", name.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  args a;
  if (!parse(argc, argv, a)) return 2;
  if (a.help) {
    usage();
    return 0;
  }

  const core::wait_free_gather algo;
  std::printf(
      "workload,n,f,scheduler,movement,delta,seed,status,rounds,crashes,"
      "wait_free_violations,bivalent_entries,first_mult_round,phases\n");

  std::uint64_t seq = 0;
  for (const auto& wname : a.workloads) {
    for (std::size_t n : a.ns) {
      for (std::size_t f : a.fs) {
        if (f >= n) continue;
        for (const auto& sname : a.schedulers) {
          for (const auto& mname : a.movements) {
            for (double delta : a.deltas) {
              for (int rep = 0; rep < a.repeats; ++rep) {
                const std::uint64_t seed = a.base_seed + 7919 * seq++;
                sim::rng wr(seed);
                const auto pts = build_workload(wname, n, wr);
                auto sched = sched_by_name(sname);
                auto move = move_by_name(mname);
                auto crash = f == 0 ? sim::make_no_crash()
                                    : sim::make_random_crashes(f, 40);
                sim::sim_options opts;
                opts.seed = seed;
                opts.delta_fraction = delta;
                opts.check_wait_freeness = true;
                opts.record_trace = true;
                const auto res =
                    sim::simulate(pts, algo, *sched, *move, *crash, opts);
                const auto pot = sim::check_potentials(res);
                std::printf("%s,%zu,%zu,%s,%s,%g,%llu,%s,%zu,%zu,%zu,%zu,",
                            wname.c_str(), pts.size(), f, sname.c_str(),
                            mname.c_str(), delta,
                            static_cast<unsigned long long>(seed),
                            std::string(sim::to_string(res.status)).c_str(),
                            res.rounds, res.crashes, res.wait_free_violations,
                            res.bivalent_entries);
                if (pot.first_multiplicity_round == static_cast<std::size_t>(-1)) {
                  std::printf(",");
                } else {
                  std::printf("%zu,", pot.first_multiplicity_round);
                }
                std::printf("%zu\n", pot.phase_count);
              }
            }
          }
        }
      }
    }
  }
  return 0;
}
