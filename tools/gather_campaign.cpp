// gather_campaign -- combinatorial experiment campaigns to CSV, in parallel.
//
// Expands comma-separated parameter lists into a full grid, runs every cell
// `--repeats` times with per-cell hashed seeds across `--jobs` threads
// (runner library, see docs/RUNNER.md), and prints one CSV row per run:
//
//   workload,n,f,scheduler,movement,delta,seed,status,rounds,crashes,
//   wait_free_violations,bivalent_entries,first_mult_round,phases
//
// Output is byte-identical for every --jobs value: seeds are a pure hash of
// (base seed, cell index) and rows are merged in grid order.
//
// Examples:
//   gather_campaign --workloads uniform,majority --n 6,10 --f 0,2,5
//                   --schedulers fair-random,laggard --repeats 5 > runs.csv
//   gather_campaign --workloads all --n 8,16 --f 0,7 --schedulers all
//                   --repeats 3 --jobs $(nproc) --progress
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "runner/runner.h"
#include "sim/sim.h"

namespace {

using namespace gather;

struct args {
  runner::grid grid;
  std::size_t jobs = 0;  // 0 = hardware concurrency
  std::string trace_jsonl;  // JSONL event trace output path
  bool metrics = false;
  bool progress = false;
  bool summary = false;
  bool help = false;
};

void usage() {
  std::puts(
      "gather_campaign: grid sweeps to CSV\n"
      "  --workloads W1,W2|all   --n N1,N2   --f F1,F2   --repeats R\n"
      "  --schedulers S1,S2|all  --movements M1,M2|all   --deltas D1,D2\n"
      "  --seed S (base seed)    --jobs N (default: all hardware threads)\n"
      "  --progress (live runs/sec + ETA to stderr)\n"
      "  --summary  (per-cell aggregate CSV instead of per-run rows)\n"
      "  --trace-jsonl PATH (write every cell's event stream to PATH;\n"
      "                      bytes are independent of --jobs)\n"
      "  --metrics  (merged metrics registry + profile timings to stderr)\n"
      "  --help");
}

bool parse(int argc, char** argv, args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto need = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--workloads") {
      const std::string v = need();
      a.grid.workloads = (v == "all") ? runner::workload_names()
                                      : runner::split_csv_strict(v);
    } else if (flag == "--n") {
      a.grid.ns = runner::parse_size_list(need());
    } else if (flag == "--f") {
      a.grid.fs = runner::parse_size_list(need());
    } else if (flag == "--schedulers") {
      const std::string v = need();
      a.grid.schedulers.clear();
      if (v == "all") {
        for (const auto& s : sim::all_schedulers()) {
          a.grid.schedulers.emplace_back(s.name);
        }
      } else {
        a.grid.schedulers = runner::split_csv_strict(v);
      }
    } else if (flag == "--movements") {
      const std::string v = need();
      a.grid.movements.clear();
      if (v == "all") {
        for (const auto& m : sim::all_movements()) {
          a.grid.movements.emplace_back(m.name);
        }
      } else {
        a.grid.movements = runner::split_csv_strict(v);
      }
    } else if (flag == "--deltas") {
      a.grid.deltas = runner::parse_double_list(need());
    } else if (flag == "--repeats") {
      a.grid.repeats = std::atoi(need().c_str());
    } else if (flag == "--seed") {
      a.grid.base_seed = std::strtoull(need().c_str(), nullptr, 10);
    } else if (flag == "--jobs") {
      a.jobs = std::strtoul(need().c_str(), nullptr, 10);
      if (a.jobs == 0) {
        std::fprintf(stderr, "--jobs must be >= 1\n");
        std::exit(2);
      }
    } else if (flag == "--trace-jsonl") {
      a.trace_jsonl = need();
    } else if (flag == "--metrics") {
      a.metrics = true;
    } else if (flag == "--progress") {
      a.progress = true;
    } else if (flag == "--summary") {
      a.summary = true;
    } else if (flag == "--help" || flag == "-h") {
      a.help = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  args a;
  try {
    if (!parse(argc, argv, a)) return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gather_campaign: %s\n", e.what());
    return 2;
  }
  if (a.help) {
    usage();
    return 0;
  }

  runner::campaign_options opts;
  opts.jobs = a.jobs;
  if (a.progress) {
    opts.on_progress = [](const runner::progress& p) {
      std::fprintf(stderr,
                   "\rcampaign: %zu/%zu runs (%.0f runs/s, eta %.0fs, "
                   "%zu failures)%s",
                   p.completed, p.total, p.runs_per_sec, p.eta_seconds,
                   p.failures, p.completed == p.total ? "\n" : "");
      std::fflush(stderr);
    };
  }

  std::string trace;
  obs::metrics_registry metrics;
  if (!a.trace_jsonl.empty()) opts.trace_jsonl = &trace;
  if (a.metrics) {
    opts.metrics = &metrics;
    opts.profile = true;
  }

  std::vector<runner::run_result> results;
  try {
    results = runner::run_campaign(a.grid, opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gather_campaign: %s\n", e.what());
    return 2;
  }

  if (!a.trace_jsonl.empty()) {
    std::ofstream out(a.trace_jsonl, std::ios::binary);
    if (!out || !(out << trace)) {
      std::fprintf(stderr, "gather_campaign: cannot write %s\n",
                   a.trace_jsonl.c_str());
      return 2;
    }
  }
  if (a.metrics) {
    std::fprintf(stderr, "%s\n", metrics.to_json().c_str());
  }

  if (a.summary) {
    std::printf("%s\n", runner::summary_csv_header().c_str());
    for (const auto& cell : runner::summarize(results)) {
      std::printf("%s\n", runner::summary_csv_row(cell).c_str());
    }
  } else {
    std::printf("%s\n", runner::csv_header().c_str());
    for (const auto& r : results) {
      std::printf("%s\n", runner::csv_row(r).c_str());
    }
  }
  return 0;
}
