// gather_campaign -- combinatorial experiment campaigns to CSV, in parallel.
//
// Expands comma-separated parameter lists into a full grid, runs every cell
// `--repeats` times with per-cell hashed seeds across `--jobs` threads
// (runner library, see docs/RUNNER.md), and prints one CSV row per run:
//
//   workload,n,f,scheduler,movement,delta,seed,status,rounds,crashes,
//   wait_free_violations,bivalent_entries,first_mult_round,phases
//
// Output is byte-identical for every --jobs value: seeds are a pure hash of
// (base seed, cell index) and rows are merged in grid order.  The same
// contract extends across processes: `--shard-index/--shard-count` run one
// contiguous slice of the grid, `--checkpoint` makes the slice resumable,
// and the merge modes below fold per-shard artifacts back into the exact
// single-process bytes.
//
// Modes:
//   (default)                 run the grid (or one shard) and print CSV
//   --merge A.col,B.col,...   fold per-shard columnar results, print CSV
//   --merge-metrics A.mreg,.. fold per-shard metrics, print/write JSON
//   --from-columnar F.col     export a columnar result file as CSV
//
// Examples:
//   gather_campaign --workloads uniform,majority --n 6,10 --f 0,2,5
//                   --schedulers fair-random,laggard --repeats 5 > runs.csv
//   gather_campaign --shard-index 0 --shard-count 4 --checkpoint s0.ckpt
//                   --columnar s0.col --n 8,16 --repeats 3 > s0.csv
//   gather_campaign --merge s0.col,s1.col,s2.col,s3.col > merged.csv
#include <cstdio>
#include <exception>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "runner/runner.h"
#include "sim/sim.h"
#include "util/cli.h"

namespace {

using namespace gather;

struct args {
  runner::grid grid;
  std::size_t jobs = 0;  // 0 = hardware concurrency
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
  std::string checkpoint;
  std::size_t checkpoint_stride = 64;
  bool no_resume = false;
  std::size_t max_cells = 0;
  std::string columnar;      // columnar result output path
  std::string trace_jsonl;   // JSONL event trace output path
  std::string metrics_json;  // merged metrics JSON output path
  std::string metrics_bin;   // per-shard .mreg output path
  std::string merge;         // comma-separated columnar inputs
  std::string merge_metrics; // comma-separated .mreg inputs
  std::string from_columnar; // single columnar input to export
  bool metrics = false;
  bool progress = false;
  bool summary = false;
};

cli::parser make_parser(args& a) {
  cli::parser p("gather_campaign",
                "grid sweeps to CSV; shardable, resumable, mergeable "
                "(docs/RUNNER.md)");
  p.opt("--workloads", "W1,W2|all", "workload generators to sweep",
        [&a](const std::string& v) {
          a.grid.workloads = (v == "all") ? runner::workload_names()
                                          : runner::split_csv_strict(v);
        });
  p.opt("--n", "N1,N2", "robot counts to sweep", [&a](const std::string& v) {
    a.grid.ns = runner::parse_size_list(v);
  });
  p.opt("--f", "F1,F2", "crash budgets to sweep (f < n cells only)",
        [&a](const std::string& v) { a.grid.fs = runner::parse_size_list(v); });
  p.opt("--schedulers", "S1,S2|all", "schedulers to sweep",
        [&a](const std::string& v) {
          a.grid.schedulers.clear();
          if (v == "all") {
            for (const auto& s : sim::all_schedulers()) {
              a.grid.schedulers.emplace_back(s.name);
            }
          } else {
            a.grid.schedulers = runner::split_csv_strict(v);
          }
        });
  p.opt("--movements", "M1,M2|all", "movement adversaries to sweep",
        [&a](const std::string& v) {
          a.grid.movements.clear();
          if (v == "all") {
            for (const auto& m : sim::all_movements()) {
              a.grid.movements.emplace_back(m.name);
            }
          } else {
            a.grid.movements = runner::split_csv_strict(v);
          }
        });
  p.opt("--deltas", "D1,D2", "delta fractions to sweep",
        [&a](const std::string& v) {
          a.grid.deltas = runner::parse_double_list(v);
        });
  p.opt("--repeats", "R", "repeats per cell (default 3)",
        [&a](const std::string& v) { a.grid.repeats = cli::parse_int(v); });
  p.opt_u64("--seed", "base seed for per-cell hashed seeds",
            &a.grid.base_seed);
  p.opt("--jobs", "N", "worker threads (default: all hardware threads)",
        [&a](const std::string& v) {
          a.jobs = cli::parse_size(v);
          if (a.jobs == 0) {
            throw std::invalid_argument("must be >= 1");
          }
        });
  p.opt_size("--shard-index", "which shard of the grid to run (default 0)",
             &a.shard_index);
  p.opt("--shard-count", "N", "total shards the grid is split into",
        [&a](const std::string& v) {
          a.shard_count = cli::parse_size(v);
          if (a.shard_count == 0) {
            throw std::invalid_argument("must be >= 1");
          }
        });
  p.opt_string("--checkpoint", "PATH",
               "periodic checkpoint of completed cells; an existing matching "
               "checkpoint is resumed", &a.checkpoint);
  p.opt_size("--checkpoint-stride", "completions between checkpoint writes",
             &a.checkpoint_stride);
  p.toggle("--no-resume", "ignore an existing checkpoint, start fresh",
           &a.no_resume);
  p.opt_size("--max-cells",
             "stop after this many cells this invocation (0 = no cap); "
             "partial runs write only the checkpoint", &a.max_cells);
  p.opt_string("--columnar", "PATH",
               "binary columnar result sink (byte-stable; merge input)",
               &a.columnar);
  p.opt_string("--trace-jsonl", "PATH",
               "write every cell's event stream to PATH (bytes independent "
               "of --jobs)", &a.trace_jsonl);
  p.opt_string("--metrics-json", "PATH",
               "write the merged metrics registry as JSON to PATH",
               &a.metrics_json);
  p.opt_string("--metrics-bin", "PATH",
               "write this shard's metrics as a .mreg blob (merge input)",
               &a.metrics_bin);
  p.opt_string("--merge", "A.col,B.col",
               "merge mode: fold per-shard columnar files, print CSV",
               &a.merge);
  p.opt_string("--merge-metrics", "A.mreg,B.mreg",
               "merge mode: fold per-shard .mreg files to JSON", &a.merge_metrics);
  p.opt_string("--from-columnar", "F.col",
               "export mode: print a columnar result file as CSV",
               &a.from_columnar);
  p.toggle("--metrics",
           "merged metrics registry + profile timings to stderr", &a.metrics);
  p.toggle("--progress", "live runs/sec + ETA to stderr", &a.progress);
  p.toggle("--summary", "per-cell aggregate CSV instead of per-run rows",
           &a.summary);
  return p;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out || !(out << bytes)) {
    throw std::runtime_error("cannot write " + path);
  }
}

void print_rows(const std::vector<runner::run_result>& rows) {
  std::printf("%s\n", runner::csv_header().c_str());
  for (const auto& r : rows) {
    std::printf("%s\n", runner::csv_row(r).c_str());
  }
}

int merge_columnar(const args& a) {
  std::vector<obs::columnar_table> shards;
  for (const std::string& path : runner::split_csv_strict(a.merge)) {
    shards.push_back(obs::columnar_table::decode(read_file(path)));
  }
  const obs::columnar_table merged = runner::merge_result_tables(shards);
  if (!a.columnar.empty()) write_file(a.columnar, merged.encode());
  print_rows(runner::decode_results(merged));
  return 0;
}

int merge_metrics(const args& a) {
  std::vector<runner::shard_metrics> shards;
  for (const std::string& path : runner::split_csv_strict(a.merge_metrics)) {
    shards.push_back(runner::decode_shard_metrics(read_file(path)));
  }
  const runner::shard_metrics merged = runner::merge_shard_metrics(shards);
  const std::string json = merged.metrics.to_json() + "\n";
  if (a.metrics_json.empty()) {
    std::fputs(json.c_str(), stdout);
  } else {
    write_file(a.metrics_json, json);
  }
  return 0;
}

int export_columnar(const args& a) {
  const obs::columnar_table t =
      obs::columnar_table::decode(read_file(a.from_columnar));
  print_rows(runner::decode_results(t));
  return 0;
}

int run(const args& a) {
  runner::campaign_spec spec;
  spec.grid = a.grid;
  spec.shard = {a.shard_index, a.shard_count};
  spec.exec.jobs = a.jobs;
  spec.exec.max_cells = a.max_cells;
  if (a.progress) {
    spec.exec.on_progress = [](const runner::progress& p) {
      std::fprintf(stderr,
                   "\rcampaign: %zu/%zu runs (%.0f runs/s, eta %.0fs, "
                   "%zu failures)%s",
                   p.completed, p.total, p.runs_per_sec, p.eta_seconds,
                   p.failures, p.completed == p.total ? "\n" : "");
      std::fflush(stderr);
    };
  }
  spec.checkpoint.path = a.checkpoint;
  spec.checkpoint.stride = a.checkpoint_stride;
  spec.checkpoint.resume = !a.no_resume;

  std::string trace;
  obs::metrics_registry metrics;
  const bool want_metrics =
      a.metrics || !a.metrics_json.empty() || !a.metrics_bin.empty();
  if (!a.trace_jsonl.empty()) spec.sinks.trace_jsonl = &trace;
  if (want_metrics) {
    spec.sinks.metrics = &metrics;
    // Wall-clock profile timings are nondeterministic by nature, so they
    // only ride along with the stderr report, never the mergeable sinks.
    spec.sinks.profile = a.metrics;
  }

  const runner::campaign_result result = runner::run_campaign(spec);

  if (!result.complete()) {
    // Interrupted (cell budget or cancellation): the checkpoint holds the
    // progress; output artifacts are only written for complete shards so a
    // merge can never silently mix partial data.
    std::fprintf(stderr,
                 "campaign: partial shard (%zu of %zu cells done%s%s)\n",
                 result.rows.size(), result.range.size(),
                 a.checkpoint.empty() ? "" : ", checkpoint at ",
                 a.checkpoint.c_str());
    return 0;
  }

  if (!a.columnar.empty()) {
    write_file(a.columnar,
               runner::encode_results(result.rows, result.range,
                                      runner::grid_fingerprint(a.grid))
                   .encode());
  }
  if (!a.trace_jsonl.empty()) write_file(a.trace_jsonl, trace);
  if (a.metrics) std::fprintf(stderr, "%s\n", metrics.to_json().c_str());
  if (!a.metrics_json.empty()) {
    write_file(a.metrics_json, metrics.to_json() + "\n");
  }
  if (!a.metrics_bin.empty()) {
    runner::shard_metrics sm;
    sm.range = result.range;
    sm.fingerprint = runner::grid_fingerprint(a.grid);
    sm.metrics = metrics;
    write_file(a.metrics_bin, runner::encode_shard_metrics(sm));
  }

  if (a.summary) {
    std::printf("%s\n", runner::summary_csv_header().c_str());
    for (const auto& cell : runner::summarize(result.rows)) {
      std::printf("%s\n", runner::summary_csv_row(cell).c_str());
    }
  } else {
    print_rows(result.rows);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  args a;
  make_parser(a).parse_or_exit(argc, argv);
  try {
    if (!a.merge.empty()) return merge_columnar(a);
    if (!a.merge_metrics.empty()) return merge_metrics(a);
    if (!a.from_columnar.empty()) return export_columnar(a);
    return run(a);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "gather_campaign: %s\n", e.what());
    return 2;
  }
}
