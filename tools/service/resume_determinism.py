#!/usr/bin/env python3
"""End-to-end determinism demo for the campaign service (ctest label: service).

This is the acceptance scenario from docs/RUNNER.md: a grid is run once as a
plain single-process `gather_campaign --jobs 1`, and once as 4 shards spread
across 2 `gather_campaignd` processes -- with shard 0 deliberately
interrupted partway (deterministic --max-cells cutoff), its daemon drained
and exited, and the shard resumed from its checkpoint in a brand-new daemon
process.  The per-shard artifacts are then folded with the gather_campaign
merge modes, and every merged artifact must be byte-identical to the
reference run:

  * merged CSV           == reference CSV
  * merged columnar file == reference columnar file
  * merged metrics JSON  == reference metrics JSON
  * concatenated traces  == reference trace

Usage: resume_determinism.py <gather_campaign> <gather_campaignd>
"""
import json
import pathlib
import subprocess
import sys
import tempfile

GRID = {
    "workloads": "uniform,majority",
    "n": "6,8",
    "f": "0,2",
    "repeats": "2",
    "seed": "77",
}
SHARDS = 4


def run_reference(campaign: str, work: pathlib.Path) -> None:
    cmd = [campaign, "--jobs", "1",
           "--workloads", GRID["workloads"], "--n", GRID["n"],
           "--f", GRID["f"], "--repeats", GRID["repeats"],
           "--seed", GRID["seed"],
           "--columnar", str(work / "ref.col"),
           "--trace-jsonl", str(work / "ref.trace"),
           "--metrics-json", str(work / "ref.mjson")]
    csv = subprocess.run(cmd, check=True, capture_output=True, text=True)
    (work / "ref.csv").write_text(csv.stdout)


def submit_line(job_id: str, shard: int, work: pathlib.Path,
                max_cells: int = 0) -> str:
    fields = dict(GRID)
    fields.update({
        "cmd": "submit", "id": job_id,
        "shard_index": str(shard), "shard_count": str(SHARDS),
        "checkpoint": str(work / f"s{shard}.ckpt"),
        "checkpoint_stride": "1",
        "columnar": str(work / f"s{shard}.col"),
        "trace_jsonl": str(work / f"s{shard}.trace"),
        "metrics_bin": str(work / f"s{shard}.mreg"),
        "jobs": "1",
    })
    if max_cells:
        fields["max_cells"] = str(max_cells)
    return json.dumps(fields)


def drive_daemon(daemon: str, lines: list) -> None:
    """Feed submit lines + drain to one daemon process; check every reply."""
    script = "".join(line + "\n" for line in lines) + '{"cmd":"drain"}\n'
    out = subprocess.run([daemon], input=script, check=True,
                         capture_output=True, text=True)
    for reply in out.stdout.splitlines():
        parsed = json.loads(reply)
        if parsed.get("ok") is not True:
            raise AssertionError(f"daemon refused a command: {reply}")


def main() -> int:
    if len(sys.argv) != 3:
        print("usage: resume_determinism.py <gather_campaign> "
              "<gather_campaignd>", file=sys.stderr)
        return 2
    campaign, daemon = sys.argv[1], sys.argv[2]
    with tempfile.TemporaryDirectory(prefix="gather_service_") as tmp:
        work = pathlib.Path(tmp)
        run_reference(campaign, work)

        # Daemon process 1 runs shards 0 and 1 -- but shard 0 is cut off
        # after 2 cells (only its checkpoint survives; no artifacts).
        drive_daemon(daemon, [submit_line("s0-partial", 0, work, max_cells=2),
                              submit_line("s1", 1, work)])
        if (work / "s0.col").exists():
            print("FAIL: interrupted shard wrote its columnar artifact",
                  file=sys.stderr)
            return 1
        if not (work / "s0.ckpt").exists():
            print("FAIL: interrupted shard left no checkpoint",
                  file=sys.stderr)
            return 1

        # A brand-new daemon process resumes shard 0 from the checkpoint.
        drive_daemon(daemon, [submit_line("s0-resume", 0, work)])
        # Daemon process 2 runs shards 2 and 3.
        drive_daemon(daemon, [submit_line("s2", 2, work),
                              submit_line("s3", 3, work)])

        cols = ",".join(str(work / f"s{k}.col") for k in range(SHARDS))
        merged = subprocess.run(
            [campaign, "--merge", cols, "--columnar", str(work / "m.col")],
            check=True, capture_output=True, text=True)
        (work / "m.csv").write_text(merged.stdout)

        mregs = ",".join(str(work / f"s{k}.mreg") for k in range(SHARDS))
        subprocess.run([campaign, "--merge-metrics", mregs,
                        "--metrics-json", str(work / "m.mjson")],
                       check=True, capture_output=True)

        trace = b"".join((work / f"s{k}.trace").read_bytes()
                         for k in range(SHARDS))
        (work / "m.trace").write_bytes(trace)

        failures = []
        for name in ("csv", "col", "mjson", "trace"):
            ref = (work / f"ref.{name}").read_bytes()
            got = (work / f"m.{name}").read_bytes()
            if ref != got:
                failures.append(name)
        if failures:
            print(f"FAIL: merged artifacts differ from the --jobs 1 "
                  f"reference: {', '.join(failures)}", file=sys.stderr)
            return 1
        print("resume_determinism: sharded + killed + resumed + merged run "
              "is byte-identical to the single-process run "
              "(csv, columnar, metrics json, trace)")
        return 0


if __name__ == "__main__":
    sys.exit(main())
