#!/usr/bin/env python3
"""Checkpoint corruption / mismatch rejection (ctest label: service).

A resumed shard must never silently start from damaged or foreign state:

  * a truncated checkpoint file  -> exit 2, loud diagnostic;
  * a bit-flipped checkpoint     -> exit 2 (checksum mismatch);
  * an intact checkpoint resumed against a *different* grid -> exit 2
    (fingerprint mismatch).

Usage: checkpoint_reject.py <gather_campaign>
"""
import pathlib
import subprocess
import sys
import tempfile

BASE = ["--workloads", "uniform", "--n", "6", "--f", "0,2",
        "--repeats", "2", "--seed", "5", "--jobs", "1",
        "--shard-index", "0", "--shard-count", "2"]


def expect_reject(campaign: str, ckpt: pathlib.Path, what: str,
                  extra: list, failures: list) -> None:
    out = subprocess.run([campaign, *BASE, *extra, "--checkpoint", str(ckpt)],
                         capture_output=True, text=True)
    if out.returncode != 2:
        failures.append(f"{what}: expected exit 2, got {out.returncode} "
                        f"(stderr: {out.stderr.strip()!r})")
    elif not out.stderr.strip():
        failures.append(f"{what}: exit 2 but no diagnostic on stderr")


def main() -> int:
    if len(sys.argv) != 2:
        print("usage: checkpoint_reject.py <gather_campaign>", file=sys.stderr)
        return 2
    campaign = sys.argv[1]
    failures = []
    with tempfile.TemporaryDirectory(prefix="gather_ckpt_") as tmp:
        work = pathlib.Path(tmp)
        good = work / "good.ckpt"
        subprocess.run([campaign, *BASE, "--checkpoint", str(good),
                        "--max-cells", "1"],
                       check=True, capture_output=True)
        if not good.exists():
            print("FAIL: partial run left no checkpoint", file=sys.stderr)
            return 1
        bytes_ = good.read_bytes()

        truncated = work / "truncated.ckpt"
        truncated.write_bytes(bytes_[: len(bytes_) // 2])
        expect_reject(campaign, truncated, "truncated checkpoint", [],
                      failures)

        flipped = work / "flipped.ckpt"
        damaged = bytearray(bytes_)
        damaged[len(damaged) // 3] ^= 0x20
        flipped.write_bytes(bytes(damaged))
        expect_reject(campaign, flipped, "bit-flipped checkpoint", [],
                      failures)

        # Intact checkpoint, wrong grid: a different base seed changes the
        # fingerprint, so resuming must be refused, not silently mixed.
        expect_reject(campaign, good, "foreign-grid checkpoint",
                      ["--seed", "6"], failures)

        # Control: the intact checkpoint resumes fine against its own grid.
        out = subprocess.run([campaign, *BASE, "--checkpoint", str(good)],
                             capture_output=True, text=True)
        if out.returncode != 0:
            failures.append(f"control resume failed: exit {out.returncode} "
                            f"(stderr: {out.stderr.strip()!r})")

    for f in failures:
        print(f"FAIL {f}", file=sys.stderr)
    if not failures:
        print("checkpoint_reject: truncation, corruption and foreign grids "
              "are all rejected; the intact checkpoint resumes")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
