#!/usr/bin/env python3
"""Submit/cancel/drain stress driver for gather_campaignd (TSan companion).

Where daemon_smoke.py checks each protocol reply once, this driver exists
to make the daemon's command thread and worker thread collide: it rides the
bounded-queue boundary with a stream of small jobs, cancels every other
accepted job while the worker is mid-stream, and interleaves status polls
throughout.  Run under ThreadSanitizer (cmake/SanitizerMatrix.cmake,
tsan_smoke) a green exit certifies the lock discipline that gather-analyze
rule R7 checks statically: zero data races on the queue/jobs/shutdown
state.

The checks themselves are deliberately loose -- a submit may be accepted or
bounce off the backlog depending on worker timing, and a cancel may catch
the job queued, running, or already done.  What must hold: every reply is
well-formed, accepted jobs all reach a terminal state, the drain
handshake is acknowledged, and the exit code is 0.

Usage: daemon_stress.py <gather_campaignd-binary>
"""
import json
import subprocess
import sys
import time

JOBS = 12


def main() -> int:
    if len(sys.argv) != 2:
        print("usage: daemon_stress.py <gather_campaignd>", file=sys.stderr)
        return 2
    proc = subprocess.Popen(
        [sys.argv[1], "--queue", "3"],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        text=True,
    )

    def ask(line: str) -> dict:
        proc.stdin.write(line + "\n")
        proc.stdin.flush()
        reply = proc.stdout.readline()
        if not reply:
            raise AssertionError(f"daemon closed stdout after: {line}")
        return json.loads(reply)

    failures = []

    def check(name: str, cond: bool, got) -> None:
        if not cond:
            failures.append(f"{name}: got {got!r}")

    accepted = []
    for i in range(JOBS):
        job_id = f"stress-{i}"
        r = ask(json.dumps({
            "cmd": "submit", "id": job_id, "workloads": "uniform",
            "n": "5", "f": "1", "repeats": "2", "jobs": "1",
        }))
        if r.get("ok") is True:
            accepted.append(job_id)
        else:
            # Only the bounded queue may turn a well-formed submit away.
            check(f"{job_id} rejected only by backlog",
                  r.get("error") == "backlog", r)
        # Poll between submits so status reads race the worker's updates.
        r = ask('{"cmd":"status"}')
        check("global status well-formed", r.get("ok") is True
              and all(k in r for k in
                      ("queued", "running", "done", "failed", "cancelled")), r)
        # Cancel every other accepted job while the stream is still hot.
        if i % 2 == 1 and accepted:
            victim = accepted[len(accepted) // 2]
            r = ask(json.dumps({"cmd": "cancel", "id": victim}))
            # ok:false is legal here -- the job may already be done.
            check("cancel reply well-formed", "ok" in r, r)

    check("bounded queue accepted some work", len(accepted) > 0, accepted)

    # The worker keeps consuming without prompting; poll until quiescent so
    # every status read below is one more command/worker-thread collision.
    for _ in range(600):
        r = ask('{"cmd":"status"}')
        if r.get("ok") is True and r.get("queued") == 0 and r.get("running") == 0:
            break
        time.sleep(0.05)
    check("daemon reaches quiescence", r.get("ok") is True
          and r.get("queued") == 0 and r.get("running") == 0, r)

    # Every accepted job must sit in a terminal state once the queue is dry.
    for job_id in accepted:
        r = ask(json.dumps({"cmd": "status", "id": job_id}))
        check(f"{job_id} terminal after quiescence", r.get("ok") is True
              and r.get("state") in ("done", "failed", "cancelled"), r)

    # drain is the exit handshake: finish queued work, acknowledge, exit 0.
    r = ask('{"cmd":"drain"}')
    check("drain reply", r == {"ok": True, "drained": True}, r)

    proc.stdin.close()
    rc = proc.wait(timeout=300)
    check("exit code 0", rc == 0, rc)

    for f in failures:
        print(f"FAIL {f}", file=sys.stderr)
    if not failures:
        print(f"daemon_stress: {len(accepted)}/{JOBS} submits accepted, "
              "all replies well-formed, drained clean")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
