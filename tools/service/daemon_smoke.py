#!/usr/bin/env python3
"""Protocol smoke test for gather_campaignd (ctest label: service).

Drives one daemon process over its stdin-JSONL protocol and checks the
documented replies (docs/RUNNER.md, "Job protocol"):

  * status counters start at zero;
  * malformed JSON, unknown commands and bad submits are ok:false replies,
    never crashes;
  * the queue is bounded: with --queue 1, a second submit while a job is
    in flight is rejected with error "backlog";
  * cancel acknowledges and the daemon still drains cleanly (exit 0).

Usage: daemon_smoke.py <gather_campaignd-binary>
"""
import json
import subprocess
import sys


def main() -> int:
    if len(sys.argv) != 2:
        print("usage: daemon_smoke.py <gather_campaignd>", file=sys.stderr)
        return 2
    proc = subprocess.Popen(
        [sys.argv[1], "--queue", "1"],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        text=True,
    )

    def ask(line: str) -> dict:
        proc.stdin.write(line + "\n")
        proc.stdin.flush()
        reply = proc.stdout.readline()
        if not reply:
            raise AssertionError(f"daemon closed stdout after: {line}")
        return json.loads(reply)

    failures = []

    def check(name: str, cond: bool, got) -> None:
        if not cond:
            failures.append(f"{name}: got {got!r}")

    r = ask('{"cmd":"status"}')
    check("initial status", r == {
        "ok": True, "queued": 0, "running": 0, "done": 0, "failed": 0,
        "cancelled": 0}, r)

    r = ask("this is not json")
    check("malformed json rejected", r.get("ok") is False and "error" in r, r)

    r = ask('{"cmd":"frobnicate"}')
    check("unknown cmd rejected",
          r.get("ok") is False and "unknown cmd" in r.get("error", ""), r)

    r = ask('{"cmd":"submit","id":"bad","workloads":"no-such-workload"}')
    check("bad grid rejected at submit", r.get("ok") is False, r)

    r = ask('{"cmd":"submit","workloads":"uniform"}')
    check("submit without id rejected", r.get("ok") is False, r)

    # A deliberately large job so it is still in flight for the next checks.
    long_job = ('{"cmd":"submit","id":"long","workloads":"uniform",'
                '"n":"14","f":"3","repeats":"400","jobs":"1"}')
    r = ask(long_job)
    check("long job accepted", r == {"ok": True, "id": "long"}, r)

    r = ask(long_job.replace('"id":"long"', '"id":"long2"'))
    check("second submit hits the bounded queue",
          r.get("ok") is False and r.get("error") == "backlog", r)

    r = ask('{"cmd":"submit","id":"long","workloads":"uniform","n":"4"}')
    check("duplicate id rejected",
          r.get("ok") is False and "duplicate" in r.get("error", ""), r)

    r = ask('{"cmd":"status","id":"long"}')
    check("per-job status", r.get("ok") is True and r.get("id") == "long"
          and r.get("state") in ("queued", "running"), r)

    r = ask('{"cmd":"cancel","id":"long"}')
    check("cancel acknowledged", r.get("ok") is True, r)

    r = ask('{"cmd":"cancel","id":"nope"}')
    check("cancel unknown id rejected", r.get("ok") is False, r)

    r = ask('{"cmd":"drain"}')
    check("drain reply", r == {"ok": True, "drained": True}, r)

    proc.stdin.close()
    rc = proc.wait(timeout=120)
    check("exit code 0", rc == 0, rc)

    for f in failures:
        print(f"FAIL {f}", file=sys.stderr)
    if not failures:
        print("daemon_smoke: all protocol checks passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
