// Fixture: R6 — the columnar_table::add_column reference-invalidation trap
// (src/obs/columnar.h).  This reproduces the pre-fix API shape, where
// add_column returned a reference into the column vector; the real API now
// returns an index precisely because of this hazard.
#include <cstdint>
#include <string>
#include <vector>

namespace gather::runner {

enum class column_type : std::uint8_t { u64 = 0 };

struct column {
  std::vector<std::uint64_t> u64s;
};

class legacy_table {
 public:
  column& add_column(std::string name, column_type type);
  column* find(const std::string& name);
};

// Violation: the classic declare-two-then-fill bug.  The second add_column
// may reallocate the column vector; `idx` dangles.
void old_dangling_pattern(legacy_table& t) {
  column& idx = t.add_column("index", column_type::u64);
  column& seed = t.add_column("seed", column_type::u64);
  idx.u64s.push_back(1);   // expect(R6)
  seed.u64s.push_back(2);  // the most recent reference is still valid
}

// Violation: the dangle also bites through a pointer.
void old_dangling_pointer(legacy_table& t) {
  column* first = &t.add_column("rounds", column_type::u64);
  t.add_column("crashes", column_type::u64);
  first->u64s.push_back(3);  // expect(R6)
}

// Negative: declare the full schema first, then re-find by name — the
// pattern the pre-fix header comment prescribed.
void declare_then_find_is_clean(legacy_table& t) {
  t.add_column("a", column_type::u64);
  t.add_column("b", column_type::u64);
  column* a = t.find("a");
  a->u64s.push_back(4);
}

// Negative: re-acquiring the pointer after the invalidating call.
void reacquire_pointer_is_clean(legacy_table& t) {
  column* c = &t.add_column("x", column_type::u64);
  t.add_column("y", column_type::u64);
  c = t.find("x");
  c->u64s.push_back(5);
}

}  // namespace gather::runner
