// Fixture: R2 — unordered-container iteration on output paths.
#include <cstddef>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace gather::runner {

struct event_sink {
  void on_event(const std::string& line);
};

// Violation: hash order leaks straight into the event stream.
void emit_counters(event_sink& sink,
                   const std::unordered_map<std::string, double>& counters) {
  for (const auto& kv : counters) {  // expect(R2)
    sink.on_event(kv.first);
  }
}

// Violation: begin() on an unordered container while emitting.
std::size_t emit_first(event_sink& sink,
                       const std::unordered_set<int>& ids) {
  sink.on_event("first");
  return static_cast<std::size_t>(*ids.begin());  // expect(R2)
}

// Negative: ordered container on the same output path is fine.
void emit_sorted(event_sink& sink,
                 const std::map<std::string, double>& by_name) {
  for (const auto& kv : by_name) {
    sink.on_event(kv.first);
  }
}

// Negative: unordered iteration is fine off the output path (the result is
// order-independent).
double sum_local(const std::unordered_map<std::string, double>& weights) {
  double s = 0.0;
  for (const auto& kv : weights) s += kv.second;
  return s;
}

}  // namespace gather::runner
