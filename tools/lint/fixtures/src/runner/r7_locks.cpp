// Fixture: R7 — guarded fields touched outside their declared mutex.
// The guard map is declared inline: `// gather-lint: guarded_by(m)` on (or
// directly above) a declaration binds that name to mutex `m` file-wide.
#include <condition_variable>
#include <deque>
#include <mutex>

namespace gather::runner {

class worklist {
 public:
  int bad_read() const;
  void locked_push(int v);
  void scope_ends_too_early();
  void unlock_window();
  void wrong_mutex_pop();
  void deferred_lock();
  void wait_predicate_reads_under_lock();
  void two_mutexes_at_once();
  void single_threaded_teardown();

 private:
  mutable std::mutex mutex_;
  std::mutex flush_mutex_;
  std::condition_variable cv_;
  std::deque<int> queue_;  // gather-lint: guarded_by(mutex_)
  bool stop_ = false;      // gather-lint: guarded_by(mutex_)
  // gather-lint: guarded_by(flush_mutex_)
  int flushed_ = 0;
};

// Violation: plain unlocked read.
int worklist::bad_read() const {
  return static_cast<int>(queue_.size());  // expect(R7)
}

// Negative: the canonical lock_guard pattern.
void worklist::locked_push(int v) {
  std::lock_guard<std::mutex> lk(mutex_);
  queue_.push_back(v);
}

// Violation: the lock's scope ended with the inner block.
void worklist::scope_ends_too_early() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    queue_.clear();
  }
  stop_ = true;  // expect(R7)
}

// unique_lock unlock()/lock() windows: the gap is a violation, the
// re-locked tail is clean.
void worklist::unlock_window() {
  std::unique_lock<std::mutex> lk(mutex_);
  queue_.push_back(1);
  lk.unlock();
  stop_ = true;  // expect(R7)
  lk.lock();
  stop_ = false;
}

// Violation: holding the wrong mutex does not count.
void worklist::wrong_mutex_pop() {
  std::lock_guard<std::mutex> lk(flush_mutex_);
  flushed_ += 1;
  queue_.pop_front();  // expect(R7)
}

// std::defer_lock starts disengaged; .lock() engages it.
void worklist::deferred_lock() {
  std::unique_lock<std::mutex> lk(mutex_, std::defer_lock);
  stop_ = true;  // expect(R7)
  lk.lock();
  stop_ = false;
}

// Negative: a condition_variable wait predicate runs with the lock held.
void worklist::wait_predicate_reads_under_lock() {
  std::unique_lock<std::mutex> lk(mutex_);
  cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
  queue_.pop_front();
}

// Negative: scoped_lock engages every mutex it names.
void worklist::two_mutexes_at_once() {
  std::scoped_lock lk(mutex_, flush_mutex_);
  queue_.push_back(2);
  flushed_ += 1;
}

// Suppressed: single-threaded by construction (workers already joined).
void worklist::single_threaded_teardown() {
  stop_ = true;  // gather-lint: allow(R7)
}

}  // namespace gather::runner
