// Fixture: R8 — a deliberate upward edge under suppression (proves the
// allow() contract holds for include-line diagnostics).
// gather-lint: allow(R8)
#include "runner/fixture_absent.h"

namespace gather::config {

int sanctioned_upward_edge() { return 0; }

}  // namespace gather::config
