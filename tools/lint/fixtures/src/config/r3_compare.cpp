// Fixture: R3 — bare float equality outside src/geometry.
namespace gather::config {

bool collapsed(double d) {
  return d == 0.0;  // expect(R3)
}

bool at_unit(double x) {
  if (x != 1.0) return false;  // expect(R3)
  return x == 2.5e-1;          // expect(R3)
}

// Suppressed on the same line: a deliberate exact-representation guard.
bool degenerate(double den) {
  return den == 0.0;  // gather-lint: allow(R3)
}

// Suppressed from the preceding line.
bool half_exact(double x) {
  // gather-lint: allow(R3)
  return x == 0.5;
}

// Negative: tolerance comparisons and integer equality are fine.
bool near_zero(double d, double eps) { return d < eps && d > -eps; }
bool two_robots(int n) { return n == 2; }

}  // namespace gather::config
