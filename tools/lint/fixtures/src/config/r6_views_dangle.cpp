// Fixture: R6 — references into the derived-geometry cache used after an
// invalidating mutation.  Each `expect(Rn)` marks a line the analyzer must
// diagnose.  (Lives under src/config so the derived() accessor itself is
// R5-exempt; R6 is about lifetime, not layering.)
#include <cstddef>
#include <vector>

namespace gather::config {

struct point {
  double x = 0.0, y = 0.0;
};
struct view {
  std::size_t index = 0;
};

class configuration {
 public:
  const std::vector<view>& all_views() const;
  void set_position(std::size_t i, point p);
  void apply_moves(const std::vector<point>& targets);
  void insert_robot(point p);
  void set_tol_refresh(double tol);
};

const std::vector<std::size_t>& angular_order_of_occupied(
    const configuration& c, std::size_t i);
void consume(std::size_t n);

// Violation: the reference dangles across the invalidating mutation.
std::size_t stale_after_set_position(configuration& c, point p) {
  const std::vector<view>& vs = c.all_views();
  c.set_position(0, p);
  return vs.size();  // expect(R6)
}

// Violation: a mutation behind a conditional still stales the outer
// binding — the analyzer is linear and assumes the branch is taken.
std::size_t stale_after_branch(configuration& c, point p, bool grow) {
  const std::vector<view>& vs = c.all_views();
  if (grow) {
    c.insert_robot(p);
  }
  return vs.size();  // expect(R6)
}

// Violation: free-function accessors backed by the same cache dangle too.
std::size_t stale_angular_order(configuration& c, double tol) {
  const std::vector<std::size_t>& order = angular_order_of_occupied(c, 0);
  c.set_tol_refresh(tol);
  return order.size();  // expect(R6)
}

// Negative: use before the mutation is fine, and re-acquiring a fresh
// reference afterwards under a new name is the sanctioned pattern.
std::size_t reacquire_is_clean(configuration& c, point p) {
  const std::vector<view>& vs = c.all_views();
  consume(vs.size());
  c.set_position(0, p);
  const std::vector<view>& fresh = c.all_views();
  return fresh.size();
}

// Negative: a value copy survives any mutation.
std::size_t value_copy_is_clean(configuration& c, point p) {
  std::vector<view> snapshot = c.all_views();
  c.set_position(0, p);
  return snapshot.size();
}

// Negative: mutating a *different* configuration does not invalidate.
std::size_t other_object_is_clean(configuration& c, configuration& d,
                                  point p) {
  const std::vector<view>& vs = c.all_views();
  d.set_position(0, p);
  return vs.size();
}

// Negative: a re-targeted pointer is fresh again after reassignment.
std::size_t pointer_retarget_is_clean(configuration& c, point p) {
  const std::vector<view>* vp = &c.all_views();
  c.set_position(0, p);
  vp = &c.all_views();
  return vp->size();
}

// Suppressed: the caller proves no view is read between here and return.
std::size_t sanctioned_stale(configuration& c,
                             const std::vector<point>& targets) {
  const std::vector<view>& vs = c.all_views();
  c.apply_moves(targets);
  return vs.capacity();  // gather-lint: allow(R6)
}

}  // namespace gather::config
