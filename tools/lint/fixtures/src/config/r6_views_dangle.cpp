// Fixture: R6 — references into the derived-geometry cache used after an
// invalidating mutation.  Each `expect(Rn)` marks a line the analyzer must
// diagnose.  (Lives under src/config so the derived() accessor itself is
// R5-exempt; R6 is about lifetime, not layering.)
#include <cstddef>
#include <vector>

namespace gather::config {

struct point {
  double x = 0.0, y = 0.0;
};
struct view {
  std::size_t index = 0;
};

struct mutation_report {
  bool no_op = false;
  bool cache_kept = false;
};

class configuration {
 public:
  const std::vector<view>& all_views() const;
  mutation_report set_position(std::size_t i, point p);
  mutation_report apply_moves(const std::vector<point>& targets);
  mutation_report insert_robot(point p);
  mutation_report set_tol_refresh(double tol);
};

class polar_ref {
 public:
  std::size_t size() const;
  std::vector<std::size_t> take() &&;
};

const std::vector<std::size_t>& angular_order_of_occupied(
    const configuration& c, std::size_t i);
polar_ref angular_order_ref(const configuration& c, point center);
void consume(std::size_t n);

// Violation: the reference dangles across the invalidating mutation.
std::size_t stale_after_set_position(configuration& c, point p) {
  const std::vector<view>& vs = c.all_views();
  c.set_position(0, p);
  return vs.size();  // expect(R6)
}

// Violation: a mutation behind a conditional still stales the outer
// binding — the analyzer is linear and assumes the branch is taken.
std::size_t stale_after_branch(configuration& c, point p, bool grow) {
  const std::vector<view>& vs = c.all_views();
  if (grow) {
    c.insert_robot(p);
  }
  return vs.size();  // expect(R6)
}

// Violation: free-function accessors backed by the same cache dangle too.
std::size_t stale_angular_order(configuration& c, double tol) {
  const std::vector<std::size_t>& order = angular_order_of_occupied(c, 0);
  c.set_tol_refresh(tol);
  return order.size();  // expect(R6)
}

// Negative: use before the mutation is fine, and re-acquiring a fresh
// reference afterwards under a new name is the sanctioned pattern.
std::size_t reacquire_is_clean(configuration& c, point p) {
  const std::vector<view>& vs = c.all_views();
  consume(vs.size());
  c.set_position(0, p);
  const std::vector<view>& fresh = c.all_views();
  return fresh.size();
}

// Negative: a value copy survives any mutation.
std::size_t value_copy_is_clean(configuration& c, point p) {
  std::vector<view> snapshot = c.all_views();
  c.set_position(0, p);
  return snapshot.size();
}

// Negative: mutating a *different* configuration does not invalidate.
std::size_t other_object_is_clean(configuration& c, configuration& d,
                                  point p) {
  const std::vector<view>& vs = c.all_views();
  d.set_position(0, p);
  return vs.size();
}

// Negative: a re-targeted pointer is fresh again after reassignment.
std::size_t pointer_retarget_is_clean(configuration& c, point p) {
  const std::vector<view>* vp = &c.all_views();
  c.set_position(0, p);
  vp = &c.all_views();
  return vp->size();
}

// Violation: a by-value polar_ref may alias the polar-order cache slot; it
// dangles across mutations exactly like a reference.
std::size_t stale_polar_ref(configuration& c, point p) {
  const polar_ref order = angular_order_ref(c, p);
  c.set_position(0, p);
  return order.size();  // expect(R6)
}

// Negative: take() detaches the handle into owned storage in the same
// statement, so nothing aliases the cache.
std::size_t polar_take_is_clean(configuration& c, point p) {
  const auto entries = angular_order_ref(c, p).take();
  c.set_position(0, p);
  return entries.size();
}

// Negative: a mutator probed in-statement for its cache-keeping report
// fields is the fast-path check itself -- the caller branches on the report
// before touching cached state, so the probe must not stale bindings.
std::size_t no_op_probe_is_clean(configuration& c,
                                 const std::vector<point>& targets) {
  const std::vector<view>& vs = c.all_views();
  if (c.apply_moves(targets).no_op) {
    return vs.size();
  }
  return 0;
}

// Violation: the probe exemption is per-call -- a later unprobed mutation
// on the same object stales as usual.
std::size_t probe_then_mutate_is_stale(configuration& c, point p,
                                       const std::vector<point>& targets) {
  const std::vector<view>& vs = c.all_views();
  if (c.apply_moves(targets).cache_kept) {
    consume(vs.size());
  }
  c.set_position(0, p);
  return vs.size();  // expect(R6)
}

// Suppressed: the caller proves no view is read between here and return.
std::size_t sanctioned_stale(configuration& c,
                             const std::vector<point>& targets) {
  const std::vector<view>& vs = c.all_views();
  c.apply_moves(targets);
  return vs.capacity();  // gather-lint: allow(R6)
}

}  // namespace gather::config
