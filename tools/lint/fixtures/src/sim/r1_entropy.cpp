// Fixture: R1 — wall-clock and nondeterministic entropy in the core.
// Each `expect(Rn)` marks a line the linter must diagnose.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace gather::sim {

unsigned bad_seed() {
  std::random_device rd;                          // expect(R1)
  const int a = std::rand();                      // expect(R1)
  const long b = std::time(nullptr);              // expect(R1)
  const auto c = std::chrono::system_clock::now();  // expect(R1)
  return static_cast<unsigned>(a) + static_cast<unsigned>(b) +
         static_cast<unsigned>(rd()) +
         static_cast<unsigned>(c.time_since_epoch().count());
}

// Negative cases: derived identifiers and steady_clock are fine, and the
// word time( in a comment is not code.
unsigned ok_seed(unsigned long long stream) {
  const auto t0 = std::chrono::steady_clock::now();
  unsigned strand_count = static_cast<unsigned>(stream);
  return strand_count + static_cast<unsigned>(t0.time_since_epoch().count());
}

}  // namespace gather::sim
