// Fixture: R5 — configuration internals accessed outside src/config.
// Each `expect(Rn)` marks a line the linter must diagnose.

namespace gather::config {
class configuration;
struct derived_geometry;  // expect(R5)
}  // namespace gather::config

namespace gather::sim {

void poke_internals(gather::config::configuration& c) {
  auto& raw = c.points_mut();                       // expect(R5)
  auto& cache = c.derived();                        // expect(R5)
  (void)raw;
  (void)cache;
}

void poke_through_pointer(gather::config::configuration* c) {
  auto& cache = c->derived();                       // expect(R5)
  (void)cache;
}

// Negative cases: the suppression comment, identifiers that merely contain
// the words, and the public wrapper calls are all fine.
void sanctioned(gather::config::configuration& c) {
  // gather-lint: allow(R5)
  auto& raw = c.points_mut();
  (void)raw;
  int derived = 0;     // plain identifier, not a member call
  int points_muted = derived;  // not the points_mut( token
  (void)points_muted;
}

}  // namespace gather::sim
