// Fixture: R5 — configuration internals accessed outside src/config.
// Each `expect(Rn)` marks a line the linter must diagnose.

namespace gather::config {
class configuration;
struct derived_geometry;  // expect(R5)
}  // namespace gather::config

namespace gather::sim {

void poke_internals(gather::config::configuration& c) {
  auto& cache = c.derived();                        // expect(R5)
  (void)cache;
}

void poke_through_pointer(gather::config::configuration* c) {
  auto& cache = c->derived();                       // expect(R5)
  (void)cache;
}

// Negative cases: the suppression comment, identifiers that merely contain
// the words, and the public wrapper calls are all fine.
void sanctioned(gather::config::configuration& c) {
  // gather-lint: allow(R5)
  auto& cache = c.derived();
  (void)cache;
  int derived = 0;     // plain identifier, not a member call
  (void)derived;
}

// Negative case: configuration::points_mut() was removed (docs/API.md,
// "Deprecations and removals").  R5 no longer carries a pattern for the
// token, so a mention of the dead name must stay clean -- this line guards
// against the rule over-matching if the clause is ever reintroduced.
void removed_shim_name_is_not_flagged(gather::config::configuration& c) {
  auto points_mut = [&c]() -> gather::config::configuration& { return c; };
  (void)points_mut();
}

}  // namespace gather::sim
