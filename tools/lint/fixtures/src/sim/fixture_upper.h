// Fixture helper for R8: a sim-layer header whose own include is a clean
// downward edge (sim rank 50 -> geometry rank 20).
#pragma once

#include "geometry/fixture_leaf.h"

namespace gather::sim {

inline int fixture_upper_value() { return gather::geometry::fixture_leaf_value(); }

}  // namespace gather::sim
