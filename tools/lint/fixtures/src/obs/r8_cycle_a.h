// Fixture: R8 — one half of an include cycle (same module, so the layer
// ranks are silent; the file-level cycle check must still reject it).
#pragma once

#include "obs/r8_cycle_b.h"

namespace gather::obs {
inline int cycle_a() { return 1; }
}  // namespace gather::obs
