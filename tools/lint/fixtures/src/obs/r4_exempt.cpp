// Fixture: src/obs is the one library layer allowed to own stdout, so this
// file must produce no diagnostics.
#include <iostream>

namespace gather::obs {

void print_summary(int rounds) { std::cout << rounds << "\n"; }

}  // namespace gather::obs
