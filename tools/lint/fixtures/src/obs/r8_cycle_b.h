// Fixture: R8 — the back edge of the include cycle.  The DFS starts from
// the lexicographically first file, so the cycle is reported here, where
// the edge closes back onto r8_cycle_a.h.
#pragma once

#include "obs/r8_cycle_a.h"  // expect(R8)

namespace gather::obs {
inline int cycle_b() { return 2; }
}  // namespace gather::obs
