// Fixture helper for R8: a leaf header with no includes.
#pragma once

namespace gather::geometry {

inline int fixture_leaf_value() { return 7; }

}  // namespace gather::geometry
