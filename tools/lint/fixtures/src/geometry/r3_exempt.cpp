// Fixture: src/geometry owns the tolerance helpers — exact comparisons are
// allowed here, so this file must produce no diagnostics.
namespace gather::geom {

bool on_axis(double y) { return y == 0.0; }
bool distinct(double a, double b) { return a != b && a != 0.0; }

}  // namespace gather::geom
