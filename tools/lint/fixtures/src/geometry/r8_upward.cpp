// Fixture: R8 — an upward layer edge: geometry (rank 20) must not include
// sim (rank 50).  See tools/lint/layers.toml.
#include "sim/fixture_upper.h"  // expect(R8)

namespace gather::geometry {

int uses_upper_layer() { return gather::sim::fixture_upper_value(); }

}  // namespace gather::geometry
