// Fixture: R8 — header overrides.  sim/rng.h is rank-0 by override (a
// self-contained leaf), so workloads (rank 40) may draw from it; any other
// sim header is an upward edge.
#include "sim/rng.h"
#include "sim/scheduler.h"  // expect(R8)

namespace gather::workloads {

int uses_rng_and_scheduler() { return 0; }

}  // namespace gather::workloads
