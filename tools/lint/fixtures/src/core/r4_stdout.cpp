// Fixture: R4 — stdout in library code (anywhere in src/ outside src/obs).
#include <cstdio>
#include <iostream>

namespace gather::core {

void report_progress(int round) {
  std::cout << "round " << round << "\n";  // expect(R4)
  std::printf("round %d\n", round);        // expect(R4)
  std::puts("done");                       // expect(R4)
}

// Negative: stderr diagnostics and pure formatting are fine.
void report_diagnostics(int round) {
  std::fprintf(stderr, "round %d\n", round);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%d", round);
}

}  // namespace gather::core
