// Fixture: R8 — a lateral edge: core and workloads share rank 40 (peers),
// so neither may include the other.
#include "workloads/fixture_absent.h"  // expect(R8)

namespace gather::core {

int uses_peer_layer() { return 0; }

}  // namespace gather::core
