// Fixture: the stale-suppression audit.  This allow(R1) never suppresses
// anything (R1 does not even run over src/core), so --stale-allows must
// report the annotation as dead.
int fixture_stale_marker();  // gather-lint: allow(R1)  expect-stale(R1)

namespace gather::core {

int quiet_file() { return 0; }

}  // namespace gather::core
