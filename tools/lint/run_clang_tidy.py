#!/usr/bin/env python3
"""Run clang-tidy over the tree using the repo .clang-tidy config.

Usage: run_clang_tidy.py --build-dir BUILD [--root DIR] [--changed [REF]]
                         [PATH...]

BUILD must contain compile_commands.json (the root CMakeLists exports it).
PATHs default to src tools bench examples (tests pick up tests/.clang-tidy
automatically when listed explicitly).

--changed restricts the run to files that differ from REF (default
origin/main, falling back to main when no remote is configured) plus any
untracked files -- the incremental mode for local iteration.  The ctest
registration stays full-tree; a changed-only pass proves nothing about
files an edited header breaks.  No compilable file changed exits 0.

The binary is located via $CLANG_TIDY, then `clang-tidy`, then versioned
names.  When no binary is found the script prints a notice and exits 127,
which the ctest registration maps to SKIP (the gate is advisory where the
toolchain lacks clang-tidy; gather_lint.py is the always-on gate).

Exit status: 0 clean, 1 findings, 2 usage error, 127 tool unavailable.
"""

import argparse
import json
import os
import shutil
import subprocess
import sys

CANDIDATES = ["clang-tidy"] + [f"clang-tidy-{v}" for v in range(21, 13, -1)]
DEFAULT_PATHS = ["src", "tools", "bench", "examples"]


def find_tool():
    env = os.environ.get("CLANG_TIDY")
    if env:
        return env if os.path.sep in env and os.path.exists(env) else shutil.which(env)
    for name in CANDIDATES:
        path = shutil.which(name)
        if path:
            return path
    return None


def changed_files(root, ref):
    """Absolute paths differing from the merge base with `ref`, plus
    untracked files; None when git cannot resolve anything usable."""

    def git(*args):
        proc = subprocess.run(
            ["git", "-C", root, *args], capture_output=True, text=True
        )
        return proc.stdout.strip() if proc.returncode == 0 else None

    resolved = None
    for candidate in dict.fromkeys([ref, "origin/main", "main"]):
        if git("rev-parse", "--verify", "--quiet", candidate) is not None:
            resolved = candidate
            break
    if resolved is None:
        print(f"run_clang_tidy: cannot resolve --changed ref '{ref}'")
        return None
    if resolved != ref:
        print(f"run_clang_tidy: ref '{ref}' not found, comparing to '{resolved}'")

    base = git("merge-base", resolved, "HEAD") or resolved
    diff = git("diff", "--name-only", "-z", base)
    untracked = git("ls-files", "--others", "--exclude-standard", "-z")
    if diff is None or untracked is None:
        print("run_clang_tidy: git diff failed; is this a git checkout?")
        return None
    out = set()
    for rel in (diff + "\0" + untracked).split("\0"):
        if rel:
            out.add(os.path.abspath(os.path.join(root, rel)))
    return out


def main(argv):
    ap = argparse.ArgumentParser(prog="run_clang_tidy.py")
    ap.add_argument("--build-dir", required=True)
    ap.add_argument("--root", default=".")
    ap.add_argument(
        "--changed",
        nargs="?",
        const="origin/main",
        default=None,
        metavar="REF",
        help="lint only files differing from REF (default origin/main) "
        "plus untracked files",
    )
    ap.add_argument("paths", nargs="*")
    args = ap.parse_args(argv[1:])

    tool = find_tool()
    if tool is None:
        print("run_clang_tidy: clang-tidy not found on PATH (set $CLANG_TIDY); skipping")
        return 127

    db_path = os.path.join(args.build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        print(f"run_clang_tidy: {db_path} missing; configure with "
              "CMAKE_EXPORT_COMPILE_COMMANDS=ON")
        return 2

    root = os.path.abspath(args.root)
    wanted = [os.path.abspath(os.path.join(root, p)) for p in (args.paths or DEFAULT_PATHS)]
    with open(db_path, "r", encoding="utf-8") as fh:
        db = json.load(fh)
    files = sorted(
        {
            os.path.abspath(os.path.join(e["directory"], e["file"]))
            for e in db
            if any(
                os.path.abspath(os.path.join(e["directory"], e["file"])).startswith(w + os.sep)
                for w in wanted
            )
        }
    )
    if not files:
        print("run_clang_tidy: no files from the requested paths in the compile database")
        return 2

    if args.changed is not None:
        changed = changed_files(root, args.changed)
        if changed is None:
            return 2
        files = [f for f in files if f in changed]
        if not files:
            print("run_clang_tidy: no compiled files changed; nothing to lint")
            return 0

    print(f"run_clang_tidy: {tool} over {len(files)} file(s)")
    failed = False
    batch = 24
    for i in range(0, len(files), batch):
        cmd = [tool, "-p", args.build_dir, "--quiet"] + files[i : i + batch]
        if subprocess.run(cmd, cwd=root).returncode != 0:
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
