#!/usr/bin/env python3
"""Fail when any C++ source deviates from the repo .clang-format.

Usage: check_format.py [--root DIR] [PATH...]

PATHs default to src tools bench tests examples.  Runs
`clang-format --dry-run -Werror`, so any formatting diff is a hard failure
and the output names each offending location.

The binary is located via $CLANG_FORMAT, then `clang-format`, then
versioned names.  When no binary is found the script prints a notice and
exits 127, which the ctest registration maps to SKIP.

Exit status: 0 clean, 1 formatting diffs, 2 usage error, 127 tool missing.
"""

import argparse
import os
import shutil
import subprocess
import sys

CANDIDATES = ["clang-format"] + [f"clang-format-{v}" for v in range(21, 13, -1)]
DEFAULT_PATHS = ["src", "tools", "bench", "tests", "examples"]
CXX_EXTENSIONS = (".h", ".hpp", ".cpp", ".cc")


def find_tool():
    env = os.environ.get("CLANG_FORMAT")
    if env:
        return env if os.path.sep in env and os.path.exists(env) else shutil.which(env)
    for name in CANDIDATES:
        path = shutil.which(name)
        if path:
            return path
    return None


def collect(root, paths):
    files = []
    for top in paths:
        top_abs = os.path.join(root, top)
        if os.path.isfile(top_abs):
            files.append(top_abs)
            continue
        for dirpath, dirnames, filenames in os.walk(top_abs):
            dirnames.sort()
            if "fixtures" in dirpath.replace(os.sep, "/").split("/"):
                continue  # lint fixtures are not held to the format contract
            for fn in sorted(filenames):
                if fn.endswith(CXX_EXTENSIONS):
                    files.append(os.path.join(dirpath, fn))
    return files


def main(argv):
    ap = argparse.ArgumentParser(prog="check_format.py")
    ap.add_argument("--root", default=".")
    ap.add_argument("paths", nargs="*")
    args = ap.parse_args(argv[1:])

    tool = find_tool()
    if tool is None:
        print("check_format: clang-format not found on PATH (set $CLANG_FORMAT); skipping")
        return 127

    root = os.path.abspath(args.root)
    paths = args.paths or DEFAULT_PATHS
    for p in paths:
        if not os.path.exists(os.path.join(root, p)):
            print(f"check_format: no such path under {root}: {p}")
            return 2
    files = collect(root, paths)
    if not files:
        print("check_format: no C++ sources found")
        return 2

    print(f"check_format: {tool} --dry-run -Werror over {len(files)} file(s)")
    result = subprocess.run([tool, "--dry-run", "-Werror", "--style=file"] + files,
                           cwd=root)
    return 1 if result.returncode != 0 else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
