#!/usr/bin/env python3
"""gather-analyze: scope-aware static analysis for the gather tree.

gather_lint.py (rules R1-R5) is a line-scanner: it strips comments and
strings and pattern-matches single lines.  The three rules here need more
than that -- they reason about *statement order inside a scope* and about
the *include graph* -- so this pass carries a real (if lightweight) C++
front half: a tokenizer, a brace-matched block tree, and a per-statement
walk that tracks reference bindings and held locks.

Rules (diagnosed as path:line: Rn: message, same contract as gather-lint):

  R6  Reference invalidation.  A local reference or pointer obtained from a
      generation-cached accessor (`configuration::all_views`,
      `config::angular_order_of_occupied`, `config::angular_order_ref`,
      `configuration::derived`) or from `columnar_table::add_column` must
      not be used after a statement that calls an invalidating mutator on
      the same object (`set_position`, `apply_moves`, `insert_robot`,
      `remove_robot`, `set_tol_refresh`; another `add_column` for columnar
      tables) within the enclosing scope.  Value copies are fine;
      re-acquiring a fresh reference after the mutation is fine.  Two
      mutation-report refinements: a mutator call probed in-statement for
      its cache-keeping fields (`...).no_op` / `...).cache_kept`) is the
      fast-path check itself and does not stale bindings, and a by-value
      `polar_ref` bound from `angular_order_ref` IS tracked (the handle may
      alias cache storage) unless the statement detaches it via `.take()`.

  R7  Lock discipline.  Scope: src/util, src/runner and tools (the
      concurrency surfaces: thread_pool -- now a util header so the config
      layer can shard across it -- the campaign service, gather_campaignd).
      Fields carrying a `// gather-lint: guarded_by(mutex_name)` annotation
      (same line or the line above the declaration) may only be read or
      written inside a scope where that mutex is held via
      `lock_guard` / `unique_lock` / `scoped_lock` / `shared_lock`, or
      via a raw `m.lock()` .. `m.unlock()` window.  `unique_lock::unlock()`
      suspends the hold until the matching `.lock()`; `std::defer_lock`
      starts disengaged.

  R8  Layer enforcement.  Every `#include "..."` edge inside src/ is
      checked against the layer DAG in tools/lint/layers.toml (module ->
      rank; self-contained leaf headers may carry per-header overrides).
      An include may only point at a strictly lower-ranked module (or stay
      inside its own module), and the file-level graph must be acyclic.
      Violations render the offending path; `--dump-graph` emits the
      module-level graph as DOT.

Stale-suppression audit (`--stale-allows`): every `// gather-lint:
allow(Rn)` annotation in the scanned tree must actually suppress at least
one diagnostic of rule Rn (R1-R5 are recomputed via gather_lint.py for
this purpose).  A suppression that no longer fires is reported as
`path:line: stale: allow(Rn) suppresses nothing` so dead annotations
cannot accumulate.

Suppression: `// gather-lint: allow(Rn)` on the offending line or the line
above, exactly as for R1-R5.

Usage:
  gather_analyze.py [--root DIR] [--stale-allows] [PATH...]
  gather_analyze.py --dump-graph PATH|-  [--root DIR]
  gather_analyze.py --self-test

Exit status: 0 clean, 1 diagnostics emitted, 2 usage error.

Known soundness limits (documented in docs/STATIC_ANALYSIS.md): the walk
is linear and intra-procedural -- a mutation behind a conditional is
treated as happening (may over-report; annotate deliberate cases), calls
that mutate through another alias are invisible (may under-report), R6
tracks names, not objects, so distinct objects with one name across
sibling scopes are merged conservatively, and R7's guard map is file-wide
by field name.
"""

import argparse
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import gather_lint as gl  # tokens share gl.source_file's offsets/allowlist

try:
    import tomllib
except ImportError:  # pragma: no cover - Python < 3.11
    tomllib = None

CXX_EXTENSIONS = gl.CXX_EXTENSIONS
DEFAULT_PATHS = gl.DEFAULT_PATHS
LAYERS_TOML = os.path.join(os.path.dirname(os.path.abspath(__file__)), "layers.toml")

# ---------------------------------------------------------------------------
# Tokenizer
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
      [A-Za-z_]\w*                                    # identifier / keyword
    | (?:\d+\.?\d*|\.\d+)(?:[eE][+-]?\d+)?[A-Za-z]*   # numeric literal
    | ::|->|\+\+|--|<<=|>>=|<=|>=|==|!=|&&|\|\||<<|>>
    | [-+*/%&|^!~<>=]=?
    | [?:;,.(){}\[\]#\\]
    | \S
    """,
    re.VERBOSE,
)


class token:
    __slots__ = ("text", "line")

    def __init__(self, text, line):
        self.text = text
        self.line = line

    def __repr__(self):  # pragma: no cover - debugging aid
        return f"tok({self.text!r}@{self.line})"


def tokenize(src, start, end):
    """Tokens of src.code[start:end] with absolute line numbers."""
    out = []
    for m in _TOKEN_RE.finditer(src.code, start, end):
        out.append(token(m.group(0), src.line_of(m.start())))
    return out


_IDENT_RE = re.compile(r"[A-Za-z_]\w*\Z")


def is_ident(text):
    return bool(_IDENT_RE.match(text))


# ---------------------------------------------------------------------------
# R6: reference invalidation across cache-invalidating mutations
# ---------------------------------------------------------------------------

# Accessors whose result points into generation-stamped storage.  Free
# functions take the owning object as their first argument; `derived` and
# `add_column` are member calls.
R6_SOURCES = {
    "all_views",
    "angular_order_of_occupied",
    "angular_order_ref",
    "derived",
    "add_column",
}
# Member calls that invalidate what the sources above returned.
R6_MUTATORS = {
    "set_position",
    "apply_moves",
    "insert_robot",
    "remove_robot",
    "set_tol_refresh",
    "add_column",
}


# Sources whose BY-VALUE result still aliases cache storage: a
# `config::polar_ref` holds a pointer into the polar-order slot when the
# requested center hits the cache.  `.take()` detaches into owned storage.
R6_BY_VALUE_ALIAS_SOURCES = {
    "angular_order_ref",
}


def _report_probed(stmt, i):
    """True when the mutator call at stmt[i] is immediately followed by a
    mutation-report cache-keeping probe: `mutator( ... ).no_op` or
    `( ... ).cache_kept`."""
    j = i + 1  # the opening '('
    depth = 0
    while j < len(stmt):
        if stmt[j].text == "(":
            depth += 1
        elif stmt[j].text == ")":
            depth -= 1
            if depth == 0:
                break
        j += 1
    return (
        j + 2 < len(stmt)
        and stmt[j + 1].text == "."
        and stmt[j + 2].text in ("no_op", "cache_kept")
    )


class binding:
    """One tracked reference/pointer: its source object and staleness."""

    __slots__ = ("name", "obj", "decl_line", "stale_line", "mutator")

    def __init__(self, name, obj, decl_line):
        self.name = name
        self.obj = obj
        self.decl_line = decl_line
        self.stale_line = None  # line of the invalidating mutation
        self.mutator = None


def _source_object(tokens, i):
    """Owning object of the source call at tokens[i] (an R6_SOURCES ident
    followed by '('), or None if the shape is unrecognized."""
    # Member call:  obj . source (   /   obj -> source (
    if i >= 2 and tokens[i - 1].text in (".", "->") and is_ident(tokens[i - 2].text):
        return tokens[i - 2].text
    if i >= 1 and tokens[i - 1].text in (".", "->"):
        return None
    # Free function:  source ( obj , ... )  -- first identifier argument.
    j = i + 2  # skip 'source' '('
    depth = 1
    while j < len(tokens) and depth:
        t = tokens[j].text
        if t == "(":
            depth += 1
        elif t == ")":
            depth -= 1
        elif depth == 1 and is_ident(t) and t != "this":
            return t
        j += 1
    return None


def _split_toplevel_assign(tokens):
    """Index of the first top-level '=' (not ==, <=, ...), or None."""
    depth = 0
    for i, t in enumerate(tokens):
        if t.text in ("(", "[", "{"):
            depth += 1
        elif t.text in (")", "]", "}"):
            depth -= 1
        elif depth == 0 and t.text == "=":
            return i
    return None


# ---------------------------------------------------------------------------
# R7: guarded-field access outside the guarding lock
# ---------------------------------------------------------------------------

R7_DIRS = ("src/util/", "src/runner/", "tools/")
_GUARD_ANNOT = re.compile(r"gather-lint:\s*guarded_by\(\s*([A-Za-z_]\w*)\s*\)")
_LOCK_TYPES = {"lock_guard", "unique_lock", "scoped_lock", "shared_lock"}
_LOCK_TAGS = {"adopt_lock", "defer_lock", "try_to_lock"}


def parse_guard_map(raw_text):
    """{field_name: (mutex_name, decl_line)} from guarded_by annotations.

    The annotation sits on the declaration line or the line above it.  The
    declared name is the last identifier of the declaration before any
    initializer."""
    guards = {}
    lines = raw_text.splitlines()
    for lineno, line in enumerate(lines, start=1):
        m = _GUARD_ANNOT.search(line)
        if not m:
            continue
        mutex = m.group(1)
        decl = line.split("//", 1)[0].strip()
        decl_line = lineno
        if not decl and lineno < len(lines):
            decl = lines[lineno].split("//", 1)[0].strip()
            decl_line = lineno + 1
        decl = re.split(r"[={;]", decl, 1)[0]
        names = re.findall(r"[A-Za-z_]\w*", decl)
        if names:
            guards[names[-1]] = (mutex, decl_line)
    return guards


class lock_entry:
    """One lock object (or raw locked mutex) visible in a scope."""

    __slots__ = ("name", "mutexes", "engaged")

    def __init__(self, name, mutexes, engaged):
        self.name = name
        self.mutexes = mutexes
        self.engaged = engaged


def _parse_lock_decl(tokens, i):
    """Parse a lock declaration whose type keyword sits at tokens[i].
    Returns (lock_entry, next_index) or None."""
    j = i + 1
    if j < len(tokens) and tokens[j].text == "<":  # skip template args
        depth = 1
        j += 1
        while j < len(tokens) and depth:
            if tokens[j].text == "<":
                depth += 1
            elif tokens[j].text == ">":
                depth -= 1
            elif tokens[j].text == ">>":
                depth -= 2
            j += 1
    if j >= len(tokens) or not is_ident(tokens[j].text):
        return None
    name = tokens[j].text
    j += 1
    if j >= len(tokens) or tokens[j].text not in ("(", "{"):
        return None
    close = ")" if tokens[j].text == "(" else "}"
    opener = tokens[j].text
    depth = 1
    j += 1
    args, group = [], []
    while j < len(tokens) and depth:
        t = tokens[j].text
        if t == opener:
            depth += 1
        elif t == close:
            depth -= 1
            if depth == 0:
                break
        if depth == 1 and t == ",":
            args.append(group)
            group = []
        else:
            group.append(t)
        j += 1
    if group:
        args.append(group)
    engaged = True
    mutexes = set()
    for g in args:
        if any(tag in g for tag in _LOCK_TAGS):
            if "defer_lock" in g:
                engaged = False
            continue
        idents = [t for t in g if is_ident(t) and t not in ("this", "std")]
        if idents:
            mutexes.add(idents[-1])
    if not mutexes:
        return None
    return lock_entry(name, mutexes, engaged), j + 1


# ---------------------------------------------------------------------------
# The statement walker shared by R6 and R7
# ---------------------------------------------------------------------------


class body_walker:
    """Walks one function body linearly, statement by statement, keeping a
    scope stack of R6 bindings and R7 lock entries."""

    def __init__(self, src, guards, report, run_r6, run_r7):
        self.src = src
        self.guards = guards
        self.report = report
        self.run_r6 = run_r6
        self.run_r7 = run_r7
        self.binding_scopes = []  # list of dict name -> binding
        self.lock_scopes = []  # list of list[lock_entry]

    # -- scope bookkeeping --------------------------------------------------

    def push(self):
        self.binding_scopes.append({})
        self.lock_scopes.append([])

    def pop(self):
        self.binding_scopes.pop()
        self.lock_scopes.pop()

    def lookup(self, name):
        for scope in reversed(self.binding_scopes):
            if name in scope:
                return scope[name]
        return None

    def all_bindings(self):
        for scope in self.binding_scopes:
            yield from scope.values()

    def find_lock(self, name):
        for scope in reversed(self.lock_scopes):
            for entry in scope:
                if entry.name == name:
                    return entry
        return None

    def held(self, mutex):
        return any(
            entry.engaged and mutex in entry.mutexes
            for scope in self.lock_scopes
            for entry in scope
        )

    # -- the walk -----------------------------------------------------------

    def walk(self, tokens):
        """tokens is one balanced block including its outer braces."""
        self.push()
        i = 1  # skip the opening '{'
        stmt = []
        while i < len(tokens) - 1:  # stop before the closing '}'
            t = tokens[i]
            if t.text == "{":
                self.statement(stmt)  # apply the header before descending
                stmt = []
                end = self._match(tokens, i)
                self.walk(tokens[i:end])
                i = end
            elif t.text == "}":  # stray: unbalanced input, bail out
                break
            elif t.text == ";" and self._depth(stmt) <= 0:
                self.statement(stmt)
                stmt = []
                i += 1
            else:
                stmt.append(t)
                i += 1
        self.statement(stmt)
        self.pop()

    @staticmethod
    def _depth(stmt):
        d = 0
        for t in stmt:
            if t.text in ("(", "["):
                d += 1
            elif t.text in (")", "]"):
                d -= 1
        return d

    @staticmethod
    def _match(tokens, open_idx):
        depth = 0
        for i in range(open_idx, len(tokens)):
            if tokens[i].text == "{":
                depth += 1
            elif tokens[i].text == "}":
                depth -= 1
                if depth == 0:
                    return i + 1
        return len(tokens)

    # -- per-statement analysis ---------------------------------------------

    def statement(self, stmt):
        if not stmt:
            return
        if self.run_r6:
            self._check_stale_uses(stmt)
        if self.run_r7:
            self._check_guarded_uses(stmt)
            self._track_locks(stmt)
        if self.run_r6:
            self._apply_mutations(stmt)
            self._bind_references(stmt)

    def _check_stale_uses(self, stmt):
        # `p = fresh_source(...)` re-targets p: the bare LHS is a write to
        # the pointer variable itself, not a use of what it points at.
        eq = _split_toplevel_assign(stmt)
        retarget_lhs = eq == 1 and is_ident(stmt[0].text)
        for i, t in enumerate(stmt):
            if retarget_lhs and i == 0:
                continue
            if not is_ident(t.text):
                continue
            if i > 0 and stmt[i - 1].text in (".", "->"):
                continue  # member of some other object
            b = self.lookup(t.text)
            if b is not None and b.stale_line is not None:
                self.report(
                    "R6",
                    t.line,
                    f"'{t.text}' (bound line {b.decl_line}) points into "
                    f"'{b.obj}' storage invalidated by {b.mutator}() on "
                    f"line {b.stale_line}; re-acquire it after the mutation",
                )

    def _apply_mutations(self, stmt):
        for i, t in enumerate(stmt):
            if (
                t.text in R6_MUTATORS
                and i + 1 < len(stmt)
                and stmt[i + 1].text == "("
                and i >= 2
                and stmt[i - 1].text in (".", "->")
                and is_ident(stmt[i - 2].text)
            ):
                if _report_probed(stmt, i):
                    # `c.apply_moves(raw).no_op` / `.cache_kept`: the
                    # statement is the cache-keeping fast-path check, not a
                    # blind mutation -- the surrounding code branches on the
                    # report before touching cached references, which the
                    # linear walk cannot follow.  Treat as non-staling.
                    continue
                obj = stmt[i - 2].text
                for b in self.all_bindings():
                    if b.obj == obj and b.stale_line is None:
                        b.stale_line = t.line
                        b.mutator = t.text

    def _bind_references(self, stmt):
        eq = _split_toplevel_assign(stmt)
        if eq is None:
            return
        lhs, rhs = stmt[:eq], stmt[eq + 1 :]
        src_obj, src_fn = self._rhs_source(rhs)
        if not lhs or not is_ident(lhs[-1].text):
            return
        name = lhs[-1].text
        # A by-value binding of an aliasing handle type (polar_ref from
        # angular_order_ref) is tracked like a reference; `.take()` in the
        # same statement detaches it into owned storage.
        by_value_alias = (
            src_fn in R6_BY_VALUE_ALIAS_SOURCES
            and len(lhs) >= 2
            and any(t.text in ("polar_ref", "auto") for t in lhs[:-1])
            and not any(t.text in ("(", "[") for t in lhs[:-1])
            and not any(t.text == "take" for t in rhs)
        )
        if by_value_alias:
            self.binding_scopes[-1][name] = binding(name, src_obj, lhs[-1].line)
            return
        if len(lhs) >= 2 and any(t.text in ("&", "*") for t in lhs[:-1]) and not any(
            t.text in ("(", "[") for t in lhs[:-1]
        ):
            # Declaration of a reference/pointer.
            if src_obj is not None:
                self.binding_scopes[-1][name] = binding(name, src_obj, lhs[-1].line)
            else:
                # Shadow any outer tracked binding: the name now means
                # something else in this scope.
                self.binding_scopes[-1].pop(name, None)
        elif len(lhs) == 1:
            # Plain reassignment: a tracked pointer re-targeted.
            b = self.lookup(name)
            if b is not None:
                if src_obj is not None:
                    b.obj = src_obj
                    b.stale_line = None
                    b.mutator = None
                    b.decl_line = lhs[-1].line
                else:
                    for scope in self.binding_scopes:
                        scope.pop(name, None)

    @staticmethod
    def _rhs_source(rhs):
        """(owning object, source function name) of the first recognized
        source call in `rhs`, or (None, None)."""
        for i, t in enumerate(rhs):
            if t.text in R6_SOURCES and i + 1 < len(rhs) and rhs[i + 1].text == "(":
                obj = _source_object(rhs, i)
                if obj is not None:
                    return obj, t.text
        return None, None

    def _check_guarded_uses(self, stmt):
        for i, t in enumerate(stmt):
            if t.text not in self.guards:
                continue
            mutex, decl_line = self.guards[t.text]
            if t.line == decl_line:
                continue  # the declaration itself
            if i > 0 and stmt[i - 1].text in (".", "->") and not (
                i >= 2 and stmt[i - 2].text == "this"
            ):
                continue  # member of some other object
            if not self.held(mutex):
                self.report(
                    "R7",
                    t.line,
                    f"'{t.text}' is guarded_by({mutex}) but {mutex} is not "
                    "held here; take a lock_guard/unique_lock first",
                )

    def _track_locks(self, stmt):
        i = 0
        while i < len(stmt):
            t = stmt[i]
            if t.text in _LOCK_TYPES:
                parsed = _parse_lock_decl(stmt, i)
                if parsed is not None:
                    entry, nxt = parsed
                    self.lock_scopes[-1].append(entry)
                    i = nxt
                    continue
            if (
                is_ident(t.text)
                and i + 3 < len(stmt)
                and stmt[i + 1].text == "."
                and stmt[i + 2].text in ("lock", "unlock")
                and stmt[i + 3].text == "("
            ):
                entry = self.find_lock(t.text)
                if entry is not None:
                    entry.engaged = stmt[i + 2].text == "lock"
                elif stmt[i + 2].text == "lock":
                    # Raw mutex.lock(): treat the mutex itself as an entry.
                    self.lock_scopes[-1].append(
                        lock_entry(t.text, {t.text}, True)
                    )
                i += 4
                continue
            i += 1


def check_scopes(src, report, run_r6, run_r7, extra_guards=None):
    """Run the R6/R7 statement walk over every function body in `src`.
    `extra_guards` merges a companion header's guard map, so out-of-line
    member definitions are checked against annotations on the class."""
    guards = dict(extra_guards or {}) if run_r7 else {}
    if run_r7:
        guards.update(parse_guard_map(src.raw))
    if run_r7 and not guards:
        run_r7 = False
    if not run_r6 and not run_r7:
        return
    walker = body_walker(src, guards, report, run_r6, run_r7)
    for start, end in gl._function_bodies(src.code):
        walker.binding_scopes.clear()
        walker.lock_scopes.clear()
        walker.walk(tokenize(src, start, end))


# ---------------------------------------------------------------------------
# R8: include-graph layering
# ---------------------------------------------------------------------------

_INCLUDE_RE = re.compile(r'^[ \t]*#[ \t]*include[ \t]+"([^"]+)"', re.MULTILINE)


def _parse_layers_fallback(text):
    """Minimal TOML-subset parser for layers.toml (section + `key = int` /
    `"key" = int` lines) for Pythons without tomllib."""
    data, section = {}, None
    for line in text.splitlines():
        line = line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            section = line[1:-1].strip()
            data[section] = {}
            continue
        if "=" in line and section is not None:
            key, _, value = line.partition("=")
            key = key.strip().strip('"')
            data[section][key] = int(value.strip())
    return data


def load_layers(path):
    """Returns (module_ranks, header_overrides)."""
    with open(path, "rb") as fh:
        raw = fh.read()
    if tomllib is not None:
        data = tomllib.loads(raw.decode("utf-8"))
    else:
        data = _parse_layers_fallback(raw.decode("utf-8"))
    layers = data.get("layers", {})
    overrides = data.get("header_overrides", {})
    if not layers:
        raise ValueError(f"{path}: no [layers] table")
    return {k: int(v) for k, v in layers.items()}, {
        k: int(v) for k, v in overrides.items()
    }


class include_graph:
    """File-level include graph of root/src with module layering."""

    def __init__(self, root, layers, overrides):
        self.layers = layers
        self.overrides = overrides
        self.edges = {}  # rel -> [(include_text, line, resolved_rel|None)]
        src_root = os.path.join(root, "src")
        for dirpath, dirnames, filenames in os.walk(src_root):
            dirnames.sort()
            for fn in sorted(filenames):
                if not fn.endswith(CXX_EXTENSIONS):
                    continue
                path = os.path.join(dirpath, fn)
                rel = os.path.relpath(path, root).replace(os.sep, "/")
                with open(path, "r", encoding="utf-8", errors="replace") as fh:
                    text = fh.read()
                out = []
                for m in _INCLUDE_RE.finditer(text):
                    inc = m.group(1)
                    line = text.count("\n", 0, m.start()) + 1
                    target = "src/" + inc
                    resolved = (
                        target
                        if os.path.isfile(os.path.join(root, target))
                        else None
                    )
                    out.append((inc, line, resolved))
                self.edges[rel] = out

    @staticmethod
    def module_of(rel):
        parts = rel.split("/")
        return parts[1] if len(parts) >= 3 and parts[0] == "src" else None

    def layer_violations(self):
        """Yields (rel, line, message) for upward/lateral cross-module
        includes."""
        for rel in sorted(self.edges):
            mod = self.module_of(rel)
            if mod is None or mod not in self.layers:
                continue
            rank = self.layers[mod]
            for inc, line, _resolved in self.edges[rel]:
                inc_mod = inc.split("/", 1)[0]
                if inc_mod == mod or inc_mod not in self.layers:
                    continue
                inc_rank = self.overrides.get(inc, self.layers[inc_mod])
                if inc_rank >= rank:
                    kind = "an upward" if inc_rank > rank else "a lateral"
                    yield (
                        rel,
                        line,
                        f'include of "{inc}" is {kind} layer edge '
                        f"({mod}={rank} -> {inc_mod}={inc_rank}); only "
                        "strictly lower layers may be included "
                        "(tools/lint/layers.toml)",
                    )

    def cycles(self):
        """Yields (rel, line, message) for back edges in the file graph,
        rendering the offending path."""
        resolved = {
            rel: [(inc, line, tgt) for inc, line, tgt in self.edges[rel] if tgt]
            for rel in self.edges
        }
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {rel: WHITE for rel in resolved}
        stack = []

        def dfs(rel):
            color[rel] = GRAY
            stack.append(rel)
            for inc, line, tgt in resolved[rel]:
                if tgt not in color:
                    continue
                if color[tgt] == GRAY:
                    path = stack[stack.index(tgt) :] + [tgt]
                    yield (
                        rel,
                        line,
                        f'include of "{inc}" closes a cycle: '
                        + " -> ".join(path),
                    )
                elif color[tgt] == WHITE:
                    yield from dfs(tgt)
            stack.pop()
            color[rel] = BLACK

        for rel in sorted(resolved):
            if color[rel] == WHITE:
                yield from dfs(rel)

    def dump_dot(self):
        """Module-level DOT rendering (edge labels = include counts)."""
        counts = {}
        files = {}
        for rel in sorted(self.edges):
            mod = self.module_of(rel)
            if mod is None:
                continue
            files[mod] = files.get(mod, 0) + 1
            for inc, _line, _tgt in self.edges[rel]:
                inc_mod = inc.split("/", 1)[0]
                if inc_mod != mod and inc_mod in self.layers:
                    counts[(mod, inc_mod)] = counts.get((mod, inc_mod), 0) + 1
        lines = ["digraph gather_layers {", "  rankdir=BT;"]
        for mod in sorted(files, key=lambda m: (self.layers.get(m, -1), m)):
            rank = self.layers.get(mod, "?")
            lines.append(
                f'  "{mod}" [label="{mod}\\nrank {rank}, {files[mod]} file(s)"];'
            )
        for (a, b), n in sorted(counts.items()):
            lines.append(f'  "{a}" -> "{b}" [label="{n}"];')
        lines.append("}")
        return "\n".join(lines) + "\n"


def check_r8(root, allow_lookup, report):
    """Layer + cycle check over root/src.  `allow_lookup(rel)` returns the
    source_file for suppression checks (built lazily)."""
    layers, overrides = load_layers(LAYERS_TOML)
    graph = include_graph(root, layers, overrides)
    for rel, line, message in graph.layer_violations():
        report(allow_lookup(rel), "R8", line, message)
    for rel, line, message in graph.cycles():
        report(allow_lookup(rel), "R8", line, message)
    return graph


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def applies_r7(rel):
    return rel.replace(os.sep, "/").startswith(R7_DIRS)


def iter_tree_files(root, paths):
    for top in paths:
        top_abs = os.path.join(root, top)
        if os.path.isfile(top_abs):
            yield top_abs
            continue
        for dirpath, dirnames, filenames in os.walk(top_abs):
            dirnames.sort()
            for fn in sorted(filenames):
                if fn.endswith(CXX_EXTENSIONS):
                    yield os.path.join(dirpath, fn)


class analysis_result:
    def __init__(self):
        self.diagnostics = []  # (rel, line, rule, message), post-suppression
        self.used_allows = set()  # (rel, annot_line, rule) that suppressed
        self.all_allows = set()  # (rel, annot_line, rule) seen in the tree


def analyze_tree(root, paths, with_lint_rules):
    """Run R6/R7 (+ R1-R5 when with_lint_rules, for the stale audit) over
    the tree, and R8 over root/src.  Returns an analysis_result."""
    res = analysis_result()
    sources = {}

    def load(path):
        rel = os.path.relpath(path, root)
        key = rel.replace(os.sep, "/")
        if key not in sources:
            with open(path, "r", encoding="utf-8", errors="replace") as fh:
                sources[key] = gl.source_file(rel, fh.read())
        return sources[key]

    def report(src, rule, line, message, visible=True):
        if src.is_allowed(rule, line):
            for annot_line in (line, line - 1):
                if rule in src.allowed.get(annot_line, ()):
                    res.used_allows.add((src.rel, annot_line, rule))
                    break
        elif visible:
            res.diagnostics.append((src.rel, line, rule, message))

    scanned_src = False
    for path in iter_tree_files(root, paths):
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        if "lint/fixtures/" in rel:
            continue
        if rel.startswith("src/"):
            scanned_src = True
        src = load(path)
        for annot_line, rules in src.allowed.items():
            for rule in rules:
                res.all_allows.add((src.rel, annot_line, rule))

        def file_report(rule, line, message, src=src):
            report(src, rule, line, message)

        extra_guards = None
        if applies_r7(rel) and rel.endswith((".cpp", ".cc")):
            stem = path[: path.rfind(".")]
            for ext in (".h", ".hpp"):
                if os.path.isfile(stem + ext):
                    with open(
                        stem + ext, "r", encoding="utf-8", errors="replace"
                    ) as fh:
                        # The header's own decl lines are skipped by line
                        # number there, not here -- but field declarations
                        # never appear inside this file's function bodies.
                        extra_guards = parse_guard_map(fh.read())
                    break

        check_scopes(
            src,
            file_report,
            run_r6=True,
            run_r7=applies_r7(rel),
            extra_guards=extra_guards,
        )
        if with_lint_rules:
            # R1-R5 recomputed only to mark their suppressions as live; the
            # diagnostics themselves are gather_lint's to print.
            def lint_report(rule, line, message, src=src):
                report(src, rule, line, message, visible=False)

            for check in gl.rules_for(src.rel):
                check(src, lint_report)

    if scanned_src and os.path.isdir(os.path.join(root, "src")):
        def r8_report(src, rule, line, message):
            report(src, rule, line, message)

        check_r8(root, load_by_rel(root, sources), r8_report)
    res.diagnostics = sorted(set(res.diagnostics))
    return res


def load_by_rel(root, sources):
    def lookup(rel):
        key = rel.replace(os.sep, "/")
        if key not in sources:
            with open(
                os.path.join(root, rel), "r", encoding="utf-8", errors="replace"
            ) as fh:
                sources[key] = gl.source_file(rel, fh.read())
        return sources[key]

    return lookup


def stale_allows(res):
    """Sorted [(rel, line, rule)] of allow() annotations that fired for no
    diagnostic of their rule."""
    return sorted(res.all_allows - res.used_allows)


# ---------------------------------------------------------------------------
# Self-test over the fixture corpus
# ---------------------------------------------------------------------------


def self_test():
    """Fixture contract: every `expect(Rn)` line (n in 6..8) must produce
    exactly that diagnostic, every other line must be clean, and every
    `expect-stale(Rn)` annotation must be reported stale while all other
    allow() annotations must be live."""
    fixtures = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")
    if not os.path.isdir(fixtures):
        print(f"self-test: fixture directory missing: {fixtures}")
        return 1

    expect_pat = re.compile(r"expect\((R[6-8])\)")
    stale_pat = re.compile(r"expect-stale\((R\d)\)")
    expected, expected_stale = set(), set()
    n_allow = 0
    for dirpath, _, filenames in os.walk(fixtures):
        for fn in sorted(filenames):
            if not fn.endswith(CXX_EXTENSIONS):
                continue
            path = os.path.join(dirpath, fn)
            rel = os.path.relpath(path, fixtures).replace(os.sep, "/")
            with open(path, "r", encoding="utf-8") as fh:
                for lineno, line in enumerate(fh, start=1):
                    for m in expect_pat.finditer(line):
                        expected.add((rel, lineno, m.group(1)))
                    for m in stale_pat.finditer(line):
                        expected_stale.add((rel, lineno, m.group(1)))
                    if "gather-lint: allow(" in line:
                        n_allow += 1

    res = analyze_tree(fixtures, ["src"], with_lint_rules=True)
    got = {(rel, line, rule) for rel, line, rule, _ in res.diagnostics}
    got_stale = set(stale_allows(res))

    ok = True
    for miss in sorted(expected - got):
        print("self-test: MISSING diagnostic %s:%d: %s" % miss)
        ok = False
    for extra in sorted(got - expected):
        print("self-test: UNEXPECTED diagnostic %s:%d: %s" % extra)
        ok = False
    for miss in sorted(expected_stale - got_stale):
        print("self-test: MISSING stale-allow %s:%d: %s" % miss)
        ok = False
    for extra in sorted(got_stale - expected_stale):
        print("self-test: UNEXPECTED stale-allow %s:%d: %s" % extra)
        ok = False
    if not expected:
        print("self-test: no expect(R6..R8) markers found in fixtures")
        ok = False
    if not expected_stale:
        print("self-test: no expect-stale marker found in fixtures")
        ok = False
    if n_allow == 0:
        print("self-test: fixtures exercise no allow() suppression")
        ok = False
    rules_seen = {rule for _, _, rule in expected}
    for rule in ("R6", "R7", "R8"):
        if rule not in rules_seen:
            print(f"self-test: no fixture fires {rule}")
            ok = False
    if ok:
        print(
            f"self-test: OK ({len(expected)} diagnostics across "
            f"{len(rules_seen)} rules, {len(expected_stale)} stale allow(s), "
            f"{n_allow} allow-annotated line(s))"
        )
    return 0 if ok else 1


def main(argv):
    ap = argparse.ArgumentParser(prog="gather_analyze.py", add_help=True)
    ap.add_argument("--root", default=".", help="tree root (default: cwd)")
    ap.add_argument(
        "--self-test", action="store_true", help="run the fixture corpus"
    )
    ap.add_argument(
        "--stale-allows",
        action="store_true",
        help="also flag allow() annotations that suppress nothing (R1-R8)",
    )
    ap.add_argument(
        "--dump-graph",
        metavar="PATH",
        help="write the module-level include graph as DOT ('-' = stdout)",
    )
    ap.add_argument(
        "paths",
        nargs="*",
        help="paths under root (default: %s)" % " ".join(DEFAULT_PATHS),
    )
    args = ap.parse_args(argv[1:])

    if args.self_test:
        return self_test()

    root = os.path.abspath(args.root)

    if args.dump_graph:
        layers, overrides = load_layers(LAYERS_TOML)
        dot = include_graph(root, layers, overrides).dump_dot()
        if args.dump_graph == "-":
            sys.stdout.write(dot)
        else:
            with open(args.dump_graph, "w", encoding="utf-8") as fh:
                fh.write(dot)
            print(f"gather-analyze: graph written to {args.dump_graph}")
        return 0

    paths = args.paths or DEFAULT_PATHS
    for p in paths:
        if not os.path.exists(os.path.join(root, p)):
            print(f"gather-analyze: no such path under {root}: {p}")
            return 2

    res = analyze_tree(root, paths, with_lint_rules=args.stale_allows)
    count = 0
    for rel, line, rule, message in res.diagnostics:
        print(f"{rel}:{line}: {rule}: {message}")
        count += 1
    if args.stale_allows:
        for rel, line, rule in stale_allows(res):
            print(
                f"{rel}:{line}: stale: allow({rule}) suppresses nothing; "
                "drop the annotation"
            )
            count += 1
    if count:
        print(f"gather-analyze: {count} diagnostic(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
