#!/usr/bin/env python3
"""gather-lint: determinism & correctness lint for the gather tree.

The simulator's headline guarantee is bit-for-bit reproducibility: the same
sim_spec and seed must produce the same trajectory, the same event stream,
and the same CSV/JSONL bytes on every machine and at every --jobs level.
This pass rejects the source patterns that quietly break that contract.

Rules (diagnosed as path:line: Rn: message):

  R1  No wall-clock or nondeterministic entropy in the deterministic core
      (src/sim, src/runner, src/config): rand(), std::random_device,
      time(), std::chrono::system_clock.  All randomness must come from the
      seeded splitmix64 stream (src/sim/rng.h); timing for reports belongs
      in the obs layer.

  R2  No iteration over std::unordered_map / std::unordered_set inside a
      function that feeds an output path (writes to an event_sink, builds
      metrics JSON via to_json, or emits CSV/JSONL).  Hash-table iteration
      order is implementation-defined, so output paths must use sorted or
      ordered containers.

  R3  No bare ==/!= against floating-point literals outside src/geometry.
      Proximity and equality decisions must go through the tolerance
      helpers (geom::tol); src/geometry owns those helpers and is exempt.
      Deliberate exact-representation guards (division-by-zero checks on
      values that are exactly 0.0 by construction) carry an allow comment.

  R4  No std::cout / printf / puts in library code (src/** except
      src/obs): stdout belongs to the obs layer and the CLI tools, and a
      stray print interleaves with --trace-jsonl streams.  stderr
      diagnostics (fprintf(stderr, ...)) and snprintf formatting are fine.

  R5  No configuration-internals access outside src/config: the
      derived-geometry cache (configuration::derived(), the
      derived_geometry struct) is an implementation detail of the config
      layer.  Consumers go through the public wrappers (classify,
      weber_point, all_views, ...) and the invalidating mutation API; a
      deliberate exception carries an allow comment.  (The deprecated
      raw-point-access shim this rule used to flag was removed in PR 7;
      the fixture keeps the dead token as a negative case.)

Suppression: append `// gather-lint: allow(Rn)` to the offending line, or
put it in a comment on the line directly above.  Multiple rules:
`allow(R2,R3)`.

Usage:
  gather_lint.py [--root DIR] [PATH...]   lint PATHs (default: src tools
                                          bench tests) relative to DIR
  gather_lint.py --self-test              run the fixture corpus under
                                          tools/lint/fixtures

Exit status: 0 clean, 1 diagnostics emitted, 2 usage error.

Known lexical limitations (by design — this is a grep-with-context pass,
not a compiler plugin): R2 tracks variables declared with a spelled-out
unordered_* type in the same file, not through type aliases; R3 only sees
comparisons with a literal operand.  clang-tidy covers the type-aware
remainder where available.
"""

import argparse
import bisect
import os
import re
import sys

CXX_EXTENSIONS = (".h", ".hpp", ".cpp", ".cc")
DEFAULT_PATHS = ["src", "tools", "bench", "tests"]

# ---------------------------------------------------------------------------
# Source preprocessing
# ---------------------------------------------------------------------------

_STRIP_RE = re.compile(
    r"""
      //[^\n]*                              # line comment
    | /\*.*?\*/                             # block comment
    | "(?:\\.|[^"\\\n])*"                   # string literal
    | '(?:\\.|[^'\\\n])*'                   # char literal
    """,
    re.VERBOSE | re.DOTALL,
)


def strip_comments_and_strings(text):
    """Blank out comments and literals, preserving offsets and newlines."""

    def blank(m):
        return re.sub(r"[^\n]", " ", m.group(0))

    return _STRIP_RE.sub(blank, text)


class source_file:
    def __init__(self, rel, text):
        self.rel = rel.replace(os.sep, "/")
        self.raw = text
        self.code = strip_comments_and_strings(text)
        self._newlines = [m.start() for m in re.finditer(r"\n", text)]
        self.allowed = self._parse_allowlist(text)

    def line_of(self, offset):
        return bisect.bisect_right(self._newlines, offset - 1) + 1

    @staticmethod
    def _parse_allowlist(text):
        allowed = {}
        pat = re.compile(r"gather-lint:\s*allow\(\s*([A-Za-z0-9_,\s]+?)\s*\)")
        for lineno, line in enumerate(text.splitlines(), start=1):
            m = pat.search(line)
            if m:
                rules = {r.strip() for r in m.group(1).split(",")}
                allowed.setdefault(lineno, set()).update(rules)
        return allowed

    def is_allowed(self, rule, lineno):
        return rule in self.allowed.get(lineno, ()) or rule in self.allowed.get(
            lineno - 1, ()
        )


# ---------------------------------------------------------------------------
# R1: wall clock / nondeterministic entropy in the deterministic core
# ---------------------------------------------------------------------------

R1_DIRS = ("src/sim/", "src/runner/", "src/config/")
R1_PATTERNS = [
    (re.compile(r"(?<!\w)rand\s*\("), "rand() — draw from the seeded splitmix64 stream"),
    (re.compile(r"\brandom_device\b"), "std::random_device is nondeterministic entropy"),
    (re.compile(r"(?<!\w)time\s*\("), "time() is wall clock; it breaks replay"),
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock is wall clock; it breaks replay"),
]


def check_r1(src, report):
    for pat, msg in R1_PATTERNS:
        for m in pat.finditer(src.code):
            report("R1", src.line_of(m.start()), msg)


# ---------------------------------------------------------------------------
# R2: unordered-container iteration on output paths
# ---------------------------------------------------------------------------

_UNORDERED_DECL = re.compile(r"\bunordered_(?:map|set|multimap|multiset)\s*<")
_OUTPUT_MARKER = re.compile(r"\bevent_sink\b|\bon_event\s*\(|\bto_json\b|(?i:csv|jsonl)")
_BODY_KEYWORDS = {"if", "for", "while", "switch", "catch", "return", "do", "else"}


def _unordered_names(code):
    """Names of variables/parameters declared with a spelled-out unordered type."""
    names = set()
    for m in _UNORDERED_DECL.finditer(code):
        i, depth = m.end(), 1
        while i < len(code) and depth:
            if code[i] == "<":
                depth += 1
            elif code[i] == ">":
                depth -= 1
            i += 1
        dm = re.match(r"[\s&*]*([A-Za-z_]\w*)", code[i : i + 160])
        if dm and dm.group(1) not in ("const", "constexpr"):
            names.add(dm.group(1))
    return names


def _match_brace(code, open_idx):
    depth = 0
    for i in range(open_idx, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(code)


def _function_bodies(code):
    """Yield (start, end) offsets of top-level function-ish bodies.

    A body is a `{` preceded (modulo cv/noexcept/trailing-return clutter) by
    a `)` whose matching `(` does not follow a control-flow keyword.  Nested
    constructs inside a recognized body are covered by that body's span.
    """
    opener = re.compile(
        r"\)\s*(?:const\b\s*)?(?:noexcept\b\s*(?:\([^()]*\)\s*)?)?"
        r"(?:->\s*[\w:<>,\s&*]+?)?\{"
    )
    pos = 0
    while True:
        m = opener.search(code, pos)
        if not m:
            return
        # Walk back from the ')' to its matching '('.
        depth, i = 0, m.start()
        while i >= 0:
            if code[i] == ")":
                depth += 1
            elif code[i] == "(":
                depth -= 1
                if depth == 0:
                    break
            i -= 1
        ident = re.search(r"([A-Za-z_]\w*)\s*$|(\])\s*$", code[max(0, i - 160) : i])
        is_lambda = bool(ident and ident.group(2))
        name = ident.group(1) if ident and ident.group(1) else ""
        if not is_lambda and (not name or name in _BODY_KEYWORDS):
            pos = m.start() + 1
            continue
        brace = code.index("{", m.start())
        end = _match_brace(code, brace)
        yield brace, end
        pos = end


_RANGE_FOR = re.compile(r"\bfor\s*\(")
_BEGIN_CALL = re.compile(r"\b([A-Za-z_]\w*)\s*\.\s*c?begin\s*\(")


def _range_for_target(code, start):
    """For a range-for at `start`, return (offset, range-expr) or None."""
    i = code.index("(", start)
    depth, j = 0, i
    while j < len(code):
        if code[j] == "(":
            depth += 1
        elif code[j] == ")":
            depth -= 1
            if depth == 0:
                break
        j += 1
    header = code[i + 1 : j]
    if ";" in header:
        return None  # classic for
    # The range-for ':' is a single colon (not '::').
    k = 0
    while k < len(header):
        if header[k] == ":" and header[k - 1 : k] != ":" and header[k + 1 : k + 2] != ":":
            return i + 1 + k, header[k + 1 :]
        k += 1
    return None


def check_r2(src, report):
    unordered = _unordered_names(src.code)
    for body_start, body_end in _function_bodies(src.code):
        body = src.code[body_start:body_end]
        if not _OUTPUT_MARKER.search(body):
            continue
        for m in _RANGE_FOR.finditer(body):
            tgt = _range_for_target(body, m.start())
            if tgt is None:
                continue
            off, expr = tgt
            tokens = set(re.findall(r"[A-Za-z_]\w*", expr))
            if tokens & unordered or "unordered_map" in expr or "unordered_set" in expr:
                report(
                    "R2",
                    src.line_of(body_start + m.start()),
                    "iteration over an unordered container on an output path; "
                    "hash order is implementation-defined — use a sorted/ordered "
                    "container",
                )
        for m in _BEGIN_CALL.finditer(body):
            if m.group(1) in unordered:
                report(
                    "R2",
                    src.line_of(body_start + m.start()),
                    f"{m.group(1)}.begin() on an unordered container in an output "
                    "path; hash order is implementation-defined",
                )


# ---------------------------------------------------------------------------
# R3: bare float equality outside src/geometry
# ---------------------------------------------------------------------------

_FLOAT_LIT = r"[-+]?(?:\d+\.\d*|\.\d+)(?:[eE][-+]?\d+)?[fF]?"
R3_PATTERNS = [
    re.compile(r"(?:==|!=)\s*" + _FLOAT_LIT),
    re.compile(_FLOAT_LIT + r"\s*(?:==|!=)(?!=)"),
]


def check_r3(src, report):
    seen = set()
    for pat in R3_PATTERNS:
        for m in pat.finditer(src.code):
            line = src.line_of(m.start())
            if line in seen:
                continue
            seen.add(line)
            report(
                "R3",
                line,
                "bare ==/!= against a floating-point literal; use the geom::tol "
                "helpers (or annotate a deliberate exact-representation guard)",
            )


# ---------------------------------------------------------------------------
# R4: stdout in library code
# ---------------------------------------------------------------------------

R4_PATTERNS = [
    (re.compile(r"\bstd\s*::\s*cout\b"), "std::cout in library code"),
    (re.compile(r"(?<!\w)printf\s*\("), "printf() in library code"),
    (re.compile(r"(?<!\w)puts\s*\("), "puts() in library code"),
]


def check_r4(src, report):
    for pat, what in R4_PATTERNS:
        for m in pat.finditer(src.code):
            report(
                "R4",
                src.line_of(m.start()),
                what + "; stdout belongs to the obs layer (src/obs) and the CLI "
                "tools — emit events or report via an event_sink",
            )


# ---------------------------------------------------------------------------
# R5: configuration internals outside src/config
# ---------------------------------------------------------------------------

R5_PATTERNS = [
    (
        re.compile(r"(?:\.|->)\s*derived\s*\(\s*\)"),
        "direct derived-geometry cache access; use the public wrappers "
        "(classify, weber_point, all_views, safe_occupied_points, ...)",
    ),
    (
        re.compile(r"\bderived_geometry\b"),
        "derived_geometry is internal to src/config; consumers use the "
        "public wrappers",
    ),
]


def check_r5(src, report):
    for pat, what in R5_PATTERNS:
        for m in pat.finditer(src.code):
            report("R5", src.line_of(m.start()), what)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def rules_for(rel):
    rel = rel.replace(os.sep, "/")
    rules = []
    if rel.startswith(R1_DIRS):
        rules.append(check_r1)
    rules.append(check_r2)
    if not rel.startswith("src/geometry/"):
        rules.append(check_r3)
    if rel.startswith("src/") and not rel.startswith("src/obs/"):
        rules.append(check_r4)
    if not rel.startswith("src/config/"):
        rules.append(check_r5)
    return rules


def lint_tree(root, paths):
    """Returns a sorted list of (rel, line, rule, message)."""
    diagnostics = []
    for top in paths:
        top_abs = os.path.join(root, top)
        if os.path.isfile(top_abs):
            files = [top_abs]
        else:
            files = []
            for dirpath, dirnames, filenames in os.walk(top_abs):
                dirnames.sort()
                for fn in sorted(filenames):
                    if fn.endswith(CXX_EXTENSIONS):
                        files.append(os.path.join(dirpath, fn))
        for path in files:
            rel = os.path.relpath(path, root)
            # The fixture corpus is deliberately full of violations; it is
            # linted by --self-test, not by tree runs.
            if "lint/fixtures/" in rel.replace(os.sep, "/"):
                continue
            with open(path, "r", encoding="utf-8", errors="replace") as fh:
                src = source_file(rel, fh.read())

            def report(rule, line, message, src=src):
                if not src.is_allowed(rule, line):
                    diagnostics.append((src.rel, line, rule, message))

            for check in rules_for(src.rel):
                check(src, report)
    return sorted(set(diagnostics))


# ---------------------------------------------------------------------------
# Self-test over the fixture corpus
# ---------------------------------------------------------------------------


def self_test():
    """Fixtures declare expectations inline: a line whose comment contains
    `expect(Rn)` must produce exactly that diagnostic; every other line must
    be clean (allow-comment suppressions included)."""
    fixtures = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")
    if not os.path.isdir(fixtures):
        print(f"self-test: fixture directory missing: {fixtures}")
        return 1

    # Only this pass's own rules: R6-R8 markers in the shared fixture corpus
    # belong to gather_analyze.py --self-test.
    expect_pat = re.compile(r"expect\((R[1-5])\)")
    expected = set()
    n_allow = 0
    for dirpath, _, filenames in os.walk(fixtures):
        for fn in sorted(filenames):
            if not fn.endswith(CXX_EXTENSIONS):
                continue
            path = os.path.join(dirpath, fn)
            rel = os.path.relpath(path, fixtures).replace(os.sep, "/")
            with open(path, "r", encoding="utf-8") as fh:
                for lineno, line in enumerate(fh, start=1):
                    for m in expect_pat.finditer(line):
                        expected.add((rel, lineno, m.group(1)))
                    if "gather-lint: allow(" in line:
                        n_allow += 1

    got = {(rel, line, rule) for rel, line, rule, _ in lint_tree(fixtures, ["src"])}

    ok = True
    for miss in sorted(expected - got):
        print("self-test: MISSING diagnostic %s:%d: %s" % miss)
        ok = False
    for extra in sorted(got - expected):
        print("self-test: UNEXPECTED diagnostic %s:%d: %s" % extra)
        ok = False
    if not expected:
        print("self-test: no expectations found in fixtures")
        ok = False
    if n_allow == 0:
        print("self-test: fixtures exercise no allow() suppression")
        ok = False
    rules_seen = {rule for _, _, rule in expected}
    for rule in ("R1", "R2", "R3", "R4", "R5"):
        if rule not in rules_seen:
            print(f"self-test: no fixture fires {rule}")
            ok = False
    if ok:
        print(
            f"self-test: OK ({len(expected)} diagnostics across "
            f"{len(rules_seen)} rules, {n_allow} allow-suppressed line(s))"
        )
    return 0 if ok else 1


def main(argv):
    ap = argparse.ArgumentParser(prog="gather_lint.py", add_help=True)
    ap.add_argument("--root", default=".", help="tree root (default: cwd)")
    ap.add_argument("--self-test", action="store_true", help="run the fixture corpus")
    ap.add_argument("paths", nargs="*", help="paths under root (default: %s)" % " ".join(DEFAULT_PATHS))
    args = ap.parse_args(argv[1:])

    if args.self_test:
        return self_test()

    root = os.path.abspath(args.root)
    paths = args.paths or DEFAULT_PATHS
    for p in paths:
        if not os.path.exists(os.path.join(root, p)):
            print(f"gather-lint: no such path under {root}: {p}")
            return 2

    diagnostics = lint_tree(root, paths)
    for rel, line, rule, message in diagnostics:
        print(f"{rel}:{line}: {rule}: {message}")
    if diagnostics:
        print(f"gather-lint: {len(diagnostics)} diagnostic(s)")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
