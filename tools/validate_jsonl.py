#!/usr/bin/env python3
"""Schema checker for --trace-jsonl event streams (docs/OBSERVABILITY.md).

Usage: validate_jsonl.py TRACE.jsonl [...]

Checks, per line:
  * the line parses as a single JSON object;
  * "event" is a known kind and the object has exactly that kind's keys,
    in the canonical order ("event", "run", "round" first);
  * every value has the right type (ints are non-negative; "robot" is a
    robot index >= 0; class labels come from the paper's alphabet).

Exit status: 0 when every file holds at least one line and every line
validates; 1 on any invalid line, an empty trace, or an unreadable file.
An empty trace is an error: every simulated run emits at least a
round_start event, so zero lines means the producer wrote nothing and a
"valid" verdict would mask a broken pipeline.
"""
import json
import sys

# kind -> ordered keys after the common prefix ("event", "run", "round").
SCHEMA = {
    "round_start": ["cls", "live"],
    "activation": ["robot"],
    "move_truncated": ["robot", "want", "got"],
    "crash": ["robot"],
    "class_transition": ["from", "to"],
    "lemma_violation": ["lemma"],
    "gathered": ["x", "y"],
}
CLASS_LABELS = {"B", "M", "L1W", "L2W", "QR", "A"}
LEMMA_LABELS = {"wait-freeness", "bivalent-entry"}


def check_value(key, value):
    if key in ("run", "round", "live"):
        return isinstance(value, int) and value >= 0
    if key == "robot":
        return isinstance(value, int) and value >= 0
    if key in ("want", "got", "x", "y"):
        return isinstance(value, (int, float))
    if key in ("cls", "from", "to"):
        return value in CLASS_LABELS
    if key == "lemma":
        return value in LEMMA_LABELS
    return False


def validate_line(line):
    """Returns None when valid, else an error string."""
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as e:
        return f"not valid JSON: {e}"
    if not isinstance(obj, dict):
        return "line is not a JSON object"
    kind = obj.get("event")
    if kind not in SCHEMA:
        return f"unknown event kind: {kind!r}"
    want_keys = ["event", "run", "round"] + SCHEMA[kind]
    got_keys = list(obj.keys())
    if got_keys != want_keys:
        return f"{kind}: keys {got_keys} != expected {want_keys}"
    for key in want_keys[1:]:
        if not check_value(key, obj[key]):
            return f"{kind}: bad value for {key!r}: {obj[key]!r}"
    return None


def validate_file(path):
    errors = 0
    lines = 0
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            lines = lineno
            line = line.rstrip("\n")
            if not line:
                print(f"{path}:{lineno}: empty line")
                errors += 1
                continue
            err = validate_line(line)
            if err is not None:
                print(f"{path}:{lineno}: {err}")
                errors += 1
    if lines == 0:
        print(f"{path}: empty trace (no events); refusing to call it valid")
        errors += 1
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip())
        return 2
    total_errors = 0
    total_lines = 0
    for path in argv[1:]:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                total_lines += sum(1 for _ in fh)
        except OSError as e:
            print(f"{path}: {e}")
            return 1
        total_errors += validate_file(path)
    if total_errors:
        print(f"FAIL: {total_errors} invalid line(s)")
        return 1
    print(f"OK: {total_lines} line(s) valid")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
