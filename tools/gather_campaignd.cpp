// gather_campaignd -- the campaign service front door (stdin-JSONL jobs).
//
// Reads one flat JSON object per stdin line, executes submitted campaign
// shards on a single worker thread, and answers every command with one flat
// JSON line on stdout (docs/RUNNER.md, "Job protocol").  Commands:
//
//   {"cmd":"submit","id":"s0","workloads":"uniform","n":"6,8",...}
//   {"cmd":"status"}            -- queue counters
//   {"cmd":"status","id":"s0"}  -- one job's state and progress
//   {"cmd":"cancel","id":"s0"}  -- dequeue, or stop a running job at the
//                                  next cell boundary (checkpointed)
//   {"cmd":"drain"}             -- finish queued work, reply, exit 0
//
// EOF on stdin behaves like drain.  The queue is bounded: submits beyond
// `--queue` in-flight jobs (queued + running) are rejected with
// {"ok":false,"error":"backlog"} -- backpressure instead of unbounded
// buffering.
//
// A submitted job runs one shard exactly like `gather_campaign` would:
// list-valued grid fields travel as the same CSV strings the CLI takes,
// and the per-shard artifacts (columnar/csv/trace/mreg) are byte-identical
// to the CLI's, so shards can be produced by any mix of daemons and CLI
// invocations and merged interchangeably.  Output files are written only
// for complete shards; interrupted jobs leave just their checkpoint.
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <deque>
#include <exception>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/obs.h"
#include "runner/runner.h"
#include "util/cli.h"
#include "util/flat_json.h"

namespace {

using namespace gather;

/// Everything a submitted job carries: the campaign shard plus output paths.
struct job {
  std::string id;
  runner::grid grid;
  runner::shard_ref shard;
  std::string checkpoint;
  std::size_t checkpoint_stride = 64;
  std::size_t max_cells = 0;
  std::size_t jobs = 1;
  std::string columnar;
  std::string csv;
  std::string trace_jsonl;
  std::string metrics_bin;
  std::string metrics_json;

  enum class state { queued, running, done, failed, cancelled };
  state st = state::queued;
  std::string error;  // state::failed
  std::size_t total = 0;  // cells this job set out to run (filled at start)
  std::shared_ptr<std::atomic<std::size_t>> completed =
      std::make_shared<std::atomic<std::size_t>>(0);
  std::shared_ptr<std::atomic<bool>> cancel =
      std::make_shared<std::atomic<bool>>(false);
};

const char* state_name(job::state s) {
  switch (s) {
    case job::state::queued: return "queued";
    case job::state::running: return "running";
    case job::state::done: return "done";
    case job::state::failed: return "failed";
    case job::state::cancelled: return "cancelled";
  }
  return "?";
}

/// Field accessors over the parsed flat JSON object.  Missing keys keep the
/// default; present keys parse strictly (throw std::invalid_argument).
struct fields {
  const std::map<std::string, std::string>& kv;

  [[nodiscard]] const std::string* get(const char* key) const {
    const auto it = kv.find(key);
    return it == kv.end() ? nullptr : &it->second;
  }
  void str(const char* key, std::string& out) const {
    if (const std::string* v = get(key)) out = *v;
  }
  void size(const char* key, std::size_t& out) const {
    if (const std::string* v = get(key)) out = cli::parse_size(*v);
  }
  void u64(const char* key, std::uint64_t& out) const {
    if (const std::string* v = get(key)) out = cli::parse_u64(*v);
  }
  void integer(const char* key, int& out) const {
    if (const std::string* v = get(key)) out = cli::parse_int(*v);
  }
};

job parse_submit(const std::map<std::string, std::string>& kv) {
  const fields f{kv};
  job j;
  j.id = kv.count("id") ? kv.at("id") : "";
  if (j.id.empty()) throw std::invalid_argument("submit needs an id");
  if (const std::string* v = f.get("workloads")) {
    j.grid.workloads = runner::split_csv_strict(*v);
  }
  if (const std::string* v = f.get("n")) {
    j.grid.ns = runner::parse_size_list(*v);
  }
  if (const std::string* v = f.get("f")) {
    j.grid.fs = runner::parse_size_list(*v);
  }
  if (const std::string* v = f.get("schedulers")) {
    j.grid.schedulers = runner::split_csv_strict(*v);
  }
  if (const std::string* v = f.get("movements")) {
    j.grid.movements = runner::split_csv_strict(*v);
  }
  if (const std::string* v = f.get("deltas")) {
    j.grid.deltas = runner::parse_double_list(*v);
  }
  f.integer("repeats", j.grid.repeats);
  f.u64("seed", j.grid.base_seed);
  f.size("max_rounds", j.grid.max_rounds);
  f.size("shard_index", j.shard.index);
  f.size("shard_count", j.shard.count);
  f.str("checkpoint", j.checkpoint);
  f.size("checkpoint_stride", j.checkpoint_stride);
  f.size("max_cells", j.max_cells);
  f.size("jobs", j.jobs);
  f.str("columnar", j.columnar);
  f.str("csv", j.csv);
  f.str("trace_jsonl", j.trace_jsonl);
  f.str("metrics_bin", j.metrics_bin);
  f.str("metrics_json", j.metrics_json);
  if (j.jobs == 0) throw std::invalid_argument("jobs must be >= 1");
  // Validate the grid and shard now, so a bad submit fails at the protocol
  // level instead of surfacing later as a failed job.
  const std::size_t total = runner::expand(j.grid).size();
  (void)runner::shard_cells(total, j.shard);
  return j;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  if (!out || !(out << bytes)) {
    throw std::runtime_error("cannot write " + path);
  }
}

/// Execute one job (worker thread; no stdout access).  Returns the final
/// state and fills `error` on failure.
job::state execute(job& j, std::string& error) {
  try {
    runner::campaign_spec spec;
    spec.grid = j.grid;
    spec.shard = j.shard;
    spec.exec.jobs = j.jobs;
    spec.exec.max_cells = j.max_cells;
    spec.exec.progress_stride = 1;
    const auto completed = j.completed;
    spec.exec.on_progress = [completed](const runner::progress& p) {
      completed->store(p.completed, std::memory_order_relaxed);
    };
    const auto cancel = j.cancel;
    spec.exec.cancelled = [cancel]() {
      return cancel->load(std::memory_order_relaxed);
    };
    spec.checkpoint.path = j.checkpoint;
    spec.checkpoint.stride = j.checkpoint_stride;

    std::string trace;
    obs::metrics_registry metrics;
    const bool want_metrics = !j.metrics_bin.empty() || !j.metrics_json.empty();
    if (!j.trace_jsonl.empty()) spec.sinks.trace_jsonl = &trace;
    if (want_metrics) spec.sinks.metrics = &metrics;

    const runner::campaign_result result = runner::run_campaign(spec);
    if (!result.complete()) {
      // Stopped by max_cells or cancel; the checkpoint (if any) holds the
      // progress and no output artifact is written.
      return j.cancel->load() ? job::state::cancelled : job::state::done;
    }

    const std::uint64_t fingerprint = runner::grid_fingerprint(j.grid);
    if (!j.columnar.empty()) {
      write_file(j.columnar,
                 runner::encode_results(result.rows, result.range, fingerprint)
                     .encode());
    }
    if (!j.csv.empty()) write_file(j.csv, runner::results_csv(result.rows));
    if (!j.trace_jsonl.empty()) write_file(j.trace_jsonl, trace);
    if (!j.metrics_json.empty()) {
      write_file(j.metrics_json, metrics.to_json() + "\n");
    }
    if (!j.metrics_bin.empty()) {
      runner::shard_metrics sm;
      sm.range = result.range;
      sm.fingerprint = fingerprint;
      sm.metrics = metrics;
      write_file(j.metrics_bin, runner::encode_shard_metrics(sm));
    }
    return job::state::done;
  } catch (const std::exception& e) {
    error = e.what();
    return job::state::failed;
  }
}

/// The daemon: a bounded job queue, one worker thread, and a stdin command
/// loop that is the only stdout writer.
class job_server {
 public:
  explicit job_server(std::size_t capacity) : capacity_(capacity) {
    worker_ = std::thread([this] { work(); });
  }

  ~job_server() {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    cv_.notify_all();
    worker_.join();
  }

  [[nodiscard]] std::string handle(const std::string& line) {
    std::map<std::string, std::string> kv;
    try {
      kv = util::parse_flat_json(line);
    } catch (const std::exception& e) {
      return error_reply(e.what());
    }
    const auto cmd = kv.find("cmd");
    if (cmd == kv.end()) return error_reply("missing cmd");
    try {
      if (cmd->second == "submit") return submit(kv);
      if (cmd->second == "status") return status(kv);
      if (cmd->second == "cancel") return cancel(kv);
      if (cmd->second == "drain") return "";  // caller drains then exits
      return error_reply("unknown cmd: " + cmd->second);
    } catch (const std::exception& e) {
      return error_reply(e.what());
    }
  }

  /// Block until no job is queued or running (the drain / EOF path).
  void drain() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_idle_.wait(lock, [this] { return queue_.empty() && running_.empty(); });
  }

 private:
  [[nodiscard]] static std::string error_reply(const std::string& message) {
    std::string out = "{\"ok\":false,\"error\":";
    obs::json_append_string(out, message);
    out += "}";
    return out;
  }

  [[nodiscard]] std::string submit(
      const std::map<std::string, std::string>& kv) {
    job j = parse_submit(kv);
    std::unique_lock<std::mutex> lock(mutex_);
    if (jobs_.count(j.id) != 0) {
      return error_reply("duplicate id: " + j.id);
    }
    if (queue_.size() + running_.size() >= capacity_) {
      return error_reply("backlog");
    }
    std::string out = "{\"ok\":true,\"id\":";
    obs::json_append_string(out, j.id);
    out += "}";
    queue_.push_back(j.id);
    jobs_.emplace(j.id, std::move(j));
    cv_.notify_one();
    return out;
  }

  [[nodiscard]] std::string status(
      const std::map<std::string, std::string>& kv) {
    std::unique_lock<std::mutex> lock(mutex_);
    const auto id = kv.find("id");
    if (id != kv.end()) {
      const auto it = jobs_.find(id->second);
      if (it == jobs_.end()) return error_reply("no such id: " + id->second);
      const job& j = it->second;
      std::string out = "{\"ok\":true,\"id\":";
      obs::json_append_string(out, j.id);
      out += ",\"state\":";
      obs::json_append_string(out, state_name(j.st));
      out += ",\"completed\":";
      obs::json_append_uint(out, j.completed->load());
      out += ",\"total\":";
      obs::json_append_uint(out, j.total);
      out += "}";
      return out;
    }
    std::size_t counts[5] = {0, 0, 0, 0, 0};
    for (const auto& [_, j] : jobs_) {
      ++counts[static_cast<std::size_t>(j.st)];
    }
    std::string out = "{\"ok\":true";
    const char* names[5] = {"queued", "running", "done", "failed", "cancelled"};
    for (std::size_t i = 0; i < 5; ++i) {
      out += ",\"";
      out += names[i];
      out += "\":";
      obs::json_append_uint(out, counts[i]);
    }
    out += "}";
    return out;
  }

  [[nodiscard]] std::string cancel(
      const std::map<std::string, std::string>& kv) {
    const auto id = kv.find("id");
    if (id == kv.end()) return error_reply("cancel needs an id");
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id->second);
    if (it == jobs_.end()) return error_reply("no such id: " + id->second);
    job& j = it->second;
    if (j.st == job::state::queued) {
      for (auto q = queue_.begin(); q != queue_.end(); ++q) {
        if (*q == j.id) {
          queue_.erase(q);
          break;
        }
      }
      j.st = job::state::cancelled;
    } else if (j.st == job::state::running) {
      // The worker stops at the next cell boundary and checkpoints; the
      // state flips when it returns.
      j.cancel->store(true, std::memory_order_relaxed);
    }
    std::string out = "{\"ok\":true,\"id\":";
    obs::json_append_string(out, j.id);
    out += ",\"state\":";
    obs::json_append_string(out, state_name(j.st));
    out += "}";
    return out;
  }

  void work() {
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (shutdown_) return;
      const std::string id = queue_.front();
      queue_.pop_front();
      job& j = jobs_.at(id);
      j.st = job::state::running;
      // Size the progress denominator before running (cheap re-expand).
      try {
        const std::size_t cells =
            runner::shard_cells(runner::expand(j.grid).size(), j.shard).size();
        j.total = j.max_cells == 0 ? cells : std::min(j.max_cells, cells);
      } catch (const std::exception&) {
        j.total = 0;
      }
      running_.push_back(id);
      lock.unlock();
      std::string error;
      const job::state final_state = execute(j, error);
      lock.lock();
      j.st = final_state;
      j.error = std::move(error);
      for (auto r = running_.begin(); r != running_.end(); ++r) {
        if (*r == id) {
          running_.erase(r);
          break;
        }
      }
      cv_idle_.notify_all();
    }
  }

  const std::size_t capacity_;
  std::mutex mutex_;
  std::condition_variable cv_;       // worker wake-up
  std::condition_variable cv_idle_;  // drain wake-up
  // queued job ids, FIFO              gather-lint: guarded_by(mutex_)
  std::deque<std::string> queue_;
  // at most one entry (single worker)  gather-lint: guarded_by(mutex_)
  std::vector<std::string> running_;
  std::map<std::string, job> jobs_;  // gather-lint: guarded_by(mutex_)
  bool shutdown_ = false;            // gather-lint: guarded_by(mutex_)
  std::thread worker_;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t capacity = 4;
  cli::parser p("gather_campaignd",
                "campaign service daemon: flat JSON commands on stdin, one "
                "JSON reply per line on stdout (docs/RUNNER.md)");
  p.opt("--queue", "N", "max in-flight jobs, queued + running (default 4)",
        [&capacity](const std::string& v) {
          capacity = cli::parse_size(v);
          if (capacity == 0) {
            throw std::invalid_argument("must be >= 1");
          }
        });
  p.parse_or_exit(argc, argv);

  job_server d(capacity);
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    const std::string reply = d.handle(line);
    if (reply.empty()) {
      // drain: finish everything, acknowledge, exit.
      d.drain();
      std::fputs("{\"ok\":true,\"drained\":true}\n", stdout);
      std::fflush(stdout);
      return 0;
    }
    std::fprintf(stdout, "%s\n", reply.c_str());
    std::fflush(stdout);
  }
  d.drain();  // EOF behaves like drain, minus the reply
  return 0;
}
