// gather_check: bounded model-checking adversary search.
//
// Exhaustively enumerates adversary schedules (crash subsets, activation
// subsets, movement-truncation stops) for small robot multisets on a small
// integer lattice, over a bounded number of rounds, checking the paper's
// lemma predicates in every reached state.  Symmetry-canonical state pruning
// (config/state_key.h) keeps the sweep tractable; any violation is emitted
// as a schedule trace that replays bit-identically through the simulator.
//
// Examples:
//   gather_check --lattice 3x3 --n 2,3 --rounds 3            # lemma sweep
//   gather_check --algorithm cog --n 4 --trace-out ce.trace  # find + record
//   gather_check --replay ce.trace --algorithm cog           # replay a trace
//
// Exit codes: 0 clean, 1 violations found, 2 usage error, 3 expectation
// mismatch (--expect-*).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "check/check.h"
#include "core/wait_free_gather.h"
#include "core/weak_multiplicity.h"
#include "sim/sim.h"
#include "util/cli.h"
#include "workloads/io.h"

namespace {

using namespace gather;

struct options {
  std::size_t lattice_w = 3;
  std::size_t lattice_h = 3;
  std::vector<std::size_t> ns = {3};
  std::string points_file;
  std::string algorithm = "wfg";
  std::string report = "text";
  std::string trace_out;
  std::string replay_file;
  check::check_options check;
  std::uint64_t expect_explored = 0;
  std::uint64_t expect_generated = 0;
  bool have_expect_explored = false;
  bool have_expect_generated = false;
  bool no_dedup = false;
};

const core::gathering_algorithm& make_algorithm(const std::string& name) {
  static const core::wait_free_gather wfg;
  static const core::weak_multiplicity_adapter weak(wfg);
  static const baselines::center_of_gravity cog;
  static const baselines::single_fault_gather sfg;
  static const baselines::median_pursuit median;
  if (name == "wfg") return wfg;
  if (name == "weak") return weak;
  if (name == "cog") return cog;
  if (name == "sfg") return sfg;
  if (name == "median") return median;
  std::fprintf(stderr, "unknown algorithm: %s\n", name.c_str());
  std::exit(2);
}

cli::parser make_parser(options& o) {
  cli::parser p("gather_check",
                "bounded model-checking adversary search (exit 0 clean, 1 "
                "violations, 2 usage, 3 expectation mismatch)");
  p.opt("--lattice", "WxH", "seed lattice size (default 3x3)",
        [&o](const std::string& v) {
          const std::size_t x = v.find('x');
          if (x == std::string::npos) {
            throw std::invalid_argument("wants WxH, got '" + v + "'");
          }
          o.lattice_w = cli::parse_size(v.substr(0, x));
          o.lattice_h = cli::parse_size(v.substr(x + 1));
        });
  p.opt("--n", "LIST", "comma-separated robot counts to sweep (default 3)",
        [&o](const std::string& v) {
          o.ns.clear();
          std::stringstream ss(v);
          std::string item;
          while (std::getline(ss, item, ',')) {
            if (!item.empty()) o.ns.push_back(cli::parse_size(item));
          }
          if (o.ns.empty()) {
            throw std::invalid_argument("wants a comma-separated list");
          }
        });
  p.opt_string("--points", "FILE",
               "check a single seed read from FILE instead", &o.points_file);
  p.opt_size("--rounds", "exploration depth bound (default 3)",
             &o.check.max_rounds);
  p.opt_size("--crashes", "total crash budget (default 1)",
             &o.check.crash_budget);
  p.opt_size("--crashes-per-round", "per-round crash cap (default 1)",
             &o.check.max_crashes_per_round);
  p.opt("--levels", "L", "movement truncation grid size (default 2)",
        [&o](const std::string& v) {
          o.check.truncation_levels =
              static_cast<std::uint32_t>(cli::parse_size(v));
        });
  p.opt("--delta-fraction", "D",
        "engine delta as fraction of seed diameter, in (0, 1] (default 0.25)",
        [&o](const std::string& v) {
          const double d = cli::parse_double(v);
          if (!(d > 0.0) || d > 1.0) {
            throw std::invalid_argument("want a number in (0, 1]");
          }
          o.check.delta_fraction = d;
        });
  p.opt_string("--algorithm", "A",
               "wfg | weak | cog | sfg | median (default wfg)", &o.algorithm);
  p.toggle("--no-dedup",
           "disable symmetry-canonical pruning (exact keys only)",
           &o.no_dedup);
  p.opt_size("--max-states", "generated-state safety cap", &o.check.max_states);
  p.opt_size("--max-counterexamples",
             "stop after recording N violations (default 8)",
             &o.check.max_counterexamples);
  p.opt("--report", "FMT", "text | json (default text)",
        [&o](const std::string& v) {
          if (v != "text" && v != "json") {
            throw std::invalid_argument("wants text|json");
          }
          o.report = v;
        });
  p.opt_string("--trace-out", "FILE",
               "write the first counterexample's schedule trace", &o.trace_out);
  p.opt_string("--replay", "FILE",
               "replay a recorded trace through the simulator", &o.replay_file);
  p.opt("--expect-explored", "N", "exit 3 unless explored-state count == N",
        [&o](const std::string& v) {
          o.expect_explored = cli::parse_u64(v);
          o.have_expect_explored = true;
        });
  p.opt("--expect-generated", "N", "exit 3 unless generated-state count == N",
        [&o](const std::string& v) {
          o.expect_generated = cli::parse_u64(v);
          o.have_expect_generated = true;
        });
  return p;
}

int run_replay(const options& o) {
  std::ifstream in(o.replay_file);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", o.replay_file.c_str());
    return 2;
  }
  sim::schedule_trace trace;
  try {
    trace = sim::read_trace(in);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  const auto& algo = make_algorithm(o.algorithm);
  const sim::sim_result res = sim::replay_schedule(trace, algo);
  const char* status = res.status == sim::sim_status::gathered ? "gathered"
                       : res.status == sim::sim_status::stalled
                           ? "stalled"
                           : "not gathered";
  const std::string cls =
      res.class_history.empty()
          ? "?"
          : std::string(gather::enum_name(res.class_history.back()));
  std::printf("replayed %zu rounds (%s), final class %s\n", res.rounds, status,
              cls.c_str());
  std::ostringstream pts;
  workloads::write_points(pts, res.final_positions);
  std::fputs(pts.str().c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  options o;
  make_parser(o).parse_or_exit(argc, argv);
  o.check.canonical_dedup = !o.no_dedup;
  if (!o.replay_file.empty()) return run_replay(o);

  check::check_spec spec;
  spec.algorithm = &make_algorithm(o.algorithm);
  spec.options = o.check;

  if (!o.points_file.empty()) {
    auto pts = workloads::read_points_file(o.points_file);
    if (!pts || pts->empty()) {
      std::fprintf(stderr, "cannot read points from %s\n",
                   o.points_file.c_str());
      return 2;
    }
    spec.seeds.push_back(std::move(*pts));
  } else {
    for (std::size_t n : o.ns) {
      if (n == 0 || n > 16) {
        std::fprintf(stderr, "robot count %zu out of range [1,16]\n", n);
        return 2;
      }
      auto seeds = check::lattice_multisets(o.lattice_w, o.lattice_h, n);
      for (auto& s : seeds) spec.seeds.push_back(std::move(s));
    }
  }

  const check::check_result result = check::explore(spec);

  if (o.report == "json") {
    std::fputs(check::render_json(result, spec.options).c_str(), stdout);
  } else {
    std::fputs(check::render_text(result, spec.options).c_str(), stdout);
  }

  if (!result.counterexamples.empty()) {
    const check::counterexample& ce = result.counterexamples.front();
    if (!o.trace_out.empty()) {
      std::ofstream out(o.trace_out);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", o.trace_out.c_str());
        return 2;
      }
      sim::write_trace(out, ce.trace);
      std::fprintf(stderr, "counterexample (%s, round %zu) written to %s\n",
                   ce.lemma_id.c_str(), ce.round, o.trace_out.c_str());
    } else {
      std::fprintf(stderr, "first counterexample: %s at round %zu\n",
                   ce.lemma_id.c_str(), ce.round);
    }
  }

  if (o.have_expect_explored && result.states_explored != o.expect_explored) {
    std::fprintf(stderr, "expected %llu explored states, got %llu\n",
                 static_cast<unsigned long long>(o.expect_explored),
                 static_cast<unsigned long long>(result.states_explored));
    return 3;
  }
  if (o.have_expect_generated && result.states_generated != o.expect_generated) {
    std::fprintf(stderr, "expected %llu generated states, got %llu\n",
                 static_cast<unsigned long long>(o.expect_generated),
                 static_cast<unsigned long long>(result.states_generated));
    return 3;
  }
  return result.total_violations() == 0 ? 0 : 1;
}
