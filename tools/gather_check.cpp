// gather_check: bounded model-checking adversary search.
//
// Exhaustively enumerates adversary schedules (crash subsets, activation
// subsets, movement-truncation stops) for small robot multisets on a small
// integer lattice, over a bounded number of rounds, checking the paper's
// lemma predicates in every reached state.  Symmetry-canonical state pruning
// (config/state_key.h) keeps the sweep tractable; any violation is emitted
// as a schedule trace that replays bit-identically through the simulator.
//
// Examples:
//   gather_check --lattice 3x3 --n 2,3 --rounds 3            # lemma sweep
//   gather_check --algorithm cog --n 4 --trace-out ce.trace  # find + record
//   gather_check --replay ce.trace --algorithm cog           # replay a trace
//
// Exit codes: 0 clean, 1 violations found, 2 usage error, 3 expectation
// mismatch (--expect-*).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/baselines.h"
#include "check/check.h"
#include "core/wait_free_gather.h"
#include "core/weak_multiplicity.h"
#include "sim/sim.h"
#include "workloads/io.h"

namespace {

using namespace gather;

struct options {
  std::size_t lattice_w = 3;
  std::size_t lattice_h = 3;
  std::vector<std::size_t> ns = {3};
  std::string points_file;
  std::string algorithm = "wfg";
  std::string report = "text";
  std::string trace_out;
  std::string replay_file;
  check::check_options check;
  std::uint64_t expect_explored = 0;
  std::uint64_t expect_generated = 0;
  bool have_expect_explored = false;
  bool have_expect_generated = false;
};

void usage() {
  std::puts(
      "usage: gather_check [options]\n"
      "  --lattice WxH        seed lattice size (default 3x3)\n"
      "  --n LIST             comma-separated robot counts to sweep (default 3)\n"
      "  --points FILE        check a single seed read from FILE instead\n"
      "  --rounds R           exploration depth bound (default 3)\n"
      "  --crashes B          total crash budget (default 1)\n"
      "  --crashes-per-round C  per-round crash cap (default 1)\n"
      "  --levels L           movement truncation grid size (default 2)\n"
      "  --delta-fraction D   engine delta as fraction of seed diameter,\n"
      "                       in (0, 1] (default 0.25)\n"
      "  --algorithm A        wfg | weak | cog | sfg | median (default wfg)\n"
      "  --no-dedup           disable symmetry-canonical pruning (exact keys only)\n"
      "  --max-states N       generated-state safety cap\n"
      "  --max-counterexamples N  stop after recording N violations (default 8)\n"
      "  --report FMT         text | json (default text)\n"
      "  --trace-out FILE     write the first counterexample's schedule trace\n"
      "  --replay FILE        replay a recorded trace through the simulator\n"
      "  --expect-explored N  exit 3 unless explored-state count == N\n"
      "  --expect-generated N exit 3 unless generated-state count == N");
}

const core::gathering_algorithm& make_algorithm(const std::string& name) {
  static const core::wait_free_gather wfg;
  static const core::weak_multiplicity_adapter weak(wfg);
  static const baselines::center_of_gravity cog;
  static const baselines::single_fault_gather sfg;
  static const baselines::median_pursuit median;
  if (name == "wfg") return wfg;
  if (name == "weak") return weak;
  if (name == "cog") return cog;
  if (name == "sfg") return sfg;
  if (name == "median") return median;
  std::fprintf(stderr, "unknown algorithm: %s\n", name.c_str());
  std::exit(2);
}

std::size_t parse_size(const std::string& s, const char* what) {
  try {
    return static_cast<std::size_t>(std::stoull(s));
  } catch (const std::exception&) {
    std::fprintf(stderr, "bad %s: %s\n", what, s.c_str());
    std::exit(2);
  }
}

double parse_fraction(const std::string& s, const char* what) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0' || !(v > 0.0) || v > 1.0) {
    std::fprintf(stderr, "bad %s: %s (want a number in (0, 1])\n", what,
                 s.c_str());
    std::exit(2);
  }
  return v;
}

options parse(int argc, char** argv) {
  options o;
  auto need = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "%s needs a value\n", flag);
      std::exit(2);
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--help" || a == "-h") {
      usage();
      std::exit(0);
    } else if (a == "--lattice") {
      const std::string v = need(i, "--lattice");
      const std::size_t x = v.find('x');
      if (x == std::string::npos) {
        std::fprintf(stderr, "--lattice wants WxH, got %s\n", v.c_str());
        std::exit(2);
      }
      o.lattice_w = parse_size(v.substr(0, x), "lattice width");
      o.lattice_h = parse_size(v.substr(x + 1), "lattice height");
    } else if (a == "--n") {
      o.ns.clear();
      std::stringstream ss(need(i, "--n"));
      std::string item;
      while (std::getline(ss, item, ',')) {
        if (!item.empty()) o.ns.push_back(parse_size(item, "robot count"));
      }
      if (o.ns.empty()) {
        std::fprintf(stderr, "--n wants a comma-separated list\n");
        std::exit(2);
      }
    } else if (a == "--points") {
      o.points_file = need(i, "--points");
    } else if (a == "--rounds") {
      o.check.max_rounds = parse_size(need(i, "--rounds"), "round bound");
    } else if (a == "--crashes") {
      o.check.crash_budget = parse_size(need(i, "--crashes"), "crash budget");
    } else if (a == "--crashes-per-round") {
      o.check.max_crashes_per_round =
          parse_size(need(i, "--crashes-per-round"), "per-round crash cap");
    } else if (a == "--levels") {
      o.check.truncation_levels = static_cast<std::uint32_t>(
          parse_size(need(i, "--levels"), "truncation levels"));
    } else if (a == "--delta-fraction") {
      o.check.delta_fraction =
          parse_fraction(need(i, "--delta-fraction"), "delta fraction");
    } else if (a == "--algorithm") {
      o.algorithm = need(i, "--algorithm");
    } else if (a == "--no-dedup") {
      o.check.canonical_dedup = false;
    } else if (a == "--max-states") {
      o.check.max_states = parse_size(need(i, "--max-states"), "state cap");
    } else if (a == "--max-counterexamples") {
      o.check.max_counterexamples =
          parse_size(need(i, "--max-counterexamples"), "counterexample cap");
    } else if (a == "--report") {
      o.report = need(i, "--report");
      if (o.report != "text" && o.report != "json") {
        std::fprintf(stderr, "--report wants text|json\n");
        std::exit(2);
      }
    } else if (a == "--trace-out") {
      o.trace_out = need(i, "--trace-out");
    } else if (a == "--replay") {
      o.replay_file = need(i, "--replay");
    } else if (a == "--expect-explored") {
      o.expect_explored = parse_size(need(i, "--expect-explored"), "expectation");
      o.have_expect_explored = true;
    } else if (a == "--expect-generated") {
      o.expect_generated = parse_size(need(i, "--expect-generated"), "expectation");
      o.have_expect_generated = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a.c_str());
      usage();
      std::exit(2);
    }
  }
  return o;
}

int run_replay(const options& o) {
  std::ifstream in(o.replay_file);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", o.replay_file.c_str());
    return 2;
  }
  sim::schedule_trace trace;
  try {
    trace = sim::read_trace(in);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  const auto& algo = make_algorithm(o.algorithm);
  const sim::sim_result res = sim::replay_schedule(trace, algo);
  const char* status = res.status == sim::sim_status::gathered ? "gathered"
                       : res.status == sim::sim_status::stalled
                           ? "stalled"
                           : "not gathered";
  const std::string cls =
      res.class_history.empty()
          ? "?"
          : std::string(gather::enum_name(res.class_history.back()));
  std::printf("replayed %zu rounds (%s), final class %s\n", res.rounds, status,
              cls.c_str());
  std::ostringstream pts;
  workloads::write_points(pts, res.final_positions);
  std::fputs(pts.str().c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const options o = parse(argc, argv);
  if (!o.replay_file.empty()) return run_replay(o);

  check::check_spec spec;
  spec.algorithm = &make_algorithm(o.algorithm);
  spec.options = o.check;

  if (!o.points_file.empty()) {
    auto pts = workloads::read_points_file(o.points_file);
    if (!pts || pts->empty()) {
      std::fprintf(stderr, "cannot read points from %s\n",
                   o.points_file.c_str());
      return 2;
    }
    spec.seeds.push_back(std::move(*pts));
  } else {
    for (std::size_t n : o.ns) {
      if (n == 0 || n > 16) {
        std::fprintf(stderr, "robot count %zu out of range [1,16]\n", n);
        return 2;
      }
      auto seeds = check::lattice_multisets(o.lattice_w, o.lattice_h, n);
      for (auto& s : seeds) spec.seeds.push_back(std::move(s));
    }
  }

  const check::check_result result = check::explore(spec);

  if (o.report == "json") {
    std::fputs(check::render_json(result, spec.options).c_str(), stdout);
  } else {
    std::fputs(check::render_text(result, spec.options).c_str(), stdout);
  }

  if (!result.counterexamples.empty()) {
    const check::counterexample& ce = result.counterexamples.front();
    if (!o.trace_out.empty()) {
      std::ofstream out(o.trace_out);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", o.trace_out.c_str());
        return 2;
      }
      sim::write_trace(out, ce.trace);
      std::fprintf(stderr, "counterexample (%s, round %zu) written to %s\n",
                   ce.lemma_id.c_str(), ce.round, o.trace_out.c_str());
    } else {
      std::fprintf(stderr, "first counterexample: %s at round %zu\n",
                   ce.lemma_id.c_str(), ce.round);
    }
  }

  if (o.have_expect_explored && result.states_explored != o.expect_explored) {
    std::fprintf(stderr, "expected %llu explored states, got %llu\n",
                 static_cast<unsigned long long>(o.expect_explored),
                 static_cast<unsigned long long>(result.states_explored));
    return 3;
  }
  if (o.have_expect_generated && result.states_generated != o.expect_generated) {
    std::fprintf(stderr, "expected %llu generated states, got %llu\n",
                 static_cast<unsigned long long>(o.expect_generated),
                 static_cast<unsigned long long>(result.states_generated));
    return 3;
  }
  return result.total_violations() == 0 ? 0 : 1;
}
