#!/usr/bin/env python3
"""Golden gate for the gather_check bounded model checker.

Usage:
    compare.py CHECK_EXE GOLDEN.json

Runs ``CHECK_EXE <golden.args> --report json`` and compares the document
against ``golden.expected``:

  * schema must be gather-check-v1 on both sides;
  * every option echo, state count and per-lemma coverage row is compared
    exactly -- the explorer is deterministic, so any drift in generated /
    explored / pruned counts means the search space or the pruning key
    changed and the golden must be re-pinned deliberately;
  * symmetry_reduction is compared to relative 1e-9 (it is a quotient of two
    exact counters).

Then re-runs with ``--no-dedup`` appended and asserts that canonical pruning
shrinks the explored-state count by at least ``golden.min_reduction`` -- the
end-to-end evidence that symmetry pruning is actually pulling its weight,
measured against the exact-key search of the same space.

Exit 0 when everything matches, 1 on any mismatch, 2 on usage errors.
"""

import json
import subprocess
import sys

SCHEMA = "gather-check-v1"


def run_json(exe, args):
    cmd = [exe] + args + ["--report", "json"]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode not in (0, 1):
        sys.exit(f"compare.py: {' '.join(cmd)} exited {proc.returncode}:\n"
                 f"{proc.stderr}")
    try:
        doc = json.loads(proc.stdout)
    except json.JSONDecodeError as e:
        sys.exit(f"compare.py: bad JSON from {' '.join(cmd)}: {e}")
    if doc.get("schema") != SCHEMA:
        sys.exit(f"compare.py: schema {doc.get('schema')!r}, "
                 f"expected {SCHEMA!r}")
    return doc


def flatten(prefix, value, out):
    if isinstance(value, dict):
        for k, v in sorted(value.items()):
            flatten(f"{prefix}.{k}" if prefix else k, v, out)
    elif isinstance(value, list):
        for i, v in enumerate(value):
            flatten(f"{prefix}[{i}]", v, out)
    else:
        out[prefix] = value


def main(argv):
    if len(argv) != 3:
        sys.exit(__doc__)
    exe, golden_path = argv[1], argv[2]
    with open(golden_path, encoding="utf-8") as f:
        golden = json.load(f)
    args = golden["args"]
    expected = golden["expected"]

    current = run_json(exe, args)

    want, got = {}, {}
    flatten("", expected, want)
    flatten("", current, got)
    failures = []
    for key in sorted(set(want) | set(got)):
        if key not in got:
            failures.append(f"missing key {key} (golden: {want[key]!r})")
        elif key not in want:
            failures.append(f"unexpected key {key} = {got[key]!r}")
        elif key == "symmetry_reduction":
            a, b = float(want[key]), float(got[key])
            if abs(a - b) > 1e-9 * max(abs(a), abs(b), 1.0):
                failures.append(f"{key}: golden {a} vs current {b}")
        elif want[key] != got[key]:
            failures.append(f"{key}: golden {want[key]!r} "
                            f"vs current {got[key]!r}")

    min_reduction = golden.get("min_reduction")
    if min_reduction is not None:
        raw = run_json(exe, args + ["--no-dedup"])
        canonical_explored = current["counts"]["states_explored"]
        raw_explored = raw["counts"]["states_explored"]
        if canonical_explored == 0:
            failures.append("canonical run explored no states")
        else:
            ratio = raw_explored / canonical_explored
            print(f"symmetry pruning: {raw_explored} exact-key states vs "
                  f"{canonical_explored} canonical ({ratio:.2f}x)")
            if ratio < min_reduction:
                failures.append(
                    f"pruning ratio {ratio:.3f} below required "
                    f"{min_reduction}")

    if failures:
        for f_ in failures:
            print(f"FAIL: {f_}")
        return 1
    print(f"check_smoke: {current['counts']['states_explored']} states, "
          "all golden counts match")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
