// Tests for configuration file I/O and the deployment-pattern generators.
#include <gtest/gtest.h>

#include <sstream>

#include "config/classify.h"
#include "workloads/generators.h"
#include "workloads/io.h"

namespace gather::workloads {
namespace {

TEST(PointsIo, RoundTrip) {
  sim::rng r(1);
  const auto pts = uniform_random(9, r);
  std::stringstream ss;
  write_points(ss, pts);
  const auto back = read_points(ss);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_NEAR((*back)[i].x, pts[i].x, 1e-12);
    EXPECT_NEAR((*back)[i].y, pts[i].y, 1e-12);
  }
}

TEST(PointsIo, SkipsCommentsAndBlanks) {
  std::istringstream is("# header\n\n 1 2\n\n# mid\n3.5 -4.5\n");
  const auto pts = read_points(is);
  ASSERT_TRUE(pts.has_value());
  ASSERT_EQ(pts->size(), 2u);
  EXPECT_EQ((*pts)[0], (vec2{1, 2}));
  EXPECT_EQ((*pts)[1], (vec2{3.5, -4.5}));
}

TEST(PointsIo, RepeatedPointsExpressMultiplicity) {
  std::istringstream is("0 0\n0 0\n5 0\n");
  const auto pts = read_points(is);
  ASSERT_TRUE(pts.has_value());
  const config::configuration c(*pts);
  EXPECT_EQ(c.multiplicity({0, 0}), 2);
}

TEST(PointsIo, RejectsMalformedLine) {
  std::istringstream is("1 2\nnot numbers\n");
  std::string err;
  EXPECT_FALSE(read_points(is, &err).has_value());
  EXPECT_NE(err.find("line 2"), std::string::npos);
}

TEST(PointsIo, RejectsTrailingGarbage) {
  std::istringstream is("1 2 3\n");
  std::string err;
  EXPECT_FALSE(read_points(is, &err).has_value());
}

TEST(PointsIo, AllowsTrailingComment) {
  std::istringstream is("1 2 # the first robot\n");
  const auto pts = read_points(is);
  ASSERT_TRUE(pts.has_value());
  EXPECT_EQ(pts->size(), 1u);
}

TEST(PointsIo, MissingFileReportsError) {
  std::string err;
  EXPECT_FALSE(read_points_file("/nonexistent/robots.txt", &err).has_value());
  EXPECT_NE(err.find("cannot open"), std::string::npos);
}

TEST(Generators, JitteredGridCountAndSpacing) {
  sim::rng r(2);
  const auto pts = jittered_grid(12, 0.1, r);
  EXPECT_EQ(pts.size(), 12u);
  // Neighbouring lattice sites stay distinct under small jitter.
  const config::configuration c(pts);
  EXPECT_EQ(c.distinct_count(), 12u);
}

TEST(Generators, ZeroJitterGridIsExactLattice) {
  sim::rng r(3);
  const auto pts = jittered_grid(9, 0.0, r);
  EXPECT_EQ(pts[0], (vec2{0, 0}));
  EXPECT_EQ(pts[4], (vec2{1, 1}));
  EXPECT_EQ(pts[8], (vec2{2, 2}));
}

TEST(Generators, ClusteredStaysWithinRadius) {
  sim::rng r(4);
  const auto pts = clustered(20, 4, 0.5, r);
  EXPECT_EQ(pts.size(), 20u);
  // Each member is within the radius of *its* cluster center: members of a
  // cluster are the points with index = center (mod clusters).
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = i; j < 20; j += 4) {
      EXPECT_LE(geom::distance(pts[i], pts[j]), 1.0 + 1e-12);
    }
  }
}

TEST(Generators, DeploymentPatternsGather) {
  // The new patterns are ordinary solvable instances.
  sim::rng r(5);
  for (auto pts : {jittered_grid(9, 0.2, r), clustered(10, 3, 1.0, r)}) {
    const auto cls = config::classify(config::configuration(pts)).cls;
    EXPECT_NE(cls, config::config_class::bivalent);
  }
}

}  // namespace
}  // namespace gather::workloads
