// The cyclic-string kernel (geometry/cyclic.h) against brute force, and the
// fast angle cluster/snap passes (geometry/angles.h) against their
// pre-subquadratic reference implementations, bit for bit.
#include "geometry/cyclic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "geometry/angles.h"
#include "sim/rng.h"

namespace gather {
namespace {

using str = std::vector<std::uint64_t>;

str rotated(const str& s, std::size_t k) {
  str out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i)
    out.push_back(s[(i + k) % s.size()]);
  return out;
}

std::size_t brute_minimal_rotation(const str& s) {
  std::size_t best = 0;
  for (std::size_t k = 1; k < s.size(); ++k) {
    if (rotated(s, k) < rotated(s, best)) best = k;
  }
  return best;
}

std::size_t brute_minimal_period(const str& s) {
  for (std::size_t p = 1; p <= s.size(); ++p) {
    if (rotated(s, p) == s) return p;
  }
  return s.size();
}

str random_string(sim::rng& r, std::size_t len, std::uint64_t alphabet) {
  str s(len);
  for (auto& x : s) x = r.uniform_int(0, alphabet - 1);
  return s;
}

TEST(CyclicKernel, TrivialSizes) {
  EXPECT_EQ(geom::booth_minimal_rotation({}), 0u);
  EXPECT_EQ(geom::booth_minimal_rotation({7}), 0u);
  EXPECT_EQ(geom::minimal_cyclic_period({}), 0u);
  EXPECT_EQ(geom::minimal_cyclic_period({7}), 1u);
  EXPECT_EQ(geom::cyclic_rotation_order({}), 1u);
  EXPECT_EQ(geom::cyclic_rotation_order({7}), 1u);
}

TEST(CyclicKernel, KnownStrings) {
  // "bba" -> least rotation starts at the 'a'.
  EXPECT_EQ(geom::booth_minimal_rotation({1, 1, 0}), 2u);
  // Fully periodic strings.
  EXPECT_EQ(geom::minimal_cyclic_period({3, 3, 3, 3}), 1u);
  EXPECT_EQ(geom::cyclic_rotation_order({3, 3, 3, 3}), 4u);
  EXPECT_EQ(geom::minimal_cyclic_period({1, 2, 1, 2, 1, 2}), 2u);
  EXPECT_EQ(geom::cyclic_rotation_order({1, 2, 1, 2, 1, 2}), 3u);
  // Aperiodic string.
  EXPECT_EQ(geom::minimal_cyclic_period({1, 2, 3}), 3u);
  EXPECT_EQ(geom::cyclic_rotation_order({1, 2, 3}), 1u);
}

TEST(CyclicKernel, MatchesBruteForceOnRandomStrings) {
  sim::rng r(20260806);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t len = 1 + r.uniform_int(0, 63);
    const std::uint64_t alphabet = 1 + r.uniform_int(0, 3);
    const str s = random_string(r, len, alphabet);
    const std::size_t booth = geom::booth_minimal_rotation(s);
    const std::size_t brute = brute_minimal_rotation(s);
    // Booth may differ in index only if both rotations are equal strings.
    EXPECT_EQ(rotated(s, booth), rotated(s, brute))
        << "len=" << len << " alphabet=" << alphabet << " iter=" << iter;
    EXPECT_EQ(geom::minimal_cyclic_period(s), brute_minimal_period(s))
        << "len=" << len << " alphabet=" << alphabet << " iter=" << iter;
  }
}

TEST(CyclicKernel, PeriodicStructure) {
  sim::rng r(77);
  for (int iter = 0; iter < 500; ++iter) {
    const std::size_t block_len = 1 + r.uniform_int(0, 7);
    const std::size_t repeats = 1 + r.uniform_int(0, 7);
    str block = random_string(r, block_len, 3);
    str s;
    for (std::size_t k = 0; k < repeats; ++k)
      s.insert(s.end(), block.begin(), block.end());
    const std::size_t p = geom::minimal_cyclic_period(s);
    const std::size_t order = geom::cyclic_rotation_order(s);
    ASSERT_GT(p, 0u);
    EXPECT_EQ(s.size() % p, 0u);           // the minimal period divides m
    EXPECT_EQ(order, s.size() / p);
    EXPECT_EQ(rotated(s, p), s);           // p really is a period
    EXPECT_LE(p, block_len);               // at most the construction block
  }
}

TEST(CyclicKernel, CanonicalRotationIsRotationInvariant) {
  sim::rng r(99);
  for (int iter = 0; iter < 500; ++iter) {
    const std::size_t len = 1 + r.uniform_int(0, 31);
    const str s = random_string(r, len, 3);
    const str canon = geom::canonical_rotation(s);
    // Canonical form: a rotation of s, minimal among all rotations, and the
    // same for every rotation of s.
    EXPECT_EQ(canon, rotated(s, brute_minimal_rotation(s)));
    const std::size_t shift = r.uniform_int(0, len - 1);
    EXPECT_EQ(geom::canonical_rotation(rotated(s, shift)), canon);
  }
}

// -- fast cluster/snap vs reference, bit for bit ---------------------------

std::vector<double> random_angles(sim::rng& r, double eps) {
  std::vector<double> thetas;
  const std::size_t clusters = 1 + r.uniform_int(0, 7);
  for (std::size_t k = 0; k < clusters; ++k) {
    const double base = r.uniform(0.0, geom::two_pi);
    const std::size_t members = 1 + r.uniform_int(0, 4);
    for (std::size_t j = 0; j < members; ++j) {
      // Mix sub-eps jitter (same cluster) with super-eps offsets (new
      // clusters), including values hugging the 0/2*pi seam.
      const double jitter = r.flip() ? r.uniform(0.0, 0.9 * eps)
                                     : r.uniform(2.0 * eps, 20.0 * eps);
      thetas.push_back(geom::norm_angle(base + jitter));
    }
  }
  return thetas;
}

TEST(AngleClustering, FastMatchesReferenceBitwise) {
  sim::rng r(4242);
  const double eps = 1e-9;
  for (int iter = 0; iter < 3000; ++iter) {
    const std::vector<double> thetas = random_angles(r, eps);
    const auto fast = geom::cluster_angle_values(thetas, eps);
    const auto ref = geom::detail::cluster_angle_values_reference(thetas, eps);
    ASSERT_EQ(fast.size(), ref.size()) << "iter=" << iter;
    for (std::size_t i = 0; i < fast.size(); ++i) {
      // Bitwise: the fast path must reproduce the reference doubles exactly.
      EXPECT_EQ(fast[i], ref[i]) << "iter=" << iter << " i=" << i;
    }
    // Snap every probe (cluster members and fresh angles) identically.
    for (double probe : thetas) {
      EXPECT_EQ(geom::nearest_angle_rep(probe, fast),
                geom::detail::nearest_angle_rep_reference(probe, ref))
          << "iter=" << iter;
    }
    for (int k = 0; k < 8; ++k) {
      const double probe = r.uniform(0.0, geom::two_pi);
      EXPECT_EQ(geom::nearest_angle_rep(probe, fast),
                geom::detail::nearest_angle_rep_reference(probe, ref))
          << "iter=" << iter;
    }
  }
}

TEST(AngleClustering, NearestRepTieBreaksLikeReference) {
  // Exact midpoints and seam-equidistant probes: the fast candidate scan must
  // pick the same value as the reference first-minimum linear scan.
  const std::vector<double> reps = {0.5, 1.5, 3.0, 6.0};
  for (double probe : {1.0, 2.25, 4.5, 0.0, 6.28, 0.25, 5.9}) {
    EXPECT_EQ(geom::nearest_angle_rep(probe, reps),
              geom::detail::nearest_angle_rep_reference(probe, reps))
        << "probe=" << probe;
  }
  EXPECT_EQ(geom::nearest_angle_rep(1.0, {}), 1.0);
}

}  // namespace
}  // namespace gather
