// Direct tests of the paper's numbered lemmas and of the claims inside the
// correctness proofs (Sec. III-V), at the single-step level where possible.
#include <gtest/gtest.h>

#include <cmath>

#include "config/config.h"
#include "core/core.h"
#include "geometry/angles.h"
#include "sim/sim.h"
#include "sim_support.h"
#include "workloads/generators.h"

namespace gather {
namespace {

using config::config_class;
using config::configuration;
using geom::vec2;

const core::wait_free_gather kAlgo;

// --- Lemma 3.1: for sym(C) = k > 1, every off-center view class is a k-gon
// with equal multiplicities. ---------------------------------------------------

TEST(Lemma31, ViewClassesOfSymmetricConfigurationsAreKGons) {
  sim::rng r(900);
  for (std::size_t k : {3u, 4u, 5u}) {
    const auto pts = workloads::symmetric_rings(k, 2, r);
    const configuration c(pts);
    const int sym = config::symmetry(c);
    ASSERT_EQ(sym % k, 0u) << k;
    const vec2 center = c.sec().center;
    for (const auto& cls : config::view_classes(c)) {
      // Each class has exactly sym members, all equidistant from the center.
      EXPECT_EQ(cls.size() % sym, 0u);
      const double d0 =
          geom::distance(c.occupied()[cls.front()].position, center);
      for (std::size_t idx : cls) {
        EXPECT_NEAR(geom::distance(c.occupied()[idx].position, center), d0, 1e-9);
        EXPECT_EQ(c.occupied()[idx].multiplicity,
                  c.occupied()[cls.front()].multiplicity);
      }
    }
  }
}

// --- Lemma 3.2: the Weber point is invariant under straight moves towards
// it (already covered for QR in properties_test; here the L1W variant). -------

TEST(Lemma32, LinearMedianInvariantUnderMovesTowardsIt) {
  sim::rng r(901);
  const auto pts = workloads::linear_unique_weber(9, r);
  const configuration c(pts);
  const auto w = config::linear_weber(c);
  ASSERT_TRUE(w.unique);
  auto moved = pts;
  double f = 0.1;
  for (vec2& p : moved) {
    p = geom::lerp(p, w.point, f);
    f = std::fmod(f + 0.23, 0.95);
  }
  const auto w2 = config::linear_weber(configuration(moved));
  ASSERT_TRUE(w2.unique);
  EXPECT_NEAR(w2.point.x, w.point.x, 1e-9);
  EXPECT_NEAR(w2.point.y, w.point.y, 1e-9);
}

// --- Lemma 4.1: structure of linear configurations. ---------------------------

TEST(Lemma41, TwoDistinctPointsAreBivalentOrMultiple) {
  // (1) |U(C)| = 2  =>  C in B or M.
  for (int k = 1; k <= 4; ++k) {
    for (int m = 1; m <= 4; ++m) {
      std::vector<vec2> pts;
      for (int i = 0; i < k; ++i) pts.push_back({0, 0});
      for (int i = 0; i < m; ++i) pts.push_back({3, 1});
      const auto cls = config::classify(configuration(pts)).cls;
      EXPECT_TRUE(cls == config_class::bivalent || cls == config_class::multiple)
          << k << "," << m;
      EXPECT_EQ(cls == config_class::bivalent, k == m) << k << "," << m;
    }
  }
}

TEST(Lemma41, ThreeDistinctCollinearPointsAreMultipleOrL1W) {
  // (2) |U(C)| = 3 and linear  =>  C in M or L1W.
  for (int a = 1; a <= 3; ++a) {
    for (int b = 1; b <= 3; ++b) {
      for (int c3 = 1; c3 <= 3; ++c3) {
        std::vector<vec2> pts;
        for (int i = 0; i < a; ++i) pts.push_back({0, 0});
        for (int i = 0; i < b; ++i) pts.push_back({1, 0});
        for (int i = 0; i < c3; ++i) pts.push_back({5, 0});
        const auto cls = config::classify(configuration(pts)).cls;
        EXPECT_TRUE(cls == config_class::multiple || cls == config_class::linear_1w)
            << a << "," << b << "," << c3;
      }
    }
  }
}

TEST(Lemma41, L2WNeedsAtLeastFourDistinctPoints) {
  // (3) C in L2W  =>  |U(C)| >= 4.  Checked over a generated corpus.
  sim::rng r(902);
  for (int t = 0; t < 30; ++t) {
    const auto pts = workloads::linear_two_weber(4 + 2 * (t % 5), r);
    const configuration c(pts);
    if (config::classify(c).cls == config_class::linear_2w) {
      EXPECT_GE(c.distinct_count(), 4u);
    }
  }
}

// --- Lemma 5.3, claim C1: one M-case step never merges robots anywhere but
// at the elected point. --------------------------------------------------------

TEST(Lemma53C1, NoNewMultiplicityAwayFromElected) {
  sim::rng r(903);
  for (int t = 0; t < 40; ++t) {
    // Majority point + scatter, with some collinear blockers thrown in.
    auto pts = workloads::with_majority(9, 3, r);
    const configuration c(pts);
    const auto cls = config::classify(c);
    ASSERT_EQ(cls.cls, config_class::multiple);
    const vec2 elected = *cls.target;
    // Every robot moves a random fraction (>= delta equivalent) of its path.
    std::vector<vec2> next;
    for (const vec2& p : pts) {
      const vec2 d = kAlgo.destination({c, c.snapped(p)});
      next.push_back(geom::lerp(c.snapped(p), d, r.uniform(0.3, 1.0)));
    }
    const configuration c2(next);
    // Multiplicity may only have grown at the elected point.
    for (const config::occupied_point& o : c2.occupied()) {
      if (c2.tolerance().same_point(o.position, elected)) continue;
      EXPECT_LE(o.multiplicity, std::max(1, c.multiplicity(o.position)))
          << "t=" << t;
    }
  }
}

// --- Lemma 5.7: one step from L2W never yields B. ------------------------------

TEST(Lemma57, OneStepFromL2WNeverBivalent) {
  sim::rng r(904);
  for (int t = 0; t < 40; ++t) {
    const auto pts = workloads::linear_two_weber(4 + 2 * (t % 4), r);
    const configuration c(pts);
    ASSERT_EQ(config::classify(c).cls, config_class::linear_2w);
    // Arbitrary activation subset, arbitrary stop fractions.
    std::vector<vec2> next;
    for (const vec2& p : pts) {
      if (r.flip()) {
        next.push_back(p);
        continue;
      }
      const vec2 d = kAlgo.destination({c, c.snapped(p)});
      next.push_back(geom::lerp(c.snapped(p), d, r.uniform(0.2, 1.0)));
    }
    EXPECT_NE(config::classify(configuration(next)).cls, config_class::bivalent)
        << t;
  }
}

// --- Lemma 5.8/5.9: if an endpoint robot of an L2W configuration moves, the
// configuration leaves L2W; if both endpoints are crashed, the correct robots
// still gather (at the line center). -------------------------------------------

TEST(Lemma58, EndpointActivationLeavesL2W) {
  sim::rng r(905);
  const auto pts = workloads::linear_two_weber(6, r);
  const configuration c(pts);
  ASSERT_EQ(config::classify(c).cls, config_class::linear_2w);
  // Find an endpoint (a hull vertex of the line) and activate only it.
  vec2 lo = pts[0], hi = pts[0];
  for (const vec2& p : pts) {
    if (p < lo) lo = p;
    if (hi < p) hi = p;
  }
  auto next = pts;
  for (vec2& p : next) {
    if (c.tolerance().same_point(p, lo)) {
      p = kAlgo.destination({c, c.snapped(p)});
      break;
    }
  }
  EXPECT_NE(config::classify(configuration(next)).cls, config_class::linear_2w);
}

TEST(Lemma59, CrashedEndpointsStillAllowGathering) {
  sim::rng r(906);
  const auto pts = workloads::linear_two_weber(6, r);
  // Crash the two endpoint robots at round 0.
  std::size_t lo_i = 0, hi_i = 0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (pts[i] < pts[lo_i]) lo_i = i;
    if (pts[hi_i] < pts[i]) hi_i = i;
  }
  auto sched = sim::make_fair_random();
  auto move = sim::make_random_stop();
  auto crash = sim::make_scheduled_crashes({{0, lo_i}, {0, hi_i}});
  sim::sim_options opts;
  const auto res = sim::run_sim(pts, kAlgo, *sched, *move, *crash, opts);
  ASSERT_EQ(res.status, sim::sim_status::gathered);
  // The gather point is the center of the (frozen) segment.
  const vec2 center = geom::midpoint(pts[lo_i], pts[hi_i]);
  EXPECT_NEAR(res.gather_point.x, center.x, 1e-6);
  EXPECT_NEAR(res.gather_point.y, center.y, 1e-6);
}

// --- Lemma 5.1 necessity: an algorithm with two stationary locations can be
// deadlocked by crashes (shown on the single-fault baseline elsewhere); here
// we assert the converse direction used in the proofs: WAIT-FREE-GATHER's
// unique stationary location is always the current target. ---------------------

TEST(Lemma51, StationaryLocationIsTheTarget) {
  sim::rng r(907);
  for (int t = 0; t < 30; ++t) {
    const auto pts = workloads::with_majority(8, 3, r);
    const configuration c(pts);
    const auto cls = config::classify(c);
    ASSERT_EQ(cls.cls, config_class::multiple);
    const auto stat = core::stationary_locations(c, kAlgo);
    ASSERT_EQ(stat.size(), 1u);
    EXPECT_TRUE(c.tolerance().same_point(stat.front(), *cls.target));
  }
}

// --- Definition 9: GATHERED requires both co-location and quiescence. ----------

TEST(Definition9, CoLocationAloneIsNotGathered) {
  // All live robots share a point, but a crashed robot sits on a heavier
  // stack elsewhere: the algorithm directs the live robots away, so the
  // configuration does not count as gathered and the run continues.
  auto sched = sim::make_synchronous();
  auto move = sim::make_full_movement();
  auto crash = sim::make_scheduled_crashes({{0, 0}, {0, 1}, {0, 2}});
  sim::sim_options opts;
  // Robots 0-2 (crashed) on a stack of three; robots 3-4 together elsewhere.
  const std::vector<vec2> pts = {{0, 0}, {0, 0}, {0, 0}, {5, 0}, {5, 0}};
  const auto res = sim::run_sim(pts, kAlgo, *sched, *move, *crash, opts);
  ASSERT_EQ(res.status, sim::sim_status::gathered);
  // The live robots must have walked to the crashed stack (the unique
  // maximum multiplicity point), not stayed at (5,0).
  EXPECT_NEAR(res.gather_point.x, 0.0, 1e-9);
}

}  // namespace
}  // namespace gather
