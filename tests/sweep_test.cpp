// Wide parameterized sweeps: every corpus class against every scheduler and
// movement adversary (the fine-grained version of integration_test), plus
// unit-level local-frame invariance of the algorithm's decisions.
#include <gtest/gtest.h>

#include <tuple>

#include "config/config.h"
#include "core/core.h"
#include "geometry/angles.h"
#include "sim/sim.h"
#include "sim_support.h"
#include "workloads/generators.h"

namespace gather {
namespace {

using config::configuration;
using geom::vec2;

const core::wait_free_gather kAlgo;

// ---------------------------------------------------------------------------
// S1: class x scheduler grid, f = n/2 crashes, random stops.
// ---------------------------------------------------------------------------

struct grid_param {
  std::size_t workload_index;
  std::size_t scheduler_index;
};

class ClassSchedulerGrid : public ::testing::TestWithParam<grid_param> {};

TEST_P(ClassSchedulerGrid, GathersCleanly) {
  const auto [wi, si] = GetParam();
  const auto corpus = workloads::corpus(8, 31'000);
  ASSERT_LT(wi, corpus.size());
  const auto& wl = corpus[wi];
  auto sched = sim::all_schedulers()[si].make();
  auto move = sim::make_random_stop();
  auto crash = sim::make_random_crashes(wl.points.size() / 2, 30);
  sim::sim_options opts;
  opts.seed = 17 * wi + si;
  opts.check_wait_freeness = true;
  const auto res = sim::run_sim(wl.points, kAlgo, *sched, *move, *crash, opts);
  EXPECT_EQ(res.status, sim::sim_status::gathered) << wl.name;
  EXPECT_EQ(res.wait_free_violations, 0u) << wl.name;
  EXPECT_EQ(res.bivalent_entries, 0u) << wl.name;
  EXPECT_TRUE(sim::transitions_allowed(res.class_history)) << wl.name;
}

std::vector<grid_param> grid_params() {
  std::vector<grid_param> out;
  const std::size_t workloads_n = workloads::corpus(8, 31'000).size();
  for (std::size_t w = 0; w < workloads_n; ++w) {
    for (std::size_t s = 0; s < sim::all_schedulers().size(); ++s) {
      out.push_back({w, s});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Grid, ClassSchedulerGrid,
                         ::testing::ValuesIn(grid_params()),
                         [](const ::testing::TestParamInfo<grid_param>& pinfo) {
                           const auto corpus = workloads::corpus(8, 31'000);
                           std::string name = corpus[pinfo.param.workload_index].name +
                                              "_" +
                                              std::string(sim::all_schedulers()
                                                              [pinfo.param.scheduler_index]
                                                                  .name);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// S2: unit-level frame invariance -- for every corpus instance, the
// destination computed in a transformed frame maps back to the destination
// computed in the base frame (up to tolerance).  This is the disorientation
// requirement at the level of single decisions, not whole runs.
// ---------------------------------------------------------------------------

class FrameInvariance : public ::testing::TestWithParam<int> {};

TEST_P(FrameInvariance, DestinationsCommuteWithSimilarities) {
  const int seed = GetParam();
  sim::rng r(40'000 + seed);
  for (const auto& wl : workloads::corpus(6, 32'000 + seed)) {
    const configuration base(wl.points);
    if (config::classify(base).cls == config::config_class::bivalent) continue;
    const double ang = r.uniform(0.0, geom::two_pi);
    const double s = std::exp(r.uniform(-1.0, 1.0));
    const vec2 off{r.uniform(-10, 10), r.uniform(-10, 10)};
    const geom::similarity f(ang, s, off);

    std::vector<vec2> moved;
    for (const vec2& p : wl.points) moved.push_back(f.apply(p));
    const configuration transformed(moved);

    const auto base_dests = kAlgo.destinations(base);
    const auto trans_dests = kAlgo.destinations(transformed);
    ASSERT_EQ(base_dests.size(), trans_dests.size()) << wl.name;
    // Match by occupied location: transformed.occupied() order may differ.
    for (std::size_t i = 0; i < base.occupied().size(); ++i) {
      const vec2 p = base.occupied()[i].position;
      const vec2 fp = transformed.snapped(f.apply(p));
      // Find fp among transformed occupied points.
      bool found = false;
      for (std::size_t j = 0; j < transformed.occupied().size(); ++j) {
        if (transformed.tolerance().same_point(transformed.occupied()[j].position,
                                               fp)) {
          const vec2 mapped_dest = f.apply(base_dests[i]);
          EXPECT_LT(geom::distance(mapped_dest, trans_dests[j]),
                    1e-6 * (1.0 + transformed.diameter()))
              << wl.name << " robot " << i << " seed " << seed;
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << wl.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FrameInvariance, ::testing::Range(0, 6));

// ---------------------------------------------------------------------------
// S3: ASYNC engine over the corpus classes (extension coverage).
// ---------------------------------------------------------------------------

class AsyncCorpus : public ::testing::TestWithParam<int> {};

TEST_P(AsyncCorpus, GathersUnderRandomInterleaving) {
  const int wi = GetParam();
  const auto corpus = workloads::corpus(6, 33'000);
  ASSERT_LT(static_cast<std::size_t>(wi), corpus.size());
  const auto& wl = corpus[wi];
  auto move = sim::make_full_movement();
  auto crash = sim::make_no_crash();
  sim::async_options opts;
  opts.policy = sim::async_policy::random_interleaving;
  opts.seed = 5 + wi;
  const auto res = sim::run_async_sim(wl.points, kAlgo, *move, *crash, opts);
  EXPECT_EQ(res.status, sim::sim_status::gathered) << wl.name;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AsyncCorpus, ::testing::Range(0, 11));

}  // namespace
}  // namespace gather
