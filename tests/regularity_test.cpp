#include <gtest/gtest.h>

#include <cmath>

#include "config/regularity.h"
#include "config/string_of_angles.h"
#include "geometry/angles.h"
#include "sim/rng.h"
#include "workloads/generators.h"

namespace gather::config {
namespace {

using geom::vec2;

std::vector<vec2> ngon(int n, double radius = 1.0, double phase = 0.0) {
  std::vector<vec2> pts;
  for (int i = 0; i < n; ++i) {
    const double a = phase + geom::two_pi * i / n;
    pts.push_back({radius * std::cos(a), radius * std::sin(a)});
  }
  return pts;
}

TEST(StringOfAngles, SquareAroundCenter) {
  const configuration c(ngon(4));
  const auto sa = string_of_angles(c, {0, 0});
  ASSERT_EQ(sa.size(), 4u);
  for (double a : sa) EXPECT_NEAR(a, geom::pi / 2, 1e-9);
}

TEST(StringOfAngles, ExcludesRobotsAtCenter) {
  auto pts = ngon(4);
  pts.push_back({0, 0});
  pts.push_back({0, 0});
  const configuration c(pts);
  EXPECT_EQ(string_of_angles(c, {0, 0}).size(), 4u);
}

TEST(StringOfAngles, SameRayContributesZero) {
  const configuration c({{1, 0}, {2, 0}, {0, 1}, {0, 2}});
  const auto sa = string_of_angles(c, {0, 0});
  ASSERT_EQ(sa.size(), 4u);
  int zeros = 0;
  for (double a : sa) {
    // Sorted-angle canonicalization produces exact 0.0 entries.
    if (a == 0.0) ++zeros;  // gather-lint: allow(R3)
  }
  EXPECT_EQ(zeros, 2);
}

TEST(StringOfAngles, SumsToTwoPi) {
  const configuration c({{1, 0}, {0, 2}, {-3, 1}, {1, -1}});
  const auto sa = string_of_angles(c, {0.1, 0.2});
  double sum = 0.0;
  for (double a : sa) sum += a;
  EXPECT_NEAR(sum, geom::two_pi, 1e-9);
}

TEST(Periodicity, UniformString) {
  geom::tol t;
  EXPECT_EQ(periodicity({1.0, 1.0, 1.0, 1.0}, t), 4);
}

TEST(Periodicity, AlternatingString) {
  geom::tol t;
  EXPECT_EQ(periodicity({0.5, 1.0, 0.5, 1.0, 0.5, 1.0}, t), 3);
}

TEST(Periodicity, AperiodicString) {
  geom::tol t;
  EXPECT_EQ(periodicity({0.5, 1.0, 2.0, 0.7}, t), 1);
}

TEST(Periodicity, ShortStrings) {
  geom::tol t;
  EXPECT_EQ(periodicity({}, t), 1);
  EXPECT_EQ(periodicity({3.14}, t), 1);
}

TEST(Regularity, NGonAboutCenter) {
  for (int n : {3, 4, 5, 6, 8, 12}) {
    const configuration c(ngon(n));
    EXPECT_EQ(regularity_about(c, {0, 0}), n) << n;
  }
}

TEST(Regularity, NGonAboutVertexIsIrregular) {
  const configuration c(ngon(5));
  EXPECT_EQ(regularity_about(c, c.occupied()[0].position), 1);
}

TEST(Regularity, BiangularAboutCenter) {
  // Angles alternate 0.3 and 2*pi/4 - 0.3 around the origin, radii vary.
  sim::rng r(7);
  const auto pts = workloads::biangular(4, 0.3, r);
  const configuration c(pts);
  EXPECT_EQ(regularity_about(c, {0, 0}), 4);
}

TEST(QuasiRegular, DeficitTestOnBrokenSquare) {
  // Square with one vertex moved to the center: deficit 1 = mult(center).
  std::vector<vec2> pts = ngon(4);
  pts[0] = {0, 0};
  const configuration c(pts);
  const auto m = quasi_regular_about_occupied(c, {0, 0});
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(*m, 4);
}

TEST(QuasiRegular, DeficitTestFailsAtVertex) {
  std::vector<vec2> pts = ngon(4);
  pts[0] = {0, 0};
  const configuration c(pts);
  // A remaining vertex has mult 1 but needs 3+ fill-ins.
  EXPECT_FALSE(quasi_regular_about_occupied(c, pts[1]).has_value());
}

TEST(QuasiRegular, DetectsRegularPolygon) {
  const auto qr = detect_quasi_regularity(configuration(ngon(6)));
  ASSERT_TRUE(qr.has_value());
  EXPECT_EQ(qr->degree, 6);
  EXPECT_NEAR(qr->center.x, 0.0, 1e-9);
  EXPECT_NEAR(qr->center.y, 0.0, 1e-9);
}

TEST(QuasiRegular, DetectsPolygonWithOccupiedCenter) {
  auto pts = ngon(5);
  pts.push_back({0, 0});
  const auto qr = detect_quasi_regularity(configuration(pts));
  ASSERT_TRUE(qr.has_value());
  EXPECT_NEAR(qr->center.x, 0.0, 1e-9);
}

TEST(QuasiRegular, DetectsBiangularWithOffCenterSec) {
  // Biangular with varying radii: the center of regularity is not the sec
  // center; detection goes through the Weiszfeld candidate (Lemma 3.3).
  sim::rng r(13);
  const auto pts = workloads::biangular(3, 0.5, r);
  const configuration c(pts);
  const auto qr = detect_quasi_regularity(c);
  ASSERT_TRUE(qr.has_value());
  EXPECT_GE(qr->degree, 3);
  EXPECT_NEAR(qr->center.x, 0.0, 1e-6);
  EXPECT_NEAR(qr->center.y, 0.0, 1e-6);
}

TEST(QuasiRegular, RejectsGenericAsymmetric) {
  const configuration c({{0, 0}, {5, 0}, {1, 3}, {-2, 1}, {0.5, -2.5}});
  EXPECT_FALSE(detect_quasi_regularity(c).has_value());
}

TEST(QuasiRegular, RejectsPerturbedPolygon) {
  sim::rng r(3);
  auto pts = workloads::perturbed(ngon(6), 0.05, r);
  EXPECT_FALSE(detect_quasi_regularity(configuration(pts)).has_value());
}

TEST(QuasiRegular, SymmetricRingsDetected) {
  sim::rng r(5);
  const auto pts = workloads::symmetric_rings(4, 3, r);
  const auto qr = detect_quasi_regularity(configuration(pts));
  ASSERT_TRUE(qr.has_value());
  EXPECT_GE(qr->degree, 4);
}

TEST(QuasiRegular, InvariantUnderSimilarity) {
  sim::rng r(11);
  const auto base = workloads::symmetric_rings(3, 2, r);
  const auto qr1 = detect_quasi_regularity(configuration(base));
  std::vector<vec2> moved;
  for (const vec2& p : base) {
    moved.push_back(vec2{4, -2} + 2.5 * geom::rotated_ccw(p, 0.777));
  }
  const auto qr2 = detect_quasi_regularity(configuration(moved));
  ASSERT_TRUE(qr1.has_value());
  ASSERT_TRUE(qr2.has_value());
  EXPECT_EQ(qr1->degree, qr2->degree);
  const vec2 mapped = vec2{4, -2} + 2.5 * geom::rotated_ccw(qr1->center, 0.777);
  EXPECT_NEAR(qr2->center.x, mapped.x, 1e-6);
  EXPECT_NEAR(qr2->center.y, mapped.y, 1e-6);
}

TEST(QuasiRegular, GatheredConfigurationRejected) {
  EXPECT_FALSE(detect_quasi_regularity(configuration({{1, 1}, {1, 1}})).has_value());
}

}  // namespace
}  // namespace gather::config
