#include <gtest/gtest.h>

#include "config/configuration.h"

namespace gather::config {
namespace {

TEST(Configuration, BasicCounts) {
  const configuration c({{0, 0}, {1, 0}, {1, 0}, {2, 3}});
  EXPECT_EQ(c.size(), 4u);
  EXPECT_EQ(c.distinct_count(), 3u);
  EXPECT_FALSE(c.is_gathered());
}

TEST(Configuration, StrongMultiplicityDetection) {
  const configuration c({{0, 0}, {1, 0}, {1, 0}, {1, 0}, {2, 3}});
  EXPECT_EQ(c.multiplicity({1, 0}), 3);
  EXPECT_EQ(c.multiplicity({0, 0}), 1);
  EXPECT_EQ(c.multiplicity({9, 9}), 0);
}

TEST(Configuration, NearbyPointsSnapTogether) {
  // Points within the scale-relative tolerance are one location.
  const configuration c({{0, 0}, {1e-12, 0}, {10, 0}});
  EXPECT_EQ(c.distinct_count(), 2u);
  EXPECT_EQ(c.multiplicity({0, 0}), 2);
}

TEST(Configuration, SnappedRobotsShareExactCoordinates) {
  const configuration c({{0, 0}, {5e-12, 0}, {10, 0}});
  EXPECT_EQ(c.robots()[0], c.robots()[1]);
}

TEST(Configuration, OccupiedSortedAndComplete) {
  const configuration c({{5, 5}, {0, 0}, {5, 5}});
  ASSERT_EQ(c.occupied().size(), 2u);
  EXPECT_EQ(c.occupied()[0].position, (geom::vec2{0, 0}));
  EXPECT_EQ(c.occupied()[1].position, (geom::vec2{5, 5}));
  EXPECT_EQ(c.occupied()[0].multiplicity + c.occupied()[1].multiplicity, 3);
}

TEST(Configuration, Gathered) {
  const configuration c({{2, 2}, {2, 2}, {2, 2}});
  EXPECT_TRUE(c.is_gathered());
  EXPECT_EQ(c.distinct_count(), 1u);
  EXPECT_DOUBLE_EQ(c.diameter(), 0.0);
}

TEST(Configuration, LinearDetection) {
  EXPECT_TRUE(configuration({{0, 0}, {1, 1}, {2, 2}, {5, 5}}).is_linear());
  EXPECT_FALSE(configuration({{0, 0}, {1, 1}, {2, 2.5}}).is_linear());
  EXPECT_TRUE(configuration({{0, 0}, {1, 1}}).is_linear());
  EXPECT_TRUE(configuration({{0, 0}, {0, 0}, {0, 0}}).is_linear());
}

TEST(Configuration, Diameter) {
  const configuration c({{0, 0}, {3, 4}, {1, 1}});
  EXPECT_DOUBLE_EQ(c.diameter(), 5.0);
}

TEST(Configuration, SumDistancesCountsMultiplicity) {
  const configuration c({{0, 0}, {0, 0}, {3, 4}});
  EXPECT_DOUBLE_EQ(c.sum_distances({0, 0}), 5.0);
  EXPECT_DOUBLE_EQ(c.sum_distances({3, 4}), 10.0);
}

TEST(Configuration, SecOfSquare) {
  const configuration c({{1, 1}, {-1, 1}, {-1, -1}, {1, -1}});
  EXPECT_NEAR(c.sec().center.x, 0.0, 1e-9);
  EXPECT_NEAR(c.sec().center.y, 0.0, 1e-9);
}

TEST(Configuration, SecIgnoresMultiplicity) {
  // sec is over U(C): stacking robots on one corner must not move it.
  const configuration c({{1, 0}, {-1, 0}, {1, 0}, {1, 0}});
  EXPECT_NEAR(c.sec().center.x, 0.0, 1e-9);
}

TEST(Configuration, ToleranceScaleTracksDiameter) {
  const configuration small({{0, 0}, {0.001, 0}});
  const configuration large({{0, 0}, {1000, 0}});
  EXPECT_LT(small.tolerance().len_eps(), large.tolerance().len_eps());
}

TEST(Configuration, SnappedReturnsRepresentative) {
  const configuration c({{0, 0}, {1e-12, 0}, {10, 0}});
  const geom::vec2 rep = c.snapped({1e-12, 0});
  EXPECT_EQ(rep, c.occupied()[0].position);
  EXPECT_EQ(c.snapped({99, 99}), (geom::vec2{99, 99}));
}

TEST(Configuration, EmptyConfiguration) {
  const configuration c;
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.size(), 0u);
}

TEST(Configuration, SingleRobot) {
  const configuration c({{3, 4}});
  EXPECT_TRUE(c.is_gathered());
  EXPECT_TRUE(c.is_linear());
  EXPECT_EQ(c.multiplicity({3, 4}), 1);
}

}  // namespace
}  // namespace gather::config
