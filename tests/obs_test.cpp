// Observability layer unit tests: metrics registry semantics (counter /
// gauge / histogram, merge laws, quantile brackets), JSONL event rendering,
// the unified enum_name helper, and a golden end-to-end trace for one seeded
// run (pins the JSONL byte format -- update deliberately, never casually).
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "config/classify.h"
#include "core/wait_free_gather.h"
#include "obs/obs.h"
#include "sim/sim.h"
#include "util/enum_name.h"

namespace gather {
namespace {

// ---------------------------------------------------------------------------
// metrics_registry

TEST(Metrics, CountersAndGaugesAreStableReferences) {
  obs::metrics_registry reg;
  std::uint64_t& a = reg.counter("a");
  a = 3;
  reg.counter("b") = 5;  // inserting more names must not move `a`
  reg.counter("zz") = 7;
  EXPECT_EQ(&a, &reg.counter("a"));
  EXPECT_EQ(reg.counter("a"), 3u);

  reg.gauge("g") = 1.5;
  EXPECT_DOUBLE_EQ(reg.gauge("g"), 1.5);
  EXPECT_FALSE(reg.empty());
}

TEST(Metrics, FindDoesNotCreate) {
  obs::metrics_registry reg;
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  EXPECT_EQ(reg.find_histogram("nope"), nullptr);
  EXPECT_TRUE(reg.empty());
}

TEST(Metrics, HistogramBucketsAndOverflow) {
  obs::histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);   // bucket 0 (<= 1)
  h.observe(1.0);   // bucket 0 (boundary is inclusive)
  h.observe(3.0);   // bucket 2 (<= 4)
  h.observe(100.0); // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 104.5);
  const std::vector<std::uint64_t> want = {2, 0, 1, 1};
  EXPECT_EQ(h.bucket_counts(), want);
}

TEST(Metrics, HistogramRejectsNonIncreasingBounds) {
  EXPECT_THROW(obs::histogram({2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(obs::histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(obs::histogram(std::vector<double>{}), std::invalid_argument);
}

TEST(Metrics, HistogramQuantileBrackets) {
  obs::histogram h(obs::pow2_bounds(6));  // 1 2 4 8 16 32
  for (int i = 0; i < 10; ++i) h.observe(3.0);  // all in (2, 4]
  const auto mid = h.quantile_bounds(0.5);
  EXPECT_DOUBLE_EQ(mid.lower, 2.0);
  EXPECT_DOUBLE_EQ(mid.upper, 4.0);

  h.observe(1000.0);  // one overflow observation
  const auto top = h.quantile_bounds(1.0);
  EXPECT_DOUBLE_EQ(top.lower, 32.0);
  EXPECT_TRUE(top.upper > 1e308);  // +inf upper edge for the overflow bucket

  EXPECT_DOUBLE_EQ(obs::histogram(obs::pow2_bounds(4)).quantile_bounds(0.5).upper,
                   0.0);  // empty histogram -> {0, 0}
}

TEST(Metrics, MergeAddsCountersAndBucketsTakesGaugeMax) {
  obs::metrics_registry a, b;
  a.counter("c") = 2;
  b.counter("c") = 5;
  b.counter("only_b") = 1;
  a.gauge("g") = 0.25;
  b.gauge("g") = 0.75;
  a.hist("h", obs::pow2_bounds(4)).observe(3.0);
  b.hist("h", obs::pow2_bounds(4)).observe(3.0);

  a.merge(b);
  EXPECT_EQ(a.counter("c"), 7u);
  EXPECT_EQ(a.counter("only_b"), 1u);
  EXPECT_DOUBLE_EQ(a.gauge("g"), 0.75);
  EXPECT_EQ(a.hist("h", obs::pow2_bounds(4)).count(), 2u);
}

TEST(Metrics, MergeIsOrderIndependent) {
  auto make = [](std::uint64_t c, double g, double v) {
    obs::metrics_registry r;
    r.counter("c") = c;
    r.gauge("g") = g;
    r.hist("h", obs::pow2_bounds(6)).observe(v);
    return r;
  };
  const auto r1 = make(1, 0.1, 2.0);
  const auto r2 = make(10, 0.9, 17.0);
  const auto r3 = make(100, 0.5, 60.0);

  obs::metrics_registry fwd, rev;
  fwd.merge(r1); fwd.merge(r2); fwd.merge(r3);
  rev.merge(r3); rev.merge(r2); rev.merge(r1);
  EXPECT_EQ(fwd.to_json(), rev.to_json());
}

TEST(Metrics, MergeRejectsMismatchedHistogramBounds) {
  obs::metrics_registry a, b;
  a.hist("h", obs::pow2_bounds(4)).observe(1.0);
  b.hist("h", obs::pow2_bounds(8)).observe(1.0);
  EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(Metrics, ToJsonIsSortedAndStable) {
  obs::metrics_registry reg;
  reg.counter("zeta") = 1;
  reg.counter("alpha") = 2;
  reg.gauge("mid") = 0.5;
  const std::string json = reg.to_json();
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
  EXPECT_EQ(json,
            "{\"counters\":{\"alpha\":2,\"zeta\":1},\"gauges\":{\"mid\":0.5},"
            "\"histograms\":{}}");
}

// ---------------------------------------------------------------------------
// enum_name

TEST(EnumName, RoundTripsEveryEnum) {
  using config::config_class;
  EXPECT_EQ(enum_name(config_class::bivalent), "B");
  EXPECT_EQ(enum_name(config_class::quasi_regular), "QR");
  EXPECT_EQ(enum_from_name("L1W", config_class::asymmetric),
            config_class::linear_1w);
  EXPECT_EQ(enum_from_name("bogus", config_class::asymmetric),
            config_class::asymmetric);

  EXPECT_EQ(enum_name(sim::sim_status::gathered), "gathered");
  EXPECT_EQ(enum_name(sim::sim_status::round_limit), "round-limit");
  EXPECT_EQ(enum_name(sim::async_policy::random_interleaving),
            "random-interleaving");

  // to_string stays the public spelling and must agree with enum_name.
  EXPECT_EQ(config::to_string(config_class::multiple),
            enum_name(config_class::multiple));
  EXPECT_EQ(sim::to_string(sim::sim_status::stalled),
            enum_name(sim::sim_status::stalled));
}

// ---------------------------------------------------------------------------
// JSONL rendering

std::string line_of(const obs::event& e) {
  std::string out;
  obs::append_jsonl(out, e);
  return out;
}

TEST(Jsonl, FixedKeyOrderPerKind) {
  EXPECT_EQ(line_of(obs::event::round_start(1, 2, "A", 7)),
            "{\"event\":\"round_start\",\"run\":1,\"round\":2,\"cls\":\"A\","
            "\"live\":7}");
  EXPECT_EQ(line_of(obs::event::activation(0, 3, 4)),
            "{\"event\":\"activation\",\"run\":0,\"round\":3,\"robot\":4}");
  EXPECT_EQ(line_of(obs::event::move_truncated(0, 3, 4, 1.5, 0.5)),
            "{\"event\":\"move_truncated\",\"run\":0,\"round\":3,\"robot\":4,"
            "\"want\":1.5,\"got\":0.5}");
  EXPECT_EQ(line_of(obs::event::crash(0, 9, 2)),
            "{\"event\":\"crash\",\"run\":0,\"round\":9,\"robot\":2}");
  EXPECT_EQ(line_of(obs::event::class_transition(0, 5, "A", "M")),
            "{\"event\":\"class_transition\",\"run\":0,\"round\":5,"
            "\"from\":\"A\",\"to\":\"M\"}");
  EXPECT_EQ(line_of(obs::event::lemma_violation(0, 5, "wait-freeness")),
            "{\"event\":\"lemma_violation\",\"run\":0,\"round\":5,"
            "\"lemma\":\"wait-freeness\"}");
  EXPECT_EQ(line_of(obs::event::gathered(0, 12, 1.25, -2.5)),
            "{\"event\":\"gathered\",\"run\":0,\"round\":12,\"x\":1.25,"
            "\"y\":-2.5}");
}

TEST(Jsonl, StringEscaping) {
  std::string out;
  obs::json_append_string(out, "a\"b\\c\nd\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
}

TEST(Jsonl, DoublesUseShortestRoundTripForm) {
  std::string out;
  obs::json_append_double(out, 0.1);
  EXPECT_EQ(out, "0.1");
  out.clear();
  obs::json_append_double(out, 1.0 / 0.0);
  EXPECT_EQ(out, "null");  // non-finite values cannot appear in JSON
}

// ---------------------------------------------------------------------------
// Golden end-to-end trace

// One tiny deterministic run (synchronous scheduler, full movement, no
// crashes, fixed seed): four robots on a square gather via the QR center in
// one round.  The bytes below pin the event schema; if you change the JSONL
// format on purpose, update them and docs/OBSERVABILITY.md together.
TEST(Jsonl, GoldenTraceForSeededRun) {
  const core::wait_free_gather algo;
  auto sched = sim::make_synchronous();
  auto move = sim::make_full_movement();
  auto crash = sim::make_no_crash();

  sim::sim_spec spec;
  spec.initial = {{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  spec.algorithm = &algo;
  spec.scheduler = sched.get();
  spec.movement = move.get();
  spec.crash = crash.get();
  spec.options.seed = 11;
  spec.run_id = 42;

  std::string trace;
  obs::jsonl_string_sink sink(&trace);
  spec.sink = &sink;

  const auto res = sim::run(spec);
  ASSERT_EQ(res.status, sim::sim_status::gathered);
  ASSERT_EQ(res.rounds, 1u);

  EXPECT_EQ(trace,
            "{\"event\":\"round_start\",\"run\":42,\"round\":0,\"cls\":\"QR\","
            "\"live\":4}\n"
            "{\"event\":\"activation\",\"run\":42,\"round\":0,\"robot\":0}\n"
            "{\"event\":\"activation\",\"run\":42,\"round\":0,\"robot\":1}\n"
            "{\"event\":\"activation\",\"run\":42,\"round\":0,\"robot\":2}\n"
            "{\"event\":\"activation\",\"run\":42,\"round\":0,\"robot\":3}\n"
            "{\"event\":\"round_start\",\"run\":42,\"round\":1,\"cls\":\"M\","
            "\"live\":4}\n"
            "{\"event\":\"class_transition\",\"run\":42,\"round\":1,"
            "\"from\":\"QR\",\"to\":\"M\"}\n"
            "{\"event\":\"gathered\",\"run\":42,\"round\":1,\"x\":1,\"y\":1}\n");

  // The same run, re-executed, produces the same bytes.
  std::string again;
  obs::jsonl_string_sink sink2(&again);
  sim::sim_spec spec2 = spec;
  spec2.sink = &sink2;
  (void)sim::run(spec2);
  EXPECT_EQ(trace, again);
}

// ---------------------------------------------------------------------------
// Profiler

TEST(Prof, DisabledByDefaultRecordsNothing) {
  ASSERT_EQ(obs::current_prof(), nullptr);
  { GATHER_PROF("obs.test.site"); }
  EXPECT_EQ(obs::current_prof(), nullptr);
}

TEST(Prof, SessionScopesRecordingAndRestores) {
  obs::prof_registry reg;
  {
    obs::prof_session session(&reg);
    ASSERT_EQ(obs::current_prof(), &reg);
    { GATHER_PROF("obs.test.site"); }
    { GATHER_PROF("obs.test.site"); }
  }
  EXPECT_EQ(obs::current_prof(), nullptr);
  const auto it = reg.sites().find("obs.test.site");
  ASSERT_NE(it, reg.sites().end());
  EXPECT_EQ(it->second.calls, 2u);
}

TEST(Prof, ExportProducesCountersAndHistogram) {
  obs::prof_registry reg;
  {
    obs::prof_session session(&reg);
    GATHER_PROF("obs.test.exported");
  }
  obs::metrics_registry metrics;
  obs::export_profile(reg, metrics);
  const std::uint64_t* calls = metrics.find_counter("prof.obs.test.exported.calls");
  ASSERT_NE(calls, nullptr);
  EXPECT_EQ(*calls, 1u);
  EXPECT_NE(metrics.find_counter("prof.obs.test.exported.total_ns"), nullptr);
  const obs::histogram* h = metrics.find_histogram("prof.obs.test.exported.ns");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
}

}  // namespace
}  // namespace gather
