#include <gtest/gtest.h>

#include <cmath>

#include "config/classify.h"
#include "config/views.h"
#include "geometry/angles.h"
#include "sim/rng.h"
#include "workloads/generators.h"

namespace gather::config {
namespace {

using geom::vec2;

TEST(Classify, Bivalent) {
  const configuration c({{0, 0}, {0, 0}, {4, 0}, {4, 0}});
  EXPECT_EQ(classify(c).cls, config_class::bivalent);
}

TEST(Classify, TwoDistinctRobotsAreBivalent) {
  const configuration c({{0, 0}, {4, 0}});
  EXPECT_EQ(classify(c).cls, config_class::bivalent);
}

TEST(Classify, UnevenTwoPointsIsMultiple) {
  const configuration c({{0, 0}, {0, 0}, {0, 0}, {4, 0}});
  const classification cls = classify(c);
  EXPECT_EQ(cls.cls, config_class::multiple);
  EXPECT_EQ(*cls.target, (vec2{0, 0}));
}

TEST(Classify, GatheredIsMultiple) {
  const configuration c({{1, 2}, {1, 2}, {1, 2}});
  EXPECT_EQ(classify(c).cls, config_class::multiple);
}

TEST(Classify, MultipleTakesPrecedenceOverLinear) {
  const configuration c({{0, 0}, {0, 0}, {1, 0}, {2, 0}});
  EXPECT_EQ(classify(c).cls, config_class::multiple);
}

TEST(Classify, MultipleTakesPrecedenceOverQuasiRegular) {
  // Polygon with a double-occupied center: M despite being quasi-regular.
  std::vector<vec2> pts;
  for (int i = 0; i < 5; ++i) {
    const double a = geom::two_pi * i / 5;
    pts.push_back({std::cos(a), std::sin(a)});
  }
  pts.push_back({0, 0});
  pts.push_back({0, 0});
  const classification cls = classify(configuration(pts));
  EXPECT_EQ(cls.cls, config_class::multiple);
  EXPECT_EQ(*cls.target, (vec2{0, 0}));
}

TEST(Classify, LinearOddIsL1W) {
  const configuration c({{0, 0}, {1, 0}, {2, 0}, {3, 0}, {7, 0}});
  const classification cls = classify(c);
  EXPECT_EQ(cls.cls, config_class::linear_1w);
  EXPECT_NEAR(cls.target->x, 2.0, 1e-9);
}

TEST(Classify, LinearEvenDistinctIsL2W) {
  const configuration c({{0, 0}, {1, 0}, {3, 0}, {7, 0}});
  EXPECT_EQ(classify(c).cls, config_class::linear_2w);
}

TEST(Classify, LinearEvenCoincidentMediansIsL1W) {
  // Middle robots share a point but it is not a unique max multiplicity:
  // another pair shares a point too.
  const configuration c({{0, 0}, {0, 0}, {2, 0}, {2, 0}, {7, 0}, {9, 0}});
  const classification cls = classify(c);
  EXPECT_EQ(cls.cls, config_class::linear_1w);
  EXPECT_NEAR(cls.target->x, 2.0, 1e-9);
}

TEST(Classify, RegularPolygonIsQR) {
  std::vector<vec2> pts;
  for (int i = 0; i < 6; ++i) {
    const double a = geom::two_pi * i / 6;
    pts.push_back({std::cos(a), std::sin(a)});
  }
  const classification cls = classify(configuration(pts));
  EXPECT_EQ(cls.cls, config_class::quasi_regular);
  EXPECT_EQ(cls.qreg_degree, 6);
  EXPECT_NEAR(cls.target->x, 0.0, 1e-9);
}

TEST(Classify, BiangularIsQR) {
  sim::rng r(41);
  const auto pts = workloads::biangular(3, 0.6, r);
  const classification cls = classify(configuration(pts));
  EXPECT_EQ(cls.cls, config_class::quasi_regular);
}

TEST(Classify, GenericCloudIsAsymmetric) {
  const configuration c({{0, 0}, {5, 0}, {1, 3}, {-2, 1}, {0.5, -2.5}});
  EXPECT_EQ(classify(c).cls, config_class::asymmetric);
  EXPECT_EQ(symmetry(c), 1);
}

TEST(Classify, AxialSymmetryIsNotBivalentOrQR) {
  sim::rng r(43);
  for (int trial = 0; trial < 10; ++trial) {
    const auto pts = workloads::axially_symmetric(7, r);
    const classification cls = classify(configuration(pts));
    EXPECT_NE(cls.cls, config_class::bivalent);
    EXPECT_NE(cls.cls, config_class::linear_2w);
  }
}

TEST(Classify, PartitionIsTotalAndStable) {
  // Every generated configuration lands in exactly one class, and the
  // class is invariant under similarity transforms of the input.
  sim::rng r(47);
  for (int trial = 0; trial < 40; ++trial) {
    const auto pts = workloads::uniform_random(4 + trial % 9, r);
    const configuration c1(pts);
    const config_class k1 = classify(c1).cls;

    std::vector<vec2> moved;
    const double ang = 0.1 + 0.3 * trial;
    for (const vec2& p : pts) {
      moved.push_back(vec2{-3, 8} + 1.7 * geom::rotated_ccw(p, ang));
    }
    const config_class k2 = classify(configuration(moved)).cls;
    EXPECT_EQ(k1, k2) << "trial " << trial;
  }
}

TEST(Classify, ExpectedClassesOfCorpus) {
  for (std::size_t n : {5u, 8u, 9u, 12u}) {
    for (const auto& wl : workloads::corpus(n, 1000 + n)) {
      if (!wl.expected_exact) continue;
      const classification cls = classify(configuration(wl.points));
      EXPECT_EQ(cls.cls, wl.expected) << wl.name << " n=" << n;
    }
  }
}

TEST(Classify, ToStringCoversAllClasses) {
  EXPECT_EQ(to_string(config_class::bivalent), "B");
  EXPECT_EQ(to_string(config_class::multiple), "M");
  EXPECT_EQ(to_string(config_class::linear_1w), "L1W");
  EXPECT_EQ(to_string(config_class::linear_2w), "L2W");
  EXPECT_EQ(to_string(config_class::quasi_regular), "QR");
  EXPECT_EQ(to_string(config_class::asymmetric), "A");
}

}  // namespace
}  // namespace gather::config
