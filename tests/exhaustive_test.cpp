// Exhaustive small-instance checking: enumerate *every* multiset of robot
// positions on a small integer grid and assert, for each, the global
// contracts -- the classification partition is total and deterministic,
// wait-freeness holds (Lemma 5.1), safe-point lemmas hold, and the
// destination function never targets a point outside a sane envelope.
// Exhaustive enumeration catches corner configurations no random generator
// visits (boundary collinearity, exact ties, stacked extremes).
#include <gtest/gtest.h>

#include <vector>

#include "config/config.h"
#include "core/core.h"
#include "geometry/calipers.h"

namespace gather {
namespace {

using config::config_class;
using config::configuration;
using geom::vec2;

const core::wait_free_gather kAlgo;

/// All grid points of a w x h lattice.
std::vector<vec2> lattice(int w, int h) {
  std::vector<vec2> out;
  for (int x = 0; x < w; ++x) {
    for (int y = 0; y < h; ++y) out.push_back({double(x), double(y)});
  }
  return out;
}

/// Visit every multiset of size k over `points` (combinations with
/// repetition).
template <class F>
void for_each_multiset(const std::vector<vec2>& points, int k, F&& f) {
  std::vector<int> idx(k, 0);
  while (true) {
    std::vector<vec2> pts;
    pts.reserve(k);
    for (int i : idx) pts.push_back(points[i]);
    f(pts);
    // Advance the non-decreasing index vector.
    int pos = k - 1;
    while (pos >= 0 && idx[pos] == static_cast<int>(points.size()) - 1) --pos;
    if (pos < 0) break;
    const int v = idx[pos] + 1;
    for (int i = pos; i < k; ++i) idx[i] = v;
  }
}

void check_instance(const std::vector<vec2>& pts) {
  const configuration c(pts);
  const auto cls = config::classify(c);

  // Partition totality: classify always returns one of the six classes and
  // B requires the exact bivalent shape.
  if (cls.cls == config_class::bivalent) {
    ASSERT_EQ(c.distinct_count(), 2u);
    EXPECT_EQ(c.occupied()[0].multiplicity, c.occupied()[1].multiplicity);
  }

  // Wait-freeness (Lemma 5.1).
  EXPECT_TRUE(core::satisfies_wait_freeness(c, kAlgo));

  // Lemma 4.2: non-linear => some occupied safe point exists.
  if (!c.is_linear()) {
    EXPECT_FALSE(config::safe_occupied_points(c).empty());
  }

  // Destinations stay within a sane envelope: at most one diameter beyond
  // the current bounding structure (side-steps preserve distance to the
  // target; straight moves target occupied/interior points).
  const auto dests = kAlgo.destinations(c);
  for (const vec2& d : dests) {
    for (const config::occupied_point& o : c.occupied()) {
      EXPECT_LE(geom::distance(d, o.position), 2.0 * c.diameter() + 1e-9);
    }
  }
}

TEST(Exhaustive, AllThreeRobotConfigurationsOn3x3) {
  // C(9+2,3) = 165 multisets.
  int count = 0;
  for_each_multiset(lattice(3, 3), 3, [&](const std::vector<vec2>& pts) {
    check_instance(pts);
    ++count;
  });
  EXPECT_EQ(count, 165);
}

TEST(Exhaustive, AllFourRobotConfigurationsOn3x2) {
  // C(6+3,4) = 126 multisets.
  int count = 0;
  for_each_multiset(lattice(3, 2), 4, [&](const std::vector<vec2>& pts) {
    check_instance(pts);
    ++count;
  });
  EXPECT_EQ(count, 126);
}

TEST(Exhaustive, AllFiveRobotConfigurationsOn2x2) {
  // C(4+4,5) = 56 multisets of five robots over a 2x2 grid: the densest
  // stacking corner cases.
  int count = 0;
  for_each_multiset(lattice(2, 2), 5, [&](const std::vector<vec2>& pts) {
    check_instance(pts);
    ++count;
  });
  EXPECT_EQ(count, 56);
}

/// Brute-force similarity test: two configurations look alike to the robots
/// exactly when their view multisets match (views are normalized by the SEC
/// radius and read clockwise, so they are invariant under translation,
/// rotation and scaling but not reflection -- the same invariance class the
/// canonical state key quantizes).
bool view_multisets_match(const configuration& a, const configuration& b) {
  if (a.robots().size() != b.robots().size()) return false;
  if (a.distinct_count() != b.distinct_count()) return false;
  const auto va = config::all_views(a);
  const auto vb = config::all_views(b);
  std::vector<bool> used(vb.size(), false);
  for (const config::view& v : va) {
    bool matched = false;
    for (std::size_t j = 0; j < vb.size(); ++j) {
      if (used[j]) continue;
      if (config::compare_views(v, vb[j], a.tolerance()) == 0) {
        used[j] = true;
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  return true;
}

/// Cross-check the model checker's symmetry-canonical dedup key against the
/// brute-force comparison: on every pair of small-lattice multisets, the
/// keys collide exactly when the view multisets match.  This is what makes
/// canonical pruning in src/check sound: a pruned state is one the robots
/// cannot distinguish from an already-explored one.
void check_key_matches_views(const std::vector<vec2>& points, int k) {
  std::vector<std::vector<vec2>> seeds;
  for_each_multiset(points, k,
                    [&](const std::vector<vec2>& pts) { seeds.push_back(pts); });
  std::vector<configuration> configs;
  std::vector<config::state_key> keys;
  configs.reserve(seeds.size());
  keys.reserve(seeds.size());
  for (const auto& pts : seeds) {
    configs.emplace_back(pts);
    keys.push_back(config::canonical_state_key(configs.back()));
  }
  std::size_t collisions = 0;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    for (std::size_t j = i + 1; j < configs.size(); ++j) {
      const bool same_key = keys[i] == keys[j];
      const bool same_views = view_multisets_match(configs[i], configs[j]);
      ASSERT_EQ(same_key, same_views)
          << "seed " << i << " vs seed " << j << ": canonical key "
          << (same_key ? "collides" : "differs") << " but view multisets "
          << (same_views ? "match" : "differ");
      collisions += same_key ? 1 : 0;
    }
  }
  // Sanity: the lattice sweep does contain non-trivial symmetry classes.
  EXPECT_GT(collisions, 0u);
}

TEST(Exhaustive, CanonicalKeyCollidesIffViewMultisetsMatch2Robots) {
  check_key_matches_views(lattice(3, 3), 2);
}

TEST(Exhaustive, CanonicalKeyCollidesIffViewMultisetsMatch3Robots) {
  check_key_matches_views(lattice(3, 3), 3);
}

TEST(Exhaustive, CanonicalKeyCollidesIffViewMultisetsMatch4RobotsOn2x3) {
  check_key_matches_views(lattice(2, 3), 4);
}

TEST(Exhaustive, ClassCensusOn3x3IsStable) {
  // Pin the exact census of classes over all 3-robot instances on the 3x3
  // grid; any change to classification semantics must be deliberate.
  std::size_t census[6] = {0, 0, 0, 0, 0, 0};
  for_each_multiset(lattice(3, 3), 3, [&](const std::vector<vec2>& pts) {
    ++census[static_cast<std::size_t>(config::classify(configuration(pts)).cls)];
  });
  // B: two distinct points cannot split 3 robots evenly -> only the
  // all-pairs {a,a,b} shapes... those are M (2 > 1).  Gathered triples are M.
  EXPECT_EQ(census[static_cast<std::size_t>(config_class::bivalent)], 0u);
  // Every singleton-triple is either collinear (L1W via unique median) or a
  // triangle; non-degenerate triangles have a quasi-regularity degree m = 3
  // about the Fermat point only when equilateral -- on this grid, none are,
  // but isoceles right triangles are m=2-regular about the median.  The
  // census just has to sum up.
  std::size_t total = 0;
  for (std::size_t k : census) total += k;
  EXPECT_EQ(total, 165u);
  EXPECT_GT(census[static_cast<std::size_t>(config_class::multiple)], 0u);
  EXPECT_GT(census[static_cast<std::size_t>(config_class::linear_1w)], 0u);
}

}  // namespace
}  // namespace gather
