// Tier-1 coverage for the shared command-line parser (src/util/cli.h):
// strict full-token numeric parsing, flag-table dispatch, --help precedence,
// positional handling and the one-line diagnostics contract every tool
// inherits through parse_or_exit().
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "util/cli.h"

namespace gather::cli {
namespace {

// ------------------------------------------------------------- number parsing

TEST(CliNumbers, U64AcceptsFullTokensOnly) {
  EXPECT_EQ(parse_u64("0"), 0u);
  EXPECT_EQ(parse_u64("18446744073709551615"), 18446744073709551615ull);
  EXPECT_THROW((void)parse_u64(""), std::invalid_argument);
  EXPECT_THROW((void)parse_u64("-1"), std::invalid_argument);
  EXPECT_THROW((void)parse_u64("+1"), std::invalid_argument);
  EXPECT_THROW((void)parse_u64("8x"), std::invalid_argument);
  EXPECT_THROW((void)parse_u64("x8"), std::invalid_argument);
  EXPECT_THROW((void)parse_u64(" 8"), std::invalid_argument);
  EXPECT_THROW((void)parse_u64("18446744073709551616"),  // 2^64
               std::invalid_argument);
}

TEST(CliNumbers, IntRangeAndGarbage) {
  EXPECT_EQ(parse_int("-3"), -3);
  EXPECT_EQ(parse_int("2147483647"), 2147483647);
  EXPECT_THROW((void)parse_int("2147483648"), std::invalid_argument);
  EXPECT_THROW((void)parse_int("-2147483649"), std::invalid_argument);
  EXPECT_THROW((void)parse_int(""), std::invalid_argument);
  EXPECT_THROW((void)parse_int("3.5"), std::invalid_argument);
}

TEST(CliNumbers, DoubleFullToken) {
  EXPECT_DOUBLE_EQ(parse_double("0.25"), 0.25);
  EXPECT_DOUBLE_EQ(parse_double("-1e-3"), -1e-3);
  EXPECT_THROW((void)parse_double(""), std::invalid_argument);
  EXPECT_THROW((void)parse_double("0.25x"), std::invalid_argument);
  EXPECT_THROW((void)parse_double("zz"), std::invalid_argument);
}

// ------------------------------------------------------------------- parsing

parser::result run(const parser& p, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return p.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(CliParser, TypedFlagsFillTargets) {
  std::size_t n = 0;
  std::uint64_t seed = 0;
  int reps = 0;
  double delta = 0.0;
  std::string name;
  bool verbose = false;
  parser p("t", "test");
  p.opt_size("--n", "robots", &n);
  p.opt_u64("--seed", "seed", &seed);
  p.opt_int("--reps", "reps", &reps);
  p.opt_double("--delta", "delta", &delta);
  p.opt_string("--name", "S", "name", &name);
  p.toggle("--verbose", "chatty", &verbose);
  const auto r = run(p, {"--n", "8", "--seed", "77", "--reps", "-2", "--delta",
                         "0.5", "--name", "x", "--verbose"});
  EXPECT_TRUE(r.ok);
  EXPECT_FALSE(r.help);
  EXPECT_EQ(n, 8u);
  EXPECT_EQ(seed, 77u);
  EXPECT_EQ(reps, -2);
  EXPECT_DOUBLE_EQ(delta, 0.5);
  EXPECT_EQ(name, "x");
  EXPECT_TRUE(verbose);
}

TEST(CliParser, UnknownFlagIsOneLineDiagnostic) {
  parser p("t", "test");
  const auto r = run(p, {"--nope"});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "unknown flag: --nope (try --help)");
}

TEST(CliParser, BareArgumentWithoutPositionalHandlerIsError) {
  parser p("t", "test");
  const auto r = run(p, {"stray"});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "unknown flag: stray (try --help)");
}

TEST(CliParser, MissingValueNamesTheFlag) {
  std::size_t n = 0;
  parser p("t", "test");
  p.opt_size("--n", "robots", &n);
  const auto r = run(p, {"--n"});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "--n: missing value");
}

TEST(CliParser, MalformedNumberNamesFlagAndToken) {
  std::size_t n = 0;
  parser p("t", "test");
  p.opt_size("--n", "robots", &n);
  const auto r = run(p, {"--n", "8x"});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "--n: not an unsigned integer: '8x'");
  EXPECT_EQ(n, 0u);  // never silently truncated to 8
}

TEST(CliParser, HandlerThrowBecomesDiagnostic) {
  parser p("t", "test");
  p.opt("--mode", "M", "mode", [](const std::string& v) {
    if (v != "a" && v != "b") throw std::invalid_argument("wants a|b");
  });
  const auto r = run(p, {"--mode", "c"});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "--mode: wants a|b");
}

TEST(CliParser, HelpWinsOverEverythingAndRunsNoHandlers) {
  std::size_t n = 0;
  parser p("t", "test");
  p.opt_size("--n", "robots", &n);
  const auto r = run(p, {"--n", "8", "-h", "--bogus"});
  EXPECT_TRUE(r.ok);
  EXPECT_TRUE(r.help);
  EXPECT_EQ(n, 0u);  // handlers did not run
}

TEST(CliParser, HandlersRunLeftToRightLastWins) {
  std::size_t n = 0;
  parser p("t", "test");
  p.opt_size("--n", "robots", &n);
  const auto r = run(p, {"--n", "8", "--n", "9"});
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(n, 9u);
}

TEST(CliParser, PositionalsGetOrdinalsAndCanReject) {
  std::vector<std::pair<std::size_t, std::string>> seen;
  parser p("t", "test");
  p.positionals("[a] [b]", [&seen](std::size_t ordinal, const std::string& v) {
    if (ordinal >= 2) throw std::invalid_argument("too many");
    seen.emplace_back(ordinal, v);
  });
  EXPECT_TRUE(run(p, {"x", "y"}).ok);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::pair<std::size_t, std::string>{0, "x"}));
  EXPECT_EQ(seen[1], (std::pair<std::size_t, std::string>{1, "y"}));
  const auto r = run(p, {"x", "y", "z"});
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.error, "z: too many");
}

TEST(CliParser, HelpTextListsEveryFlagAndUsage) {
  std::size_t n = 0;
  bool quiet = false;
  parser p("mytool", "does things");
  p.opt_size("--n", "robot count", &n);
  p.toggle("--quiet", "say less", &quiet);
  p.positionals("[file]", [](std::size_t, const std::string&) {});
  const std::string h = p.help_text();
  EXPECT_NE(h.find("usage: mytool [options] [file]"), std::string::npos);
  EXPECT_NE(h.find("does things"), std::string::npos);
  EXPECT_NE(h.find("--n N"), std::string::npos);
  EXPECT_NE(h.find("robot count"), std::string::npos);
  EXPECT_NE(h.find("--quiet"), std::string::npos);
  EXPECT_NE(h.find("--help"), std::string::npos);
}

}  // namespace
}  // namespace gather::cli
