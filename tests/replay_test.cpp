// Schedule traces: the truncated-stop movement contract, deterministic
// replay of handcrafted schedules, and exact text-format round-trips.
#include <gtest/gtest.h>

#include <sstream>

#include "core/wait_free_gather.h"
#include "sim/sim.h"

namespace {

using namespace gather;
using geom::vec2;

TEST(TruncatedStop, HonorsMovementContract) {
  const vec2 from{0.0, 0.0};
  const vec2 dest{10.0, 0.0};
  const double delta = 2.0;

  // Moves of at most delta always complete, bit-for-bit on the destination.
  EXPECT_EQ(sim::truncated_stop(from, {1.5, 0.0}, delta, 0, 4),
            (vec2{1.5, 0.0}));
  // Zero-length moves return the destination (== the origin) unchanged.
  EXPECT_EQ(sim::truncated_stop(from, from, delta, 0, 4), from);

  // Level 0 stops after exactly delta; the top level reaches the
  // destination exactly; intermediate levels are monotone in between.
  const vec2 lo = sim::truncated_stop(from, dest, delta, 0, 4);
  EXPECT_NEAR(geom::distance(from, lo), delta, 1e-12);
  EXPECT_EQ(sim::truncated_stop(from, dest, delta, 3, 4), dest);
  double prev = geom::distance(from, lo);
  for (std::uint32_t level = 1; level < 4; ++level) {
    const double d =
        geom::distance(from, sim::truncated_stop(from, dest, delta, level, 4));
    EXPECT_GT(d, prev);
    EXPECT_LE(d, geom::distance(from, dest));
    prev = d;
  }

  // A single-level grid degenerates to full movement.
  EXPECT_EQ(sim::truncated_stop(from, dest, delta, 0, 1), dest);
}

sim::schedule_trace handcrafted_trace() {
  sim::schedule_trace t;
  t.initial = {{0.0, 0.0}, {4.0, 0.0}, {4.0, 0.0}, {0.0, 3.0}};
  t.delta_fraction = 0.25;
  t.truncation_levels = 2;
  // Round 0: robot 3 crashes, robots 0 and 1 activate (0 truncated, 1 full).
  sim::trace_step s0;
  s0.crashes = {3};
  s0.active = {1, 1, 0, 0};
  s0.levels = {0, 1, 0, 0};
  t.steps.push_back(s0);
  // Round 1: no crashes, robot 2 activates with a truncated move.
  sim::trace_step s1;
  s1.active = {0, 0, 1, 0};
  s1.levels = {0, 0, 0, 0};
  t.steps.push_back(s1);
  return t;
}

TEST(Replay, HandcraftedScheduleIsDeterministic) {
  const sim::schedule_trace t = handcrafted_trace();
  const core::wait_free_gather wfg;
  const sim::sim_result a = sim::replay_schedule(t, wfg);
  const sim::sim_result b = sim::replay_schedule(t, wfg);

  ASSERT_EQ(a.rounds, t.steps.size());
  ASSERT_EQ(a.trace.size(), t.steps.size());
  EXPECT_EQ(a.final_positions, b.final_positions);
  EXPECT_EQ(a.final_live, b.final_live);
  for (std::size_t r = 0; r < a.trace.size(); ++r) {
    EXPECT_EQ(a.trace[r].positions, b.trace[r].positions);
  }

  // The scripted policies reproduced the recorded schedule exactly.
  EXPECT_EQ(a.crashes, 1u);
  EXPECT_EQ(a.final_live, (std::vector<std::uint8_t>{1, 1, 1, 0}));
  EXPECT_EQ(a.trace[0].active, (std::vector<std::uint8_t>{1, 1, 0, 0}));
  EXPECT_EQ(a.trace[1].active, (std::vector<std::uint8_t>{0, 0, 1, 0}));
  // The crashed robot never moves again.
  EXPECT_EQ(a.final_positions[3], t.initial[3]);
}

TEST(Replay, TraceTextFormatRoundTripsExactly) {
  sim::schedule_trace t = handcrafted_trace();
  // Awkward coordinates must survive: %.17g round-trips every double.
  t.initial[0] = {0.1, -1.0 / 3.0};
  t.initial[1] = {1e-12, 2.5e17};

  std::stringstream ss;
  sim::write_trace(ss, t);
  const sim::schedule_trace back = sim::read_trace(ss);
  EXPECT_EQ(back, t);

  // Idempotent: serializing the parsed trace yields the same bytes.
  std::stringstream ss2;
  sim::write_trace(ss2, back);
  std::stringstream ss3;
  sim::write_trace(ss3, t);
  EXPECT_EQ(ss2.str(), ss3.str());
}

TEST(Replay, ReadTraceRejectsMalformedInput) {
  {
    std::stringstream ss("not-a-trace\n");
    EXPECT_THROW(sim::read_trace(ss), std::runtime_error);
  }
  {
    std::stringstream ss("gather-trace-v1\ndelta-fraction 0.25\nlevels 2\n"
                         "robots 1\n0 0\nrounds 1\nstep crashes 0 active 1 "
                         "5:0\n");  // activation index out of range
    EXPECT_THROW(sim::read_trace(ss), std::runtime_error);
  }
  {
    std::stringstream ss("gather-trace-v1\ndelta-fraction 0.25\nlevels 2\n"
                         "robots 1\n0 0\nrounds 1\nstep crashes 0 active 1 "
                         "zz\n");  // malformed index:level token
    EXPECT_THROW(sim::read_trace(ss), std::runtime_error);
  }
}

TEST(Replay, ScriptedMovementThrowsWhenTraceExhausted) {
  // A scheduler that activates beyond the recorded steps starves the flat
  // level cursor; the scripted movement must fail loudly, not guess.
  sim::schedule_trace t = handcrafted_trace();
  const core::wait_free_gather wfg;
  auto move = sim::make_scripted_movement(t);
  sim::rng random(7);
  // Drain the two recorded activations of round 0 and one of round 1 ...
  (void)move->stop_point({0.0, 0.0}, {9.0, 0.0}, 1.0, random);
  (void)move->stop_point({0.0, 0.0}, {9.0, 0.0}, 1.0, random);
  (void)move->stop_point({0.0, 0.0}, {9.0, 0.0}, 1.0, random);
  // ... then the fourth call has no recorded decision left.
  EXPECT_THROW((void)move->stop_point({0.0, 0.0}, {9.0, 0.0}, 1.0, random),
               std::runtime_error);
}

}  // namespace
