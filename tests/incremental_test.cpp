// Incremental-vs-cold bit-identity suite for the delta-aware mutation API.
//
// The contract (config/configuration.h) is that every incremental
// canonicalization path -- the per-mover delta repair, the mults_only
// shortcut, the no_op / cache_kept fast exits and the hinted apply_moves
// change scan -- produces a canonical state bit-identical to a freshly
// constructed configuration over the same raw points under the same
// tolerance policy.  The fuzz suite drives >= 1000 random mutation
// sequences (point moves, insert/remove, snap-merges, tolerance refreshes,
// hinted and unhinted apply_moves) and compares the mutated configuration
// against a cold rebuild after every step, including the derived-geometry
// reads whose slots survive mutations (hull, angular orders, symmetry).
//
// The unit tests pin the per-slot survival rules (mutation_report kinds,
// generation semantics, the grow-only ragged slot pools) and the spatial
// grid's query contract against linear-scan oracles.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "config/classify.h"
#include "config/configuration.h"
#include "config/derived.h"
#include "config/safe_points.h"
#include "config/string_of_angles.h"
#include "config/views.h"
#include "geometry/spatial_grid.h"
#include "sim/rng.h"

namespace gather::config {
namespace {

using geom::vec2;

void expect_same_vec(vec2 a, vec2 b, const char* what, int iter) {
  EXPECT_EQ(a.x, b.x) << what << " iter=" << iter;
  EXPECT_EQ(a.y, b.y) << what << " iter=" << iter;
}

/// Full canonical-state comparison, bit for bit.
void expect_same_canonical(const configuration& inc, const configuration& cold,
                           int iter) {
  ASSERT_EQ(inc.size(), cold.size()) << "iter=" << iter;
  ASSERT_EQ(inc.distinct_count(), cold.distinct_count()) << "iter=" << iter;
  for (std::size_t i = 0; i < inc.size(); ++i) {
    expect_same_vec(inc.robots()[i], cold.robots()[i], "robots", iter);
  }
  for (std::size_t i = 0; i < inc.distinct_count(); ++i) {
    expect_same_vec(inc.occupied()[i].position, cold.occupied()[i].position,
                    "occupied", iter);
    EXPECT_EQ(inc.occupied()[i].multiplicity, cold.occupied()[i].multiplicity)
        << "iter=" << iter;
  }
  const geom::tol& ta = inc.tolerance();
  const geom::tol& tb = cold.tolerance();
  EXPECT_EQ(ta.scale, tb.scale) << "iter=" << iter;
  EXPECT_EQ(ta.rel, tb.rel) << "iter=" << iter;
  EXPECT_EQ(ta.angle_eps, tb.angle_eps) << "iter=" << iter;
  EXPECT_EQ(ta.abs_floor, tb.abs_floor) << "iter=" << iter;
  expect_same_vec(inc.sec().center, cold.sec().center, "sec.center", iter);
  EXPECT_EQ(inc.sec().radius, cold.sec().radius) << "iter=" << iter;
  EXPECT_EQ(inc.diameter(), cold.diameter()) << "iter=" << iter;
  EXPECT_EQ(inc.is_linear(), cold.is_linear()) << "iter=" << iter;
}

/// Derived reads that exercise the surviving slots (hull on mults_only, the
/// lazily repaired angular tables) against a cold configuration.
void expect_same_derived(const configuration& inc, const configuration& cold,
                         int iter) {
  if (inc.distinct_count() == 0) return;
  EXPECT_EQ(symmetry(inc), symmetry(cold)) << "iter=" << iter;
  EXPECT_EQ(safe_occupied_points(inc), safe_occupied_points(cold))
      << "iter=" << iter;
  const std::vector<angular_entry> oa =
      angular_order(inc, inc.sec().center);
  const std::vector<angular_entry> ob =
      angular_order(cold, cold.sec().center);
  ASSERT_EQ(oa.size(), ob.size()) << "iter=" << iter;
  for (std::size_t i = 0; i < oa.size(); ++i) {
    expect_same_vec(oa[i].position, ob[i].position, "order.pos", iter);
    EXPECT_EQ(oa[i].theta, ob[i].theta) << "iter=" << iter;
    EXPECT_EQ(oa[i].dist, ob[i].dist) << "iter=" << iter;
  }
  const auto va = all_views(inc);
  const auto vb = all_views(cold);
  ASSERT_EQ(va.size(), vb.size()) << "iter=" << iter;
  for (std::size_t i = 0; i < va.size(); ++i) {
    ASSERT_EQ(va[i].size(), vb[i].size()) << "iter=" << iter;
    for (std::size_t j = 0; j < va[i].size(); ++j) {
      EXPECT_EQ(va[i][j].angle, vb[i][j].angle) << "iter=" << iter;
      EXPECT_EQ(va[i][j].dist, vb[i][j].dist) << "iter=" << iter;
    }
  }
  EXPECT_EQ(classify(inc).cls, classify(cold).cls) << "iter=" << iter;
}

/// Random point: coarse grid cells plus occasional exact duplicates and
/// near-duplicates, so clustering, snap-merges and multiplicities all occur.
vec2 fuzz_point(sim::rng& r, const std::vector<vec2>& existing) {
  const double roll = r.uniform(0.0, 1.0);
  if (!existing.empty() && roll < 0.2) {
    const vec2 base =
        existing[r.uniform_int(0, existing.size() - 1)];
    if (roll < 0.1) return base;  // exact duplicate
    return {base.x + r.uniform(-1e-12, 1e-12),
            base.y + r.uniform(-1e-12, 1e-12)};  // near-duplicate
  }
  return {r.uniform(-10.0, 10.0), r.uniform(-10.0, 10.0)};
}

/// One fuzzed mutation sequence: a mutating configuration compared against
/// a cold rebuild of the same raw input after every operation.
void run_sequence(int iter, bool refreshed_policy) {
  sim::rng r(0x9e3779b9u * static_cast<std::uint64_t>(iter) + 17);
  const std::size_t n0 = 1 + r.uniform_int(0, 24);
  std::vector<vec2> raw;
  raw.reserve(n0 + 8);
  for (std::size_t i = 0; i < n0; ++i) raw.push_back(fuzz_point(r, raw));

  const double floor = refreshed_policy ? 1e-11 : 0.0;
  configuration inc;
  if (refreshed_policy) inc.set_tol_refresh(floor);
  inc.apply_moves(raw);

  const auto cold_build = [&]() {
    configuration cold;
    if (refreshed_policy) cold.set_tol_refresh(floor);
    cold.apply_moves(raw);
    return cold;
  };

  const std::size_t ops = 24;
  for (std::size_t op = 0; op < ops; ++op) {
    const std::uint64_t kind = r.uniform_int(0, 9);
    if (kind <= 3) {
      // Single-robot move: small nudge (delta-path candidate), a jump, or a
      // snap-merge onto another robot.
      const std::size_t i = r.uniform_int(0, raw.size() - 1);
      vec2 p;
      if (kind == 0) {
        p = {raw[i].x + r.uniform(-1e-4, 1e-4),
             raw[i].y + r.uniform(-1e-4, 1e-4)};
      } else if (kind == 1) {
        p = {r.uniform(-10.0, 10.0), r.uniform(-10.0, 10.0)};
      } else {
        p = fuzz_point(r, raw);
      }
      raw[i] = p;
      inc.set_position(i, p);
    } else if (kind == 4) {
      // Bitwise no-op move.
      const std::size_t i = r.uniform_int(0, raw.size() - 1);
      const mutation_report rep = inc.set_position(i, raw[i]);
      EXPECT_TRUE(rep.no_op) << "iter=" << iter;
      EXPECT_TRUE(rep.cache_kept) << "iter=" << iter;
    } else if (kind <= 6) {
      // Multi-robot round via apply_moves, hinted half the time.
      const bool hinted = r.flip();
      std::vector<std::uint8_t> mask(raw.size(), 0);
      const std::size_t movers = 1 + r.uniform_int(0, 2);
      for (std::size_t m = 0; m < movers; ++m) {
        const std::size_t i = r.uniform_int(0, raw.size() - 1);
        raw[i] = fuzz_point(r, raw);
        mask[i] = 1;
      }
      if (hinted) {
        inc.apply_moves(raw, mask);
      } else {
        inc.apply_moves(raw);
      }
    } else if (kind == 7 && raw.size() < 32) {
      const vec2 p = fuzz_point(r, raw);
      raw.push_back(p);
      inc.insert_robot(p);
    } else if (kind == 8 && raw.size() > 1) {
      const std::size_t i = r.uniform_int(0, raw.size() - 1);
      raw.erase(raw.begin() + static_cast<std::ptrdiff_t>(i));
      inc.remove_robot(i);
    } else if (refreshed_policy) {
      // Re-applying the same floor re-runs the policy but keeps the cache.
      const mutation_report rep = inc.set_tol_refresh(floor);
      EXPECT_TRUE(rep.cache_kept) << "iter=" << iter;
    } else {
      // Unchanged input under the spread-scaled policy is a no-op round.
      const mutation_report rep = inc.apply_moves(raw);
      EXPECT_TRUE(rep.no_op) << "iter=" << iter;
    }

    const configuration cold = cold_build();
    expect_same_canonical(inc, cold, iter);
    // Derived reads are expensive; spot-check a third of the steps (still
    // hundreds of mutation/read interleavings across the suite).
    if (op % 3 == 0) expect_same_derived(inc, cold, iter);
  }
}

TEST(IncrementalFuzz, RefreshedPolicyMatchesColdBitwise) {
  for (int iter = 0; iter < 500; ++iter) run_sequence(iter, true);
}

TEST(IncrementalFuzz, SpreadScaledPolicyMatchesColdBitwise) {
  for (int iter = 0; iter < 500; ++iter) run_sequence(1000 + iter, false);
}

// ---------------------------------------------------------------------------
// Mutation-report classification and slot-survival semantics.

TEST(MutationReport, BitwiseIdenticalInputIsNoOp) {
  configuration c({{0, 0}, {3, 1}, {-2, 5}});
  const std::uint64_t gen = c.generation();
  const std::vector<vec2> raw = {{0, 0}, {3, 1}, {-2, 5}};
  const mutation_report rep = c.apply_moves(raw);
  EXPECT_TRUE(rep.no_op);
  EXPECT_TRUE(rep.cache_kept);
  EXPECT_EQ(rep.kind, mutation_kind::no_op);
  EXPECT_EQ(rep.moved, 0u);
  EXPECT_EQ(c.generation(), gen);
}

TEST(MutationReport, SetPositionSameBitsIsNoOp) {
  configuration c({{0, 0}, {3, 1}});
  const std::uint64_t gen = c.generation();
  const mutation_report rep = c.set_position(1, {3, 1});
  EXPECT_TRUE(rep.no_op);
  EXPECT_EQ(c.generation(), gen);
}

TEST(MutationReport, SetPositionOutOfRangeThrows) {
  configuration c({{0, 0}});
  EXPECT_THROW(static_cast<void>(c.set_position(1, {1, 1})),
               std::out_of_range);
  EXPECT_THROW(static_cast<void>(c.remove_robot(7)), std::out_of_range);
}

TEST(MutationReport, RepeatedTolRefreshIsCacheKept) {
  configuration c({{0, 0}, {4, 4}, {9, 1}});
  c.set_tol_refresh(1e-10);
  const std::uint64_t gen = c.generation();
  const mutation_report rep = c.set_tol_refresh(1e-10);
  EXPECT_TRUE(rep.cache_kept);
  EXPECT_FALSE(rep.no_op);  // the input vector is unchanged but policy re-runs
  EXPECT_EQ(c.generation(), gen);
}

TEST(MutationReport, SwappingCoLocatedRobotsIsMultsOnly) {
  // The canonical location multiset is unchanged, but the per-index robot
  // assignment is not, so the cache cannot be kept outright; the location
  // set and tolerance are preserved, which is exactly the mults_only class.
  configuration c({{0, 0}, {5, 5}, {0, 0}, {5, 5}});
  const std::uint64_t gen = c.generation();
  std::vector<vec2> raw = {{5, 5}, {0, 0}, {0, 0}, {5, 5}};
  const mutation_report rep = c.apply_moves(raw);
  EXPECT_FALSE(rep.no_op);
  EXPECT_FALSE(rep.cache_kept);
  EXPECT_EQ(rep.kind, mutation_kind::mults_only);
  EXPECT_FALSE(rep.structure_changed);
  EXPECT_GT(c.generation(), gen);
}

TEST(MutationReport, MultiplicityTransferIsMultsOnly) {
  // Fixed tolerance so the tol context provably cannot change; moving one
  // robot from a doubly occupied location exactly onto another location
  // keeps the location set and changes only multiplicities.
  const geom::tol t = geom::tol::for_points(
      std::vector<vec2>{{0, 0}, {10, 0}, {0, 7}});
  configuration c({{0, 0}, {0, 0}, {10, 0}, {0, 7}}, t);
  ASSERT_EQ(c.distinct_count(), 3u);
  const std::vector<vec2> hull_before = hull(c);
  const std::uint64_t gen = c.generation();
  const mutation_report rep = c.set_position(1, {10, 0});
  EXPECT_EQ(rep.kind, mutation_kind::mults_only);
  EXPECT_FALSE(rep.structure_changed);
  EXPECT_FALSE(rep.tol_changed);
  EXPECT_GT(c.generation(), gen);  // canonical state changed
  EXPECT_EQ(c.multiplicity({0, 0}), 1);
  EXPECT_EQ(c.multiplicity({10, 0}), 2);
  // The kept hull slot still serves bit-identical values.
  const std::vector<vec2> hull_after = hull(c);
  ASSERT_EQ(hull_before.size(), hull_after.size());
  for (std::size_t i = 0; i < hull_before.size(); ++i) {
    expect_same_vec(hull_before[i], hull_after[i], "hull", 0);
  }
  // The repaired angular tables match a cold rebuild.
  const configuration cold(std::vector<vec2>(c.robots()), t);
  expect_same_derived(c, cold, 0);
}

TEST(MutationReport, IsolatedSingletonMoveIsDelta) {
  // Widely spaced singletons under a fixed tolerance: a small interior move
  // must take the delta path and report the changed occupied slots.
  std::vector<vec2> pts;
  for (int i = 0; i < 20; ++i) {
    pts.push_back({static_cast<double>(10 * i), (i % 2 == 0) ? 0.0 : 3.0});
  }
  const geom::tol t = geom::tol::for_points(pts);
  configuration c(pts, t);
  ASSERT_EQ(c.distinct_count(), 20u);
  const mutation_report rep = c.set_position(5, {50.001, 3.002});
  EXPECT_EQ(rep.kind, mutation_kind::delta);
  EXPECT_EQ(rep.moved, 1u);
  EXPECT_TRUE(rep.structure_changed);
  ASSERT_EQ(rep.changed_occupied.size(), 1u);
  const vec2 moved = c.occupied()[rep.changed_occupied[0]].position;
  EXPECT_EQ(moved.x, 50.001);
  EXPECT_EQ(moved.y, 3.002);
  // Bit-identity with the cold rebuild.
  std::vector<vec2> now = pts;
  now[5] = {50.001, 3.002};
  const configuration cold(now, t);
  expect_same_canonical(c, cold, 0);
  expect_same_derived(c, cold, 0);
}

TEST(MutationReport, HintedApplyMovesMatchesUnhinted) {
  std::vector<vec2> pts;
  for (int i = 0; i < 12; ++i) pts.push_back({static_cast<double>(i), 0.5 * i});
  configuration hinted;
  hinted.set_tol_refresh(1e-10);
  hinted.apply_moves(pts);
  configuration unhinted;
  unhinted.set_tol_refresh(1e-10);
  unhinted.apply_moves(pts);

  std::vector<std::uint8_t> mask(pts.size(), 0);
  pts[3] = {3.25, 1.75};
  pts[9] = {8.5, 4.75};
  mask[3] = mask[9] = 1;
  const mutation_report ra = hinted.apply_moves(pts, mask);
  const mutation_report rb = unhinted.apply_moves(pts);
  EXPECT_EQ(ra.kind, rb.kind);
  EXPECT_EQ(ra.moved, rb.moved);
  expect_same_canonical(hinted, unhinted, 0);

  // An all-zero hint with an unchanged vector is a no-op.
  std::fill(mask.begin(), mask.end(), std::uint8_t{0});
  const mutation_report rc = hinted.apply_moves(pts, mask);
  EXPECT_TRUE(rc.no_op);
}

TEST(ViewSlots, RaggedPoolSurvivesOccupancyShrinkAndRegrow) {
  // k = 5 -> 3 -> 5 distinct locations: the logical view count must track
  // occupancy while values stay bit-identical to cold rebuilds throughout.
  std::vector<vec2> five = {{0, 0}, {4, 0}, {0, 4}, {4, 4}, {2, 7}};
  configuration c(five);
  EXPECT_EQ(all_views(c).size(), 5u);

  std::vector<vec2> three = {{0, 0}, {4, 0}, {0, 4}, {0, 0}, {4, 0}};
  c.apply_moves(three);
  const auto views3 = all_views(c);
  ASSERT_EQ(views3.size(), 3u);
  const configuration cold3(three);
  expect_same_derived(c, cold3, 0);

  c.apply_moves(five);
  const auto views5 = all_views(c);
  ASSERT_EQ(views5.size(), 5u);
  const configuration cold5(five);
  expect_same_derived(c, cold5, 0);
}

TEST(GridQueries, MatchAndNearestAgainstOracles) {
  configuration c({{0, 0}, {1, 0}, {1, 0}, {5, 5}, {-3, 2}});
  // multiplicity via the grid == counting robots per snapped location.
  EXPECT_EQ(c.multiplicity({1, 0}), 2);
  EXPECT_EQ(c.multiplicity({0, 0}), 1);
  EXPECT_EQ(c.multiplicity({9, 9}), 0);
  // first_occupied_match == the linear first-match scan.
  for (const occupied_point& o : c.occupied()) {
    std::size_t linear = c.occupied().size();
    for (std::size_t k = 0; k < c.occupied().size(); ++k) {
      if (c.tolerance().same_point(c.occupied()[k].position, o.position)) {
        linear = k;
        break;
      }
    }
    const auto got = c.first_occupied_match(o.position);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, linear);
  }
  EXPECT_FALSE(c.first_occupied_match({100, 100}).has_value());
  // nearest_occupied == argmin by distance with lexicographic ties.
  sim::rng r(7);
  for (int q = 0; q < 200; ++q) {
    const vec2 p{r.uniform(-8.0, 8.0), r.uniform(-8.0, 8.0)};
    const auto got = c.nearest_occupied(p);
    ASSERT_TRUE(got.has_value());
    std::size_t best = 0;
    for (std::size_t k = 1; k < c.occupied().size(); ++k) {
      const double dk = geom::distance(c.occupied()[k].position, p);
      const double db = geom::distance(c.occupied()[best].position, p);
      if (dk < db || (dk == db &&
                      c.occupied()[k].position < c.occupied()[best].position)) {
        best = k;
      }
    }
    EXPECT_EQ(*got, best) << "q=" << q;
  }
}

TEST(SpatialGrid, HandleLifecycleAndQueries) {
  geom::spatial_grid g;
  const geom::tol t = geom::tol::for_points(
      std::vector<vec2>{{0, 0}, {100, 100}});
  g.build(std::vector<vec2>{{0, 0}, {1, 1}, {50, 50}}, 2 * t.len_eps());
  EXPECT_EQ(g.size(), 3u);
  EXPECT_EQ(g.find_exact({1, 1}), 1u);
  EXPECT_EQ(g.find_exact({2, 2}), geom::spatial_grid::npos);
  EXPECT_EQ(g.min_handle_match({0, 0}, t), 0u);
  EXPECT_EQ(g.count_matches({50, 50}, t), 1u);

  // move keeps the handle; remove recycles it.
  g.move(1, {60, 60});
  EXPECT_EQ(g.find_exact({60, 60}), 1u);
  EXPECT_EQ(g.find_exact({1, 1}), geom::spatial_grid::npos);
  g.remove(0);
  EXPECT_EQ(g.size(), 2u);
  const std::size_t h = g.insert({-7, 3});
  EXPECT_EQ(h, 0u);  // the freed slot is recycled
  EXPECT_EQ(g.find_exact({-7, 3}), 0u);

  // match_excluding is an existence test modulo an excluded handle set.
  const std::vector<std::size_t> excl = {0};
  EXPECT_EQ(g.match_excluding({-7, 3}, t, excl), geom::spatial_grid::npos);
  EXPECT_NE(g.match_excluding({60, 60}, t, excl), geom::spatial_grid::npos);
}

TEST(SpatialGrid, NearestMatchesLinearOracle) {
  sim::rng r(99);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<vec2> pts;
    const std::size_t n = 2 + r.uniform_int(0, 30);
    for (std::size_t i = 0; i < n; ++i) {
      // Lattice coordinates force exact distance ties.
      pts.push_back({static_cast<double>(r.uniform_int(0, 6)),
                     static_cast<double>(r.uniform_int(0, 6))});
    }
    geom::spatial_grid g;
    g.build(pts, 0.5);
    for (int q = 0; q < 20; ++q) {
      const vec2 p{static_cast<double>(r.uniform_int(0, 6)),
                   static_cast<double>(r.uniform_int(0, 6))};
      const std::size_t got = g.nearest(p);
      ASSERT_NE(got, geom::spatial_grid::npos);
      // Oracle: min by (distance, position, handle).
      std::size_t best = 0;
      for (std::size_t h = 1; h < pts.size(); ++h) {
        const double dh = geom::distance(pts[h], p);
        const double db = geom::distance(pts[best], p);
        if (dh < db || (dh == db && (pts[h] < pts[best] ||
                                     (pts[h] == pts[best] && h < best)))) {
          best = h;
        }
      }
      EXPECT_EQ(g.position(got).x, pts[best].x) << "iter=" << iter;
      EXPECT_EQ(g.position(got).y, pts[best].y) << "iter=" << iter;
    }
  }
}

TEST(DiameterHull, LargeDistinctCountMatchesAllPairsOracle) {
  // U > 64 switches the diameter to the exact-hull path; it must equal the
  // all-pairs maximum bit for bit.
  sim::rng r(1234);
  std::vector<vec2> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back({r.uniform(-50.0, 50.0), r.uniform(-50.0, 50.0)});
  }
  const configuration c(pts);
  ASSERT_GT(c.distinct_count(), 64u);
  double best = 0.0;
  for (std::size_t i = 0; i < c.occupied().size(); ++i) {
    for (std::size_t j = i + 1; j < c.occupied().size(); ++j) {
      best = std::max(best, geom::distance(c.occupied()[i].position,
                                           c.occupied()[j].position));
    }
  }
  EXPECT_EQ(c.diameter(), best);
}

}  // namespace
}  // namespace gather::config
