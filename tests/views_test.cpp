#include <gtest/gtest.h>

#include <cmath>

#include "config/views.h"
#include "geometry/angles.h"

namespace gather::config {
namespace {

using geom::vec2;

TEST(Views, ViewSizeEqualsRobotCount) {
  const configuration c({{0, 0}, {1, 0}, {1, 0}, {0, 1}});
  const view v = view_of(c, {0, 0});
  EXPECT_EQ(v.size(), 4u);
}

TEST(Views, SelfEntriesAreZero) {
  const configuration c({{0, 0}, {0, 0}, {4, 0}});
  const view v = view_of(c, {0, 0});
  // Two robots at the origin produce two (0,0) entries.
  EXPECT_DOUBLE_EQ(v[0].angle, 0.0);
  EXPECT_DOUBLE_EQ(v[0].dist, 0.0);
  EXPECT_DOUBLE_EQ(v[1].dist, 0.0);
  EXPECT_GT(v[2].dist, 0.0);
}

TEST(Views, CompareEqualViews) {
  const configuration c({{0, 0}, {2, 0}, {1, std::sqrt(3.0)}});  // equilateral
  const auto vs = all_views(c);
  ASSERT_EQ(vs.size(), 3u);
  EXPECT_EQ(compare_views(vs[0], vs[1], c.tolerance()), 0);
  EXPECT_EQ(compare_views(vs[1], vs[2], c.tolerance()), 0);
}

TEST(Views, SymmetryOfEquilateralTriangle) {
  const configuration c({{0, 0}, {2, 0}, {1, std::sqrt(3.0)}});
  EXPECT_EQ(symmetry(c), 3);
}

TEST(Views, SymmetryOfSquare) {
  const configuration c({{1, 1}, {-1, 1}, {-1, -1}, {1, -1}});
  EXPECT_EQ(symmetry(c), 4);
}

TEST(Views, AsymmetricConfigurationHasDistinctViews) {
  const configuration c({{0, 0}, {5, 0}, {1, 3}, {-2, 1}});
  EXPECT_EQ(symmetry(c), 1);
  const auto classes = view_classes(c);
  EXPECT_EQ(classes.size(), c.distinct_count());
}

TEST(Views, ChiralityBreaksAxialSymmetry) {
  // Mirror twins across the y-axis; reading angles clockwise gives the two
  // wing points different views (an undirected reading would not).
  const configuration c({{0, 3}, {2, 0}, {-2, 0}, {0, -1}});
  const view left = view_of(c, {-2, 0});
  const view right = view_of(c, {2, 0});
  EXPECT_NE(compare_views(left, right, c.tolerance()), 0);
}

TEST(Views, MultiplicityChangesView) {
  const configuration c1({{0, 0}, {4, 0}, {2, 3}});
  const configuration c2({{0, 0}, {0, 0}, {4, 0}, {2, 3}});
  const view v1 = view_of(c1, {4, 0});
  const view v2 = view_of(c2, {4, 0});
  EXPECT_NE(v1.size(), v2.size());
}

TEST(Views, RotationalSymmetryWithRings) {
  // Two concentric equilateral triangles, same phase: sym = 3.
  std::vector<vec2> pts;
  for (int i = 0; i < 3; ++i) {
    const double a = geom::two_pi * i / 3.0;
    pts.push_back({std::cos(a), std::sin(a)});
    pts.push_back({2 * std::cos(a), 2 * std::sin(a)});
  }
  EXPECT_EQ(symmetry(configuration(pts)), 3);
}

TEST(Views, CenterPointViewIsWellDefined) {
  // A robot exactly at the sec center: the reference direction comes from a
  // maximal-view peer; the computation must not blow up and symmetry is 4
  // for the surrounding square.
  const configuration c({{0, 0}, {1, 1}, {-1, 1}, {-1, -1}, {1, -1}});
  const view v = view_of(c, {0, 0});
  EXPECT_EQ(v.size(), 5u);
  EXPECT_GE(symmetry(c), 4);
}

TEST(Views, ViewsInvariantUnderRotationAndScale) {
  const std::vector<vec2> base = {{0, 0}, {5, 0}, {1, 3}, {-2, 1}, {1, 3}};
  const configuration c1(base);
  std::vector<vec2> moved;
  const double ang = 1.234, s = 3.7;
  const vec2 off{11, -7};
  for (const vec2& p : base) {
    moved.push_back(off + s * geom::rotated_ccw(p, ang));
  }
  const configuration c2(moved);
  // Same symmetry and same number of view classes with the same sizes.
  EXPECT_EQ(symmetry(c1), symmetry(c2));
  const auto cls1 = view_classes(c1);
  const auto cls2 = view_classes(c2);
  ASSERT_EQ(cls1.size(), cls2.size());
  for (std::size_t i = 0; i < cls1.size(); ++i) {
    EXPECT_EQ(cls1[i].size(), cls2[i].size());
  }
}

TEST(Views, ViewOrderingIsTotal) {
  const configuration c({{0, 0}, {5, 0}, {1, 3}, {-2, 1}});
  const auto vs = all_views(c);
  const auto& t = c.tolerance();
  for (std::size_t i = 0; i < vs.size(); ++i) {
    EXPECT_EQ(compare_views(vs[i], vs[i], t), 0);
    for (std::size_t j = i + 1; j < vs.size(); ++j) {
      EXPECT_EQ(compare_views(vs[i], vs[j], t), -compare_views(vs[j], vs[i], t));
    }
  }
}

TEST(Views, BivalentSymmetryIsTwo) {
  const configuration c({{0, 0}, {0, 0}, {4, 0}, {4, 0}});
  EXPECT_EQ(symmetry(c), 2);
}

}  // namespace
}  // namespace gather::config
