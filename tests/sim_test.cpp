#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "core/wait_free_gather.h"
#include "sim/sim.h"
#include "workloads/generators.h"

namespace gather::sim {
namespace {

using core::wait_free_gather;
using geom::vec2;

const wait_free_gather kAlgo;

sim_result run_with(std::vector<vec2> pts, activation_scheduler& sched,
                    movement_adversary& move, crash_policy& crash,
                    const sim_options& opts) {
  sim_spec spec;
  spec.initial = std::move(pts);
  spec.algorithm = &kAlgo;
  spec.scheduler = &sched;
  spec.movement = &move;
  spec.crash = &crash;
  spec.options = opts;
  return run(spec);
}

sim_result run_simple(std::vector<vec2> pts, sim_options opts = {},
                      activation_scheduler* sched = nullptr) {
  auto sync = make_synchronous();
  auto move = make_full_movement();
  auto crash = make_no_crash();
  return run_with(std::move(pts), sched ? *sched : *sync, *move, *crash, opts);
}

TEST(Scheduler, SynchronousSelectsAllLive) {
  auto s = make_synchronous();
  rng r(1);
  const std::vector<vec2> pos = {{0, 0}, {1, 0}, {2, 0}};
  const std::vector<std::uint8_t> live = {1, 0, 1};
  const auto sel = s->select({0, pos, live}, r);
  EXPECT_EQ(sel, (std::vector<std::size_t>{0, 2}));
}

TEST(Scheduler, RoundRobinCyclesThroughLive) {
  auto s = make_round_robin();
  rng r(1);
  const std::vector<vec2> pos = {{0, 0}, {1, 0}, {2, 0}};
  const std::vector<std::uint8_t> live = {1, 1, 1};
  std::multiset<std::size_t> seen;
  for (int i = 0; i < 6; ++i) {
    const auto sel = s->select({static_cast<std::size_t>(i), pos, live}, r);
    ASSERT_EQ(sel.size(), 1u);
    seen.insert(sel.front());
  }
  EXPECT_EQ(seen.count(0), 2u);
  EXPECT_EQ(seen.count(1), 2u);
  EXPECT_EQ(seen.count(2), 2u);
}

TEST(Scheduler, RoundRobinSkipsCrashed) {
  auto s = make_round_robin();
  rng r(1);
  const std::vector<vec2> pos = {{0, 0}, {1, 0}, {2, 0}};
  const std::vector<std::uint8_t> live = {1, 0, 1};
  for (int i = 0; i < 4; ++i) {
    const auto sel = s->select({static_cast<std::size_t>(i), pos, live}, r);
    ASSERT_EQ(sel.size(), 1u);
    EXPECT_NE(sel.front(), 1u);
  }
}

TEST(Scheduler, FairRandomAlwaysSelectsSomeone) {
  auto s = make_fair_random();
  rng r(9);
  const std::vector<vec2> pos = {{0, 0}, {1, 0}};
  const std::vector<std::uint8_t> live = {1, 1};
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(s->select({static_cast<std::size_t>(i), pos, live}, r).empty());
  }
}

TEST(Scheduler, AllSchedulersRegistered) {
  EXPECT_EQ(all_schedulers().size(), 6u);
}

TEST(Scheduler, OddEvenPartitionsByParity) {
  auto s = make_odd_even();
  rng r(1);
  const std::vector<vec2> pos = {{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  const std::vector<std::uint8_t> live = {1, 1, 1, 1};
  EXPECT_EQ(s->select({0, pos, live}, r), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(s->select({1, pos, live}, r), (std::vector<std::size_t>{1, 3}));
  // When one parity is fully crashed, fall back to all live robots.
  const std::vector<std::uint8_t> odd_dead = {1, 0, 1, 0};
  EXPECT_EQ(s->select({1, pos, odd_dead}, r), (std::vector<std::size_t>{0, 2}));
}

TEST(Movement, FractionStopRespectsContract) {
  auto m = make_fraction_stop(0.5);
  rng r(1);
  EXPECT_DOUBLE_EQ(m->travelled(4.0, 0.5, r), 2.0);   // half way
  EXPECT_DOUBLE_EQ(m->travelled(0.4, 0.5, r), 0.4);   // within delta: reach
  EXPECT_DOUBLE_EQ(m->travelled(0.9, 0.5, r), 0.5);   // clamped up to delta
}

TEST(Movement, FullReachesDestination) {
  auto m = make_full_movement();
  rng r(1);
  EXPECT_DOUBLE_EQ(m->travelled(3.0, 0.5, r), 3.0);
}

TEST(Movement, MinimalMovesExactlyDelta) {
  auto m = make_minimal_movement();
  rng r(1);
  EXPECT_DOUBLE_EQ(m->travelled(3.0, 0.5, r), 0.5);
  EXPECT_DOUBLE_EQ(m->travelled(0.3, 0.5, r), 0.3);  // within delta: reach
}

TEST(Movement, RandomStopWithinBounds) {
  auto m = make_random_stop();
  rng r(5);
  for (int i = 0; i < 100; ++i) {
    const double g = m->travelled(3.0, 0.5, r);
    EXPECT_GE(g, 0.5);
    EXPECT_LE(g, 3.0);
  }
}

TEST(Crash, ScheduledFires) {
  auto c = make_scheduled_crashes({{2, 1}, {5, 0}});
  rng r(1);
  const std::vector<vec2> pos = {{0, 0}, {1, 0}};
  const std::vector<std::uint8_t> live = {1, 1};
  EXPECT_TRUE(c->crashes({0, pos, live, nullptr}, r).empty());
  EXPECT_EQ(c->crashes({2, pos, live, nullptr}, r),
            (std::vector<std::size_t>{1}));
  EXPECT_EQ(c->crashes({5, pos, live, nullptr}, r),
            (std::vector<std::size_t>{0}));
}

TEST(Engine, GathersFromMajorityConfig) {
  const auto res = run_simple({{0, 0}, {0, 0}, {0, 0}, {4, 0}, {1, 5}});
  EXPECT_EQ(res.status, sim_status::gathered);
  EXPECT_EQ(res.gather_point, (vec2{0, 0}));
}

TEST(Engine, GathersFromAsymmetricCloud) {
  const auto res = run_simple({{0, 0}, {5, 0}, {1, 3}, {-2, 1}, {0.5, -2.5}});
  EXPECT_EQ(res.status, sim_status::gathered);
}

TEST(Engine, GathersUnderRoundRobin) {
  auto rr = make_round_robin();
  const auto res = run_simple({{0, 0}, {5, 0}, {1, 3}, {-2, 1}}, {}, rr.get());
  EXPECT_EQ(res.status, sim_status::gathered);
}

TEST(Engine, BivalentStallsImmediately) {
  rng r(61);
  const auto res = run_simple(workloads::bivalent(6, r));
  EXPECT_EQ(res.status, sim_status::started_bivalent);
  EXPECT_EQ(res.rounds, 0u);
}

TEST(Engine, CrashedRobotStaysVisibleAndOthersGather) {
  auto sync = make_synchronous();
  auto move = make_full_movement();
  auto crash = make_scheduled_crashes({{0, 3}});  // robot 3 never acts
  sim_options opts;
  const auto res = run_with({{0, 0}, {0, 0}, {0, 0}, {6, 1}, {1, 5}}, *sync,
                            *move, *crash, opts);
  EXPECT_EQ(res.status, sim_status::gathered);
  EXPECT_EQ(res.crashes, 1u);
  // The crashed robot is still at its initial position.
  EXPECT_EQ(res.final_positions[3], (vec2{6, 1}));
  EXPECT_FALSE(res.final_live[3]);
}

TEST(Engine, AllButOneCrashStillGathers) {
  // f = n - 1: the lone survivor walks to the stationary point.
  auto sync = make_synchronous();
  auto move = make_full_movement();
  auto crash = make_scheduled_crashes({{0, 0}, {0, 1}, {0, 2}, {0, 3}});
  sim_options opts;
  const auto res = run_with({{0, 0}, {0, 0}, {3, 2}, {6, 1}, {1, 5}}, *sync,
                            *move, *crash, opts);
  EXPECT_EQ(res.status, sim_status::gathered);
  EXPECT_EQ(res.crashes, 4u);
}

TEST(Engine, WaitFreeCheckCleanOnRandomRuns) {
  rng seed_src(67);
  for (int trial = 0; trial < 5; ++trial) {
    auto sched = make_fair_random();
    auto move = make_random_stop();
    auto crash = make_random_crashes(2, 30);
    sim_options opts;
    opts.check_wait_freeness = true;
    opts.seed = 100 + trial;
    const auto res = run_with(workloads::uniform_random(7, seed_src), *sched,
                              *move, *crash, opts);
    EXPECT_EQ(res.wait_free_violations, 0u) << trial;
    EXPECT_EQ(res.bivalent_entries, 0u) << trial;
    EXPECT_EQ(res.status, sim_status::gathered) << trial;
  }
}

TEST(Engine, LocalFramesProduceSameGathering) {
  rng seed_src(71);
  const auto pts = workloads::uniform_random(6, seed_src);
  sim_options opts;
  opts.local_frames = true;
  const auto res = run_simple(pts, opts);
  EXPECT_EQ(res.status, sim_status::gathered);
}

TEST(Engine, DeltaGuaranteeRespected) {
  // Minimal movement: robots crawl by delta but still gather.
  auto sched = make_synchronous();
  auto move = make_minimal_movement();
  auto crash = make_no_crash();
  sim_options opts;
  opts.delta_fraction = 0.1;
  const auto res = run_with({{0, 0}, {0, 0}, {0, 0}, {4, 0}, {1, 5}}, *sched,
                            *move, *crash, opts);
  EXPECT_EQ(res.status, sim_status::gathered);
  EXPECT_GT(res.rounds, 3u);  // cannot teleport
}

TEST(Engine, TraceRecordsRounds) {
  sim_options opts;
  opts.record_trace = true;
  const auto res = run_simple({{0, 0}, {0, 0}, {0, 0}, {4, 0}}, opts);
  EXPECT_EQ(res.status, sim_status::gathered);
  EXPECT_FALSE(res.trace.empty());
  EXPECT_EQ(res.trace.front().positions.size(), 4u);
}

TEST(Engine, ClassHistoryRecorded) {
  const auto res = run_simple({{0, 0}, {0, 0}, {0, 0}, {4, 0}});
  ASSERT_FALSE(res.class_history.empty());
  EXPECT_EQ(res.class_history.front(), config::config_class::multiple);
}

// ---------------------------------------------------------------------------
// Seed-stability golden cells.
//
// These pin the exact (status, rounds) outcome of the engine + RNG stack for
// a handful of fixed (workload, n, f, seed) cells, under the same recipe the
// campaign runner uses (fair-random scheduler, random-stop movement, random
// crashes over a 40-round horizon, wait-freeness checking on).  If any
// refactor of the engine, the schedulers, the adversaries, the workload
// generators or sim::rng changes simulation outcomes, this fails loudly
// instead of silently invalidating every recorded experiment.  Update the
// table ONLY for an intentional, documented behavior change.

struct golden_cell {
  const char* workload;
  std::size_t n;
  std::size_t f;
  std::uint64_t seed;
  sim_status status;
  std::size_t rounds;
};

sim_result run_golden(const golden_cell& cell) {
  rng workload_rng(cell.seed);
  std::vector<vec2> pts;
  const std::string name = cell.workload;
  if (name == "uniform") {
    pts = workloads::uniform_random(cell.n, workload_rng);
  } else if (name == "majority") {
    pts = workloads::with_majority(
        cell.n, std::max<std::size_t>(2, cell.n / 3), workload_rng);
  } else if (name == "linear-1w") {
    pts = workloads::linear_unique_weber(cell.n, workload_rng);
  } else if (name == "polygon") {
    pts = workloads::regular_polygon(cell.n);
  } else if (name == "grid") {
    pts = workloads::jittered_grid(cell.n, 0.2, workload_rng);
  } else {
    ADD_FAILURE() << "unknown golden workload " << name;
  }
  auto sched = make_fair_random();
  auto move = make_random_stop();
  auto crash = cell.f == 0 ? make_no_crash() : make_random_crashes(cell.f, 40);
  sim_options opts;
  opts.seed = cell.seed;
  opts.check_wait_freeness = true;
  return run_with(pts, *sched, *move, *crash, opts);
}

TEST(Engine, SeedStabilityGolden) {
  const golden_cell cells[] = {
      {"uniform", 8, 0, 101, sim_status::gathered, 8},
      {"uniform", 8, 3, 202, sim_status::gathered, 12},
      {"majority", 10, 2, 303, sim_status::gathered, 10},
      {"linear-1w", 7, 0, 404, sim_status::gathered, 13},
      {"polygon", 6, 5, 505, sim_status::gathered, 13},
      {"grid", 9, 4, 606, sim_status::gathered, 10},
  };
  for (const auto& cell : cells) {
    SCOPED_TRACE(std::string(cell.workload) + " n=" + std::to_string(cell.n) +
                 " f=" + std::to_string(cell.f) +
                 " seed=" + std::to_string(cell.seed));
    const auto res = run_golden(cell);
    EXPECT_EQ(res.status, cell.status);
    EXPECT_EQ(res.rounds, cell.rounds);
    EXPECT_EQ(res.wait_free_violations, 0u);
    EXPECT_EQ(res.bivalent_entries, 0u);
  }
}

TEST(Metrics, SpreadAndSum) {
  const std::vector<vec2> pts = {{0, 0}, {3, 4}, {0, 1}};
  EXPECT_DOUBLE_EQ(spread(pts), 5.0);
  EXPECT_GT(sum_pairwise(pts), 5.0);
}

TEST(Metrics, LiveSpreadIgnoresCrashed) {
  const std::vector<vec2> pts = {{0, 0}, {100, 0}, {0, 1}};
  const std::vector<std::uint8_t> live = {1, 0, 1};
  EXPECT_DOUBLE_EQ(live_spread(pts, live), 1.0);
}

TEST(Metrics, TransitionsAllowedOnLegalHistory) {
  using cc = config::config_class;
  EXPECT_TRUE(transitions_allowed(
      {cc::asymmetric, cc::asymmetric, cc::multiple, cc::multiple}));
  EXPECT_TRUE(transitions_allowed({cc::linear_2w, cc::asymmetric, cc::multiple}));
  EXPECT_FALSE(transitions_allowed({cc::multiple, cc::asymmetric}));
  EXPECT_FALSE(transitions_allowed({cc::linear_2w, cc::bivalent}));
}

TEST(Metrics, TransitionMatrixCounts) {
  using cc = config::config_class;
  const auto m = count_transitions({cc::asymmetric, cc::multiple, cc::multiple});
  EXPECT_EQ(m[static_cast<std::size_t>(cc::asymmetric)]
             [static_cast<std::size_t>(cc::multiple)], 1u);
  EXPECT_EQ(m[static_cast<std::size_t>(cc::multiple)]
             [static_cast<std::size_t>(cc::multiple)], 1u);
}

TEST(Trace, AsciiPlotShowsMultiplicity) {
  const std::vector<vec2> pts = {{0, 0}, {0, 0}, {9, 9}};
  const std::vector<std::uint8_t> live = {1, 1, 1};
  const std::string plot = ascii_plot(pts, live, 20, 10);
  EXPECT_NE(plot.find('2'), std::string::npos);
  EXPECT_NE(plot.find('1'), std::string::npos);
}

TEST(Trace, CsvHasHeaderAndRows) {
  sim_options opts;
  opts.record_trace = true;
  const auto res = run_simple({{0, 0}, {0, 0}, {0, 0}, {4, 0}}, opts);
  std::ostringstream os;
  write_trace_csv(os, res);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("round,robot,x,y"), std::string::npos);
  EXPECT_GT(std::count(csv.begin(), csv.end(), '\n'), 4);
}

}  // namespace
}  // namespace gather::sim
