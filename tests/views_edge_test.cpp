// Edge cases of the view machinery (Def. 2): the center-reference rule,
// scale invariance of normalized distances, multiplicity entries, and the
// diametral seam.
#include <gtest/gtest.h>

#include <cmath>

#include "config/views.h"
#include "geometry/angles.h"

namespace gather::config {
namespace {

using geom::vec2;

TEST(ViewsEdge, CenterRobotUsesMaximalPeerReference) {
  // Robot at the sec center of an asymmetric set: its view must be
  // well-defined and stable under re-expression.
  const std::vector<vec2> base = {{0, 0}, {2, 0}, {-2, 0}, {0, 2}, {0.5, -1.9}};
  const configuration c1(base);
  const view v1 = view_of(c1, {0, 0});
  EXPECT_EQ(v1.size(), 5u);

  std::vector<vec2> rotated;
  for (const vec2& p : base) rotated.push_back(geom::rotated_ccw(p, 1.2345));
  const configuration c2(rotated);
  const view v2 = view_of(c2, {0, 0});
  EXPECT_EQ(compare_views(v1, v2, c1.tolerance()), 0);
}

TEST(ViewsEdge, NormalizedDistancesAreScaleInvariant) {
  const std::vector<vec2> base = {{0, 0}, {4, 0}, {1, 3}};
  const configuration small(base);
  std::vector<vec2> big;
  for (const vec2& p : base) big.push_back(1000.0 * p);
  const configuration large(big);
  const view vs = view_of(small, {0, 0});
  const view vl = view_of(large, {0, 0});
  EXPECT_EQ(compare_views(vs, vl, small.tolerance()), 0);
}

TEST(ViewsEdge, MultiplicityDuplicatesEntries) {
  const configuration c({{0, 0}, {4, 0}, {4, 0}, {4, 0}});
  const view v = view_of(c, {0, 0});
  ASSERT_EQ(v.size(), 4u);
  // Entries 1..3 are the stacked point, identical.
  EXPECT_EQ(v[1].angle, v[2].angle);
  EXPECT_EQ(v[2].dist, v[3].dist);
}

TEST(ViewsEdge, GatheredConfigurationTrivialView) {
  const configuration c({{1, 1}, {1, 1}});
  const view v = view_of(c, {1, 1});
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0].dist, 0.0);
  EXPECT_EQ(v[1].dist, 0.0);
}

TEST(ViewsEdge, DiametralPointReadsAngleZero) {
  // The robot opposite the observer (through the sec center) sits exactly on
  // the reference ray and must read angle exactly 0, not ~2*pi.
  const configuration c({{1, 0}, {-1, 0}, {0, 1}, {0, -1}});
  const view v = view_of(c, {1, 0});
  bool found_zero = false;
  for (const polar_entry& e : v) {
    // The canonical rotation writes an exact 0.0 for the reference angle.
    if (e.dist > 0.0 && e.angle == 0.0) found_zero = true;  // gather-lint: allow(R3)
    EXPECT_LT(e.angle, geom::two_pi - 1e-6);
  }
  EXPECT_TRUE(found_zero);
}

TEST(ViewsEdge, ViewClassesOfStackedSquare) {
  // Square with every corner doubled: still 4-fold symmetric; classes of 4.
  std::vector<vec2> pts;
  for (int k = 0; k < 4; ++k) {
    const double a = geom::two_pi * k / 4.0 + 0.3;
    const vec2 p{std::cos(a), std::sin(a)};
    pts.push_back(p);
    pts.push_back(p);
  }
  const configuration c(pts);
  EXPECT_EQ(symmetry(c), 4);
  for (const auto& cls : view_classes(c)) {
    EXPECT_EQ(cls.size(), 4u);
  }
}

TEST(ViewsEdge, UnequalStacksBreakSymmetry) {
  // Same square but one corner triple-stacked: symmetry collapses to 1.
  std::vector<vec2> pts;
  for (int k = 0; k < 4; ++k) {
    const double a = geom::two_pi * k / 4.0 + 0.3;
    const vec2 p{std::cos(a), std::sin(a)};
    pts.push_back(p);
    if (k == 0) {
      pts.push_back(p);
      pts.push_back(p);
    }
  }
  EXPECT_EQ(symmetry(configuration(pts)), 1);
}

}  // namespace
}  // namespace gather::config
