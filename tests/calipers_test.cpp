// Rotating-calipers tests: diameter and width against brute force and
// against known shapes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "geometry/calipers.h"
#include "geometry/angles.h"
#include "sim/rng.h"
#include "workloads/generators.h"

namespace gather::geom {
namespace {

double brute_diameter(const std::vector<vec2>& pts) {
  double best = 0.0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      best = std::max(best, distance(pts[i], pts[j]));
    }
  }
  return best;
}

TEST(Calipers, SquareDiameterIsDiagonal) {
  const std::vector<vec2> pts = {{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  const tol t = tol::for_points(pts);
  EXPECT_NEAR(diameter(pts, t), 2.0 * std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(width(pts, t), 2.0, 1e-12);
}

TEST(Calipers, DegenerateInputs) {
  tol t;
  EXPECT_DOUBLE_EQ(diameter(std::vector<vec2>{}, t), 0.0);
  EXPECT_DOUBLE_EQ(diameter(std::vector<vec2>{{1, 1}}, t), 0.0);
  EXPECT_DOUBLE_EQ(diameter(std::vector<vec2>{{0, 0}, {3, 4}}, t), 5.0);
  EXPECT_DOUBLE_EQ(width(std::vector<vec2>{{0, 0}, {1, 1}, {2, 2}}, t), 0.0);
}

TEST(Calipers, MatchesBruteForceOnRandomClouds) {
  sim::rng r(77);
  for (int trial = 0; trial < 50; ++trial) {
    const auto pts = workloads::uniform_random(3 + trial % 40, r);
    const tol t = tol::for_points(pts);
    EXPECT_NEAR(diameter(pts, t), brute_diameter(pts), 1e-9) << trial;
  }
}

TEST(Calipers, PairEndpointsAreRealPoints) {
  sim::rng r(78);
  const auto pts = workloads::uniform_random(20, r);
  const tol t = tol::for_points(pts);
  const auto pair = diameter_pair(pts, t);
  const auto is_member = [&](vec2 p) {
    return std::any_of(pts.begin(), pts.end(),
                       [&](vec2 q) { return q == p; });
  };
  EXPECT_TRUE(is_member(pair.a));
  EXPECT_TRUE(is_member(pair.b));
  EXPECT_DOUBLE_EQ(pair.distance, distance(pair.a, pair.b));
}

TEST(Calipers, WidthOfRegularPolygonMatchesFormula) {
  // Width of a regular hexagon with circumradius 1 is sqrt(3) (apothem * 2).
  const auto pts = workloads::regular_polygon(6);
  const tol t = tol::for_points(pts);
  EXPECT_NEAR(width(pts, t), std::sqrt(3.0), 1e-9);
}

TEST(Calipers, CollinearWidthZeroDiameterSpan) {
  const std::vector<vec2> pts = {{0, 0}, {1, 2}, {3, 6}, {-1, -2}};
  const tol t = tol::for_points(pts);
  EXPECT_NEAR(width(pts, t), 0.0, 1e-9);
  EXPECT_NEAR(diameter(pts, t), distance({-1, -2}, {3, 6}), 1e-12);
}

}  // namespace
}  // namespace gather::geom
