// Test-side spec builders: fold the positional (points, algorithm,
// adversaries, options) piles the suites naturally produce into a sim_spec
// and execute it through the public run()/run_async() entry points.  The
// library's deprecated positional shims are gone; these helpers keep the
// call sites compact without reintroducing positional entry points in the
// library itself.
#pragma once

#include <utility>
#include <vector>

#include "sim/sim.h"

namespace gather::sim {

inline sim_result run_sim(std::vector<geom::vec2> pts,
                          const core::gathering_algorithm& algo,
                          activation_scheduler& sched, movement_adversary& move,
                          crash_policy& crash, const sim_options& opts = {}) {
  sim_spec spec;
  spec.initial = std::move(pts);
  spec.algorithm = &algo;
  spec.scheduler = &sched;
  spec.movement = &move;
  spec.crash = &crash;
  spec.options = opts;
  return run(spec);
}

inline async_result run_async_sim(std::vector<geom::vec2> pts,
                                  const core::gathering_algorithm& algo,
                                  movement_adversary& move, crash_policy& crash,
                                  const async_options& opts = {}) {
  sim_spec spec;
  spec.initial = std::move(pts);
  spec.algorithm = &algo;
  spec.movement = &move;
  spec.crash = &crash;
  spec.async = opts;
  return run_async(spec);
}

}  // namespace gather::sim
