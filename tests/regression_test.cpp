// Regression corpus: configurations that exposed real defects during the
// development of this reproduction, pinned forever.  Each test documents the
// defect it guards against.
#include <gtest/gtest.h>

#include <cmath>

#include "config/config.h"
#include "core/core.h"
#include "geometry/angles.h"
#include "sim/sim.h"
#include "sim_support.h"

namespace gather {
namespace {

using config::config_class;
using config::configuration;
using geom::vec2;

const core::wait_free_gather kAlgo;

// Defect 1: views of a 4-fold symmetric two-ring configuration split into
// classes {2, 4, 2} instead of {4, 4} -- a point diametrically opposite the
// observer (exactly on the reference ray towards the sec center) read as
// angle ~2*pi in one twin's view and ~0 in another's, scrambling the
// lexicographic order.  Fixed by snapping near-axis directions to exactly 0.
TEST(Regression, DiametralViewSeam) {
  std::vector<vec2> pts;
  for (int ring = 0; ring < 2; ++ring) {
    const double r = ring == 0 ? 1.8220157557375897 : 2.9423262965060921;
    const double phase = ring == 0 ? 0.6755108588560398 : 3.017237659043032;
    for (int k = 0; k < 4; ++k) {
      const double a = phase + k * geom::two_pi / 4.0;
      pts.push_back({r * std::cos(a), r * std::sin(a)});
    }
  }
  const configuration c(pts);
  EXPECT_EQ(config::symmetry(c), 4);
  for (const auto& cls : config::view_classes(c)) {
    EXPECT_EQ(cls.size(), 4u);
  }
}

// Defect 2: the geometric median of this 5-point set is the data point
// (0,0), but the over-relaxed Weiszfeld iteration settled into a 2-cycle
// around a non-optimal point and Newton could not converge onto the kink.
// Fixed by testing the subgradient optimality condition at every data point
// first.
TEST(Regression, MedianAtDataPoint) {
  const configuration c({{0, 0}, {5, 0}, {1, 3}, {-2, 1}, {0.5, -2.5}});
  const auto med = config::geometric_median_weiszfeld(c);
  ASSERT_TRUE(med.has_value());
  EXPECT_EQ(*med, (vec2{0, 0}));
}

// Defect 3: a regular pentagon mid-flight towards its center (robots at
// very different radii on exact 72-degree rays) was misclassified as A for
// one round because the plain Weiszfeld result was ~1e-4 off the center and
// the angular periodicity check failed.  Fixed by the Newton polish.
TEST(Regression, ShrunkenPentagonStaysQR) {
  const std::vector<vec2> pts = {
      {0.4827152814647121, 0.0},
      {0.044528888187503946, 0.13704582610339866},
      {-0.16157732206053088, 0.11739279603807995},
      {-0.13397959912753771, -0.097341876651335257},
      {0.093167172205382939, -0.28673907210179073}};
  // Re-express on exact rays to remove transcription noise: the property we
  // pin is that radii-perturbed points on periodic rays classify as QR.
  std::vector<vec2> clean;
  const double radii[5] = {0.48, 0.144, 0.2, 0.166, 0.3};
  for (int k = 0; k < 5; ++k) {
    const double a = -geom::two_pi * k / 5.0;  // clockwise pentagon rays
    clean.push_back({radii[k] * std::cos(a), radii[k] * std::sin(a)});
  }
  for (const auto& instance : {pts, clean}) {
    const auto cls = config::classify(configuration(instance));
    EXPECT_EQ(cls.cls, config_class::quasi_regular);
    if (cls.target) {
      EXPECT_NEAR(cls.target->x, 0.0, 1e-6);
      EXPECT_NEAR(cls.target->y, 0.0, 1e-6);
    }
  }
}

// Defect 4: once a swarm had converged numerically (diameter ~1e-15 around
// coordinates of magnitude ~1), the spread-relative tolerance stopped
// identifying co-located robots and runs never terminated.  Fixed by the
// magnitude-based absolute tolerance floor.
TEST(Regression, ConvergedSwarmReadsGathered) {
  std::vector<vec2> pts;
  for (int i = 0; i < 5; ++i) {
    pts.push_back({0.7071067811865476 + i * 3e-16, 0.5 - i * 2e-16});
  }
  const configuration c(pts);
  EXPECT_TRUE(c.is_gathered());
}

// Defect 5: text round-trips lost precision (streams default to 6
// significant digits), so replayed configurations classified differently.
// Fixed by writing max_digits10.  Pinned via a value whose 6-digit rounding
// moves it across a co-location boundary.
TEST(Regression, PointsRoundTripPrecision) {
  const double x = 1.0000001234567899;
  std::stringstream ss;
  ss.precision(17);
  ss << x;
  double back = 0.0;
  ss >> back;
  EXPECT_EQ(back, x);
}

// Defect 6: the L2W rule froze when both endpoint robots crashed *and* a
// middle robot sat exactly at the segment center (its destination equalled
// its position, which is correct -- the guard is that the engine must not
// declare a premature fixpoint while other middle robots still move).
TEST(Regression, L2WCenterOccupiedStillProgresses) {
  // Even count, distinct medians (4 and 6), with a robot already at the
  // segment center x = 6.
  const std::vector<vec2> pts = {{0, 0}, {2, 0}, {6, 0}, {10, 0}, {12, 0}, {4, 0}};
  const configuration c(pts);
  ASSERT_EQ(config::classify(c).cls, config_class::linear_2w);
  auto sched = sim::make_fair_random();
  auto move = sim::make_random_stop();
  auto crash = sim::make_scheduled_crashes({{0, 0}, {0, 4}});
  sim::sim_options opts;
  const auto res = sim::run_sim(pts, kAlgo, *sched, *move, *crash, opts);
  EXPECT_EQ(res.status, sim::sim_status::gathered);
  EXPECT_NEAR(res.gather_point.x, 6.0, 1e-6);
}

// Defect 7: near-degenerate side-steps (angular gap close to the angle
// tolerance) produced commanded displacements below the co-location
// tolerance and were miscounted as "stationary", tripping the Lemma 5.1
// online check.  Quiescence is now measured at a finer scale.
TEST(Regression, TinySideStepIsNotStationary) {
  // Two rays from the elected point separated by ~1e-6 rad.
  std::vector<vec2> pts = {{0, 0}, {0, 0}, {0, 0}};
  pts.push_back({10.0, 0.0});
  pts.push_back(geom::rotated_cw_about({12.0, 0.0}, {0, 0}, 1e-6));
  pts.push_back({14.0, 1e-5});  // blocker structure on a third near ray
  const configuration c(pts);
  if (config::classify(c).cls != config_class::multiple) GTEST_SKIP();
  const auto stat = core::stationary_locations(c, kAlgo);
  EXPECT_LE(stat.size(), 1u);
  EXPECT_TRUE(core::satisfies_wait_freeness(c, kAlgo));
}

}  // namespace
}  // namespace gather
