#include <gtest/gtest.h>

#include <cmath>

#include "geometry/geometry.h"

namespace gather::geom {
namespace {

constexpr double kEps = 1e-12;

TEST(Vec2, Arithmetic) {
  const vec2 a{1.0, 2.0}, b{3.0, -1.0};
  EXPECT_EQ((a + b), (vec2{4.0, 1.0}));
  EXPECT_EQ((a - b), (vec2{-2.0, 3.0}));
  EXPECT_EQ((2.0 * a), (vec2{2.0, 4.0}));
  EXPECT_EQ((a / 2.0), (vec2{0.5, 1.0}));
  EXPECT_EQ(-a, (vec2{-1.0, -2.0}));
}

TEST(Vec2, DotAndCross) {
  EXPECT_DOUBLE_EQ(dot({1, 0}, {0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(dot({2, 3}, {4, 5}), 23.0);
  EXPECT_DOUBLE_EQ(cross({1, 0}, {0, 1}), 1.0);   // ccw positive
  EXPECT_DOUBLE_EQ(cross({0, 1}, {1, 0}), -1.0);  // cw negative
}

TEST(Vec2, NormsAndDistance) {
  EXPECT_DOUBLE_EQ(norm({3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(norm_sq({3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {4, 5}), 5.0);
  const vec2 u = normalized({3, 4});
  EXPECT_NEAR(norm(u), 1.0, kEps);
}

TEST(Vec2, LerpAndMidpoint) {
  EXPECT_EQ(lerp({0, 0}, {10, 20}, 0.5), (vec2{5, 10}));
  EXPECT_EQ(lerp({0, 0}, {10, 20}, 0.0), (vec2{0, 0}));
  EXPECT_EQ(lerp({0, 0}, {10, 20}, 1.0), (vec2{10, 20}));
  EXPECT_EQ(midpoint({-2, 0}, {2, 6}), (vec2{0, 3}));
}

TEST(Vec2, RotationCcw) {
  const vec2 r = rotated_ccw({1, 0}, pi / 2);
  EXPECT_NEAR(r.x, 0.0, kEps);
  EXPECT_NEAR(r.y, 1.0, kEps);
}

TEST(Angles, NormAngle) {
  EXPECT_NEAR(norm_angle(0.0), 0.0, kEps);
  EXPECT_NEAR(norm_angle(two_pi + 0.5), 0.5, kEps);
  EXPECT_NEAR(norm_angle(-0.5), two_pi - 0.5, kEps);
  EXPECT_NEAR(norm_angle(5 * two_pi), 0.0, kEps);
  EXPECT_LT(norm_angle(-1e-18), two_pi);
  EXPECT_GE(norm_angle(-1e-18), 0.0);
}

TEST(Angles, CwAngleQuadrants) {
  const vec2 ref{1, 0};
  EXPECT_NEAR(cw_angle(ref, {1, 0}), 0.0, kEps);
  // Clockwise from +x: -y direction is a quarter turn clockwise.
  EXPECT_NEAR(cw_angle(ref, {0, -1}), pi / 2, kEps);
  EXPECT_NEAR(cw_angle(ref, {-1, 0}), pi, kEps);
  EXPECT_NEAR(cw_angle(ref, {0, 1}), 3 * pi / 2, kEps);
}

TEST(Angles, CwAngleAtVertex) {
  // At center c, from u to v going clockwise.
  const vec2 c{1, 1};
  EXPECT_NEAR(cw_angle_at({2, 1}, c, {1, 0}), pi / 2, kEps);
  EXPECT_NEAR(cw_angle_at({2, 1}, c, {1, 2}), 3 * pi / 2, kEps);
}

TEST(Angles, RotatedCwAbout) {
  const vec2 p = rotated_cw_about({2, 1}, {1, 1}, pi / 2);
  EXPECT_NEAR(p.x, 1.0, kEps);
  EXPECT_NEAR(p.y, 0.0, kEps);
}

TEST(Angles, RotationInverses) {
  const vec2 p{3.7, -2.2}, c{0.5, 0.1};
  const vec2 q = rotated_ccw_about(rotated_cw_about(p, c, 1.234), c, 1.234);
  EXPECT_NEAR(q.x, p.x, 1e-10);
  EXPECT_NEAR(q.y, p.y, 1e-10);
}

TEST(Angles, AngularSeparation) {
  EXPECT_NEAR(angular_separation({1, 0}, {0, 1}), pi / 2, kEps);
  EXPECT_NEAR(angular_separation({1, 0}, {-1, 0}), pi, kEps);
  EXPECT_NEAR(angular_separation({1, 0}, {1, 0}), 0.0, kEps);
}

TEST(Tolerance, LengthComparisons) {
  tol t;
  t.scale = 100.0;
  EXPECT_TRUE(t.len_eq(1.0, 1.0 + 1e-8));   // 1e-8 < 100 * 1e-9
  EXPECT_FALSE(t.len_eq(1.0, 1.0 + 1e-6));
  EXPECT_TRUE(t.len_lt(1.0, 2.0));
  EXPECT_FALSE(t.len_lt(1.0, 1.0 + 1e-8));
  EXPECT_EQ(t.len_cmp(1.0, 1.0 + 1e-8), 0);
  EXPECT_EQ(t.len_cmp(1.0, 2.0), -1);
  EXPECT_EQ(t.len_cmp(2.0, 1.0), 1);
}

TEST(Tolerance, AngleComparisons) {
  tol t;
  EXPECT_TRUE(t.ang_eq(1.0, 1.0 + 1e-10));
  EXPECT_FALSE(t.ang_eq(1.0, 1.001));
  EXPECT_TRUE(t.ang_eq_mod(1e-10, two_pi - 1e-10, two_pi));
  EXPECT_FALSE(t.ang_eq_mod(0.1, two_pi - 0.1, two_pi));
}

TEST(Tolerance, ForPoints) {
  const std::vector<vec2> pts = {{0, 0}, {10, 0}, {0, 4}};
  const tol t = tol::for_points(pts);
  EXPECT_DOUBLE_EQ(t.scale, 10.0);
  EXPECT_TRUE(t.same_point({0, 0}, {1e-9, 0}));
  EXPECT_FALSE(t.same_point({0, 0}, {1e-6, 0}));
}

TEST(Predicates, Orientation) {
  tol t;
  EXPECT_EQ(orientation({0, 0}, {1, 0}, {0, 1}, t), 1);   // ccw
  EXPECT_EQ(orientation({0, 0}, {0, 1}, {1, 0}, t), -1);  // cw
  EXPECT_EQ(orientation({0, 0}, {1, 1}, {2, 2}, t), 0);   // collinear
  EXPECT_EQ(orientation({0, 0}, {1, 1}, {2, 2 + 1e-13}, t), 0);
}

TEST(Predicates, OrientationScaleInvariance) {
  tol t;
  for (double s : {1e-6, 1.0, 1e6}) {
    EXPECT_EQ(orientation({0, 0}, {s, 0}, {0, s}, t), 1) << s;
    EXPECT_EQ(orientation({0, 0}, {s, s}, {2 * s, 2 * s}, t), 0) << s;
  }
}

TEST(Predicates, AllCollinear) {
  tol t;
  const std::vector<vec2> line = {{0, 0}, {1, 2}, {2, 4}, {-3, -6}};
  EXPECT_TRUE(all_collinear(line, t));
  const std::vector<vec2> bent = {{0, 0}, {1, 2}, {2, 4.1}};
  EXPECT_FALSE(all_collinear(bent, t));
  const std::vector<vec2> two = {{0, 0}, {5, 5}};
  EXPECT_TRUE(all_collinear(two, t));
  const std::vector<vec2> same = {{1, 1}, {1, 1}, {1, 1}};
  EXPECT_TRUE(all_collinear(same, t));
}

TEST(Predicates, DistanceToLine) {
  EXPECT_NEAR(distance_to_line({0, 1}, {-1, 0}, {1, 0}), 1.0, kEps);
  EXPECT_NEAR(distance_to_line({5, 0}, {-1, 0}, {1, 0}), 0.0, kEps);
}

TEST(Predicates, OpenSegment) {
  tol t;
  EXPECT_TRUE(in_open_segment({1, 1}, {0, 0}, {2, 2}, t));
  EXPECT_FALSE(in_open_segment({0, 0}, {0, 0}, {2, 2}, t));  // endpoint
  EXPECT_FALSE(in_open_segment({2, 2}, {0, 0}, {2, 2}, t));  // endpoint
  EXPECT_FALSE(in_open_segment({3, 3}, {0, 0}, {2, 2}, t));  // beyond
  EXPECT_FALSE(in_open_segment({1, 1.5}, {0, 0}, {2, 2}, t));  // off line
}

TEST(Predicates, ClosedSegment) {
  tol t;
  EXPECT_TRUE(in_closed_segment({0, 0}, {0, 0}, {2, 2}, t));
  EXPECT_TRUE(in_closed_segment({1, 1}, {0, 0}, {2, 2}, t));
  EXPECT_FALSE(in_closed_segment({-1, -1}, {0, 0}, {2, 2}, t));
}

TEST(Predicates, HalfLine) {
  tol t;
  // HF(u, v): starts at u (exclusive), through v, to infinity.
  EXPECT_TRUE(on_half_line({1, 0}, {0, 0}, {2, 0}, t));
  EXPECT_TRUE(on_half_line({5, 0}, {0, 0}, {2, 0}, t));
  EXPECT_FALSE(on_half_line({0, 0}, {0, 0}, {2, 0}, t));   // u excluded
  EXPECT_FALSE(on_half_line({-1, 0}, {0, 0}, {2, 0}, t));  // behind u
  EXPECT_FALSE(on_half_line({1, 1}, {0, 0}, {2, 0}, t));   // off line
}

TEST(ConvexHull, Square) {
  tol t;
  const std::vector<vec2> pts = {{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}};
  const auto hull = convex_hull(pts, t);
  EXPECT_EQ(hull.size(), 4u);
}

TEST(ConvexHull, CollinearInput) {
  tol t;
  const std::vector<vec2> pts = {{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  const auto hull = convex_hull(pts, t);
  ASSERT_EQ(hull.size(), 2u);
  EXPECT_EQ(hull.front(), (vec2{0, 0}));
  EXPECT_EQ(hull.back(), (vec2{3, 3}));
}

TEST(ConvexHull, DuplicatesCollapse) {
  tol t;
  const std::vector<vec2> pts = {{0, 0}, {0, 0}, {1, 0}, {1, 0}, {0, 1}};
  EXPECT_EQ(convex_hull(pts, t).size(), 3u);
}

TEST(ConvexHull, VertexAndContainment) {
  tol t;
  const std::vector<vec2> pts = {{0, 0}, {4, 0}, {4, 4}, {0, 4}, {2, 2}};
  EXPECT_TRUE(is_hull_vertex({0, 0}, pts, t));
  EXPECT_FALSE(is_hull_vertex({2, 2}, pts, t));
  EXPECT_TRUE(in_hull({2, 2}, pts, t));
  EXPECT_TRUE(in_hull({0, 2}, pts, t));  // on boundary
  EXPECT_FALSE(in_hull({5, 2}, pts, t));
}

TEST(EnclosingCircle, TwoPoints) {
  const circle c = circle_from_two({0, 0}, {2, 0});
  EXPECT_EQ(c.center, (vec2{1, 0}));
  EXPECT_DOUBLE_EQ(c.radius, 1.0);
}

TEST(EnclosingCircle, ThreePoints) {
  tol t;
  const circle c = circle_from_three({1, 0}, {-1, 0}, {0, 1}, t);
  EXPECT_NEAR(c.center.x, 0.0, kEps);
  EXPECT_NEAR(c.center.y, 0.0, kEps);
  EXPECT_NEAR(c.radius, 1.0, kEps);
}

TEST(EnclosingCircle, CollinearTriple) {
  tol t;
  const circle c = circle_from_three({0, 0}, {1, 0}, {4, 0}, t);
  EXPECT_NEAR(c.center.x, 2.0, kEps);
  EXPECT_NEAR(c.radius, 2.0, kEps);
}

TEST(EnclosingCircle, SquareSec) {
  tol t;
  const std::vector<vec2> pts = {{1, 1}, {-1, 1}, {-1, -1}, {1, -1}};
  const circle c = smallest_enclosing_circle(pts, t);
  EXPECT_NEAR(c.center.x, 0.0, 1e-9);
  EXPECT_NEAR(c.center.y, 0.0, 1e-9);
  EXPECT_NEAR(c.radius, std::sqrt(2.0), 1e-9);
}

TEST(EnclosingCircle, AllPointsContained) {
  tol t;
  std::vector<vec2> pts;
  for (int i = 0; i < 50; ++i) {
    pts.push_back({std::cos(i * 0.7) * (i % 7), std::sin(i * 1.3) * (i % 5)});
  }
  const circle c = smallest_enclosing_circle(pts, t);
  t.scale = 20.0;
  for (const vec2& p : pts) EXPECT_TRUE(c.contains(p, t));
}

TEST(EnclosingCircle, InteriorPointIgnored) {
  tol t;
  const std::vector<vec2> pts = {{-2, 0}, {2, 0}, {0, 0.5}};
  const circle c = smallest_enclosing_circle(pts, t);
  EXPECT_NEAR(c.radius, 2.0, 1e-9);
}

TEST(Similarity, RoundTrip) {
  const similarity f(1.1, 2.5, {3, -4});
  const vec2 p{0.7, -1.9};
  const vec2 q = f.invert(f.apply(p));
  EXPECT_NEAR(q.x, p.x, 1e-10);
  EXPECT_NEAR(q.y, p.y, 1e-10);
}

TEST(Similarity, PreservesChirality) {
  const similarity f(2.3, 0.5, {1, 1});
  // Orientation of a ccw triangle stays ccw under a direct similarity.
  const vec2 a = f.apply({0, 0}), b = f.apply({1, 0}), c = f.apply({0, 1});
  EXPECT_GT(cross(b - a, c - a), 0.0);
}

TEST(Similarity, ScalesDistances) {
  const similarity f(0.4, 3.0, {0, 0});
  EXPECT_NEAR(distance(f.apply({0, 0}), f.apply({1, 0})), 3.0, 1e-10);
}

TEST(Similarity, RejectsNonPositiveScale) {
  EXPECT_THROW(similarity(0.0, 0.0, {0, 0}), std::invalid_argument);
  EXPECT_THROW(similarity(0.0, -1.0, {0, 0}), std::invalid_argument);
}

}  // namespace
}  // namespace gather::geom
