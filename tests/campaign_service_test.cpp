// Tier-1 coverage for the campaign service layer: shard planning
// (runner/shard_plan.h), binary encodings (obs/binio.h, obs/columnar.h,
// obs/serialize.h), checkpoint round-trips and corruption rejection
// (runner/checkpoint.h), columnar result persistence and merging
// (runner/result_columns.h), the flat JSON protocol parser
// (util/flat_json.h), and the determinism contract end to end: an
// interrupted, resumed, sharded campaign folds back into the exact bytes of
// an uninterrupted single-process run.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "runner/runner.h"
#include "util/flat_json.h"

namespace gather::runner {
namespace {

// -------------------------------------------------------------- shard plan

TEST(ServiceShards, SplitsEvenlyWithRemainderToTheFront) {
  // 10 cells over 3 shards: sizes 4, 3, 3 -- contiguous and exhaustive.
  EXPECT_EQ(shard_cells(10, {0, 3}), (cell_range{0, 4}));
  EXPECT_EQ(shard_cells(10, {1, 3}), (cell_range{4, 7}));
  EXPECT_EQ(shard_cells(10, {2, 3}), (cell_range{7, 10}));
}

TEST(ServiceShards, PlanCoversEveryCellExactlyOnce) {
  for (std::size_t total : {0u, 1u, 7u, 16u, 100u}) {
    for (std::size_t count : {1u, 2u, 3u, 5u, 16u}) {
      const auto plan = plan_shards(total, count);
      ASSERT_EQ(plan.size(), count);
      std::size_t covered = 0;
      for (std::size_t k = 0; k < count; ++k) {
        EXPECT_EQ(plan[k].begin, covered) << total << "/" << count;
        EXPECT_LE(plan[k].begin, plan[k].end);
        covered = plan[k].end;
      }
      EXPECT_EQ(covered, total);
    }
  }
}

TEST(ServiceShards, MoreShardsThanCellsLeavesEmptyTails) {
  const auto plan = plan_shards(2, 4);
  EXPECT_EQ(plan[0].size(), 1u);
  EXPECT_EQ(plan[1].size(), 1u);
  EXPECT_EQ(plan[2].size(), 0u);
  EXPECT_EQ(plan[3].size(), 0u);
}

TEST(ServiceShards, RejectsBadRefs) {
  EXPECT_THROW((void)shard_cells(10, {0, 0}), std::invalid_argument);
  EXPECT_THROW((void)shard_cells(10, {3, 3}), std::invalid_argument);
}

// ------------------------------------------------------------------- binio

TEST(ServiceBinio, ScalarsAndStringsRoundTrip) {
  obs::byte_writer w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.f64(-0.0);
  w.f64(3.14159);
  w.str("hello");
  const std::string bytes = w.finish();

  obs::byte_reader r(bytes);
  r.verify_checksum();
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  const double neg_zero = r.f64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));  // bit-exact, not value-equal
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.str(), "hello");
  r.expect_end();
}

TEST(ServiceBinio, EncodingIsLittleEndianByteForByte) {
  obs::byte_writer w;
  w.u32(0x01020304);
  const std::string& b = w.bytes();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(b[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(b[3]), 0x01);
}

TEST(ServiceBinio, CorruptionAndTruncationAreLoud) {
  obs::byte_writer w;
  w.u64(42);
  std::string bytes = w.finish();

  std::string flipped = bytes;
  flipped[3] ^= 0x20;
  obs::byte_reader bad(flipped);
  EXPECT_THROW(bad.verify_checksum(), std::runtime_error);

  obs::byte_reader shorty(std::string_view(bytes).substr(0, 6));
  EXPECT_THROW(shorty.verify_checksum(), std::runtime_error);

  obs::byte_reader ok(bytes);
  ok.verify_checksum();
  (void)ok.u32();  // only half the body consumed
  EXPECT_THROW(ok.expect_end(), std::runtime_error);
}

// ---------------------------------------------------------------- columnar

obs::columnar_table small_table() {
  obs::columnar_table t;
  t.meta["begin"] = 0;
  t.meta["end"] = 2;
  // add_column returns a stable schema index; col(index) stays valid no
  // matter how many columns are declared afterwards.
  const std::size_t index = t.add_column("index", obs::column_type::u64);
  const std::size_t name = t.add_column("name", obs::column_type::str);
  const std::size_t score = t.add_column("score", obs::column_type::f64);
  t.col(index).u64s = {0, 1};
  t.col(name).strs = {"alpha", "beta"};
  t.col(score).f64s = {1.5, -2.25};
  return t;
}

TEST(ServiceColumnar, EncodeDecodeRoundTripIsExact) {
  const obs::columnar_table t = small_table();
  const std::string bytes = t.encode();
  const obs::columnar_table back = obs::columnar_table::decode(bytes);
  EXPECT_TRUE(t.same_schema(back));
  EXPECT_EQ(back.rows(), 2u);
  EXPECT_EQ(back.meta.at("begin"), 0u);
  EXPECT_EQ(back.meta.at("end"), 2u);
  EXPECT_EQ(back.find("name")->strs[1], "beta");
  EXPECT_DOUBLE_EQ(back.find("score")->f64s[1], -2.25);
  // Byte-stable: re-encoding the decoded table reproduces the input.
  EXPECT_EQ(back.encode(), bytes);
}

TEST(ServiceColumnar, RejectsDuplicateColumnsRaggedRowsBadBytes) {
  obs::columnar_table t = small_table();
  EXPECT_THROW((void)t.add_column("index", obs::column_type::u64),
               std::invalid_argument);
  t.find("index")->u64s.push_back(9);  // now 3 rows vs 2 everywhere else
  EXPECT_THROW((void)t.rows(), std::runtime_error);

  EXPECT_THROW((void)obs::columnar_table::decode("garbage"),
               std::runtime_error);
  std::string bytes = small_table().encode();
  bytes[0] ^= 1;  // break the magic (and the checksum)
  EXPECT_THROW((void)obs::columnar_table::decode(bytes), std::runtime_error);
}

TEST(ServiceColumnar, AppendRequiresMatchingSchema) {
  obs::columnar_table a = small_table();
  obs::columnar_table b = small_table();
  a.append(b);
  EXPECT_EQ(a.rows(), 4u);
  EXPECT_EQ(a.find("name")->strs[2], "alpha");

  obs::columnar_table odd;
  odd.add_column("index", obs::column_type::f64);  // same name, wrong type
  EXPECT_THROW(a.append(odd), std::invalid_argument);
}

// ---------------------------------------------------------- metrics binary

TEST(ServiceMetrics, RegistryRoundTripsThroughBytes) {
  obs::metrics_registry m;
  m.counter("runs") += 7;
  m.gauge("peak") = 3.5;
  auto& h = m.hist("rounds", obs::pow2_bounds(4));
  h.observe(1);
  h.observe(3);
  h.observe(100);  // overflow bucket
  const std::string bytes = obs::encode_metrics(m);
  const obs::metrics_registry back = obs::decode_metrics(bytes);
  EXPECT_EQ(back.to_json(), m.to_json());
  // Byte-stable: encode(decode(bytes)) == bytes.
  EXPECT_EQ(obs::encode_metrics(back), bytes);
}

TEST(ServiceMetrics, DecodeRejectsCorruption) {
  obs::metrics_registry m;
  m.counter("x") += 1;
  std::string bytes = obs::encode_metrics(m);
  bytes[bytes.size() / 2] ^= 0x40;
  EXPECT_THROW((void)obs::decode_metrics(bytes), std::runtime_error);
  EXPECT_THROW((void)obs::decode_metrics("short"), std::runtime_error);
}

// ------------------------------------------------------------- checkpoints

grid tiny_grid() {
  grid g;
  g.workloads = {"uniform"};
  g.ns = {5};
  g.fs = {0, 2};
  g.schedulers = {"fair-random"};
  g.movements = {"random-stop"};
  g.deltas = {0.05};
  g.repeats = 2;
  g.base_seed = 11;
  return g;
}

TEST(ServiceCheckpoint, FingerprintSeparatesGridsRangesAndShapes) {
  const grid g = tiny_grid();
  grid other = g;
  other.base_seed = 12;
  EXPECT_NE(grid_fingerprint(g), grid_fingerprint(other));
  EXPECT_NE(campaign_fingerprint(g, {0, 4}, false, false),
            campaign_fingerprint(g, {0, 2}, false, false));
  EXPECT_NE(campaign_fingerprint(g, {0, 4}, true, false),
            campaign_fingerprint(g, {0, 4}, false, false));
}

checkpoint_state sample_state() {
  checkpoint_state s;
  s.fingerprint = 0xfeedULL;
  s.range = {4, 8};
  s.has_trace = true;
  checkpoint_cell c;
  c.result.spec.index = 5;
  c.result.spec.workload = "uniform";
  c.result.spec.seed = 99;
  c.result.status = sim::sim_status::gathered;
  c.result.rounds = 12;
  c.trace_jsonl = "{\"event\":\"x\"}\n";
  s.cells.push_back(c);
  return s;
}

TEST(ServiceCheckpoint, EncodeDecodeRoundTrip) {
  const checkpoint_state s = sample_state();
  const checkpoint_state back = decode_checkpoint(encode_checkpoint(s));
  EXPECT_EQ(back.fingerprint, s.fingerprint);
  EXPECT_EQ(back.range, s.range);
  EXPECT_EQ(back.has_trace, true);
  EXPECT_EQ(back.has_metrics, false);
  ASSERT_EQ(back.cells.size(), 1u);
  EXPECT_EQ(back.cells[0].result.spec.index, 5u);
  EXPECT_EQ(back.cells[0].result.rounds, 12u);
  EXPECT_EQ(back.cells[0].trace_jsonl, "{\"event\":\"x\"}\n");
}

TEST(ServiceCheckpoint, DecodeRejectsTruncationFlipsAndOutOfRangeCells) {
  const std::string bytes = encode_checkpoint(sample_state());
  for (const std::size_t cut :
       std::vector<std::size_t>{0, 8, bytes.size() - 1}) {
    EXPECT_THROW((void)decode_checkpoint(std::string_view(bytes).substr(0, cut)),
                 std::runtime_error)
        << "cut=" << cut;
  }
  for (std::size_t i = 0; i < bytes.size(); i += 7) {
    std::string flipped = bytes;
    flipped[i] ^= 0x10;
    EXPECT_THROW((void)decode_checkpoint(flipped), std::runtime_error)
        << "flip at " << i;
  }
  checkpoint_state outside = sample_state();
  outside.cells[0].result.spec.index = 3;  // below range.begin = 4
  EXPECT_THROW((void)decode_checkpoint(encode_checkpoint(outside)),
               std::runtime_error);
}

TEST(ServiceCheckpoint, FileRoundTripAndMissingFile) {
  const std::string path = ::testing::TempDir() + "service_ckpt_test.ckpt";
  std::remove(path.c_str());
  checkpoint_state out;
  EXPECT_FALSE(read_checkpoint_file(path, out));
  write_checkpoint_file(path, sample_state());
  ASSERT_TRUE(read_checkpoint_file(path, out));
  EXPECT_EQ(out.fingerprint, 0xfeedULL);
  ASSERT_EQ(out.cells.size(), 1u);
  std::remove(path.c_str());
}

// --------------------------------------------- campaign resume determinism

campaign_result run_shard(const grid& g, shard_ref shard,
                          const std::string& checkpoint_path,
                          std::size_t max_cells, std::string* trace,
                          obs::metrics_registry* metrics) {
  campaign_spec spec;
  spec.grid = g;
  spec.shard = shard;
  spec.exec.jobs = 1;
  spec.exec.max_cells = max_cells;
  spec.checkpoint.path = checkpoint_path;
  spec.checkpoint.stride = 1;
  spec.sinks.trace_jsonl = trace;
  spec.sinks.metrics = metrics;
  return run_campaign(spec);
}

TEST(ServiceResume, InterruptedShardsFoldBackToSingleProcessBytes) {
  const grid g = tiny_grid();  // 4 cells

  // Reference: one uninterrupted single-process run over the whole grid.
  std::string ref_trace;
  obs::metrics_registry ref_metrics;
  const campaign_result ref =
      run_shard(g, {0, 1}, "", 0, &ref_trace, &ref_metrics);
  ASSERT_TRUE(ref.complete());
  ASSERT_EQ(ref.rows.size(), 4u);

  // Sharded: 2 shards of 2 cells; shard 0 is killed after 1 cell (the
  // deterministic max_cells cutoff) and resumed from its checkpoint.
  const std::string ckpt = ::testing::TempDir() + "service_resume_test.ckpt";
  std::remove(ckpt.c_str());
  {
    std::string t;
    obs::metrics_registry m;
    const campaign_result partial = run_shard(g, {0, 2}, ckpt, 1, &t, &m);
    ASSERT_FALSE(partial.complete());
    EXPECT_EQ(partial.executed, 1u);
  }
  std::string trace0, trace1;
  obs::metrics_registry m0, m1;
  const campaign_result s0 = run_shard(g, {0, 2}, ckpt, 0, &trace0, &m0);
  const campaign_result s1 = run_shard(g, {1, 2}, "", 0, &trace1, &m1);
  ASSERT_TRUE(s0.complete());
  ASSERT_TRUE(s1.complete());
  EXPECT_EQ(s0.restored, 1u);  // one cell came from the checkpoint
  EXPECT_EQ(s0.executed, 1u);  // the other was re-run

  // Columnar merge == reference encoding, byte for byte.
  const std::uint64_t fp = grid_fingerprint(g);
  const obs::columnar_table merged = merge_result_tables(
      {encode_results(s0.rows, s0.range, fp),
       encode_results(s1.rows, s1.range, fp)});
  EXPECT_EQ(merged.encode(), encode_results(ref.rows, ref.range, fp).encode());
  EXPECT_EQ(results_csv(decode_results(merged)), results_csv(ref.rows));

  // Trace bytes and metrics fold identically too.
  EXPECT_EQ(trace0 + trace1, ref_trace);
  const shard_metrics folded = merge_shard_metrics(
      {{s0.range, fp, m0}, {s1.range, fp, m1}});
  EXPECT_EQ(folded.metrics.to_json(), ref_metrics.to_json());
  std::remove(ckpt.c_str());
}

TEST(ServiceResume, MismatchedCheckpointIsRejected) {
  const grid g = tiny_grid();
  const std::string ckpt = ::testing::TempDir() + "service_mismatch_test.ckpt";
  std::remove(ckpt.c_str());
  {
    std::string t;
    obs::metrics_registry m;
    (void)run_shard(g, {0, 2}, ckpt, 1, &t, &m);
  }
  // Same path, different grid: the fingerprint must not match.
  grid other = g;
  other.base_seed = 999;
  std::string t;
  obs::metrics_registry m;
  EXPECT_THROW((void)run_shard(other, {0, 2}, ckpt, 0, &t, &m),
               std::runtime_error);
  // Same grid, different sink shape (no trace capture): also rejected.
  campaign_spec spec;
  spec.grid = g;
  spec.shard = {0, 2};
  spec.exec.jobs = 1;
  spec.checkpoint.path = ckpt;
  EXPECT_THROW((void)run_campaign(spec), std::runtime_error);
  std::remove(ckpt.c_str());
}

TEST(ServiceResume, NoResumeFlagIgnoresExistingCheckpoint) {
  const grid g = tiny_grid();
  const std::string ckpt = ::testing::TempDir() + "service_noresume_test.ckpt";
  std::remove(ckpt.c_str());
  {
    std::string t;
    obs::metrics_registry m;
    (void)run_shard(g, {0, 2}, ckpt, 1, &t, &m);
  }
  campaign_spec spec;
  spec.grid = g;
  spec.shard = {0, 2};
  spec.exec.jobs = 1;
  spec.checkpoint.path = ckpt;
  spec.checkpoint.resume = false;  // fresh start despite the sink mismatch
  const campaign_result r = run_campaign(spec);
  EXPECT_TRUE(r.complete());
  EXPECT_EQ(r.restored, 0u);
  EXPECT_EQ(r.executed, r.rows.size());
  std::remove(ckpt.c_str());
}

TEST(ServiceResume, CancellationStopsAtACellBoundary) {
  const grid g = tiny_grid();
  campaign_spec spec;
  spec.grid = g;
  spec.exec.jobs = 1;
  std::size_t polls = 0;
  spec.exec.cancelled = [&polls]() { return ++polls > 1; };
  const campaign_result r = run_campaign(spec);
  EXPECT_FALSE(r.complete());
  EXPECT_LT(r.rows.size(), 4u);
}

// ------------------------------------------------------------ result merge

TEST(ServiceMerge, RefusesGapsOverlapAndForeignShards) {
  const grid g = tiny_grid();
  campaign_spec spec;
  spec.grid = g;
  spec.exec.jobs = 1;
  const campaign_result all = run_campaign(spec);
  const std::uint64_t fp = grid_fingerprint(g);

  const auto slice = [&](std::size_t b, std::size_t e) {
    const std::vector<run_result> rows(all.rows.begin() + b,
                                       all.rows.begin() + e);
    return encode_results(rows, {b, e}, fp);
  };
  // Contiguous slices merge fine.
  EXPECT_EQ(merge_result_tables({slice(0, 2), slice(2, 4)}).rows(), 4u);
  // A gap, an overlap, and a foreign fingerprint are all rejected.
  EXPECT_THROW((void)merge_result_tables({slice(0, 1), slice(2, 4)}),
               std::runtime_error);
  EXPECT_THROW((void)merge_result_tables({slice(0, 3), slice(2, 4)}),
               std::runtime_error);
  auto foreign = slice(2, 4);
  foreign.meta["fingerprint"] = fp + 1;
  EXPECT_THROW((void)merge_result_tables({slice(0, 2), foreign}),
               std::runtime_error);
  EXPECT_THROW((void)merge_result_tables({}), std::runtime_error);
}

TEST(ServiceMerge, ShardMetricsValidateProvenance) {
  obs::metrics_registry m;
  m.counter("sim.runs") += 2;
  const shard_metrics a{{0, 2}, 7, m};
  const shard_metrics b{{2, 4}, 7, m};
  const shard_metrics merged = merge_shard_metrics({a, b});
  EXPECT_EQ(merged.range, (cell_range{0, 4}));
  EXPECT_EQ(*merged.metrics.find_counter("sim.runs"), 4u);

  const shard_metrics gap{{3, 4}, 7, m};
  EXPECT_THROW((void)merge_shard_metrics({a, gap}), std::runtime_error);
  const shard_metrics foreign{{2, 4}, 8, m};
  EXPECT_THROW((void)merge_shard_metrics({a, foreign}), std::runtime_error);
  // Round-trip through the .mreg bytes.
  const shard_metrics back = decode_shard_metrics(encode_shard_metrics(a));
  EXPECT_EQ(back.range, a.range);
  EXPECT_EQ(back.fingerprint, 7u);
  EXPECT_EQ(back.metrics.to_json(), m.to_json());
}

// --------------------------------------------------------------- flat json

TEST(ServiceFlatJson, ParsesFlatObjectsStrictly) {
  const auto kv = util::parse_flat_json(
      R"({"cmd":"submit","id":"s0","n":"6,8","jobs":2,"delta":0.5})");
  EXPECT_EQ(kv.at("cmd"), "submit");
  EXPECT_EQ(kv.at("n"), "6,8");
  EXPECT_EQ(kv.at("jobs"), "2");      // scalars come back as literal tokens
  EXPECT_EQ(kv.at("delta"), "0.5");
  EXPECT_TRUE(util::parse_flat_json("{}").empty());
  EXPECT_EQ(util::parse_flat_json(R"({ "a" : "b" })").at("a"), "b");
}

TEST(ServiceFlatJson, UnescapesStringValues) {
  const auto kv =
      util::parse_flat_json(R"({"msg":"a\"b\\c\nd","path":"\/tmp"})");
  EXPECT_EQ(kv.at("msg"), "a\"b\\c\nd");
  EXPECT_EQ(kv.at("path"), "/tmp");
}

TEST(ServiceFlatJson, RejectsNestingDuplicatesAndGarbage) {
  EXPECT_THROW((void)util::parse_flat_json(""), std::invalid_argument);
  EXPECT_THROW((void)util::parse_flat_json("[1,2]"), std::invalid_argument);
  EXPECT_THROW((void)util::parse_flat_json(R"({"a":{"b":1}})"),
               std::invalid_argument);
  EXPECT_THROW((void)util::parse_flat_json(R"({"a":[1]})"),
               std::invalid_argument);
  EXPECT_THROW((void)util::parse_flat_json(R"({"a":"1","a":"2"})"),
               std::invalid_argument);
  EXPECT_THROW((void)util::parse_flat_json(R"({"a":"1"} trailing)"),
               std::invalid_argument);
  EXPECT_THROW((void)util::parse_flat_json(R"({"a":null})"),
               std::invalid_argument);
}

}  // namespace
}  // namespace gather::runner
