// Adversary edge cases: crash injection at the extremes (round 0,
// all-but-one, all) and movement truncation at the contract boundaries
// (exactly delta, zero-length moves, clamped fractions).
#include <gtest/gtest.h>

#include "core/wait_free_gather.h"
#include "sim/sim.h"

namespace {

using namespace gather;
using geom::vec2;

sim::sim_result run_with_crashes(
    std::vector<std::pair<std::size_t, std::size_t>> events,
    std::size_t max_rounds = 200) {
  static const core::wait_free_gather wfg;
  auto sched = sim::make_synchronous();
  auto move = sim::make_full_movement();
  auto crash = sim::make_scheduled_crashes(std::move(events));
  sim::sim_spec spec;
  spec.initial = {{0.0, 0.0}, {0.0, 0.0}, {4.0, 0.0}, {1.0, 3.0}};
  spec.algorithm = &wfg;
  spec.scheduler = sched.get();
  spec.movement = move.get();
  spec.crash = crash.get();
  spec.options.max_rounds = max_rounds;
  return sim::run(spec);
}

TEST(CrashEdges, CrashAtRoundZeroFreezesTheRobot) {
  const sim::sim_result res = run_with_crashes({{0, 3}});
  EXPECT_EQ(res.crashes, 1u);
  ASSERT_EQ(res.final_live.size(), 4u);
  EXPECT_EQ(res.final_live[3], 0u);
  // Crashed in round 0, before any activation: it never left its start.
  EXPECT_EQ(res.final_positions[3], (vec2{1.0, 3.0}));
  // The others still gather (f < n tolerance, Theorem 1).
  EXPECT_EQ(res.status, sim::sim_status::gathered);
}

TEST(CrashEdges, AllButOneCrashedStillTerminates) {
  const sim::sim_result res = run_with_crashes({{0, 0}, {0, 1}, {0, 2}});
  EXPECT_EQ(res.crashes, 3u);
  std::size_t live = 0;
  for (std::uint8_t l : res.final_live) live += l;
  EXPECT_EQ(live, 1u);
  // A single live robot gathers on itself once its destination is to stay.
  EXPECT_EQ(res.status, sim::sim_status::gathered);
}

TEST(CrashEdges, LastLiveRobotIsNeverCrashed) {
  // The schedule demands all four crash at round 0; the engine's f < n
  // guard must keep one robot alive.
  const sim::sim_result res = run_with_crashes({{0, 0}, {0, 1}, {0, 2}, {0, 3}});
  EXPECT_EQ(res.crashes, 3u);
  std::size_t live = 0;
  for (std::uint8_t l : res.final_live) live += l;
  EXPECT_EQ(live, 1u);
  EXPECT_NE(res.status, sim::sim_status::all_crashed);
}

TEST(CrashEdges, OutOfRangeAndDuplicateEventsAreIgnored) {
  // Robot 9 does not exist; robot 3 is named twice; only one fault lands.
  const sim::sim_result res = run_with_crashes({{0, 9}, {0, 3}, {1, 3}});
  EXPECT_EQ(res.crashes, 1u);
  EXPECT_EQ(res.final_live[3], 0u);
  EXPECT_EQ(res.status, sim::sim_status::gathered);
}

TEST(MovementEdges, MinimalMovementTravelsExactlyDelta) {
  auto move = sim::make_minimal_movement();
  sim::rng random(11);
  const double want = 10.0;
  const double delta = 2.0;
  EXPECT_EQ(move->travelled(want, delta, random), delta);
  // Contract: shorter moves than delta complete.
  EXPECT_EQ(move->travelled(1.5, delta, random), 1.5);
  const vec2 stop = move->stop_point({0.0, 0.0}, {10.0, 0.0}, delta, random);
  EXPECT_NEAR(geom::distance({0.0, 0.0}, stop), delta, 1e-12);
}

TEST(MovementEdges, FractionStopClampsToContract) {
  // A tiny fraction must still travel at least delta ...
  auto tiny = sim::make_fraction_stop(0.01);
  sim::rng random(11);
  EXPECT_EQ(tiny->travelled(10.0, 2.0, random), 2.0);
  // ... and any fraction of a sub-delta move completes it.
  EXPECT_EQ(tiny->travelled(1.0, 2.0, random), 1.0);
  // A full fraction reaches the destination.
  auto full = sim::make_fraction_stop(1.0);
  EXPECT_EQ(full->travelled(10.0, 2.0, random), 10.0);
}

TEST(MovementEdges, StopPointOnZeroLengthMoveStaysPut) {
  auto move = sim::make_minimal_movement();
  sim::rng random(3);
  const vec2 p{2.5, -1.25};
  EXPECT_EQ(move->stop_point(p, p, 1.0, random), p);
}

}  // namespace
