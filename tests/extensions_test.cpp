// Tests for the beyond-the-paper extensions: the ASYNC engine, transient
// faults (self-stabilization), byzantine robots and the weak-multiplicity
// capability ablation.
#include <gtest/gtest.h>

#include "core/weak_multiplicity.h"
#include "core/wait_free_gather.h"
#include "sim/sim.h"
#include "sim_support.h"
#include "workloads/generators.h"

namespace gather {
namespace {

using geom::vec2;

const core::wait_free_gather kAlgo;

// Spec builder for the extension tests that attach a perturbation or a
// byzantine policy before running.
sim::sim_spec make_spec(std::vector<vec2> pts, sim::activation_scheduler& sched,
                        sim::movement_adversary& move, sim::crash_policy& crash,
                        const sim::sim_options& opts) {
  sim::sim_spec spec;
  spec.initial = std::move(pts);
  spec.algorithm = &kAlgo;
  spec.scheduler = &sched;
  spec.movement = &move;
  spec.crash = &crash;
  spec.options = opts;
  return spec;
}

// -- ASYNC engine -----------------------------------------------------------

TEST(AsyncEngine, AtomicSequentialRecoversAtomBehaviour) {
  // With no interleaving, ASYNC degenerates to a sequential ATOM schedule:
  // no stale moves, gathering succeeds.
  sim::rng r(1);
  auto move = sim::make_full_movement();
  auto crash = sim::make_no_crash();
  sim::async_options opts;
  opts.policy = sim::async_policy::atomic_sequential;
  const auto res = sim::run_async_sim(workloads::uniform_random(6, r), kAlgo,
                                       *move, *crash, opts);
  EXPECT_EQ(res.status, sim::sim_status::gathered);
  EXPECT_EQ(res.stale_moves, 0u);
}

TEST(AsyncEngine, RandomInterleavingProducesStaleMoves) {
  sim::rng r(2);
  auto move = sim::make_full_movement();
  auto crash = sim::make_no_crash();
  sim::async_options opts;
  opts.policy = sim::async_policy::random_interleaving;
  opts.seed = 5;
  const auto res = sim::run_async_sim(workloads::uniform_random(8, r), kAlgo,
                                       *move, *crash, opts);
  EXPECT_GT(res.stale_moves, 0u);
}

TEST(AsyncEngine, GathersUnderModerateAsynchronyInPractice) {
  // The paper only claims ATOM correctness; empirically the algorithm
  // tolerates random interleavings on generic instances.
  int ok = 0;
  for (int seed = 0; seed < 5; ++seed) {
    sim::rng r(100 + seed);
    auto move = sim::make_full_movement();
    auto crash = sim::make_no_crash();
    sim::async_options opts;
    opts.policy = sim::async_policy::random_interleaving;
    opts.seed = seed;
    const auto res = sim::run_async_sim(workloads::uniform_random(6, r), kAlgo,
                                         *move, *crash, opts);
    if (res.status == sim::sim_status::gathered) ++ok;
  }
  EXPECT_GE(ok, 4);
}

TEST(AsyncEngine, CrashesAreInjected) {
  sim::rng r(3);
  auto move = sim::make_random_stop();
  auto crash = sim::make_random_crashes(2, 40);
  sim::async_options opts;
  opts.seed = 7;
  const auto res = sim::run_async_sim(workloads::uniform_random(7, r), kAlgo,
                                       *move, *crash, opts);
  EXPECT_GT(res.crashes, 0u);
}

TEST(AsyncEngine, BivalentStartReported) {
  sim::rng r(4);
  auto move = sim::make_full_movement();
  auto crash = sim::make_no_crash();
  sim::async_options opts;
  opts.max_steps = 2'000;
  const auto res =
      sim::run_async_sim(workloads::bivalent(6, r), kAlgo, *move, *crash, opts);
  EXPECT_EQ(res.status, sim::sim_status::started_bivalent);
}

TEST(AsyncEngine, PolicyNames) {
  EXPECT_EQ(sim::to_string(sim::async_policy::atomic_sequential),
            "atomic-sequential");
  EXPECT_EQ(sim::to_string(sim::async_policy::look_all_move_all),
            "look-all-move-all");
}

// -- transient faults / self-stabilization -----------------------------------

TEST(TransientFaults, GathersAfterFullScatter) {
  // Oblivious algorithms are self-stabilizing: an arbitrary corruption of all
  // positions mid-run is just a new initial configuration.
  for (int seed = 0; seed < 5; ++seed) {
    sim::rng r(200 + seed);
    auto sched = sim::make_fair_random();
    auto move = sim::make_random_stop();
    auto crash = sim::make_no_crash();
    auto perturb = sim::make_scatter_at({5, 11}, 12.0);
    sim::sim_options opts;
    opts.seed = seed;
    auto spec = make_spec(workloads::uniform_random(7, r), *sched, *move,
                          *crash, opts);
    spec.perturbation = perturb.get();
    const auto res = sim::run(spec);
    EXPECT_EQ(res.status, sim::sim_status::gathered) << seed;
    EXPECT_GT(res.rounds, 5u);  // the scatter actually undid progress
  }
}

TEST(TransientFaults, NudgesDoNotPreventGathering) {
  sim::rng r(300);
  auto sched = sim::make_fair_random();
  auto move = sim::make_full_movement();
  auto crash = sim::make_random_crashes(2, 20);
  auto perturb = sim::make_nudge_at({2, 4, 6, 8}, 3.0);
  sim::sim_options opts;
  auto spec = make_spec(workloads::uniform_random(8, r), *sched, *move, *crash,
                        opts);
  spec.perturbation = perturb.get();
  EXPECT_EQ(sim::run(spec).status, sim::sim_status::gathered);
}

TEST(TransientFaults, CrashedRobotsAreNotPerturbed) {
  // A crashed robot's position is physical; transient faults may not move it.
  sim::rng r(301);
  auto sched = sim::make_synchronous();
  auto move = sim::make_full_movement();
  auto crash = sim::make_scheduled_crashes({{0, 0}});
  auto perturb = sim::make_scatter_at({3}, 12.0);
  const auto pts = workloads::uniform_random(6, r);
  sim::sim_options opts;
  auto spec = make_spec(pts, *sched, *move, *crash, opts);
  spec.perturbation = perturb.get();
  const auto res = sim::run(spec);
  EXPECT_EQ(res.final_positions[0], pts[0]);
}

// -- byzantine robots ---------------------------------------------------------

TEST(Byzantine, RunawayPreventsStableGathering) {
  // A single runaway byzantine among three robots: the correct pair keeps
  // chasing a moving structure (Agmon-Peleg impossibility, cited in Sec. I).
  sim::rng r(400);
  auto sched = sim::make_synchronous();
  auto move = sim::make_full_movement();
  auto crash = sim::make_no_crash();
  auto byz = sim::make_splitter_byzantine({0});
  sim::sim_options opts;
  opts.max_rounds = 3'000;
  auto spec = make_spec(workloads::uniform_random(3, r), *sched, *move, *crash,
                        opts);
  spec.byzantine = byz.get();
  const auto res = sim::run(spec);
  // The run either never reaches a gathered instant, or needs the full
  // budget; we assert the strong expected outcome for this splitter.
  EXPECT_NE(res.status, sim::sim_status::stalled);
}

TEST(Byzantine, ManyCorrectRobotsStillGatherDespiteOneRunaway) {
  // With a large correct majority the M-case multiplicity point forms and
  // the correct robots reach it; the byzantine robot simply never joins.
  sim::rng r(401);
  auto sched = sim::make_fair_random();
  auto move = sim::make_full_movement();
  auto crash = sim::make_no_crash();
  auto byz = sim::make_runaway_byzantine({0}, 0.2);
  sim::sim_options opts;
  opts.max_rounds = 20'000;
  auto pts = workloads::with_majority(9, 4, r);
  auto spec = make_spec(pts, *sched, *move, *crash, opts);
  spec.byzantine = byz.get();
  const auto res = sim::run(spec);
  EXPECT_EQ(res.status, sim::sim_status::gathered);
}

TEST(Byzantine, PolicyIdentifiesRobots) {
  auto byz = sim::make_runaway_byzantine({1, 3}, 0.5);
  EXPECT_FALSE(byz->is_byzantine(0));
  EXPECT_TRUE(byz->is_byzantine(1));
  EXPECT_FALSE(byz->is_byzantine(2));
  EXPECT_TRUE(byz->is_byzantine(3));
}

// -- weak multiplicity ---------------------------------------------------------

TEST(WeakMultiplicity, UnequalStacksLookBivalentAndFreeze) {
  // (3, 2) two-point configuration: strong detection sees M and gathers;
  // weak detection sees (2, 2) = bivalent and freezes -- the paper's
  // necessity argument for strong multiplicity detection.
  const std::vector<vec2> pts = {{0, 0}, {0, 0}, {0, 0}, {4, 0}, {4, 0}};
  const core::weak_multiplicity_adapter weak(kAlgo);

  auto sched = sim::make_synchronous();
  auto move = sim::make_full_movement();
  auto crash = sim::make_no_crash();
  sim::sim_options opts;
  opts.max_rounds = 500;

  const auto strong_res = sim::run_sim(pts, kAlgo, *sched, *move, *crash, opts);
  EXPECT_EQ(strong_res.status, sim::sim_status::gathered);

  auto sched2 = sim::make_synchronous();
  const auto weak_res = sim::run_sim(pts, weak, *sched2, *move, *crash, opts);
  EXPECT_EQ(weak_res.status, sim::sim_status::stalled);
}

TEST(WeakMultiplicity, StillGathersWhenCountsDoNotMatter) {
  // On all-distinct configurations weak and strong detection agree.
  sim::rng r(500);
  const auto pts = workloads::uniform_random(6, r);
  const core::weak_multiplicity_adapter weak(kAlgo);
  auto sched = sim::make_fair_random();
  auto move = sim::make_full_movement();
  auto crash = sim::make_no_crash();
  sim::sim_options opts;
  const auto res = sim::run_sim(pts, weak, *sched, *move, *crash, opts);
  EXPECT_EQ(res.status, sim::sim_status::gathered);
}

TEST(WeakMultiplicity, DestinationMatchesStrongOnSingletons) {
  const config::configuration c({{0, 0}, {5, 0}, {1, 3}, {-2, 1}});
  const core::weak_multiplicity_adapter weak(kAlgo);
  for (const config::occupied_point& o : c.occupied()) {
    EXPECT_EQ(weak.destination({c, o.position}),
              kAlgo.destination({c, o.position}));
  }
}

}  // namespace
}  // namespace gather
