// Determinism regression for the campaign runner: the whole point of the
// hashed per-cell seed scheme is that the result vector -- and any CSV
// rendered from it -- is element-wise identical for every --jobs value.
// These tests run one mixed grid serially and in parallel and compare
// every field of every run.
//
// Suite names start with "Runner" so the ThreadSanitizer preset picks them
// up (`ctest --preset tsan`, filter ^Runner).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runner/runner.h"

namespace gather::runner {
namespace {

grid mixed_grid() {
  grid g;
  g.workloads = {"uniform", "majority", "polygon"};
  g.ns = {6, 8};
  g.fs = {0, 3};
  g.schedulers = {"fair-random", "laggard"};
  g.movements = {"random-stop"};
  g.deltas = {0.05};
  g.repeats = 2;
  g.base_seed = 77;
  return g;
}

std::vector<run_result> run_with_jobs(std::size_t jobs) {
  campaign_options opts;
  opts.jobs = jobs;
  return run_campaign(mixed_grid(), opts);
}

void expect_identical(const std::vector<run_result>& a,
                      const std::vector<run_result>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("run " + std::to_string(i));
    EXPECT_EQ(a[i].spec.workload, b[i].spec.workload);
    EXPECT_EQ(a[i].spec.n, b[i].spec.n);
    EXPECT_EQ(a[i].spec.f, b[i].spec.f);
    EXPECT_EQ(a[i].spec.scheduler, b[i].spec.scheduler);
    EXPECT_EQ(a[i].spec.movement, b[i].spec.movement);
    EXPECT_EQ(a[i].spec.index, b[i].spec.index);
    EXPECT_EQ(a[i].spec.seed, b[i].spec.seed);
    EXPECT_EQ(a[i].n, b[i].n);
    EXPECT_EQ(a[i].status, b[i].status);
    EXPECT_EQ(a[i].rounds, b[i].rounds);
    EXPECT_EQ(a[i].crashes, b[i].crashes);
    EXPECT_EQ(a[i].wait_free_violations, b[i].wait_free_violations);
    EXPECT_EQ(a[i].bivalent_entries, b[i].bivalent_entries);
    EXPECT_EQ(a[i].first_multiplicity_round, b[i].first_multiplicity_round);
    EXPECT_EQ(a[i].phase_count, b[i].phase_count);
  }
}

std::string render_csv(const std::vector<run_result>& results) {
  std::string csv = csv_header() + "\n";
  for (const auto& r : results) csv += csv_row(r) + "\n";
  return csv;
}

TEST(RunnerDeterminism, SerialAndParallelResultsAreElementWiseIdentical) {
  const auto serial = run_with_jobs(1);
  const auto parallel = run_with_jobs(4);
  ASSERT_EQ(serial.size(), 3u * 2u * 2u * 2u * 2u);
  expect_identical(serial, parallel);
  // Byte-level: the CSV a tool would print is identical too.
  EXPECT_EQ(render_csv(serial), render_csv(parallel));
}

TEST(RunnerDeterminism, RepeatedParallelRunsAgree) {
  const auto first = run_with_jobs(4);
  const auto second = run_with_jobs(4);
  expect_identical(first, second);
}

TEST(RunnerDeterminism, SummariesOfSerialAndParallelRunsAgree) {
  const auto serial = summarize(run_with_jobs(1));
  const auto parallel = summarize(run_with_jobs(3));
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(summary_csv_row(serial[i]), summary_csv_row(parallel[i])) << i;
  }
}

}  // namespace
}  // namespace gather::runner
