// Determinism regression for the campaign runner: the whole point of the
// hashed per-cell seed scheme is that the result vector -- and any CSV
// rendered from it -- is element-wise identical for every --jobs value.
// These tests run one mixed grid serially and in parallel and compare
// every field of every run.
//
// Suite names start with "Runner" so the ThreadSanitizer preset picks them
// up (`ctest --preset tsan`, filter ^Runner).
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "obs/obs.h"
#include "runner/runner.h"

namespace gather::runner {
namespace {

grid mixed_grid() {
  grid g;
  g.workloads = {"uniform", "majority", "polygon"};
  g.ns = {6, 8};
  g.fs = {0, 3};
  g.schedulers = {"fair-random", "laggard"};
  g.movements = {"random-stop"};
  g.deltas = {0.05};
  g.repeats = 2;
  g.base_seed = 77;
  return g;
}

std::vector<run_result> run_with_jobs(std::size_t jobs) {
  campaign_spec spec;
  spec.grid = mixed_grid();
  spec.exec.jobs = jobs;
  return run_campaign(spec).rows;
}

void expect_identical(const std::vector<run_result>& a,
                      const std::vector<run_result>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("run " + std::to_string(i));
    EXPECT_EQ(a[i].spec.workload, b[i].spec.workload);
    EXPECT_EQ(a[i].spec.n, b[i].spec.n);
    EXPECT_EQ(a[i].spec.f, b[i].spec.f);
    EXPECT_EQ(a[i].spec.scheduler, b[i].spec.scheduler);
    EXPECT_EQ(a[i].spec.movement, b[i].spec.movement);
    EXPECT_EQ(a[i].spec.index, b[i].spec.index);
    EXPECT_EQ(a[i].spec.seed, b[i].spec.seed);
    EXPECT_EQ(a[i].n, b[i].n);
    EXPECT_EQ(a[i].status, b[i].status);
    EXPECT_EQ(a[i].rounds, b[i].rounds);
    EXPECT_EQ(a[i].crashes, b[i].crashes);
    EXPECT_EQ(a[i].wait_free_violations, b[i].wait_free_violations);
    EXPECT_EQ(a[i].bivalent_entries, b[i].bivalent_entries);
    EXPECT_EQ(a[i].first_multiplicity_round, b[i].first_multiplicity_round);
    EXPECT_EQ(a[i].phase_count, b[i].phase_count);
  }
}

std::string render_csv(const std::vector<run_result>& results) {
  std::string csv = csv_header() + "\n";
  for (const auto& r : results) csv += csv_row(r) + "\n";
  return csv;
}

TEST(RunnerDeterminism, SerialAndParallelResultsAreElementWiseIdentical) {
  const auto serial = run_with_jobs(1);
  const auto parallel = run_with_jobs(4);
  ASSERT_EQ(serial.size(), 3u * 2u * 2u * 2u * 2u);
  expect_identical(serial, parallel);
  // Byte-level: the CSV a tool would print is identical too.
  EXPECT_EQ(render_csv(serial), render_csv(parallel));
}

TEST(RunnerDeterminism, RepeatedParallelRunsAgree) {
  const auto first = run_with_jobs(4);
  const auto second = run_with_jobs(4);
  expect_identical(first, second);
}

TEST(RunnerDeterminism, SummariesOfSerialAndParallelRunsAgree) {
  const auto serial = summarize(run_with_jobs(1));
  const auto parallel = summarize(run_with_jobs(3));
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(summary_csv_row(serial[i]), summary_csv_row(parallel[i])) << i;
  }
}

// One campaign with the observability attachments on: the JSONL trace and
// the merged registry rendered to JSON.  `profile` stays off because wall
// clock nanoseconds are the one thing that is *not* deterministic.
std::pair<std::string, std::string> run_observed(std::size_t jobs) {
  campaign_spec spec;
  spec.grid = mixed_grid();
  spec.exec.jobs = jobs;
  std::string trace;
  obs::metrics_registry metrics;
  spec.sinks.trace_jsonl = &trace;
  spec.sinks.metrics = &metrics;
  (void)run_campaign(spec);
  return {std::move(trace), metrics.to_json()};
}

TEST(RunnerDeterminism, JsonlTraceBytesAreIdenticalAcrossJobs) {
  const auto [serial_trace, serial_metrics] = run_observed(1);
  const auto [parallel_trace, parallel_metrics] = run_observed(4);

  ASSERT_FALSE(serial_trace.empty());
  EXPECT_EQ(serial_trace, parallel_trace);
  EXPECT_EQ(serial_metrics, parallel_metrics);

  // Sanity: the trace is line-delimited JSON objects, one per line.
  std::size_t lines = 0, start = 0;
  while (start < serial_trace.size()) {
    const std::size_t nl = serial_trace.find('\n', start);
    ASSERT_NE(nl, std::string::npos) << "trace must end with a newline";
    ASSERT_GT(nl, start);
    EXPECT_EQ(serial_trace[start], '{');
    EXPECT_EQ(serial_trace[nl - 1], '}');
    start = nl + 1;
    ++lines;
  }
  EXPECT_GT(lines, 0u);
}

TEST(RunnerDeterminism, RegistryHistogramBracketsSummaryQuantiles) {
  campaign_spec spec;
  spec.grid = mixed_grid();
  spec.exec.jobs = 2;
  obs::metrics_registry metrics;
  spec.sinks.metrics = &metrics;
  const auto results = run_campaign(spec).rows;

  std::vector<std::size_t> rounds;
  for (const auto& r : results) {
    if (r.status == sim::sim_status::gathered) rounds.push_back(r.rounds);
  }
  ASSERT_FALSE(rounds.empty());

  const obs::histogram* h = metrics.find_histogram("sim.rounds_to_gather");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), rounds.size());

  // Both sides use the nearest-rank definition, so the summary layer's exact
  // quantile must land inside the histogram's bucket interval for every q.
  for (const double q : {0.25, 0.5, 0.9, 0.99, 1.0}) {
    const auto exact = static_cast<double>(round_quantile(rounds, q));
    const auto bracket = h->quantile_bounds(q);
    EXPECT_GE(exact, bracket.lower) << "q=" << q;
    EXPECT_LE(exact, bracket.upper) << "q=" << q;
  }

  // The registry's totals agree with the result vector.
  const std::uint64_t* gathered = metrics.find_counter("sim.gathered");
  ASSERT_NE(gathered, nullptr);
  EXPECT_EQ(*gathered, rounds.size());
  const std::uint64_t* runs = metrics.find_counter("sim.runs");
  ASSERT_NE(runs, nullptr);
  EXPECT_EQ(*runs, results.size());
}

}  // namespace
}  // namespace gather::runner
