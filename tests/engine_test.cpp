// Engine-behaviour tests: fairness backstop, budgets, crash floor, options.
#include <gtest/gtest.h>

#include "core/wait_free_gather.h"
#include "sim/sim.h"
#include "sim_support.h"
#include "workloads/generators.h"

namespace gather::sim {
namespace {

using geom::vec2;

const core::wait_free_gather kAlgo;

/// A hostile scheduler that, left unchecked, would starve robot 0 forever.
class starver final : public activation_scheduler {
 public:
  std::vector<std::size_t> select(const schedule_context& ctx, rng&) override {
    std::vector<std::size_t> out;
    for (std::size_t i = 1; i < ctx.live.size(); ++i) {
      if (ctx.live[i]) out.push_back(i);
    }
    if (out.empty() && !ctx.live.empty() && ctx.live[0]) out.push_back(0);
    return out;
  }
  std::string_view name() const override { return "starver"; }
};

TEST(Engine, FairnessBackstopRescuesStarvedRobots) {
  // Robot 0 is the farthest from the eventual target; without the backstop
  // the starver would keep it away forever.  The engine force-activates it.
  starver sched;
  auto move = make_full_movement();
  auto crash = make_no_crash();
  sim_options opts;
  opts.fairness_bound = 8;
  const std::vector<vec2> pts = {{10, 10}, {0, 0}, {0, 0}, {1, 0}, {0, 1}};
  const auto res = run_sim(pts, kAlgo, sched, *move, *crash, opts);
  EXPECT_EQ(res.status, sim_status::gathered);
}

TEST(Engine, RoundLimitIsHonoured) {
  auto sched = make_round_robin();
  auto move = make_minimal_movement();
  auto crash = make_no_crash();
  sim_options opts;
  opts.max_rounds = 3;  // far too few
  opts.delta_fraction = 0.001;
  rng r(1);
  const auto res =
      run_sim(workloads::uniform_random(8, r), kAlgo, *sched, *move, *crash, opts);
  EXPECT_EQ(res.status, sim_status::round_limit);
  EXPECT_LE(res.rounds, 3u);
}

TEST(Engine, LastLiveRobotCannotCrash) {
  // The model requires f < n; a policy asking for everyone is clipped.
  auto sched = make_synchronous();
  auto move = make_full_movement();
  auto crash = make_scheduled_crashes({{0, 0}, {0, 1}, {0, 2}});
  sim_options opts;
  const std::vector<vec2> pts = {{0, 0}, {4, 0}, {1, 3}};
  const auto res = run_sim(pts, kAlgo, *sched, *move, *crash, opts);
  EXPECT_EQ(res.crashes, 2u);  // third crash refused
  EXPECT_EQ(res.status, sim_status::gathered);  // the lone survivor gathers
}

TEST(Engine, DeltaIsAbsolutePerRun) {
  // Same instance at two delta fractions: the smaller delta takes more
  // rounds under minimal movement.
  rng r(2);
  const auto pts = workloads::uniform_random(6, r);
  auto run = [&](double frac) {
    auto sched = make_synchronous();
    auto move = make_minimal_movement();
    auto crash = make_no_crash();
    sim_options opts;
    opts.delta_fraction = frac;
    return run_sim(pts, kAlgo, *sched, *move, *crash, opts);
  };
  const auto fast = run(0.5);
  const auto slow = run(0.02);
  ASSERT_EQ(fast.status, sim_status::gathered);
  ASSERT_EQ(slow.status, sim_status::gathered);
  EXPECT_LT(fast.rounds, slow.rounds);
}

TEST(Engine, TraceOffByDefault) {
  auto sched = make_synchronous();
  auto move = make_full_movement();
  auto crash = make_no_crash();
  sim_options opts;
  rng r(3);
  const auto res =
      run_sim(workloads::uniform_random(5, r), kAlgo, *sched, *move, *crash, opts);
  EXPECT_TRUE(res.trace.empty());
  EXPECT_FALSE(res.class_history.empty());  // class history is always kept
}

TEST(Engine, GatherPointHostsAllLiveRobots) {
  rng r(4);
  auto sched = make_fair_random();
  auto move = make_random_stop();
  auto crash = make_random_crashes(3, 20);
  sim_options opts;
  opts.seed = 9;
  const auto res =
      run_sim(workloads::uniform_random(9, r), kAlgo, *sched, *move, *crash, opts);
  ASSERT_EQ(res.status, sim_status::gathered);
  const config::configuration final_c(res.final_positions);
  for (std::size_t i = 0; i < res.final_positions.size(); ++i) {
    if (res.final_live[i]) {
      EXPECT_TRUE(final_c.tolerance().same_point(
          final_c.snapped(res.final_positions[i]), res.gather_point));
    }
  }
}

TEST(Engine, ResultRoundsMatchesClassHistory) {
  auto sched = make_synchronous();
  auto move = make_full_movement();
  auto crash = make_no_crash();
  sim_options opts;
  rng r(5);
  const auto res =
      run_sim(workloads::uniform_random(5, r), kAlgo, *sched, *move, *crash, opts);
  ASSERT_EQ(res.status, sim_status::gathered);
  // One class entry per examined round, including the final gathered one.
  EXPECT_EQ(res.class_history.size(), res.rounds + 1);
}

TEST(Engine, SeedsAreReproducible) {
  rng ra(6);
  const auto pts = workloads::uniform_random(7, ra);
  auto run = [&] {
    auto sched = make_fair_random();
    auto move = make_random_stop();
    auto crash = make_random_crashes(2, 15);
    sim_options opts;
    opts.seed = 123;
    return run_sim(pts, kAlgo, *sched, *move, *crash, opts);
  };
  const auto r1 = run();
  const auto r2 = run();
  EXPECT_EQ(r1.rounds, r2.rounds);
  EXPECT_EQ(r1.crashes, r2.crashes);
  EXPECT_EQ(r1.final_positions, r2.final_positions);
}

TEST(Engine, DifferentSeedsDiverge) {
  rng ra(7);
  const auto pts = workloads::uniform_random(7, ra);
  auto run = [&](std::uint64_t seed) {
    auto sched = make_fair_random();
    auto move = make_random_stop();
    auto crash = make_no_crash();
    sim_options opts;
    opts.seed = seed;
    return run_sim(pts, kAlgo, *sched, *move, *crash, opts);
  };
  // Not a strict guarantee, but over several seeds at least one divergence.
  bool diverged = false;
  const auto base = run(1);
  for (std::uint64_t s = 2; s < 6 && !diverged; ++s) {
    diverged = run(s).rounds != base.rounds;
  }
  EXPECT_TRUE(diverged);
}

}  // namespace
}  // namespace gather::sim
