// PR 5 equivalence fuzz: the subquadratic view/symmetry pipeline (shared
// polar tables + canonical view keys + Booth minimal rotation) against the
// pre-subquadratic reference oracles in views_reference.cpp, bit for bit,
// over 1000 generated configurations; plus a brute-force Definition 3
// rotation cross-check of sym(C) and a regression test for the
// strict-weak-ordering hazard of the old tolerance-comparator sort.
#include "config/views.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "config/configuration.h"
#include "config/derived.h"
#include "config/string_of_angles.h"
#include "geometry/angles.h"
#include "sim/rng.h"
#include "workloads/generators.h"

namespace gather {
namespace {

using config::configuration;
using config::view;
using geom::vec2;

void expect_view_bitwise(const view& fast, const view& ref, const char* what,
                         int iter) {
  ASSERT_EQ(fast.size(), ref.size()) << what << " iter=" << iter;
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].angle, ref[i].angle)
        << what << " iter=" << iter << " entry=" << i;
    EXPECT_EQ(fast[i].dist, ref[i].dist)
        << what << " iter=" << iter << " entry=" << i;
  }
}

void expect_order_bitwise(const std::vector<config::angular_entry>& fast,
                          const std::vector<config::angular_entry>& ref,
                          const char* what, int iter) {
  ASSERT_EQ(fast.size(), ref.size()) << what << " iter=" << iter;
  for (std::size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].theta, ref[i].theta)
        << what << " iter=" << iter << " entry=" << i;
    EXPECT_EQ(fast[i].dist, ref[i].dist)
        << what << " iter=" << iter << " entry=" << i;
    EXPECT_EQ(fast[i].position.x, ref[i].position.x)
        << what << " iter=" << iter << " entry=" << i;
    EXPECT_EQ(fast[i].position.y, ref[i].position.y)
        << what << " iter=" << iter << " entry=" << i;
  }
}

/// One configuration from a rotating family mix.  Perturbation magnitudes
/// stay well away from the tolerance boundary (angle_eps = 1e-9): sub-eps
/// jitter uses 1e-12..1e-13, super-eps offsets use >= 1e-5, so fast and
/// reference paths make the same clustering decisions for the same bits.
std::vector<vec2> fuzz_points(int iter, sim::rng& r) {
  const std::size_t n = 3 + static_cast<std::size_t>(r.uniform_int(0, 21));
  switch (iter % 5) {
    case 0:  // generic position
      return workloads::uniform_random(n, r);
    case 1: {  // collinear, sometimes with stacked multiplicities
      std::vector<vec2> pts = (n % 2 == 1)
                                  ? workloads::linear_unique_weber(n, r)
                                  : workloads::linear_two_weber(std::max<std::size_t>(n, 4), r);
      if (r.flip(0.5) && !pts.empty()) {
        pts.push_back(pts[r.uniform_int(0, pts.size() - 1)]);
      }
      return pts;
    }
    case 2: {  // regular polygon with rotationally symmetric multiplicities
      const std::size_t k = 3 + static_cast<std::size_t>(r.uniform_int(0, 13));
      const vec2 center{r.uniform(-2.0, 2.0), r.uniform(-2.0, 2.0)};
      std::vector<vec2> pts = workloads::regular_polygon(
          k, center, r.uniform(0.5, 3.0), r.uniform(0.0, geom::two_pi));
      // Stack an extra robot on every (k/d)-th vertex for a divisor d of k.
      std::vector<std::size_t> divisors;
      for (std::size_t d = 1; d <= k; ++d)
        if (k % d == 0) divisors.push_back(d);
      const std::size_t d = divisors[r.uniform_int(0, divisors.size() - 1)];
      const std::size_t step = k / d;
      const std::size_t base = pts.size();
      for (std::size_t j = 0; j < base; j += step) pts.push_back(pts[j]);
      if (r.flip(0.3)) pts.push_back(center);
      return pts;
    }
    case 3: {  // near-degenerate: perturbed polygon / near-coincident pairs
      std::vector<vec2> pts =
          workloads::regular_polygon(std::max<std::size_t>(n, 3), {}, 1.0);
      const double mag = r.flip(0.5) ? 1e-12 : 1e-5;
      pts = workloads::perturbed(std::move(pts), mag, r);
      if (r.flip(0.5)) {
        const vec2 p = pts.front();
        pts.push_back({p.x + 1e-13, p.y - 1e-13});
      }
      if (r.flip(0.25)) {
        // Two distinct locations within tolerance of the polygon center:
        // exercises the degenerate at-center fallback in symmetry().
        pts.push_back({1e-12, -1e-12});
        pts.push_back({-1e-12, 1e-12});
      }
      return pts;
    }
    default: {  // constructed symmetric families
      const std::size_t k = 2 + static_cast<std::size_t>(r.uniform_int(0, 6));
      switch (r.uniform_int(0, 3)) {
        case 0:
          return workloads::symmetric_rings(k, 1 + static_cast<std::size_t>(r.uniform_int(0, 2)), r);
        case 1:
          return workloads::bivalent(2 * k, r);
        case 2:
          return workloads::quasi_regular_with_center(
              std::max<std::size_t>(k, 4),
              static_cast<std::size_t>(r.uniform_int(1, 2)), r);
        default:
          return workloads::axially_symmetric(2 * k + 1, r);
      }
    }
  }
}

TEST(ViewPipeline, FastMatchesReferenceOn1000Configs) {
  sim::rng r(0x5eed5u);
  for (int iter = 0; iter < 1000; ++iter) {
    const configuration c(fuzz_points(iter, r));
    if (c.distinct_count() == 0) continue;

    // Views of every occupied location, bit for bit.
    const std::vector<view> fast_views(config::all_views(c).begin(),
                                       config::all_views(c).end());
    const std::vector<view> ref_views = config::detail::all_views_reference(c);
    ASSERT_EQ(fast_views.size(), ref_views.size()) << "iter=" << iter;
    for (std::size_t i = 0; i < fast_views.size(); ++i) {
      expect_view_bitwise(fast_views[i], ref_views[i], "all_views", iter);
    }

    // view_of through the occupied-location fast path (binary search) and
    // through an arbitrary probe point.
    for (const config::occupied_point& o : c.occupied()) {
      expect_view_bitwise(config::view_of(c, o.position),
                          config::detail::view_of_reference(c, o.position),
                          "view_of(occupied)", iter);
    }
    const vec2 probe{r.uniform(-5.0, 5.0), r.uniform(-5.0, 5.0)};
    expect_view_bitwise(config::view_of(c, probe),
                        config::detail::view_of_reference(c, probe),
                        "view_of(probe)", iter);

    // Classes: the canonical-key grouping must reproduce the reference
    // tolerance-sort grouping exactly, including class and member order.
    EXPECT_EQ(config::view_classes(c), config::detail::view_classes_reference(c))
        << "iter=" << iter;

    // sym(C): Booth string path vs largest-reference-class.
    EXPECT_EQ(config::symmetry(c), config::detail::symmetry_reference(c))
        << "iter=" << iter;

    // Shared polar tables vs per-call reference angular order.
    const vec2 center = c.sec().center;
    expect_order_bitwise(config::angular_order(c, center),
                         config::detail::angular_order_reference(c, center),
                         "angular_order(center)", iter);
    const vec2 about = c.occupied().front().position;
    expect_order_bitwise(config::angular_order(c, about),
                         config::detail::angular_order_reference(c, about),
                         "angular_order(occupied)", iter);
  }
}

// -- Definition 3 brute force ----------------------------------------------

/// sym(C) straight from the geometry: the largest k such that the clockwise
/// rotation by 2*pi/k about the sec center maps the multiset of occupied
/// locations onto itself (location-to-location, preserving multiplicity).
int brute_symmetry_def3(const configuration& c) {
  const vec2 center = c.sec().center;
  const geom::tol& t = c.tolerance();
  int best = 1;
  for (int k = 2; k <= static_cast<int>(c.size()); ++k) {
    bool ok = true;
    for (const config::occupied_point& o : c.occupied()) {
      const vec2 q = geom::rotated_cw_about(o.position, center, geom::two_pi / k);
      bool found = false;
      for (const config::occupied_point& o2 : c.occupied()) {
        if (t.same_point(o2.position, q) && o2.multiplicity == o.multiplicity) {
          found = true;
          break;
        }
      }
      if (!found) {
        ok = false;
        break;
      }
    }
    if (ok) best = k;
  }
  return best;
}

TEST(ViewPipeline, SymmetryMatchesBruteForceRotationTest) {
  sim::rng r(0xdef3u);

  // Regular polygons: sym = n, up to n = 64.
  for (std::size_t k : {3u, 4u, 5u, 7u, 12u, 17u, 32u, 48u, 64u}) {
    const configuration c(workloads::regular_polygon(
        k, {0.5, -0.25}, 2.0, r.uniform(0.0, geom::two_pi)));
    EXPECT_EQ(config::symmetry(c), static_cast<int>(k)) << "k=" << k;
    EXPECT_EQ(config::symmetry(c), brute_symmetry_def3(c)) << "k=" << k;
  }

  // Symmetric rings: sym = k with k * rings robots.
  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t k = 2 + static_cast<std::size_t>(r.uniform_int(0, 10));
    const std::size_t rings = 1 + static_cast<std::size_t>(r.uniform_int(0, 4));
    if (k * rings > 64) continue;
    const configuration c(workloads::symmetric_rings(k, rings, r));
    EXPECT_EQ(config::symmetry(c), static_cast<int>(k))
        << "k=" << k << " rings=" << rings;
    EXPECT_EQ(config::symmetry(c), brute_symmetry_def3(c))
        << "k=" << k << " rings=" << rings;
  }

  // Polygon with a d-fold symmetric multiplicity pattern: sym = d.
  for (int iter = 0; iter < 40; ++iter) {
    const std::size_t k = 4 + static_cast<std::size_t>(r.uniform_int(0, 20));
    std::vector<std::size_t> divisors;
    for (std::size_t d = 1; d < k; ++d)
      if (k % d == 0) divisors.push_back(d);
    const std::size_t d = divisors[r.uniform_int(0, divisors.size() - 1)];
    std::vector<vec2> pts = workloads::regular_polygon(k, {}, 1.5);
    for (std::size_t j = 0; j < k; j += k / d) pts.push_back(pts[j]);
    const configuration c(std::move(pts));
    EXPECT_EQ(config::symmetry(c), static_cast<int>(d)) << "k=" << k << " d=" << d;
    EXPECT_EQ(config::symmetry(c), brute_symmetry_def3(c))
        << "k=" << k << " d=" << d;
  }

  // Polygon plus center point: the center is its own singleton location and
  // must not break the k-fold symmetry of the ring.
  for (std::size_t k : {3u, 6u, 11u, 24u}) {
    std::vector<vec2> pts = workloads::regular_polygon(k, {1.0, 1.0}, 1.0);
    pts.push_back({1.0, 1.0});
    const configuration c(std::move(pts));
    EXPECT_EQ(config::symmetry(c), static_cast<int>(k)) << "k=" << k;
    EXPECT_EQ(config::symmetry(c), brute_symmetry_def3(c)) << "k=" << k;
  }

  // Bivalent: two equal stacks, sym = 2.
  for (std::size_t n : {4u, 10u, 64u}) {
    const configuration c(workloads::bivalent(n, r));
    EXPECT_EQ(config::symmetry(c), 2) << "n=" << n;
    EXPECT_EQ(config::symmetry(c), brute_symmetry_def3(c)) << "n=" << n;
  }

  // Random asymmetric draws: whatever the brute force says (almost surely 1).
  for (int iter = 0; iter < 60; ++iter) {
    const std::size_t n = 3 + static_cast<std::size_t>(r.uniform_int(0, 29));
    const configuration c(workloads::uniform_random(n, r));
    EXPECT_EQ(config::symmetry(c), brute_symmetry_def3(c))
        << "iter=" << iter << " n=" << n;
  }
}

// -- strict-weak-ordering regression ---------------------------------------

// The old view_classes sorted whole views with the tolerance comparator, a
// relation that is not a strict weak ordering near the tolerance boundary
// (a ~ b and b ~ c do not imply a ~ c).  The canonical-key pipeline groups
// by exact integer keys instead.  These configurations place view entries
// within fractions of the tolerance of each other -- close enough that a
// comparator sort is fragile, while staying inside the transitive range so
// the expected grouping is well defined.
TEST(ViewPipeline, NearToleranceTwinsGroupLikeReference) {
  sim::rng r(0x7717u);
  const double eps = 1e-9;  // default tol angle_eps / rel
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t k = 4 + static_cast<std::size_t>(r.uniform_int(0, 8));
    const bool sub_tolerance = (iter % 2 == 0);
    std::vector<vec2> pts;
    pts.reserve(k);
    for (std::size_t j = 0; j < k; ++j) {
      // Sub-tolerance: jitters stay below eps/16 -- small enough that even
      // after lever-arm amplification (a positional jitter moves the view
      // angle of a nearby vertex by jitter / distance, up to ~5x here) every
      // vertex's view stays tolerance-equal to every other's (one k-member
      // class) and the relation is transitive.  Super-tolerance: per-vertex
      // offsets are spaced 6 eps apart (plus sub-eps jitter), so all views
      // are distinct but separated by only a few tolerances.
      const double jitter_cap = sub_tolerance ? eps / 16.0 : 0.25 * eps;
      const double spread =
          sub_tolerance ? 0.0 : 6.0 * eps * static_cast<double>(j + 1);
      const double dtheta = spread + r.uniform(0.0, jitter_cap);
      const double dr = spread + r.uniform(0.0, jitter_cap);
      const double theta = geom::two_pi * static_cast<double>(j) /
                               static_cast<double>(k) +
                           dtheta;
      const double radius = 1.0 + dr;
      pts.push_back({radius * std::cos(theta), radius * std::sin(theta)});
    }
    const configuration c(std::move(pts));

    const auto fast = config::view_classes(c);
    const auto ref = config::detail::view_classes_reference(c);
    EXPECT_EQ(fast, ref) << "iter=" << iter << " sub=" << sub_tolerance;

    // Partition sanity: every occupied index appears exactly once.
    std::vector<std::size_t> seen;
    for (const auto& cls : fast) {
      ASSERT_FALSE(cls.empty());
      seen.insert(seen.end(), cls.begin(), cls.end());
    }
    std::sort(seen.begin(), seen.end());
    ASSERT_EQ(seen.size(), c.occupied().size());
    for (std::size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i);

    // Tie verification: members of a class really have equal views under
    // compare_views, and distinct class fronts really differ.
    const auto vs = config::all_views(c);
    const geom::tol& t = c.tolerance();
    for (const auto& cls : fast) {
      for (std::size_t i : cls) {
        EXPECT_EQ(config::compare_views(vs[cls.front()], vs[i], t), 0)
            << "iter=" << iter;
      }
    }
    for (std::size_t a = 1; a < fast.size(); ++a) {
      EXPECT_GT(config::compare_views(vs[fast[a - 1].front()],
                                      vs[fast[a].front()], t),
                0)
          << "iter=" << iter;
    }

    // Determinism: an independently built identical configuration produces
    // the identical grouping.
    const configuration c2(std::vector<vec2>(c.robots()));
    EXPECT_EQ(config::view_classes(c2), fast) << "iter=" << iter;
    EXPECT_EQ(config::symmetry(c2), config::symmetry(c)) << "iter=" << iter;
  }
}

}  // namespace
}  // namespace gather
