#include <gtest/gtest.h>

#include <cmath>

#include "config/safe_points.h"
#include "core/core.h"
#include "geometry/angles.h"
#include "geometry/predicates.h"
#include "sim/rng.h"
#include "workloads/generators.h"

namespace gather::core {
namespace {

using config::config_class;
using config::configuration;
using geom::vec2;

const wait_free_gather kAlgo;

TEST(MultipleCase, RobotAtTargetStays) {
  const configuration c({{0, 0}, {0, 0}, {3, 0}});
  EXPECT_EQ(kAlgo.destination({c, {0, 0}}), (vec2{0, 0}));
}

TEST(MultipleCase, FreeRobotMovesStraight) {
  const configuration c({{0, 0}, {0, 0}, {3, 0}});
  EXPECT_EQ(kAlgo.destination({c, {3, 0}}), (vec2{0, 0}));
}

TEST(MultipleCase, BlockedRobotSideSteps) {
  // Robot at (4,0) is blocked by (2,0); it must leave the ray but keep its
  // distance to the target.
  const configuration c({{0, 0}, {0, 0}, {2, 0}, {4, 0}});
  const vec2 d = kAlgo.destination({c, {4, 0}});
  ASSERT_TRUE(geom::in_open_segment({2, 0}, {4, 0}, {0, 0}, c.tolerance()));
  EXPECT_NE(d, (vec2{0, 0}));
  EXPECT_NEAR(geom::distance(d, {0, 0}), 4.0, 1e-9);
  // Clockwise rotation: negative mathematical angle, so y < 0.
  EXPECT_LT(d.y, 0.0);
}

TEST(MultipleCase, SideStepRespectsThirdOfGap) {
  // Another occupied ray at 90 degrees clockwise; the side-step must rotate
  // by at most 30 degrees.
  const configuration c({{0, 0}, {0, 0}, {2, 0}, {4, 0}, {0, -3}});
  const double theta = wait_free_gather::side_step_angle(c, {4, 0}, {0, 0});
  EXPECT_LE(theta, geom::pi / 2 / 3 + 1e-12);
  EXPECT_GT(theta, 0.0);
}

TEST(MultipleCase, SideStepIgnoresOwnRayRobots) {
  // Only blockers on the robot's own ray: the gap to "other rays" is
  // undefined, so a fixed default is used; it must still be positive.
  const configuration c({{0, 0}, {0, 0}, {2, 0}, {4, 0}});
  const double theta = wait_free_gather::side_step_angle(c, {4, 0}, {0, 0});
  EXPECT_GT(theta, 0.0);
  EXPECT_LT(theta, geom::pi);
}

TEST(MultipleCase, CoLocatedRobotsShareDestination) {
  const configuration c({{0, 0}, {0, 0}, {2, 0}, {4, 0}, {4, 0}});
  const vec2 d1 = kAlgo.destination({c, {4, 0}});
  const vec2 d2 = kAlgo.destination({c, {4, 0}});
  EXPECT_EQ(d1, d2);
}

TEST(QuasiRegularCase, MovesToWeberPoint) {
  sim::rng r(51);
  const auto pts = workloads::biangular(3, 0.5, r);
  const configuration c(pts);
  ASSERT_EQ(config::classify(c).cls, config_class::quasi_regular);
  for (const config::occupied_point& o : c.occupied()) {
    const vec2 d = kAlgo.destination({c, o.position});
    EXPECT_NEAR(d.x, 0.0, 1e-6);
    EXPECT_NEAR(d.y, 0.0, 1e-6);
  }
}

TEST(Linear1WCase, MovesToMedian) {
  const configuration c({{0, 0}, {1, 0}, {2, 0}, {3, 0}, {7, 0}});
  ASSERT_EQ(config::classify(c).cls, config_class::linear_1w);
  EXPECT_NEAR(kAlgo.destination({c, {7, 0}}).x, 2.0, 1e-9);
  EXPECT_NEAR(kAlgo.destination({c, {0, 0}}).x, 2.0, 1e-9);
  // The robot at the median stays.
  EXPECT_EQ(kAlgo.destination({c, {2, 0}}), (vec2{2, 0}));
}

TEST(AsymmetricCase, LeaderIsSafeAndUnique) {
  const configuration c({{0, 0}, {5, 0}, {1, 3}, {-2, 1}, {0.5, -2.5}});
  ASSERT_EQ(config::classify(c).cls, config_class::asymmetric);
  const auto leader = wait_free_gather::elect_leader(c);
  ASSERT_TRUE(leader.has_value());
  EXPECT_TRUE(config::is_safe_point(c, *leader));
  // Everyone moves to the leader; the leader stays.
  for (const config::occupied_point& o : c.occupied()) {
    EXPECT_EQ(kAlgo.destination({c, o.position}), *leader);
  }
}

TEST(AsymmetricCase, LeaderPrefersMultiplicityThenSumOfDistances) {
  // Two stacked robots (safe) must win over singletons.
  const configuration c({{0, 0}, {0, 0}, {5, 1}, {1, 4}, {-3, 2}, {2, -3}});
  if (config::classify(c).cls == config_class::multiple) {
    GTEST_SKIP() << "configuration classified as M";
  }
  const auto leader = wait_free_gather::elect_leader(c);
  ASSERT_TRUE(leader.has_value());
  EXPECT_EQ(*leader, (vec2{0, 0}));
}

TEST(AsymmetricCase, ElectionInvariantUnderSimilarity) {
  const std::vector<vec2> base = {{0, 0}, {5, 0}, {1, 3}, {-2, 1}, {0.5, -2.5}};
  const configuration c1(base);
  const auto l1 = wait_free_gather::elect_leader(c1);
  std::vector<vec2> moved;
  for (const vec2& p : base) {
    moved.push_back(vec2{7, -2} + 0.6 * geom::rotated_ccw(p, 2.1));
  }
  const configuration c2(moved);
  const auto l2 = wait_free_gather::elect_leader(c2);
  ASSERT_TRUE(l1 && l2);
  const vec2 mapped = vec2{7, -2} + 0.6 * geom::rotated_ccw(*l1, 2.1);
  EXPECT_NEAR(l2->x, mapped.x, 1e-7);
  EXPECT_NEAR(l2->y, mapped.y, 1e-7);
}

TEST(Linear2WCase, EndpointsLeaveLineOthersGoCenter) {
  const configuration c({{0, 0}, {1, 0}, {3, 0}, {8, 0}});
  ASSERT_EQ(config::classify(c).cls, config_class::linear_2w);
  const vec2 center{4, 0};
  EXPECT_EQ(kAlgo.destination({c, {1, 0}}), center);
  EXPECT_EQ(kAlgo.destination({c, {3, 0}}), center);
  const vec2 d_lo = kAlgo.destination({c, {0, 0}});
  const vec2 d_hi = kAlgo.destination({c, {8, 0}});
  // Endpoints keep their distance to the center but leave the line.
  EXPECT_NEAR(geom::distance(d_lo, center), 4.0, 1e-9);
  EXPECT_NEAR(geom::distance(d_hi, center), 4.0, 1e-9);
  EXPECT_GT(std::fabs(d_lo.y), 0.1);
  EXPECT_GT(std::fabs(d_hi.y), 0.1);
}

TEST(BivalentCase, RobotsHoldPosition) {
  const configuration c({{0, 0}, {0, 0}, {4, 0}, {4, 0}});
  EXPECT_EQ(kAlgo.destination({c, {0, 0}}), (vec2{0, 0}));
  EXPECT_EQ(kAlgo.destination({c, {4, 0}}), (vec2{4, 0}));
}

TEST(Gathered, RobotStays) {
  const configuration c({{2, 2}, {2, 2}});
  EXPECT_EQ(kAlgo.destination({c, {2, 2}}), (vec2{2, 2}));
}

TEST(WaitFreeness, Lemma51OnCorpus) {
  // At most one occupied location may be stationary in any configuration.
  for (std::size_t n : {4u, 5u, 7u, 8u, 9u, 12u}) {
    for (const auto& wl : workloads::corpus(n, 600 + n)) {
      const configuration c(wl.points);
      EXPECT_TRUE(satisfies_wait_freeness(c, kAlgo)) << wl.name << " n=" << n;
    }
  }
}

TEST(WaitFreeness, RandomCloudsNeverDeadlock) {
  sim::rng r(53);
  for (int trial = 0; trial < 60; ++trial) {
    const auto pts = workloads::uniform_random(3 + trial % 12, r);
    const configuration c(pts);
    EXPECT_TRUE(satisfies_wait_freeness(c, kAlgo)) << trial;
  }
}

TEST(Destinations, ParallelToOccupied) {
  const configuration c({{0, 0}, {5, 0}, {1, 3}});
  EXPECT_EQ(destinations(c, kAlgo).size(), c.distinct_count());
}

TEST(Destinations, BulkMatchesPerPointOnCorpus) {
  // The batched override must be semantically identical to per-snapshot
  // calls for every configuration class.
  for (std::size_t n : {4u, 6u, 8u, 9u}) {
    for (const auto& wl : workloads::corpus(n, 12'000 + n)) {
      const configuration c(wl.points);
      const auto bulk = kAlgo.destinations(c);
      ASSERT_EQ(bulk.size(), c.distinct_count()) << wl.name;
      for (std::size_t i = 0; i < bulk.size(); ++i) {
        const vec2 single = kAlgo.destination({c, c.occupied()[i].position});
        EXPECT_LT(geom::distance(bulk[i], single), 1e-12 * (1.0 + c.diameter()))
            << wl.name << " i=" << i;
      }
    }
  }
}

TEST(StationaryLocations, MultipleCaseHasExactlyOne) {
  const configuration c({{0, 0}, {0, 0}, {3, 0}, {1, 4}});
  const auto stat = stationary_locations(c, kAlgo);
  ASSERT_EQ(stat.size(), 1u);
  EXPECT_EQ(stat.front(), (vec2{0, 0}));
}

}  // namespace
}  // namespace gather::core
