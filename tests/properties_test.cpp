// Property-style parameterized sweeps (TEST_P) over seeds and sizes for the
// invariants the paper's proofs rely on.
#include <gtest/gtest.h>

#include <tuple>

#include "config/config.h"
#include "core/core.h"
#include "geometry/angles.h"
#include "sim/sim.h"
#include "sim_support.h"
#include "workloads/generators.h"

namespace gather {
namespace {

using config::config_class;
using config::configuration;
using geom::vec2;

const core::wait_free_gather kAlgo;

// ---------------------------------------------------------------------------
// P1: the classification partition is total and invariant under direct
// similarities, for random clouds of every size.
// ---------------------------------------------------------------------------

class ClassificationInvariance
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ClassificationInvariance, StableUnderSimilarity) {
  const auto [n, seed] = GetParam();
  sim::rng r(static_cast<std::uint64_t>(seed) * 977 + n);
  const auto pts = workloads::uniform_random(n, r);
  const config_class base = config::classify(configuration(pts)).cls;
  for (int k = 0; k < 3; ++k) {
    const double ang = r.uniform(0.0, geom::two_pi);
    const double s = std::exp(r.uniform(-1.5, 1.5));
    const vec2 off{r.uniform(-20, 20), r.uniform(-20, 20)};
    std::vector<vec2> moved;
    for (const vec2& p : pts) moved.push_back(off + s * geom::rotated_ccw(p, ang));
    EXPECT_EQ(config::classify(configuration(moved)).cls, base)
        << "n=" << n << " seed=" << seed << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ClassificationInvariance,
                         ::testing::Combine(::testing::Values(3, 4, 5, 6, 8, 11, 16),
                                            ::testing::Range(0, 8)));

// ---------------------------------------------------------------------------
// P2: Lemma 5.1 wait-freeness -- at most one stationary location -- holds on
// random clouds, on every corpus class, and on perturbed symmetric configs.
// ---------------------------------------------------------------------------

class WaitFreeness : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(WaitFreeness, AtMostOneStationaryLocation) {
  const auto [n, seed] = GetParam();
  sim::rng r(static_cast<std::uint64_t>(seed) * 1031 + n);
  const auto pts = workloads::uniform_random(n, r);
  EXPECT_TRUE(core::satisfies_wait_freeness(configuration(pts), kAlgo));
  // Stacked variant: move a random robot onto another.
  auto stacked = pts;
  stacked[0] = stacked[n / 2];
  EXPECT_TRUE(core::satisfies_wait_freeness(configuration(stacked), kAlgo));
}

INSTANTIATE_TEST_SUITE_P(Sweep, WaitFreeness,
                         ::testing::Combine(::testing::Values(3, 4, 5, 7, 9, 13),
                                            ::testing::Range(0, 10)));

// ---------------------------------------------------------------------------
// P3: Lemma 3.2 -- moving robots towards the Weber point of a QR
// configuration preserves it (per-robot random fractions).
// ---------------------------------------------------------------------------

class WeberInvariance : public ::testing::TestWithParam<int> {};

TEST_P(WeberInvariance, MovesTowardsWeberPreserveIt) {
  sim::rng r(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
  const std::size_t k = 3 + GetParam() % 4;
  auto pts = workloads::biangular(k, 0.2 + 0.05 * (GetParam() % 5), r);
  const configuration c(pts);
  const auto w = config::weber_point(c);
  ASSERT_TRUE(w.exact);
  for (vec2& p : pts) p = geom::lerp(p, w.point, r.uniform(0.0, 0.9));
  const auto w2 = config::weber_point(configuration(pts));
  EXPECT_NEAR(w2.point.x, w.point.x, 1e-6);
  EXPECT_NEAR(w2.point.y, w.point.y, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, WeberInvariance, ::testing::Range(0, 12));

// ---------------------------------------------------------------------------
// P4: Lemma 4.2 -- every non-linear configuration has a safe point; moving
// all robots towards an elected safe point never yields B or L2W
// (claim C1 of Lemma 5.6).
// ---------------------------------------------------------------------------

class SafePointProgress : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SafePointProgress, OneStepNeverProducesBivalentOrL2W) {
  const auto [n, seed] = GetParam();
  sim::rng r(static_cast<std::uint64_t>(seed) * 499 + n);
  const auto pts = workloads::uniform_random(n, r);
  const configuration c(pts);
  if (c.is_linear()) GTEST_SKIP();
  EXPECT_FALSE(config::safe_occupied_points(c).empty());

  if (config::classify(c).cls != config_class::asymmetric) GTEST_SKIP();
  const auto leader = core::wait_free_gather::elect_leader(c);
  ASSERT_TRUE(leader.has_value());
  // Arbitrary subset of robots moves arbitrary fractions towards the leader.
  auto moved = pts;
  for (vec2& p : moved) {
    if (r.flip()) p = geom::lerp(p, *leader, r.uniform(0.1, 1.0));
  }
  const config_class next = config::classify(configuration(moved)).cls;
  EXPECT_NE(next, config_class::bivalent);
  EXPECT_NE(next, config_class::linear_2w);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SafePointProgress,
                         ::testing::Combine(::testing::Values(4, 5, 6, 8, 10),
                                            ::testing::Range(0, 10)));

// ---------------------------------------------------------------------------
// P5: full-run property -- for every (n, f, scheduler) combination, random
// instances gather with zero wait-freeness violations and only allowed class
// transitions.
// ---------------------------------------------------------------------------

struct RunParam {
  int n;
  int f;
  int sched;
};

class FullRun : public ::testing::TestWithParam<RunParam> {};

TEST_P(FullRun, GathersCleanly) {
  const RunParam p = GetParam();
  sim::rng r(static_cast<std::uint64_t>(p.n) * 7919 + p.f * 271 + p.sched);
  const auto pts = workloads::uniform_random(p.n, r);
  auto sched = sim::all_schedulers()[p.sched].make();
  auto move = sim::make_random_stop();
  auto crash = sim::make_random_crashes(p.f, 50);
  sim::sim_options opts;
  opts.check_wait_freeness = true;
  opts.seed = static_cast<std::uint64_t>(p.n) * 13 + p.f;
  const auto res = sim::run_sim(pts, kAlgo, *sched, *move, *crash, opts);
  EXPECT_EQ(res.status, sim::sim_status::gathered);
  EXPECT_EQ(res.wait_free_violations, 0u);
  EXPECT_EQ(res.bivalent_entries, 0u);
  EXPECT_TRUE(sim::transitions_allowed(res.class_history));
}

std::vector<RunParam> full_run_grid() {
  std::vector<RunParam> out;
  for (int n : {4, 6, 9, 12}) {
    for (int f : {0, 1, n / 2, n - 1}) {
      for (int s = 0; s < static_cast<int>(sim::all_schedulers().size()); ++s) {
        out.push_back({n, f, s});
      }
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Grid, FullRun, ::testing::ValuesIn(full_run_grid()),
                         [](const ::testing::TestParamInfo<RunParam>& param_info) {
                           return "n" + std::to_string(param_info.param.n) +
                                  "_f" + std::to_string(param_info.param.f) +
                                  "_s" + std::to_string(param_info.param.sched);
                         });

// ---------------------------------------------------------------------------
// P6: QR detection agrees between a configuration and a randomly
// re-expressed copy (frame determinism of Theorem 3.1's detector).
// ---------------------------------------------------------------------------

class QrDetectionDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(QrDetectionDeterminism, SameAnswerInAnyFrame) {
  sim::rng r(static_cast<std::uint64_t>(GetParam()) * 37 + 5);
  const std::size_t k = 3 + GetParam() % 3;
  const auto pts = (GetParam() % 2 == 0)
                       ? workloads::symmetric_rings(k, 2, r)
                       : workloads::biangular(k, 0.35, r);
  const auto base = config::detect_quasi_regularity(configuration(pts));
  ASSERT_TRUE(base.has_value());
  const double ang = r.uniform(0.0, geom::two_pi);
  const double s = std::exp(r.uniform(-1.0, 1.0));
  const vec2 off{r.uniform(-9, 9), r.uniform(-9, 9)};
  std::vector<vec2> moved;
  for (const vec2& p : pts) moved.push_back(off + s * geom::rotated_ccw(p, ang));
  const auto again = config::detect_quasi_regularity(configuration(moved));
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->degree, base->degree);
  const vec2 mapped = off + s * geom::rotated_ccw(base->center, ang);
  EXPECT_NEAR(again->center.x, mapped.x, 1e-5);
  EXPECT_NEAR(again->center.y, mapped.y, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Sweep, QrDetectionDeterminism, ::testing::Range(0, 12));

}  // namespace
}  // namespace gather
