// sim_spec API tests: the aggregate entry points validate their inputs, the
// run()/run_async() free functions are deterministic and bit-identical to
// driving the engines directly, and sim_result records the absolute delta
// actually used.  (The deprecated positional shims these originally compared
// against -- engine ctor, async_engine ctor, simulate, simulate_async,
// runner::execute_one -- are gone; the sim_spec path is the only entry.)
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/wait_free_gather.h"
#include "runner/runner.h"
#include "sim/sim.h"
#include "workloads/generators.h"

namespace gather::sim {
namespace {

using geom::vec2;

const core::wait_free_gather kAlgo;

std::vector<vec2> cloud(std::size_t n, std::uint64_t seed) {
  rng r(seed);
  return workloads::uniform_random(n, r);
}

void expect_same_result(const sim_result& a, const sim_result& b) {
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.wait_free_violations, b.wait_free_violations);
  EXPECT_EQ(a.bivalent_entries, b.bivalent_entries);
  EXPECT_DOUBLE_EQ(a.delta_abs, b.delta_abs);
  ASSERT_EQ(a.final_positions.size(), b.final_positions.size());
  for (std::size_t i = 0; i < a.final_positions.size(); ++i) {
    EXPECT_EQ(a.final_positions[i].x, b.final_positions[i].x);
    EXPECT_EQ(a.final_positions[i].y, b.final_positions[i].y);
  }
}

TEST(SimSpec, RunValidatesRequiredPieces) {
  auto sched = make_synchronous();
  auto move = make_full_movement();
  auto crash = make_no_crash();

  sim_spec spec;
  spec.initial = cloud(6, 3);
  spec.scheduler = sched.get();
  spec.movement = move.get();
  spec.crash = crash.get();
  EXPECT_THROW((void)run(spec), std::invalid_argument);  // algorithm unset

  spec.algorithm = &kAlgo;
  spec.scheduler = nullptr;
  EXPECT_THROW((void)run(spec), std::invalid_argument);

  spec.scheduler = sched.get();
  spec.initial.clear();
  EXPECT_THROW((void)run(spec), std::invalid_argument);

  spec.initial = cloud(6, 3);
  EXPECT_EQ(run(spec).status, sim_status::gathered);
}

TEST(SimSpec, RunAsyncValidatesRequiredPieces) {
  auto move = make_full_movement();
  auto crash = make_no_crash();

  sim_spec spec;
  spec.initial = cloud(5, 4);
  spec.movement = move.get();
  spec.crash = crash.get();
  EXPECT_THROW((void)run_async(spec), std::invalid_argument);

  spec.algorithm = &kAlgo;
  EXPECT_EQ(run_async(spec).status, sim_status::gathered);
}

// --- spec-path equivalences --------------------------------------------------
// The free functions must be pure functions of the spec: re-running a spec
// with fresh adversary instances reproduces the run bit-for-bit, and driving
// the engine class directly matches run()/run_async() exactly.  These are
// the migrated successors of the shim-equivalence tests (the shims are
// deleted).

TEST(SimSpecEquivalence, RunIsDeterministicAcrossFreshAdversaries) {
  const auto pts = cloud(8, 7);
  sim_options opts;
  opts.seed = 21;
  opts.delta_fraction = 0.04;

  auto make_run = [&] {
    auto sched = make_fair_random();
    auto move = make_random_stop();
    auto crash = make_random_crashes(2, 30);
    sim_spec spec;
    spec.initial = pts;
    spec.algorithm = &kAlgo;
    spec.scheduler = sched.get();
    spec.movement = move.get();
    spec.crash = crash.get();
    spec.options = opts;
    return run(spec);
  };
  expect_same_result(make_run(), make_run());
}

TEST(SimSpecEquivalence, EngineCtorMatchesRun) {
  const auto pts = cloud(7, 9);
  sim_options opts;
  opts.seed = 5;

  auto sched1 = make_round_robin();
  auto move1 = make_full_movement();
  auto crash1 = make_no_crash();
  sim_spec spec1;
  spec1.initial = pts;
  spec1.algorithm = &kAlgo;
  spec1.scheduler = sched1.get();
  spec1.movement = move1.get();
  spec1.crash = crash1.get();
  spec1.options = opts;
  engine direct(spec1);

  auto sched2 = make_round_robin();
  auto move2 = make_full_movement();
  auto crash2 = make_no_crash();
  sim_spec spec2 = spec1;
  spec2.scheduler = sched2.get();
  spec2.movement = move2.get();
  spec2.crash = crash2.get();

  expect_same_result(direct.run(), run(spec2));
}

TEST(SimSpecEquivalence, RunAsyncIsDeterministicAcrossFreshAdversaries) {
  const auto pts = cloud(6, 13);
  async_options opts;
  opts.seed = 17;
  opts.policy = async_policy::random_interleaving;

  auto make_run = [&] {
    auto move = make_random_stop();
    auto crash = make_random_crashes(1, 30);
    sim_spec spec;
    spec.initial = pts;
    spec.algorithm = &kAlgo;
    spec.movement = move.get();
    spec.crash = crash.get();
    spec.async = opts;
    return run_async(spec);
  };
  const auto a = make_run();
  const auto b = make_run();
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_DOUBLE_EQ(a.delta_abs, b.delta_abs);
}

TEST(SimSpecEquivalence, AsyncEngineCtorMatchesRunAsync) {
  const auto pts = cloud(5, 23);
  async_options opts;
  opts.seed = 3;
  opts.policy = async_policy::look_all_move_all;

  auto move1 = make_full_movement();
  auto crash1 = make_no_crash();
  sim_spec spec1;
  spec1.initial = pts;
  spec1.algorithm = &kAlgo;
  spec1.movement = move1.get();
  spec1.crash = crash1.get();
  spec1.async = opts;
  async_engine direct(spec1);

  auto move2 = make_full_movement();
  auto crash2 = make_no_crash();
  sim_spec spec2 = spec1;
  spec2.movement = move2.get();
  spec2.crash = crash2.get();

  const auto a = direct.run();
  const auto b = run_async(spec2);
  EXPECT_EQ(a.status, b.status);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.cycles, b.cycles);
}

TEST(SimSpecEquivalence, ExecuteCellIsPure) {
  runner::grid g;
  runner::run_spec spec;
  spec.workload = "uniform";
  spec.n = 6;
  spec.f = 2;
  spec.scheduler = "fair-random";
  spec.movement = "random-stop";
  spec.delta = 0.05;
  spec.index = 4;
  spec.seed = runner::derive_seed(g.base_seed, spec.index);

  const auto first = runner::execute_cell(spec, g);
  const auto second = runner::execute_cell(spec, g);
  EXPECT_EQ(first.status, second.status);
  EXPECT_EQ(first.rounds, second.rounds);
  EXPECT_EQ(first.crashes, second.crashes);
  EXPECT_EQ(first.phase_count, second.phase_count);
}

// --- delta_abs ---------------------------------------------------------------

TEST(SimSpec, ResultRecordsAbsoluteDelta) {
  // Four robots on a unit square: diameter = sqrt(2), so delta_abs must be
  // delta_fraction * sqrt(2) for both engines.
  const std::vector<vec2> pts = {{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  auto sched = make_synchronous();
  auto move = make_full_movement();
  auto crash = make_no_crash();

  sim_spec spec;
  spec.initial = pts;
  spec.algorithm = &kAlgo;
  spec.scheduler = sched.get();
  spec.movement = move.get();
  spec.crash = crash.get();
  spec.options.delta_fraction = 0.1;
  spec.async.delta_fraction = 0.25;

  const double diameter = std::sqrt(2.0);
  EXPECT_NEAR(run(spec).delta_abs, 0.1 * diameter, 1e-12);
  EXPECT_NEAR(run_async(spec).delta_abs, 0.25 * diameter, 1e-12);
}

}  // namespace
}  // namespace gather::sim
