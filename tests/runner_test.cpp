// Tier-1 coverage for the batch execution subsystem (src/runner/):
// thread-pool lifecycle, grid expansion, seed derivation, summary math,
// strict parameter parsing and the CSV byte format.
//
// Every suite name starts with "Runner" so the ThreadSanitizer preset can
// select the whole layer with `ctest --preset tsan` (filter ^Runner).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>

#include "obs/metrics_registry.h"
#include "runner/runner.h"

namespace gather::runner {
namespace {

// ---------------------------------------------------------------- thread pool

TEST(RunnerThreadPool, ConstructDestroyIdle) {
  for (std::size_t jobs : {1u, 2u, 4u, 8u}) {
    thread_pool pool(jobs);
    EXPECT_EQ(pool.size(), jobs);
  }
}

TEST(RunnerThreadPool, DefaultJobsAtLeastOne) {
  EXPECT_GE(thread_pool::default_jobs(), 1u);
  thread_pool pool;  // jobs = 0 means hardware concurrency
  EXPECT_EQ(pool.size(), thread_pool::default_jobs());
}

TEST(RunnerThreadPool, SubmitRunsEveryTask) {
  thread_pool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&count] { ++count; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 200);
}

TEST(RunnerThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    thread_pool pool(2);
    for (int i = 0; i < 100; ++i) {
      (void)pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        ++count;
      });
    }
    // Destroyed while most tasks are still queued.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(RunnerThreadPool, SubmitPropagatesExceptionThroughFuture) {
  thread_pool pool(2);
  auto ok = pool.submit([] {});
  auto bad = pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_NO_THROW(ok.get());
  EXPECT_THROW(bad.get(), std::runtime_error);
}

TEST(RunnerThreadPool, ParallelForCoversEveryIndexOnce) {
  thread_pool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(RunnerThreadPool, ParallelForZeroCountIsNoop) {
  thread_pool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(RunnerThreadPool, ParallelForSingleJobRunsInOrder) {
  thread_pool pool(1);
  std::vector<std::size_t> order;
  pool.parallel_for(50, [&](std::size_t i) { order.push_back(i); });
  std::vector<std::size_t> expected(50);
  std::iota(expected.begin(), expected.end(), 0u);
  EXPECT_EQ(order, expected);
}

TEST(RunnerThreadPool, ParallelForRethrowsTaskException) {
  thread_pool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(100,
                        [&](std::size_t i) {
                          ++ran;
                          if (i == 3) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
  // The pool aborts outstanding work and stays usable afterwards.
  EXPECT_GE(ran.load(), 1);
  std::atomic<int> after{0};
  pool.parallel_for(10, [&](std::size_t) { ++after; });
  EXPECT_EQ(after.load(), 10);
}

TEST(RunnerThreadPool, ReusableAcrossBatches) {
  thread_pool pool(3);
  std::atomic<int> total{0};
  for (int batch = 0; batch < 5; ++batch) {
    pool.parallel_for(40, [&](std::size_t) { ++total; });
  }
  EXPECT_EQ(total.load(), 200);
}

// --------------------------------------------------------------------- seeds

TEST(RunnerSeeds, DeriveSeedIsStableAndSpreads) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const std::uint64_t s = derive_seed(42, i);
    EXPECT_EQ(s, derive_seed(42, i));  // pure function
    seen.insert(s);
  }
  EXPECT_EQ(seen.size(), 1000u);  // no collisions on a small range
  EXPECT_NE(derive_seed(1, 7), derive_seed(2, 7));  // base matters
}

// ----------------------------------------------------------------- expansion

grid small_grid() {
  grid g;
  g.workloads = {"uniform", "majority"};
  g.ns = {4, 6};
  g.fs = {0, 5};
  g.schedulers = {"fair-random", "round-robin"};
  g.movements = {"random-stop"};
  g.deltas = {0.05, 0.1};
  g.repeats = 3;
  g.base_seed = 9;
  return g;
}

TEST(RunnerExpand, CountsSkipInfeasibleCells) {
  const auto specs = expand(small_grid());
  // f=5 is infeasible for n=4 (f >= n), so the (n, f) axis contributes
  // 3 feasible pairs: (4,0), (6,0), (6,5).
  // 2 workloads * 3 pairs * 2 schedulers * 1 movement * 2 deltas * 3 repeats.
  EXPECT_EQ(specs.size(), 2u * 3u * 2u * 1u * 2u * 3u);
}

TEST(RunnerExpand, AssignsIndicesAndHashedSeeds) {
  const auto g = small_grid();
  const auto specs = expand(g);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(specs[i].index, i);
    EXPECT_EQ(specs[i].seed, derive_seed(g.base_seed, i));
  }
  // Canonical loop nest: workloads outermost, repeats innermost.
  EXPECT_EQ(specs.front().workload, "uniform");
  EXPECT_EQ(specs.front().repeat, 0);
  EXPECT_EQ(specs[1].repeat, 1);
  EXPECT_EQ(specs.back().workload, "majority");
  EXPECT_EQ(specs.back().f, 5u);
}

TEST(RunnerExpand, RejectsUnknownNamesAndBadAxes) {
  auto g = small_grid();
  g.workloads = {"no-such-workload"};
  EXPECT_THROW((void)expand(g), std::invalid_argument);

  g = small_grid();
  g.schedulers = {"no-such-scheduler"};
  EXPECT_THROW((void)expand(g), std::invalid_argument);

  g = small_grid();
  g.movements = {"no-such-movement"};
  EXPECT_THROW((void)expand(g), std::invalid_argument);

  g = small_grid();
  g.repeats = 0;
  EXPECT_THROW((void)expand(g), std::invalid_argument);

  g = small_grid();
  g.ns.clear();
  EXPECT_THROW((void)expand(g), std::invalid_argument);
}

// ------------------------------------------------------------------ campaign

TEST(RunnerCampaign, ExecutesWholeGridInOrder) {
  grid g;
  g.workloads = {"uniform", "majority"};
  g.ns = {5};
  g.fs = {0, 2};
  g.schedulers = {"fair-random"};
  g.movements = {"random-stop"};
  g.repeats = 2;
  campaign_spec spec;
  spec.grid = g;
  spec.exec.jobs = 2;
  const auto results = run_campaign(spec).rows;
  ASSERT_EQ(results.size(), 2u * 2u * 2u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].spec.index, i);
    EXPECT_EQ(results[i].status, sim::sim_status::gathered) << i;
    EXPECT_GT(results[i].rounds, 0u) << i;
    EXPECT_EQ(results[i].wait_free_violations, 0u) << i;
  }
}

TEST(RunnerCampaign, ProgressCallbackReportsEveryRunSerially) {
  grid g;
  g.workloads = {"uniform"};
  g.ns = {4};
  g.fs = {0};
  g.repeats = 5;
  campaign_spec spec;
  spec.grid = g;
  spec.exec.jobs = 1;  // serial: completions arrive in order
  spec.exec.progress_stride = 1;
  std::vector<progress> seen;
  spec.exec.on_progress = [&](const progress& p) { seen.push_back(p); };
  const auto results = run_campaign(spec).rows;
  ASSERT_EQ(results.size(), 5u);
  ASSERT_EQ(seen.size(), 5u);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i].completed, i + 1);
    EXPECT_EQ(seen[i].total, 5u);
    EXPECT_EQ(seen[i].failures, 0u);
  }
  EXPECT_GT(seen.back().runs_per_sec, 0.0);
  EXPECT_EQ(seen.back().eta_seconds, 0.0);
}

// ------------------------------------------------------------------- summary

run_result make_result(const std::string& workload, std::size_t f,
                       sim::sim_status status, std::size_t rounds) {
  run_result r;
  r.spec.workload = workload;
  r.spec.n = 8;
  r.spec.f = f;
  r.spec.scheduler = "fair-random";
  r.spec.movement = "random-stop";
  r.spec.delta = 0.05;
  r.n = 8;
  r.status = status;
  r.rounds = rounds;
  r.crashes = f;
  return r;
}

TEST(RunnerSummary, QuantileIsNearestRank) {
  EXPECT_EQ(round_quantile({}, 0.5), 0u);
  EXPECT_EQ(round_quantile({7}, 0.5), 7u);
  // Sorted sample {1, 2, 3, 4}: median = ceil(0.5*4) = 2nd element,
  // p90 = ceil(0.9*4) = 4th element.
  EXPECT_EQ(round_quantile({4, 1, 3, 2}, 0.5), 2u);
  EXPECT_EQ(round_quantile({4, 1, 3, 2}, 0.9), 4u);
  EXPECT_EQ(round_quantile({4, 1, 3, 2}, 0.0), 1u);
  EXPECT_EQ(round_quantile({4, 1, 3, 2}, 1.0), 4u);
  // {10, 20, 30}: median = ceil(1.5) = 2nd element.
  EXPECT_EQ(round_quantile({30, 10, 20}, 0.5), 20u);
}

TEST(RunnerSummary, QuantileAgreesWithObsHistogramDefinition) {
  // round_quantile and obs::histogram::quantile_bounds share the
  // nearest-rank definition (obs/quantile.h): the exact sample quantile must
  // always lie inside the histogram's bucket bounds for the same q.
  const std::vector<std::size_t> sample = {1, 2, 3, 5, 8, 13, 21, 34, 55, 89};
  obs::histogram hist(obs::pow2_bounds(8));  // buckets 1, 2, 4, ..., 128
  for (std::size_t v : sample) hist.observe(static_cast<double>(v));
  for (double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const std::size_t exact = round_quantile(sample, q);
    const auto bounds = hist.quantile_bounds(q);
    EXPECT_GT(static_cast<double>(exact), bounds.lower)
        << "q=" << q << " exact=" << exact;
    EXPECT_LE(static_cast<double>(exact), bounds.upper)
        << "q=" << q << " exact=" << exact;
  }
  // Both sides clamp: rank(0) and rank(1) hit the extreme sample elements.
  EXPECT_EQ(round_quantile(sample, 0.0), 1u);
  EXPECT_EQ(round_quantile(sample, 1.0), 89u);
}

TEST(RunnerSummary, AggregatesPerCellAgainstHandComputedValues) {
  // Cell A (uniform, f=0): rounds {10, 30, 20} all gathered.
  // Cell B (uniform, f=2): one gathered (rounds 40), one stalled.
  std::vector<run_result> results = {
      make_result("uniform", 0, sim::sim_status::gathered, 10),
      make_result("uniform", 0, sim::sim_status::gathered, 30),
      make_result("uniform", 2, sim::sim_status::gathered, 40),
      make_result("uniform", 2, sim::sim_status::stalled, 0),
      make_result("uniform", 0, sim::sim_status::gathered, 20),
  };
  results[3].wait_free_violations = 2;

  const auto cells = summarize(results);
  ASSERT_EQ(cells.size(), 2u);  // grouped, first-seen order

  EXPECT_EQ(cells[0].f, 0u);
  EXPECT_EQ(cells[0].runs, 3u);
  EXPECT_EQ(cells[0].gathered, 3u);
  EXPECT_DOUBLE_EQ(cells[0].success_rate(), 1.0);
  EXPECT_EQ(cells[0].median_rounds, 20u);
  EXPECT_EQ(cells[0].p90_rounds, 30u);
  EXPECT_EQ(cells[0].max_rounds, 30u);

  EXPECT_EQ(cells[1].f, 2u);
  EXPECT_EQ(cells[1].runs, 2u);
  EXPECT_EQ(cells[1].gathered, 1u);
  EXPECT_EQ(cells[1].stalled, 1u);
  EXPECT_DOUBLE_EQ(cells[1].success_rate(), 0.5);
  EXPECT_EQ(cells[1].median_rounds, 40u);
  EXPECT_EQ(cells[1].wait_free_violations, 2u);
  EXPECT_EQ(cells[1].crashes, 4u);

  const auto totals = overall(results);
  EXPECT_EQ(totals.runs, 5u);
  EXPECT_EQ(totals.gathered, 4u);
  EXPECT_EQ(totals.failures, 1u);
  EXPECT_EQ(totals.wait_free_violations, 2u);
}

// -------------------------------------------------------------------- params

TEST(RunnerParams, SplitCsvStrictAcceptsCleanLists) {
  EXPECT_EQ(split_csv_strict("a"), (std::vector<std::string>{"a"}));
  EXPECT_EQ(split_csv_strict("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(RunnerParams, SplitCsvStrictRejectsEmptyAndDuplicateTokens) {
  EXPECT_THROW((void)split_csv_strict(""), std::invalid_argument);
  EXPECT_THROW((void)split_csv_strict("a,,b"), std::invalid_argument);
  EXPECT_THROW((void)split_csv_strict(",a"), std::invalid_argument);
  EXPECT_THROW((void)split_csv_strict("a,"), std::invalid_argument);
  EXPECT_THROW((void)split_csv_strict("a,b,a"), std::invalid_argument);
}

TEST(RunnerParams, NumericListsRejectGarbage) {
  EXPECT_EQ(parse_size_list("8,16"), (std::vector<std::size_t>{8, 16}));
  EXPECT_THROW((void)parse_size_list("8,x"), std::invalid_argument);
  EXPECT_THROW((void)parse_size_list("8x"), std::invalid_argument);
  EXPECT_THROW((void)parse_size_list("-3"), std::invalid_argument);
  EXPECT_EQ(parse_double_list("0.05,0.1"), (std::vector<double>{0.05, 0.1}));
  EXPECT_THROW((void)parse_double_list("0.05,zz"), std::invalid_argument);
}

TEST(RunnerParams, LookupsMatchRegistriesAndThrowOnUnknown) {
  EXPECT_EQ(workload_names().size(), 11u);
  sim::rng r(3);
  for (const auto& name : workload_names()) {
    EXPECT_GE(build_workload(name, 8, r).size(), 3u) << name;
  }
  EXPECT_THROW((void)build_workload("nope", 8, r), std::invalid_argument);
  EXPECT_EQ(scheduler_by_name("fair-random")->name(), "fair-random");
  EXPECT_THROW((void)scheduler_by_name("nope"), std::invalid_argument);
  EXPECT_EQ(movement_by_name("random-stop")->name(), "random-stop");
  EXPECT_THROW((void)movement_by_name("nope"), std::invalid_argument);
}

// ------------------------------------------------------------------ csv form

TEST(RunnerCsv, RowFormatIsPinned) {
  run_result r = make_result("uniform", 2, sim::sim_status::gathered, 17);
  r.spec.seed = 12345;
  r.crashes = 2;
  r.first_multiplicity_round = 5;
  r.phase_count = 3;
  EXPECT_EQ(csv_header(),
            "workload,n,f,scheduler,movement,delta,seed,status,rounds,"
            "crashes,wait_free_violations,bivalent_entries,first_mult_round,"
            "phases");
  EXPECT_EQ(csv_row(r),
            "uniform,8,2,fair-random,random-stop,0.05,12345,gathered,17,2,0,"
            "0,5,3");
  // No multiplicity point ever formed: the field is empty, not 18446744...
  r.first_multiplicity_round = static_cast<std::size_t>(-1);
  EXPECT_EQ(csv_row(r),
            "uniform,8,2,fair-random,random-stop,0.05,12345,gathered,17,2,0,"
            "0,,3");
}

}  // namespace
}  // namespace gather::runner
