#include <gtest/gtest.h>

#include <cmath>

#include "config/weber.h"
#include "geometry/angles.h"
#include "sim/rng.h"
#include "workloads/generators.h"

namespace gather::config {
namespace {

using geom::vec2;

TEST(Weiszfeld, TriangleMedianBeatsNeighbours) {
  const configuration c({{0, 0}, {4, 0}, {1, 3}});
  const auto med = geometric_median_weiszfeld(c);
  ASSERT_TRUE(med.has_value());
  const double base = c.sum_distances(*med);
  for (double dx : {-0.01, 0.01}) {
    for (double dy : {-0.01, 0.01}) {
      EXPECT_LE(base, c.sum_distances(*med + vec2{dx, dy}) + 1e-9);
    }
  }
}

TEST(Weiszfeld, SquareMedianIsCenter) {
  const configuration c({{1, 1}, {-1, 1}, {-1, -1}, {1, -1}});
  const auto med = geometric_median_weiszfeld(c);
  ASSERT_TRUE(med.has_value());
  EXPECT_NEAR(med->x, 0.0, 1e-9);
  EXPECT_NEAR(med->y, 0.0, 1e-9);
}

TEST(Weiszfeld, MajorityPointDominates) {
  // With more than half the robots at one point, that point is the median.
  const configuration c({{0, 0}, {0, 0}, {0, 0}, {5, 0}, {0, 7}});
  const auto med = geometric_median_weiszfeld(c);
  ASSERT_TRUE(med.has_value());
  EXPECT_NEAR(med->x, 0.0, 1e-9);
  EXPECT_NEAR(med->y, 0.0, 1e-9);
}

TEST(Weiszfeld, HandlesIterateOnDataPoint) {
  // Centroid (the start) coincides with a data point but is not the median.
  const configuration c({{0, 0}, {3, 0}, {-3, 0}, {0, 3}, {0, -3}});
  const auto med = geometric_median_weiszfeld(c);
  ASSERT_TRUE(med.has_value());
  EXPECT_NEAR(med->x, 0.0, 1e-9);
  EXPECT_NEAR(med->y, 0.0, 1e-9);
}

TEST(Weiszfeld, GatheredReturnsThePoint) {
  const configuration c({{2, 3}, {2, 3}});
  EXPECT_EQ(*geometric_median_weiszfeld(c), (vec2{2, 3}));
}

TEST(Weiszfeld, EmptyReturnsNullopt) {
  EXPECT_FALSE(geometric_median_weiszfeld(configuration()).has_value());
}

TEST(LinearWeber, OddCountUniqueMedian) {
  const configuration c({{0, 0}, {1, 0}, {2, 0}, {3, 0}, {10, 0}});
  const weber_result w = linear_weber(c);
  EXPECT_TRUE(w.unique);
  EXPECT_TRUE(w.exact);
  EXPECT_NEAR(w.point.x, 2.0, 1e-9);
}

TEST(LinearWeber, EvenCountInterval) {
  const configuration c({{0, 0}, {1, 0}, {3, 0}, {10, 0}});
  const weber_result w = linear_weber(c);
  EXPECT_FALSE(w.unique);
  EXPECT_NEAR(w.lo.x, 1.0, 1e-9);
  EXPECT_NEAR(w.hi.x, 3.0, 1e-9);
}

TEST(LinearWeber, EvenCountCoincidentMediansUnique) {
  // The two middle robots share a location: unique Weber point.
  const configuration c({{0, 0}, {2, 0}, {2, 0}, {10, 0}});
  const weber_result w = linear_weber(c);
  EXPECT_TRUE(w.unique);
  EXPECT_NEAR(w.point.x, 2.0, 1e-9);
}

TEST(LinearWeber, MultiplicityWeighsMedian) {
  // Three robots stacked at x=5 out of 5 total: median at 5.
  const configuration c({{0, 0}, {1, 0}, {5, 0}, {5, 0}, {5, 0}});
  const weber_result w = linear_weber(c);
  EXPECT_TRUE(w.unique);
  EXPECT_NEAR(w.point.x, 5.0, 1e-9);
}

TEST(LinearWeber, WorksOnTiltedLines) {
  const vec2 dir = geom::normalized({1, 2});
  std::vector<vec2> pts;
  for (double s : {0.0, 1.0, 4.0, 9.0, 16.0}) pts.push_back(s * dir);
  const weber_result w = linear_weber(configuration(pts));
  EXPECT_TRUE(w.unique);
  EXPECT_NEAR(w.point.x, 4.0 * dir.x, 1e-9);
  EXPECT_NEAR(w.point.y, 4.0 * dir.y, 1e-9);
}

TEST(WeberPoint, QuasiRegularIsExact) {
  sim::rng r(21);
  const auto pts = workloads::biangular(4, 0.25, r);
  const weber_result w = weber_point(configuration(pts));
  EXPECT_TRUE(w.unique);
  EXPECT_TRUE(w.exact);
  EXPECT_NEAR(w.point.x, 0.0, 1e-6);
  EXPECT_NEAR(w.point.y, 0.0, 1e-6);
}

TEST(WeberPoint, GenericFallsBackToWeiszfeld) {
  const configuration c({{0, 0}, {5, 0}, {1, 3}, {-2, 1}, {0.5, -2.5}});
  const weber_result w = weber_point(c);
  EXPECT_TRUE(w.unique);
  EXPECT_FALSE(w.exact);
  // Still a genuine minimizer.
  const double base = c.sum_distances(w.point);
  EXPECT_LE(base, c.sum_distances(w.point + vec2{0.01, 0.0}) + 1e-9);
}

TEST(WeberPoint, InvarianceUnderMovesTowardIt) {
  // Lemma 3.2: moving robots straight towards the Weber point preserves it.
  sim::rng r(31);
  const auto pts = workloads::biangular(4, 0.25, r);
  const configuration c(pts);
  const vec2 wp = weber_point(c).point;
  std::vector<vec2> moved;
  double f = 0.15;
  for (const vec2& p : pts) {
    moved.push_back(geom::lerp(p, wp, f));
    f = std::fmod(f + 0.17, 0.9);  // different fractions per robot
  }
  const vec2 wp2 = weber_point(configuration(moved)).point;
  EXPECT_NEAR(wp2.x, wp.x, 1e-6);
  EXPECT_NEAR(wp2.y, wp.y, 1e-6);
}

}  // namespace
}  // namespace gather::config
