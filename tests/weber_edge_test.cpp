// Edge cases of the Weber-point machinery: Fermat-point regimes, 4-point
// configurations, weighted declines of the closed forms, and the subgradient
// data-point optimality test.
#include <gtest/gtest.h>

#include <cmath>

#include "config/weber.h"
#include "geometry/angles.h"

namespace gather::config {
namespace {

using geom::vec2;

double sum_dist(const configuration& c, vec2 p) { return c.sum_distances(p); }

void expect_local_min(const configuration& c, vec2 p, double h = 1e-4) {
  const double base = sum_dist(c, p);
  for (int k = 0; k < 8; ++k) {
    const double a = geom::two_pi * k / 8;
    EXPECT_LE(base, sum_dist(c, p + h * vec2{std::cos(a), std::sin(a)}) + 1e-10)
        << "direction " << k;
  }
}

TEST(Fermat, EquilateralTriangleCentroid) {
  const configuration c({{0, 0}, {2, 0}, {1, std::sqrt(3.0)}});
  const auto med = geometric_median_weiszfeld(c);
  ASSERT_TRUE(med.has_value());
  EXPECT_NEAR(med->x, 1.0, 1e-9);
  EXPECT_NEAR(med->y, 1.0 / std::sqrt(3.0), 1e-9);
}

TEST(Fermat, AllAnglesUnder120SeeEqualAngles) {
  // At the Fermat point the three sides subtend 120 degrees each.
  const configuration c({{0, 0}, {4, 0}, {1, 2.5}});
  const auto med = geometric_median_weiszfeld(c);
  ASSERT_TRUE(med.has_value());
  const vec2 p = *med;
  const vec2 v[3] = {{0, 0}, {4, 0}, {1, 2.5}};
  for (int i = 0; i < 3; ++i) {
    const double ang =
        geom::angular_separation(v[i] - p, v[(i + 1) % 3] - p);
    EXPECT_NEAR(ang, 2.0 * geom::pi / 3.0, 1e-7) << i;
  }
}

TEST(Fermat, ObtuseVertexIsTheMedian) {
  // Angle at (0,0) is > 120 degrees: the vertex itself is the Weber point.
  const configuration c({{0, 0}, {5, 1}, {-5, 1.5}});
  const auto med = geometric_median_weiszfeld(c);
  ASSERT_TRUE(med.has_value());
  EXPECT_NEAR(med->x, 0.0, 1e-12);
  EXPECT_NEAR(med->y, 0.0, 1e-12);
}

TEST(FourPoints, ConvexQuadDiagonalCrossing) {
  const configuration c({{0, 0}, {4, 0}, {5, 3}, {-1, 2}});
  const auto med = geometric_median_weiszfeld(c);
  ASSERT_TRUE(med.has_value());
  expect_local_min(c, *med);
  // The crossing lies strictly inside the quad.
  EXPECT_GT(med->x, -1.0);
  EXPECT_LT(med->x, 5.0);
}

TEST(FourPoints, NonConvexInnerPointWins) {
  // Triangle with a fourth point inside: the inner point is the median.
  const configuration c({{0, 0}, {6, 0}, {3, 5}, {3, 1.5}});
  const auto med = geometric_median_weiszfeld(c);
  ASSERT_TRUE(med.has_value());
  EXPECT_NEAR(med->x, 3.0, 1e-12);
  EXPECT_NEAR(med->y, 1.5, 1e-12);
}

TEST(Weighted, ClosedFormsDeclineAndIterationHandlesWeights) {
  // Three distinct points but one carries weight 3 (>= half of n=5):
  // the subgradient condition makes the heavy point the median.
  const configuration c({{0, 0}, {0, 0}, {0, 0}, {4, 0}, {1, 3}});
  const auto med = geometric_median_weiszfeld(c);
  ASSERT_TRUE(med.has_value());
  EXPECT_NEAR(med->x, 0.0, 1e-12);
  EXPECT_NEAR(med->y, 0.0, 1e-12);
}

TEST(Weighted, BalancedStacksInteriorMedian) {
  // Two stacks of 2 and two singletons: the optimum is interior.
  const configuration c({{0, 0}, {0, 0}, {6, 0}, {6, 0}, {3, 4}, {3, -4}});
  const auto med = geometric_median_weiszfeld(c);
  ASSERT_TRUE(med.has_value());
  expect_local_min(c, *med);
  EXPECT_NEAR(med->y, 0.0, 1e-6);  // symmetry
}

TEST(Subgradient, BoundaryOfDataPointOptimality) {
  // Symmetric cross: pull on the center from 4 unit directions cancels, so
  // the center (weight 1) is optimal; removing it keeps the point optimal
  // as an unoccupied minimizer.
  const configuration with_center({{0, 0}, {1, 0}, {-1, 0}, {0, 1}, {0, -1}});
  const auto med = geometric_median_weiszfeld(with_center);
  EXPECT_NEAR(med->x, 0.0, 1e-9);
  EXPECT_NEAR(med->y, 0.0, 1e-9);
}

TEST(WeberResult, LinearIntervalMidpointReported) {
  const configuration c({{0, 0}, {2, 0}, {6, 0}, {10, 0}});
  const weber_result w = weber_point(c);
  EXPECT_FALSE(w.unique);
  EXPECT_NEAR(w.point.x, 4.0, 1e-9);  // midpoint of [2, 6]
  EXPECT_NEAR(w.lo.x, 2.0, 1e-9);
  EXPECT_NEAR(w.hi.x, 6.0, 1e-9);
}

TEST(WeberResult, InvarianceAcrossSimilarity) {
  const std::vector<vec2> base = {{0, 0}, {4, 0}, {5, 3}, {-1, 2}, {2, -3}};
  const configuration c1(base);
  const vec2 w1 = weber_point(c1).point;
  std::vector<vec2> moved;
  for (const vec2& p : base) {
    moved.push_back(vec2{3, 3} + 1.5 * geom::rotated_ccw(p, 0.9));
  }
  const vec2 w2 = weber_point(configuration(moved)).point;
  const vec2 mapped = vec2{3, 3} + 1.5 * geom::rotated_ccw(w1, 0.9);
  EXPECT_NEAR(w2.x, mapped.x, 1e-7);
  EXPECT_NEAR(w2.y, mapped.y, 1e-7);
}

}  // namespace
}  // namespace gather::config
