// The derived-geometry cache equivalence and invalidation suite.
//
// The cache contract (config/derived.h) is that a value served from the
// cache is bit-identical to a freshly computed one: the wrappers delegate to
// the same cache-free computation the old API ran on every call.  The fuzz
// suite here checks that contract over >= 1000 random configurations by
// comparing every derived quantity across (a) a cold cache, (b) a warm
// cache, and (c) a freshly constructed configuration over the same points.
// The invalidation tests pin the generation semantics of every mutation.

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <vector>

#include "config/classify.h"
#include "config/configuration.h"
#include "config/regularity.h"
#include "config/safe_points.h"
#include "config/views.h"
#include "config/weber.h"
#include "sim/rng.h"

namespace gather::config {
namespace {

using geom::vec2;

// Exact bitwise comparisons: the contract is bit-identity, so the usual
// tolerance helpers would be too lenient here.
void expect_same_vec(const vec2& a, const vec2& b) {
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.y, b.y);
}

void expect_same_weber(const weber_result& a, const weber_result& b) {
  EXPECT_EQ(a.unique, b.unique);
  EXPECT_EQ(a.exact, b.exact);
  expect_same_vec(a.point, b.point);
  expect_same_vec(a.lo, b.lo);
  expect_same_vec(a.hi, b.hi);
}

void expect_same_classification(const classification& a, const classification& b) {
  EXPECT_EQ(a.cls, b.cls);
  ASSERT_EQ(a.target.has_value(), b.target.has_value());
  if (a.target) expect_same_vec(*a.target, *b.target);
  EXPECT_EQ(a.qreg_degree, b.qreg_degree);
}

void expect_same_view(const view& a, const view& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].angle, b[i].angle);
    EXPECT_EQ(a[i].dist, b[i].dist);
  }
}

/// Compare every derived quantity of `a` and `b` bit for bit.  `a` may have
/// any cache state; `b` is typically freshly constructed (cold cache).
void expect_equivalent(const configuration& a, const configuration& b) {
  expect_same_classification(classify(a), classify(b));
  expect_same_weber(weber_point(a), weber_point(b));
  if (a.is_linear()) expect_same_weber(linear_weber(a), linear_weber(b));

  const std::optional<quasi_regularity> qa = detect_quasi_regularity(a);
  const std::optional<quasi_regularity> qb = detect_quasi_regularity(b);
  ASSERT_EQ(qa.has_value(), qb.has_value());
  if (qa) {
    expect_same_vec(qa->center, qb->center);
    EXPECT_EQ(qa->degree, qb->degree);
  }

  EXPECT_EQ(safe_occupied_points(a), safe_occupied_points(b));

  const auto va = all_views(a);
  const auto vb = all_views(b);
  ASSERT_EQ(va.size(), vb.size());
  for (std::size_t i = 0; i < va.size(); ++i) expect_same_view(va[i], vb[i]);
  EXPECT_EQ(view_classes(a), view_classes(b));
  for (const occupied_point& o : a.occupied()) {
    expect_same_view(view_of(a, o.position), view_of(b, o.position));
  }
}

std::vector<vec2> random_points(sim::rng& random, std::size_t n, bool collinear) {
  std::vector<vec2> pts;
  pts.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = random.uniform(-10.0, 10.0);
    pts.push_back(collinear ? vec2{x, 0.5 * x} : vec2{x, random.uniform(-10.0, 10.0)});
  }
  // Occasionally stack robots so multiplicities and class M/B show up.
  if (n >= 2 && random.flip(0.3)) pts[n - 1] = pts[0];
  return pts;
}

// -- fuzz equivalence -------------------------------------------------------

TEST(ConfigCacheFuzz, CachedMatchesFreshBitwise) {
  sim::rng random(20260806);
  int checked = 0;
  for (int iter = 0; iter < 1000; ++iter) {
    const std::size_t n = 2 + random.uniform_int(0, 8);
    const bool collinear = random.flip(0.25);
    const std::vector<vec2> pts = random_points(random, n, collinear);

    configuration cached(pts);   // serves from the cache after first call
    configuration fresh(pts);    // fresh object per comparison pass
    // Pass 1 fills cached's slots (cold); pass 2 serves them warm.  Both
    // must match the freshly built configuration bit for bit.
    expect_equivalent(cached, fresh);
    const configuration fresh2(pts);
    expect_equivalent(cached, fresh2);
    ++checked;
    if (::testing::Test::HasFailure()) break;  // one bad config is enough
  }
  EXPECT_EQ(checked, 1000);
}

TEST(ConfigCacheFuzz, MutatedConfigurationMatchesRebuild) {
  sim::rng random(77001);
  for (int iter = 0; iter < 300; ++iter) {
    const std::size_t n = 3 + random.uniform_int(0, 6);
    std::vector<vec2> pts = random_points(random, n, random.flip(0.25));
    configuration c(pts);
    (void)classify(c);  // warm the cache, then mutate through the API
    for (int step = 0; step < 4; ++step) {
      const std::size_t i = random.uniform_int(0, pts.size() - 1);
      const vec2 p{random.uniform(-10.0, 10.0), random.uniform(-10.0, 10.0)};
      switch (random.uniform_int(0, 2)) {
        case 0:
          pts[i] = p;
          c.set_position(i, p);
          break;
        case 1:
          pts.push_back(p);
          c.insert_robot(p);
          break;
        default:
          if (pts.size() > 2) {
            pts.erase(pts.begin() + static_cast<std::ptrdiff_t>(i));
            c.remove_robot(i);
          }
          break;
      }
      (void)weber_point(c);  // interleave reads so stale slots would surface
    }
    const configuration rebuilt(pts);
    ASSERT_EQ(c.size(), rebuilt.size());
    for (std::size_t i = 0; i < c.robots().size(); ++i) {
      expect_same_vec(c.robots()[i], rebuilt.robots()[i]);
    }
    expect_equivalent(c, rebuilt);
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(ConfigCacheFuzz, RepeatedReadsUnderOneGenerationAreIdentical) {
  sim::rng random(424242);
  for (int iter = 0; iter < 200; ++iter) {
    const std::vector<vec2> pts =
        random_points(random, 3 + random.uniform_int(0, 6), random.flip(0.25));
    const configuration c(pts);
    const std::uint64_t gen = c.generation();
    const classification first = classify(c);
    const weber_result w1 = weber_point(c);
    const classification second = classify(c);
    const weber_result w2 = weber_point(c);
    expect_same_classification(first, second);
    expect_same_weber(w1, w2);
    EXPECT_EQ(c.generation(), gen);  // reads never bump the generation
    if (::testing::Test::HasFailure()) break;
  }
}

// -- generation / invalidation semantics ------------------------------------

std::vector<vec2> square() {
  return {{0.0, 0.0}, {1.0, 0.0}, {1.0, 1.0}, {0.0, 1.0}};
}

TEST(ConfigGeneration, SetPositionBumpsAndInvalidates) {
  configuration c(square());
  const std::uint64_t g0 = c.generation();
  const classification before = classify(c);
  c.set_position(0, {0.25, 0.25});
  EXPECT_GT(c.generation(), g0);
  const classification after = classify(c);
  // The mutated configuration classifies like a fresh build of its points.
  expect_same_classification(after, classify(configuration(c.robots())));
  (void)before;
}

TEST(ConfigGeneration, ApplyMovesBumpsOnChange) {
  configuration c(square());
  const std::uint64_t g0 = c.generation();
  std::vector<vec2> moved = square();
  moved[2] = {2.0, 2.0};
  c.apply_moves(moved);
  EXPECT_GT(c.generation(), g0);
  expect_equivalent(c, configuration(moved));
}

TEST(ConfigGeneration, ApplyMovesBitwiseIdenticalInputIsNoOp) {
  const std::vector<vec2> pts = square();
  configuration c(pts);
  (void)classify(c);
  const std::uint64_t g1 = c.generation();
  c.apply_moves(pts);  // bitwise-identical raw input
  EXPECT_EQ(c.generation(), g1);  // cache provably still valid: no bump
  expect_equivalent(c, configuration(pts));
}

TEST(ConfigGeneration, InsertRobotBumpsAndInvalidates) {
  configuration c(square());
  const std::uint64_t g0 = c.generation();
  c.insert_robot({0.5, 0.5});
  EXPECT_GT(c.generation(), g0);
  EXPECT_EQ(c.size(), 5u);
  std::vector<vec2> pts = square();
  pts.push_back({0.5, 0.5});
  expect_equivalent(c, configuration(pts));
}

TEST(ConfigGeneration, RemoveRobotBumpsAndInvalidates) {
  configuration c(square());
  const std::uint64_t g0 = c.generation();
  c.remove_robot(1);
  EXPECT_GT(c.generation(), g0);
  EXPECT_EQ(c.size(), 3u);
  std::vector<vec2> pts = square();
  pts.erase(pts.begin() + 1);
  expect_equivalent(c, configuration(pts));
}

TEST(ConfigGeneration, SetPositionReplacesTheRemovedRawAccessShim) {
  // The deprecated raw-point-access shim is gone (docs/API.md,
  // "Deprecations and removals"); the same out-of-band write is expressed
  // through the invalidating mutation API and observes nothing stale.
  configuration c(square());
  const std::uint64_t g0 = c.generation();
  c.set_position(3, {3.0, 3.0});
  EXPECT_GT(c.generation(), g0);
  std::vector<vec2> pts = square();
  pts[3] = {3.0, 3.0};
  expect_equivalent(c, configuration(pts));
}

TEST(ConfigGeneration, SetTolRefreshBumpsAndMatchesEnginePolicy) {
  const std::vector<vec2> pts = square();
  configuration c(pts);
  const std::uint64_t g0 = c.generation();
  const double floor = 1e-6;
  c.set_tol_refresh(floor);
  EXPECT_GT(c.generation(), g0);
  // The refreshed policy reproduces for_points + floored abs_floor exactly.
  geom::tol expected = geom::tol::for_points(pts);
  expected.abs_floor = std::max(expected.abs_floor, floor);
  EXPECT_EQ(c.tolerance().abs_floor, expected.abs_floor);
  // And it is re-applied on every subsequent mutation.
  std::vector<vec2> moved = pts;
  moved[0] = {-5.0, -5.0};
  c.apply_moves(moved);
  geom::tol expected2 = geom::tol::for_points(moved);
  expected2.abs_floor = std::max(expected2.abs_floor, floor);
  EXPECT_EQ(c.tolerance().abs_floor, expected2.abs_floor);
}

TEST(ConfigGeneration, CopyStartsColdButEquivalent) {
  configuration c(square());
  (void)classify(c);  // warm the source cache
  const configuration copy(c);
  EXPECT_EQ(copy.size(), c.size());
  expect_equivalent(copy, c);
}

}  // namespace
}  // namespace gather::config
