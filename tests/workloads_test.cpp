#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "config/classify.h"
#include "config/views.h"
#include "workloads/generators.h"

namespace gather::workloads {
namespace {

using config::config_class;
using config::configuration;

TEST(Generators, UniformRandomCountAndBounds) {
  sim::rng r(1);
  const auto pts = uniform_random(20, r, 5.0);
  EXPECT_EQ(pts.size(), 20u);
  for (const vec2& p : pts) {
    EXPECT_LE(std::abs(p.x), 5.0);
    EXPECT_LE(std::abs(p.y), 5.0);
  }
}

TEST(Generators, UniformRandomDeterministicPerSeed) {
  sim::rng r1(42), r2(42), r3(43);
  EXPECT_EQ(uniform_random(5, r1), uniform_random(5, r2));
  EXPECT_NE(uniform_random(5, r1), uniform_random(5, r3));
}

TEST(Generators, RegularPolygonGeometry) {
  const auto pts = regular_polygon(8, {2, 3}, 1.5);
  EXPECT_EQ(pts.size(), 8u);
  for (const vec2& p : pts) {
    EXPECT_NEAR(geom::distance(p, {2, 3}), 1.5, 1e-12);
  }
  EXPECT_EQ(config::symmetry(configuration(pts)), 8);
}

TEST(Generators, SymmetricRingsHaveSymmetry) {
  sim::rng r(2);
  const auto pts = symmetric_rings(5, 3, r);
  EXPECT_EQ(pts.size(), 15u);
  EXPECT_EQ(config::symmetry(configuration(pts)) % 5, 0);
}

TEST(Generators, BiangularClassifiesQR) {
  sim::rng r(3);
  for (std::size_t k : {2u, 3u, 4u, 6u}) {
    const auto pts = biangular(k, 0.3, r);
    EXPECT_EQ(pts.size(), 2 * k);
    const auto cls = config::classify(configuration(pts)).cls;
    EXPECT_TRUE(cls == config_class::quasi_regular ||
                cls == config_class::bivalent)  // k=2 with 4 pts can degenerate
        << k;
  }
}

TEST(Generators, QuasiRegularWithCenterHasCenterRobot) {
  sim::rng r(4);
  const auto pts = quasi_regular_with_center(7, 2, r);
  EXPECT_EQ(pts.size(), 7u);
  const configuration c(pts);
  EXPECT_EQ(c.multiplicity({0, 0}), 2);
}

TEST(Generators, LinearWorkloadsAreLinear) {
  sim::rng r(5);
  EXPECT_TRUE(configuration(linear_unique_weber(7, r)).is_linear());
  EXPECT_TRUE(configuration(linear_two_weber(6, r)).is_linear());
}

TEST(Generators, LinearClassesMatch) {
  sim::rng r(6);
  EXPECT_EQ(config::classify(configuration(linear_unique_weber(9, r))).cls,
            config_class::linear_1w);
  EXPECT_EQ(config::classify(configuration(linear_two_weber(8, r))).cls,
            config_class::linear_2w);
}

TEST(Generators, MajorityIsClassM) {
  sim::rng r(7);
  const auto pts = with_majority(10, 4, r);
  EXPECT_EQ(pts.size(), 10u);
  EXPECT_EQ(config::classify(configuration(pts)).cls, config_class::multiple);
}

TEST(Generators, BivalentIsClassB) {
  sim::rng r(8);
  const auto pts = bivalent(10, r);
  EXPECT_EQ(config::classify(configuration(pts)).cls, config_class::bivalent);
}

TEST(Generators, AxiallySymmetricKeepsMirrorPairs) {
  sim::rng r(9);
  const auto pts = axially_symmetric(8, r);
  EXPECT_EQ(pts.size(), 8u);
  for (const vec2& p : pts) {
    const bool has_mirror =
        std::any_of(pts.begin(), pts.end(), [&](const vec2& q) {
          return std::abs(q.x + p.x) < 1e-9 && std::abs(q.y - p.y) < 1e-9;
        });
    EXPECT_TRUE(has_mirror);
  }
}

TEST(Generators, PerturbedStaysWithinMagnitude) {
  sim::rng r(10);
  const std::vector<vec2> base = {{0, 0}, {1, 1}, {2, 2}};
  const auto moved = perturbed(base, 0.1, r);
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_LE(geom::distance(base[i], moved[i]), 0.1 + 1e-12);
  }
}

TEST(Corpus, CoversAllGatherableClasses) {
  const auto wls = corpus(8, 99);
  std::set<config_class> seen;
  for (const auto& wl : wls) {
    seen.insert(config::classify(configuration(wl.points)).cls);
  }
  EXPECT_TRUE(seen.count(config_class::multiple));
  EXPECT_TRUE(seen.count(config_class::linear_1w));
  EXPECT_TRUE(seen.count(config_class::linear_2w));
  EXPECT_TRUE(seen.count(config_class::quasi_regular));
  EXPECT_TRUE(seen.count(config_class::asymmetric));
  EXPECT_FALSE(seen.count(config_class::bivalent));
}

TEST(Corpus, ExactExpectationsHold) {
  for (const auto& wl : corpus(10, 123)) {
    if (!wl.expected_exact) continue;
    EXPECT_EQ(config::classify(configuration(wl.points)).cls, wl.expected)
        << wl.name;
  }
}

}  // namespace
}  // namespace gather::workloads
