#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/baselines.h"
#include "core/predicates.h"
#include "core/wait_free_gather.h"
#include "sim/sim.h"
#include "sim_support.h"
#include "workloads/generators.h"

namespace gather::baselines {
namespace {

using geom::vec2;
using sim::sim_options;
using sim::sim_status;

TEST(CenterOfGravity, DestinationIsCentroid) {
  const config::configuration c({{0, 0}, {4, 0}, {2, 6}});
  const center_of_gravity algo;
  const vec2 d = algo.destination({c, {0, 0}});
  EXPECT_NEAR(d.x, 2.0, 1e-12);
  EXPECT_NEAR(d.y, 2.0, 1e-12);
}

TEST(CenterOfGravity, CentroidWeighsMultiplicity) {
  const config::configuration c({{0, 0}, {0, 0}, {0, 0}, {4, 0}});
  const center_of_gravity algo;
  EXPECT_NEAR(algo.destination({c, {4, 0}}).x, 1.0, 1e-12);
}

TEST(CenterOfGravity, ConvergesButDoesNotGatherUnderPartialActivation) {
  const center_of_gravity algo;
  auto sched = sim::make_half_alternating();
  auto move = sim::make_full_movement();
  auto crash = sim::make_no_crash();
  sim_options opts;
  opts.max_rounds = 300;
  sim::rng r(73);
  const auto res = sim::run_sim(workloads::uniform_random(6, r), algo, *sched,
                                 *move, *crash, opts);
  // Convergence: the spread shrinks dramatically...
  EXPECT_LT(sim::spread(res.final_positions), 1e-3);
  // ...but exact gathering (Def. 9) is never reached.
  EXPECT_NE(res.status, sim_status::gathered);
}

TEST(SingleFault, GathersWithoutCrashes) {
  const single_fault_gather algo;
  auto sched = sim::make_synchronous();
  auto move = sim::make_full_movement();
  auto crash = sim::make_no_crash();
  sim_options opts;
  const auto res = sim::run_sim({{0, 0}, {5, 0}, {1, 3}, {-2, 1}}, algo, *sched,
                                 *move, *crash, opts);
  EXPECT_EQ(res.status, sim_status::gathered);
}

TEST(SingleFault, SurvivesOneCrash) {
  const single_fault_gather algo;
  auto sched = sim::make_synchronous();
  auto move = sim::make_full_movement();
  // Crash one of the two designated movers immediately.
  auto crash = sim::make_scheduled_crashes({{0, 0}});
  sim_options opts;
  const auto res = sim::run_sim({{0, 0}, {5, 0}, {1, 3}, {-2, 1}}, algo, *sched,
                                 *move, *crash, opts);
  EXPECT_EQ(res.status, sim_status::gathered);
}

TEST(SingleFault, DeadlocksUnderTwoCrashes) {
  // The motivating failure (paper, Sec. I): crash both designated movers and
  // nobody else ever moves.
  const single_fault_gather algo;
  auto sched = sim::make_synchronous();
  auto move = sim::make_full_movement();
  const std::vector<vec2> pts = {{0, 0}, {5, 0}, {1, 3}, {-2, 1}, {3, -4}};
  // Identify the two movers: closest to the sec center.
  const config::configuration c(pts);
  const vec2 goal = c.sec().center;
  std::vector<std::pair<double, std::size_t>> byd;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    byd.emplace_back(geom::distance(pts[i], goal), i);
  }
  std::sort(byd.begin(), byd.end());
  auto crash =
      sim::make_scheduled_crashes({{0, byd[0].second}, {0, byd[1].second}});
  sim_options opts;
  opts.max_rounds = 500;
  const auto res = sim::run_sim(pts, algo, *sched, *move, *crash, opts);
  EXPECT_NE(res.status, sim_status::gathered);
  // Deadlock, not livelock: positions of live robots never change.
  EXPECT_EQ(sim::spread(res.final_positions), sim::spread(pts));
}

TEST(SingleFault, WaitFreenessViolated) {
  // Lemma 5.1: the baseline leaves more than one location stationary.
  const single_fault_gather algo;
  const config::configuration c({{0, 0}, {5, 0}, {1, 3}, {-2, 1}, {3, -4}});
  EXPECT_FALSE(core::satisfies_wait_freeness(c, algo));
}

TEST(MedianPursuit, MovesTowardsMedian) {
  const median_pursuit algo;
  const config::configuration c({{0, 0}, {4, 0}, {2, 6}, {2, 1}});
  const vec2 d = algo.destination({c, {0, 0}});
  // The median of this set is near (2, 1).
  EXPECT_NEAR(d.x, 2.0, 0.2);
  EXPECT_NEAR(d.y, 1.0, 0.2);
}

TEST(MedianPursuit, ConvergesUnderSynchronousSchedule) {
  const median_pursuit algo;
  auto sched = sim::make_synchronous();
  auto move = sim::make_full_movement();
  auto crash = sim::make_no_crash();
  sim_options opts;
  opts.max_rounds = 200;
  sim::rng r(79);
  const auto res = sim::run_sim(workloads::uniform_random(5, r), algo, *sched,
                                 *move, *crash, opts);
  EXPECT_LT(sim::spread(res.final_positions), 0.5);
}

TEST(Names, AreDistinct) {
  const center_of_gravity a;
  const single_fault_gather b;
  const median_pursuit c;
  const core::wait_free_gather d;
  EXPECT_NE(a.name(), b.name());
  EXPECT_NE(b.name(), c.name());
  EXPECT_NE(c.name(), d.name());
}

}  // namespace
}  // namespace gather::baselines
