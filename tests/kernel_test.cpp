// PR 10 equivalence fuzz: the batch-kernel bulk view fill (SoA pairwise
// table, fused polar records, deterministic intra-round sharding) and the
// divisor-driven quasi-regularity search against their preserved reference
// oracles -- bit for bit for views under every dispatch path and job count,
// exactly for the derived classes/symmetry/QR verdicts.  Per-kernel tests
// pin the AVX2 and scalar paths to identical bytes, the sort kernels to the
// stable radix order, and the snap-identity predicate to its contract.
#include "geometry/kernels.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <vector>

#include "config/configuration.h"
#include "config/derived.h"
#include "config/parallel.h"
#include "config/regularity.h"
#include "config/views.h"
#include "geometry/angles.h"
#include "geometry/transform.h"
#include "sim/rng.h"
#include "util/radix.h"
#include "workloads/generators.h"

namespace gather {
namespace {

using config::configuration;
using config::view;
using geom::vec2;
namespace kernels = geom::kernels;

/// Pin the scalar path for the lifetime of a scope, restoring the default
/// resolution (CPU probe + GATHER_FORCE_SCALAR) on exit.
struct scalar_guard {
  explicit scalar_guard(bool force) {
    if (force) kernels::set_force_scalar(true);
  }
  ~scalar_guard() { kernels::set_force_scalar(false); }
};

/// Pin the geometry job count for a scope, restoring the previous count
/// (which may have come from GATHER_GEOM_JOBS) on exit.
struct jobs_guard {
  explicit jobs_guard(std::size_t jobs) : prev_(config::geometry_jobs()) {
    config::set_geometry_jobs(jobs);
  }
  ~jobs_guard() { config::set_geometry_jobs(prev_); }

 private:
  std::size_t prev_;
};

TEST(KernelDispatch, BatchKernelsMatchScalarBitwise) {
  sim::rng r(0xd15ba7u);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{3},
                              std::size_t{4}, std::size_t{7}, std::size_t{8},
                              std::size_t{33}, std::size_t{1000}}) {
    std::vector<double> xs(n), ys(n);
    std::vector<vec2> pts(n);
    for (std::size_t i = 0; i < n; ++i) {
      xs[i] = r.uniform(-100.0, 100.0);
      ys[i] = r.uniform(-100.0, 100.0);
      pts[i] = {xs[i], ys[i]};
    }
    const double px = r.uniform(-10.0, 10.0), py = r.uniform(-10.0, 10.0);
    const double rx = r.uniform(-2.0, 2.0), ry = r.uniform(-2.0, 2.0);
    const double denom = r.uniform(0.5, 50.0);
    const geom::similarity f(r.uniform(0.0, geom::two_pi),
                             r.uniform(0.5, 2.0),
                             {r.uniform(-5.0, 5.0), r.uniform(-5.0, 5.0)});

    std::vector<double> dist_a(n), cr_a(n), dt_a(n), div_a(n);
    std::vector<vec2> sim_a(n);
    kernels::distance_row(xs.data(), ys.data(), n, px, py, dist_a.data());
    kernels::cross_dot_about(xs.data(), ys.data(), n, px, py, rx, ry,
                             cr_a.data(), dt_a.data());
    kernels::divide_batch(xs.data(), n, denom, div_a.data());
    f.apply_batch(pts.data(), n, sim_a.data());

    scalar_guard guard(true);
    std::vector<double> dist_s(n), cr_s(n), dt_s(n), div_s(n);
    std::vector<vec2> sim_s(n);
    kernels::distance_row(xs.data(), ys.data(), n, px, py, dist_s.data());
    kernels::cross_dot_about(xs.data(), ys.data(), n, px, py, rx, ry,
                             cr_s.data(), dt_s.data());
    kernels::divide_batch(xs.data(), n, denom, div_s.data());
    f.apply_batch(pts.data(), n, sim_s.data());
    // In-place form must agree too.
    std::vector<vec2> sim_ip = pts;
    f.apply_batch(sim_ip.data(), n, sim_ip.data());

    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(dist_a[i], dist_s[i]) << "distance_row n=" << n << " i=" << i;
      EXPECT_EQ(cr_a[i], cr_s[i]) << "cross n=" << n << " i=" << i;
      EXPECT_EQ(dt_a[i], dt_s[i]) << "dot n=" << n << " i=" << i;
      EXPECT_EQ(div_a[i], div_s[i]) << "divide n=" << n << " i=" << i;
      EXPECT_EQ(sim_a[i].x, sim_s[i].x) << "apply n=" << n << " i=" << i;
      EXPECT_EQ(sim_a[i].y, sim_s[i].y) << "apply n=" << n << " i=" << i;
      EXPECT_EQ(sim_ip[i].x, sim_s[i].x) << "apply ip n=" << n << " i=" << i;
      EXPECT_EQ(sim_ip[i].y, sim_s[i].y) << "apply ip n=" << n << " i=" << i;
      // And against the scalar formulas literally.
      EXPECT_EQ(dist_s[i], std::hypot(xs[i] - px, ys[i] - py));
      EXPECT_EQ(div_s[i], xs[i] / denom);
      const vec2 want = f.apply(pts[i]);
      EXPECT_EQ(sim_s[i].x, want.x);
      EXPECT_EQ(sim_s[i].y, want.y);
    }
  }
}

/// Random angle multiset in [0, 2*pi) with deliberate duplicates (drawn
/// from a small pool with probability `dup_p`).
std::vector<double> random_angles(std::size_t n, double dup_p, sim::rng& r) {
  std::vector<double> pool;
  for (int i = 0; i < 8; ++i) pool.push_back(r.uniform(0.0, geom::two_pi));
  std::vector<double> a(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = r.flip(dup_p) ? pool[static_cast<std::size_t>(
                               r.uniform_int(0, pool.size() - 1))]
                         : r.uniform(0.0, geom::two_pi);
  }
  return a;
}

TEST(KernelSort, SortAngleKeysMatchesStableRadix) {
  sim::rng r(0xdeed1u);
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{47},
        std::size_t{255}, std::size_t{256}, std::size_t{257}, std::size_t{999},
        std::size_t{5000}}) {
    const std::vector<double> angles = random_angles(n, 0.3, r);
    std::vector<util::key_idx> fast(n), ref(n);
    for (std::size_t i = 0; i < n; ++i) {
      fast[i] = {kernels::angle_key(angles[i]), static_cast<std::uint32_t>(i)};
      ref[i] = fast[i];
    }
    std::vector<util::key_idx> tmp1, tmp2;
    std::vector<std::uint32_t> buckets;
    kernels::sort_angle_keys(fast, tmp1, buckets);
    util::radix_sort_key_idx(ref, tmp2);
    ASSERT_EQ(fast.size(), ref.size());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(fast[i].key, ref[i].key) << "n=" << n << " i=" << i;
      // idx equality is the stability witness: equal keys keep input order.
      EXPECT_EQ(fast[i].idx, ref[i].idx) << "n=" << n << " i=" << i;
    }
  }
}

TEST(KernelSort, SortPolarRecsMatchesStableSort) {
  sim::rng r(0xdeed2u);
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{47},
        std::size_t{48}, std::size_t{255}, std::size_t{256}, std::size_t{999},
        std::size_t{5000}}) {
    const std::vector<double> angles = random_angles(n, 0.3, r);
    std::vector<kernels::polar_rec> fast(n), ref(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Distinct dists witness stability among equal keys.
      fast[i] = {kernels::angle_key(angles[i]), static_cast<double>(i)};
      ref[i] = fast[i];
    }
    std::vector<kernels::polar_rec> tmp;
    std::vector<std::uint32_t> buckets;
    kernels::sort_polar_recs(fast, tmp, buckets);
    std::stable_sort(ref.begin(), ref.end(),
                     [](const kernels::polar_rec& a,
                        const kernels::polar_rec& b) { return a.key < b.key; });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(fast[i].key, ref[i].key) << "n=" << n << " i=" << i;
      EXPECT_EQ(fast[i].dist, ref[i].dist) << "n=" << n << " i=" << i;
    }
  }
}

TEST(KernelSnap, IdentityVerdictImpliesClusterSnapIsIdentity) {
  sim::rng r(0xdeed3u);
  const double eps = 1e-9;
  int identity_hits = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t n = 1 + static_cast<std::size_t>(r.uniform_int(0, 19));
    std::vector<double> thetas(n);
    double cur = r.uniform(0.0, 1e-8);
    for (std::size_t i = 0; i < n; ++i) {
      // Mix of sub-eps, near-eps and clear gaps, plus near-seam tails.
      const double gap = r.flip(0.3) ? r.uniform(0.0, 2.0 * eps)
                                     : r.uniform(1e-6, 0.4);
      cur += gap;
      thetas[i] = cur;
    }
    if (thetas.back() >= geom::two_pi) continue;
    if (r.flip(0.2)) thetas.front() = 0.0;
    if (r.flip(0.2)) thetas.back() = geom::two_pi - r.uniform(0.0, 2.0 * eps);
    std::sort(thetas.begin(), thetas.end());
    const bool ident = kernels::snap_is_identity(thetas.data(), n, eps);
    // _recs view of the same multiset must agree.
    std::vector<kernels::polar_rec> recs(n);
    for (std::size_t i = 0; i < n; ++i) {
      recs[i] = {kernels::angle_key(thetas[i]), 0.0};
    }
    EXPECT_EQ(ident, kernels::snap_is_identity_recs(recs.data(), n, eps));
    if (!ident) continue;
    ++identity_hits;
    std::vector<double> snapped = thetas, reps;
    geom::cluster_presorted_angles_into(snapped, eps, reps);
    geom::snap_sorted_angles(snapped, reps);
    EXPECT_EQ(0, std::memcmp(snapped.data(), thetas.data(),
                             n * sizeof(double)))
        << "iter=" << iter;
  }
  EXPECT_GT(identity_hits, 100);  // the predicate must actually fire
}

/// One configuration from a rotating family mix (the view_pipeline_test
/// corpus): generic clouds, collinear sets with stacked multiplicities,
/// regular polygons with symmetric multiplicities, near-degenerate
/// perturbations (sub-eps jitter at 1e-12, super-eps at 1e-5) and
/// constructed symmetric families.
std::vector<vec2> fuzz_points(int iter, sim::rng& r) {
  const std::size_t n = 3 + static_cast<std::size_t>(r.uniform_int(0, 21));
  switch (iter % 5) {
    case 0:
      return workloads::uniform_random(n, r);
    case 1: {
      std::vector<vec2> pts =
          (n % 2 == 1)
              ? workloads::linear_unique_weber(n, r)
              : workloads::linear_two_weber(std::max<std::size_t>(n, 4), r);
      if (r.flip(0.5) && !pts.empty()) {
        pts.push_back(pts[r.uniform_int(0, pts.size() - 1)]);
      }
      return pts;
    }
    case 2: {
      const std::size_t k = 3 + static_cast<std::size_t>(r.uniform_int(0, 13));
      const vec2 center{r.uniform(-2.0, 2.0), r.uniform(-2.0, 2.0)};
      std::vector<vec2> pts = workloads::regular_polygon(
          k, center, r.uniform(0.5, 3.0), r.uniform(0.0, geom::two_pi));
      std::vector<std::size_t> divisors;
      for (std::size_t d = 1; d <= k; ++d)
        if (k % d == 0) divisors.push_back(d);
      const std::size_t d = divisors[r.uniform_int(0, divisors.size() - 1)];
      const std::size_t step = k / d;
      const std::size_t base = pts.size();
      for (std::size_t j = 0; j < base; j += step) pts.push_back(pts[j]);
      if (r.flip(0.3)) pts.push_back(center);
      return pts;
    }
    case 3: {
      std::vector<vec2> pts =
          workloads::regular_polygon(std::max<std::size_t>(n, 3), {}, 1.0);
      const double mag = r.flip(0.5) ? 1e-12 : 1e-5;
      pts = workloads::perturbed(std::move(pts), mag, r);
      if (r.flip(0.5)) {
        const vec2 p = pts.front();
        pts.push_back({p.x + 1e-13, p.y - 1e-13});
      }
      return pts;
    }
    default: {
      const std::size_t k = 2 + static_cast<std::size_t>(r.uniform_int(0, 6));
      switch (r.uniform_int(0, 3)) {
        case 0:
          return workloads::symmetric_rings(
              k, 1 + static_cast<std::size_t>(r.uniform_int(0, 2)), r);
        case 1:
          return workloads::bivalent(2 * k, r);
        case 2:
          return workloads::quasi_regular_with_center(
              std::max<std::size_t>(k, 4),
              static_cast<std::size_t>(r.uniform_int(1, 2)), r);
        default:
          return workloads::axially_symmetric(2 * k + 1, r);
      }
    }
  }
}

/// The bulk-fill equivalence body: for every fuzz configuration, the kernel
/// fill must reproduce the reference fill bit for bit, and the derived
/// verdicts built on top of the views (classes, symmetry, quasi-regularity)
/// must match the reference-filled configuration exactly.
void run_fill_fuzz(int iters, std::uint64_t seed) {
  sim::rng r(seed);
  for (int iter = 0; iter < iters; ++iter) {
    const std::vector<vec2> pts = fuzz_points(iter, r);
    const configuration fast_c(pts);
    const configuration ref_c(pts);
    if (fast_c.distinct_count() == 0) continue;
    config::detail::fill_all_view_slots(fast_c);
    config::detail::fill_all_view_slots_reference(ref_c);
    const auto vs_f = config::all_views(fast_c);
    const auto vs_r = config::all_views(ref_c);
    ASSERT_EQ(vs_f.size(), vs_r.size()) << "iter=" << iter;
    for (std::size_t i = 0; i < vs_f.size(); ++i) {
      ASSERT_EQ(vs_f[i].size(), vs_r[i].size())
          << "iter=" << iter << " view=" << i;
      if (!vs_f[i].empty()) {
        EXPECT_EQ(0, std::memcmp(vs_f[i].data(), vs_r[i].data(),
                                 vs_f[i].size() * sizeof(config::polar_entry)))
            << "iter=" << iter << " view=" << i;
      }
    }
    EXPECT_EQ(config::view_classes(fast_c), config::view_classes(ref_c))
        << "iter=" << iter;
    EXPECT_EQ(config::symmetry(fast_c), config::symmetry(ref_c))
        << "iter=" << iter;
    const auto qr_f = config::detect_quasi_regularity(fast_c);
    const auto qr_r = config::detect_quasi_regularity(ref_c);
    ASSERT_EQ(qr_f.has_value(), qr_r.has_value()) << "iter=" << iter;
    if (qr_f) {
      EXPECT_EQ(qr_f->degree, qr_r->degree) << "iter=" << iter;
      EXPECT_EQ(qr_f->center.x, qr_r->center.x) << "iter=" << iter;
      EXPECT_EQ(qr_f->center.y, qr_r->center.y) << "iter=" << iter;
    }
  }
}

TEST(BulkFill, MatchesReferenceOn1000Configs) { run_fill_fuzz(1000, 0x5eedau); }

TEST(BulkFill, MatchesReferenceScalarDispatch) {
  scalar_guard guard(true);
  run_fill_fuzz(1000, 0x5eedbu);
}

TEST(BulkFill, MatchesReferenceWithFourJobs) {
  jobs_guard guard(4);
  run_fill_fuzz(1000, 0x5eedcu);
}

TEST(BulkFill, MatchesReferenceScalarFourJobs) {
  scalar_guard sguard(true);
  jobs_guard jguard(4);
  run_fill_fuzz(500, 0x5eeddu);
}

void check_qr_all_centers(const configuration& c, const char* tag, int iter) {
  for (const auto& o : c.occupied()) {
    const auto fast = config::quasi_regular_about_occupied(c, o.position);
    const auto ref =
        config::detail::quasi_regular_about_occupied_reference(c, o.position);
    ASSERT_EQ(fast.has_value(), ref.has_value())
        << tag << " iter=" << iter << " at (" << o.position.x << ", "
        << o.position.y << ")";
    if (fast) {
      EXPECT_EQ(*fast, *ref) << tag << " iter=" << iter;
    }
  }
}

TEST(QuasiRegular, FastMatchesReferenceOnCuratedFamilies) {
  // Regular m-gons with a loaded center: qreg = m about the center for
  // center_mult >= 1, and the divisor-driven candidate set must find the
  // same maximal degree the exhaustive descent does.
  for (const int m : {3, 4, 5, 6, 8, 12, 17}) {
    for (const int center_mult : {0, 1, 2, 3, 7}) {
      std::vector<vec2> pts;
      for (int i = 0; i < m; ++i) {
        const double a = geom::two_pi * i / m;
        pts.push_back({10.0 * std::cos(a), 10.0 * std::sin(a)});
      }
      for (int i = 0; i < center_mult; ++i) pts.push_back({0.0, 0.0});
      check_qr_all_centers(configuration(pts), "polygon", m);
    }
  }
  // Deficient polygons: d vertices removed, center load d+1 -- quasi-regular
  // with exactly the removed slots as the completion.
  for (const int m : {6, 8, 12}) {
    for (int d = 1; d <= 3; ++d) {
      std::vector<vec2> pts;
      for (int i = d; i < m; ++i) {
        const double a = geom::two_pi * i / m;
        pts.push_back({10.0 * std::cos(a), 10.0 * std::sin(a)});
      }
      for (int i = 0; i <= d; ++i) pts.push_back({0.0, 0.0});
      check_qr_all_centers(configuration(pts), "deficient", m * 10 + d);
    }
  }
  // Square lattices: no quasi-regularity about interior points, degree 4
  // about the center of odd lattices.
  for (const int side : {3, 4, 5}) {
    std::vector<vec2> pts;
    for (int i = 0; i < side; ++i)
      for (int j = 0; j < side; ++j)
        pts.push_back({static_cast<double>(i), static_cast<double>(j)});
    check_qr_all_centers(configuration(pts), "lattice", side);
  }
}

TEST(QuasiRegular, FastMatchesReferenceOnFuzzConfigs) {
  sim::rng r(0x9a5fbu);
  for (int iter = 0; iter < 300; ++iter) {
    const configuration c(fuzz_points(iter, r));
    if (c.distinct_count() == 0) continue;
    check_qr_all_centers(c, "fuzz", iter);
  }
}

TEST(PolarCache, CapServesIdenticalOrdersAsOwningHandles) {
  sim::rng r(0xcab5u);
  // Below the cap: occupied centers alias the cache.
  {
    const configuration c(workloads::uniform_random(32, r));
    const vec2 p = c.occupied().front().position;
    const config::polar_ref ref = config::angular_order_ref(c, p);
    EXPECT_TRUE(ref.aliases_cache());
  }
  // Above the cap: owning handles, entry-identical to the uncached build.
  {
    const configuration c(
        workloads::uniform_random(config::polar_order_cache_cap + 20, r));
    ASSERT_GT(c.distinct_count(), config::polar_order_cache_cap);
    const vec2 p = c.occupied().front().position;
    const config::polar_ref ref = config::angular_order_ref(c, p);
    EXPECT_FALSE(ref.aliases_cache());
    const std::vector<config::angular_entry> want =
        config::detail::angular_order_uncached(c, p);
    ASSERT_EQ(ref.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(ref.entries()[i].theta, want[i].theta);
      EXPECT_EQ(ref.entries()[i].dist, want[i].dist);
    }
  }
}

}  // namespace
}  // namespace gather
