// Bounded model checker: clean sweeps stay violation-free, symmetry pruning
// pays for itself, broken algorithms produce counterexamples, and recorded
// counterexample schedules replay bit-identically through the simulator.
#include <gtest/gtest.h>

#include <sstream>

#include "baselines/center_of_gravity.h"
#include "check/check.h"
#include "core/wait_free_gather.h"
#include "sim/sim.h"

namespace {

using namespace gather;
using geom::vec2;

/// Deliberately broken: every robot holds position, so any non-gathered
/// configuration has every occupied location stationary -- the exact shape
/// of a Lemma 5.1 wait-freeness violation.
class stay_algorithm final : public core::gathering_algorithm {
 public:
  [[nodiscard]] vec2 destination(const core::snapshot& s) const override {
    return s.self;
  }
  [[nodiscard]] std::string_view name() const override { return "stay"; }
};

check::check_spec wfg_spec(std::vector<std::vector<vec2>> seeds) {
  static const core::wait_free_gather wfg;
  check::check_spec spec;
  spec.seeds = std::move(seeds);
  spec.algorithm = &wfg;
  return spec;
}

TEST(LatticeMultisets, CountsAndShape) {
  // C(9 + n - 1, n) multisets of n points on the 3x3 lattice.
  EXPECT_EQ(check::lattice_multisets(3, 3, 1).size(), 9u);
  EXPECT_EQ(check::lattice_multisets(3, 3, 2).size(), 45u);
  const auto seeds = check::lattice_multisets(3, 3, 3);
  EXPECT_EQ(seeds.size(), 165u);
  for (const auto& s : seeds) EXPECT_EQ(s.size(), 3u);
  // Fixed deterministic order: first seed is all-origin, last all-corner.
  EXPECT_EQ(seeds.front(), std::vector<vec2>(3, vec2{0.0, 0.0}));
  EXPECT_EQ(seeds.back(), std::vector<vec2>(3, vec2{2.0, 2.0}));
}

TEST(Explore, WaitFreeGatherCleanOnSmallLattices) {
  auto spec = wfg_spec(check::lattice_multisets(3, 3, 3));
  obs::metrics_registry metrics;
  spec.metrics = &metrics;
  const check::check_result r = check::explore(spec);

  EXPECT_EQ(r.total_violations(), 0u);
  EXPECT_TRUE(r.counterexamples.empty());
  EXPECT_EQ(r.seeds, 165u);
  EXPECT_FALSE(r.state_cap_hit);
  EXPECT_GT(r.states_explored, 1000u);
  EXPECT_GT(r.terminal_gathered, 0u);

  // Acceptance: canonical pruning buys at least a 2x reduction even by the
  // conservative within-run measure (raw-unique / canonical-unique).
  EXPECT_GE(r.symmetry_reduction(), 2.0);

  // Every state lemma is evaluated in every explored state; transition
  // lemmas in every checked transition.
  ASSERT_FALSE(r.state_coverage.empty());
  for (const auto& cov : r.state_coverage) {
    EXPECT_EQ(cov.applicable + cov.not_applicable, r.states_explored)
        << cov.id;
  }
  ASSERT_FALSE(r.transition_coverage.empty());
  for (const auto& cov : r.transition_coverage) {
    EXPECT_EQ(cov.applicable + cov.not_applicable, r.transitions_checked)
        << cov.id;
  }

  // Metrics export mirrors the result counters.
  EXPECT_EQ(*metrics.find_counter("check.states_explored"),
            r.states_explored);
  EXPECT_EQ(*metrics.find_counter("check.violations"), 0u);
}

TEST(Explore, TransitionLemmasCoverEveryGeneratedEdge) {
  // Transition lemmas are edge properties: an edge into an already-visited
  // state must still be checked (its parent may carry a different class).
  // On a clean run every generated non-root state is an edge, so the edge
  // count is exact -- and strictly larger than explored-1 per seed, proving
  // edges into pruned duplicates were not skipped.
  auto spec = wfg_spec(check::lattice_multisets(3, 3, 3));
  const check::check_result r = check::explore(spec);
  EXPECT_FALSE(r.state_cap_hit);
  EXPECT_EQ(r.transitions_checked, r.states_generated - r.seeds);
  EXPECT_GT(r.duplicates_pruned, 0u);
  EXPECT_GT(r.transitions_checked, r.states_explored - r.seeds);

  // The same holds with canonical pruning off: exact-key dedup also prunes
  // revisited states, and their incoming edges must still be checked.
  auto raw = wfg_spec(check::lattice_multisets(3, 3, 2));
  raw.options.canonical_dedup = false;
  const check::check_result rr = check::explore(raw);
  EXPECT_FALSE(rr.state_cap_hit);
  EXPECT_EQ(rr.transitions_checked, rr.states_generated - rr.seeds);
}

TEST(Explore, DeterministicAcrossRuns) {
  auto spec = wfg_spec(check::lattice_multisets(3, 3, 3));
  const check::check_result a = check::explore(spec);
  const check::check_result b = check::explore(spec);
  EXPECT_EQ(a.states_generated, b.states_generated);
  EXPECT_EQ(a.states_explored, b.states_explored);
  EXPECT_EQ(a.duplicates_pruned, b.duplicates_pruned);
  EXPECT_EQ(a.raw_unique, b.raw_unique);
}

TEST(Explore, RawDedupExploresSuperset) {
  auto canonical = wfg_spec(check::lattice_multisets(3, 3, 3));
  auto raw = canonical;
  raw.options.canonical_dedup = false;
  const check::check_result rc = check::explore(canonical);
  const check::check_result rr = check::explore(raw);
  EXPECT_EQ(rr.total_violations(), 0u);
  // The exact-key search visits strictly more states; the quotient is the
  // true end-to-end saving from symmetry pruning.
  EXPECT_GE(static_cast<double>(rr.states_explored),
            2.0 * static_cast<double>(rc.states_explored));
}

TEST(Explore, StateCapStopsSearch) {
  auto spec = wfg_spec(check::lattice_multisets(3, 3, 3));
  spec.options.max_states = 10;
  const check::check_result r = check::explore(spec);
  EXPECT_TRUE(r.state_cap_hit);
  EXPECT_LE(r.states_generated, 11u);
}

TEST(Explore, StayAlgorithmViolatesWaitFreenessAtDepthZero) {
  const stay_algorithm stay;
  check::check_spec spec;
  spec.seeds = {{{0.0, 0.0}, {3.0, 0.0}, {1.0, 2.0}}};
  spec.algorithm = &stay;
  spec.options.max_rounds = 1;
  const check::check_result r = check::explore(spec);
  ASSERT_FALSE(r.counterexamples.empty());
  const check::counterexample& ce = r.counterexamples.front();
  EXPECT_EQ(ce.lemma_id, "L5.1");
  EXPECT_EQ(ce.round, 0u);
  EXPECT_TRUE(ce.trace.steps.empty());
  ASSERT_EQ(ce.path.size(), 1u);
  EXPECT_EQ(ce.path.front(), spec.seeds.front());
  // A depth-0 counterexample replays as a zero-round simulation that ends
  // exactly on the violating state.
  const sim::sim_result res = sim::replay_schedule(ce.trace, stay);
  EXPECT_EQ(res.rounds, 0u);
  EXPECT_EQ(res.final_positions, ce.path.back());
}

TEST(Explore, BrokenBaselineYieldsReplayableCounterexample) {
  static const baselines::center_of_gravity cog;
  check::check_spec spec;
  spec.seeds = check::lattice_multisets(3, 3, 4);
  spec.algorithm = &cog;
  spec.options.max_rounds = 3;
  spec.options.max_counterexamples = 16;
  const check::check_result r = check::explore(spec);
  ASSERT_FALSE(r.counterexamples.empty());
  EXPECT_GT(r.total_violations(), 0u);

  // Pick a counterexample with at least one adversary step so the replay
  // actually exercises the scripted scheduler/crash/movement policies.
  const check::counterexample* deep = nullptr;
  for (const auto& ce : r.counterexamples) {
    if (!ce.trace.steps.empty()) {
      deep = &ce;
      break;
    }
  }
  ASSERT_NE(deep, nullptr) << "no counterexample beyond depth 0";
  ASSERT_EQ(deep->path.size(), deep->trace.steps.size() + 1);

  // Serialize, parse back, and replay the parsed trace: the text format
  // must round-trip exactly (%.17g coordinates) ...
  std::stringstream ss;
  sim::write_trace(ss, deep->trace);
  const sim::schedule_trace parsed = sim::read_trace(ss);
  EXPECT_EQ(parsed, deep->trace);

  // ... and the simulator must walk the explorer's exact path: every
  // recorded round-start position vector bit-identical, ending on the
  // violating state.
  const sim::sim_result res = sim::replay_schedule(parsed, cog);
  ASSERT_EQ(res.rounds, deep->trace.steps.size());
  ASSERT_EQ(res.trace.size(), deep->trace.steps.size());
  for (std::size_t round = 0; round < res.trace.size(); ++round) {
    EXPECT_EQ(res.trace[round].positions, deep->path[round])
        << "diverged at round " << round;
  }
  EXPECT_EQ(res.final_positions, deep->path.back());
}

TEST(Explore, ClusterSnappedSeedReplaysBitIdentically) {
  // Two robots within the configuration tolerance but not bitwise equal:
  // the engine physically merges them at round start (positions_ snapped in
  // place), moving both coordinates to the cluster centroid.  The explorer
  // must do the same, or its move origins -- and every state downstream --
  // diverge from what the recorded schedule replays to.
  static const baselines::center_of_gravity cog;
  check::check_spec spec;
  spec.seeds = {{{0.0, 0.0}, {1e-11, 0.0}, {2.0, 0.0}, {1.0, 2.0}}};
  spec.algorithm = &cog;
  spec.options.max_rounds = 3;
  spec.options.max_counterexamples = 16;
  const check::check_result r = check::explore(spec);
  ASSERT_FALSE(r.counterexamples.empty());

  const check::counterexample* deep = nullptr;
  for (const auto& ce : r.counterexamples) {
    if (!ce.trace.steps.empty()) {
      deep = &ce;
      break;
    }
  }
  ASSERT_NE(deep, nullptr) << "no counterexample beyond depth 0";
  // The engineered condition really fired: snapping moved the seed
  // coordinates (the near-coincident pair collapsed to its centroid), so
  // the recorded path starts off the raw seed vector.
  ASSERT_NE(deep->path.front(), spec.seeds.front());

  const sim::sim_result res = sim::replay_schedule(deep->trace, cog);
  ASSERT_EQ(res.rounds, deep->trace.steps.size());
  ASSERT_EQ(res.trace.size(), deep->trace.steps.size());
  for (std::size_t round = 0; round < res.trace.size(); ++round) {
    EXPECT_EQ(res.trace[round].positions, deep->path[round])
        << "diverged at round " << round;
  }
  EXPECT_EQ(res.final_positions, deep->path.back());
}

TEST(Explore, CoverageInvariantHoldsAtCounterexampleCap) {
  // Hitting --max-counterexamples stops the search mid-state; the lemma
  // tallies for the state (and edge) that tripped the cap must still be
  // complete, or the applicable + n/a == states_explored golden gate breaks.
  static const baselines::center_of_gravity cog;
  check::check_spec spec;
  spec.seeds = check::lattice_multisets(3, 3, 3);
  spec.algorithm = &cog;
  spec.options.max_rounds = 3;
  spec.options.max_counterexamples = 1;
  const check::check_result r = check::explore(spec);
  ASSERT_EQ(r.counterexamples.size(), 1u);
  for (const auto& cov : r.state_coverage) {
    EXPECT_EQ(cov.applicable + cov.not_applicable, r.states_explored)
        << cov.id;
  }
  for (const auto& cov : r.transition_coverage) {
    EXPECT_EQ(cov.applicable + cov.not_applicable, r.transitions_checked)
        << cov.id;
  }
}

TEST(Explore, RejectsInvalidSpecs) {
  check::check_spec spec;
  spec.seeds = {{{0.0, 0.0}}};
  EXPECT_THROW(check::explore(spec), std::invalid_argument);  // no algorithm
  static const core::wait_free_gather wfg;
  spec.algorithm = &wfg;
  spec.options.truncation_levels = 0;
  EXPECT_THROW(check::explore(spec), std::invalid_argument);
  spec.options.truncation_levels = 2;
  spec.seeds = {{}};
  EXPECT_THROW(check::explore(spec), std::invalid_argument);  // empty seed
}

TEST(Report, JsonAndTextRenderCoreCounts) {
  auto spec = wfg_spec(check::lattice_multisets(3, 3, 2));
  const check::check_result r = check::explore(spec);
  const std::string json = check::render_json(r, spec.options);
  EXPECT_NE(json.find("\"schema\":\"gather-check-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"states_explored\":"), std::string::npos);
  EXPECT_NE(json.find("\"state_coverage\":["), std::string::npos);
  const std::string text = check::render_text(r, spec.options);
  EXPECT_NE(text.find("symmetry reduction"), std::string::npos);
  EXPECT_NE(text.find("L5.1"), std::string::npos);
}

}  // namespace
