// Tests for the trace analytics and the JSON report.
#include <gtest/gtest.h>

#include <sstream>

#include "core/wait_free_gather.h"
#include "sim/sim.h"
#include "sim_support.h"
#include "workloads/generators.h"

namespace gather::sim {
namespace {

const core::wait_free_gather kAlgo;

sim_result traced_run(std::vector<geom::vec2> pts, std::size_t f = 0,
                      std::uint64_t seed = 3) {
  auto sched = make_fair_random();
  auto move = make_random_stop();
  auto crash = f == 0 ? make_no_crash() : make_random_crashes(f, 20);
  sim_options opts;
  opts.seed = seed;
  opts.record_trace = true;
  return run_sim(std::move(pts), kAlgo, *sched, *move, *crash, opts);
}

TEST(Analysis, MetricsParallelTrace) {
  rng r(1);
  const auto res = traced_run(workloads::uniform_random(6, r));
  const auto metrics = analyze_trace(res);
  EXPECT_EQ(metrics.size(), res.trace.size());
  ASSERT_FALSE(metrics.empty());
  EXPECT_EQ(metrics.front().live_count, 6u);
  EXPECT_GT(metrics.front().live_spread, 0.0);
}

TEST(Analysis, SpreadShrinksToZero) {
  rng r(2);
  const auto res = traced_run(workloads::uniform_random(7, r));
  ASSERT_EQ(res.status, sim_status::gathered);
  const auto metrics = analyze_trace(res);
  EXPECT_LT(metrics.back().live_spread, metrics.front().live_spread);
}

TEST(Analysis, ClassPhasesRunLengthEncode) {
  using cc = config::config_class;
  const auto phases =
      class_phases({cc::asymmetric, cc::asymmetric, cc::multiple, cc::multiple,
                    cc::multiple});
  ASSERT_EQ(phases.size(), 2u);
  EXPECT_EQ(phases[0].cls, cc::asymmetric);
  EXPECT_EQ(phases[0].rounds, 2u);
  EXPECT_EQ(phases[1].cls, cc::multiple);
  EXPECT_EQ(phases[1].first_round, 2u);
  EXPECT_EQ(phases[1].rounds, 3u);
}

TEST(Analysis, PotentialsHoldOnCleanRuns) {
  for (int seed = 0; seed < 5; ++seed) {
    rng r(100 + seed);
    const auto res = traced_run(workloads::uniform_random(8, r), 2, seed + 1);
    ASSERT_EQ(res.status, sim_status::gathered) << seed;
    const auto pot = check_potentials(res);
    EXPECT_TRUE(pot.max_multiplicity_monotone) << seed;
    EXPECT_TRUE(pot.spread_bounded) << seed;
    EXPECT_NE(pot.first_multiplicity_round, static_cast<std::size_t>(-1)) << seed;
    EXPECT_GE(pot.phase_count, 1u);
  }
}

TEST(Analysis, MajorityStartsWithMultiplicity) {
  rng r(7);
  const auto res = traced_run(workloads::with_majority(8, 3, r));
  const auto pot = check_potentials(res);
  EXPECT_EQ(pot.first_multiplicity_round, 0u);
}

TEST(JsonReport, ContainsCoreFields) {
  rng r(8);
  const auto res = traced_run(workloads::uniform_random(5, r));
  std::ostringstream os;
  write_json_report(os, res);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"status\": \"gathered\""), std::string::npos);
  EXPECT_NE(json.find("\"phases\""), std::string::npos);
  EXPECT_NE(json.find("\"potentials\""), std::string::npos);
  EXPECT_NE(json.find("\"rounds_detail\""), std::string::npos);
  EXPECT_NE(json.find("\"gather_point\""), std::string::npos);
}

TEST(JsonReport, BalancedBracesAndQuotes) {
  rng r(9);
  const auto res = traced_run(workloads::uniform_random(5, r));
  std::ostringstream os;
  write_json_report(os, res);
  const std::string json = os.str();
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '"') % 2, 0);
}

TEST(JsonReport, EscapesStrings) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
  EXPECT_EQ(json_escape("plain"), "plain");
}

TEST(Svg, RendersWellFormedDocument) {
  rng r(11);
  const auto res = traced_run(workloads::uniform_random(5, r), 1, 4);
  std::ostringstream os;
  write_svg(os, res);
  const std::string svg = os.str();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("<polyline"), std::string::npos);
  // One trajectory polyline per robot.
  std::size_t polylines = 0;
  for (std::size_t pos = svg.find("<polyline"); pos != std::string::npos;
       pos = svg.find("<polyline", pos + 1)) {
    ++polylines;
  }
  EXPECT_EQ(polylines, 5u);
  // Crashed robots render as X marks (two crossing lines in a group).
  if (res.crashes > 0) {
    EXPECT_NE(svg.find("stroke-width='2'"), std::string::npos);
  }
}

TEST(Svg, EmptyResultDoesNotCrash) {
  sim_result empty;
  std::ostringstream os;
  write_svg(os, empty);
  EXPECT_NE(os.str().find("svg"), std::string::npos);
}

TEST(JsonReport, NoTraceOmitsDetail) {
  auto sched = make_synchronous();
  auto move = make_full_movement();
  auto crash = make_no_crash();
  sim_options opts;  // record_trace = false
  rng r(10);
  const auto res =
      run_sim(workloads::uniform_random(5, r), kAlgo, *sched, *move, *crash, opts);
  std::ostringstream os;
  write_json_report(os, res);
  EXPECT_EQ(os.str().find("rounds_detail"), std::string::npos);
}

}  // namespace
}  // namespace gather::sim
