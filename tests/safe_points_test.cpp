#include <gtest/gtest.h>

#include <cmath>

#include "config/classify.h"
#include "config/safe_points.h"
#include "geometry/angles.h"
#include "sim/rng.h"
#include "workloads/generators.h"

namespace gather::config {
namespace {

using geom::vec2;

TEST(SafePoints, MaxRayLoadCountsCollinearRobots) {
  // From (0,0): three robots on the +x ray, one elsewhere.
  const configuration c({{0, 0}, {1, 0}, {2, 0}, {3, 0}, {0, 5}});
  EXPECT_EQ(max_ray_load(c, {0, 0}), 3);
}

TEST(SafePoints, RobotsAtPointDoNotCount) {
  const configuration c({{0, 0}, {0, 0}, {0, 0}, {1, 0}, {0, 5}});
  EXPECT_EQ(max_ray_load(c, {0, 0}), 1);
}

TEST(SafePoints, OppositeRaysAreDistinct) {
  const configuration c({{0, 0}, {1, 0}, {2, 0}, {-1, 0}, {-2, 0}, {0, 4}});
  EXPECT_EQ(max_ray_load(c, {0, 0}), 2);
}

TEST(SafePoints, MultiplicityCountsOnRay) {
  const configuration c({{0, 0}, {1, 0}, {1, 0}, {1, 0}, {0, 5}});
  EXPECT_EQ(max_ray_load(c, {0, 0}), 3);
}

TEST(SafePoints, SquareCornersAreSafe) {
  const configuration c({{1, 1}, {-1, 1}, {-1, -1}, {1, -1}});
  // n = 4, bound = ceil(4/2) - 1 = 1; every ray from a corner holds 1 robot.
  for (const occupied_point& o : c.occupied()) {
    EXPECT_TRUE(is_safe_point(c, o.position));
  }
}

TEST(SafePoints, EndpointOfHeavyLineIsUnsafe) {
  // From an endpoint, the whole line is one ray with n-1 >= ceil(n/2) robots.
  const configuration c({{0, 0}, {1, 0}, {2, 0}, {3, 0}});
  EXPECT_FALSE(is_safe_point(c, {0, 0}));
}

TEST(SafePoints, Lemma42NonLinearHasSafePoint) {
  // Any non-linear configuration contains a safe point.
  sim::rng r(17);
  for (int trial = 0; trial < 50; ++trial) {
    const auto pts = workloads::uniform_random(5 + trial % 10, r);
    const configuration c(pts);
    if (c.is_linear()) continue;
    EXPECT_FALSE(safe_occupied_points(c).empty()) << "trial " << trial;
  }
}

TEST(SafePoints, Lemma43BivalentHasNoSafePoint) {
  sim::rng r(19);
  for (std::size_t n : {2u, 4u, 8u, 12u}) {
    const configuration c(workloads::bivalent(n, r));
    EXPECT_TRUE(safe_occupied_points(c).empty()) << n;
  }
}

TEST(SafePoints, Lemma43LinearTwoWeberHasNoSafePoint) {
  sim::rng r(23);
  for (int trial = 0; trial < 20; ++trial) {
    const auto pts = workloads::linear_two_weber(4 + 2 * (trial % 4), r);
    const configuration c(pts);
    ASSERT_EQ(classify(c).cls, config_class::linear_2w);
    // On a line with an even number of robots, every point has >= n/2 robots
    // on one of the two directions.
    EXPECT_TRUE(safe_occupied_points(c).empty()) << "trial " << trial;
  }
}

TEST(SafePoints, CenterOfPolygonIsSafe) {
  std::vector<vec2> pts;
  for (int i = 0; i < 6; ++i) {
    const double a = geom::two_pi * i / 6;
    pts.push_back({std::cos(a), std::sin(a)});
  }
  pts.push_back({0, 0});
  const configuration c(pts);
  EXPECT_TRUE(is_safe_point(c, {0, 0}));
}

TEST(SafePoints, UnoccupiedPointsCanBeTested) {
  const configuration c({{1, 1}, {-1, 1}, {-1, -1}, {1, -1}});
  EXPECT_TRUE(is_safe_point(c, {0, 0}));
  EXPECT_TRUE(is_safe_point(c, {10, 0}));  // sees two rays of 2... check bound
}

}  // namespace
}  // namespace gather::config
