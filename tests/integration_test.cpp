// End-to-end executions of WAIT-FREE-GATHER under the ATOM engine across
// configuration classes, schedulers, movement adversaries and crash
// policies -- the empirical counterpart of Theorem 5.1 and of the per-class
// progress lemmas (5.3-5.9).
#include <gtest/gtest.h>

#include "core/wait_free_gather.h"
#include "sim/sim.h"
#include "sim_support.h"
#include "workloads/generators.h"

namespace gather {
namespace {

using config::config_class;
using geom::vec2;

const core::wait_free_gather kAlgo;

sim::sim_result run_with(std::vector<vec2> pts, sim::activation_scheduler& sched,
                         sim::movement_adversary& move, sim::crash_policy& crash,
                         sim::sim_options opts = {}) {
  opts.check_wait_freeness = true;
  return sim::run_sim(std::move(pts), kAlgo, sched, move, crash, opts);
}

void expect_clean_gather(const sim::sim_result& res, const std::string& label) {
  EXPECT_EQ(res.status, sim::sim_status::gathered) << label;
  EXPECT_EQ(res.wait_free_violations, 0u) << label;
  EXPECT_EQ(res.bivalent_entries, 0u) << label;
}

TEST(Integration, EveryCorpusInstanceGathersSynchronously) {
  for (std::size_t n : {4u, 5u, 7u, 8u, 12u}) {
    for (const auto& wl : workloads::corpus(n, 7000 + n)) {
      auto sched = sim::make_synchronous();
      auto move = sim::make_full_movement();
      auto crash = sim::make_no_crash();
      const auto res = run_with(wl.points, *sched, *move, *crash);
      expect_clean_gather(res, wl.name + " n=" + std::to_string(n));
    }
  }
}

TEST(Integration, EveryCorpusInstanceGathersUnderEveryScheduler) {
  for (const auto& factory : sim::all_schedulers()) {
    for (const auto& wl : workloads::corpus(7, 7100)) {
      auto sched = factory.make();
      auto move = sim::make_full_movement();
      auto crash = sim::make_no_crash();
      const auto res = run_with(wl.points, *sched, *move, *crash);
      expect_clean_gather(res, wl.name + " sched=" + std::string(factory.name));
    }
  }
}

TEST(Integration, EveryCorpusInstanceGathersUnderEveryMovementAdversary) {
  for (const auto& factory : sim::all_movements()) {
    for (const auto& wl : workloads::corpus(6, 7200)) {
      auto sched = sim::make_fair_random();
      auto move = factory.make();
      auto crash = sim::make_no_crash();
      const auto res = run_with(wl.points, *sched, *move, *crash);
      expect_clean_gather(res, wl.name + " move=" + std::string(factory.name));
    }
  }
}

TEST(Integration, GathersWithHalfTheRobotsCrashing) {
  for (const auto& wl : workloads::corpus(8, 7300)) {
    auto sched = sim::make_fair_random();
    auto move = sim::make_random_stop();
    auto crash = sim::make_random_crashes(4, 50);
    const auto res = run_with(wl.points, *sched, *move, *crash);
    expect_clean_gather(res, wl.name + " f=4");
  }
}

TEST(Integration, GathersWithAllButOneCrashing) {
  // The paper's headline: f = n - 1 crash faults.
  for (const auto& wl : workloads::corpus(6, 7400)) {
    auto sched = sim::make_fair_random();
    auto move = sim::make_random_stop();
    auto crash = sim::make_random_crashes(wl.points.size() - 1, 80);
    const auto res = run_with(wl.points, *sched, *move, *crash);
    expect_clean_gather(res, wl.name + " f=n-1");
  }
}

TEST(Integration, GathersUnderLeaderTargetedCrashes) {
  // Adversary crashes a robot standing on the elected point, repeatedly
  // (the hard case in the proof of Lemma 5.3).
  for (const auto& wl : workloads::corpus(8, 7500)) {
    auto sched = sim::make_fair_random();
    auto move = sim::make_full_movement();
    auto crash = sim::make_leader_crashes(5);
    const auto res = run_with(wl.points, *sched, *move, *crash);
    expect_clean_gather(res, wl.name + " leader-crash");
  }
}

TEST(Integration, ClassTransitionsFollowTheLemmas) {
  for (std::size_t n : {5u, 6u, 8u, 9u}) {
    for (const auto& wl : workloads::corpus(n, 7600 + n)) {
      auto sched = sim::make_fair_random();
      auto move = sim::make_random_stop();
      auto crash = sim::make_random_crashes(n / 2, 40);
      const auto res = run_with(wl.points, *sched, *move, *crash);
      ASSERT_EQ(res.status, sim::sim_status::gathered) << wl.name;
      EXPECT_TRUE(sim::transitions_allowed(res.class_history))
          << wl.name << " n=" << n;
    }
  }
}

TEST(Integration, LocalFramesMatchGlobalDecisions) {
  // The algorithm must behave identically when robots observe through
  // arbitrary direct-similarity frames (disorientation + chirality).
  for (const auto& wl : workloads::corpus(6, 7700)) {
    auto sched = sim::make_round_robin();
    auto move = sim::make_full_movement();
    auto crash = sim::make_no_crash();
    sim::sim_options opts;
    opts.local_frames = true;
    const auto res = run_with(wl.points, *sched, *move, *crash, opts);
    expect_clean_gather(res, wl.name + " local-frames");
  }
}

TEST(Integration, BivalentNeverGathersButNeighboursDo) {
  sim::rng r(7800);
  const auto biv = workloads::bivalent(8, r);
  auto sched = sim::make_synchronous();
  auto move = sim::make_full_movement();
  auto crash = sim::make_no_crash();
  const auto res = run_with(biv, *sched, *move, *crash);
  EXPECT_EQ(res.status, sim::sim_status::started_bivalent);

  // Breaking the balance by one robot makes the instance solvable.
  auto unbalanced = biv;
  unbalanced.push_back(unbalanced.front());
  auto sched2 = sim::make_synchronous();
  const auto res2 = run_with(unbalanced, *sched2, *move, *crash);
  expect_clean_gather(res2, "unbalanced-bivalent");
}

TEST(Integration, GatherPointIsStationaryPoint) {
  // Once gathered, the gather point must be a fixpoint of the algorithm.
  for (const auto& wl : workloads::corpus(6, 7900)) {
    auto sched = sim::make_synchronous();
    auto move = sim::make_full_movement();
    auto crash = sim::make_no_crash();
    const auto res = run_with(wl.points, *sched, *move, *crash);
    ASSERT_EQ(res.status, sim::sim_status::gathered) << wl.name;
    const config::configuration final_c(res.final_positions);
    const vec2 d = kAlgo.destination({final_c, res.gather_point});
    EXPECT_TRUE(final_c.tolerance().same_point(d, res.gather_point)) << wl.name;
  }
}

TEST(Integration, CrashedRobotsExcludedFromGathering) {
  // Crash two robots early; the gather point hosts all *live* robots while
  // crashed ones remain wherever they stopped.
  sim::rng r(8000);
  const auto pts = workloads::uniform_random(7, r);
  auto sched = sim::make_fair_random();
  auto move = sim::make_full_movement();
  auto crash = sim::make_scheduled_crashes({{1, 0}, {3, 1}});
  const auto res = run_with(pts, *sched, *move, *crash);
  ASSERT_EQ(res.status, sim::sim_status::gathered);
  const config::configuration final_c(res.final_positions);
  const auto& t = final_c.tolerance();
  for (std::size_t i = 0; i < res.final_positions.size(); ++i) {
    if (res.final_live[i]) {
      EXPECT_TRUE(t.same_point(res.final_positions[i], res.gather_point)) << i;
    }
  }
  EXPECT_EQ(res.crashes, 2u);
}

TEST(Integration, LargerSwarmsGather) {
  for (std::size_t n : {16u, 24u, 32u}) {
    sim::rng r(8100 + n);
    auto sched = sim::make_fair_random();
    auto move = sim::make_random_stop();
    auto crash = sim::make_random_crashes(n / 3, 60);
    const auto res = run_with(workloads::uniform_random(n, r), *sched, *move, *crash);
    expect_clean_gather(res, "uniform n=" + std::to_string(n));
  }
}

}  // namespace
}  // namespace gather
