// Tests for the exact-sign predicates, cross-checked against 128-bit integer
// arithmetic on integer-valued inputs and against constructed adversarial
// near-degenerate cases.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "geometry/exact.h"
#include "geometry/predicates.h"

namespace gather::geom {
namespace {

TEST(TwoSum, ReconstructsExactly) {
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> dist(-1e10, 1e10);
  for (int i = 0; i < 1000; ++i) {
    const double a = dist(rng);
    const double b = dist(rng) * 1e-12;  // widely different magnitudes
    const expansion2 s = two_sum(a, b);
    EXPECT_EQ(s.hi, a + b);  // hi is the rounded sum
    // The error term recovers what rounding lost: (hi - a) - b == -lo.
    EXPECT_EQ((s.hi - a) - b, -s.lo);
  }
}

TEST(TwoProduct, ErrorTermIsExact) {
  // For integer-valued doubles below 2^26 the product is exact, so lo == 0.
  const expansion2 p = two_product(12345678.0, 33554431.0);
  EXPECT_DOUBLE_EQ(p.hi, 12345678.0 * 33554431.0);
  EXPECT_EQ(p.lo, 0.0);
  // For full-width mantissas the error term is nonzero and corrects hi.
  const double a = 1.0 + std::ldexp(1.0, -52);
  const double b = 1.0 + std::ldexp(1.0, -52);
  const expansion2 q = two_product(a, b);
  EXPECT_NE(q.lo, 0.0);
}

__extension__ typedef __int128 int128;

TEST(ExactDet, MatchesInt128OnIntegerGrid) {
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<long long> dist(-(1LL << 30), 1LL << 30);
  for (int i = 0; i < 5000; ++i) {
    const long long a = dist(rng), b = dist(rng), c = dist(rng), d = dist(rng);
    const int128 det = static_cast<int128>(a) * d - static_cast<int128>(b) * c;
    const int want = det > 0 ? 1 : (det < 0 ? -1 : 0);
    EXPECT_EQ(exact_det2_sign(static_cast<double>(a), static_cast<double>(b),
                              static_cast<double>(c), static_cast<double>(d)),
              want)
        << a << " " << b << " " << c << " " << d;
  }
}

TEST(ExactDet, CatchesCancellation) {
  // a*d and b*c agree in their leading 53 bits; only exact arithmetic sees
  // the difference.
  const double a = 1e16 + 2.0, d = 1e16 - 2.0;  // product ~1e32 - 4
  const double b = 1e16, c = 1e16;              // product 1e32
  // (1e16+2)(1e16-2) - 1e32 = -4 exactly.
  EXPECT_EQ(exact_det2_sign(a, b, c, d), -1);
  EXPECT_EQ(exact_det2_sign(b, a, d, c), 1);
  EXPECT_EQ(exact_det2_sign(b, c, b, c), 0);  // hm: b*c - c*b = 0
}

TEST(ExactOrientation, AgreesWithSignOnCleanTriangles) {
  EXPECT_EQ(exact_orientation({0, 0}, {1, 0}, {0, 1}), 1);
  EXPECT_EQ(exact_orientation({0, 0}, {0, 1}, {1, 0}), -1);
  EXPECT_EQ(exact_orientation({0, 0}, {1, 1}, {2, 2}), 0);
}

TEST(ExactOrientation, ResolvesNearCollinearExactly) {
  // Classic adversarial case: the double-rounded area is ~1e-27 but nonzero.
  const vec2 a{0.0, 0.0};
  const vec2 b{std::ldexp(1.0, 26) + 1.0, std::ldexp(1.0, 26)};
  const vec2 c{2.0 * (std::ldexp(1.0, 26) + 1.0), 2.0 * std::ldexp(1.0, 26) + 1.0};
  // cross(b-a, c-a) = bx*cy - by*cx = (2^26+1)(2^27+1) - 2^26 * 2(2^26+1)
  //                 = (2^26+1)(2^27+1-2^27) = 2^26+1 > 0.
  EXPECT_EQ(exact_orientation(a, b, c), 1);
}

TEST(ExactVsTolerant, TolerantIsAConservativeCoarsening) {
  // Wherever the tolerant predicate says non-zero, the exact one agrees on
  // sign; the tolerant predicate only ever coarsens near-degeneracies to 0.
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> dist(-100.0, 100.0);
  tol t;
  t.scale = 200.0;
  for (int i = 0; i < 2000; ++i) {
    const vec2 a{dist(rng), dist(rng)};
    const vec2 b{dist(rng), dist(rng)};
    const vec2 c{dist(rng), dist(rng)};
    const int tolerant = orientation(a, b, c, t);
    if (tolerant != 0) {
      EXPECT_EQ(exact_orientation(a, b, c), tolerant);
    }
  }
}

}  // namespace
}  // namespace gather::geom
