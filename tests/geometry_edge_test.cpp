// Edge-case and degeneracy tests for the geometry kernel: the angle seam at
// 0/2*pi, degenerate circles and hulls, tolerance floors, huge and tiny
// coordinate scales.
#include <gtest/gtest.h>

#include <cmath>

#include "geometry/geometry.h"

namespace gather::geom {
namespace {

TEST(AngleSeam, NearZeroAndNearTwoPiCompareEqual) {
  tol t;
  EXPECT_TRUE(t.ang_eq_mod(1e-12, two_pi - 1e-12, two_pi));
  EXPECT_TRUE(t.ang_eq_mod(0.0, two_pi, two_pi));
  EXPECT_FALSE(t.ang_eq_mod(1e-3, two_pi - 1e-3, two_pi));
}

TEST(AngleSeam, CwAngleOfNearlyAlignedVectors) {
  const vec2 ref{1, 0};
  const double a = cw_angle(ref, {1, 1e-15});
  // Tiny ccw perturbation reads as almost-2*pi clockwise.
  EXPECT_TRUE(a < 1e-12 || a > two_pi - 1e-12);
}

TEST(AngleSeam, NormAngleIdempotent) {
  for (double x : {-100.0, -two_pi, -1e-18, 0.0, 1e-18, two_pi, 100.0}) {
    const double n1 = norm_angle(x);
    EXPECT_GE(n1, 0.0) << x;
    EXPECT_LT(n1, two_pi) << x;
    EXPECT_DOUBLE_EQ(norm_angle(n1), n1) << x;
  }
}

TEST(ToleranceFloor, MagnitudeFloorCatchesConvergedSwarms) {
  // Points whose spread is pure floating-point noise around a large
  // magnitude must be identified.
  const std::vector<vec2> pts = {
      {1000.0, 2000.0}, {1000.0 + 1e-10, 2000.0}, {1000.0, 2000.0 - 1e-10}};
  const tol t = tol::for_points(pts);
  EXPECT_TRUE(t.same_point(pts[0], pts[1]));
  EXPECT_TRUE(t.same_point(pts[0], pts[2]));
}

TEST(ToleranceFloor, DoesNotOvermergeRealStructure) {
  const std::vector<vec2> pts = {{1000.0, 2000.0}, {1000.1, 2000.0}};
  const tol t = tol::for_points(pts);
  EXPECT_FALSE(t.same_point(pts[0], pts[1]));
}

TEST(Degenerate, HullOfIdenticalPoints) {
  tol t;
  const std::vector<vec2> pts = {{3, 3}, {3, 3}, {3, 3}};
  const auto hull = convex_hull(pts, t);
  ASSERT_EQ(hull.size(), 1u);
  EXPECT_EQ(hull[0], (vec2{3, 3}));
}

TEST(Degenerate, CircleOfIdenticalPoints) {
  tol t;
  const std::vector<vec2> pts = {{3, 3}, {3, 3}};
  const circle c = smallest_enclosing_circle(pts, t);
  EXPECT_EQ(c.center, (vec2{3, 3}));
  EXPECT_DOUBLE_EQ(c.radius, 0.0);
}

TEST(Degenerate, CircleOfEmptySet) {
  tol t;
  const circle c = smallest_enclosing_circle({}, t);
  EXPECT_DOUBLE_EQ(c.radius, 0.0);
}

TEST(Scale, PredicatesWorkAtExtremeScales) {
  for (double s : {1e-8, 1e8}) {
    const std::vector<vec2> square = {
        {0, 0}, {s, 0}, {s, s}, {0, s}, {0.5 * s, 0.5 * s}};
    const tol t = tol::for_points(square);
    EXPECT_EQ(convex_hull(square, t).size(), 4u) << s;
    const circle c = smallest_enclosing_circle(square, t);
    EXPECT_NEAR(c.center.x, 0.5 * s, 1e-6 * s) << s;
    EXPECT_TRUE(all_collinear(std::vector<vec2>{{0, 0}, {s, s}, {2 * s, 2 * s}}, t))
        << s;
  }
}

TEST(LineIntersection, BasicAndParallel) {
  tol t;
  const auto p = line_intersection({0, 0}, {2, 2}, {0, 2}, {2, 0}, t);
  ASSERT_TRUE(p.has_value());
  EXPECT_NEAR(p->x, 1.0, 1e-12);
  EXPECT_NEAR(p->y, 1.0, 1e-12);
  EXPECT_FALSE(line_intersection({0, 0}, {1, 0}, {0, 1}, {1, 1}, t).has_value());
  // Nearly parallel within tolerance also rejected.
  EXPECT_FALSE(
      line_intersection({0, 0}, {1, 0}, {0, 1}, {1, 1 + 1e-15}, t).has_value());
}

TEST(Orientation, NearlyCollinearResolvesToZero) {
  tol t;
  EXPECT_EQ(orientation({0, 0}, {1e6, 0}, {5e5, 1e-6}, t), 0);
  EXPECT_EQ(orientation({0, 0}, {1e6, 0}, {5e5, 10.0}, t), 1);
}

TEST(HalfLine, DegenerateHalfLineContainsNothing) {
  tol t;
  EXPECT_FALSE(on_half_line({1, 1}, {0, 0}, {0, 0}, t));
}

TEST(Similarity, ComposedRoundTripsAtScaleExtremes) {
  // Catastrophic cancellation bound: (q - offset) loses |offset| * ulp of
  // absolute precision, amplified by 1/scale = 1e6 -> ~1e-4 on coordinates.
  const similarity f(0.3, 1e-6, {1e6, -1e6});
  const vec2 p{123.456, -654.321};
  const vec2 q = f.invert(f.apply(p));
  EXPECT_NEAR(q.x, p.x, 1e-3);
  EXPECT_NEAR(q.y, p.y, 1e-3);
}

TEST(OpenSegment, EndpointWithinToleranceExcluded) {
  tol t = tol::for_points(std::vector<vec2>{{0, 0}, {10, 0}});
  EXPECT_FALSE(in_open_segment({1e-10, 0}, {0, 0}, {10, 0}, t));
  EXPECT_TRUE(in_open_segment({1e-3, 0}, {0, 0}, {10, 0}, t));
}

}  // namespace
}  // namespace gather::geom
