// Search-and-rescue scenario (the paper's motivating deployment, Sec. I).
//
// A swarm is scattered over a disaster area after an airdrop.  Robots are
// cheap and failure-prone: a third of them will crash at unpredictable
// moments.  The mission phase needs the swarm reassembled at one point --
// no robot knows where, there is no communication, no compass agreement,
// and nobody can wait for anybody (wait-freedom).  The example renders the
// swarm as ASCII frames while WAIT-FREE-GATHER pulls the survivors together.
//
//   $ ./examples/search_and_rescue [n] [seed]
#include <cstdlib>
#include <iostream>

#include "core/core.h"
#include "sim/sim.h"
#include "workloads/generators.h"

int main(int argc, char** argv) {
  using namespace gather;

  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 12;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  sim::rng r(seed);
  auto drop_zone = workloads::uniform_random(n, r, 8.0);

  const core::wait_free_gather algo;
  auto scheduler = sim::make_fair_random();
  auto movement = sim::make_random_stop();
  auto crash = sim::make_random_crashes(n / 3, 6);  // a third fail early on

  sim::sim_options opts;
  opts.seed = seed;
  opts.record_trace = true;
  opts.check_wait_freeness = true;

  sim::sim_spec spec;
  spec.initial = drop_zone;
  spec.algorithm = &algo;
  spec.scheduler = scheduler.get();
  spec.movement = movement.get();
  spec.crash = crash.get();
  spec.options = opts;
  const auto res = sim::run(spec);

  std::cout << "search-and-rescue: " << n << " robots, " << n / 3
            << " will crash, seed " << seed << "\n\n";
  // Show a handful of frames spread over the run.
  const std::size_t frames = res.trace.size();
  for (std::size_t k = 0; k < 4 && frames > 0; ++k) {
    const std::size_t idx = k * (frames - 1) / 3;
    const auto& rec = res.trace[idx];
    std::cout << "--- round " << rec.round << "  (class "
              << config::to_string(rec.cls) << ")\n"
              << sim::ascii_plot(rec.positions, rec.live, 56, 18) << "\n";
  }

  std::cout << "outcome: " << sim::to_string(res.status) << " after "
            << res.rounds << " rounds, " << res.crashes << " crashes\n";
  if (res.status == sim::sim_status::gathered) {
    std::size_t survivors = 0;
    for (auto l : res.final_live) survivors += l;
    std::cout << survivors << " survivors rallied at (" << res.gather_point.x
              << ", " << res.gather_point.y << ")\n";
  }
  return res.status == sim::sim_status::gathered ? 0 : 1;
}
