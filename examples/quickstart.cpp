// Quickstart: the smallest complete use of the library.
//
// Build a configuration, classify it, run WAIT-FREE-GATHER in the ATOM model
// with crash faults, and inspect the outcome.
//
//   $ ./examples/quickstart
#include <iostream>

#include "config/config.h"
#include "core/core.h"
#include "sim/sim.h"

int main() {
  using namespace gather;

  // Five robots on the plane; two of them share a location, so the snapshot
  // (strong multiplicity detection) sees four distinct points.
  std::vector<geom::vec2> robots = {
      {0.0, 0.0}, {4.0, 1.0}, {1.0, 3.0}, {1.0, 3.0}, {-2.0, -1.0}};

  const config::configuration c(robots);
  const config::classification cls = config::classify(c);
  std::cout << "robots:            " << c.size() << "\n"
            << "distinct points:   " << c.distinct_count() << "\n"
            << "configuration is:  " << config::to_string(cls.cls) << "\n";
  if (cls.target) {
    std::cout << "target point:      (" << cls.target->x << ", " << cls.target->y
              << ")\n";
  }

  // The algorithm under a semi-synchronous adversary: a fair-random
  // scheduler, robots that may be stopped mid-move (but not before the
  // guaranteed distance delta), and one crash fault at round 3.
  const core::wait_free_gather algo;
  auto scheduler = sim::make_fair_random();
  auto movement = sim::make_random_stop();
  auto crash = sim::make_scheduled_crashes({{3, 0}});

  sim::sim_options opts;
  opts.delta_fraction = 0.05;  // delta = 5% of the initial diameter
  opts.seed = 42;
  opts.check_wait_freeness = true;

  sim::sim_spec spec;
  spec.initial = robots;
  spec.algorithm = &algo;
  spec.scheduler = scheduler.get();
  spec.movement = movement.get();
  spec.crash = crash.get();
  spec.options = opts;
  const sim::sim_result res = sim::run(spec);

  std::cout << "\nsimulation:        " << sim::to_string(res.status) << "\n"
            << "rounds:            " << res.rounds << "\n"
            << "crashes injected:  " << res.crashes << "\n"
            << "wait-free breaches:" << res.wait_free_violations << "\n";
  if (res.status == sim::sim_status::gathered) {
    std::cout << "gather point:      (" << res.gather_point.x << ", "
              << res.gather_point.y << ")\n";
    std::cout << "\nAll live robots gathered; the crashed robot remains at ("
              << res.final_positions[0].x << ", " << res.final_positions[0].y
              << ").\n";
  }
  return res.status == sim::sim_status::gathered ? 0 : 1;
}
