// Crash storm: the paper's headline fault-tolerance, f = n - 1.
//
// An adversary crashes robots one by one -- always choosing a robot standing
// on the currently elected point, the nastiest moment (cf. the proof of
// Lemma 5.3, where the adversary spends one fault after each step of
// progress).  WAIT-FREE-GATHER still gathers every robot that stays alive.
// For contrast, the same storm is thrown at the Agmon-Peleg-style
// single-fault baseline, which deadlocks.
//
//   $ ./examples/crash_storm [n]
#include <cstdlib>
#include <iostream>

#include <algorithm>

#include "baselines/baselines.h"
#include "core/core.h"
#include "sim/sim.h"
#include "workloads/generators.h"

namespace {

gather::sim::sim_result storm(const gather::core::gathering_algorithm& algo,
                              std::vector<gather::geom::vec2> pts,
                              std::size_t faults) {
  using namespace gather;
  auto sched = sim::make_fair_random();
  auto move = sim::make_random_stop();
  auto crash = sim::make_leader_crashes(faults);
  sim::sim_options opts;
  opts.seed = 11;
  opts.max_rounds = 20'000;
  sim::sim_spec spec;
  spec.initial = std::move(pts);
  spec.algorithm = &algo;
  spec.scheduler = sched.get();
  spec.movement = move.get();
  spec.crash = crash.get();
  spec.options = opts;
  return sim::run(spec);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gather;
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10;

  sim::rng r(99);
  const auto pts = workloads::uniform_random(n, r);

  const core::wait_free_gather wfg;
  const auto res = storm(wfg, pts, n - 1);
  std::size_t survivors = 0;
  for (auto l : res.final_live) survivors += l;
  std::cout << "wait-free-gather vs " << n - 1 << " leader-targeted crashes ("
            << n << " robots):\n"
            << "  outcome:   " << sim::to_string(res.status) << "\n"
            << "  rounds:    " << res.rounds << "\n"
            << "  crashed:   " << res.crashes << "\n"
            << "  survivors: " << survivors << "\n\n";

  // For the baseline, crash exactly its two designated movers (the occupied
  // locations closest to the sec center) at round 0 -- the two-fault schedule
  // the paper's introduction warns about.
  const config::configuration c0(pts);
  const geom::vec2 goal = c0.sec().center;
  std::vector<std::pair<double, std::size_t>> byd;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    byd.emplace_back(geom::distance(pts[i], goal), i);
  }
  std::sort(byd.begin(), byd.end());
  const baselines::single_fault_gather baseline;
  auto sched_b = sim::make_fair_random();
  auto move_b = sim::make_random_stop();
  auto crash_b =
      sim::make_scheduled_crashes({{0, byd[0].second}, {0, byd[1].second}});
  sim::sim_options opts_b;
  opts_b.seed = 11;
  opts_b.max_rounds = 2'000;
  sim::sim_spec spec_b;
  spec_b.initial = pts;
  spec_b.algorithm = &baseline;
  spec_b.scheduler = sched_b.get();
  spec_b.movement = move_b.get();
  spec_b.crash = crash_b.get();
  spec_b.options = opts_b;
  const auto res_b = sim::run(spec_b);
  std::cout << "single-fault baseline vs 2 crashes on the same instance:\n"
            << "  outcome:   " << sim::to_string(res_b.status) << "\n"
            << "  rounds:    " << res_b.rounds
            << (res_b.status != sim::sim_status::gathered
                    ? "  <- blocked robots wait forever"
                    : "")
            << "\n";
  return res.status == sim::sim_status::gathered ? 0 : 1;
}
