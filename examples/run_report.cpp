// Run report: execute one gathering and print the analytics the correctness
// proofs reason about -- the class-phase decomposition, the potential
// functions (target multiplicity, live spread) and the first multiplicity
// formation, plus the JSON report for machine consumption.
//
//   $ ./examples/run_report [n] [f] [seed]
#include <cstdlib>
#include <iostream>

#include "core/core.h"
#include "sim/sim.h"
#include "workloads/generators.h"

int main(int argc, char** argv) {
  using namespace gather;
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10;
  const std::size_t f = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 3;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 11;

  sim::rng r(seed);
  const core::wait_free_gather algo;
  auto sched = sim::make_fair_random();
  auto move = sim::make_random_stop();
  auto crash = sim::make_random_crashes(f, 20);
  sim::sim_options opts;
  opts.seed = seed;
  opts.record_trace = true;
  opts.check_wait_freeness = true;

  sim::sim_spec spec;
  spec.initial = workloads::uniform_random(n, r);
  spec.algorithm = &algo;
  spec.scheduler = sched.get();
  spec.movement = move.get();
  spec.crash = crash.get();
  spec.options = opts;
  const auto res = sim::run(spec);

  std::cout << "run: n=" << n << " f=" << f << " seed=" << seed << " -> "
            << sim::to_string(res.status) << " in " << res.rounds << " rounds\n\n";

  std::cout << "class phases (the Sec. V case analysis in action):\n";
  for (const auto& ph : sim::class_phases(res.class_history)) {
    std::cout << "  rounds " << ph.first_round << ".."
              << ph.first_round + ph.rounds - 1 << "  class "
              << config::to_string(ph.cls) << "\n";
  }

  const auto pot = sim::check_potentials(res);
  std::cout << "\npotential functions:\n"
            << "  target multiplicity monotone: "
            << (pot.max_multiplicity_monotone ? "yes" : "NO") << "\n"
            << "  live spread bounded (<= 2x):  "
            << (pot.spread_bounded ? "yes" : "NO") << "\n"
            << "  first multiplicity at round:  ";
  if (pot.first_multiplicity_round == static_cast<std::size_t>(-1)) {
    std::cout << "never\n";
  } else {
    std::cout << pot.first_multiplicity_round << "\n";
  }

  std::cout << "\nper-round metrics (round, class, live, spread, max stack):\n";
  for (const auto& m : sim::analyze_trace(res)) {
    std::cout << "  " << m.round << "\t" << config::to_string(m.cls) << "\t"
              << m.live_count << "\t" << m.live_spread << "\t"
              << m.max_live_multiplicity << "\n";
  }

  std::cout << "\nJSON report:\n";
  sim::write_json_report(std::cout, res);
  return res.status == sim::sim_status::gathered ? 0 : 1;
}
