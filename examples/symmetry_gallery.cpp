// A tour of the paper's configuration taxonomy (Sec. III and IV).
//
// For each class the example builds a representative instance and prints what
// the configuration calculus sees: multiplicities, symmetry, quasi-regularity
// with the computed Weber point, safe points, and the classification that
// drives the algorithm's case analysis.  It ends with the bivalent
// configuration, the unique initial configuration from which deterministic
// gathering is impossible (Lemma 5.2).
//
//   $ ./examples/symmetry_gallery
#include <iomanip>
#include <iostream>

#include "config/config.h"
#include "core/core.h"
#include "sim/sim.h"
#include "workloads/generators.h"

namespace {

void describe(const std::string& title, const std::vector<gather::geom::vec2>& pts) {
  using namespace gather;
  const config::configuration c(pts);
  const auto cls = config::classify(c);
  std::cout << "== " << title << "\n"
            << "   n=" << c.size() << "  |U|=" << c.distinct_count()
            << "  linear=" << (c.is_linear() ? "yes" : "no")
            << "  sym=" << config::symmetry(c) << "  class="
            << config::to_string(cls.cls) << "\n";
  if (const auto qr = config::detect_quasi_regularity(c)) {
    std::cout << "   quasi-regular, degree " << qr->degree << ", center ("
              << qr->center.x << ", " << qr->center.y << ")\n";
  }
  const auto w = config::weber_point(c);
  std::cout << "   Weber point: " << (w.unique ? "unique" : "interval")
            << (w.exact ? " (exact)" : " (Weiszfeld)") << " at (" << w.point.x
            << ", " << w.point.y << ")\n";
  const auto safe = config::safe_occupied_points(c);
  std::cout << "   safe occupied points: " << safe.size() << "/"
            << c.distinct_count() << "\n";
  if (cls.cls != config::config_class::bivalent) {
    const core::wait_free_gather algo;
    const auto stay = core::stationary_locations(c, algo);
    std::cout << "   stationary locations (Lemma 5.1 bound is 1): "
              << stay.size() << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace gather;
  std::cout << std::fixed << std::setprecision(3);
  sim::rng r(2026);

  describe("M: majority point", workloads::with_majority(9, 4, r));
  describe("L1W: line with a unique median", workloads::linear_unique_weber(7, r));
  describe("L2W: line with a median interval", workloads::linear_two_weber(6, r));
  describe("QR: regular hexagon", workloads::regular_polygon(6));
  describe("QR: biangular (unoccupied, off-sec center)", workloads::biangular(3, 0.5, r));
  describe("QR: polygon with occupied center",
           workloads::quasi_regular_with_center(8, 1, r));
  describe("A: generic cloud", workloads::uniform_random(7, r));
  describe("A via chirality: axially symmetric", workloads::axially_symmetric(7, r));

  // The bivalent impossibility: the algorithm refuses to move, and indeed no
  // deterministic algorithm can gather from here (Lemma 5.2).
  const auto biv = workloads::bivalent(8, r);
  describe("B: bivalent (gathering impossible)", biv);
  const core::wait_free_gather algo;
  auto sched = sim::make_synchronous();
  auto move = sim::make_full_movement();
  auto crash = sim::make_no_crash();
  sim::sim_spec spec;
  spec.initial = biv;
  spec.algorithm = &algo;
  spec.scheduler = sched.get();
  spec.movement = move.get();
  spec.crash = crash.get();
  const auto res = sim::run(spec);
  std::cout << "bivalent run outcome: " << sim::to_string(res.status)
            << " (no progress is the correct behaviour)\n";
  return 0;
}
