// Adversary playground: how to extend the simulator with custom adversaries.
//
// The three adversarial degrees of freedom of the ATOM model -- who acts
// (scheduler), where a move is cut short (movement), and who crashes when
// (crash policy) -- are small virtual interfaces.  This example implements
// one custom version of each inline and pits them, combined, against
// WAIT-FREE-GATHER:
//
//   * a scheduler that always activates exactly the two robots farthest
//     apart (trying to keep the swarm's diameter alive);
//   * a movement adversary that always stops robots at the minimum of delta
//     and 10% of the intended distance;
//   * a crash policy that kills a robot the moment it first touches the
//     currently-elected location (one fault per formation, up to f).
//
//   $ ./examples/adversary_playground [n] [f]
#include <cstdlib>
#include <iostream>
#include <map>

#include "core/core.h"
#include "sim/sim.h"
#include "workloads/generators.h"

namespace {

using namespace gather;

class diameter_scheduler final : public sim::activation_scheduler {
 public:
  std::vector<std::size_t> select(const sim::schedule_context& ctx,
                                  sim::rng&) override {
    std::vector<std::size_t> live;
    for (std::size_t i = 0; i < ctx.live.size(); ++i) {
      if (ctx.live[i]) live.push_back(i);
    }
    if (live.size() <= 2) return live;
    std::size_t a = live[0], b = live[1];
    double best = -1.0;
    for (std::size_t i : live) {
      for (std::size_t j : live) {
        const double d = geom::distance(ctx.positions[i], ctx.positions[j]);
        if (d > best) {
          best = d;
          a = i;
          b = j;
        }
      }
    }
    return {a, b};
  }
  std::string_view name() const override { return "diameter-pair"; }
};

class crawl_movement final : public sim::movement_adversary {
 public:
  double travelled(double want, double delta, sim::rng&) override {
    if (want <= delta) return want;
    return std::max(delta, 0.1 * want);
  }
  std::string_view name() const override { return "crawl"; }
};

class touch_crash final : public sim::crash_policy {
 public:
  explicit touch_crash(std::size_t budget) : budget_(budget) {}
  std::vector<std::size_t> crashes(const sim::crash_context& ctx,
                                   sim::rng&) override {
    if (spent_ >= budget_ || ctx.stationary == nullptr) return {};
    for (std::size_t i = 0; i < ctx.positions.size(); ++i) {
      if (ctx.live[i] &&
          geom::distance(ctx.positions[i], *ctx.stationary) < 1e-9 &&
          !already_[i]) {
        already_[i] = true;
        ++spent_;
        return {i};
      }
    }
    return {};
  }
  std::string_view name() const override { return "touch"; }

 private:
  std::size_t budget_;
  std::size_t spent_ = 0;
  std::map<std::size_t, bool> already_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 10;
  const std::size_t f = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : n - 1;

  sim::rng r(5);
  const core::wait_free_gather algo;
  diameter_scheduler sched;
  crawl_movement move;
  touch_crash crash(f);
  sim::sim_options opts;
  opts.check_wait_freeness = true;

  sim::sim_spec spec;
  spec.initial = workloads::uniform_random(n, r);
  spec.algorithm = &algo;
  spec.scheduler = &sched;
  spec.movement = &move;
  spec.crash = &crash;
  spec.options = opts;
  const auto res = sim::run(spec);

  std::cout << "custom adversary stack: scheduler=" << sched.name()
            << ", movement=" << move.name() << ", crash=" << crash.name()
            << " (budget " << f << ")\n"
            << "outcome: " << sim::to_string(res.status) << " after "
            << res.rounds << " rounds, " << res.crashes
            << " crashes, wait-free breaches " << res.wait_free_violations
            << "\n";
  if (res.status == sim::sim_status::gathered) {
    std::cout << "gathered at (" << res.gather_point.x << ", "
              << res.gather_point.y << ") -- the algorithm outlasts whatever "
              << "you compose.\n";
  }
  return res.status == sim::sim_status::gathered ? 0 : 1;
}
