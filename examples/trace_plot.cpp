// Trace exporter: run a gathering and dump the full execution as CSV
// (round,robot,x,y,active,live,class) for offline plotting.
//
//   $ ./examples/trace_plot [n] [f] [seed] > trace.csv
#include <cstdlib>
#include <iostream>

#include "core/core.h"
#include "sim/sim.h"
#include "workloads/generators.h"

int main(int argc, char** argv) {
  using namespace gather;
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  const std::size_t f = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 3;

  sim::rng r(seed);
  const core::wait_free_gather algo;
  auto sched = sim::make_fair_random();
  auto move = sim::make_random_stop();
  auto crash = sim::make_random_crashes(f, 30);
  sim::sim_options opts;
  opts.seed = seed;
  opts.record_trace = true;

  sim::sim_spec spec;
  spec.initial = workloads::uniform_random(n, r);
  spec.algorithm = &algo;
  spec.scheduler = sched.get();
  spec.movement = move.get();
  spec.crash = crash.get();
  spec.options = opts;
  const auto res = sim::run(spec);
  sim::write_trace_csv(std::cout, res);
  std::cerr << "status=" << sim::to_string(res.status) << " rounds=" << res.rounds
            << " crashes=" << res.crashes << "\n";
  return res.status == sim::sim_status::gathered ? 0 : 1;
}
