#include "obs/metrics_registry.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/json.h"
#include "obs/quantile.h"

namespace gather::obs {

histogram::histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  if (bounds_.empty()) {
    throw std::invalid_argument("histogram needs at least one bucket bound");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (!(bounds_[i - 1] < bounds_[i])) {
      throw std::invalid_argument(
          "histogram bounds must be strictly increasing");
    }
  }
}

void histogram::observe(double value) {
  std::size_t b = bounds_.size();  // overflow bucket
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      b = i;
      break;
    }
  }
  ++counts_[b];
  ++count_;
  sum_ += value;
}

histogram::quantile_bounds_t histogram::quantile_bounds(double q) const {
  if (count_ == 0) return {};
  // Shared nearest-rank definition (obs/quantile.h), the same one the
  // runner's round_quantile uses on exact samples.
  const std::uint64_t target = nearest_rank(count_, q);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= target) {
      const double lower =
          i == 0 ? -std::numeric_limits<double>::infinity() : bounds_[i - 1];
      const double upper = i < bounds_.size()
                               ? bounds_[i]
                               : std::numeric_limits<double>::infinity();
      return {lower, upper};
    }
  }
  return {};  // unreachable: cumulative == count_ >= target by then
}

void histogram::merge(const histogram& other) {
  if (other.count_ == 0 && other.bounds_.empty()) return;
  if (bounds_.empty() && counts_.empty()) {
    *this = other;
    return;
  }
  if (bounds_ != other.bounds_) {
    throw std::invalid_argument("cannot merge histograms with different bounds");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

histogram histogram::from_parts(std::vector<double> upper_bounds,
                                std::vector<std::uint64_t> bucket_counts,
                                std::uint64_t count, double sum) {
  histogram h(std::move(upper_bounds));  // validates the bounds
  if (bucket_counts.size() != h.counts_.size()) {
    throw std::invalid_argument("histogram bucket count mismatch");
  }
  std::uint64_t total = 0;
  for (const std::uint64_t c : bucket_counts) total += c;
  if (total != count) {
    throw std::invalid_argument("histogram count does not match buckets");
  }
  h.counts_ = std::move(bucket_counts);
  h.count_ = count;
  h.sum_ = sum;
  return h;
}

std::vector<double> pow2_bounds(int n) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<std::size_t>(n));
  double b = 1.0;
  for (int i = 0; i < n; ++i, b *= 2.0) bounds.push_back(b);
  return bounds;
}

std::uint64_t& metrics_registry::counter(const std::string& name) {
  return counters_[name];
}

double& metrics_registry::gauge(const std::string& name) {
  return gauges_[name];
}

histogram& metrics_registry::hist(const std::string& name,
                                  const std::vector<double>& upper_bounds) {
  auto it = hists_.find(name);
  if (it == hists_.end()) {
    it = hists_.emplace(name, histogram(upper_bounds)).first;
  }
  return it->second;
}

const std::uint64_t* metrics_registry::find_counter(
    const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const histogram* metrics_registry::find_histogram(
    const std::string& name) const {
  const auto it = hists_.find(name);
  return it == hists_.end() ? nullptr : &it->second;
}

void metrics_registry::merge(const metrics_registry& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, value] : other.gauges_) {
    auto [it, inserted] = gauges_.emplace(name, value);
    if (!inserted && value > it->second) it->second = value;
  }
  for (const auto& [name, h] : other.hists_) hists_[name].merge(h);
}

std::string metrics_registry::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ',';
    first = false;
    json_append_string(out, name);
    out += ':';
    json_append_uint(out, value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (!first) out += ',';
    first = false;
    json_append_string(out, name);
    out += ':';
    json_append_double(out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : hists_) {
    if (!first) out += ',';
    first = false;
    json_append_string(out, name);
    out += ":{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      if (i != 0) out += ',';
      json_append_double(out, h.bounds()[i]);
    }
    out += "],\"buckets\":[";
    for (std::size_t i = 0; i < h.bucket_counts().size(); ++i) {
      if (i != 0) out += ',';
      json_append_uint(out, h.bucket_counts()[i]);
    }
    out += "],\"count\":";
    json_append_uint(out, h.count());
    out += ",\"sum\":";
    json_append_double(out, h.sum());
    out += '}';
  }
  out += "}}";
  return out;
}

}  // namespace gather::obs
