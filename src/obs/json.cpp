#include "obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace gather::obs {

void json_append_string(std::string& out, std::string_view s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

void json_append_uint(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

void json_append_int(std::string& out, std::int64_t v) {
  char buf[24];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

void json_append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

}  // namespace gather::obs
