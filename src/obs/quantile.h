// The repo-wide quantile definition: the nearest-rank method.
//
// Both the runner's cell summaries (median/p90 rounds) and the obs
// histogram's quantile_bounds report quantiles; they must agree on what a
// q-quantile *is* or cross-layer comparisons (e.g. checking a summary median
// against the metrics histogram) silently drift.  This header is the single
// definition both layers use: the q-quantile of a sorted sample of size n is
// the element at 1-based rank clamp(ceil(q * n), 1, n).
#pragma once

#include <cmath>
#include <cstdint>

namespace gather::obs {

/// 1-based nearest-rank of the q-quantile in a sample of size `n`:
/// clamp(ceil(q * n), 1, n), with q clamped into [0, 1] first.
/// Returns 0 only for an empty sample (n == 0).
[[nodiscard]] inline std::uint64_t nearest_rank(std::uint64_t n, double q) {
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  auto rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n)));
  if (rank == 0) rank = 1;
  if (rank > n) rank = n;
  return rank;
}

}  // namespace gather::obs
