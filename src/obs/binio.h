// Byte-stable binary encoding primitives (header-only).
//
// The campaign service persists checkpoints, columnar result tables and
// metrics registries as byte streams; the determinism contract (docs/RUNNER.md)
// requires those streams to be byte-identical across shard layouts, thread
// counts and resume boundaries.  These writers therefore fix every encoding
// decision explicitly:
//
//   * all integers are little-endian, written byte by byte (no host-order
//     memcpy, so the bytes do not depend on the build machine);
//   * doubles are the IEEE-754 bit pattern via std::bit_cast, carried as a
//     u64 -- exact round-trip, including -0.0 and NaN payloads;
//   * strings are a u64 length followed by raw bytes;
//   * streams end with an FNV-1a checksum over everything before it.
//
// `byte_reader` throws std::runtime_error on any overrun, so truncated or
// corrupted input is always a loud failure, never garbage values.
#pragma once

#include <bit>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace gather::obs {

/// FNV-1a over a byte range: the integrity checksum for the binary sinks.
[[nodiscard]] inline std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Appends little-endian scalars and length-prefixed strings to an owned
/// buffer.  `finish()` appends the checksum and releases the bytes.
class byte_writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }

  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void str(std::string_view s) {
    u64(s.size());
    out_.append(s);
  }

  /// Appends fnv1a(everything written so far) and returns the buffer.  The
  /// writer is left empty and reusable.
  [[nodiscard]] std::string finish() {
    u64(fnv1a(out_));
    return std::move(out_);
  }

  [[nodiscard]] const std::string& bytes() const { return out_; }

 private:
  std::string out_;
};

/// Reads back what byte_writer wrote.  Every accessor throws
/// std::runtime_error on overrun; `verify_checksum()` checks the trailing
/// FNV-1a before any field is consumed.
class byte_reader {
 public:
  explicit byte_reader(std::string_view bytes) : bytes_(bytes) {}

  /// Splits off the trailing u64 checksum and validates it against the body.
  /// Call once, before reading fields.  Throws std::runtime_error on a short
  /// buffer or checksum mismatch.
  void verify_checksum() {
    if (bytes_.size() < 8) throw std::runtime_error("binio: truncated stream");
    const std::string_view body = bytes_.substr(0, bytes_.size() - 8);
    byte_reader tail(bytes_.substr(bytes_.size() - 8));
    if (tail.u64() != fnv1a(body)) {
      throw std::runtime_error("binio: checksum mismatch");
    }
    bytes_ = body;
  }

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }

  [[nodiscard]] std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    return v;
  }

  [[nodiscard]] std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    return v;
  }

  [[nodiscard]] double f64() { return std::bit_cast<double>(u64()); }

  [[nodiscard]] std::string str() {
    const std::uint64_t len = u64();
    need(len);
    std::string s(bytes_.substr(pos_, len));
    pos_ += len;
    return s;
  }

  [[nodiscard]] bool at_end() const { return pos_ == bytes_.size(); }

  /// Throws unless the whole body was consumed -- catches encoder/decoder
  /// drift that a checksum cannot.
  void expect_end() const {
    if (!at_end()) throw std::runtime_error("binio: trailing bytes");
  }

 private:
  void need(std::uint64_t n) const {
    if (n > bytes_.size() - pos_) {
      throw std::runtime_error("binio: truncated stream");
    }
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

}  // namespace gather::obs
