// Metrics registry: named counters, gauges and fixed-bucket histograms.
//
// Designed for the per-round simulation path: callers resolve a metric to a
// stable reference once per run (map nodes never move), then update through
// the reference at O(1) cost.  Registries are value types; `merge` folds one
// registry into another (counters and histogram buckets add, gauges take the
// max), is commutative and associative, so a campaign can aggregate per-cell
// registries in any grouping and -- merged in cell-index order -- produce the
// same bytes regardless of how many worker threads executed the cells.
//
// A registry itself is NOT thread-safe: the intended pattern is one registry
// per run (or per thread), merged after the fact.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gather::obs {

/// Fixed-bucket histogram: counts of observations v with v <= bound, per
/// bound, plus an implicit +inf overflow bucket, total count and sum.
class histogram {
 public:
  histogram() = default;
  /// `upper_bounds` must be non-empty and strictly increasing; an overflow
  /// bucket is appended implicitly.  Throws std::invalid_argument otherwise.
  explicit histogram(std::vector<double> upper_bounds);

  void observe(double value);

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const {
    return counts_;
  }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }

  /// The [lower, upper] edges of the bucket holding the nearest-rank
  /// q-quantile (the smallest bucket with at least ceil(q * count)
  /// observations at or below its upper edge).  The exact nearest-rank
  /// quantile of the underlying sample always lies within the returned
  /// interval.  Lower edge of the first bucket is -infinity, upper edge of
  /// the overflow bucket is +infinity.  Returns {0, 0} on an empty histogram.
  struct quantile_bounds_t {
    double lower = 0.0;
    double upper = 0.0;
  };
  [[nodiscard]] quantile_bounds_t quantile_bounds(double q) const;

  /// Bucket-wise addition.  Throws std::invalid_argument on mismatched
  /// bounds (merging into a default-constructed histogram adopts `other`).
  void merge(const histogram& other);

  /// Rebuild a histogram from previously serialized state (obs/serialize.h).
  /// `bucket_counts` must have bounds.size() + 1 entries and `count` must
  /// equal their sum; throws std::invalid_argument otherwise.
  [[nodiscard]] static histogram from_parts(std::vector<double> upper_bounds,
                                            std::vector<std::uint64_t> bucket_counts,
                                            std::uint64_t count, double sum);

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  // bounds_.size() + 1 (overflow last)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

/// Power-of-two bucket bounds 1, 2, 4, ..., 2^(n-1): the default resolution
/// for round counts.
[[nodiscard]] std::vector<double> pow2_bounds(int n);

class metrics_registry {
 public:
  /// Monotone counter.  The reference stays valid for the registry's
  /// lifetime (map nodes are stable).
  [[nodiscard]] std::uint64_t& counter(const std::string& name);
  /// Last-write-wins value; merge takes the max (commutative).
  [[nodiscard]] double& gauge(const std::string& name);
  /// Histogram with the given bucket bounds; an existing histogram is
  /// returned as-is (its bounds win).
  [[nodiscard]] histogram& hist(const std::string& name,
                                const std::vector<double>& upper_bounds);

  /// Read-only views, in lexicographic name order.
  [[nodiscard]] const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, histogram>& histograms() const {
    return hists_;
  }
  /// Lookup without creation; nullptr when absent.
  [[nodiscard]] const std::uint64_t* find_counter(const std::string& name) const;
  [[nodiscard]] const histogram* find_histogram(const std::string& name) const;

  [[nodiscard]] bool empty() const {
    return counters_.empty() && gauges_.empty() && hists_.empty();
  }

  /// Fold `other` into this registry: counters and histogram buckets add,
  /// gauges take the max.
  void merge(const metrics_registry& other);

  /// One JSON object with keys "counters", "gauges", "histograms", every
  /// level in lexicographic key order; doubles in shortest round-trip form.
  /// Deterministic bytes for deterministic contents.
  [[nodiscard]] std::string to_json() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, histogram> hists_;
};

}  // namespace gather::obs
