#include "obs/profile_report.h"

#include <cstdio>

namespace gather::obs {

void export_profile(const prof_registry& profile, metrics_registry& metrics) {
  std::vector<double> bounds;
  bounds.reserve(prof_bucket_count);
  for (std::size_t i = 0; i < prof_bucket_count; ++i) {
    bounds.push_back(static_cast<double>(prof_bucket_bound(i)));
  }
  for (const auto& [site, stats] : profile.sites()) {
    metrics.counter("prof." + site + ".calls") += stats.calls;
    metrics.counter("prof." + site + ".total_ns") += stats.total_ns;
    histogram& h = metrics.hist("prof." + site + ".ns", bounds);
    // Replay the bucketed durations at their bucket bound so count/buckets
    // line up; the exact total is carried by the total_ns counter.
    for (std::size_t i = 0; i <= prof_bucket_count; ++i) {
      const double at = i < prof_bucket_count
                            ? static_cast<double>(prof_bucket_bound(i))
                            : 2.0 * static_cast<double>(
                                        prof_bucket_bound(prof_bucket_count - 1));
      for (std::uint64_t k = 0; k < stats.buckets[i]; ++k) h.observe(at);
    }
  }
}

std::string profile_table(const prof_registry& profile) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line, "%-28s %12s %12s %12s\n", "site", "calls",
                "total ms", "mean us");
  out += line;
  for (const auto& [site, stats] : profile.sites()) {
    const double total_ms = static_cast<double>(stats.total_ns) / 1e6;
    const double mean_us =
        stats.calls == 0
            ? 0.0
            : static_cast<double>(stats.total_ns) /
                  (1e3 * static_cast<double>(stats.calls));
    std::snprintf(line, sizeof line, "%-28s %12llu %12.3f %12.3f\n",
                  site.c_str(), static_cast<unsigned long long>(stats.calls),
                  total_ms, mean_us);
    out += line;
  }
  return out;
}

}  // namespace gather::obs
