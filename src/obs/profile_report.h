// Export of prof_registry timings into a metrics_registry.
//
// Each profiled site `s` becomes a counter `prof.s.calls`, a counter
// `prof.s.total_ns`, and a histogram `prof.s.ns` whose bounds are the
// power-of-4 nanosecond buckets of obs/profile.h -- so per-cell profiles
// merge across a campaign exactly like every other metric.
#pragma once

#include "obs/metrics_registry.h"
#include "obs/profile.h"

namespace gather::obs {

void export_profile(const prof_registry& profile, metrics_registry& metrics);

/// Human-readable per-site table (site, calls, total ms, mean us).
[[nodiscard]] std::string profile_table(const prof_registry& profile);

}  // namespace gather::obs
