// Structured per-round simulation events and the sink interface.
//
// The engines narrate a run as a flat stream of typed events (round starts,
// activations, truncated moves, crashes, class transitions, lemma
// violations, gathering).  Events reference enum labels as string_views
// (produced by gather::enum_name at the emission site) so this library has
// no dependency on the enum definitions.
//
// Emission cost model: the engines hold an `event_sink*` that is nullptr by
// default, and every emission site is guarded by that pointer check -- the
// "null sink" path is one predictable branch per site, no event object is
// ever built.  `null_sink` exists for call sites that want a non-null sink
// object with no effect.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace gather::obs {

enum class event_kind {
  round_start,       ///< a simulation round (or async step) begins
  activation,        ///< a robot performs its Look-Compute-Move cycle
  move_truncated,    ///< the movement adversary stopped a robot short
  crash,             ///< a robot crashed (stops acting, stays visible)
  class_transition,  ///< the configuration class changed between rounds
  lemma_violation,   ///< an online lemma check failed (see `detail`)
  gathered,          ///< the GATHERED predicate became true
};

/// One event.  `run` and `round` are always meaningful; the other fields
/// depend on the kind (see the factories below and docs/OBSERVABILITY.md).
struct event {
  event_kind kind = event_kind::round_start;
  std::uint64_t run = 0;     ///< run id (campaign cell index; 0 standalone)
  std::uint64_t round = 0;   ///< round (ATOM) or step (ASYNC)
  std::int64_t robot = -1;   ///< robot index, when about a single robot
  std::string_view cls;      ///< configuration class label
  std::string_view prev;     ///< previous class label (class_transition)
  std::string_view detail;   ///< violated lemma label (lemma_violation)
  std::uint64_t live = 0;    ///< live robots (round_start)
  double want = 0.0;         ///< intended move distance (move_truncated)
  double got = 0.0;          ///< travelled distance (move_truncated)
  double x = 0.0, y = 0.0;   ///< gather point (gathered)

  [[nodiscard]] static event round_start(std::uint64_t run, std::uint64_t round,
                                         std::string_view cls,
                                         std::uint64_t live);
  [[nodiscard]] static event activation(std::uint64_t run, std::uint64_t round,
                                        std::int64_t robot);
  [[nodiscard]] static event move_truncated(std::uint64_t run,
                                            std::uint64_t round,
                                            std::int64_t robot, double want,
                                            double got);
  [[nodiscard]] static event crash(std::uint64_t run, std::uint64_t round,
                                   std::int64_t robot);
  [[nodiscard]] static event class_transition(std::uint64_t run,
                                              std::uint64_t round,
                                              std::string_view from,
                                              std::string_view to);
  [[nodiscard]] static event lemma_violation(std::uint64_t run,
                                             std::uint64_t round,
                                             std::string_view lemma);
  [[nodiscard]] static event gathered(std::uint64_t run, std::uint64_t round,
                                      double x, double y);
};

/// The canonical label of an event kind (also the JSONL "event" value).
[[nodiscard]] std::string_view to_string(event_kind k);

class event_sink {
 public:
  virtual ~event_sink() = default;
  virtual void on_event(const event& e) = 0;
};

/// Swallows everything.
class null_sink final : public event_sink {
 public:
  void on_event(const event&) override {}
};

/// Render `e` as one JSONL line (no trailing newline): keys in a fixed
/// per-kind order, "event" first, doubles in shortest round-trip form.
/// Identical events produce identical bytes.
void append_jsonl(std::string& out, const event& e);

/// Appends one JSONL line per event to a caller-owned string.  The campaign
/// runner gives each cell its own buffer and concatenates buffers in cell
/// index order, which is what makes `--trace-jsonl` output independent of
/// `--jobs`.
class jsonl_string_sink final : public event_sink {
 public:
  explicit jsonl_string_sink(std::string* out) : out_(out) {}
  void on_event(const event& e) override {
    append_jsonl(*out_, e);
    *out_ += '\n';
  }

 private:
  std::string* out_;
};

}  // namespace gather::obs
