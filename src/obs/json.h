// Minimal deterministic JSON fragment writers.
//
// Every obs output path (JSONL events, metrics dumps) funnels through these
// helpers so the byte format is defined once: strings escape the JSON
// control set, doubles use std::to_chars shortest round-trip form (locale
// independent, no trailing zeros), and non-finite doubles -- invalid JSON --
// are emitted as null.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace gather::obs {

/// Append `s` as a quoted, escaped JSON string.
void json_append_string(std::string& out, std::string_view s);

/// Append an unsigned integer.
void json_append_uint(std::string& out, std::uint64_t v);

/// Append a signed integer.
void json_append_int(std::string& out, std::int64_t v);

/// Append a double in shortest round-trip form ("null" for NaN/inf).
void json_append_double(std::string& out, double v);

}  // namespace gather::obs
