#include "obs/columnar.h"

#include <stdexcept>

#include "obs/binio.h"

namespace gather::obs {

namespace {

// "GATHCOL1" as a little-endian u64 tag.
constexpr std::uint64_t kMagic = 0x314c4f4348544147ULL;
constexpr std::uint32_t kVersion = 1;

}  // namespace

std::size_t column::size() const {
  switch (type) {
    case column_type::u64:
      return u64s.size();
    case column_type::f64:
      return f64s.size();
    case column_type::str:
      return strs.size();
  }
  return 0;  // unreachable
}

std::size_t columnar_table::add_column(std::string name, column_type type) {
  if (find(name) != nullptr) {
    throw std::invalid_argument("columnar: duplicate column '" + name + "'");
  }
  cols_.push_back(column{std::move(name), type, {}, {}, {}});
  return cols_.size() - 1;
}

const column* columnar_table::find(const std::string& name) const {
  for (const column& c : cols_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::size_t columnar_table::rows() const {
  if (cols_.empty()) return 0;
  const std::size_t n = cols_.front().size();
  for (const column& c : cols_) {
    if (c.size() != n) {
      throw std::runtime_error("columnar: ragged columns in '" + c.name + "'");
    }
  }
  return n;
}

bool columnar_table::same_schema(const columnar_table& other) const {
  if (cols_.size() != other.cols_.size()) return false;
  for (std::size_t i = 0; i < cols_.size(); ++i) {
    if (cols_[i].name != other.cols_[i].name ||
        cols_[i].type != other.cols_[i].type) {
      return false;
    }
  }
  return true;
}

void columnar_table::append(const columnar_table& other) {
  if (!same_schema(other)) {
    throw std::invalid_argument("columnar: append with mismatched schema");
  }
  (void)rows();        // validate both sides before touching anything
  (void)other.rows();
  for (std::size_t i = 0; i < cols_.size(); ++i) {
    column& dst = cols_[i];
    const column& src = other.cols_[i];
    dst.u64s.insert(dst.u64s.end(), src.u64s.begin(), src.u64s.end());
    dst.f64s.insert(dst.f64s.end(), src.f64s.begin(), src.f64s.end());
    dst.strs.insert(dst.strs.end(), src.strs.begin(), src.strs.end());
  }
}

std::string columnar_table::encode() const {
  const std::size_t n = rows();  // validates column lengths
  byte_writer w;
  w.u64(kMagic);
  w.u32(kVersion);
  w.u64(meta.size());
  for (const auto& [key, value] : meta) {  // std::map: key order, deterministic
    w.str(key);
    w.u64(value);
  }
  w.u64(cols_.size());
  w.u64(n);
  for (const column& c : cols_) {
    w.str(c.name);
    w.u8(static_cast<std::uint8_t>(c.type));
    switch (c.type) {
      case column_type::u64:
        for (const std::uint64_t v : c.u64s) w.u64(v);
        break;
      case column_type::f64:
        for (const double v : c.f64s) w.f64(v);
        break;
      case column_type::str:
        for (const std::string& v : c.strs) w.str(v);
        break;
    }
  }
  return w.finish();
}

columnar_table columnar_table::decode(std::string_view bytes) {
  byte_reader r(bytes);
  r.verify_checksum();
  if (r.u64() != kMagic) throw std::runtime_error("columnar: bad magic");
  if (r.u32() != kVersion) throw std::runtime_error("columnar: bad version");
  columnar_table t;
  const std::uint64_t meta_n = r.u64();
  for (std::uint64_t i = 0; i < meta_n; ++i) {
    std::string key = r.str();
    t.meta[std::move(key)] = r.u64();
  }
  const std::uint64_t col_n = r.u64();
  const std::uint64_t row_n = r.u64();
  for (std::uint64_t i = 0; i < col_n; ++i) {
    std::string name = r.str();
    const std::uint8_t raw_type = r.u8();
    if (raw_type > static_cast<std::uint8_t>(column_type::str)) {
      throw std::runtime_error("columnar: bad column type");
    }
    column& c =
        t.col(t.add_column(std::move(name), static_cast<column_type>(raw_type)));
    switch (c.type) {
      case column_type::u64:
        c.u64s.reserve(row_n);
        for (std::uint64_t j = 0; j < row_n; ++j) c.u64s.push_back(r.u64());
        break;
      case column_type::f64:
        c.f64s.reserve(row_n);
        for (std::uint64_t j = 0; j < row_n; ++j) c.f64s.push_back(r.f64());
        break;
      case column_type::str:
        c.strs.reserve(row_n);
        for (std::uint64_t j = 0; j < row_n; ++j) c.strs.push_back(r.str());
        break;
    }
  }
  r.expect_end();
  return t;
}

}  // namespace gather::obs
