#include "obs/events.h"

#include "obs/json.h"

namespace gather::obs {

std::string_view to_string(event_kind k) {
  switch (k) {
    case event_kind::round_start: return "round_start";
    case event_kind::activation: return "activation";
    case event_kind::move_truncated: return "move_truncated";
    case event_kind::crash: return "crash";
    case event_kind::class_transition: return "class_transition";
    case event_kind::lemma_violation: return "lemma_violation";
    case event_kind::gathered: return "gathered";
  }
  return "?";
}

event event::round_start(std::uint64_t run, std::uint64_t round,
                         std::string_view cls, std::uint64_t live) {
  event e;
  e.kind = event_kind::round_start;
  e.run = run;
  e.round = round;
  e.cls = cls;
  e.live = live;
  return e;
}

event event::activation(std::uint64_t run, std::uint64_t round,
                        std::int64_t robot) {
  event e;
  e.kind = event_kind::activation;
  e.run = run;
  e.round = round;
  e.robot = robot;
  return e;
}

event event::move_truncated(std::uint64_t run, std::uint64_t round,
                            std::int64_t robot, double want, double got) {
  event e;
  e.kind = event_kind::move_truncated;
  e.run = run;
  e.round = round;
  e.robot = robot;
  e.want = want;
  e.got = got;
  return e;
}

event event::crash(std::uint64_t run, std::uint64_t round, std::int64_t robot) {
  event e;
  e.kind = event_kind::crash;
  e.run = run;
  e.round = round;
  e.robot = robot;
  return e;
}

event event::class_transition(std::uint64_t run, std::uint64_t round,
                              std::string_view from, std::string_view to) {
  event e;
  e.kind = event_kind::class_transition;
  e.run = run;
  e.round = round;
  e.prev = from;
  e.cls = to;
  return e;
}

event event::lemma_violation(std::uint64_t run, std::uint64_t round,
                             std::string_view lemma) {
  event e;
  e.kind = event_kind::lemma_violation;
  e.run = run;
  e.round = round;
  e.detail = lemma;
  return e;
}

event event::gathered(std::uint64_t run, std::uint64_t round, double x,
                      double y) {
  event e;
  e.kind = event_kind::gathered;
  e.run = run;
  e.round = round;
  e.x = x;
  e.y = y;
  return e;
}

void append_jsonl(std::string& out, const event& e) {
  out += "{\"event\":";
  json_append_string(out, to_string(e.kind));
  out += ",\"run\":";
  json_append_uint(out, e.run);
  out += ",\"round\":";
  json_append_uint(out, e.round);
  switch (e.kind) {
    case event_kind::round_start:
      out += ",\"cls\":";
      json_append_string(out, e.cls);
      out += ",\"live\":";
      json_append_uint(out, e.live);
      break;
    case event_kind::activation:
      out += ",\"robot\":";
      json_append_int(out, e.robot);
      break;
    case event_kind::move_truncated:
      out += ",\"robot\":";
      json_append_int(out, e.robot);
      out += ",\"want\":";
      json_append_double(out, e.want);
      out += ",\"got\":";
      json_append_double(out, e.got);
      break;
    case event_kind::crash:
      out += ",\"robot\":";
      json_append_int(out, e.robot);
      break;
    case event_kind::class_transition:
      out += ",\"from\":";
      json_append_string(out, e.prev);
      out += ",\"to\":";
      json_append_string(out, e.cls);
      break;
    case event_kind::lemma_violation:
      out += ",\"lemma\":";
      json_append_string(out, e.detail);
      break;
    case event_kind::gathered:
      out += ",\"x\":";
      json_append_double(out, e.x);
      out += ",\"y\":";
      json_append_double(out, e.y);
      break;
  }
  out += '}';
}

}  // namespace gather::obs
