// Compact columnar result container with a byte-stable binary codec.
//
// The campaign service's primary result sink: per-cell scalar results are
// stored column-wise (one typed vector per named column) instead of as CSV
// text.  The binary encoding (obs/binio.h) is fully deterministic -- the
// same rows produce the same bytes regardless of how the campaign was
// sharded -- which makes `cmp` a sufficient equality check for the service's
// determinism contract (docs/RUNNER.md).  CSV becomes an export path
// (runner/result_columns.h decodes and re-prints rows).
//
// Tables carry a small u64 metadata map (the runner records the cell range
// and the grid fingerprint there) so a merge can refuse mismatched or
// non-contiguous shards.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace gather::obs {

enum class column_type : std::uint8_t { u64 = 0, f64 = 1, str = 2 };

/// One named, typed column.  All columns of a table have equal length.
struct column {
  std::string name;
  column_type type = column_type::u64;
  std::vector<std::uint64_t> u64s;  // column_type::u64
  std::vector<double> f64s;         // column_type::f64
  std::vector<std::string> strs;    // column_type::str

  [[nodiscard]] std::size_t size() const;
};

class columnar_table {
 public:
  /// Declare a column; order of declaration is the schema order and is part
  /// of the encoded bytes.  Throws std::invalid_argument on duplicate names.
  /// Returns the column's index, stable for the life of the table -- fill
  /// through col(index).  (The previous reference-returning signature was
  /// an invalidation hazard: the next add_column could reallocate the
  /// column vector.  gather-analyze rule R6 keeps the old pattern out.)
  std::size_t add_column(std::string name, column_type type);

  /// The column at a schema index returned by add_column.
  [[nodiscard]] column& col(std::size_t index) { return cols_.at(index); }
  [[nodiscard]] const column& col(std::size_t index) const {
    return cols_.at(index);
  }

  [[nodiscard]] const std::vector<column>& columns() const { return cols_; }
  /// Lookup by name; nullptr when absent.
  [[nodiscard]] const column* find(const std::string& name) const;
  [[nodiscard]] column* find(const std::string& name) {
    return const_cast<column*>(std::as_const(*this).find(name));
  }

  /// Number of rows (0 for a table with no columns).  Throws
  /// std::runtime_error if columns have diverged in length.
  [[nodiscard]] std::size_t rows() const;

  /// Schema equality: same column names and types in the same order.
  [[nodiscard]] bool same_schema(const columnar_table& other) const;

  /// Append all rows of `other` (schema must match; throws
  /// std::invalid_argument otherwise).  Metadata is NOT merged -- callers
  /// own the semantics of their keys (runner/result_columns.h validates
  /// range contiguity before appending).
  void append(const columnar_table& other);

  /// u64 metadata, encoded in key order.  The runner stores "begin", "end"
  /// (cell range) and "fingerprint" (grid identity) here.
  std::map<std::string, std::uint64_t> meta;

  /// The byte-stable encoding: magic, version, metadata, schema, column
  /// data, trailing FNV-1a checksum.
  [[nodiscard]] std::string encode() const;

  /// Inverse of encode().  Throws std::runtime_error on truncation, bad
  /// magic/version, checksum mismatch or malformed structure.
  [[nodiscard]] static columnar_table decode(std::string_view bytes);

 private:
  std::vector<column> cols_;
};

}  // namespace gather::obs
