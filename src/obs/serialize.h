// Binary round-trip for metrics registries (obs/binio.h encoding).
//
// A sharded campaign run folds per-cell registries into one registry per
// shard; the shard's registry must survive a process boundary (checkpoint
// files, per-shard .mreg sinks) so the merge step can rebuild the exact
// single-process aggregate.  The encoding is byte-stable: maps iterate in
// key order and doubles are carried bit-exactly, so the same registry always
// produces the same bytes.
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics_registry.h"

namespace gather::obs {

/// Encode `m` (counters, gauges, histograms, each in name order) with a
/// trailing FNV-1a checksum.
[[nodiscard]] std::string encode_metrics(const metrics_registry& m);

/// Inverse of encode_metrics.  Throws std::runtime_error on truncation,
/// checksum mismatch, bad magic or malformed histogram state.
[[nodiscard]] metrics_registry decode_metrics(std::string_view bytes);

}  // namespace gather::obs
