#include "obs/serialize.h"

#include <stdexcept>

#include "obs/binio.h"

namespace gather::obs {

namespace {

// "GATHMRG1" as a little-endian u64 tag.
constexpr std::uint64_t kMagic = 0x3147524d48544147ULL;
constexpr std::uint32_t kVersion = 1;

}  // namespace

std::string encode_metrics(const metrics_registry& m) {
  byte_writer w;
  w.u64(kMagic);
  w.u32(kVersion);
  w.u64(m.counters().size());
  for (const auto& [name, value] : m.counters()) {
    w.str(name);
    w.u64(value);
  }
  w.u64(m.gauges().size());
  for (const auto& [name, value] : m.gauges()) {
    w.str(name);
    w.f64(value);
  }
  w.u64(m.histograms().size());
  for (const auto& [name, h] : m.histograms()) {
    w.str(name);
    w.u64(h.bounds().size());
    for (const double b : h.bounds()) w.f64(b);
    for (const std::uint64_t c : h.bucket_counts()) w.u64(c);
    w.u64(h.count());
    w.f64(h.sum());
  }
  return w.finish();
}

metrics_registry decode_metrics(std::string_view bytes) {
  byte_reader r(bytes);
  r.verify_checksum();
  if (r.u64() != kMagic) throw std::runtime_error("metrics: bad magic");
  if (r.u32() != kVersion) throw std::runtime_error("metrics: bad version");
  metrics_registry m;
  const std::uint64_t counter_n = r.u64();
  for (std::uint64_t i = 0; i < counter_n; ++i) {
    const std::string name = r.str();
    m.counter(name) += r.u64();
  }
  const std::uint64_t gauge_n = r.u64();
  for (std::uint64_t i = 0; i < gauge_n; ++i) {
    const std::string name = r.str();
    m.gauge(name) = r.f64();
  }
  const std::uint64_t hist_n = r.u64();
  for (std::uint64_t i = 0; i < hist_n; ++i) {
    const std::string name = r.str();
    const std::uint64_t bound_n = r.u64();
    std::vector<double> bounds;
    bounds.reserve(bound_n);
    for (std::uint64_t j = 0; j < bound_n; ++j) bounds.push_back(r.f64());
    std::vector<std::uint64_t> counts;
    counts.reserve(bound_n + 1);
    for (std::uint64_t j = 0; j < bound_n + 1; ++j) counts.push_back(r.u64());
    const std::uint64_t count = r.u64();
    const double sum = r.f64();
    try {
      m.hist(name, bounds)
          .merge(histogram::from_parts(bounds, std::move(counts), count, sum));
    } catch (const std::invalid_argument& e) {
      throw std::runtime_error("metrics: " + std::string(e.what()));
    }
  }
  r.expect_end();
  return m;
}

}  // namespace gather::obs
