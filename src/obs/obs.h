// Umbrella header for the observability layer (metrics, events, profiling).
#pragma once

#include "obs/binio.h"
#include "obs/columnar.h"
#include "obs/events.h"
#include "obs/json.h"
#include "obs/metrics_registry.h"
#include "obs/profile.h"
#include "obs/profile_report.h"
#include "obs/serialize.h"
