// Scoped-timer profiling hooks for the per-snapshot hot paths.
//
//   double work() {
//     GATHER_PROF("classify");
//     ...
//   }
//
// Disabled by default: a site costs one thread_local pointer load and a
// predictable branch; no clock is read and nothing allocates.  A caller
// enables collection for the current thread by installing a `prof_registry`
// (usually via the RAII `prof_session`); every GATHER_PROF scope entered on
// that thread until the session ends records its wall time into the
// registry, bucketed into a power-of-4 nanosecond histogram per site.
//
// Header-only and dependency-free on purpose: the instrumented code lives in
// gather_geometry / gather_config, below gather_obs in the link order.
// `obs/profile_report.h` (in gather_obs) exports a registry's contents into
// a metrics_registry for rendering.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace gather::obs {

/// Power-of-4 nanosecond buckets: 64ns, 256ns, ..., ~17ms, +overflow.
inline constexpr std::size_t prof_bucket_count = 10;
/// Upper bound of bucket `i`: 64 * 4^i nanoseconds.
[[nodiscard]] constexpr std::uint64_t prof_bucket_bound(std::size_t i) {
  return 64ULL << (2 * i);
}

struct prof_site_stats {
  std::uint64_t calls = 0;
  std::uint64_t total_ns = 0;
  std::array<std::uint64_t, prof_bucket_count + 1> buckets{};  // overflow last
};

/// Accumulates per-site timing stats.  Not thread-safe: install one per
/// thread (the campaign runner merges per-cell exports afterwards).
class prof_registry {
 public:
  void record(std::string_view site, std::uint64_t ns) {
    auto it = sites_.find(site);
    if (it == sites_.end()) {
      it = sites_.emplace(std::string(site), prof_site_stats{}).first;
    }
    prof_site_stats& s = it->second;
    ++s.calls;
    s.total_ns += ns;
    std::size_t b = prof_bucket_count;  // overflow
    for (std::size_t i = 0; i < prof_bucket_count; ++i) {
      if (ns <= prof_bucket_bound(i)) {
        b = i;
        break;
      }
    }
    ++s.buckets[b];
  }

  [[nodiscard]] const std::map<std::string, prof_site_stats, std::less<>>&
  sites() const {
    return sites_;
  }

  [[nodiscard]] bool empty() const { return sites_.empty(); }

 private:
  std::map<std::string, prof_site_stats, std::less<>> sites_;
};

namespace detail {
inline thread_local prof_registry* tls_prof = nullptr;
}  // namespace detail

/// The registry GATHER_PROF records into on this thread (nullptr = off).
[[nodiscard]] inline prof_registry* current_prof() {
  return detail::tls_prof;
}

/// RAII enable/disable of profiling on the current thread.
class prof_session {
 public:
  explicit prof_session(prof_registry* registry) : prev_(detail::tls_prof) {
    detail::tls_prof = registry;
  }
  ~prof_session() { detail::tls_prof = prev_; }
  prof_session(const prof_session&) = delete;
  prof_session& operator=(const prof_session&) = delete;

 private:
  prof_registry* prev_;
};

/// One timed scope.  Reads the clock only when profiling is enabled.
class prof_scope {
 public:
  explicit prof_scope(const char* site)
      : site_(site), registry_(detail::tls_prof) {
    if (registry_ != nullptr) start_ = std::chrono::steady_clock::now();
  }
  ~prof_scope() {
    if (registry_ == nullptr) return;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    registry_->record(site_, ns < 0 ? 0 : static_cast<std::uint64_t>(ns));
  }
  prof_scope(const prof_scope&) = delete;
  prof_scope& operator=(const prof_scope&) = delete;

 private:
  const char* site_;
  prof_registry* registry_;
  std::chrono::steady_clock::time_point start_{};
};

}  // namespace gather::obs

#define GATHER_PROF_CONCAT_INNER(a, b) a##b
#define GATHER_PROF_CONCAT(a, b) GATHER_PROF_CONCAT_INNER(a, b)
/// Time the enclosing scope under `site` (a string literal).
#define GATHER_PROF(site) \
  ::gather::obs::prof_scope GATHER_PROF_CONCAT(gather_prof_scope_, __LINE__)(site)
