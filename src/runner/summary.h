// Aggregation over campaign results: per-cell statistics (success rate,
// round quantiles, violation counters) and whole-campaign totals.
//
// A "cell" is the spec minus (repeat, seed): all repeats of one
// (workload, n, f, scheduler, movement, delta) point aggregate together.
// Cells are emitted in first-seen (i.e. expansion) order, so summaries are
// as deterministic as the results they are computed from.
#pragma once

#include <string>
#include <vector>

#include "runner/campaign.h"

namespace gather::runner {

/// Nearest-rank quantile of an unsorted sample: the smallest element with
/// at least ceil(q * N) elements <= it.  Returns 0 on an empty sample.
[[nodiscard]] std::size_t round_quantile(std::vector<std::size_t> values,
                                         double q);

struct cell_summary {
  // Cell key.
  std::string workload;
  std::size_t n = 0;
  std::size_t f = 0;
  std::string scheduler;
  std::string movement;
  double delta = 0.05;
  // Aggregates.
  std::size_t runs = 0;
  std::size_t gathered = 0;
  std::size_t stalled = 0;  ///< stalled or round-limit runs
  std::size_t wait_free_violations = 0;
  std::size_t bivalent_entries = 0;
  std::size_t crashes = 0;
  std::size_t median_rounds = 0;  ///< over gathered runs (nearest rank)
  std::size_t p90_rounds = 0;     ///< over gathered runs (nearest rank)
  std::size_t max_rounds = 0;     ///< over gathered runs

  [[nodiscard]] double success_rate() const {
    return runs == 0 ? 0.0
                     : static_cast<double>(gathered) / static_cast<double>(runs);
  }
};

/// Group results by cell key, in first-seen order.
[[nodiscard]] std::vector<cell_summary> summarize(
    const std::vector<run_result>& results);

/// Whole-campaign counters.
struct campaign_totals {
  std::size_t runs = 0;
  std::size_t gathered = 0;
  std::size_t failures = 0;  ///< runs that did not reach `gathered`
  std::size_t wait_free_violations = 0;
  std::size_t bivalent_entries = 0;
};

[[nodiscard]] campaign_totals overall(const std::vector<run_result>& results);

/// CSV rendering of the per-cell summary (used by gather_campaign --summary).
[[nodiscard]] std::string summary_csv_header();
[[nodiscard]] std::string summary_csv_row(const cell_summary& c);

}  // namespace gather::runner
