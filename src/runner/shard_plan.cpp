#include "runner/shard_plan.h"

#include <algorithm>
#include <stdexcept>

namespace gather::runner {

cell_range shard_cells(std::size_t total, shard_ref which) {
  if (which.count == 0) {
    throw std::invalid_argument("shard count must be >= 1");
  }
  if (which.index >= which.count) {
    throw std::invalid_argument("shard index out of range");
  }
  const std::size_t base = total / which.count;
  const std::size_t extra = total % which.count;
  // Shards [0, extra) hold base + 1 cells; the rest hold base.
  const std::size_t begin = which.index * base + std::min(which.index, extra);
  const std::size_t len = base + (which.index < extra ? 1 : 0);
  return {begin, begin + len};
}

std::vector<cell_range> plan_shards(std::size_t total, std::size_t count) {
  std::vector<cell_range> ranges;
  ranges.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    ranges.push_back(shard_cells(total, {i, count}));
  }
  return ranges;
}

}  // namespace gather::runner
