// Fixed-size thread pool for batch simulation (system S8: the runner).
//
// The pool owns `jobs` worker threads for its whole lifetime.  Two entry
// points:
//
//   * submit(task)       -- queue one task; the returned future reports
//                           completion and propagates any exception thrown
//                           by the task.
//   * parallel_for(n,fn) -- run fn(0), ..., fn(n-1) across the pool and
//                           block until all are done.  Indices are handed
//                           out through a single atomic ticket counter, so
//                           work distribution involves no locks and -- more
//                           importantly -- no shared mutable state that
//                           could make results depend on scheduling.  The
//                           caller owns result placement by index, which is
//                           how the campaign layer guarantees output that is
//                           byte-identical for every jobs value.
//
// With jobs == 1 the single worker consumes tickets in order, reproducing
// strictly serial execution.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace gather::runner {

class thread_pool {
 public:
  /// Spawns `jobs` workers; 0 means one per hardware thread.
  explicit thread_pool(std::size_t jobs = 0);

  /// Drains every already-submitted task, then joins the workers.
  ~thread_pool();

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Queue one task.  The future becomes ready when the task finishes and
  /// rethrows from get() anything the task threw.
  std::future<void> submit(std::function<void()> task);

  /// Run fn(i) for i in [0, count) across the pool; blocks until done.
  /// The first exception thrown by any fn(i) aborts the remaining indices
  /// and is rethrown here.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn);

  /// Hardware concurrency with a floor of 1.
  [[nodiscard]] static std::size_t default_jobs();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;  // gather-lint: guarded_by(mutex_)
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;  // gather-lint: guarded_by(mutex_)
};

}  // namespace gather::runner
