// Shard planning: split an expanded campaign grid into contiguous,
// location-independent cell ranges.
//
// Every cell's seed is a pure hash of (base_seed, cell index) -- see
// derive_seed in runner/campaign.h -- so a cell's outcome does not depend on
// which process executes it or in what order.  A shard is therefore just a
// contiguous index range [begin, end) of the canonical expansion; shards can
// run in separate processes and their outputs, concatenated in range order,
// are byte-identical to a single-process run (docs/RUNNER.md, determinism
// contract).  Contiguity is what keeps merges order-preserving: per-cell
// trace buffers and metrics registries fold left to right exactly as the
// single-process campaign folds them.
#pragma once

#include <cstddef>
#include <vector>

namespace gather::runner {

/// Which shard of how many.  The default is the whole grid as one shard.
struct shard_ref {
  std::size_t index = 0;
  std::size_t count = 1;
};

/// A contiguous cell-index range [begin, end).
struct cell_range {
  std::size_t begin = 0;
  std::size_t end = 0;

  [[nodiscard]] std::size_t size() const { return end - begin; }
  [[nodiscard]] bool contains(std::size_t i) const {
    return i >= begin && i < end;
  }
  [[nodiscard]] bool operator==(const cell_range&) const = default;
};

/// The cells shard `which` owns out of `total`: a balanced contiguous split
/// (the first total % count shards get one extra cell).  Throws
/// std::invalid_argument when count == 0 or index >= count.
[[nodiscard]] cell_range shard_cells(std::size_t total, shard_ref which);

/// All `count` shard ranges in order; they partition [0, total).
[[nodiscard]] std::vector<cell_range> plan_shards(std::size_t total,
                                                  std::size_t count);

}  // namespace gather::runner
