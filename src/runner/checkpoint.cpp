#include "runner/checkpoint.h"

#include <cstdio>
#include <stdexcept>

#include "obs/binio.h"

namespace gather::runner {

namespace {

// "GATHCKP1" as a little-endian u64 tag.
constexpr std::uint64_t kMagic = 0x31504b4348544147ULL;
constexpr std::uint32_t kVersion = 1;

void encode_result(obs::byte_writer& w, const run_result& r) {
  w.str(r.spec.workload);
  w.u64(r.spec.n);
  w.u64(r.spec.f);
  w.str(r.spec.scheduler);
  w.str(r.spec.movement);
  w.f64(r.spec.delta);
  w.u64(static_cast<std::uint64_t>(r.spec.repeat));
  w.u64(r.spec.index);
  w.u64(r.spec.seed);
  w.u64(r.n);
  w.u8(static_cast<std::uint8_t>(r.status));
  w.u64(r.rounds);
  w.u64(r.crashes);
  w.u64(r.wait_free_violations);
  w.u64(r.bivalent_entries);
  w.u64(r.first_multiplicity_round);
  w.u64(r.phase_count);
}

run_result decode_result(obs::byte_reader& r) {
  run_result out;
  out.spec.workload = r.str();
  out.spec.n = static_cast<std::size_t>(r.u64());
  out.spec.f = static_cast<std::size_t>(r.u64());
  out.spec.scheduler = r.str();
  out.spec.movement = r.str();
  out.spec.delta = r.f64();
  out.spec.repeat = static_cast<int>(r.u64());
  out.spec.index = static_cast<std::size_t>(r.u64());
  out.spec.seed = r.u64();
  out.n = static_cast<std::size_t>(r.u64());
  const std::uint8_t status = r.u8();
  if (status > static_cast<std::uint8_t>(sim::sim_status::started_bivalent)) {
    throw std::runtime_error("checkpoint: bad status value");
  }
  out.status = static_cast<sim::sim_status>(status);
  out.rounds = static_cast<std::size_t>(r.u64());
  out.crashes = static_cast<std::size_t>(r.u64());
  out.wait_free_violations = static_cast<std::size_t>(r.u64());
  out.bivalent_entries = static_cast<std::size_t>(r.u64());
  out.first_multiplicity_round = static_cast<std::size_t>(r.u64());
  out.phase_count = static_cast<std::size_t>(r.u64());
  return out;
}

void hash_str(obs::byte_writer& w, const std::string& s) { w.str(s); }

}  // namespace

std::uint64_t grid_fingerprint(const grid& g) {
  // Hash the canonical serialization of every field that affects expansion
  // or cell outcomes.  Field order is fixed; lengths are included via the
  // str/u64 framing, so no two distinct grids share a serialization.
  obs::byte_writer w;
  w.u64(g.workloads.size());
  for (const auto& s : g.workloads) hash_str(w, s);
  w.u64(g.ns.size());
  for (const std::size_t n : g.ns) w.u64(n);
  w.u64(g.fs.size());
  for (const std::size_t f : g.fs) w.u64(f);
  w.u64(g.schedulers.size());
  for (const auto& s : g.schedulers) hash_str(w, s);
  w.u64(g.movements.size());
  for (const auto& s : g.movements) hash_str(w, s);
  w.u64(g.deltas.size());
  for (const double d : g.deltas) w.f64(d);
  w.u64(static_cast<std::uint64_t>(g.repeats));
  w.u64(g.base_seed);
  w.u64(g.max_rounds);
  w.u64(g.crash_horizon);
  w.u8(g.check_wait_freeness ? 1 : 0);
  return obs::fnv1a(w.bytes());
}

std::uint64_t campaign_fingerprint(const grid& g, cell_range range,
                                   bool has_trace, bool has_metrics) {
  obs::byte_writer w;
  w.u64(grid_fingerprint(g));
  w.u64(range.begin);
  w.u64(range.end);
  w.u8(has_trace ? 1 : 0);
  w.u8(has_metrics ? 1 : 0);
  return obs::fnv1a(w.bytes());
}

std::string encode_checkpoint(const checkpoint_state& state) {
  obs::byte_writer w;
  w.u64(kMagic);
  w.u32(kVersion);
  w.u64(state.fingerprint);
  w.u64(state.range.begin);
  w.u64(state.range.end);
  w.u8(state.has_trace ? 1 : 0);
  w.u8(state.has_metrics ? 1 : 0);
  w.u64(state.cells.size());
  for (const checkpoint_cell& c : state.cells) {
    encode_result(w, c.result);
    if (state.has_trace) w.str(c.trace_jsonl);
    if (state.has_metrics) w.str(c.metrics_bytes);
  }
  return w.finish();
}

checkpoint_state decode_checkpoint(std::string_view bytes) {
  obs::byte_reader r(bytes);
  r.verify_checksum();
  if (r.u64() != kMagic) throw std::runtime_error("checkpoint: bad magic");
  if (r.u32() != kVersion) throw std::runtime_error("checkpoint: bad version");
  checkpoint_state state;
  state.fingerprint = r.u64();
  state.range.begin = static_cast<std::size_t>(r.u64());
  state.range.end = static_cast<std::size_t>(r.u64());
  if (state.range.begin > state.range.end) {
    throw std::runtime_error("checkpoint: inverted range");
  }
  state.has_trace = r.u8() != 0;
  state.has_metrics = r.u8() != 0;
  const std::uint64_t cell_n = r.u64();
  if (cell_n > state.range.size()) {
    throw std::runtime_error("checkpoint: more cells than the range holds");
  }
  state.cells.reserve(cell_n);
  std::size_t prev_index = 0;
  for (std::uint64_t i = 0; i < cell_n; ++i) {
    checkpoint_cell c;
    c.result = decode_result(r);
    if (state.has_trace) c.trace_jsonl = r.str();
    if (state.has_metrics) c.metrics_bytes = r.str();
    if (!state.range.contains(c.result.spec.index) ||
        (i > 0 && c.result.spec.index <= prev_index)) {
      throw std::runtime_error("checkpoint: cell index out of order");
    }
    prev_index = c.result.spec.index;
    state.cells.push_back(std::move(c));
  }
  r.expect_end();
  return state;
}

void write_checkpoint_file(const std::string& path,
                           const checkpoint_state& state) {
  const std::string bytes = encode_checkpoint(state);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw std::runtime_error("checkpoint: cannot open " + tmp);
  }
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("checkpoint: cannot rename " + tmp);
  }
}

bool read_checkpoint_file(const std::string& path, checkpoint_state& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string bytes;
  char buf[1 << 16];
  for (;;) {
    const std::size_t got = std::fread(buf, 1, sizeof buf, f);
    bytes.append(buf, got);
    if (got < sizeof buf) break;
  }
  const bool read_ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!read_ok) {
    throw std::runtime_error("checkpoint: cannot read " + path);
  }
  out = decode_checkpoint(bytes);
  return true;
}

}  // namespace gather::runner
