#include "runner/params.h"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "workloads/generators.h"

namespace gather::runner {

std::vector<std::string> split_csv_strict(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  auto flush = [&] {
    if (cur.empty()) {
      throw std::invalid_argument("empty token in list '" + s + "'");
    }
    if (std::find(out.begin(), out.end(), cur) != out.end()) {
      throw std::invalid_argument("duplicate token '" + cur + "' in list '" +
                                  s + "'");
    }
    out.push_back(cur);
    cur.clear();
  };
  for (char ch : s) {
    if (ch == ',') {
      flush();
    } else {
      cur += ch;
    }
  }
  flush();
  return out;
}

std::vector<std::size_t> parse_size_list(const std::string& s) {
  std::vector<std::size_t> out;
  for (const auto& tok : split_csv_strict(s)) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
    if (tok.empty() || tok.front() == '-' || end != tok.c_str() + tok.size()) {
      throw std::invalid_argument("not a non-negative integer: '" + tok + "'");
    }
    out.push_back(static_cast<std::size_t>(v));
  }
  return out;
}

std::vector<double> parse_double_list(const std::string& s) {
  std::vector<double> out;
  for (const auto& tok : split_csv_strict(s)) {
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (tok.empty() || end != tok.c_str() + tok.size()) {
      throw std::invalid_argument("not a number: '" + tok + "'");
    }
    out.push_back(v);
  }
  return out;
}

const std::vector<std::string>& workload_names() {
  static const std::vector<std::string> names = {
      "uniform",   "majority",  "linear-1w", "linear-2w", "polygon",
      "rings",     "biangular", "qr-center", "axial",     "grid",
      "clustered"};
  return names;
}

std::vector<geom::vec2> build_workload(const std::string& name, std::size_t n,
                                       sim::rng& random) {
  if (name == "uniform") return workloads::uniform_random(n, random);
  if (name == "majority") {
    return workloads::with_majority(n, std::max<std::size_t>(2, n / 3), random);
  }
  if (name == "linear-1w") return workloads::linear_unique_weber(n, random);
  if (name == "linear-2w") return workloads::linear_two_weber(n, random);
  if (name == "polygon") return workloads::regular_polygon(n);
  if (name == "rings") {
    return workloads::symmetric_rings(std::max<std::size_t>(3, n / 2), 2,
                                      random);
  }
  if (name == "biangular") {
    return workloads::biangular(std::max<std::size_t>(2, n / 2), 0.4, random);
  }
  if (name == "qr-center") {
    return workloads::quasi_regular_with_center(n, 1, random);
  }
  if (name == "axial") return workloads::axially_symmetric(n, random);
  if (name == "grid") return workloads::jittered_grid(n, 0.2, random);
  if (name == "clustered") {
    return workloads::clustered(n, std::max<std::size_t>(2, n / 4), 1.0,
                                random);
  }
  throw std::invalid_argument("unknown workload: '" + name + "'");
}

std::unique_ptr<sim::activation_scheduler> scheduler_by_name(
    const std::string& name) {
  for (const auto& s : sim::all_schedulers()) {
    if (s.name == name) return s.make();
  }
  throw std::invalid_argument("unknown scheduler: '" + name + "'");
}

std::unique_ptr<sim::movement_adversary> movement_by_name(
    const std::string& name) {
  for (const auto& m : sim::all_movements()) {
    if (m.name == name) return m.make();
  }
  throw std::invalid_argument("unknown movement adversary: '" + name + "'");
}

}  // namespace gather::runner
