#include "runner/campaign.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "core/wait_free_gather.h"
#include "obs/profile_report.h"
#include "obs/serialize.h"
#include "sim/spec.h"
#include "runner/campaign_spec.h"
#include "runner/checkpoint.h"
#include "runner/params.h"
#include "util/thread_pool.h"
#include "sim/analysis.h"

namespace gather::runner {

std::vector<run_spec> expand(const grid& g) {
  if (g.workloads.empty() || g.ns.empty() || g.fs.empty() ||
      g.schedulers.empty() || g.movements.empty() || g.deltas.empty()) {
    throw std::invalid_argument("every grid axis needs at least one value");
  }
  if (g.repeats < 1) {
    throw std::invalid_argument("repeats must be >= 1");
  }
  // Validate names up front so no worker fails mid-sweep on a typo.
  sim::rng probe(1);
  for (const auto& w : g.workloads) (void)build_workload(w, 4, probe);
  for (const auto& s : g.schedulers) (void)scheduler_by_name(s);
  for (const auto& m : g.movements) (void)movement_by_name(m);

  std::vector<run_spec> specs;
  std::size_t index = 0;
  for (const auto& w : g.workloads) {
    for (std::size_t n : g.ns) {
      for (std::size_t f : g.fs) {
        if (f >= n) continue;
        for (const auto& s : g.schedulers) {
          for (const auto& m : g.movements) {
            for (double delta : g.deltas) {
              for (int rep = 0; rep < g.repeats; ++rep) {
                run_spec spec;
                spec.workload = w;
                spec.n = n;
                spec.f = f;
                spec.scheduler = s;
                spec.movement = m;
                spec.delta = delta;
                spec.repeat = rep;
                spec.index = index;
                spec.seed = derive_seed(g.base_seed, index);
                specs.push_back(std::move(spec));
                ++index;
              }
            }
          }
        }
      }
    }
  }
  return specs;
}

run_result execute_cell(const run_spec& spec, const grid& g,
                        const cell_observer& watch) {
  const core::wait_free_gather algo;
  sim::rng workload_rng(spec.seed);
  auto pts = build_workload(spec.workload, spec.n, workload_rng);
  auto sched = scheduler_by_name(spec.scheduler);
  auto move = movement_by_name(spec.movement);
  auto crash = spec.f == 0 ? sim::make_no_crash()
                           : sim::make_random_crashes(spec.f, g.crash_horizon);

  sim::sim_spec s;
  s.initial = std::move(pts);
  s.algorithm = &algo;
  s.scheduler = sched.get();
  s.movement = move.get();
  s.crash = crash.get();
  s.options.seed = spec.seed;
  s.options.delta_fraction = spec.delta;
  s.options.check_wait_freeness = g.check_wait_freeness;
  s.options.max_rounds = g.max_rounds;
  s.options.record_trace = true;  // needed by check_potentials; dropped below
  s.sink = watch.sink;
  s.metrics = watch.metrics;
  s.profile = watch.profile;
  s.run_id = spec.index;

  const auto res = sim::run(s);
  const auto pot = sim::check_potentials(res);

  run_result out;
  out.spec = spec;
  out.n = res.final_positions.size();
  out.status = res.status;
  out.rounds = res.rounds;
  out.crashes = res.crashes;
  out.wait_free_violations = res.wait_free_violations;
  out.bivalent_entries = res.bivalent_entries;
  out.first_multiplicity_round = pot.first_multiplicity_round;
  out.phase_count = pot.phase_count;
  return out;
}

namespace {

/// One cell's slot in the shard: its result and captured sink payloads.
/// Workers fill disjoint slots; readers (the checkpoint writer and the final
/// fold) only touch slots listed as completed under the campaign mutex, so
/// the mutex is the synchronization point.
struct cell_slot {
  run_result result;
  std::string trace_jsonl;
  obs::metrics_registry metrics;
};

}  // namespace

campaign_result run_campaign(const campaign_spec& spec) {
  const auto specs = expand(spec.grid);
  const cell_range range = shard_cells(specs.size(), spec.shard);
  const bool capture_trace = spec.sinks.trace_jsonl != nullptr;
  const bool capture_metrics = spec.sinks.metrics != nullptr;
  const std::uint64_t fingerprint =
      campaign_fingerprint(spec.grid, range, capture_trace, capture_metrics);

  std::vector<cell_slot> slots(range.size());
  // Slot offsets (cell index - range.begin) of completed cells, in no
  // particular order; sorted when a checkpoint or the final fold needs them.
  std::vector<std::size_t> completed_slots;  // gather-lint: guarded_by(completed_mutex)
  std::mutex completed_mutex;

  std::size_t restored = 0;
  if (!spec.checkpoint.path.empty() && spec.checkpoint.resume) {
    checkpoint_state saved;
    if (read_checkpoint_file(spec.checkpoint.path, saved)) {
      if (saved.fingerprint != fingerprint) {
        throw std::runtime_error(
            "checkpoint: fingerprint mismatch (different grid, shard range "
            "or sink configuration)");
      }
      // Single-threaded restore phase; the lock is uncontended but keeps
      // the completed_slots discipline uniform (gather-analyze R7).
      std::lock_guard<std::mutex> restore_lock(completed_mutex);
      for (checkpoint_cell& c : saved.cells) {
        const std::size_t offset = c.result.spec.index - range.begin;
        cell_slot& slot = slots[offset];
        slot.result = std::move(c.result);
        slot.trace_jsonl = std::move(c.trace_jsonl);
        if (capture_metrics && !c.metrics_bytes.empty()) {
          slot.metrics = obs::decode_metrics(c.metrics_bytes);
        }
        completed_slots.push_back(offset);
        ++restored;
      }
    }
  }

  // Work list: the shard's not-yet-completed cells in index order.  The
  // max_cells budget slices this list up front, so exactly which cells a
  // budgeted invocation completes is deterministic -- independent of worker
  // scheduling -- which is what the resume tests rely on.
  std::vector<std::size_t> pending;
  pending.reserve(range.size() - restored);
  {
    std::lock_guard<std::mutex> pending_lock(completed_mutex);
    std::vector<bool> done(range.size(), false);
    for (const std::size_t offset : completed_slots) done[offset] = true;
    for (std::size_t i = 0; i < range.size(); ++i) {
      if (!done[i]) pending.push_back(i);
    }
  }
  const std::size_t budget =
      spec.exec.max_cells == 0
          ? pending.size()
          : std::min(spec.exec.max_cells, pending.size());

  const auto write_checkpoint = [&](const std::vector<std::size_t>& offsets) {
    checkpoint_state state;
    state.fingerprint = fingerprint;
    state.range = range;
    state.has_trace = capture_trace;
    state.has_metrics = capture_metrics;
    std::vector<std::size_t> ordered = offsets;
    std::sort(ordered.begin(), ordered.end());
    state.cells.reserve(ordered.size());
    for (const std::size_t offset : ordered) {
      const cell_slot& slot = slots[offset];
      checkpoint_cell c;
      c.result = slot.result;
      if (capture_trace) c.trace_jsonl = slot.trace_jsonl;
      if (capture_metrics) c.metrics_bytes = obs::encode_metrics(slot.metrics);
      state.cells.push_back(std::move(c));
    }
    write_checkpoint_file(spec.checkpoint.path, state);
  };

  const std::size_t stride =
      spec.exec.progress_stride == 0 ? 1 : spec.exec.progress_stride;
  const std::size_t checkpoint_stride =
      spec.checkpoint.stride == 0 ? 1 : spec.checkpoint.stride;
  std::atomic<std::size_t> executed{0};
  std::atomic<std::size_t> failures{0};
  std::atomic<bool> stop{false};
  std::mutex progress_mutex;
  const auto start = std::chrono::steady_clock::now();

  util::thread_pool pool(spec.exec.jobs);
  pool.parallel_for(budget, [&](std::size_t k) {
    if (stop.load(std::memory_order_relaxed)) return;
    if (spec.exec.cancelled && spec.exec.cancelled()) {
      stop.store(true, std::memory_order_relaxed);
      return;
    }
    const std::size_t offset = pending[k];
    const run_spec& cell = specs[range.begin + offset];
    cell_slot& slot = slots[offset];

    cell_observer watch;
    obs::jsonl_string_sink sink(capture_trace ? &slot.trace_jsonl : nullptr);
    if (capture_trace) watch.sink = &sink;
    if (capture_metrics) watch.metrics = &slot.metrics;
    obs::prof_registry prof;
    if (spec.sinks.profile && capture_metrics) watch.profile = &prof;
    slot.result = execute_cell(cell, spec.grid, watch);
    if (watch.profile != nullptr) {
      obs::export_profile(prof, slot.metrics);
    }
    if (slot.result.status != sim::sim_status::gathered) {
      failures.fetch_add(1, std::memory_order_relaxed);
    }

    const std::size_t done = executed.fetch_add(1) + 1;
    {
      std::lock_guard<std::mutex> lock(completed_mutex);
      completed_slots.push_back(offset);
      if (!spec.checkpoint.path.empty() &&
          (done % checkpoint_stride == 0 || done == budget)) {
        write_checkpoint(completed_slots);
      }
    }
    if (spec.exec.on_progress && (done % stride == 0 || done == budget)) {
      std::lock_guard<std::mutex> lock(progress_mutex);
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      progress p;
      p.completed = done;
      p.total = budget;
      p.failures = failures.load(std::memory_order_relaxed);
      p.runs_per_sec = secs > 0.0 ? static_cast<double>(done) / secs : 0.0;
      p.eta_seconds = p.runs_per_sec > 0.0
                          ? static_cast<double>(budget - done) / p.runs_per_sec
                          : 0.0;
      spec.exec.on_progress(p);
    }
  });

  // The pool's workers are idle after parallel_for, so the lock below is
  // uncontended; holding it for the whole fold keeps every completed_slots
  // access under completed_mutex (gather-analyze R7).
  std::lock_guard<std::mutex> fold_lock(completed_mutex);

  // A cancelled run may stop before any checkpoint-stride boundary; persist
  // whatever completed so the next invocation resumes from it.
  if (!spec.checkpoint.path.empty() && !completed_slots.empty()) {
    write_checkpoint(completed_slots);
  }

  campaign_result out;
  out.range = range;
  out.executed = executed.load();
  out.restored = restored;
  std::sort(completed_slots.begin(), completed_slots.end());
  out.rows.reserve(completed_slots.size());
  for (const std::size_t offset : completed_slots) {
    out.rows.push_back(slots[offset].result);
  }
  // Sinks fold in cell-index order over completed cells only; for a complete
  // shard this reproduces the single-process bytes exactly.
  if (capture_trace) {
    std::size_t total = 0;
    for (const std::size_t offset : completed_slots) {
      total += slots[offset].trace_jsonl.size();
    }
    spec.sinks.trace_jsonl->reserve(spec.sinks.trace_jsonl->size() + total);
    for (const std::size_t offset : completed_slots) {
      *spec.sinks.trace_jsonl += slots[offset].trace_jsonl;
    }
  }
  if (capture_metrics) {
    for (const std::size_t offset : completed_slots) {
      spec.sinks.metrics->merge(slots[offset].metrics);
    }
  }
  return out;
}

std::string csv_header() {
  return "workload,n,f,scheduler,movement,delta,seed,status,rounds,crashes,"
         "wait_free_violations,bivalent_entries,first_mult_round,phases";
}

std::string csv_row(const run_result& r) {
  char buf[512];
  int len = std::snprintf(
      buf, sizeof buf, "%s,%zu,%zu,%s,%s,%g,%llu,%s,%zu,%zu,%zu,%zu,",
      r.spec.workload.c_str(), r.n, r.spec.f, r.spec.scheduler.c_str(),
      r.spec.movement.c_str(), r.spec.delta,
      static_cast<unsigned long long>(r.spec.seed),
      std::string(sim::to_string(r.status)).c_str(), r.rounds, r.crashes,
      r.wait_free_violations, r.bivalent_entries);
  std::string row(buf, static_cast<std::size_t>(len));
  if (r.first_multiplicity_round != static_cast<std::size_t>(-1)) {
    len = std::snprintf(buf, sizeof buf, "%zu", r.first_multiplicity_round);
    row.append(buf, static_cast<std::size_t>(len));
  }
  len = std::snprintf(buf, sizeof buf, ",%zu", r.phase_count);
  row.append(buf, static_cast<std::size_t>(len));
  return row;
}

}  // namespace gather::runner
