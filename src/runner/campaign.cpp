#include "runner/campaign.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "core/wait_free_gather.h"
#include "obs/profile_report.h"
#include "sim/spec.h"
#include "runner/params.h"
#include "runner/thread_pool.h"
#include "sim/analysis.h"

namespace gather::runner {

std::vector<run_spec> expand(const grid& g) {
  if (g.workloads.empty() || g.ns.empty() || g.fs.empty() ||
      g.schedulers.empty() || g.movements.empty() || g.deltas.empty()) {
    throw std::invalid_argument("every grid axis needs at least one value");
  }
  if (g.repeats < 1) {
    throw std::invalid_argument("repeats must be >= 1");
  }
  // Validate names up front so no worker fails mid-sweep on a typo.
  sim::rng probe(1);
  for (const auto& w : g.workloads) (void)build_workload(w, 4, probe);
  for (const auto& s : g.schedulers) (void)scheduler_by_name(s);
  for (const auto& m : g.movements) (void)movement_by_name(m);

  std::vector<run_spec> specs;
  std::size_t index = 0;
  for (const auto& w : g.workloads) {
    for (std::size_t n : g.ns) {
      for (std::size_t f : g.fs) {
        if (f >= n) continue;
        for (const auto& s : g.schedulers) {
          for (const auto& m : g.movements) {
            for (double delta : g.deltas) {
              for (int rep = 0; rep < g.repeats; ++rep) {
                run_spec spec;
                spec.workload = w;
                spec.n = n;
                spec.f = f;
                spec.scheduler = s;
                spec.movement = m;
                spec.delta = delta;
                spec.repeat = rep;
                spec.index = index;
                spec.seed = derive_seed(g.base_seed, index);
                specs.push_back(std::move(spec));
                ++index;
              }
            }
          }
        }
      }
    }
  }
  return specs;
}

run_result execute_cell(const run_spec& spec, const grid& g,
                        const cell_observer& watch) {
  const core::wait_free_gather algo;
  sim::rng workload_rng(spec.seed);
  auto pts = build_workload(spec.workload, spec.n, workload_rng);
  auto sched = scheduler_by_name(spec.scheduler);
  auto move = movement_by_name(spec.movement);
  auto crash = spec.f == 0 ? sim::make_no_crash()
                           : sim::make_random_crashes(spec.f, g.crash_horizon);

  sim::sim_spec s;
  s.initial = std::move(pts);
  s.algorithm = &algo;
  s.scheduler = sched.get();
  s.movement = move.get();
  s.crash = crash.get();
  s.options.seed = spec.seed;
  s.options.delta_fraction = spec.delta;
  s.options.check_wait_freeness = g.check_wait_freeness;
  s.options.max_rounds = g.max_rounds;
  s.options.record_trace = true;  // needed by check_potentials; dropped below
  s.sink = watch.sink;
  s.metrics = watch.metrics;
  s.profile = watch.profile;
  s.run_id = spec.index;

  const auto res = sim::run(s);
  const auto pot = sim::check_potentials(res);

  run_result out;
  out.spec = spec;
  out.n = res.final_positions.size();
  out.status = res.status;
  out.rounds = res.rounds;
  out.crashes = res.crashes;
  out.wait_free_violations = res.wait_free_violations;
  out.bivalent_entries = res.bivalent_entries;
  out.first_multiplicity_round = pot.first_multiplicity_round;
  out.phase_count = pot.phase_count;
  return out;
}

std::vector<run_result> run_campaign(const grid& g,
                                     const campaign_options& options) {
  const auto specs = expand(g);
  std::vector<run_result> results(specs.size());
  if (specs.empty()) return results;

  const std::size_t stride =
      options.progress_stride == 0 ? 1 : options.progress_stride;
  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> failures{0};
  std::mutex progress_mutex;
  const auto start = std::chrono::steady_clock::now();

  // Per-cell observability buffers, written independently by the workers and
  // folded in cell-index order below -- the trace bytes and the merged
  // registry are therefore the same for every jobs value.
  const bool capture_trace = options.trace_jsonl != nullptr;
  const bool capture_metrics = options.metrics != nullptr;
  std::vector<std::string> cell_traces(capture_trace ? specs.size() : 0);
  std::vector<obs::metrics_registry> cell_metrics(
      capture_metrics ? specs.size() : 0);

  thread_pool pool(options.jobs);
  pool.parallel_for(specs.size(), [&](std::size_t i) {
    cell_observer watch;
    obs::jsonl_string_sink sink(capture_trace ? &cell_traces[i] : nullptr);
    if (capture_trace) watch.sink = &sink;
    if (capture_metrics) watch.metrics = &cell_metrics[i];
    obs::prof_registry prof;
    if (options.profile && capture_metrics) watch.profile = &prof;
    results[i] = execute_cell(specs[i], g, watch);
    if (watch.profile != nullptr) {
      obs::export_profile(prof, cell_metrics[i]);
    }
    if (results[i].status != sim::sim_status::gathered) {
      failures.fetch_add(1, std::memory_order_relaxed);
    }
    const std::size_t done = completed.fetch_add(1) + 1;
    if (options.on_progress && (done % stride == 0 || done == specs.size())) {
      std::lock_guard<std::mutex> lock(progress_mutex);
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      progress p;
      p.completed = done;
      p.total = specs.size();
      p.failures = failures.load(std::memory_order_relaxed);
      p.runs_per_sec = secs > 0.0 ? static_cast<double>(done) / secs : 0.0;
      p.eta_seconds = p.runs_per_sec > 0.0
                          ? static_cast<double>(specs.size() - done) /
                                p.runs_per_sec
                          : 0.0;
      options.on_progress(p);
    }
  });

  if (capture_trace) {
    std::size_t total = 0;
    for (const auto& t : cell_traces) total += t.size();
    options.trace_jsonl->reserve(options.trace_jsonl->size() + total);
    for (const auto& t : cell_traces) *options.trace_jsonl += t;
  }
  if (capture_metrics) {
    for (const auto& m : cell_metrics) options.metrics->merge(m);
  }
  return results;
}

std::string csv_header() {
  return "workload,n,f,scheduler,movement,delta,seed,status,rounds,crashes,"
         "wait_free_violations,bivalent_entries,first_mult_round,phases";
}

std::string csv_row(const run_result& r) {
  char buf[512];
  int len = std::snprintf(
      buf, sizeof buf, "%s,%zu,%zu,%s,%s,%g,%llu,%s,%zu,%zu,%zu,%zu,",
      r.spec.workload.c_str(), r.n, r.spec.f, r.spec.scheduler.c_str(),
      r.spec.movement.c_str(), r.spec.delta,
      static_cast<unsigned long long>(r.spec.seed),
      std::string(sim::to_string(r.status)).c_str(), r.rounds, r.crashes,
      r.wait_free_violations, r.bivalent_entries);
  std::string row(buf, static_cast<std::size_t>(len));
  if (r.first_multiplicity_round != static_cast<std::size_t>(-1)) {
    len = std::snprintf(buf, sizeof buf, "%zu", r.first_multiplicity_round);
    row.append(buf, static_cast<std::size_t>(len));
  }
  len = std::snprintf(buf, sizeof buf, ",%zu", r.phase_count);
  row.append(buf, static_cast<std::size_t>(len));
  return row;
}

}  // namespace gather::runner
