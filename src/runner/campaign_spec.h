// campaign_spec: the full description of one campaign (or one shard of one).
//
// This replaces the former flat `campaign_options` bag (docs/API.md,
// "Deprecations and removals"): what to run (grid + shard), how to run it
// (execution_options), how to survive interruption (checkpoint_options) and
// what to capture (sink_options) are separate structs, so call sites name
// only the knobs they set and the service layer can forward each group
// independently.
//
// Determinism contract (docs/RUNNER.md): for a fixed grid, the completed
// rows of a shard -- and every artifact derived from them (CSV, JSONL trace,
// merged metrics, columnar bytes) -- depend only on the shard's cell range,
// never on jobs, interruption points, resume boundaries or which process
// executed it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/metrics_registry.h"
#include "runner/campaign.h"
#include "runner/shard_plan.h"

namespace gather::runner {

/// Progress snapshot handed to the observer callback.
struct progress {
  std::size_t completed = 0;  ///< cells finished this invocation
  std::size_t total = 0;      ///< cells this invocation set out to run
  std::size_t failures = 0;   ///< runs that did not reach `gathered`
  double runs_per_sec = 0.0;
  double eta_seconds = 0.0;
};

/// How to execute: parallelism, progress reporting, and the two ways a run
/// can stop early (a cell budget and a cancellation poll).
struct execution_options {
  std::size_t jobs = 0;  ///< 0 = one per hardware thread; 1 = serial
  /// Invoked (serialized, from worker threads) every `progress_stride`
  /// completions and at the end.  Keep it cheap.
  std::function<void(const progress&)> on_progress;
  std::size_t progress_stride = 64;
  /// Stop after this many cells have been *executed* in this invocation
  /// (restored checkpoint cells do not count); 0 = no budget.  The service
  /// tests use this as a deterministic mid-shard kill switch.
  std::size_t max_cells = 0;
  /// Polled between cells; returning true stops the run early (already
  /// running cells complete).  The daemon wires its cancel command here.
  std::function<bool()> cancelled;
};

/// Crash-resilient progress persistence.  With a path set, completed cells
/// are appended to a checkpoint file every `stride` completions (and at the
/// end), and -- unless `resume` is off -- an existing checkpoint for the
/// same grid and range is restored instead of re-executing its cells.
struct checkpoint_options {
  std::string path;          ///< empty = no checkpointing
  std::size_t stride = 64;   ///< completions between checkpoint writes
  bool resume = true;        ///< restore a matching existing checkpoint
};

/// What to capture beyond the result rows.
struct sink_options {
  /// When set, receives one JSONL line per simulation event, all cells
  /// concatenated in cell-index order -- byte-identical for every jobs
  /// value.  Costs one in-memory buffer per cell while the campaign runs.
  std::string* trace_jsonl = nullptr;
  /// When set, receives every cell's metrics registry, merged in cell-index
  /// order after all cells complete.
  obs::metrics_registry* metrics = nullptr;
  /// Enable GATHER_PROF hot-path timing per cell; the timings land in
  /// `metrics` as prof.* counters/histograms (no-op when `metrics` is null).
  bool profile = false;
};

struct campaign_spec {
  runner::grid grid;
  shard_ref shard;  ///< which contiguous slice of the expansion to run
  execution_options exec;
  checkpoint_options checkpoint;
  sink_options sinks;
};

/// Outcome of one run_campaign invocation over a shard.
struct campaign_result {
  cell_range range;  ///< the cells this shard owns
  /// Completed rows in ascending cell-index order.  A full run has
  /// range.size() rows; an interrupted one (max_cells / cancellation) holds
  /// whichever cells finished before the stop -- not necessarily a prefix,
  /// which is why resume re-runs exactly the missing indices.
  std::vector<run_result> rows;
  std::size_t executed = 0;  ///< cells actually run this invocation
  std::size_t restored = 0;  ///< cells restored from the checkpoint

  [[nodiscard]] bool complete() const { return rows.size() == range.size(); }
};

/// Expand the grid, restore/execute the shard's cells, checkpoint along the
/// way.  Rows (and sink contents) cover completed cells in cell-index order.
/// Throws std::invalid_argument on a bad grid or shard and
/// std::runtime_error on a corrupt or mismatched checkpoint.
[[nodiscard]] campaign_result run_campaign(const campaign_spec& spec);

}  // namespace gather::runner
