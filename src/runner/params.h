// Shared parameter parsing and by-name component lookup for the sweep tools
// (gather_campaign, gather_fuzz) and the campaign layer.
//
// Every helper is strict: malformed input raises std::invalid_argument with
// a message naming the offending token, instead of silently dropping or
// truncating it.  The tools catch and report; the library layers validate a
// grid up front so no worker thread can fail half-way through a sweep on a
// typo.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "geometry/vec2.h"
#include "sim/movement.h"
#include "sim/rng.h"
#include "sim/scheduler.h"

namespace gather::runner {

/// Split a comma-separated list.  Throws std::invalid_argument on an empty
/// token (leading/trailing/double comma, or an empty input) and on a
/// duplicate token.
[[nodiscard]] std::vector<std::string> split_csv_strict(const std::string& s);

/// split_csv_strict + full-token unsigned parse ("8x" is an error).
[[nodiscard]] std::vector<std::size_t> parse_size_list(const std::string& s);

/// split_csv_strict + full-token double parse.
[[nodiscard]] std::vector<double> parse_double_list(const std::string& s);

/// The workload generator names the sweep tools accept (`all` expands to
/// this list).
[[nodiscard]] const std::vector<std::string>& workload_names();

/// Instantiate a named workload at size n, drawing from `random`.
/// Throws std::invalid_argument on an unknown name.
[[nodiscard]] std::vector<geom::vec2> build_workload(const std::string& name,
                                                     std::size_t n,
                                                     sim::rng& random);

/// Factory lookups over sim::all_schedulers() / sim::all_movements().
/// Throw std::invalid_argument on an unknown name.
[[nodiscard]] std::unique_ptr<sim::activation_scheduler> scheduler_by_name(
    const std::string& name);
[[nodiscard]] std::unique_ptr<sim::movement_adversary> movement_by_name(
    const std::string& name);

}  // namespace gather::runner
