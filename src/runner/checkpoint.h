// Campaign checkpoints: durable per-shard progress that survives a kill.
//
// A checkpoint is the set of completed cells of one shard, each with its
// full run_result and -- when the campaign captures sinks -- its JSONL trace
// buffer and serialized metrics registry.  On resume, run_campaign restores
// these cells verbatim and executes only the missing indices; because every
// cell is location-independent (runner/shard_plan.h), the resumed shard's
// artifacts are byte-identical to an uninterrupted run.
//
// Safety properties:
//   * a fingerprint of (grid, shard range, sink capture shape) is embedded;
//     a checkpoint from a different grid, range or capture configuration is
//     rejected (std::runtime_error), never silently mixed in;
//   * the file ends with an FNV-1a checksum; truncation or bit corruption is
//     rejected;
//   * writes go to `path + ".tmp"` then std::rename, so a kill during a
//     checkpoint write leaves the previous checkpoint intact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runner/campaign.h"
#include "runner/shard_plan.h"

namespace gather::runner {

/// One completed cell as persisted: the result row plus its captured sink
/// payloads (empty when the campaign ran without that sink).
struct checkpoint_cell {
  run_result result;
  std::string trace_jsonl;    ///< this cell's JSONL event lines
  std::string metrics_bytes;  ///< obs::encode_metrics of this cell's registry
};

/// The in-memory image of a checkpoint file.
struct checkpoint_state {
  std::uint64_t fingerprint = 0;  ///< campaign_fingerprint(...) at write time
  cell_range range;               ///< the shard's cell range
  bool has_trace = false;         ///< cells carry trace_jsonl payloads
  bool has_metrics = false;       ///< cells carry metrics_bytes payloads
  /// Completed cells in ascending result.spec.index order.
  std::vector<checkpoint_cell> cells;
};

/// Identity of a grid for checkpoint/merge validation: a hash over every
/// axis value, seed and simulation knob.  Two grids expand to the same cells
/// iff (modulo hash collisions) their fingerprints match.
[[nodiscard]] std::uint64_t grid_fingerprint(const grid& g);

/// Identity of one shard execution: the grid fingerprint extended with the
/// cell range and the sink-capture shape.
[[nodiscard]] std::uint64_t campaign_fingerprint(const grid& g,
                                                 cell_range range,
                                                 bool has_trace,
                                                 bool has_metrics);

/// Serialize / parse the checkpoint image.  decode_checkpoint throws
/// std::runtime_error on truncation, checksum mismatch, bad magic/version or
/// malformed records; it does NOT check the fingerprint (the caller compares
/// against the current campaign's and rejects on mismatch).
[[nodiscard]] std::string encode_checkpoint(const checkpoint_state& state);
[[nodiscard]] checkpoint_state decode_checkpoint(std::string_view bytes);

/// Atomically replace the checkpoint at `path` (write `path + ".tmp"`, then
/// rename).  Throws std::runtime_error on I/O failure.
void write_checkpoint_file(const std::string& path,
                           const checkpoint_state& state);

/// Load and parse a checkpoint file.  Returns false when `path` does not
/// exist; throws std::runtime_error on unreadable or invalid contents.
[[nodiscard]] bool read_checkpoint_file(const std::string& path,
                                        checkpoint_state& out);

}  // namespace gather::runner
