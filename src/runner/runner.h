// Umbrella header for the batch execution subsystem (system S8: the
// campaign runner -- see docs/RUNNER.md).
#pragma once

#include "runner/campaign.h"
#include "runner/campaign_spec.h"
#include "runner/checkpoint.h"
#include "runner/params.h"
#include "runner/result_columns.h"
#include "runner/shard_plan.h"
#include "runner/summary.h"
#include "runner/thread_pool.h"
