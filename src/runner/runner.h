// Umbrella header for the batch execution subsystem (system S8: the
// campaign runner -- see docs/RUNNER.md).
#pragma once

#include "runner/campaign.h"
#include "runner/campaign_spec.h"
#include "runner/checkpoint.h"
#include "runner/params.h"
#include "runner/result_columns.h"
#include "runner/shard_plan.h"
#include "runner/summary.h"
#include "util/thread_pool.h"

namespace gather::runner {

// The pool moved to src/util (header-only, layer rank 0) so the config
// layer's intra-round fills can shard across it too; the runner-facing name
// stays for the existing campaign/tool call sites.
using util::thread_pool;

}  // namespace gather::runner
