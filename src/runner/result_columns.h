// Columnar persistence and merging for campaign result rows.
//
// The binary columnar table (obs/columnar.h) is the campaign service's
// primary result sink; CSV is an export rendered from decoded rows via the
// library csv_row formatter, so "columnar -> CSV" and "direct CSV" emit the
// same bytes.  Table metadata carries the shard's cell range and the grid
// fingerprint (runner/checkpoint.h), which is what lets merge_result_tables
// refuse shards from different grids or with gaps/overlap between ranges.
#pragma once

#include <string>
#include <vector>

#include "obs/columnar.h"
#include "runner/campaign.h"
#include "runner/checkpoint.h"
#include "runner/shard_plan.h"

namespace gather::runner {

/// Encode completed rows as a columnar table.  `rows` must be in ascending
/// spec.index order within `range`; `fingerprint` is grid_fingerprint of the
/// grid they came from.  Metadata keys: "begin", "end", "fingerprint".
[[nodiscard]] obs::columnar_table encode_results(
    const std::vector<run_result>& rows, cell_range range,
    std::uint64_t fingerprint);

/// Inverse of encode_results (the rows; range/fingerprint stay in t.meta).
/// Throws std::runtime_error on a table with the wrong schema.
[[nodiscard]] std::vector<run_result> decode_results(
    const obs::columnar_table& t);

/// Merge per-shard tables into one: shards must share schema and
/// fingerprint and their ranges must be contiguous in the given order
/// (shard k's end == shard k+1's begin).  Throws std::runtime_error
/// otherwise.  The merged metadata covers the union range.
[[nodiscard]] obs::columnar_table merge_result_tables(
    const std::vector<obs::columnar_table>& shards);

/// Render rows as the campaign CSV (header + one line per row, trailing
/// newline), identical to what gather_campaign prints for the same rows.
[[nodiscard]] std::string results_csv(const std::vector<run_result>& rows);

/// One shard's merged metrics registry, tagged with the shard's identity so
/// a merge can validate provenance (the .mreg sink gather_campaignd writes).
struct shard_metrics {
  cell_range range;
  std::uint64_t fingerprint = 0;  ///< grid_fingerprint of the source grid
  obs::metrics_registry metrics;
};

/// Binary round-trip for shard_metrics (obs/binio.h framing + checksum).
/// decode throws std::runtime_error on truncation or corruption.
[[nodiscard]] std::string encode_shard_metrics(const shard_metrics& s);
[[nodiscard]] shard_metrics decode_shard_metrics(std::string_view bytes);

/// Fold shard registries in the given order: fingerprints must match and
/// ranges must be contiguous (throws std::runtime_error otherwise).  For
/// the simulation's integer-valued metrics this reproduces the
/// single-process fold byte for byte (docs/RUNNER.md, determinism
/// contract).
[[nodiscard]] shard_metrics merge_shard_metrics(
    const std::vector<shard_metrics>& shards);

}  // namespace gather::runner
