#include "runner/result_columns.h"

#include <stdexcept>

#include "obs/binio.h"
#include "obs/serialize.h"

namespace gather::runner {

namespace {

// Schema order mirrors the CSV column order (plus the identity fields CSV
// derives implicitly).  Bumping this layout requires bumping the columnar
// version story in docs/RUNNER.md.
constexpr const char* kU64Columns[] = {
    "index", "seed", "requested_n", "f", "repeat", "n",      "status",
    "rounds", "crashes", "wait_free_violations", "bivalent_entries",
    "first_mult_round", "phases",
};
constexpr const char* kStrColumns[] = {"workload", "scheduler", "movement"};
constexpr const char* kF64Columns[] = {"delta"};

obs::columnar_table make_schema() {
  obs::columnar_table t;
  for (const char* name : kU64Columns) {
    (void)t.add_column(name, obs::column_type::u64);
  }
  for (const char* name : kStrColumns) {
    (void)t.add_column(name, obs::column_type::str);
  }
  for (const char* name : kF64Columns) {
    (void)t.add_column(name, obs::column_type::f64);
  }
  return t;
}

std::vector<std::uint64_t>& u64_col(obs::columnar_table& t,
                                    const std::string& name) {
  return t.find(name)->u64s;
}

const obs::column& require(const obs::columnar_table& t,
                           const std::string& name, obs::column_type type) {
  const obs::column* c = t.find(name);
  if (c == nullptr || c->type != type) {
    throw std::runtime_error("columnar: missing result column '" + name + "'");
  }
  return *c;
}

}  // namespace

obs::columnar_table encode_results(const std::vector<run_result>& rows,
                                   cell_range range,
                                   std::uint64_t fingerprint) {
  obs::columnar_table t = make_schema();
  t.meta["begin"] = range.begin;
  t.meta["end"] = range.end;
  t.meta["fingerprint"] = fingerprint;
  for (const run_result& r : rows) {
    u64_col(t, "index").push_back(r.spec.index);
    u64_col(t, "seed").push_back(r.spec.seed);
    u64_col(t, "requested_n").push_back(r.spec.n);
    u64_col(t, "f").push_back(r.spec.f);
    u64_col(t, "repeat").push_back(static_cast<std::uint64_t>(r.spec.repeat));
    u64_col(t, "n").push_back(r.n);
    u64_col(t, "status").push_back(static_cast<std::uint64_t>(r.status));
    u64_col(t, "rounds").push_back(r.rounds);
    u64_col(t, "crashes").push_back(r.crashes);
    u64_col(t, "wait_free_violations").push_back(r.wait_free_violations);
    u64_col(t, "bivalent_entries").push_back(r.bivalent_entries);
    u64_col(t, "first_mult_round").push_back(r.first_multiplicity_round);
    u64_col(t, "phases").push_back(r.phase_count);
    t.find("workload")->strs.push_back(r.spec.workload);
    t.find("scheduler")->strs.push_back(r.spec.scheduler);
    t.find("movement")->strs.push_back(r.spec.movement);
    t.find("delta")->f64s.push_back(r.spec.delta);
  }
  (void)t.rows();  // sanity: all columns advanced in lockstep
  return t;
}

std::vector<run_result> decode_results(const obs::columnar_table& t) {
  const std::size_t n = t.rows();
  const obs::column& index = require(t, "index", obs::column_type::u64);
  const obs::column& seed = require(t, "seed", obs::column_type::u64);
  const obs::column& req_n = require(t, "requested_n", obs::column_type::u64);
  const obs::column& f = require(t, "f", obs::column_type::u64);
  const obs::column& repeat = require(t, "repeat", obs::column_type::u64);
  const obs::column& actual_n = require(t, "n", obs::column_type::u64);
  const obs::column& status = require(t, "status", obs::column_type::u64);
  const obs::column& rounds = require(t, "rounds", obs::column_type::u64);
  const obs::column& crashes = require(t, "crashes", obs::column_type::u64);
  const obs::column& wfv =
      require(t, "wait_free_violations", obs::column_type::u64);
  const obs::column& biv = require(t, "bivalent_entries", obs::column_type::u64);
  const obs::column& fmr = require(t, "first_mult_round", obs::column_type::u64);
  const obs::column& phases = require(t, "phases", obs::column_type::u64);
  const obs::column& workload = require(t, "workload", obs::column_type::str);
  const obs::column& scheduler = require(t, "scheduler", obs::column_type::str);
  const obs::column& movement = require(t, "movement", obs::column_type::str);
  const obs::column& delta = require(t, "delta", obs::column_type::f64);

  std::vector<run_result> rows;
  rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    run_result r;
    r.spec.index = static_cast<std::size_t>(index.u64s[i]);
    r.spec.seed = seed.u64s[i];
    r.spec.n = static_cast<std::size_t>(req_n.u64s[i]);
    r.spec.f = static_cast<std::size_t>(f.u64s[i]);
    r.spec.repeat = static_cast<int>(repeat.u64s[i]);
    r.spec.workload = workload.strs[i];
    r.spec.scheduler = scheduler.strs[i];
    r.spec.movement = movement.strs[i];
    r.spec.delta = delta.f64s[i];
    r.n = static_cast<std::size_t>(actual_n.u64s[i]);
    if (status.u64s[i] >
        static_cast<std::uint64_t>(sim::sim_status::started_bivalent)) {
      throw std::runtime_error("columnar: bad status value");
    }
    r.status = static_cast<sim::sim_status>(status.u64s[i]);
    r.rounds = static_cast<std::size_t>(rounds.u64s[i]);
    r.crashes = static_cast<std::size_t>(crashes.u64s[i]);
    r.wait_free_violations = static_cast<std::size_t>(wfv.u64s[i]);
    r.bivalent_entries = static_cast<std::size_t>(biv.u64s[i]);
    r.first_multiplicity_round = static_cast<std::size_t>(fmr.u64s[i]);
    r.phase_count = static_cast<std::size_t>(phases.u64s[i]);
    rows.push_back(std::move(r));
  }
  return rows;
}

obs::columnar_table merge_result_tables(
    const std::vector<obs::columnar_table>& shards) {
  if (shards.empty()) {
    throw std::runtime_error("columnar: nothing to merge");
  }
  obs::columnar_table merged = shards.front();
  for (std::size_t i = 1; i < shards.size(); ++i) {
    const obs::columnar_table& next = shards[i];
    const auto need = [](const obs::columnar_table& t, const char* key) {
      const auto it = t.meta.find(key);
      if (it == t.meta.end()) {
        throw std::runtime_error("columnar: shard lacks meta key '" +
                                 std::string(key) + "'");
      }
      return it->second;
    };
    if (need(next, "fingerprint") != need(merged, "fingerprint")) {
      throw std::runtime_error("columnar: shard fingerprints differ");
    }
    if (need(next, "begin") != need(merged, "end")) {
      throw std::runtime_error("columnar: shard ranges are not contiguous");
    }
    merged.append(next);
    merged.meta["end"] = need(next, "end");
  }
  return merged;
}

std::string results_csv(const std::vector<run_result>& rows) {
  std::string out = csv_header();
  out += '\n';
  for (const run_result& r : rows) {
    out += csv_row(r);
    out += '\n';
  }
  return out;
}

namespace {

// "GATHMRS1" as a little-endian u64 tag.
constexpr std::uint64_t kShardMetricsMagic = 0x3153524d48544147ULL;
constexpr std::uint32_t kShardMetricsVersion = 1;

}  // namespace

std::string encode_shard_metrics(const shard_metrics& s) {
  obs::byte_writer w;
  w.u64(kShardMetricsMagic);
  w.u32(kShardMetricsVersion);
  w.u64(s.fingerprint);
  w.u64(s.range.begin);
  w.u64(s.range.end);
  w.str(obs::encode_metrics(s.metrics));
  return w.finish();
}

shard_metrics decode_shard_metrics(std::string_view bytes) {
  obs::byte_reader r(bytes);
  r.verify_checksum();
  if (r.u64() != kShardMetricsMagic) {
    throw std::runtime_error("shard metrics: bad magic");
  }
  if (r.u32() != kShardMetricsVersion) {
    throw std::runtime_error("shard metrics: bad version");
  }
  shard_metrics s;
  s.fingerprint = r.u64();
  s.range.begin = static_cast<std::size_t>(r.u64());
  s.range.end = static_cast<std::size_t>(r.u64());
  if (s.range.begin > s.range.end) {
    throw std::runtime_error("shard metrics: inverted range");
  }
  s.metrics = obs::decode_metrics(r.str());
  r.expect_end();
  return s;
}

shard_metrics merge_shard_metrics(const std::vector<shard_metrics>& shards) {
  if (shards.empty()) {
    throw std::runtime_error("shard metrics: nothing to merge");
  }
  shard_metrics merged = shards.front();
  for (std::size_t i = 1; i < shards.size(); ++i) {
    const shard_metrics& next = shards[i];
    if (next.fingerprint != merged.fingerprint) {
      throw std::runtime_error("shard metrics: fingerprints differ");
    }
    if (next.range.begin != merged.range.end) {
      throw std::runtime_error("shard metrics: ranges are not contiguous");
    }
    merged.metrics.merge(next.metrics);
    merged.range.end = next.range.end;
  }
  return merged;
}

}  // namespace gather::runner
