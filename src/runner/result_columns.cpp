#include "runner/result_columns.h"

#include <stdexcept>

#include "obs/binio.h"
#include "obs/serialize.h"

namespace gather::runner {

namespace {

// Schema order mirrors the CSV column order (plus the identity fields CSV
// derives implicitly).  Bumping this layout requires bumping the columnar
// version story in docs/RUNNER.md.  add_column returns each column's index;
// the encoder fills through col(index), so no name lookup happens per row.
struct result_schema {
  obs::columnar_table table;
  std::size_t index, seed, requested_n, f, repeat, n, status, rounds, crashes,
      wait_free_violations, bivalent_entries, first_mult_round, phases;
  std::size_t workload, scheduler, movement;
  std::size_t delta;
};

result_schema make_schema() {
  result_schema s;
  obs::columnar_table& t = s.table;
  s.index = t.add_column("index", obs::column_type::u64);
  s.seed = t.add_column("seed", obs::column_type::u64);
  s.requested_n = t.add_column("requested_n", obs::column_type::u64);
  s.f = t.add_column("f", obs::column_type::u64);
  s.repeat = t.add_column("repeat", obs::column_type::u64);
  s.n = t.add_column("n", obs::column_type::u64);
  s.status = t.add_column("status", obs::column_type::u64);
  s.rounds = t.add_column("rounds", obs::column_type::u64);
  s.crashes = t.add_column("crashes", obs::column_type::u64);
  s.wait_free_violations =
      t.add_column("wait_free_violations", obs::column_type::u64);
  s.bivalent_entries = t.add_column("bivalent_entries", obs::column_type::u64);
  s.first_mult_round = t.add_column("first_mult_round", obs::column_type::u64);
  s.phases = t.add_column("phases", obs::column_type::u64);
  s.workload = t.add_column("workload", obs::column_type::str);
  s.scheduler = t.add_column("scheduler", obs::column_type::str);
  s.movement = t.add_column("movement", obs::column_type::str);
  s.delta = t.add_column("delta", obs::column_type::f64);
  return s;
}

const obs::column& require(const obs::columnar_table& t,
                           const std::string& name, obs::column_type type) {
  const obs::column* c = t.find(name);
  if (c == nullptr || c->type != type) {
    throw std::runtime_error("columnar: missing result column '" + name + "'");
  }
  return *c;
}

}  // namespace

obs::columnar_table encode_results(const std::vector<run_result>& rows,
                                   cell_range range,
                                   std::uint64_t fingerprint) {
  result_schema s = make_schema();
  obs::columnar_table& t = s.table;
  t.meta["begin"] = range.begin;
  t.meta["end"] = range.end;
  t.meta["fingerprint"] = fingerprint;
  for (const run_result& r : rows) {
    t.col(s.index).u64s.push_back(r.spec.index);
    t.col(s.seed).u64s.push_back(r.spec.seed);
    t.col(s.requested_n).u64s.push_back(r.spec.n);
    t.col(s.f).u64s.push_back(r.spec.f);
    t.col(s.repeat).u64s.push_back(static_cast<std::uint64_t>(r.spec.repeat));
    t.col(s.n).u64s.push_back(r.n);
    t.col(s.status).u64s.push_back(static_cast<std::uint64_t>(r.status));
    t.col(s.rounds).u64s.push_back(r.rounds);
    t.col(s.crashes).u64s.push_back(r.crashes);
    t.col(s.wait_free_violations).u64s.push_back(r.wait_free_violations);
    t.col(s.bivalent_entries).u64s.push_back(r.bivalent_entries);
    t.col(s.first_mult_round).u64s.push_back(r.first_multiplicity_round);
    t.col(s.phases).u64s.push_back(r.phase_count);
    t.col(s.workload).strs.push_back(r.spec.workload);
    t.col(s.scheduler).strs.push_back(r.spec.scheduler);
    t.col(s.movement).strs.push_back(r.spec.movement);
    t.col(s.delta).f64s.push_back(r.spec.delta);
  }
  (void)t.rows();  // sanity: all columns advanced in lockstep
  return std::move(s.table);
}

std::vector<run_result> decode_results(const obs::columnar_table& t) {
  const std::size_t n = t.rows();
  const obs::column& index = require(t, "index", obs::column_type::u64);
  const obs::column& seed = require(t, "seed", obs::column_type::u64);
  const obs::column& req_n = require(t, "requested_n", obs::column_type::u64);
  const obs::column& f = require(t, "f", obs::column_type::u64);
  const obs::column& repeat = require(t, "repeat", obs::column_type::u64);
  const obs::column& actual_n = require(t, "n", obs::column_type::u64);
  const obs::column& status = require(t, "status", obs::column_type::u64);
  const obs::column& rounds = require(t, "rounds", obs::column_type::u64);
  const obs::column& crashes = require(t, "crashes", obs::column_type::u64);
  const obs::column& wfv =
      require(t, "wait_free_violations", obs::column_type::u64);
  const obs::column& biv = require(t, "bivalent_entries", obs::column_type::u64);
  const obs::column& fmr = require(t, "first_mult_round", obs::column_type::u64);
  const obs::column& phases = require(t, "phases", obs::column_type::u64);
  const obs::column& workload = require(t, "workload", obs::column_type::str);
  const obs::column& scheduler = require(t, "scheduler", obs::column_type::str);
  const obs::column& movement = require(t, "movement", obs::column_type::str);
  const obs::column& delta = require(t, "delta", obs::column_type::f64);

  std::vector<run_result> rows;
  rows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    run_result r;
    r.spec.index = static_cast<std::size_t>(index.u64s[i]);
    r.spec.seed = seed.u64s[i];
    r.spec.n = static_cast<std::size_t>(req_n.u64s[i]);
    r.spec.f = static_cast<std::size_t>(f.u64s[i]);
    r.spec.repeat = static_cast<int>(repeat.u64s[i]);
    r.spec.workload = workload.strs[i];
    r.spec.scheduler = scheduler.strs[i];
    r.spec.movement = movement.strs[i];
    r.spec.delta = delta.f64s[i];
    r.n = static_cast<std::size_t>(actual_n.u64s[i]);
    if (status.u64s[i] >
        static_cast<std::uint64_t>(sim::sim_status::started_bivalent)) {
      throw std::runtime_error("columnar: bad status value");
    }
    r.status = static_cast<sim::sim_status>(status.u64s[i]);
    r.rounds = static_cast<std::size_t>(rounds.u64s[i]);
    r.crashes = static_cast<std::size_t>(crashes.u64s[i]);
    r.wait_free_violations = static_cast<std::size_t>(wfv.u64s[i]);
    r.bivalent_entries = static_cast<std::size_t>(biv.u64s[i]);
    r.first_multiplicity_round = static_cast<std::size_t>(fmr.u64s[i]);
    r.phase_count = static_cast<std::size_t>(phases.u64s[i]);
    rows.push_back(std::move(r));
  }
  return rows;
}

obs::columnar_table merge_result_tables(
    const std::vector<obs::columnar_table>& shards) {
  if (shards.empty()) {
    throw std::runtime_error("columnar: nothing to merge");
  }
  obs::columnar_table merged = shards.front();
  for (std::size_t i = 1; i < shards.size(); ++i) {
    const obs::columnar_table& next = shards[i];
    const auto need = [](const obs::columnar_table& t, const char* key) {
      const auto it = t.meta.find(key);
      if (it == t.meta.end()) {
        throw std::runtime_error("columnar: shard lacks meta key '" +
                                 std::string(key) + "'");
      }
      return it->second;
    };
    if (need(next, "fingerprint") != need(merged, "fingerprint")) {
      throw std::runtime_error("columnar: shard fingerprints differ");
    }
    if (need(next, "begin") != need(merged, "end")) {
      throw std::runtime_error("columnar: shard ranges are not contiguous");
    }
    merged.append(next);
    merged.meta["end"] = need(next, "end");
  }
  return merged;
}

std::string results_csv(const std::vector<run_result>& rows) {
  std::string out = csv_header();
  out += '\n';
  for (const run_result& r : rows) {
    out += csv_row(r);
    out += '\n';
  }
  return out;
}

namespace {

// "GATHMRS1" as a little-endian u64 tag.
constexpr std::uint64_t kShardMetricsMagic = 0x3153524d48544147ULL;
constexpr std::uint32_t kShardMetricsVersion = 1;

}  // namespace

std::string encode_shard_metrics(const shard_metrics& s) {
  obs::byte_writer w;
  w.u64(kShardMetricsMagic);
  w.u32(kShardMetricsVersion);
  w.u64(s.fingerprint);
  w.u64(s.range.begin);
  w.u64(s.range.end);
  w.str(obs::encode_metrics(s.metrics));
  return w.finish();
}

shard_metrics decode_shard_metrics(std::string_view bytes) {
  obs::byte_reader r(bytes);
  r.verify_checksum();
  if (r.u64() != kShardMetricsMagic) {
    throw std::runtime_error("shard metrics: bad magic");
  }
  if (r.u32() != kShardMetricsVersion) {
    throw std::runtime_error("shard metrics: bad version");
  }
  shard_metrics s;
  s.fingerprint = r.u64();
  s.range.begin = static_cast<std::size_t>(r.u64());
  s.range.end = static_cast<std::size_t>(r.u64());
  if (s.range.begin > s.range.end) {
    throw std::runtime_error("shard metrics: inverted range");
  }
  s.metrics = obs::decode_metrics(r.str());
  r.expect_end();
  return s;
}

shard_metrics merge_shard_metrics(const std::vector<shard_metrics>& shards) {
  if (shards.empty()) {
    throw std::runtime_error("shard metrics: nothing to merge");
  }
  shard_metrics merged = shards.front();
  for (std::size_t i = 1; i < shards.size(); ++i) {
    const shard_metrics& next = shards[i];
    if (next.fingerprint != merged.fingerprint) {
      throw std::runtime_error("shard metrics: fingerprints differ");
    }
    if (next.range.begin != merged.range.end) {
      throw std::runtime_error("shard metrics: ranges are not contiguous");
    }
    merged.metrics.merge(next.metrics);
    merged.range.end = next.range.end;
  }
  return merged;
}

}  // namespace gather::runner
