#include "runner/summary.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "obs/quantile.h"

namespace gather::runner {

std::size_t round_quantile(std::vector<std::size_t> values, double q) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  // Shared nearest-rank definition (obs/quantile.h): summaries and the obs
  // histogram quantiles agree by construction.
  const auto rank =
      static_cast<std::size_t>(obs::nearest_rank(values.size(), q));
  return values[rank - 1];
}

namespace {

struct cell_accum {
  cell_summary summary;
  std::vector<std::size_t> gathered_rounds;
};

std::string cell_key(const run_spec& s) {
  char buf[256];
  std::snprintf(buf, sizeof buf, "%s|%zu|%zu|%s|%s|%.17g", s.workload.c_str(),
                s.n, s.f, s.scheduler.c_str(), s.movement.c_str(), s.delta);
  return buf;
}

}  // namespace

std::vector<cell_summary> summarize(const std::vector<run_result>& results) {
  std::vector<cell_accum> cells;
  std::map<std::string, std::size_t> index_of;
  for (const auto& r : results) {
    const std::string key = cell_key(r.spec);
    auto [it, inserted] = index_of.emplace(key, cells.size());
    if (inserted) {
      cells.emplace_back();
      auto& s = cells.back().summary;
      s.workload = r.spec.workload;
      s.n = r.n;
      s.f = r.spec.f;
      s.scheduler = r.spec.scheduler;
      s.movement = r.spec.movement;
      s.delta = r.spec.delta;
    }
    auto& cell = cells[it->second];
    auto& s = cell.summary;
    ++s.runs;
    s.wait_free_violations += r.wait_free_violations;
    s.bivalent_entries += r.bivalent_entries;
    s.crashes += r.crashes;
    if (r.status == sim::sim_status::gathered) {
      ++s.gathered;
      cell.gathered_rounds.push_back(r.rounds);
    } else if (r.status == sim::sim_status::stalled ||
               r.status == sim::sim_status::round_limit) {
      ++s.stalled;
    }
  }

  std::vector<cell_summary> out;
  out.reserve(cells.size());
  for (auto& cell : cells) {
    auto& s = cell.summary;
    s.median_rounds = round_quantile(cell.gathered_rounds, 0.5);
    s.p90_rounds = round_quantile(cell.gathered_rounds, 0.9);
    s.max_rounds = cell.gathered_rounds.empty()
                       ? 0
                       : *std::max_element(cell.gathered_rounds.begin(),
                                           cell.gathered_rounds.end());
    out.push_back(std::move(s));
  }
  return out;
}

campaign_totals overall(const std::vector<run_result>& results) {
  campaign_totals t;
  for (const auto& r : results) {
    ++t.runs;
    if (r.status == sim::sim_status::gathered) {
      ++t.gathered;
    } else {
      ++t.failures;
    }
    t.wait_free_violations += r.wait_free_violations;
    t.bivalent_entries += r.bivalent_entries;
  }
  return t;
}

std::string summary_csv_header() {
  return "workload,n,f,scheduler,movement,delta,runs,success_rate,"
         "median_rounds,p90_rounds,max_rounds,wait_free_violations,"
         "bivalent_entries,crashes";
}

std::string summary_csv_row(const cell_summary& c) {
  char buf[512];
  const int len = std::snprintf(
      buf, sizeof buf, "%s,%zu,%zu,%s,%s,%g,%zu,%.4f,%zu,%zu,%zu,%zu,%zu,%zu",
      c.workload.c_str(), c.n, c.f, c.scheduler.c_str(), c.movement.c_str(),
      c.delta, c.runs, c.success_rate(), c.median_rounds, c.p90_rounds,
      c.max_rounds, c.wait_free_violations, c.bivalent_entries, c.crashes);
  return std::string(buf, static_cast<std::size_t>(len));
}

}  // namespace gather::runner
