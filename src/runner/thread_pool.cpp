#include "runner/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace gather::runner {

std::size_t thread_pool::default_jobs() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

thread_pool::thread_pool(std::size_t jobs) {
  const std::size_t n = jobs == 0 ? default_jobs() : jobs;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

thread_pool::~thread_pool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> thread_pool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void thread_pool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions are captured into the task's future
  }
}

void thread_pool::parallel_for(std::size_t count,
                               const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;

  std::atomic<std::size_t> next{0};
  std::atomic<bool> abort{false};
  std::exception_ptr first_error;  // gather-lint: guarded_by(error_mutex)
  std::mutex error_mutex;

  auto drain = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count || abort.load(std::memory_order_relaxed)) return;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        abort.store(true, std::memory_order_relaxed);
      }
    }
  };

  const std::size_t lanes = std::min(size(), count);
  std::vector<std::future<void>> done;
  done.reserve(lanes);
  for (std::size_t l = 0; l < lanes; ++l) done.push_back(submit(drain));
  for (auto& fut : done) fut.get();
  // The futures are joined, but take the (uncontended) lock anyway: the
  // read is then unconditionally ordered after every writer's release.
  std::lock_guard<std::mutex> lock(error_mutex);
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace gather::runner
