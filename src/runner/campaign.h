// Batch campaign execution: expand a parameter grid into independent run
// specs, execute them across a thread pool, merge results in submission
// order.
//
// Determinism contract (see docs/RUNNER.md):
//
//   * expand() assigns every cell a stable index (its position in the
//     canonical loop nest workloads > n > f > schedulers > movements >
//     deltas > repeats, skipping f >= n) and a seed derived purely from
//     (base_seed, index) via splitmix64 -- no shared-state RNG draws.
//   * execute_cell() is a pure function of (spec, grid): it builds its own
//     workload, scheduler, movement adversary and crash policy from the
//     spec's seed.
//   * run_campaign() (runner/campaign_spec.h) writes results by index, so
//     the result rows -- and any CSV rendered from them -- are
//     byte-identical for every jobs value, including jobs == 1 (strictly
//     serial execution).  The same holds for the optional JSONL event trace
//     (per-cell buffers concatenated in index order) and the merged metrics
//     registry (per-cell registries folded in index order), and extends
//     across shard and resume boundaries (runner/shard_plan.h,
//     runner/checkpoint.h).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/events.h"
#include "obs/metrics_registry.h"
#include "obs/profile.h"
#include "sim/engine.h"

namespace gather::runner {

/// SplitMix64 finalizer -- the standard 64-bit bijective mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Per-run seed: a pure hash of (base_seed, cell index).  Streams for
/// distinct indices are statistically independent, unlike the arithmetic
/// progressions (base + k*i) that seed correlated mt19937_64 states.
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t base_seed,
                                                  std::uint64_t index) {
  return splitmix64(splitmix64(base_seed) ^ splitmix64(index));
}

/// One fully-specified simulation cell.
struct run_spec {
  std::string workload;
  std::size_t n = 0;  ///< requested size (generators may adjust, see result)
  std::size_t f = 0;
  std::string scheduler;
  std::string movement;
  double delta = 0.05;
  int repeat = 0;            ///< repeat number within the cell, [0, repeats)
  std::size_t index = 0;     ///< position in the expanded grid
  std::uint64_t seed = 0;    ///< derive_seed(base_seed, index)
};

/// The parameter grid a campaign sweeps.
struct grid {
  std::vector<std::string> workloads = {"uniform"};
  std::vector<std::size_t> ns = {8};
  std::vector<std::size_t> fs = {0};
  std::vector<std::string> schedulers = {"fair-random"};
  std::vector<std::string> movements = {"random-stop"};
  std::vector<double> deltas = {0.05};
  int repeats = 3;
  std::uint64_t base_seed = 1;
  // Simulation knobs shared by every cell.
  std::size_t max_rounds = 50'000;
  std::size_t crash_horizon = 40;
  bool check_wait_freeness = true;
};

/// Validate the grid and expand it into run specs in canonical order.
/// Throws std::invalid_argument on unknown names, empty axes or repeats < 1.
[[nodiscard]] std::vector<run_spec> expand(const grid& g);

/// Outcome of one executed cell (trace-derived analytics included; the
/// trace itself is dropped so campaigns stay O(cells) in memory).
struct run_result {
  run_spec spec;
  std::size_t n = 0;  ///< actual instance size (pts.size())
  sim::sim_status status = sim::sim_status::round_limit;
  std::size_t rounds = 0;
  std::size_t crashes = 0;
  std::size_t wait_free_violations = 0;
  std::size_t bivalent_entries = 0;
  std::size_t first_multiplicity_round = static_cast<std::size_t>(-1);
  std::size_t phase_count = 0;
};

/// Per-cell observability attachments for execute_cell.  The sink receives
/// the cell's event stream (events are stamped with the cell index as run
/// id); the registry receives the cell's merged counters; the prof registry
/// enables GATHER_PROF hot-path timers for the cell's duration.
struct cell_observer {
  obs::event_sink* sink = nullptr;
  obs::metrics_registry* metrics = nullptr;
  obs::prof_registry* profile = nullptr;
};

/// Execute one cell: pure function of (spec, grid); `watch` only observes.
/// Campaign-level execution lives in runner/campaign_spec.h
/// (`run_campaign(const campaign_spec&)`).
[[nodiscard]] run_result execute_cell(const run_spec& spec, const grid& g,
                                      const cell_observer& watch = {});

/// The CSV header / row format emitted by gather_campaign (kept in the
/// library so tests can pin the byte format).
[[nodiscard]] std::string csv_header();
[[nodiscard]] std::string csv_row(const run_result& r);

}  // namespace gather::runner
