// Machine-readable run reports: a small, dependency-free JSON writer for
// simulation results and trace analytics, used by gather_cli --output json
// and by downstream tooling (plotting notebooks, dashboards).
#pragma once

#include <iosfwd>

#include "sim/analysis.h"
#include "sim/engine.h"

namespace gather::sim {

/// Serialize a run summary (status, rounds, crashes, gather point, checks,
/// class-phase decomposition and the potential report) as a single JSON
/// object.  When the result carries a trace, per-round metrics are included
/// under "rounds".
void write_json_report(std::ostream& os, const sim_result& result);

/// JSON-escape a string (quotes, backslashes, control characters).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace gather::sim
