// Extended adversaries beyond the paper's crash model: transient faults and
// byzantine robots.
//
// * Transient faults (perturbations): the paper notes (Sec. I) that oblivious
//   algorithms tolerate transient state corruption for free -- a robot's only
//   state is its position, so a transient fault is an arbitrary relocation,
//   after which the algorithm simply proceeds from the new configuration.
//   `perturbation_policy` injects such relocations; tests use it to validate
//   the self-stabilization claim (gathering still succeeds after the last
//   fault, unless the adversary lands the swarm exactly in the bivalent
//   configuration).
//
// * Byzantine robots: [Agmon-Peleg], cited in Sec. I, prove that a single
//   byzantine robot makes gathering impossible for n = 3.  `byzantine_policy`
//   lets designated robots pick adversarial destinations each round; the
//   model-limits experiment uses it to reproduce that boundary empirically.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "config/configuration.h"
#include "geometry/vec2.h"
#include "sim/rng.h"

namespace gather::sim {

/// Relocations to apply at the start of a round: (robot index, new position).
class perturbation_policy {
 public:
  virtual ~perturbation_policy() = default;
  [[nodiscard]] virtual std::vector<std::pair<std::size_t, geom::vec2>> perturb(
      std::size_t round, const std::vector<geom::vec2>& positions,
      const std::vector<std::uint8_t>& live, rng& random) = 0;
};

/// Teleports every live robot to a uniform position in a centered box at each
/// of the given rounds (a full transient corruption of the swarm state).
[[nodiscard]] std::unique_ptr<perturbation_policy> make_scatter_at(
    std::vector<std::size_t> rounds, double box = 10.0);

/// Relocates one random live robot by up to `magnitude` at each given round.
[[nodiscard]] std::unique_ptr<perturbation_policy> make_nudge_at(
    std::vector<std::size_t> rounds, double magnitude);

/// Adversarial control of designated byzantine robots.  Byzantine robots are
/// visible and "live" but ignore the algorithm.
class byzantine_policy {
 public:
  virtual ~byzantine_policy() = default;
  [[nodiscard]] virtual bool is_byzantine(std::size_t robot) const = 0;
  [[nodiscard]] virtual geom::vec2 destination(std::size_t robot,
                                               const config::configuration& c,
                                               geom::vec2 self, rng& random) = 0;
};

/// The designated robots always run away: each round they move a fixed
/// fraction of the swarm diameter directly away from the centroid of the
/// other robots, perpetually re-shaping the configuration.
[[nodiscard]] std::unique_ptr<byzantine_policy> make_runaway_byzantine(
    std::vector<std::size_t> robots, double step_fraction = 0.5);

/// The designated robots mirror the configuration's current stationary point:
/// they jump to positions that keep two "leaders" alive, preventing the
/// correct robots from converging on one (the Agmon-Peleg style attack).
[[nodiscard]] std::unique_ptr<byzantine_policy> make_splitter_byzantine(
    std::vector<std::size_t> robots);

}  // namespace gather::sim
