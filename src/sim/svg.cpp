#include "sim/svg.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <string>
#include <vector>

namespace gather::sim {

namespace {

/// Categorical palette (colorblind-safe Okabe-Ito), cycled per robot.
const char* kPalette[] = {"#0072B2", "#E69F00", "#009E73", "#CC79A7",
                          "#56B4E9", "#D55E00", "#F0E442", "#999999"};

struct mapper {
  double lo_x, lo_y, scale, height, margin;

  double x(double wx) const { return margin + (wx - lo_x) * scale; }
  double y(double wy) const { return height - margin - (wy - lo_y) * scale; }
};

}  // namespace

void write_svg(std::ostream& os, const sim_result& result,
               const svg_options& opts) {
  // Collect every drawn point to size the viewport.
  std::vector<geom::vec2> all;
  for (const round_record& rec : result.trace) {
    all.insert(all.end(), rec.positions.begin(), rec.positions.end());
  }
  all.insert(all.end(), result.final_positions.begin(),
             result.final_positions.end());
  if (all.empty()) {
    os << "<svg xmlns='http://www.w3.org/2000/svg'/>\n";
    return;
  }
  double lo_x = all[0].x, hi_x = all[0].x, lo_y = all[0].y, hi_y = all[0].y;
  for (const geom::vec2& p : all) {
    lo_x = std::min(lo_x, p.x); hi_x = std::max(hi_x, p.x);
    lo_y = std::min(lo_y, p.y); hi_y = std::max(hi_y, p.y);
  }
  const double span = std::max({hi_x - lo_x, hi_y - lo_y, 1e-9});
  const mapper m{lo_x, lo_y,
                 (std::min(opts.width, opts.height) - 2.0 * opts.margin) / span,
                 static_cast<double>(opts.height), opts.margin};

  os << "<svg xmlns='http://www.w3.org/2000/svg' width='" << opts.width
     << "' height='" << opts.height << "' viewBox='0 0 " << opts.width << " "
     << opts.height << "'>\n";
  os << "  <rect width='100%' height='100%' fill='white'/>\n";

  if (opts.draw_grid) {
    const double step = std::pow(10.0, std::floor(std::log10(span / 2.0)));
    os << "  <g stroke='#eeeeee' stroke-width='1'>\n";
    for (double gx = std::ceil(lo_x / step) * step; gx <= hi_x; gx += step) {
      os << "    <line x1='" << m.x(gx) << "' y1='" << m.y(lo_y) << "' x2='"
         << m.x(gx) << "' y2='" << m.y(hi_y) << "'/>\n";
    }
    for (double gy = std::ceil(lo_y / step) * step; gy <= hi_y; gy += step) {
      os << "    <line x1='" << m.x(lo_x) << "' y1='" << m.y(gy) << "' x2='"
         << m.x(hi_x) << "' y2='" << m.y(gy) << "'/>\n";
    }
    os << "  </g>\n";
  }

  const std::size_t n = result.final_positions.size();
  // Trajectories.
  for (std::size_t i = 0; i < n; ++i) {
    const char* color = kPalette[i % (sizeof kPalette / sizeof *kPalette)];
    if (!result.trace.empty()) {
      os << "  <polyline fill='none' stroke='" << color
         << "' stroke-width='1.5' stroke-opacity='0.7' points='";
      for (const round_record& rec : result.trace) {
        os << m.x(rec.positions[i].x) << "," << m.y(rec.positions[i].y) << " ";
      }
      os << m.x(result.final_positions[i].x) << ","
         << m.y(result.final_positions[i].y);
      os << "'/>\n";
      // Start marker (square).
      const geom::vec2 s = result.trace.front().positions[i];
      os << "  <rect x='" << m.x(s.x) - 3 << "' y='" << m.y(s.y) - 3
         << "' width='6' height='6' fill='" << color << "'/>\n";
      if (opts.label_robots) {
        os << "  <text x='" << m.x(s.x) + 5 << "' y='" << m.y(s.y) - 5
           << "' font-size='10' fill='" << color << "'>" << i << "</text>\n";
      }
    }
    // Final marker: circle for live, X for crashed.
    const geom::vec2 f = result.final_positions[i];
    const bool live = i < result.final_live.size() && result.final_live[i];
    if (live) {
      os << "  <circle cx='" << m.x(f.x) << "' cy='" << m.y(f.y)
         << "' r='4' fill='" << color << "'/>\n";
    } else {
      const double cx = m.x(f.x), cy = m.y(f.y);
      os << "  <g stroke='" << color << "' stroke-width='2'>"
         << "<line x1='" << cx - 4 << "' y1='" << cy - 4 << "' x2='" << cx + 4
         << "' y2='" << cy + 4 << "'/>"
         << "<line x1='" << cx - 4 << "' y1='" << cy + 4 << "' x2='" << cx + 4
         << "' y2='" << cy - 4 << "'/></g>\n";
    }
  }

  if (result.status == sim_status::gathered) {
    os << "  <circle cx='" << m.x(result.gather_point.x) << "' cy='"
       << m.y(result.gather_point.y)
       << "' r='8' fill='none' stroke='black' stroke-width='1.5' "
          "stroke-dasharray='3,2'/>\n";
  }
  os << "</svg>\n";
}

}  // namespace gather::sim
