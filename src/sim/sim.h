// Umbrella header for the ATOM simulator (system S4 in DESIGN.md).
#pragma once

#include "sim/adversary_ext.h"
#include "sim/analysis.h"
#include "sim/async_engine.h"
#include "sim/crash.h"
#include "sim/engine.h"
#include "sim/json_report.h"
#include "sim/frame.h"
#include "sim/metrics.h"
#include "sim/movement.h"
#include "sim/replay.h"
#include "sim/rng.h"
#include "sim/scheduler.h"
#include "sim/spec.h"
#include "sim/svg.h"
#include "sim/trace.h"
