// Post-run trace analytics: per-round metrics, class-phase decomposition and
// the potential functions the correctness proofs track (maximum multiplicity,
// sum of distances to the target, live spread).
#pragma once

#include <cstdint>
#include <vector>

#include "config/classify.h"
#include "sim/engine.h"
#include "sim/metrics.h"

namespace gather::sim {

/// Metrics of one recorded round.  The former standalone struct merged into
/// sim::metrics' round_stats (one struct, one computing call site:
/// compute_round_stats); this alias keeps the analysis-side name.
using round_metrics = round_stats;

/// Per-round metrics for a trace-recording run.
[[nodiscard]] std::vector<round_metrics> analyze_trace(const sim_result& result);

/// A maximal run of consecutive rounds in one configuration class.
struct class_phase {
  config_class cls = config_class::asymmetric;
  std::size_t first_round = 0;
  std::size_t rounds = 0;
};

/// Run-length decomposition of the class history.
[[nodiscard]] std::vector<class_phase> class_phases(
    const std::vector<config_class>& history);

/// The proof-level potential checks, evaluated over a recorded trace.
struct potential_report {
  /// Lemma 5.3 C1: within M phases, the multiplicity of the elected point
  /// never decreases.
  bool max_multiplicity_monotone = true;
  /// Straight-line moves towards in-hull targets plus distance-preserving
  /// side-steps: the live spread never exceeds twice its initial value.
  bool spread_bounded = true;
  /// First round at which two or more live robots shared a location
  /// (size_t(-1) if never).
  std::size_t first_multiplicity_round = static_cast<std::size_t>(-1);
  /// Number of distinct class phases traversed.
  std::size_t phase_count = 0;
};

[[nodiscard]] potential_report check_potentials(const sim_result& result);

}  // namespace gather::sim
