// The ATOM (semi-synchronous) execution engine (paper, Sec. II).
//
// Time is a sequence of rounds.  Each round: (1) the crash policy may crash
// robots, (2) the scheduler activates a subset of the live robots, (3) every
// activated robot performs one atomic Look-Compute-Move cycle against the
// round-start configuration, (4) the movement adversary truncates each move,
// subject to the delta guarantee.  The run ends when the GATHERED predicate
// of Def. 9 holds (all live robots co-located and instructed to stay), or at
// the round limit.
//
// The engine can optionally verify online that the algorithm is wait-free
// (Lemma 5.1) and that the bivalent configuration is never entered from a
// non-bivalent start, and it records the class history for transition
// analyses (Lemmas 5.3-5.9).
//
// Observability: the engine counts per-round facts into an
// obs::metrics_registry and, when an obs::event_sink is attached, narrates
// the run as a structured event stream (see docs/OBSERVABILITY.md).  The
// entry point is the sim_spec aggregate + run() free function in sim/spec.h.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <utility>
#include <vector>

#include "config/classify.h"
#include "core/algorithm.h"
#include "sim/crash.h"
#include "sim/movement.h"
#include "sim/scheduler.h"
#include "util/enum_name.h"

namespace gather::obs {
class event_sink;
class metrics_registry;
class prof_registry;
}  // namespace gather::obs

namespace gather::sim {

using config::config_class;
using config::configuration;
using core::gathering_algorithm;
using geom::vec2;

struct sim_spec;  // sim/spec.h

struct sim_options {
  /// The model's delta, as a fraction of the *initial* configuration
  /// diameter (the guarantee is an absolute distance; expressing it
  /// relative to the instance makes sweeps comparable across scales).
  double delta_fraction = 0.05;
  std::size_t max_rounds = 50'000;
  std::uint64_t seed = 1;
  /// Run every COMPUTE in a random per-robot similarity frame.
  bool local_frames = false;
  /// Verify Lemma 5.1 (at most one stationary location) every round.
  bool check_wait_freeness = false;
  /// Force-activate any live robot that has not moved for this many rounds
  /// (bounded-fairness backstop making every scheduler admissible).
  std::size_t fairness_bound = 64;
  /// Keep a full positions trace (memory-heavy; for examples/debugging).
  bool record_trace = false;
};

enum class sim_status {
  gathered,        ///< GATHERED(R, t) became true
  round_limit,     ///< max_rounds elapsed without gathering
  stalled,         ///< fixpoint: every robot instructed to stay, not gathered
  all_crashed,     ///< every robot crashed (f = n; outside the model)
  started_bivalent ///< the initial configuration was bivalent (Lemma 5.2)
};

}  // namespace gather::sim

namespace gather {
template <>
struct enum_descriptor<sim::sim_status> {
  static constexpr std::array<std::pair<sim::sim_status, std::string_view>, 5>
      entries{{{sim::sim_status::gathered, "gathered"},
               {sim::sim_status::round_limit, "round-limit"},
               {sim::sim_status::stalled, "stalled"},
               {sim::sim_status::all_crashed, "all-crashed"},
               {sim::sim_status::started_bivalent, "started-bivalent"}}};
};
}  // namespace gather

namespace gather::sim {

[[nodiscard]] constexpr std::string_view to_string(sim_status s) {
  return enum_name(s);
}
std::ostream& operator<<(std::ostream& os, sim_status s);

struct round_record {
  std::size_t round = 0;
  std::vector<vec2> positions;           // at round start
  std::vector<std::uint8_t> active;      // activation mask
  std::vector<std::uint8_t> live;        // liveness mask
  config_class cls = config_class::asymmetric;
};

struct sim_result {
  sim_status status = sim_status::round_limit;
  std::size_t rounds = 0;                ///< rounds executed
  vec2 gather_point{};                   ///< valid when status == gathered
  std::vector<vec2> final_positions;
  std::vector<std::uint8_t> final_live;
  std::size_t crashes = 0;               ///< faults actually injected
  std::size_t wait_free_violations = 0;  ///< Lemma 5.1 breaches observed
  std::size_t bivalent_entries = 0;      ///< rounds spent in B after a non-B start
  /// The absolute movement guarantee the run used:
  /// delta_fraction * initial diameter (floored away from zero).  Callers
  /// interpreting truncation events need this scale; re-deriving it would
  /// require the initial diameter.
  double delta_abs = 0.0;
  std::vector<config_class> class_history;  ///< class at each round start
  std::vector<round_record> trace;          ///< when record_trace
};

class perturbation_policy;
class byzantine_policy;

class engine {
 public:
  /// Primary constructor: one aggregate holding the algorithm, the initial
  /// configuration, the three adversaries, the options and the observability
  /// attachments.  Throws std::invalid_argument on missing required pieces.
  explicit engine(const sim_spec& spec);

  /// Optional transient-fault injector (see sim/adversary_ext.h): applied at
  /// the start of each round, before any robot observes.
  void set_perturbation(perturbation_policy* p) { perturbation_ = p; }

  /// Optional byzantine control (see sim/adversary_ext.h): designated robots
  /// take adversarial destinations and are excluded from the GATHERED
  /// predicate (gathering is required of correct robots only).
  void set_byzantine(byzantine_policy* b) { byzantine_ = b; }

  /// Attach observability: a structured event sink (nullptr = no events), an
  /// external metrics registry the run's counters merge into (nullptr = keep
  /// them internal) and the id stamped on every emitted event.
  void set_observer(obs::event_sink* sink, obs::metrics_registry* metrics,
                    std::uint64_t run_id = 0) {
    sink_ = sink;
    metrics_ = metrics;
    run_id_ = run_id;
  }

  /// Run to completion and return the result.
  [[nodiscard]] sim_result run();

 private:
  /// Recanonicalize `config_` from `positions_` (per-round refreshed
  /// tolerance) and return it.  The accumulated per-round write mask
  /// (`scratch_moved_`) is handed to apply_moves as the moved hint, so a
  /// round that moved k robots recanonicalizes in O(k) when the delta path
  /// applies; the mutation report lands in `last_report_` and the mask is
  /// reset for the next round's writers.
  [[nodiscard]] const configuration& current_configuration();
  [[nodiscard]] bool gathered(const configuration& c) const;

  std::vector<vec2> positions_;
  std::vector<std::uint8_t> live_;
  configuration config_;        ///< round-start configuration (reused storage)
  configuration local_config_;  ///< local-frames LOOK scratch (reused storage)
  // Step-loop scratch buffers: cleared and refilled each round so the steady
  // state allocates nothing.
  std::vector<vec2> scratch_next_;
  std::vector<vec2> scratch_stationary_;
  std::vector<std::uint8_t> scratch_active_;
  std::vector<vec2> scratch_local_pts_;
  // Per-round write mask: every code path that writes positions_ marks the
  // robot here; current_configuration() passes it to apply_moves as the
  // moved hint and clears it.
  std::vector<std::uint8_t> scratch_moved_;
  config::mutation_report last_report_;  // report of the last apply_moves
  bool snap_identity_ = false;  // the last executed snap pass changed nothing
  const gathering_algorithm* algo_;
  activation_scheduler* scheduler_;
  movement_adversary* movement_;
  crash_policy* crash_;
  sim_options opts_;
  double delta_abs_ = 0.0;
  perturbation_policy* perturbation_ = nullptr;
  byzantine_policy* byzantine_ = nullptr;
  obs::event_sink* sink_ = nullptr;
  obs::metrics_registry* metrics_ = nullptr;
  std::uint64_t run_id_ = 0;
};

}  // namespace gather::sim
