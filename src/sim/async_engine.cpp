#include "sim/async_engine.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "obs/events.h"
#include "obs/metrics_registry.h"
#include "sim/spec.h"

namespace gather::sim {

std::ostream& operator<<(std::ostream& os, async_policy p) {
  return os << to_string(p);
}

namespace {

enum class phase : std::uint8_t { idle, armed };

}  // namespace

async_engine::async_engine(const sim_spec& spec)
    : positions_(spec.initial),
      algo_(spec.algorithm),
      movement_(spec.movement),
      crash_(spec.crash),
      opts_(spec.async),
      sink_(spec.sink),
      metrics_(spec.metrics),
      run_id_(spec.run_id) {
  if (algo_ == nullptr) throw std::invalid_argument("sim_spec: algorithm unset");
  if (movement_ == nullptr) throw std::invalid_argument("sim_spec: movement unset");
  if (crash_ == nullptr) throw std::invalid_argument("sim_spec: crash unset");
  if (positions_.empty()) throw std::invalid_argument("sim_spec: no robots");
}

async_result async_engine::run() {
  async_result result;
  rng random(opts_.seed);
  const std::size_t n = positions_.size();

  const config::configuration c0(positions_);
  const double delta_abs = std::max(opts_.delta_fraction * c0.diameter(), 1e-12);
  result.delta_abs = delta_abs;
  const bool initial_bivalent =
      config::classify(c0).cls == config::config_class::bivalent;

  obs::metrics_registry local;
  std::uint64_t& m_steps = local.counter("async.steps");
  std::uint64_t& m_cycles = local.counter("async.cycles");
  std::uint64_t& m_stale = local.counter("async.stale_moves");
  std::uint64_t& m_crashes = local.counter("async.crashes");
  std::uint64_t& m_truncated = local.counter("async.moves_truncated");
  local.counter("async.runs") = 1;
  local.gauge("async.delta_abs") = delta_abs;

  std::vector<phase> phases(n, phase::idle);
  std::vector<geom::vec2> targets(n);
  std::vector<geom::vec2> snapshot_base(n);  // positions hash proxy at Look time
  std::vector<std::uint8_t> live(n, 1);
  std::vector<std::size_t> starving(n, 0);
  // Per-step write mask (the apply_moves moved hint): at most one robot
  // moves per step, so the step-start recanonicalization is O(1) on the
  // delta path instead of O(n).
  std::vector<std::uint8_t> moved(n, 1);
  bool snap_identity = false;  // the last executed snap pass changed nothing

  // Step-start configuration, recanonicalized in place: the refreshed-tol
  // policy recomputes tol::for_points with the delta-derived absolute floor
  // on every apply_moves, matching a freshly built configuration bit for
  // bit, and a step that leaves positions bitwise unchanged (Look-only
  // steps, once positions are snapped) keeps the derived-geometry cache.
  config::configuration cfg;
  cfg.set_tol_refresh(1e-9 * delta_abs);

  auto checksum = [&]() {
    geom::vec2 s{};
    for (const geom::vec2& p : positions_) s += p;
    return s;
  };

  auto gathered = [&](const config::configuration& c) {
    const geom::vec2* point = nullptr;
    geom::vec2 first{};
    for (std::size_t i = 0; i < n; ++i) {
      if (!live[i]) continue;
      const geom::vec2 p = c.snapped(positions_[i]);
      if (point == nullptr) {
        first = p;
        point = &first;
      } else if (!c.tolerance().same_point(*point, p)) {
        return false;
      }
      // A live robot armed with a stale far-away target will still move.
      if (phases[i] == phase::armed &&
          !c.tolerance().same_point(targets[i], p)) {
        return false;
      }
    }
    if (point == nullptr) return false;
    return c.tolerance().same_point(algo_->destination({c, *point}), *point);
  };

  std::size_t step = 0;

  // Advance one robot's phase machine.
  auto look = [&](std::size_t i, const config::configuration& c) {
    targets[i] = algo_->destination({c, c.snapped(positions_[i])});
    snapshot_base[i] = checksum();
    phases[i] = phase::armed;
    if (sink_ != nullptr) {
      sink_->on_event(
          obs::event::activation(run_id_, step, static_cast<std::int64_t>(i)));
    }
  };
  auto move = [&](std::size_t i, const config::configuration& c) {
    const geom::vec2 before = checksum();
    if (geom::distance(before, snapshot_base[i]) > 1e-9) ++m_stale;
    const geom::vec2 from = positions_[i];
    positions_[i] = movement_->stop_point(from, targets[i], delta_abs, random);
    moved[i] = 1;
    if (!c.tolerance().same_point(positions_[i], targets[i])) {
      ++m_truncated;
      if (sink_ != nullptr) {
        sink_->on_event(obs::event::move_truncated(
            run_id_, step, static_cast<std::int64_t>(i),
            geom::distance(from, targets[i]),
            geom::distance(from, positions_[i])));
      }
    }
    phases[i] = phase::idle;
    ++m_cycles;
  };

  std::size_t la_ma_cursor = 0;  // for look_all_move_all
  bool la_phase_is_look = true;

  for (; step < opts_.max_steps; ++step) {
    const config::mutation_report rep = cfg.apply_moves(positions_, moved);
    moved.assign(n, 0);
    const config::configuration& c = cfg;
    // Snap pass, skipped when provably an identity (same reasoning as the
    // ATOM engine: no_op round + a previously observed identity snap).
    if (!(rep.no_op && snap_identity)) {
      bool snap_changed = false;
      for (std::size_t i = 0; i < n; ++i) {
        const geom::vec2 s = c.snapped(positions_[i]);
        if (s.x != positions_[i].x || s.y != positions_[i].y) {
          positions_[i] = s;
          moved[i] = 1;
          snap_changed = true;
        }
      }
      snap_identity = !snap_changed;
    }

    if (gathered(c)) {
      result.status = sim_status::gathered;
      for (std::size_t i = 0; i < n; ++i) {
        if (live[i]) {
          result.gather_point = c.snapped(positions_[i]);
          break;
        }
      }
      if (sink_ != nullptr) {
        sink_->on_event(obs::event::gathered(
            run_id_, step, result.gather_point.x, result.gather_point.y));
      }
      break;
    }

    // Crash injection (budget semantics as in the ATOM engine).
    std::size_t live_count =
        static_cast<std::size_t>(std::count(live.begin(), live.end(), std::uint8_t{1}));
    const crash_context cctx{step, positions_, live, nullptr};
    for (std::size_t idx : crash_->crashes(cctx, random)) {
      if (idx >= n || !live[idx]) continue;
      if (live_count <= 1) break;
      live[idx] = 0;
      --live_count;
      ++m_crashes;
      if (sink_ != nullptr) {
        sink_->on_event(
            obs::event::crash(run_id_, step, static_cast<std::int64_t>(idx)));
      }
    }
    if (live_count == 0) {
      result.status = sim_status::all_crashed;
      break;
    }

    // Pick the robot whose phase advances, per the interleaving policy.
    std::vector<std::size_t> live_idx;
    for (std::size_t i = 0; i < n; ++i) {
      if (live[i]) live_idx.push_back(i);
    }
    std::size_t pick = live_idx.front();
    switch (opts_.policy) {
      case async_policy::atomic_sequential: {
        // Finish an armed robot first; otherwise arm the next in index order.
        const auto armed = std::find_if(live_idx.begin(), live_idx.end(), [&](std::size_t i) {
          return phases[i] == phase::armed;
        });
        pick = (armed != live_idx.end()) ? *armed
                                         : live_idx[step / 2 % live_idx.size()];
        break;
      }
      case async_policy::random_interleaving:
        pick = live_idx[random.uniform_int(0, live_idx.size() - 1)];
        break;
      case async_policy::look_all_move_all: {
        // Sweep all live robots through Look, then all through Move.
        if (la_ma_cursor >= live_idx.size()) {
          la_ma_cursor = 0;
          la_phase_is_look = !la_phase_is_look;
        }
        pick = live_idx[la_ma_cursor++];
        // Skip robots already in the sweep's desired state.
        const phase want = la_phase_is_look ? phase::idle : phase::armed;
        std::size_t guard = 0;
        while (phases[pick] != want && guard++ < live_idx.size()) {
          if (la_ma_cursor >= live_idx.size()) {
            la_ma_cursor = 0;
            la_phase_is_look = !la_phase_is_look;
            break;
          }
          pick = live_idx[la_ma_cursor++];
        }
        break;
      }
    }
    // Fairness backstop.
    for (std::size_t i : live_idx) {
      if (starving[i] >= opts_.fairness_bound) {
        pick = i;
        break;
      }
    }
    for (std::size_t i : live_idx) ++starving[i];
    starving[pick] = 0;

    if (phases[pick] == phase::idle) {
      look(pick, c);
    } else {
      move(pick, c);
    }
  }

  result.steps = step;
  result.final_positions = positions_;
  result.final_live = live;
  if (result.status != sim_status::gathered && initial_bivalent) {
    result.status = sim_status::started_bivalent;
  }

  m_steps = result.steps;
  result.cycles = m_cycles;
  result.stale_moves = m_stale;
  result.crashes = m_crashes;
  if (result.status == sim_status::gathered) {
    local.counter("async.gathered") = 1;
  }
  if (metrics_ != nullptr) metrics_->merge(local);
  return result;
}

async_result run_async(const sim_spec& spec) {
  obs::prof_session profiling(spec.profile);
  async_engine e(spec);
  return e.run();
}

}  // namespace gather::sim
