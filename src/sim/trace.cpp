#include "sim/trace.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

namespace gather::sim {

void write_trace_csv(std::ostream& os, const sim_result& result) {
  os << "round,robot,x,y,active,live,class\n";
  for (const round_record& rec : result.trace) {
    for (std::size_t i = 0; i < rec.positions.size(); ++i) {
      os << rec.round << ',' << i << ',' << rec.positions[i].x << ','
         << rec.positions[i].y << ',' << int{rec.active[i]} << ','
         << int{rec.live[i]} << ',' << config::to_string(rec.cls) << '\n';
    }
  }
}

std::string ascii_plot(const std::vector<geom::vec2>& pts,
                       const std::vector<std::uint8_t>& live, int width,
                       int height) {
  if (pts.empty()) return "(no robots)\n";
  double lo_x = pts[0].x, hi_x = pts[0].x, lo_y = pts[0].y, hi_y = pts[0].y;
  for (const geom::vec2& p : pts) {
    lo_x = std::min(lo_x, p.x); hi_x = std::max(hi_x, p.x);
    lo_y = std::min(lo_y, p.y); hi_y = std::max(hi_y, p.y);
  }
  const double span_x = std::max(hi_x - lo_x, 1e-9);
  const double span_y = std::max(hi_y - lo_y, 1e-9);

  std::vector<std::string> grid(height, std::string(width, '.'));
  std::vector<std::vector<int>> counts(height, std::vector<int>(width, 0));
  std::vector<std::vector<bool>> has_crashed(height,
                                             std::vector<bool>(width, false));
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const int cx = static_cast<int>(std::lround((pts[i].x - lo_x) / span_x * (width - 1)));
    const int cy = static_cast<int>(std::lround((pts[i].y - lo_y) / span_y * (height - 1)));
    const int row = height - 1 - cy;  // y grows upward
    counts[row][cx] += 1;
    if (i < live.size() && !live[i]) has_crashed[row][cx] = true;
  }
  for (int r = 0; r < height; ++r) {
    for (int col = 0; col < width; ++col) {
      if (counts[r][col] == 0) continue;
      if (has_crashed[r][col]) {
        grid[r][col] = 'x';
      } else {
        grid[r][col] = static_cast<char>('0' + std::min(counts[r][col], 9));
      }
    }
  }
  std::ostringstream out;
  for (const std::string& row : grid) out << row << '\n';
  return out.str();
}

}  // namespace gather::sim
