// SVG trace renderer: draws the robot trajectories of a recorded run as a
// standalone SVG document -- start markers, per-robot polylines, crash marks
// and the gather point.  Dependency-free; used by gather_cli --output svg
// and the examples.
#pragma once

#include <iosfwd>

#include "sim/engine.h"

namespace gather::sim {

struct svg_options {
  int width = 640;
  int height = 640;
  double margin = 24.0;          ///< pixels around the bounding box
  bool draw_grid = true;
  bool label_robots = false;     ///< robot indices at start positions
};

/// Render the trajectories of a trace-recording run.  Runs without a trace
/// render only the final configuration.
void write_svg(std::ostream& os, const sim_result& result,
               const svg_options& opts = {});

}  // namespace gather::sim
