// Activation schedulers for the ATOM (semi-synchronous) model.
//
// In each round the adversarial scheduler activates an arbitrary non-empty
// subset of the live robots; activated robots perform one atomic
// Look-Compute-Move cycle.  The only obligation is fairness: every live
// robot is activated infinitely often.  The engine additionally enforces a
// bounded-fairness backstop (a robot starving longer than the bound is
// force-activated), so even hostile policies below remain admissible
// schedules.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "geometry/vec2.h"
#include "sim/rng.h"

namespace gather::sim {

/// Context handed to a scheduler each round.
struct schedule_context {
  std::size_t round = 0;
  const std::vector<geom::vec2>& positions;  ///< all robots (crashed included)
  const std::vector<std::uint8_t>& live;     ///< liveness mask
};

class activation_scheduler {
 public:
  virtual ~activation_scheduler() = default;

  /// Indices of the robots to activate this round.  Must select at least one
  /// live robot when any is live; selections of crashed robots are ignored
  /// by the engine.
  [[nodiscard]] virtual std::vector<std::size_t> select(const schedule_context& ctx,
                                                        rng& random) = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// Activates every live robot every round (the FSYNCH special case).
[[nodiscard]] std::unique_ptr<activation_scheduler> make_synchronous();

/// Activates exactly one live robot per round, cycling in index order --
/// the slowest fair schedule.
[[nodiscard]] std::unique_ptr<activation_scheduler> make_round_robin();

/// Activates each live robot independently with probability 1/2 (at least
/// one forced).
[[nodiscard]] std::unique_ptr<activation_scheduler> make_fair_random();

/// Hostile heuristic: activates only the live robot farthest from the
/// centroid of the live robots (slowing down convergence); relies on the
/// engine's fairness backstop for admissibility.
[[nodiscard]] std::unique_ptr<activation_scheduler> make_laggard();

/// Alternates between the lower-index half and the upper-index half of the
/// live robots (a classic symmetry-probing schedule).
[[nodiscard]] std::unique_ptr<activation_scheduler> make_half_alternating();

/// Alternates between odd-index and even-index live robots -- the finest
/// interleaved bipartition, probing decisions that depend on who moved last.
[[nodiscard]] std::unique_ptr<activation_scheduler> make_odd_even();

/// All scheduler factories, for sweep harnesses.
struct scheduler_factory {
  std::string_view name;
  std::unique_ptr<activation_scheduler> (*make)();
};
[[nodiscard]] const std::vector<scheduler_factory>& all_schedulers();

}  // namespace gather::sim
