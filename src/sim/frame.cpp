#include "sim/frame.h"

#include <cmath>

#include "geometry/angles.h"

namespace gather::sim {

std::vector<geom::similarity> random_frames(std::size_t n, rng& random, double box) {
  std::vector<geom::similarity> frames;
  frames.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double angle = random.uniform(0.0, geom::two_pi);
    const double scale = std::exp(random.uniform(-std::log(4.0), std::log(4.0)));
    const geom::vec2 offset{random.uniform(-box, box), random.uniform(-box, box)};
    frames.emplace_back(angle, scale, offset);
  }
  return frames;
}

}  // namespace gather::sim
