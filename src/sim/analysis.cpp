#include "sim/analysis.h"

#include <algorithm>

#include "config/configuration.h"
#include "sim/metrics.h"

namespace gather::sim {

std::vector<round_metrics> analyze_trace(const sim_result& result) {
  std::vector<round_metrics> out;
  out.reserve(result.trace.size());
  for (const round_record& rec : result.trace) {
    round_metrics m;
    m.round = rec.round;
    m.cls = rec.cls;
    m.live_spread = live_spread(rec.positions, rec.live);
    const config::configuration c(rec.positions);
    for (std::size_t i = 0; i < rec.positions.size(); ++i) {
      if (!rec.live[i]) continue;
      ++m.live_count;
      for (std::size_t j = i + 1; j < rec.positions.size(); ++j) {
        if (rec.live[j]) {
          m.live_sum_pairwise += geom::distance(rec.positions[i], rec.positions[j]);
        }
      }
    }
    // Largest stack of live robots: count live robots per snapped location.
    for (const config::occupied_point& o : c.occupied()) {
      int live_here = 0;
      for (std::size_t i = 0; i < rec.positions.size(); ++i) {
        if (rec.live[i] &&
            c.tolerance().same_point(c.snapped(rec.positions[i]), o.position)) {
          ++live_here;
        }
      }
      m.max_live_multiplicity = std::max(m.max_live_multiplicity, live_here);
    }
    out.push_back(m);
  }
  return out;
}

std::vector<class_phase> class_phases(const std::vector<config_class>& history) {
  std::vector<class_phase> out;
  for (std::size_t i = 0; i < history.size(); ++i) {
    if (!out.empty() && out.back().cls == history[i]) {
      ++out.back().rounds;
    } else {
      out.push_back({history[i], i, 1});
    }
  }
  return out;
}

potential_report check_potentials(const sim_result& result) {
  potential_report rep;
  const auto metrics = analyze_trace(result);
  rep.phase_count = class_phases(result.class_history).size();

  double initial_spread = metrics.empty() ? 0.0 : metrics.front().live_spread;
  int prev_max_mult = 0;
  std::size_t prev_live = 0;
  config_class prev_cls = config_class::asymmetric;
  bool have_prev = false;
  for (const round_metrics& m : metrics) {
    if (m.max_live_multiplicity >= 2 &&
        rep.first_multiplicity_round == static_cast<std::size_t>(-1)) {
      rep.first_multiplicity_round = m.round;
    }
    if (initial_spread > 0.0 && m.live_spread > 2.0 * initial_spread + 1e-9) {
      rep.spread_bounded = false;
    }
    // Within an M phase the target stack may only grow (Lemma 5.3 C1); a
    // crash of a stacked robot legitimately shrinks the *live* stack, so
    // decreases are only flagged while the live count is unchanged.
    if (have_prev && prev_cls == config_class::multiple &&
        m.cls == config_class::multiple && m.live_count == prev_live &&
        m.max_live_multiplicity < prev_max_mult) {
      rep.max_multiplicity_monotone = false;
    }
    prev_max_mult = m.max_live_multiplicity;
    prev_live = m.live_count;
    prev_cls = m.cls;
    have_prev = true;
  }
  return rep;
}

}  // namespace gather::sim
