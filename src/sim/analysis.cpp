#include "sim/analysis.h"

#include <algorithm>

#include "config/configuration.h"
#include "sim/metrics.h"

namespace gather::sim {

std::vector<round_metrics> analyze_trace(const sim_result& result) {
  std::vector<round_metrics> out;
  out.reserve(result.trace.size());
  for (const round_record& rec : result.trace) {
    out.push_back(
        compute_round_stats(rec.round, rec.cls, rec.positions, rec.live));
  }
  return out;
}

std::vector<class_phase> class_phases(const std::vector<config_class>& history) {
  std::vector<class_phase> out;
  for (std::size_t i = 0; i < history.size(); ++i) {
    if (!out.empty() && out.back().cls == history[i]) {
      ++out.back().rounds;
    } else {
      out.push_back({history[i], i, 1});
    }
  }
  return out;
}

potential_report check_potentials(const sim_result& result) {
  potential_report rep;
  const auto metrics = analyze_trace(result);
  rep.phase_count = class_phases(result.class_history).size();

  double initial_spread = metrics.empty() ? 0.0 : metrics.front().live_spread;
  int prev_max_mult = 0;
  std::size_t prev_live = 0;
  config_class prev_cls = config_class::asymmetric;
  bool have_prev = false;
  for (const round_metrics& m : metrics) {
    if (m.max_live_multiplicity >= 2 &&
        rep.first_multiplicity_round == static_cast<std::size_t>(-1)) {
      rep.first_multiplicity_round = m.round;
    }
    if (initial_spread > 0.0 && m.live_spread > 2.0 * initial_spread + 1e-9) {
      rep.spread_bounded = false;
    }
    // Within an M phase the target stack may only grow (Lemma 5.3 C1); a
    // crash of a stacked robot legitimately shrinks the *live* stack, so
    // decreases are only flagged while the live count is unchanged.
    if (have_prev && prev_cls == config_class::multiple &&
        m.cls == config_class::multiple && m.live_count == prev_live &&
        m.max_live_multiplicity < prev_max_mult) {
      rep.max_multiplicity_monotone = false;
    }
    prev_max_mult = m.max_live_multiplicity;
    prev_live = m.live_count;
    prev_cls = m.cls;
    have_prev = true;
  }
  return rep;
}

}  // namespace gather::sim
