#include "sim/replay.h"

#include <cstdio>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>

#include "sim/spec.h"

namespace gather::sim {

geom::vec2 truncated_stop(geom::vec2 from, geom::vec2 dest, double delta,
                          std::uint32_t level, std::uint32_t levels) {
  const double want = geom::distance(from, dest);
  // Exact-zero guard: want == 0 means from == dest bit-for-bit.
  if (want <= delta || want == 0.0) return dest;  // gather-lint: allow(R3)
  const double f = levels <= 1 ? 1.0
                               : static_cast<double>(level) /
                                     static_cast<double>(levels - 1);
  const double gone = delta + f * (want - delta);
  if (gone >= want) return dest;
  return from + (gone / want) * (dest - from);
}

namespace {

class scripted_scheduler final : public activation_scheduler {
 public:
  explicit scripted_scheduler(const schedule_trace& t) : trace_(t) {}

  std::vector<std::size_t> select(const schedule_context& ctx, rng&) override {
    std::vector<std::size_t> out;
    if (ctx.round >= trace_.steps.size()) return out;
    const std::vector<std::uint8_t>& mask = trace_.steps[ctx.round].active;
    for (std::size_t i = 0; i < mask.size(); ++i) {
      if (mask[i]) out.push_back(i);
    }
    return out;
  }
  std::string_view name() const override { return "scripted"; }

 private:
  const schedule_trace& trace_;
};

// The engine calls stop_point once per activated robot, in ascending robot
// index within each round; a flat cursor over the per-activation levels
// therefore reproduces the recorded decisions exactly.
class scripted_movement final : public movement_adversary {
 public:
  explicit scripted_movement(const schedule_trace& t)
      : levels_count_(t.truncation_levels) {
    for (const trace_step& step : t.steps) {
      for (std::size_t i = 0; i < step.active.size(); ++i) {
        if (!step.active[i]) continue;
        levels_.push_back(i < step.levels.size() ? step.levels[i] : 0);
      }
    }
  }

  double travelled(double want, double, rng&) override { return want; }

  geom::vec2 stop_point(geom::vec2 from, geom::vec2 dest, double delta,
                        rng&) override {
    if (cursor_ >= levels_.size()) {
      throw std::runtime_error(
          "scripted movement: trace exhausted (more activations than recorded)");
    }
    return truncated_stop(from, dest, delta, levels_[cursor_++], levels_count_);
  }
  std::string_view name() const override { return "scripted"; }

 private:
  std::vector<std::uint32_t> levels_;
  std::uint32_t levels_count_ = 1;
  std::size_t cursor_ = 0;
};

void fail(const std::string& what) {
  throw std::runtime_error("read_trace: " + what);
}

}  // namespace

std::unique_ptr<activation_scheduler> make_scripted_scheduler(
    const schedule_trace& t) {
  return std::make_unique<scripted_scheduler>(t);
}

std::unique_ptr<movement_adversary> make_scripted_movement(
    const schedule_trace& t) {
  return std::make_unique<scripted_movement>(t);
}

sim_result replay_schedule(const schedule_trace& t,
                           const core::gathering_algorithm& algo) {
  auto sched = make_scripted_scheduler(t);
  auto move = make_scripted_movement(t);
  std::vector<std::pair<std::size_t, std::size_t>> events;
  for (std::size_t r = 0; r < t.steps.size(); ++r) {
    for (std::size_t idx : t.steps[r].crashes) events.emplace_back(r, idx);
  }
  auto crash = make_scheduled_crashes(std::move(events));

  sim_options opts;
  opts.delta_fraction = t.delta_fraction;
  opts.max_rounds = t.steps.size();
  // The fairness backstop must never force an activation the trace did not
  // record; one round beyond the trace length disarms it.
  opts.fairness_bound = t.steps.size() + 1;
  opts.record_trace = true;
  opts.check_wait_freeness = true;

  sim_spec spec;
  spec.initial = t.initial;
  spec.algorithm = &algo;
  spec.scheduler = sched.get();
  spec.movement = move.get();
  spec.crash = crash.get();
  spec.options = opts;
  return run(spec);
}

void write_trace(std::ostream& os, const schedule_trace& t) {
  char buf[80];
  os << "gather-trace-v1\n";
  std::snprintf(buf, sizeof buf, "delta-fraction %.17g\n", t.delta_fraction);
  os << buf;
  os << "levels " << t.truncation_levels << "\n";
  os << "robots " << t.initial.size() << "\n";
  for (const geom::vec2& p : t.initial) {
    std::snprintf(buf, sizeof buf, "%.17g %.17g\n", p.x, p.y);
    os << buf;
  }
  os << "rounds " << t.steps.size() << "\n";
  for (const trace_step& step : t.steps) {
    os << "step crashes " << step.crashes.size();
    for (std::size_t idx : step.crashes) os << ' ' << idx;
    std::size_t active_count = 0;
    for (std::uint8_t a : step.active) active_count += a ? 1 : 0;
    os << " active " << active_count;
    for (std::size_t i = 0; i < step.active.size(); ++i) {
      if (step.active[i]) {
        os << ' ' << i << ':'
           << (i < step.levels.size() ? step.levels[i] : 0);
      }
    }
    os << "\n";
  }
}

schedule_trace read_trace(std::istream& is) {
  schedule_trace t;
  std::string tok;
  if (!(is >> tok) || tok != "gather-trace-v1") fail("bad magic");
  if (!(is >> tok) || tok != "delta-fraction" || !(is >> t.delta_fraction)) {
    fail("expected 'delta-fraction <value>'");
  }
  if (!(is >> tok) || tok != "levels" || !(is >> t.truncation_levels)) {
    fail("expected 'levels <count>'");
  }
  std::size_t n = 0;
  if (!(is >> tok) || tok != "robots" || !(is >> n)) {
    fail("expected 'robots <count>'");
  }
  t.initial.resize(n);
  for (geom::vec2& p : t.initial) {
    if (!(is >> p.x >> p.y)) fail("expected robot coordinates");
  }
  std::size_t rounds = 0;
  if (!(is >> tok) || tok != "rounds" || !(is >> rounds)) {
    fail("expected 'rounds <count>'");
  }
  t.steps.resize(rounds);
  for (trace_step& step : t.steps) {
    std::size_t crash_count = 0;
    if (!(is >> tok) || tok != "step") fail("expected 'step'");
    if (!(is >> tok) || tok != "crashes" || !(is >> crash_count)) {
      fail("expected 'crashes <count>'");
    }
    step.crashes.resize(crash_count);
    for (std::size_t& idx : step.crashes) {
      if (!(is >> idx)) fail("expected crash index");
    }
    std::size_t active_count = 0;
    if (!(is >> tok) || tok != "active" || !(is >> active_count)) {
      fail("expected 'active <count>'");
    }
    step.active.assign(n, 0);
    step.levels.assign(n, 0);
    for (std::size_t k = 0; k < active_count; ++k) {
      if (!(is >> tok)) fail("expected '<index>:<level>'");
      const std::size_t colon = tok.find(':');
      if (colon == std::string::npos) fail("expected '<index>:<level>'");
      std::size_t idx = 0;
      unsigned long lvl = 0;
      try {
        idx = std::stoul(tok.substr(0, colon));
        lvl = std::stoul(tok.substr(colon + 1));
      } catch (const std::exception&) {
        fail("malformed '<index>:<level>' token '" + tok + "'");
      }
      if (idx >= n) fail("activation index out of range");
      step.active[idx] = 1;
      step.levels[idx] = static_cast<std::uint32_t>(lvl);
    }
  }
  return t;
}

}  // namespace gather::sim
