// ASYNC (CORDA) execution engine -- an extension beyond the paper's model.
//
// The paper proves WAIT-FREE-GATHER correct in the semi-synchronous ATOM
// model, where each activated robot's Look-Compute-Move cycle is atomic
// within a round.  The asynchronous model (see e.g. Flocchini et al.) drops
// that atomicity: arbitrary delays may separate a robot's Look from its Move,
// so robots can move based on *stale* snapshots.  This engine implements the
// standard discrete-event formulation: the adversary repeatedly picks a live
// robot and advances its phase machine
//
//     idle --Look+Compute--> armed --Move--> idle
//
// where between a robot's Look and its Move any number of other robots may
// complete full cycles.  The engine is used by the model-boundary experiment
// (bench_async, E9) to map where the ATOM guarantees stop applying, and by
// tests that confirm ATOM is recovered as the special case where every armed
// robot moves before anyone else looks.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <utility>
#include <vector>

#include "config/classify.h"
#include "core/algorithm.h"
#include "sim/crash.h"
#include "sim/engine.h"
#include "sim/movement.h"
#include "sim/rng.h"
#include "util/enum_name.h"

namespace gather::sim {

/// Interleaving policies for the ASYNC adversary.
enum class async_policy {
  /// A robot finishes its Move immediately after its Look: no staleness.
  /// This is exactly a sequential ATOM schedule (one robot per round).
  atomic_sequential,
  /// Uniformly random phase advancement: moderate staleness.
  random_interleaving,
  /// All live robots Look first, then all Move ("look-all-move-all"):
  /// maximal staleness, the classic breaker of ATOM-only algorithms.
  look_all_move_all,
};

}  // namespace gather::sim

namespace gather {
template <>
struct enum_descriptor<sim::async_policy> {
  static constexpr std::array<std::pair<sim::async_policy, std::string_view>, 3>
      entries{{{sim::async_policy::atomic_sequential, "atomic-sequential"},
               {sim::async_policy::random_interleaving, "random-interleaving"},
               {sim::async_policy::look_all_move_all, "look-all-move-all"}}};
};
}  // namespace gather

namespace gather::sim {

[[nodiscard]] constexpr std::string_view to_string(async_policy p) {
  return enum_name(p);
}
std::ostream& operator<<(std::ostream& os, async_policy p);

struct async_options {
  double delta_fraction = 0.05;
  std::size_t max_steps = 400'000;   ///< phase-advancement events
  std::uint64_t seed = 1;
  async_policy policy = async_policy::random_interleaving;
  std::size_t fairness_bound = 128;  ///< max steps between a robot's events
};

struct async_result {
  sim_status status = sim_status::round_limit;
  std::size_t steps = 0;             ///< phase events executed
  std::size_t cycles = 0;            ///< completed Look...Move cycles
  geom::vec2 gather_point{};
  std::vector<geom::vec2> final_positions;
  std::vector<std::uint8_t> final_live;
  std::size_t crashes = 0;
  /// Moves executed whose destination was computed from a snapshot that no
  /// longer matched the configuration at move time (staleness exposure).
  std::size_t stale_moves = 0;
  /// The absolute movement guarantee the run used (see sim_result::delta_abs).
  double delta_abs = 0.0;
};

class async_engine {
 public:
  /// Primary constructor: reads initial/algorithm/movement/crash and the
  /// async options (plus the obs attachments) from the spec.  Throws
  /// std::invalid_argument on missing required pieces.
  explicit async_engine(const sim_spec& spec);

  /// Attach observability (see engine::set_observer).
  void set_observer(obs::event_sink* sink, obs::metrics_registry* metrics,
                    std::uint64_t run_id = 0) {
    sink_ = sink;
    metrics_ = metrics;
    run_id_ = run_id;
  }

  [[nodiscard]] async_result run();

 private:
  std::vector<geom::vec2> positions_;
  const core::gathering_algorithm* algo_;
  movement_adversary* movement_;
  crash_policy* crash_;
  async_options opts_;
  obs::event_sink* sink_ = nullptr;
  obs::metrics_registry* metrics_ = nullptr;
  std::uint64_t run_id_ = 0;
};

}  // namespace gather::sim
