#include "sim/metrics.h"

#include <algorithm>

#include "config/configuration.h"
#include "core/lemma_registry.h"
#include "geometry/calipers.h"
#include "geometry/tolerance.h"

namespace gather::sim {

double spread(const std::vector<geom::vec2>& pts) {
  if (pts.size() < 2) return 0.0;
  // Rotating calipers: O(n log n) instead of the naive O(n^2) pairwise scan
  // (this runs on every recorded round of every analyzed trace).
  return geom::diameter(pts, geom::tol::for_points(pts));
}

double live_spread(const std::vector<geom::vec2>& pts,
                   const std::vector<std::uint8_t>& live) {
  std::vector<geom::vec2> alive;
  alive.reserve(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (live[i]) alive.push_back(pts[i]);
  }
  return spread(alive);
}

double sum_pairwise(const std::vector<geom::vec2>& pts) {
  double s = 0.0;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    for (std::size_t j = i + 1; j < pts.size(); ++j) {
      s += geom::distance(pts[i], pts[j]);
    }
  }
  return s;
}

round_stats compute_round_stats(std::size_t round, config::config_class cls,
                                const std::vector<geom::vec2>& pts,
                                const std::vector<std::uint8_t>& live) {
  round_stats m;
  m.round = round;
  m.cls = cls;
  // One pass materializes the live subset (input order preserved, so the
  // pairwise summation order matches a masked scan of the full list).
  std::vector<geom::vec2> alive;
  alive.reserve(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (live[i]) alive.push_back(pts[i]);
  }
  m.live_count = alive.size();
  m.live_spread = spread(alive);
  m.live_sum_pairwise = sum_pairwise(alive);
  // Largest stack of live robots: count live robots per snapped location.
  const config::configuration c(pts);
  for (const config::occupied_point& o : c.occupied()) {
    int live_here = 0;
    for (std::size_t i = 0; i < pts.size(); ++i) {
      if (live[i] &&
          c.tolerance().same_point(c.snapped(pts[i]), o.position)) {
        ++live_here;
      }
    }
    m.max_live_multiplicity = std::max(m.max_live_multiplicity, live_here);
  }
  return m;
}

namespace {
constexpr std::size_t index_of(config::config_class c) {
  return static_cast<std::size_t>(c);
}
}  // namespace

transition_matrix count_transitions(const std::vector<config::config_class>& history) {
  transition_matrix m{};
  for (std::size_t i = 0; i + 1 < history.size(); ++i) {
    ++m[index_of(history[i])][index_of(history[i + 1])];
  }
  return m;
}

bool transitions_allowed(const std::vector<config::config_class>& history) {
  // One source of truth: the matrix lives in the core lemma registry
  // (core::transition_allowed), shared with the bounded model checker.
  for (std::size_t i = 0; i + 1 < history.size(); ++i) {
    if (!core::transition_allowed(history[i], history[i + 1])) return false;
  }
  return true;
}

}  // namespace gather::sim
