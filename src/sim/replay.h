// Deterministic schedule traces and bit-identical replay.
//
// The bounded model checker (src/check) explores adversary choices as
// explicit per-round decisions: which robots crash, which activate, and on
// which level of a quantized truncation grid each activated move is stopped.
// A `schedule_trace` records one such decision path together with the seed
// configuration; `replay_schedule` drives the ordinary simulation engine
// with scripted adversary policies that re-issue exactly those decisions, so
// the replayed run visits the explorer's states bit for bit.  Traces
// serialize to a plain text format (exact %.17g round-trip doubles), making
// counterexamples a portable artifact.
//
// The truncation grid is the shared contract between the explorer and the
// scripted movement adversary: level j of L levels stops a move that wants
// `want > delta` after `delta + j/(L-1) * (want - delta)` (the full move for
// L == 1); a move with `want <= delta` always completes, per the model.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "core/algorithm.h"
#include "geometry/vec2.h"
#include "sim/crash.h"
#include "sim/engine.h"
#include "sim/movement.h"
#include "sim/scheduler.h"

namespace gather::sim {

/// One round of recorded adversary decisions.
struct trace_step {
  std::vector<std::size_t> crashes;   ///< robots crashed at this round's start
  std::vector<std::uint8_t> active;   ///< activation mask, one flag per robot
  std::vector<std::uint32_t> levels;  ///< truncation level per robot (active only)
  friend bool operator==(const trace_step&, const trace_step&) = default;
};

/// A full replayable schedule: seed configuration plus per-round decisions.
struct schedule_trace {
  std::vector<geom::vec2> initial;
  double delta_fraction = 0.05;
  std::uint32_t truncation_levels = 1;
  std::vector<trace_step> steps;
  friend bool operator==(const schedule_trace&, const schedule_trace&) = default;
};

/// The truncation-grid stop point (see the header comment).  Shared verbatim
/// by the explorer and the scripted movement adversary: both sides calling
/// this with identical arguments is what makes replay bit-identical.
[[nodiscard]] geom::vec2 truncated_stop(geom::vec2 from, geom::vec2 dest,
                                        double delta, std::uint32_t level,
                                        std::uint32_t levels);

/// Scheduler that activates exactly the trace's mask at each round.  The
/// returned object references `t`; keep the trace alive while it runs.
[[nodiscard]] std::unique_ptr<activation_scheduler> make_scripted_scheduler(
    const schedule_trace& t);

/// Movement adversary that stops moves on the trace's truncation levels, in
/// the engine's call order (active robots in ascending index per round).
/// References `t`; single use -- it consumes its level cursor.
[[nodiscard]] std::unique_ptr<movement_adversary> make_scripted_movement(
    const schedule_trace& t);

/// Replay the trace through the ordinary engine: runs exactly
/// `t.steps.size()` rounds with scripted policies, trace recording on and
/// wait-freeness checking enabled.  The resulting `trace[r].positions` are
/// the round-start (snapped) configurations along the path and
/// `final_positions` is the raw outcome of the last recorded round.
[[nodiscard]] sim_result replay_schedule(const schedule_trace& t,
                                         const core::gathering_algorithm& algo);

/// Plain-text serialization ("gather-trace-v1", exact decimal round-trip).
void write_trace(std::ostream& os, const schedule_trace& t);

/// Parse a serialized trace; throws std::runtime_error on malformed input.
[[nodiscard]] schedule_trace read_trace(std::istream& is);

}  // namespace gather::sim
