#include "sim/json_report.h"

#include <cstdio>
#include <ostream>
#include <string>

namespace gather::sim {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

namespace {

std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

}  // namespace

void write_json_report(std::ostream& os, const sim_result& result) {
  os << "{\n";
  os << "  \"status\": \"" << json_escape(to_string(result.status)) << "\",\n";
  os << "  \"rounds\": " << result.rounds << ",\n";
  os << "  \"crashes\": " << result.crashes << ",\n";
  os << "  \"wait_free_violations\": " << result.wait_free_violations << ",\n";
  os << "  \"bivalent_entries\": " << result.bivalent_entries << ",\n";
  if (result.status == sim_status::gathered) {
    os << "  \"gather_point\": [" << num(result.gather_point.x) << ", "
       << num(result.gather_point.y) << "],\n";
  }
  std::size_t live = 0;
  for (auto l : result.final_live) live += l;
  os << "  \"final_live\": " << live << ",\n";

  os << "  \"phases\": [";
  const auto phases = class_phases(result.class_history);
  for (std::size_t i = 0; i < phases.size(); ++i) {
    if (i) os << ", ";
    os << "{\"class\": \"" << json_escape(config::to_string(phases[i].cls))
       << "\", \"first_round\": " << phases[i].first_round
       << ", \"rounds\": " << phases[i].rounds << "}";
  }
  os << "],\n";

  const auto pot = check_potentials(result);
  os << "  \"potentials\": {\"max_multiplicity_monotone\": "
     << (pot.max_multiplicity_monotone ? "true" : "false")
     << ", \"spread_bounded\": " << (pot.spread_bounded ? "true" : "false")
     << ", \"first_multiplicity_round\": ";
  if (pot.first_multiplicity_round == static_cast<std::size_t>(-1)) {
    os << "null";
  } else {
    os << pot.first_multiplicity_round;
  }
  os << ", \"phase_count\": " << pot.phase_count << "}";

  if (!result.trace.empty()) {
    os << ",\n  \"rounds_detail\": [";
    const auto metrics = analyze_trace(result);
    for (std::size_t i = 0; i < metrics.size(); ++i) {
      const round_metrics& m = metrics[i];
      if (i) os << ", ";
      os << "{\"round\": " << m.round << ", \"class\": \""
         << json_escape(config::to_string(m.cls)) << "\", \"live\": "
         << m.live_count << ", \"spread\": " << num(m.live_spread)
         << ", \"max_mult\": " << m.max_live_multiplicity << "}";
    }
    os << "]";
  }
  os << "\n}\n";
}

}  // namespace gather::sim
