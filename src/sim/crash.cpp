#include "sim/crash.h"

#include <algorithm>

namespace gather::sim {

namespace {

class no_crash final : public crash_policy {
 public:
  std::vector<std::size_t> crashes(const crash_context&, rng&) override { return {}; }
  std::string_view name() const override { return "none"; }
};

class scheduled_crashes final : public crash_policy {
 public:
  explicit scheduled_crashes(std::vector<std::pair<std::size_t, std::size_t>> events)
      : events_(std::move(events)) {}

  std::vector<std::size_t> crashes(const crash_context& ctx, rng&) override {
    std::vector<std::size_t> out;
    for (const auto& [round, robot] : events_) {
      if (round == ctx.round) out.push_back(robot);
    }
    return out;
  }
  std::string_view name() const override { return "scheduled"; }

 private:
  std::vector<std::pair<std::size_t, std::size_t>> events_;
};

class random_crashes final : public crash_policy {
 public:
  random_crashes(std::size_t f, std::size_t horizon) : budget_(f), horizon_(horizon) {}

  std::vector<std::size_t> crashes(const crash_context& ctx, rng& random) override {
    if (!planned_) {
      plan(ctx, random);
      planned_ = true;
    }
    std::vector<std::size_t> out;
    for (const auto& [round, robot] : events_) {
      if (round == ctx.round) out.push_back(robot);
    }
    return out;
  }
  std::string_view name() const override { return "random"; }

 private:
  void plan(const crash_context& ctx, rng& random) {
    const std::size_t n = ctx.positions.size();
    std::vector<std::size_t> robots(n);
    for (std::size_t i = 0; i < n; ++i) robots[i] = i;
    std::shuffle(robots.begin(), robots.end(), random.engine());
    const std::size_t f = std::min(budget_, n == 0 ? 0 : n - 1);
    for (std::size_t k = 0; k < f; ++k) {
      events_.emplace_back(random.uniform_int(0, horizon_ ? horizon_ - 1 : 0), robots[k]);
    }
  }

  std::size_t budget_;
  std::size_t horizon_;
  bool planned_ = false;
  std::vector<std::pair<std::size_t, std::size_t>> events_;
};

class leader_crashes final : public crash_policy {
 public:
  explicit leader_crashes(std::size_t f) : budget_(f) {}

  std::vector<std::size_t> crashes(const crash_context& ctx, rng&) override {
    if (spent_ >= budget_ || ctx.stationary == nullptr) return {};
    // Crash one live robot standing on the elected location, if any.
    for (std::size_t i = 0; i < ctx.positions.size(); ++i) {
      if (!ctx.live[i]) continue;
      if (geom::distance(ctx.positions[i], *ctx.stationary) <= 1e-9) {
        ++spent_;
        return {i};
      }
    }
    return {};
  }
  std::string_view name() const override { return "leader"; }

 private:
  std::size_t budget_;
  std::size_t spent_ = 0;
};

}  // namespace

std::unique_ptr<crash_policy> make_no_crash() { return std::make_unique<no_crash>(); }

std::unique_ptr<crash_policy> make_scheduled_crashes(
    std::vector<std::pair<std::size_t, std::size_t>> events) {
  return std::make_unique<scheduled_crashes>(std::move(events));
}

std::unique_ptr<crash_policy> make_random_crashes(std::size_t f, std::size_t horizon) {
  return std::make_unique<random_crashes>(f, horizon);
}

std::unique_ptr<crash_policy> make_leader_crashes(std::size_t f) {
  return std::make_unique<leader_crashes>(f);
}

}  // namespace gather::sim
