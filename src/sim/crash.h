// Crash-fault injection (paper, Sec. II, crash fault model).
//
// A faulty robot stops taking actions from some round onward but remains
// visible to the others.  A crash policy decides, at the start of each round,
// which live robots crash.  Policies respect a fault budget f; the paper's
// result tolerates any f < n.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "geometry/vec2.h"
#include "sim/rng.h"

namespace gather::sim {

/// Context handed to a crash policy each round.
struct crash_context {
  std::size_t round = 0;
  const std::vector<geom::vec2>& positions;
  const std::vector<std::uint8_t>& live;
  /// The occupied location the algorithm currently instructs to stay at
  /// (the "elected" point), if any -- lets adversarial policies attack the
  /// current leader.
  const geom::vec2* stationary = nullptr;
};

class crash_policy {
 public:
  virtual ~crash_policy() = default;

  /// Indices of robots to crash at the start of this round.  The engine
  /// ignores indices of already-crashed robots and never lets the last live
  /// robot crash beyond the policy's declared budget.
  [[nodiscard]] virtual std::vector<std::size_t> crashes(const crash_context& ctx,
                                                         rng& random) = 0;

  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// No faults.
[[nodiscard]] std::unique_ptr<crash_policy> make_no_crash();

/// Deterministic schedule of (round, robot) crash events.
[[nodiscard]] std::unique_ptr<crash_policy> make_scheduled_crashes(
    std::vector<std::pair<std::size_t, std::size_t>> events);

/// Crashes `f` distinct robots at rounds drawn uniformly from [0, horizon).
[[nodiscard]] std::unique_ptr<crash_policy> make_random_crashes(std::size_t f,
                                                                std::size_t horizon);

/// Adversarial: whenever some robot stands on the currently-stationary
/// (elected) location, crash one such robot -- mimicking the worst case of
/// the proof of Lemma 5.3, where the adversary spends one fault after each
/// step of progress.  Crashes at most `f` robots.
[[nodiscard]] std::unique_ptr<crash_policy> make_leader_crashes(std::size_t f);

}  // namespace gather::sim
