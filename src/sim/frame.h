// Per-robot local coordinate frames.
//
// Robots are disoriented: each has its own origin, orientation and unit
// distance; only chirality is shared (paper, Sec. II).  The engine can run in
// "local frame" mode, where each robot's snapshot is pushed through its own
// direct similarity (rotation + uniform scale + translation, never a
// reflection) and the computed destination is pulled back to the global
// frame.  This stresses that every decision of the algorithm is invariant
// under the robots' coordinate freedom.
#pragma once

#include <vector>

#include "geometry/transform.h"
#include "sim/rng.h"

namespace gather::sim {

/// Random per-robot frames: rotation uniform in [0, 2*pi), scale log-uniform
/// in [1/4, 4], translation uniform in a box of the given half-width.
[[nodiscard]] std::vector<geom::similarity> random_frames(std::size_t n, rng& random,
                                                          double box = 10.0);

}  // namespace gather::sim
