// Trace output helpers: CSV dumps for offline plotting and a minimal ASCII
// renderer used by the example programs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/engine.h"

namespace gather::sim {

/// Write the trace as CSV: round,robot,x,y,active,live,class.
void write_trace_csv(std::ostream& os, const sim_result& result);

/// Render the given points on a character grid of the given size (robots as
/// digits giving min(multiplicity, 9), crashed robots as 'x' when a liveness
/// mask is provided).
[[nodiscard]] std::string ascii_plot(const std::vector<geom::vec2>& pts,
                                     const std::vector<std::uint8_t>& live,
                                     int width = 60, int height = 24);

}  // namespace gather::sim
