#include "sim/scheduler.h"

#include <algorithm>

namespace gather::sim {

namespace {

std::vector<std::size_t> live_indices(const schedule_context& ctx) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < ctx.live.size(); ++i) {
    if (ctx.live[i]) out.push_back(i);
  }
  return out;
}

class synchronous final : public activation_scheduler {
 public:
  std::vector<std::size_t> select(const schedule_context& ctx, rng&) override {
    return live_indices(ctx);
  }
  std::string_view name() const override { return "synchronous"; }
};

class round_robin final : public activation_scheduler {
 public:
  std::vector<std::size_t> select(const schedule_context& ctx, rng&) override {
    const auto live = live_indices(ctx);
    if (live.empty()) return {};
    // Advance past crashed robots deterministically.
    const auto it = std::upper_bound(live.begin(), live.end(), cursor_);
    const std::size_t pick = (it == live.end()) ? live.front() : *it;
    cursor_ = pick;
    return {pick};
  }
  std::string_view name() const override { return "round-robin"; }

 private:
  std::size_t cursor_ = static_cast<std::size_t>(-1);
};

class fair_random final : public activation_scheduler {
 public:
  std::vector<std::size_t> select(const schedule_context& ctx, rng& random) override {
    const auto live = live_indices(ctx);
    if (live.empty()) return {};
    std::vector<std::size_t> out;
    for (std::size_t i : live) {
      if (random.flip()) out.push_back(i);
    }
    if (out.empty()) {
      out.push_back(live[random.uniform_int(0, live.size() - 1)]);
    }
    return out;
  }
  std::string_view name() const override { return "fair-random"; }
};

class laggard final : public activation_scheduler {
 public:
  std::vector<std::size_t> select(const schedule_context& ctx, rng&) override {
    const auto live = live_indices(ctx);
    if (live.empty()) return {};
    geom::vec2 centroid{};
    for (std::size_t i : live) centroid += ctx.positions[i];
    centroid = centroid / static_cast<double>(live.size());
    std::size_t pick = live.front();
    double best = -1.0;
    for (std::size_t i : live) {
      const double d = geom::distance(ctx.positions[i], centroid);
      if (d > best) {
        best = d;
        pick = i;
      }
    }
    return {pick};
  }
  std::string_view name() const override { return "laggard"; }
};

class half_alternating final : public activation_scheduler {
 public:
  std::vector<std::size_t> select(const schedule_context& ctx, rng&) override {
    const auto live = live_indices(ctx);
    if (live.empty()) return {};
    const std::size_t half = (live.size() + 1) / 2;
    std::vector<std::size_t> out;
    if (ctx.round % 2 == 0) {
      out.assign(live.begin(), live.begin() + half);
    } else {
      out.assign(live.begin() + (live.size() - half), live.end());
    }
    return out;
  }
  std::string_view name() const override { return "half-alternating"; }
};

class odd_even final : public activation_scheduler {
 public:
  std::vector<std::size_t> select(const schedule_context& ctx, rng&) override {
    std::vector<std::size_t> out;
    const std::size_t parity = ctx.round % 2;
    for (std::size_t i = 0; i < ctx.live.size(); ++i) {
      if (ctx.live[i] && i % 2 == parity) out.push_back(i);
    }
    if (out.empty()) return live_indices(ctx);  // one parity fully crashed
    return out;
  }
  std::string_view name() const override { return "odd-even"; }
};

}  // namespace

std::unique_ptr<activation_scheduler> make_synchronous() {
  return std::make_unique<synchronous>();
}
std::unique_ptr<activation_scheduler> make_round_robin() {
  return std::make_unique<round_robin>();
}
std::unique_ptr<activation_scheduler> make_fair_random() {
  return std::make_unique<fair_random>();
}
std::unique_ptr<activation_scheduler> make_laggard() {
  return std::make_unique<laggard>();
}
std::unique_ptr<activation_scheduler> make_half_alternating() {
  return std::make_unique<half_alternating>();
}

std::unique_ptr<activation_scheduler> make_odd_even() {
  return std::make_unique<odd_even>();
}

const std::vector<scheduler_factory>& all_schedulers() {
  static const std::vector<scheduler_factory> factories = {
      {"synchronous", make_synchronous},
      {"round-robin", make_round_robin},
      {"fair-random", make_fair_random},
      {"laggard", make_laggard},
      {"half-alternating", make_half_alternating},
      {"odd-even", make_odd_even},
  };
  return factories;
}

}  // namespace gather::sim
