// sim_spec: the single aggregate describing one simulation run, and the
// run()/run_async() free functions that execute it.
//
// Every engine entry point -- the ATOM engine, the ASYNC engine, the
// campaign runner's cells and the CLI tools -- is reachable by filling in a
// sim_spec and calling run() (or run_async()).  The aggregate owns no
// polymorphic pieces: the algorithm and the adversaries are non-owning
// pointers, so one scheduler/movement/crash instance can be reused across
// specs.
//
//   sim::sim_spec spec;
//   spec.initial = pts;
//   spec.algorithm = &algo;
//   spec.scheduler = sched.get();
//   spec.movement = move.get();
//   spec.crash = crash.get();
//   spec.options.seed = 7;
//   spec.sink = &jsonl;            // optional: structured event stream
//   spec.metrics = &registry;      // optional: merged per-run counters
//   const sim::sim_result res = sim::run(spec);
#pragma once

#include <cstdint>
#include <vector>

#include "obs/events.h"
#include "obs/metrics_registry.h"
#include "obs/profile.h"
#include "sim/async_engine.h"
#include "sim/engine.h"

namespace gather::sim {

struct sim_spec {
  /// Initial robot positions (n >= 2 for a meaningful run).
  std::vector<geom::vec2> initial;
  /// Required: the gathering algorithm under test.
  const core::gathering_algorithm* algorithm = nullptr;
  /// Required by run(); unused by run_async() (the ASYNC adversary schedules
  /// per-robot phase events itself).
  activation_scheduler* scheduler = nullptr;
  /// Required: the movement adversary.
  movement_adversary* movement = nullptr;
  /// Required: the crash policy (sim::make_no_crash() for fault-free runs).
  crash_policy* crash = nullptr;
  /// ATOM engine knobs (seed, delta, round budget, online checks).
  sim_options options;
  /// ASYNC engine knobs; read only by run_async() (including its own seed
  /// and delta_fraction -- the two engines' option sets stay independent).
  async_options async;
  /// Optional transient-fault injector (ATOM only; see sim/adversary_ext.h).
  perturbation_policy* perturbation = nullptr;
  /// Optional byzantine control (ATOM only; see sim/adversary_ext.h).
  byzantine_policy* byzantine = nullptr;
  /// Optional structured event stream (nullptr = near-zero overhead).
  obs::event_sink* sink = nullptr;
  /// Optional external registry; the run's counters/histograms merge into it.
  obs::metrics_registry* metrics = nullptr;
  /// Optional: enable GATHER_PROF hot-path timers for the duration of the
  /// run, recording into this registry (current thread only).
  obs::prof_registry* profile = nullptr;
  /// Stamped on every emitted event (campaigns use the cell index).
  std::uint64_t run_id = 0;
};

/// Execute `spec` on the ATOM engine.  Throws std::invalid_argument when a
/// required piece (algorithm, scheduler, movement, crash, >= 1 robot) is
/// missing.
[[nodiscard]] sim_result run(const sim_spec& spec);

/// Execute `spec` on the ASYNC engine (spec.async supplies the knobs).
/// Throws std::invalid_argument when algorithm, movement or crash is
/// missing.
[[nodiscard]] async_result run_async(const sim_spec& spec);

}  // namespace gather::sim
