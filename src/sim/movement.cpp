#include "sim/movement.h"

#include <algorithm>
#include <vector>

namespace gather::sim {

geom::vec2 movement_adversary::stop_point(geom::vec2 from, geom::vec2 dest,
                                          double delta, rng& random) {
  const double want = geom::distance(from, dest);
  // Exact-zero guard: want == 0 means from == dest bit-for-bit.
  if (want <= delta || want == 0.0) return dest;  // gather-lint: allow(R3)
  const double gone = std::clamp(travelled(want, delta, random), delta, want);
  if (gone >= want) return dest;
  return from + (gone / want) * (dest - from);
}

namespace {

class full_movement final : public movement_adversary {
 public:
  double travelled(double want, double, rng&) override { return want; }
  std::string_view name() const override { return "full"; }
};

class minimal_movement final : public movement_adversary {
 public:
  double travelled(double want, double delta, rng&) override {
    return std::min(want, delta);
  }
  std::string_view name() const override { return "minimal"; }
};

class random_stop final : public movement_adversary {
 public:
  double travelled(double want, double delta, rng& random) override {
    if (want <= delta) return want;
    return random.uniform(delta, want);
  }
  std::string_view name() const override { return "random-stop"; }
};

class fraction_stop final : public movement_adversary {
 public:
  explicit fraction_stop(double fraction) : fraction_(fraction) {}
  double travelled(double want, double delta, rng&) override {
    if (want <= delta) return want;
    return std::clamp(fraction_ * want, delta, want);
  }
  std::string_view name() const override { return "fraction"; }

 private:
  double fraction_;
};

}  // namespace

std::unique_ptr<movement_adversary> make_full_movement() {
  return std::make_unique<full_movement>();
}
std::unique_ptr<movement_adversary> make_minimal_movement() {
  return std::make_unique<minimal_movement>();
}
std::unique_ptr<movement_adversary> make_random_stop() {
  return std::make_unique<random_stop>();
}

std::unique_ptr<movement_adversary> make_fraction_stop(double fraction) {
  return std::make_unique<fraction_stop>(fraction);
}

const std::vector<movement_factory>& all_movements() {
  static const std::vector<movement_factory> factories = {
      {"full", make_full_movement},
      {"minimal", make_minimal_movement},
      {"random-stop", make_random_stop},
  };
  return factories;
}

}  // namespace gather::sim
