#include "sim/adversary_ext.h"

#include <algorithm>
#include <cmath>

namespace gather::sim {

namespace {

class scatter_at final : public perturbation_policy {
 public:
  scatter_at(std::vector<std::size_t> rounds, double box)
      : rounds_(std::move(rounds)), box_(box) {}

  std::vector<std::pair<std::size_t, geom::vec2>> perturb(
      std::size_t round, const std::vector<geom::vec2>& positions,
      const std::vector<std::uint8_t>& live, rng& random) override {
    if (std::find(rounds_.begin(), rounds_.end(), round) == rounds_.end()) {
      return {};
    }
    std::vector<std::pair<std::size_t, geom::vec2>> out;
    for (std::size_t i = 0; i < positions.size(); ++i) {
      if (!live[i]) continue;  // crashed robots cannot be corrupted into moving
      out.push_back({i, {random.uniform(-box_, box_), random.uniform(-box_, box_)}});
    }
    return out;
  }

 private:
  std::vector<std::size_t> rounds_;
  double box_;
};

class nudge_at final : public perturbation_policy {
 public:
  nudge_at(std::vector<std::size_t> rounds, double magnitude)
      : rounds_(std::move(rounds)), magnitude_(magnitude) {}

  std::vector<std::pair<std::size_t, geom::vec2>> perturb(
      std::size_t round, const std::vector<geom::vec2>& positions,
      const std::vector<std::uint8_t>& live, rng& random) override {
    if (std::find(rounds_.begin(), rounds_.end(), round) == rounds_.end()) {
      return {};
    }
    std::vector<std::size_t> live_idx;
    for (std::size_t i = 0; i < positions.size(); ++i) {
      if (live[i]) live_idx.push_back(i);
    }
    if (live_idx.empty()) return {};
    const std::size_t pick = live_idx[random.uniform_int(0, live_idx.size() - 1)];
    const double ang = random.uniform(0.0, 6.283185307179586);
    const double r = random.uniform(0.0, magnitude_);
    const geom::vec2 delta{r * std::cos(ang), r * std::sin(ang)};
    return {{pick, positions[pick] + delta}};
  }

 private:
  std::vector<std::size_t> rounds_;
  double magnitude_;
};

class runaway_byzantine final : public byzantine_policy {
 public:
  runaway_byzantine(std::vector<std::size_t> robots, double step_fraction)
      : robots_(std::move(robots)), step_(step_fraction) {}

  bool is_byzantine(std::size_t robot) const override {
    return std::find(robots_.begin(), robots_.end(), robot) != robots_.end();
  }

  geom::vec2 destination(std::size_t, const config::configuration& c,
                         geom::vec2 self, rng&) override {
    geom::vec2 centroid{};
    int count = 0;
    for (const config::occupied_point& o : c.occupied()) {
      centroid += static_cast<double>(o.multiplicity) * o.position;
      count += o.multiplicity;
    }
    centroid = centroid / std::max(count, 1);
    geom::vec2 away = self - centroid;
    const double len = geom::norm(away);
    if (len < 1e-12) away = {1.0, 0.0};
    else away = away / len;
    return self + step_ * std::max(c.diameter(), 1e-3) * away;
  }

 private:
  std::vector<std::size_t> robots_;
  double step_;
};

class splitter_byzantine final : public byzantine_policy {
 public:
  explicit splitter_byzantine(std::vector<std::size_t> robots)
      : robots_(std::move(robots)) {}

  bool is_byzantine(std::size_t robot) const override {
    return std::find(robots_.begin(), robots_.end(), robot) != robots_.end();
  }

  geom::vec2 destination(std::size_t, const config::configuration& c,
                         geom::vec2 self, rng& random) override {
    // Keep two poles alive: jump next to the occupied location farthest from
    // the current heaviest one, offset a little so no multiplicity forms.
    const config::occupied_point* heavy = &c.occupied().front();
    for (const config::occupied_point& o : c.occupied()) {
      if (o.multiplicity > heavy->multiplicity) heavy = &o;
    }
    const config::occupied_point* far = heavy;
    double best = -1.0;
    for (const config::occupied_point& o : c.occupied()) {
      const double d = geom::distance(o.position, heavy->position);
      if (d > best) {
        best = d;
        far = &o;
      }
    }
    const double ang = random.uniform(0.0, 6.283185307179586);
    const double r = 0.15 * std::max(c.diameter(), 1e-3);
    (void)self;
    return far->position + geom::vec2{r * std::cos(ang), r * std::sin(ang)};
  }

 private:
  std::vector<std::size_t> robots_;
};

}  // namespace

std::unique_ptr<perturbation_policy> make_scatter_at(std::vector<std::size_t> rounds,
                                                     double box) {
  return std::make_unique<scatter_at>(std::move(rounds), box);
}

std::unique_ptr<perturbation_policy> make_nudge_at(std::vector<std::size_t> rounds,
                                                   double magnitude) {
  return std::make_unique<nudge_at>(std::move(rounds), magnitude);
}

std::unique_ptr<byzantine_policy> make_runaway_byzantine(
    std::vector<std::size_t> robots, double step_fraction) {
  return std::make_unique<runaway_byzantine>(std::move(robots), step_fraction);
}

std::unique_ptr<byzantine_policy> make_splitter_byzantine(
    std::vector<std::size_t> robots) {
  return std::make_unique<splitter_byzantine>(std::move(robots));
}

}  // namespace gather::sim
