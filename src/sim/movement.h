// Movement adversary for the MOVE phase.
//
// The model (paper, Sec. II) guarantees only that an activated robot either
// reaches its destination (when closer than the unknown constant delta > 0)
// or travels at least delta towards it; the adversary may stop it anywhere
// beyond that.  A movement adversary chooses the actually travelled distance.
#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "geometry/vec2.h"
#include "sim/rng.h"

namespace gather::sim {

class movement_adversary {
 public:
  virtual ~movement_adversary() = default;

  /// Distance actually travelled by a robot that wants to cover `want` and is
  /// guaranteed `delta`.  Must return `want` when `want <= delta`, otherwise
  /// a value in [delta, want].
  [[nodiscard]] virtual double travelled(double want, double delta, rng& random) = 0;

  /// Where the robot actually ends up when moving from `from` towards
  /// `dest`.  The default places it `travelled(...)` along the straight
  /// segment; geometry-aware adversaries (e.g. ones that park robots on top
  /// of other robots) may override this directly, subject to the same model
  /// contract: reach `dest` when it is closer than `delta`, otherwise stop no
  /// earlier than `delta` along the segment.
  [[nodiscard]] virtual geom::vec2 stop_point(geom::vec2 from, geom::vec2 dest,
                                              double delta, rng& random);

  [[nodiscard]] virtual std::string_view name() const = 0;
};

/// Robots always reach their destination (the rigid-movement special case).
[[nodiscard]] std::unique_ptr<movement_adversary> make_full_movement();

/// Robots are stopped as early as allowed: after exactly delta.
[[nodiscard]] std::unique_ptr<movement_adversary> make_minimal_movement();

/// Robots are stopped uniformly at random within [delta, want].
[[nodiscard]] std::unique_ptr<movement_adversary> make_random_stop();

/// Robots cover a fixed fraction of their intended path (clamped to the
/// [delta, want] contract).  fraction in (0, 1]; 0.5 models chronically
/// interrupted robots with deterministic replay.
[[nodiscard]] std::unique_ptr<movement_adversary> make_fraction_stop(double fraction);

struct movement_factory {
  std::string_view name;
  std::unique_ptr<movement_adversary> (*make)();
};
[[nodiscard]] const std::vector<movement_factory>& all_movements();

}  // namespace gather::sim
