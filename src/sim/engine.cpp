#include "sim/engine.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "core/predicates.h"
#include "obs/events.h"
#include "obs/metrics_registry.h"
#include "sim/adversary_ext.h"
#include "sim/frame.h"
#include "sim/spec.h"
#include "util/check.h"

namespace gather::sim {

std::ostream& operator<<(std::ostream& os, sim_status s) {
  return os << to_string(s);
}

engine::engine(const sim_spec& spec)
    : positions_(spec.initial),
      live_(positions_.size(), 1),
      algo_(spec.algorithm),
      scheduler_(spec.scheduler),
      movement_(spec.movement),
      crash_(spec.crash),
      opts_(spec.options),
      perturbation_(spec.perturbation),
      byzantine_(spec.byzantine),
      sink_(spec.sink),
      metrics_(spec.metrics),
      run_id_(spec.run_id) {
  if (algo_ == nullptr) throw std::invalid_argument("sim_spec: algorithm unset");
  if (scheduler_ == nullptr) throw std::invalid_argument("sim_spec: scheduler unset");
  if (movement_ == nullptr) throw std::invalid_argument("sim_spec: movement unset");
  if (crash_ == nullptr) throw std::invalid_argument("sim_spec: crash unset");
  if (positions_.empty()) throw std::invalid_argument("sim_spec: no robots");
  const configuration c(positions_);
  delta_abs_ = std::max(opts_.delta_fraction * c.diameter(), 1e-12);
  // The model's delta gives the run an absolute length scale: robots within a
  // vanishing fraction of it are physically indistinguishable.  Without this
  // floor, per-robot frame round-off (~1 ulp of the coordinate magnitude)
  // could keep nearly-gathered robots forever "distinct" once the swarm
  // diameter has collapsed below the coordinate noise.
  config_.set_tol_refresh(1e-9 * delta_abs_);
  // Before the first round every robot counts as freshly written.
  scratch_moved_.assign(positions_.size(), 1);
}

const configuration& engine::current_configuration() {
  last_report_ = config_.apply_moves(positions_, scratch_moved_);
  scratch_moved_.assign(positions_.size(), 0);
  return config_;
}

bool engine::gathered(const configuration& c) const {
  // Def. 9: all live robots share one location and the algorithm instructs
  // the robots there to stay.
  const vec2* point = nullptr;
  vec2 first{};
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    if (!live_[i]) continue;
    // Byzantine robots are not required to gather (only correct ones are).
    if (byzantine_ != nullptr && byzantine_->is_byzantine(i)) continue;
    const vec2 p = c.snapped(positions_[i]);
    if (point == nullptr) {
      first = p;
      point = &first;
    } else if (!c.tolerance().same_point(*point, p)) {
      return false;
    }
  }
  if (point == nullptr) return false;  // no live robot
  return c.tolerance().same_point(algo_->destination({c, *point}), *point);
}

sim_result engine::run() {
  sim_result result;
  result.delta_abs = delta_abs_;
  rng random(opts_.seed);
  std::vector<geom::similarity> frames;
  if (opts_.local_frames) frames = random_frames(positions_.size(), random);

  // Per-round facts accumulate into a run-local registry (stable references,
  // O(1) updates); the bespoke sim_result counters are copied out of it at
  // the end and the whole registry merges into the external one, if any.
  obs::metrics_registry local;
  std::uint64_t& m_rounds = local.counter("sim.rounds");
  std::uint64_t& m_activations = local.counter("sim.activations");
  std::uint64_t& m_truncated = local.counter("sim.moves_truncated");
  std::uint64_t& m_crashes = local.counter("sim.crashes");
  std::uint64_t& m_wait_free = local.counter("sim.wait_free_violations");
  std::uint64_t& m_bivalent = local.counter("sim.bivalent_entries");
  std::uint64_t& m_transitions = local.counter("sim.class_transitions");
  obs::histogram& m_active = local.hist("sim.active_per_round", obs::pow2_bounds(10));
  local.counter("sim.runs") = 1;
  local.gauge("sim.delta_abs") = delta_abs_;

  const bool initial_bivalent =
      config::classify(configuration(positions_)).cls == config_class::bivalent;
  std::vector<std::size_t> starving(positions_.size(), 0);
  bool have_prev_cls = false;
  config_class prev_cls = config_class::asymmetric;

  for (std::size_t round = 0; round < opts_.max_rounds; ++round) {
    // Transient faults strike before anyone observes this round.
    if (perturbation_ != nullptr) {
      for (const auto& [idx, pos] :
           perturbation_->perturb(round, positions_, live_, random)) {
        if (idx < positions_.size() && live_[idx]) {
          positions_[idx] = pos;
          scratch_moved_[idx] = 1;
        }
      }
    }
    const configuration& c = current_configuration();
#ifdef GATHER_CHECK_INVARIANTS
    {
      // Robots are conserved: every round's snapshot accounts for exactly n
      // robots (crashed ones stay visible), and the liveness mask tracks them.
      int total_multiplicity = 0;
      for (const auto& op : c.occupied()) total_multiplicity += op.multiplicity;
      GATHER_CHECK(static_cast<std::size_t>(total_multiplicity) ==
                       positions_.size(),
                   "per-round multiplicity conservation (sum mult == n)");
      GATHER_CHECK(live_.size() == positions_.size(),
                   "liveness mask covers every robot");
    }
#endif
    // Physically merge robots that the (strong multiplicity) observation
    // already identifies as co-located; this keeps accumulated floating-point
    // noise from splitting a formed multiplicity point across rounds.
    // Skipped when provably an identity: the last *executed* snap pass
    // changed nothing, and a no_op round means the positions (and the
    // canonical state the snap map is derived from) are bitwise identical to
    // the ones that pass ran on -- the deterministic snap would reproduce
    // them unchanged.  (no_op alone is not enough: the first snap after a
    // change can itself move positions.)
    if (!(last_report_.no_op && snap_identity_)) {
      bool snap_changed = false;
      for (std::size_t i = 0; i < positions_.size(); ++i) {
        const vec2 s = c.snapped(positions_[i]);
        if (s.x != positions_[i].x || s.y != positions_[i].y) {
          positions_[i] = s;
          scratch_moved_[i] = 1;
          snap_changed = true;
        }
      }
      snap_identity_ = !snap_changed;
    }
    const config_class cls = config::classify(c).cls;
    result.class_history.push_back(cls);
    if (sink_ != nullptr) {
      const auto live_count = static_cast<std::uint64_t>(
          std::count(live_.begin(), live_.end(), std::uint8_t{1}));
      sink_->on_event(
          obs::event::round_start(run_id_, round, enum_name(cls), live_count));
    }
    if (have_prev_cls && cls != prev_cls) {
      ++m_transitions;
      if (sink_ != nullptr) {
        sink_->on_event(obs::event::class_transition(
            run_id_, round, enum_name(prev_cls), enum_name(cls)));
      }
    }
    have_prev_cls = true;
    prev_cls = cls;

    if (gathered(c)) {
      result.status = sim_status::gathered;
      result.rounds = round;
      for (std::size_t i = 0; i < positions_.size(); ++i) {
        if (live_[i]) {
          result.gather_point = c.snapped(positions_[i]);
          break;
        }
      }
      if (sink_ != nullptr) {
        sink_->on_event(obs::event::gathered(
            run_id_, round, result.gather_point.x, result.gather_point.y));
      }
      break;
    }

    // One destination computation per occupied location per round: all
    // active robots observe the same round-start configuration, so (in the
    // global frame) their decisions coincide with these.
    const auto dests = core::destinations(c, *algo_);
    std::vector<vec2>& stationary = scratch_stationary_;
    stationary.clear();
    for (std::size_t i = 0; i < dests.size(); ++i) {
      if (c.tolerance().same_point(dests[i], c.occupied()[i].position)) {
        stationary.push_back(c.occupied()[i].position);
      }
    }
    if (opts_.check_wait_freeness && cls != config_class::bivalent &&
        stationary.size() > 1) {
      ++m_wait_free;
      if (sink_ != nullptr) {
        sink_->on_event(
            obs::event::lemma_violation(run_id_, round, "wait-freeness"));
      }
    }
    if (!initial_bivalent && cls == config_class::bivalent) {
      ++m_bivalent;
      if (sink_ != nullptr) {
        sink_->on_event(
            obs::event::lemma_violation(run_id_, round, "bivalent-entry"));
      }
    }
    // Fixpoint: every occupied location instructed to stay, yet not gathered
    // (live robots on >= 2 locations).  Nothing can ever change; stop early.
    // (Not a fixpoint when external actors -- byzantine robots or transient
    // faults -- can still reshape the configuration.)
    if (byzantine_ == nullptr && perturbation_ == nullptr &&
        stationary.size() == c.distinct_count()) {
      result.status = sim_status::stalled;
      result.rounds = round;
      break;
    }

    // 1. Crash injection.
    const vec2* elected = stationary.empty() ? nullptr : &stationary.front();
    const crash_context cctx{round, positions_, live_, elected};
    std::size_t live_count = static_cast<std::size_t>(
        std::count(live_.begin(), live_.end(), std::uint8_t{1}));
    for (std::size_t idx : crash_->crashes(cctx, random)) {
      if (idx >= live_.size() || !live_[idx]) continue;
      if (live_count <= 1) break;  // the model requires f < n
      live_[idx] = 0;
      --live_count;
      ++m_crashes;
      if (sink_ != nullptr) {
        sink_->on_event(
            obs::event::crash(run_id_, round, static_cast<std::int64_t>(idx)));
      }
    }
    if (live_count == 0) {
      result.status = sim_status::all_crashed;
      result.rounds = round;
      break;
    }

    // 2. Activation.
    const schedule_context sctx{round, positions_, live_};
    std::vector<std::uint8_t>& active = scratch_active_;
    active.assign(positions_.size(), 0);
    for (std::size_t idx : scheduler_->select(sctx, random)) {
      if (idx < active.size() && live_[idx]) active[idx] = 1;
    }
    // Bounded-fairness backstop.
    for (std::size_t i = 0; i < positions_.size(); ++i) {
      if (live_[i] && starving[i] >= opts_.fairness_bound) active[i] = 1;
    }
    if (std::find(active.begin(), active.end(), std::uint8_t{1}) == active.end()) {
      for (std::size_t i = 0; i < positions_.size(); ++i) {
        if (live_[i]) {
          active[i] = 1;
          break;
        }
      }
    }
    m_active.observe(static_cast<double>(
        std::count(active.begin(), active.end(), std::uint8_t{1})));

    if (opts_.record_trace) {
      result.trace.push_back({round, positions_, active, live_, cls});
    }

    // 3. Atomic Look-Compute-Move against the round-start configuration.
    std::vector<vec2>& next = scratch_next_;
    next = positions_;  // copy-assign reuses capacity
    for (std::size_t i = 0; i < positions_.size(); ++i) {
      if (!active[i]) {
        if (live_[i]) ++starving[i];
        continue;
      }
      starving[i] = 0;
      ++m_activations;
      if (sink_ != nullptr) {
        sink_->on_event(obs::event::activation(run_id_, round,
                                               static_cast<std::int64_t>(i)));
      }
      const vec2 self = c.snapped(positions_[i]);
      vec2 dest;
      if (byzantine_ != nullptr && byzantine_->is_byzantine(i)) {
        dest = byzantine_->destination(i, c, self, random);
      } else if (opts_.local_frames) {
        // LOOK through the robot's own similarity frame; move back through
        // its inverse.  local_config_ keeps the default (spread-scaled)
        // tolerance policy, so apply_moves reproduces configuration(pts)
        // bit for bit while reusing the buffers across robots and rounds.
        const geom::similarity& f = frames[i];
        std::vector<vec2>& local_pts = scratch_local_pts_;
        local_pts.resize(positions_.size());
        f.apply_batch(positions_.data(), positions_.size(), local_pts.data());
        local_config_.apply_moves(local_pts);
        const configuration& local_c = local_config_;
        const vec2 local_dest =
            algo_->destination({local_c, local_c.snapped(f.apply(self))});
        dest = f.invert(local_dest);
      } else {
        // Look up the memoized per-location destination (grid-served first
        // tolerance match == the former linear first-match scan).
        dest = self;
        if (const auto k = c.first_occupied_match(self)) dest = dests[*k];
      }
      next[i] = movement_->stop_point(positions_[i], dest, delta_abs_, random);
      scratch_moved_[i] = 1;
      if (!c.tolerance().same_point(next[i], dest)) {
        ++m_truncated;
        if (sink_ != nullptr) {
          sink_->on_event(obs::event::move_truncated(
              run_id_, round, static_cast<std::int64_t>(i),
              geom::distance(positions_[i], dest),
              geom::distance(positions_[i], next[i])));
        }
      }
    }
    // Swap (not move): `next` aliases scratch_next_, and swapping keeps its
    // capacity parked there for the following round.
    std::swap(positions_, next);
    result.rounds = round + 1;
  }

  result.final_positions = positions_;
  result.final_live = live_;
  if (result.status != sim_status::gathered && initial_bivalent) {
    result.status = sim_status::started_bivalent;
  }

  m_rounds = result.rounds;
  if (result.status == sim_status::gathered) {
    local.counter("sim.gathered") = 1;
    local.hist("sim.rounds_to_gather", obs::pow2_bounds(16))
        .observe(static_cast<double>(result.rounds));
  }
  result.crashes = m_crashes;
  result.wait_free_violations = m_wait_free;
  result.bivalent_entries = m_bivalent;
  if (metrics_ != nullptr) metrics_->merge(local);
  return result;
}

sim_result run(const sim_spec& spec) {
  obs::prof_session profiling(spec.profile);
  engine e(spec);
  return e.run();
}

}  // namespace gather::sim
