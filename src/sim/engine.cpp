#include "sim/engine.h"

#include <algorithm>

#include "core/predicates.h"
#include "sim/adversary_ext.h"
#include "sim/frame.h"

namespace gather::sim {

std::string_view to_string(sim_status s) {
  switch (s) {
    case sim_status::gathered: return "gathered";
    case sim_status::round_limit: return "round-limit";
    case sim_status::stalled: return "stalled";
    case sim_status::all_crashed: return "all-crashed";
    case sim_status::started_bivalent: return "started-bivalent";
  }
  return "?";
}

engine::engine(std::vector<vec2> initial, const gathering_algorithm& algo,
               activation_scheduler& scheduler, movement_adversary& movement,
               crash_policy& crash, sim_options opts)
    : positions_(std::move(initial)),
      live_(positions_.size(), 1),
      algo_(algo),
      scheduler_(scheduler),
      movement_(movement),
      crash_(crash),
      opts_(opts) {
  const configuration c(positions_);
  delta_abs_ = std::max(opts_.delta_fraction * c.diameter(), 1e-12);
}

configuration engine::current_configuration() const {
  // The model's delta gives the run an absolute length scale: robots within a
  // vanishing fraction of it are physically indistinguishable.  Without this
  // floor, per-robot frame round-off (~1 ulp of the coordinate magnitude)
  // could keep nearly-gathered robots forever "distinct" once the swarm
  // diameter has collapsed below the coordinate noise.
  geom::tol t = geom::tol::for_points(positions_);
  t.abs_floor = std::max(t.abs_floor, 1e-9 * delta_abs_);
  return configuration(positions_, t);
}

bool engine::gathered(const configuration& c) const {
  // Def. 9: all live robots share one location and the algorithm instructs
  // the robots there to stay.
  const vec2* point = nullptr;
  vec2 first{};
  for (std::size_t i = 0; i < positions_.size(); ++i) {
    if (!live_[i]) continue;
    // Byzantine robots are not required to gather (only correct ones are).
    if (byzantine_ != nullptr && byzantine_->is_byzantine(i)) continue;
    const vec2 p = c.snapped(positions_[i]);
    if (point == nullptr) {
      first = p;
      point = &first;
    } else if (!c.tolerance().same_point(*point, p)) {
      return false;
    }
  }
  if (point == nullptr) return false;  // no live robot
  return c.tolerance().same_point(algo_.destination({c, *point}), *point);
}

sim_result engine::run() {
  sim_result result;
  rng random(opts_.seed);
  std::vector<geom::similarity> frames;
  if (opts_.local_frames) frames = random_frames(positions_.size(), random);

  const bool initial_bivalent =
      config::classify(configuration(positions_)).cls == config_class::bivalent;
  std::vector<std::size_t> starving(positions_.size(), 0);

  for (std::size_t round = 0; round < opts_.max_rounds; ++round) {
    // Transient faults strike before anyone observes this round.
    if (perturbation_ != nullptr) {
      for (const auto& [idx, pos] :
           perturbation_->perturb(round, positions_, live_, random)) {
        if (idx < positions_.size() && live_[idx]) positions_[idx] = pos;
      }
    }
    const configuration c = current_configuration();
    // Physically merge robots that the (strong multiplicity) observation
    // already identifies as co-located; this keeps accumulated floating-point
    // noise from splitting a formed multiplicity point across rounds.
    for (vec2& p : positions_) p = c.snapped(p);
    const config_class cls = config::classify(c).cls;
    result.class_history.push_back(cls);

    if (gathered(c)) {
      result.status = sim_status::gathered;
      result.rounds = round;
      for (std::size_t i = 0; i < positions_.size(); ++i) {
        if (live_[i]) {
          result.gather_point = c.snapped(positions_[i]);
          break;
        }
      }
      break;
    }

    // One destination computation per occupied location per round: all
    // active robots observe the same round-start configuration, so (in the
    // global frame) their decisions coincide with these.
    const auto dests = core::destinations(c, algo_);
    std::vector<vec2> stationary;
    for (std::size_t i = 0; i < dests.size(); ++i) {
      if (c.tolerance().same_point(dests[i], c.occupied()[i].position)) {
        stationary.push_back(c.occupied()[i].position);
      }
    }
    if (opts_.check_wait_freeness && cls != config_class::bivalent &&
        stationary.size() > 1) {
      ++result.wait_free_violations;
    }
    if (!initial_bivalent && cls == config_class::bivalent) {
      ++result.bivalent_entries;
    }
    // Fixpoint: every occupied location instructed to stay, yet not gathered
    // (live robots on >= 2 locations).  Nothing can ever change; stop early.
    // (Not a fixpoint when external actors -- byzantine robots or transient
    // faults -- can still reshape the configuration.)
    if (byzantine_ == nullptr && perturbation_ == nullptr &&
        stationary.size() == c.distinct_count()) {
      result.status = sim_status::stalled;
      result.rounds = round;
      break;
    }

    // 1. Crash injection.
    const vec2* elected = stationary.empty() ? nullptr : &stationary.front();
    const crash_context cctx{round, positions_, live_, elected};
    std::size_t live_count = static_cast<std::size_t>(
        std::count(live_.begin(), live_.end(), std::uint8_t{1}));
    for (std::size_t idx : crash_.crashes(cctx, random)) {
      if (idx >= live_.size() || !live_[idx]) continue;
      if (live_count <= 1) break;  // the model requires f < n
      live_[idx] = 0;
      --live_count;
      ++result.crashes;
    }
    if (live_count == 0) {
      result.status = sim_status::all_crashed;
      result.rounds = round;
      break;
    }

    // 2. Activation.
    const schedule_context sctx{round, positions_, live_};
    std::vector<std::uint8_t> active(positions_.size(), 0);
    for (std::size_t idx : scheduler_.select(sctx, random)) {
      if (idx < active.size() && live_[idx]) active[idx] = 1;
    }
    // Bounded-fairness backstop.
    for (std::size_t i = 0; i < positions_.size(); ++i) {
      if (live_[i] && starving[i] >= opts_.fairness_bound) active[i] = 1;
    }
    if (std::find(active.begin(), active.end(), std::uint8_t{1}) == active.end()) {
      for (std::size_t i = 0; i < positions_.size(); ++i) {
        if (live_[i]) {
          active[i] = 1;
          break;
        }
      }
    }

    if (opts_.record_trace) {
      result.trace.push_back({round, positions_, active, live_, cls});
    }

    // 3. Atomic Look-Compute-Move against the round-start configuration.
    std::vector<vec2> next = positions_;
    for (std::size_t i = 0; i < positions_.size(); ++i) {
      if (!active[i]) {
        if (live_[i]) ++starving[i];
        continue;
      }
      starving[i] = 0;
      const vec2 self = c.snapped(positions_[i]);
      vec2 dest;
      if (byzantine_ != nullptr && byzantine_->is_byzantine(i)) {
        dest = byzantine_->destination(i, c, self, random);
      } else if (opts_.local_frames) {
        // LOOK through the robot's own similarity frame; move back through
        // its inverse.
        const geom::similarity& f = frames[i];
        std::vector<vec2> local;
        local.reserve(positions_.size());
        for (const vec2& p : positions_) local.push_back(f.apply(p));
        const configuration local_c(local);
        const vec2 local_dest =
            algo_.destination({local_c, local_c.snapped(f.apply(self))});
        dest = f.invert(local_dest);
      } else {
        // Look up the memoized per-location destination.
        dest = self;
        for (std::size_t k = 0; k < c.occupied().size(); ++k) {
          if (c.tolerance().same_point(c.occupied()[k].position, self)) {
            dest = dests[k];
            break;
          }
        }
      }
      next[i] = movement_.stop_point(positions_[i], dest, delta_abs_, random);
    }
    positions_ = std::move(next);
    result.rounds = round + 1;
  }

  result.final_positions = positions_;
  result.final_live = live_;
  if (result.status != sim_status::gathered && initial_bivalent) {
    result.status = sim_status::started_bivalent;
  }
  return result;
}

sim_result simulate(std::vector<vec2> initial, const gathering_algorithm& algo,
                    activation_scheduler& scheduler, movement_adversary& movement,
                    crash_policy& crash, const sim_options& opts) {
  engine e(std::move(initial), algo, scheduler, movement, crash, opts);
  return e.run();
}

}  // namespace gather::sim
