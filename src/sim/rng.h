// Deterministic random source for simulations.
//
// Every stochastic component (schedulers, movement adversaries, crash
// policies, workload generators, local frames) draws from an explicitly
// seeded generator so that every experiment in the benchmark harness is
// exactly reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace gather::sim {

class rng {
 public:
  explicit rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(engine_);
  }

  /// Bernoulli trial.
  [[nodiscard]] bool flip(double p = 0.5) {
    return std::bernoulli_distribution(p)(engine_);
  }

  /// A fresh independent stream (for per-robot or per-run sub-sources).
  [[nodiscard]] rng fork() { return rng(engine_()); }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace gather::sim
