// Run metrics used by experiments: spread, convergence measures, and
// class-transition accounting for validating Lemmas 5.3-5.9.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "config/classify.h"
#include "geometry/vec2.h"

namespace gather::sim {

/// Largest pairwise distance among the given points.
[[nodiscard]] double spread(const std::vector<geom::vec2>& pts);

/// Largest pairwise distance among live points only.
[[nodiscard]] double live_spread(const std::vector<geom::vec2>& pts,
                                 const std::vector<std::uint8_t>& live);

/// Sum of pairwise distances (the Weber-flavoured potential).
[[nodiscard]] double sum_pairwise(const std::vector<geom::vec2>& pts);

/// All per-round statistics of one recorded round, merged into a single
/// struct computed by one call (`compute_round_stats`): the live-robot
/// potentials (spread, sum of pairwise distances) and the largest stack of
/// live robots.  `sim::analysis` exposes this same struct as `round_metrics`.
struct round_stats {
  std::size_t round = 0;
  config::config_class cls = config::config_class::asymmetric;
  std::size_t live_count = 0;
  double live_spread = 0.0;          ///< max pairwise distance of live robots
  double live_sum_pairwise = 0.0;    ///< Σ pairwise distances of live robots
  int max_live_multiplicity = 0;     ///< largest stack of live robots
};

/// Compute every per-round statistic in one pass over the round's positions
/// and liveness mask.  The live subset is materialized once and shared by the
/// spread and sum-of-pairwise computations.
[[nodiscard]] round_stats compute_round_stats(std::size_t round,
                                              config::config_class cls,
                                              const std::vector<geom::vec2>& pts,
                                              const std::vector<std::uint8_t>& live);

/// 6x6 matrix of observed class transitions along a class history;
/// entry [from][to] counts rounds where the class changed from `from` to
/// `to` (self-transitions included).  Indices follow config_class order.
using transition_matrix = std::array<std::array<std::size_t, 6>, 6>;
[[nodiscard]] transition_matrix count_transitions(
    const std::vector<config::config_class>& history);

/// True when every transition in the history is allowed by the per-class
/// progress lemmas:
///   M   -> M                         (Lemma 5.3, claim C1)
///   L1W -> M | L1W                   (Lemma 5.4, claim C1)
///   QR  -> M | L1W | QR              (Lemma 5.5, claim C1)
///   A   -> M | L1W | QR | A          (Lemma 5.6, claim C1)
///   L2W -> anything except B         (Lemmas 5.7/5.8)
///   B is absorbing for the algorithm (it holds position).
[[nodiscard]] bool transitions_allowed(const std::vector<config::config_class>& history);

}  // namespace gather::sim
