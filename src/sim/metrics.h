// Run metrics used by experiments: spread, convergence measures, and
// class-transition accounting for validating Lemmas 5.3-5.9.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "config/classify.h"
#include "geometry/vec2.h"

namespace gather::sim {

/// Largest pairwise distance among the given points.
[[nodiscard]] double spread(const std::vector<geom::vec2>& pts);

/// Largest pairwise distance among live points only.
[[nodiscard]] double live_spread(const std::vector<geom::vec2>& pts,
                                 const std::vector<std::uint8_t>& live);

/// Sum of pairwise distances (the Weber-flavoured potential).
[[nodiscard]] double sum_pairwise(const std::vector<geom::vec2>& pts);

/// 6x6 matrix of observed class transitions along a class history;
/// entry [from][to] counts rounds where the class changed from `from` to
/// `to` (self-transitions included).  Indices follow config_class order.
using transition_matrix = std::array<std::array<std::size_t, 6>, 6>;
[[nodiscard]] transition_matrix count_transitions(
    const std::vector<config::config_class>& history);

/// True when every transition in the history is allowed by the per-class
/// progress lemmas:
///   M   -> M                         (Lemma 5.3, claim C1)
///   L1W -> M | L1W                   (Lemma 5.4, claim C1)
///   QR  -> M | L1W | QR              (Lemma 5.5, claim C1)
///   A   -> M | L1W | QR | A          (Lemma 5.6, claim C1)
///   L2W -> anything except B         (Lemmas 5.7/5.8)
///   B is absorbing for the algorithm (it holds position).
[[nodiscard]] bool transitions_allowed(const std::vector<config::config_class>& history);

}  // namespace gather::sim
