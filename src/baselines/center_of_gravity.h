// Gravitational baseline (paper, Sec. I; Cohen-Peleg style convergence).
//
// Every robot moves to the center of gravity of the observed configuration.
// This solves *convergence* for any number of robots but not *gathering*:
// the center of gravity is not invariant under partial activations, so under
// a semi-synchronous adversary the robots approach each other forever without
// ever co-locating.  Used as the convergence-vs-gathering comparison baseline
// in the benchmark harness (experiment E4).
#pragma once

#include "core/algorithm.h"

namespace gather::baselines {

class center_of_gravity final : public core::gathering_algorithm {
 public:
  [[nodiscard]] core::vec2 destination(const core::snapshot& s) const override;
  [[nodiscard]] std::string_view name() const override { return "center-of-gravity"; }
};

}  // namespace gather::baselines
