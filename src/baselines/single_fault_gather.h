// Single-crash-tolerant baseline in the style of Agmon-Peleg [1].
//
// The motivating observation of the paper (Sec. I): classic gathering
// algorithms order the robots' moves, so one crashed robot can block everyone
// behind it; Agmon-Peleg repair this for f = 1 by always instructing at
// least *two* robots to move.  This baseline reproduces that structure:
//
//   * multiplicity configurations: robots with a free path move to the unique
//     maximum-multiplicity point; blocked robots *wait* for the path to clear;
//   * otherwise: only the two occupied locations closest to the center of the
//     smallest enclosing circle move (towards that center); everyone else
//     waits for a multiplicity to form.
//
// With f <= 1 crash some designated mover is always live and progress
// continues; with f >= 2 the adversary can crash both movers and the system
// deadlocks -- exactly the failure mode WAIT-FREE-GATHER eliminates.
// The baseline also requires initially distinct locations to be correct,
// mirroring the cited algorithm's assumption.
#pragma once

#include "core/algorithm.h"

namespace gather::baselines {

class single_fault_gather final : public core::gathering_algorithm {
 public:
  [[nodiscard]] core::vec2 destination(const core::snapshot& s) const override;
  [[nodiscard]] std::string_view name() const override { return "single-fault"; }
};

}  // namespace gather::baselines
