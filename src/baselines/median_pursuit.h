// Geometric-median pursuit baseline.
//
// Every robot moves towards the geometric median (Weber point) computed
// numerically by Weiszfeld iteration.  The paper's Sec. I observes that if
// the Weber point could be computed, gathering would be trivial because it is
// invariant under straight moves towards it (Lemma 3.2) -- but no finite
// algorithm computes it for arbitrary configurations.  This baseline shows
// what the *approximate* version buys: the iteratively-approximated median
// drifts between rounds, so the robots converge but need not form and hold an
// exact multiplicity point, and termination (Def. 9) is not guaranteed.
#pragma once

#include "core/algorithm.h"

namespace gather::baselines {

class median_pursuit final : public core::gathering_algorithm {
 public:
  [[nodiscard]] core::vec2 destination(const core::snapshot& s) const override;
  [[nodiscard]] std::string_view name() const override { return "median-pursuit"; }
};

}  // namespace gather::baselines
