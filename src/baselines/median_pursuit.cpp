#include "baselines/median_pursuit.h"

#include "config/weber.h"

namespace gather::baselines {

core::vec2 median_pursuit::destination(const core::snapshot& s) const {
  if (s.observed.is_gathered()) return s.self;
  const auto median = config::geometric_median_weiszfeld(s.observed);
  return median ? *median : s.self;
}

}  // namespace gather::baselines
