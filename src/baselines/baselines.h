// Umbrella header for the baseline algorithms (system S5 in DESIGN.md).
#pragma once

#include "baselines/center_of_gravity.h"
#include "baselines/median_pursuit.h"
#include "baselines/single_fault_gather.h"
