#include "baselines/single_fault_gather.h"

#include <algorithm>
#include <vector>

#include "config/classify.h"
#include "geometry/predicates.h"

namespace gather::baselines {

using config::occupied_point;

core::vec2 single_fault_gather::destination(const core::snapshot& s) const {
  const config::configuration& c = s.observed;
  const geom::tol& t = c.tolerance();
  if (c.is_gathered()) return s.self;

  const config::classification cls = config::classify(c);
  if (cls.cls == config::config_class::multiple) {
    const core::vec2 target = *cls.target;
    if (t.same_point(s.self, target)) return s.self;
    // Move only when the path is free; otherwise wait for the robots ahead
    // to clear -- the ordering that a second crash turns into a deadlock.
    for (const occupied_point& o : c.occupied()) {
      if (geom::in_open_segment(o.position, s.self, target, t)) return s.self;
    }
    return target;
  }

  // No unique multiplicity yet: designate exactly two movers -- the two
  // occupied locations closest to the center of the smallest enclosing
  // circle (ties broken by position for determinism).
  const core::vec2 goal = c.sec().center;
  std::vector<const occupied_point*> order;
  order.reserve(c.occupied().size());
  for (const occupied_point& o : c.occupied()) {
    // Robots already at the goal have arrived; they are not movers.
    if (!t.same_point(o.position, goal)) order.push_back(&o);
  }
  std::sort(order.begin(), order.end(),
            [&](const occupied_point* a, const occupied_point* b) {
              const double da = geom::distance(a->position, goal);
              const double db = geom::distance(b->position, goal);
              if (da != db) return da < db;
              return a->position < b->position;
            });
  const std::size_t movers = std::min<std::size_t>(2, order.size());
  for (std::size_t i = 0; i < movers; ++i) {
    if (t.same_point(order[i]->position, s.self)) return goal;
  }
  return s.self;  // everyone else waits
}

}  // namespace gather::baselines
