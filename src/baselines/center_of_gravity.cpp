#include "baselines/center_of_gravity.h"

namespace gather::baselines {

core::vec2 center_of_gravity::destination(const core::snapshot& s) const {
  core::vec2 sum{};
  for (const config::occupied_point& o : s.observed.occupied()) {
    sum += static_cast<double>(o.multiplicity) * o.position;
  }
  return sum / static_cast<double>(s.observed.size());
}

}  // namespace gather::baselines
