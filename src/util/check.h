// GATHER_CHECK: contract macros for the simulator's geometric and
// conservation invariants.
//
// The paper's correctness argument leans on facts the code re-derives every
// round: sec(C) contains every point (Def. 2 anchors views on its center),
// CH(Q) is a counter-clockwise convex polygon (the linear/side-step case
// analysis walks its boundary), and robots are conserved round to round
// (crashed robots stay put; nobody is created or destroyed).  Compiling with
// -DGATHER_CHECK_INVARIANTS=ON (the `checked` CMake preset) turns these into
// hard asserts that abort with a file:line diagnostic; in regular builds they
// compile to nothing and the condition is not evaluated.
#pragma once

#ifdef GATHER_CHECK_INVARIANTS

#include <cstdio>
#include <cstdlib>

namespace gather::detail {

[[noreturn]] inline void check_fail(const char* cond, const char* what,
                                    const char* file, int line) {
  std::fprintf(stderr, "GATHER_CHECK failed: %s\n  invariant: %s\n  at %s:%d\n",
               cond, what, file, line);
  std::abort();
}

}  // namespace gather::detail

#define GATHER_CHECK(cond, what)                                        \
  ((cond) ? static_cast<void>(0)                                        \
          : ::gather::detail::check_fail(#cond, what, __FILE__, __LINE__))

#else

#define GATHER_CHECK(cond, what) static_cast<void>(0)

#endif
