// One stringification code path for the project's enums.
//
// Each enum header specializes `gather::enum_descriptor<E>` with a constexpr
// `entries` table of {value, name} pairs; `gather::enum_name(e)` is then the
// single lookup every `to_string` / `operator<<` / JSONL writer goes through,
// so a renamed label changes everywhere at once.  Header-only, no deps.
#pragma once

#include <string_view>
#include <utility>

namespace gather {

/// Specialize per enum with a static constexpr iterable `entries` of
/// {E, std::string_view} pairs (e.g. a std::array<std::pair<...>, N>).
template <class E>
struct enum_descriptor;

/// The canonical name of `e`, or "?" for values missing from the table.
template <class E>
[[nodiscard]] constexpr std::string_view enum_name(E e) {
  for (const auto& [value, name] : enum_descriptor<E>::entries) {
    if (value == e) return name;
  }
  return "?";
}

/// Reverse lookup: the enum value named `name`, or `fallback` when unknown.
template <class E>
[[nodiscard]] constexpr E enum_from_name(std::string_view name, E fallback) {
  for (const auto& [value, n] : enum_descriptor<E>::entries) {
    if (n == name) return value;
  }
  return fallback;
}

}  // namespace gather
