// LSD radix sort for (64-bit key, 32-bit payload) records.
//
// The view pipeline sorts a few hundred angle records per view, millions of
// times per campaign; std::sort's comparison branches mispredict heavily on
// random doubles, so a byte-wise least-significant-digit radix pass is
// measurably faster from roughly a hundred elements up.  The sort is stable,
// which callers rely on for deterministic tie order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace gather::util {

/// One sortable record: ascending by `key`, stable on ties.
struct key_idx {
  std::uint64_t key;
  std::uint32_t idx;
};

/// Stable ascending sort of `a` by key.  `tmp` is caller-owned scratch
/// (resized as needed) so steady-state calls allocate nothing.  Byte passes
/// whose digit is constant across all keys are skipped.
inline void radix_sort_key_idx(std::vector<key_idx>& a,
                               std::vector<key_idx>& tmp) {
  const std::size_t n = a.size();
  if (n < 2) return;
  tmp.resize(n);
  // One read pass fills all eight digit histograms.
  std::uint32_t hist[8][256] = {};
  for (const key_idx& e : a) {
    std::uint64_t k = e.key;
    for (int b = 0; b < 8; ++b) {
      ++hist[b][k & 0xFF];
      k >>= 8;
    }
  }
  key_idx* src = a.data();
  key_idx* dst = tmp.data();
  for (int b = 0; b < 8; ++b) {
    std::uint32_t* h = hist[b];
    // A digit taken by every key means the pass is the identity permutation.
    if (h[(src[0].key >> (8 * b)) & 0xFF] == n) continue;
    std::uint32_t sum = 0;
    for (int d = 0; d < 256; ++d) {
      const std::uint32_t count = h[d];
      h[d] = sum;
      sum += count;
    }
    for (std::size_t i = 0; i < n; ++i) {
      dst[h[(src[i].key >> (8 * b)) & 0xFF]++] = src[i];
    }
    key_idx* t = src;
    src = dst;
    dst = t;
  }
  if (src != a.data()) {
    for (std::size_t i = 0; i < n; ++i) a[i] = src[i];
  }
}

}  // namespace gather::util
