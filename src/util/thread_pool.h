// Fixed-size thread pool (shared by the S8 runner and the intra-round
// parallel kernels in src/config).
//
// The pool owns `jobs` worker threads for its whole lifetime.  Two entry
// points:
//
//   * submit(task)       -- queue one task; the returned future reports
//                           completion and propagates any exception thrown
//                           by the task.
//   * parallel_for(n,fn) -- run fn(0), ..., fn(n-1) across the pool and
//                           block until all are done.  Indices are handed
//                           out through a single atomic ticket counter, so
//                           work distribution involves no locks and -- more
//                           importantly -- no shared mutable state that
//                           could make results depend on scheduling.  The
//                           caller owns result placement by index, which is
//                           how the campaign layer and the intra-round view
//                           fill guarantee output that is byte-identical for
//                           every jobs value.
//
// With jobs == 1 the single worker consumes tickets in order, reproducing
// strictly serial execution.
//
// Header-only and dependency-free (layer rank 0) so that src/config can
// shard derived-geometry fills across it without the config layer learning
// about the runner (gather-analyze rule R8).
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace gather::util {

class thread_pool {
 public:
  /// Spawns `jobs` workers; 0 means one per hardware thread.
  explicit thread_pool(std::size_t jobs = 0) {
    const std::size_t n = jobs == 0 ? default_jobs() : jobs;
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  /// Drains every already-submitted task, then joins the workers.
  ~thread_pool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  thread_pool(const thread_pool&) = delete;
  thread_pool& operator=(const thread_pool&) = delete;

  [[nodiscard]] std::size_t size() const { return workers_.size(); }

  /// Queue one task.  The future becomes ready when the task finishes and
  /// rethrows from get() anything the task threw.
  std::future<void> submit(std::function<void()> task) {
    std::packaged_task<void()> packaged(std::move(task));
    auto future = packaged.get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.push_back(std::move(packaged));
    }
    cv_.notify_one();
    return future;
  }

  /// Run fn(i) for i in [0, count) across the pool; blocks until done.
  /// The first exception thrown by any fn(i) aborts the remaining indices
  /// and is rethrown here.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& fn) {
    if (count == 0) return;

    std::atomic<std::size_t> next{0};
    std::atomic<bool> abort{false};
    std::exception_ptr first_error;  // gather-lint: guarded_by(error_mutex)
    std::mutex error_mutex;

    auto drain = [&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= count || abort.load(std::memory_order_relaxed)) return;
        try {
          fn(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          abort.store(true, std::memory_order_relaxed);
        }
      }
    };

    const std::size_t lanes = std::min(size(), count);
    std::vector<std::future<void>> done;
    done.reserve(lanes);
    for (std::size_t l = 0; l < lanes; ++l) done.push_back(submit(drain));
    for (auto& fut : done) fut.get();
    // The futures are joined, but take the (uncontended) lock anyway: the
    // read is then unconditionally ordered after every writer's release.
    std::lock_guard<std::mutex> lock(error_mutex);
    if (first_error) std::rethrow_exception(first_error);
  }

  /// Hardware concurrency with a floor of 1.
  [[nodiscard]] static std::size_t default_jobs() {
    const unsigned hc = std::thread::hardware_concurrency();
    return hc == 0 ? 1 : hc;
  }

 private:
  void worker_loop() {
    for (;;) {
      std::packaged_task<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ set and nothing left to drain
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();  // exceptions are captured into the task's future
    }
  }

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;  // gather-lint: guarded_by(mutex_)
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;  // gather-lint: guarded_by(mutex_)
};

}  // namespace gather::util
