// Shared command-line parsing for the gather tools (header-only).
//
// Every tool used to hand-roll its own strtol/strtod/argv loop with
// slightly different failure behavior (silent atoi zeroes, inconsistent
// exit codes).  This parser defines the uniform contract once:
//
//   * flags are declared in a table (name, value placeholder, one help
//     line, handler); `--help`/`-h` output is generated from that table;
//   * an unknown flag, a missing value, or a malformed number exits 2
//     with a one-line diagnostic naming the offending flag and token;
//   * numeric parsing is strict full-token (`8x`, `--n ''` and a bare `-`
//     are errors, never a silent 0).
//
// `parse()` itself never prints or exits -- it returns a result so the
// behavior is unit-testable (tests/cli_test.cpp); tools call
// `parse_or_exit()` for the uniform exit-2 / help-on-stdout behavior.
#pragma once

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace gather::cli {

// ---------------------------------------------------------------------------
// Strict full-token numeric parsing.  Throws std::invalid_argument with a
// message naming the offending token; never silently truncates.
// ---------------------------------------------------------------------------

/// strto* skip leading whitespace; full-token parsing must not.
[[nodiscard]] inline bool leading_space(const std::string& s) {
  return !s.empty() && std::isspace(static_cast<unsigned char>(s[0])) != 0;
}

[[nodiscard]] inline std::uint64_t parse_u64(const std::string& s) {
  if (s.empty() || s[0] == '-' || s[0] == '+' || leading_space(s)) {
    throw std::invalid_argument("not an unsigned integer: '" + s + "'");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE) {
    throw std::invalid_argument("not an unsigned integer: '" + s + "'");
  }
  return static_cast<std::uint64_t>(v);
}

[[nodiscard]] inline std::size_t parse_size(const std::string& s) {
  const std::uint64_t v = parse_u64(s);
  if (v > std::numeric_limits<std::size_t>::max()) {
    throw std::invalid_argument("value out of range: '" + s + "'");
  }
  return static_cast<std::size_t>(v);
}

[[nodiscard]] inline int parse_int(const std::string& s) {
  if (s.empty() || leading_space(s)) {
    throw std::invalid_argument("not an integer: '" + s + "'");
  }
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE ||
      v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max()) {
    throw std::invalid_argument("not an integer: '" + s + "'");
  }
  return static_cast<int>(v);
}

[[nodiscard]] inline double parse_double(const std::string& s) {
  if (s.empty() || leading_space(s)) {
    throw std::invalid_argument("not a number: '" + s + "'");
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || errno == ERANGE) {
    throw std::invalid_argument("not a number: '" + s + "'");
  }
  return v;
}

// ---------------------------------------------------------------------------
// Flag-table parser.
// ---------------------------------------------------------------------------

class parser {
 public:
  /// `program` prefixes diagnostics and the help header; `summary` is the
  /// one-line description under the usage line.
  parser(std::string program, std::string summary)
      : program_(std::move(program)), summary_(std::move(summary)) {}

  using value_handler = std::function<void(const std::string&)>;

  /// Flag taking one value: `--name VALUE`.  The handler may throw
  /// std::invalid_argument (or any std::exception); the message becomes the
  /// diagnostic.
  parser& opt(std::string name, std::string value_name, std::string help,
              value_handler h) {
    flags_.push_back({std::move(name), std::move(value_name), std::move(help),
                      std::move(h), nullptr});
    return *this;
  }

  /// Boolean switch: `--name` (no value).
  parser& toggle(std::string name, std::string help, bool* target) {
    flags_.push_back({std::move(name), "", std::move(help), nullptr, target});
    return *this;
  }

  // Typed conveniences over opt(): strict full-token parsing into a target.
  parser& opt_size(std::string name, std::string help, std::size_t* t) {
    return opt(std::move(name), "N", std::move(help),
               [t](const std::string& v) { *t = parse_size(v); });
  }
  parser& opt_u64(std::string name, std::string help, std::uint64_t* t) {
    return opt(std::move(name), "N", std::move(help),
               [t](const std::string& v) { *t = parse_u64(v); });
  }
  parser& opt_int(std::string name, std::string help, int* t) {
    return opt(std::move(name), "N", std::move(help),
               [t](const std::string& v) { *t = parse_int(v); });
  }
  parser& opt_double(std::string name, std::string help, double* t) {
    return opt(std::move(name), "X", std::move(help),
               [t](const std::string& v) { *t = parse_double(v); });
  }
  parser& opt_string(std::string name, std::string value_name,
                     std::string help, std::string* t) {
    return opt(std::move(name), std::move(value_name), std::move(help),
               [t](const std::string& v) { *t = v; });
  }

  /// Accept bare (non-`--`) arguments; the handler receives (ordinal, token)
  /// and may throw to reject.  Without this, a bare argument is an error.
  parser& positionals(std::string synopsis,
                      std::function<void(std::size_t, const std::string&)> h) {
    positional_synopsis_ = std::move(synopsis);
    positional_ = std::move(h);
    return *this;
  }

  struct result {
    bool ok = true;
    bool help = false;       ///< --help / -h was given (and nothing ran)
    std::string error;       ///< one-line diagnostic when !ok
  };

  /// Parse argv.  `--help`/`-h` anywhere wins: no handler runs and
  /// result.help is set.  Otherwise handlers run left to right; the first
  /// failure (unknown flag, missing value, handler throw) stops parsing.
  /// Never prints, never exits.
  [[nodiscard]] result parse(int argc, const char* const* argv) const {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--help" || a == "-h") return {true, true, ""};
    }
    std::size_t ordinal = 0;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      const flag* f = find(a);
      if (f == nullptr) {
        if (a.rfind("--", 0) == 0 || positional_ == nullptr) {
          return {false, false, "unknown flag: " + a + " (try --help)"};
        }
        try {
          positional_(ordinal++, a);
        } catch (const std::exception& e) {
          return {false, false, a + ": " + e.what()};
        }
        continue;
      }
      if (f->target != nullptr) {
        *f->target = true;
        continue;
      }
      if (i + 1 >= argc) {
        return {false, false, f->name + ": missing value"};
      }
      try {
        f->handler(argv[++i]);
      } catch (const std::exception& e) {
        return {false, false, f->name + ": " + std::string(e.what())};
      }
    }
    return {};
  }

  /// The generated help text: usage line, summary, one aligned row per flag.
  [[nodiscard]] std::string help_text() const {
    std::string out = "usage: " + program_ + " [options]";
    if (positional_ != nullptr) out += " " + positional_synopsis_;
    out += "\n" + summary_ + "\n\noptions:\n";
    std::size_t width = 0;
    for (const flag& f : flags_) width = std::max(width, head(f).size());
    for (const flag& f : flags_) {
      const std::string h = head(f);
      out += "  " + h + std::string(width - h.size() + 2, ' ') + f.help + "\n";
    }
    out += "  --help" + std::string(width > 4 ? width - 4 : 2, ' ') +
           "this text\n";
    return out;
  }

  /// The tool-facing entry: parse; on `--help` print the generated text to
  /// stdout and exit 0; on error print `program: diagnostic` to stderr and
  /// exit 2.
  void parse_or_exit(int argc, const char* const* argv) const {
    const result r = parse(argc, argv);
    if (r.help) {
      std::fputs(help_text().c_str(), stdout);
      std::exit(0);
    }
    if (!r.ok) {
      std::fprintf(stderr, "%s: %s\n", program_.c_str(), r.error.c_str());
      std::exit(2);
    }
  }

 private:
  struct flag {
    std::string name;
    std::string value_name;  // empty for toggles
    std::string help;
    value_handler handler;   // null for toggles
    bool* target;            // non-null for toggles
  };

  [[nodiscard]] const flag* find(const std::string& name) const {
    for (const flag& f : flags_) {
      if (f.name == name) return &f;
    }
    return nullptr;
  }

  [[nodiscard]] static std::string head(const flag& f) {
    return f.value_name.empty() ? f.name : f.name + " " + f.value_name;
  }

  std::string program_;
  std::string summary_;
  std::vector<flag> flags_;
  std::string positional_synopsis_;
  std::function<void(std::size_t, const std::string&)> positional_;
};

}  // namespace gather::cli
