// Strict flat-JSON-object parsing for the campaign daemon (header-only).
//
// gather_campaignd's job protocol (docs/RUNNER.md) is one flat JSON object
// per line: string, number or boolean values only -- list-valued fields
// (workloads, deltas, ...) travel as CSV strings, matching the CLI flag
// syntax, so the daemon reuses runner/params.h verbatim.  This parser
// accepts exactly that shape and nothing else: nested objects, arrays,
// null, duplicate keys and trailing garbage are all std::invalid_argument.
// Numbers and booleans are returned as their literal token text; the caller
// parses them with the same strict converters the CLI uses (util/cli.h).
#pragma once

#include <cctype>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>

namespace gather::util {

namespace detail {

inline void skip_ws(std::string_view s, std::size_t& i) {
  while (i < s.size() &&
         (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r')) {
    ++i;
  }
}

[[nodiscard]] inline char next(std::string_view s, std::size_t& i) {
  if (i >= s.size()) throw std::invalid_argument("json: unexpected end");
  return s[i++];
}

[[nodiscard]] inline std::string parse_string(std::string_view s,
                                              std::size_t& i) {
  std::string out;
  for (;;) {
    char c = next(s, i);
    if (c == '"') return out;
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    c = next(s, i);
    switch (c) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'n': out.push_back('\n'); break;
      case 't': out.push_back('\t'); break;
      case 'r': out.push_back('\r'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      default:
        // \uXXXX would need UTF-16 handling; the protocol's field values
        // (names, paths, numbers-as-strings) never require it.
        throw std::invalid_argument("json: unsupported escape");
    }
  }
}

[[nodiscard]] inline std::string parse_scalar_token(std::string_view s,
                                                    std::size_t& i) {
  const std::size_t start = i;
  while (i < s.size() && (std::isalnum(static_cast<unsigned char>(s[i])) ||
                          s[i] == '-' || s[i] == '+' || s[i] == '.')) {
    ++i;
  }
  if (i == start) throw std::invalid_argument("json: expected value");
  return std::string(s.substr(start, i - start));
}

}  // namespace detail

/// Parse one flat JSON object into a key -> value-token map.  String values
/// are unescaped; numbers and true/false keep their literal spelling.
/// Throws std::invalid_argument on anything outside the flat-object shape.
[[nodiscard]] inline std::map<std::string, std::string> parse_flat_json(
    std::string_view s) {
  std::size_t i = 0;
  detail::skip_ws(s, i);
  if (detail::next(s, i) != '{') throw std::invalid_argument("json: expected {");
  std::map<std::string, std::string> out;
  detail::skip_ws(s, i);
  if (i < s.size() && s[i] == '}') {
    ++i;
  } else {
    for (;;) {
      detail::skip_ws(s, i);
      if (detail::next(s, i) != '"') {
        throw std::invalid_argument("json: expected key string");
      }
      std::string key = detail::parse_string(s, i);
      detail::skip_ws(s, i);
      if (detail::next(s, i) != ':') throw std::invalid_argument("json: expected :");
      detail::skip_ws(s, i);
      std::string value;
      if (i < s.size() && s[i] == '"') {
        ++i;
        value = detail::parse_string(s, i);
      } else if (i < s.size() && (s[i] == '{' || s[i] == '[')) {
        throw std::invalid_argument("json: nested values not allowed");
      } else {
        value = detail::parse_scalar_token(s, i);
        if (value == "null") throw std::invalid_argument("json: null not allowed");
      }
      if (!out.emplace(std::move(key), std::move(value)).second) {
        throw std::invalid_argument("json: duplicate key");
      }
      detail::skip_ws(s, i);
      const char c = detail::next(s, i);
      if (c == '}') break;
      if (c != ',') throw std::invalid_argument("json: expected , or }");
    }
  }
  detail::skip_ws(s, i);
  if (i != s.size()) throw std::invalid_argument("json: trailing characters");
  return out;
}

}  // namespace gather::util
