#include "config/parallel.h"

#include <cstdlib>
#include <memory>
#include <mutex>

#include "util/thread_pool.h"

namespace gather::config {

namespace {

std::mutex g_mutex;
bool g_resolved = false;  // gather-lint: guarded_by(g_mutex)
std::size_t g_jobs = 1;   // gather-lint: guarded_by(g_mutex)
std::unique_ptr<util::thread_pool> g_pool;  // gather-lint: guarded_by(g_mutex)

/// GATHER_GEOM_JOBS, read once: unset/invalid -> 1, 0 -> hardware threads.
std::size_t jobs_from_env() {
  const char* env = std::getenv("GATHER_GEOM_JOBS");
  if (env == nullptr || env[0] == '\0') return 1;
  char* end = nullptr;
  const unsigned long v = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0') return 1;
  return v == 0 ? util::thread_pool::default_jobs() : static_cast<std::size_t>(v);
}

void resolve_locked() {
  if (!g_resolved) {
    g_jobs = jobs_from_env();
    g_resolved = true;
  }
}

}  // namespace

std::size_t geometry_jobs() {
  std::lock_guard<std::mutex> lock(g_mutex);
  resolve_locked();
  return g_jobs;
}

void set_geometry_jobs(std::size_t jobs) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_resolved = true;
  g_jobs = jobs == 0 ? util::thread_pool::default_jobs() : jobs;
  g_pool.reset();  // rebuilt lazily at the new size
}

util::thread_pool* geometry_pool() {
  std::lock_guard<std::mutex> lock(g_mutex);
  resolve_locked();
  if (g_jobs <= 1) return nullptr;
  if (g_pool == nullptr || g_pool->size() != g_jobs) {
    g_pool = std::make_unique<util::thread_pool>(g_jobs);
  }
  return g_pool.get();
}

}  // namespace gather::config
