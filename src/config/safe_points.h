// Safe points (paper, Definition 8, Lemmas 4.2 and 4.3).
//
// A robot position p is *safe* when no half-line emanating from p carries
// ceil(n/2) or more robots.  Moving every robot straight towards a safe point
// can never produce the bivalent configuration B (where exactly n/2 robots
// sit at each of two points), which is why the asymmetric case of the
// algorithm only elects leaders among safe points.
#pragma once

#include <vector>

#include "config/configuration.h"

namespace gather::config {

/// The largest number of robots of `c` on a single half-line HF(p, .)
/// (robots located at `p` itself are not on any such half-line).
[[nodiscard]] int max_ray_load(const configuration& c, vec2 p);

/// Def. 8: true when every half-line from `p` carries at most
/// ceil(n/2) - 1 robots.
[[nodiscard]] bool is_safe_point(const configuration& c, vec2 p);

/// The safe occupied locations of `c`, as indices into `c.occupied()`.
[[nodiscard]] std::vector<std::size_t> safe_occupied_points(const configuration& c);

}  // namespace gather::config
