// Symmetry-canonical state keys for duplicate-state pruning.
//
// The bounded model checker (src/check) must recognize when two explored
// states are "the same" so it can prune the second one.  Two notions are
// provided:
//
//   * raw_state_key -- the exact state: the sorted multiset of snapped robot
//     positions (bit patterns) with per-robot liveness.  Two states share a
//     raw key iff they are bitwise the same multiset of (position, liveness)
//     pairs; robot indices are anonymized (the dynamics are index-free).
//
//   * canonical_state_key -- the state up to *similarity* (translation,
//     rotation, uniform scaling) with chirality preserved, quotiented exactly
//     the way the paper's view machinery does (Defs. 2-4): the distinct
//     occupied locations off the SEC center are walked in the clockwise
//     successor order, each contributing a symbol built from its quantized
//     angular gap to the cyclic successor, its quantized center distance
//     normalized by the SEC radius, its multiplicity and its crashed-robot
//     count; the symbol string is rotated to its Booth-minimal starting
//     point (geom::canonical_rotation) so any rotation of the same state
//     yields identical words.  Two states with equal canonical keys have
//     matching view multisets, and vice versa.
//
// Quantization, in tolerance terms: snapped values are chain-clustered under
// the configuration tolerance (values within eps merge, exactly like the
// view pipeline's quantizer), then bucketed on a fixed grid of 2^36 buckets
// per unit -- roughly 1.5e-11, two orders of magnitude below the 1e-9
// comparison tolerance and four above double round-off noise.  Like TLC's
// fingerprint sets, symbols are 64-bit mixes of their components; a hash
// collision (probability ~ states^2 / 2^64) could merge two genuinely
// distinct states, which is the standard, documented model-checker caveat
// (see docs/CHECKING.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "config/configuration.h"

namespace gather::config {

/// A hashable key: a flat word sequence with exact equality.
struct state_key {
  std::vector<std::uint64_t> words;
  friend bool operator==(const state_key&, const state_key&) = default;
};

struct state_key_hash {
  [[nodiscard]] std::size_t operator()(const state_key& k) const noexcept;
};

/// Similarity-canonical key of `(c, live)`.  `live` holds one flag per robot
/// in input order (empty means all live); crashed robots are folded into
/// per-location crash counts, so keys distinguish "two robots here, one
/// crashed" from "two live robots here".
[[nodiscard]] state_key canonical_state_key(const configuration& c,
                                            std::span<const std::uint8_t> live = {});

/// Exact (bitwise, index-anonymized) key of `(c, live)`.
[[nodiscard]] state_key raw_state_key(const configuration& c,
                                      std::span<const std::uint8_t> live = {});

/// Bucket a scale-free non-negative magnitude (radians, normalized length,
/// ratio) on the canonical-key grid: 2^36 buckets per unit.  Shared with the
/// checker so auxiliary key words (e.g. the delta/radius ratio) use the same
/// quantization as the geometry symbols.
[[nodiscard]] std::uint64_t quantize_scale_free(double v);

}  // namespace gather::config
