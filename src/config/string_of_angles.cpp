#include "config/string_of_angles.h"

#include <algorithm>
#include <cmath>

#include "config/derived.h"
#include "geometry/angles.h"

namespace gather::config {

namespace detail {

void angular_order_into(const configuration& c, vec2 center,
                        std::vector<angular_entry>& entries) {
  const geom::tol& t = c.tolerance();
  derived_geometry& d = c.derived();
  entries.clear();
  entries.reserve(c.size());
  std::vector<double>& thetas = d.scratch_thetas;
  thetas.clear();
  for (const occupied_point& o : c.occupied()) {
    if (t.same_point(o.position, center)) continue;
    angular_entry e;
    e.position = o.position;
    e.theta = geom::cw_angle({1.0, 0.0}, o.position - center);
    e.dist = geom::distance(o.position, center);
    thetas.push_back(e.theta);
    for (int k = 0; k < o.multiplicity; ++k) entries.push_back(e);
  }
  // Snap each entry's angle to its cluster representative so the sort below
  // uses exact comparisons (a tolerance comparator is not a strict weak
  // order).
  geom::cluster_angles_into(thetas, t.angle_eps, d.scratch_reps);
  for (angular_entry& e : entries) {
    e.theta = geom::nearest_angle_rep(e.theta, d.scratch_reps);
  }
  std::sort(entries.begin(), entries.end(),
            [](const angular_entry& a, const angular_entry& b) {
              if (a.theta != b.theta) return a.theta < b.theta;
              if (a.dist != b.dist) return a.dist < b.dist;
              return a.position < b.position;
            });
}

std::vector<angular_entry> angular_order_uncached(const configuration& c,
                                                  vec2 center) {
  std::vector<angular_entry> entries;
  angular_order_into(c, center, entries);
  return entries;
}

}  // namespace detail

std::vector<angular_entry> angular_order(const configuration& c, vec2 center) {
  return angular_order_ref(c, center).take();
}

std::vector<double> string_of_angles(const configuration& c, vec2 center) {
  const polar_ref order = angular_order_ref(c, center);
  const std::vector<angular_entry>& entries = order.entries();
  const std::size_t m = entries.size();
  std::vector<double> sa(m, 0.0);
  if (m < 2) return sa;
  for (std::size_t i = 0; i < m; ++i) {
    const angular_entry& cur = entries[i];
    const angular_entry& nxt = entries[(i + 1) % m];
    // Angles were snapped to cluster representatives, so same-ray successors
    // contribute exactly zero.
    sa[i] = (cur.theta == nxt.theta) ? 0.0 : geom::norm_angle(nxt.theta - cur.theta);
  }
  return sa;
}

int periodicity(const std::vector<double>& sa, const geom::tol& t) {
  const std::size_t m = sa.size();
  if (m < 2) return 1;
  for (std::size_t k = m; k >= 2; --k) {
    if (m % k != 0) continue;
    const std::size_t shift = m / k;
    bool ok = true;
    for (std::size_t i = 0; i < m && ok; ++i) {
      if (!t.ang_eq_mod(sa[i], sa[(i + shift) % m], geom::two_pi)) ok = false;
    }
    if (ok) return static_cast<int>(k);
  }
  return 1;
}

int regularity_about(const configuration& c, vec2 center) {
  return periodicity(string_of_angles(c, center), c.tolerance());
}

}  // namespace gather::config
