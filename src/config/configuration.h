// Robot configurations with strong multiplicity detection.
//
// A configuration (paper, Sec. II) is the multiset C = {p_1, ..., p_n} of
// robot positions.  The robots of the ATOM^M model have *strong multiplicity
// detection*: a snapshot reveals exactly how many robots sit at each point.
// This class canonicalizes a raw position multiset: positions closer than the
// tolerance are clustered and snapped to a common representative, so that
// multiplicities, U(C) and all downstream predicates are exact.
//
// Mutation reports and the derived-geometry cache
// -----------------------------------------------
// A configuration owns its point storage; the raw input multiset is only
// changed through the mutation API (`set_position`, `apply_moves`,
// `insert_robot`, `remove_robot`, `set_tol_refresh`).  Every mutator returns
// a `mutation_report` describing exactly what changed: which robots moved,
// whether the occupied-location structure changed, whether the tolerance
// changed, and which repair class the mutation fell into (`mutation_kind`).
// The report drives per-slot invalidation of the lazily computed
// derived-geometry snapshot (config/derived.h): slots that are provably
// still bit-identical survive the mutation, the rest fall back to the cold
// rebuild.  A mutation that leaves the canonical state bitwise unchanged
// (`no_op` / `cache_kept`) keeps the cache and the generation; every other
// mutation bumps the generation, so a cached value can never outlive the
// points it was computed from.
//
// The canonical state itself is updated in O(moved robots) when possible:
// an all-singleton configuration whose movers stay tolerance-isolated takes
// the delta path (per-mover sorted-array repair, Welzl-restart SEC check,
// hull-interior diameter check, collinearity witness), and every mutation
// uses a uniform spatial grid (geometry/spatial_grid.h) for clustering and
// for the multiplicity / snapping queries.  Every incremental path is pinned
// bit-identical to the cold rebuild (tests/incremental_test.cpp).
//
// The cache is per-object and not synchronized: a configuration must not be
// mutated or lazily read from two threads at once (the runner's
// one-engine-per-cell model already guarantees this).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "geometry/enclosing_circle.h"
#include "geometry/predicates.h"
#include "geometry/spatial_grid.h"
#include "geometry/tolerance.h"
#include "geometry/vec2.h"

namespace gather::config {

using geom::vec2;

struct derived_geometry;  // config/derived.h

/// One distinct occupied location together with its multiplicity.
struct occupied_point {
  vec2 position;
  int multiplicity = 0;
};

/// Repair class of a mutation, coarsest first.  Drives which derived slots
/// survive (see the table in docs/PERFORMANCE.md).
enum class mutation_kind : std::uint8_t {
  no_op,       ///< bitwise-identical input: nothing changed at all
  cache_kept,  ///< input changed but the canonical state is bit-identical
  mults_only,  ///< same locations and tolerance; only multiplicities and the
               ///< robot->location assignment changed
  delta,       ///< singleton delta: the changed occupied slots are listed,
               ///< structure-repairable slots were kept
  rebuild,     ///< cold rebuild; all derived slots dropped
};

/// What one mutation did.  Returned by every mutator; discarding it is fine
/// (the configuration is already consistent), reading it lets callers skip
/// work -- e.g. the engines skip their snap pass on `no_op` rounds.
struct mutation_report {
  mutation_kind kind = mutation_kind::rebuild;
  /// Bitwise-identical input; generation and cache untouched.
  bool no_op = false;
  /// Canonical state bitwise unchanged (implies generation untouched).
  /// True for both `no_op` and `cache_kept`.
  bool cache_kept = false;
  /// The set of occupied locations changed (positions, not multiplicities).
  bool structure_changed = true;
  /// The tolerance context changed bitwise.
  bool tol_changed = false;
  /// Number of robots whose raw position changed.
  std::size_t moved = 0;
  /// Moved robots whose new position was absorbed into a cluster with other
  /// robots (their snapped position differs from the raw input).
  std::size_t snap_merges = 0;
  /// kind == delta only: indices into occupied() of the slots holding the
  /// movers' new locations, sorted ascending.  Points into scratch owned by
  /// the configuration -- valid until the next mutation.  Empty for every
  /// other kind (rebuild means "assume everything changed").
  std::span<const std::size_t> changed_occupied{};
};

class configuration {
 public:
  configuration();

  /// Build from raw robot positions.  Positions within the tolerance derived
  /// from the point spread are identified (snapped to their centroid).
  explicit configuration(std::vector<vec2> robots);

  /// Build with an explicit tolerance context.  The tolerance is fixed: it is
  /// carried unchanged through subsequent mutations.
  configuration(std::vector<vec2> robots, geom::tol t);

  ~configuration();
  /// Copies carry the canonical state but start with a cold derived cache
  /// (slots are recomputed deterministically on demand).
  configuration(const configuration& other);
  configuration& operator=(const configuration& other);
  configuration(configuration&& other) noexcept;
  configuration& operator=(configuration&& other) noexcept;

  /// Number of robots, the paper's n.
  [[nodiscard]] std::size_t size() const { return robots_.size(); }
  [[nodiscard]] bool empty() const { return robots_.empty(); }

  /// All robot positions after snapping, in input order.
  [[nodiscard]] const std::vector<vec2>& robots() const { return robots_; }

  /// U(C): the distinct occupied locations with multiplicities, sorted
  /// lexicographically for determinism.
  [[nodiscard]] const std::vector<occupied_point>& occupied() const {
    return occupied_;
  }

  /// Number of distinct occupied locations, |U(C)|.
  [[nodiscard]] std::size_t distinct_count() const { return occupied_.size(); }

  /// Structure-of-arrays mirror of occupied(): the x (resp. y) coordinates
  /// of the distinct occupied locations, same sorted order, always
  /// distinct_count() entries.  Maintained alongside occupied_ -- the cold
  /// canonicalization fills it, the delta path repairs it in place with the
  /// same O(shift) moves -- so the batch geometry kernels
  /// (geometry/kernels.h) stream coordinates instead of gathering through
  /// occupied_point.  Invalidated like occupied() itself: any mutation may
  /// reallocate; re-fetch after mutating.
  [[nodiscard]] std::span<const double> occupied_xs() const { return occ_xs_; }
  [[nodiscard]] std::span<const double> occupied_ys() const { return occ_ys_; }

  /// mult(p): number of robots at `p` (0 when `p` is unoccupied).  Served by
  /// the spatial grid in O(1) expected (plus an O(log n) rep lookup).
  [[nodiscard]] int multiplicity(vec2 p) const;

  /// Index into occupied() of the location *bitwise* equal to `p`, or
  /// nullopt.  occupied() is kept sorted by position, so this is an O(log n)
  /// binary search on the canonical array itself -- there is no side table
  /// to build or invalidate.  (Tolerance-close but not bitwise-equal
  /// positions intentionally miss: the derived caches keyed on occupied
  /// indices are only valid for exact positions.)
  [[nodiscard]] std::optional<std::size_t> find_occupied(vec2 p) const;

  /// Index into occupied() of the first (lowest-index) location within
  /// tolerance of `p`, or nullopt.  Equivalent to a linear first-match scan
  /// over occupied() -- the array is sorted, so the first match is the
  /// lexicographically smallest matching location -- but served by the
  /// spatial grid in O(1) expected.
  [[nodiscard]] std::optional<std::size_t> first_occupied_match(vec2 p) const;

  /// Index into occupied() of the location nearest to `p` by Euclidean
  /// distance (ties towards the lexicographically smaller location), or
  /// nullopt for an empty configuration.  Grid ring search: O(1) expected
  /// for query points near the swarm.
  [[nodiscard]] std::optional<std::size_t> nearest_occupied(vec2 p) const;

  /// The snapped representative of location `p`, or `p` itself if unoccupied.
  [[nodiscard]] vec2 snapped(vec2 p) const;

  /// The shared tolerance context (length scale = configuration diameter).
  [[nodiscard]] const geom::tol& tolerance() const { return tol_; }

  /// True when all robots lie on one line (within tolerance); configurations
  /// with fewer than three distinct points are linear.
  [[nodiscard]] bool is_linear() const { return linear_; }

  /// sec(C): smallest enclosing circle of U(C).
  [[nodiscard]] const geom::circle& sec() const { return sec_; }

  /// Largest pairwise distance between occupied locations.
  [[nodiscard]] double diameter() const { return diameter_; }

  /// Sum of distances from `p` to every robot (counting multiplicity) --
  /// the objective the Weber point minimizes.
  [[nodiscard]] double sum_distances(vec2 p) const;

  /// True when all robots occupy a single point.
  [[nodiscard]] bool is_gathered() const { return occupied_.size() <= 1; }

  // -- mutation API ----------------------------------------------------------
  // Every mutator recanonicalizes (incrementally when it can prove bitwise
  // equivalence with the cold rebuild) and returns a mutation_report.  The
  // generation is bumped unless the canonical state is bitwise unchanged.

  /// Replace the raw (pre-snap) position of robot `i`.  A bitwise-identical
  /// position is a no-op.
  mutation_report set_position(std::size_t i, vec2 p);

  /// Replace the whole raw position multiset, e.g. with the outcome of one
  /// simulation round.  When `raw` is bitwise identical to the current raw
  /// input this is a no-op that keeps the cache warm (the canonical state is
  /// a deterministic function of the input).  Capacity is reused: steady
  /// state re-application allocates nothing.
  mutation_report apply_moves(const std::vector<vec2>& raw);

  /// `apply_moves` with a caller-supplied candidate set: `moved_hint[i] != 0`
  /// marks robots that may have moved; unhinted entries are trusted to be
  /// bitwise unchanged (verified under GATHER_CHECK_INVARIANTS), so the
  /// change scan does O(|hinted|) position compares plus one byte test per
  /// robot for the mask walk itself (an O(n) floor, documented in
  /// docs/PERFORMANCE.md).  The engines pass their per-round write mask
  /// here.  `moved_hint` must be empty or of size n.
  mutation_report apply_moves(const std::vector<vec2>& raw,
                              std::span<const std::uint8_t> moved_hint);

  /// Append one robot at raw position `p`.
  mutation_report insert_robot(vec2 p);

  /// Remove robot `i` (input-order index).
  mutation_report remove_robot(std::size_t i);

  /// Switch the tolerance policy to per-mutation refresh: after every
  /// mutation the tolerance is recomputed from the new raw points
  /// (geom::tol::for_points) with its absolute floor raised to at least
  /// `abs_floor`.  This is the engines' policy: the model's delta gives the
  /// run an absolute length scale (see sim::engine).  Recanonicalizes.
  mutation_report set_tol_refresh(double abs_floor);

  /// Mutation counter: bumped on every mutation that changes the canonical
  /// state.  Two reads of any derived quantity under one generation return
  /// identical bits.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  /// The lazily computed derived-geometry slots for this generation.
  /// Internal to src/config (the classify/weber/views/safe-point wrappers);
  /// callers elsewhere use those wrappers -- direct access outside src/config
  /// is rejected by gather-lint rule R5.
  [[nodiscard]] derived_geometry& derived() const;

 private:
  enum class tol_policy : std::uint8_t {
    spread_scaled,  ///< default: tol from the input spread, scale := diameter
    fixed,          ///< explicit tolerance carried through mutations
    refreshed,      ///< recomputed per mutation with a floored abs_floor
  };

  struct cluster {
    vec2 sum{};
    int count = 0;
    [[nodiscard]] vec2 centroid() const {
      return sum / static_cast<double>(count);
    }
  };

  // Input bounding box / magnitude, mirrored from geom::tol::for_points so
  // the delta path can prove in O(moved) that the refreshed tolerance is
  // bitwise unchanged (movers strictly interior to the box cannot shift it).
  struct input_bounds {
    double lo_x = 0, hi_x = 0, lo_y = 0, hi_y = 0, mag = 0;
    bool valid = false;
  };

  void recompute_bounds();            // bounds_ from input_ (for_points mirror)
  [[nodiscard]] geom::tol tol_from_bounds() const;
  void refresh_tol();                 // recompute tol_ from input_ per policy
  void cluster_and_sort();            // greedy clustering -> robots_/occupied_
  void derive_scalars();              // diameter/hull, sec, collinearity, grid
  void rebuild_after_input_change(mutation_report& rep);
  [[nodiscard]] bool try_delta(mutation_report& rep);
  void compute_diameter_and_hull();
  void bump_and_invalidate(const mutation_report& rep);

  std::vector<vec2> input_;               // raw positions, pre-canonicalize
  std::vector<vec2> robots_;              // snapped, input order
  std::vector<occupied_point> occupied_;  // sorted by position
  std::vector<double> occ_xs_;            // SoA mirror of occupied_ positions
  std::vector<double> occ_ys_;
  geom::tol tol_;
  geom::tol cluster_tol_;  // the tol the greedy clustering pass actually used
  geom::circle sec_;
  double diameter_ = 0.0;
  bool linear_ = true;
  tol_policy policy_ = tol_policy::spread_scaled;
  double refresh_floor_ = 0.0;  // tol_policy::refreshed only
  std::uint64_t generation_ = 0;
  mutable std::unique_ptr<derived_geometry> derived_;

  // Delta-path witnesses, refreshed by every canonicalization.
  geom::spatial_grid occupied_grid_;  // occupied locations, final-tol cells
  input_bounds bounds_;
  std::size_t sec_violator_ = 0;  // last top-level Welzl restart index
  geom::collinear_witness collinear_witness_;
  std::vector<vec2> diam_hull_;  // exact hull (CCW); empty when U <= 64

  // Canonicalization scratch (capacity reused across mutations).
  std::vector<cluster> scratch_clusters_;
  std::vector<std::size_t> scratch_assign_;
  std::vector<vec2> scratch_distinct_;
  geom::spatial_grid scratch_cluster_grid_;
  std::vector<std::size_t> scratch_changed_;       // K: moved input indices
  std::vector<vec2> scratch_old_pos_;              // movers' old raw inputs
  std::vector<vec2> scratch_new_pos_;              // movers' new raw inputs
  std::vector<std::size_t> scratch_handles_;       // movers' grid handles
  std::vector<std::size_t> scratch_handles_sorted_;
  std::vector<std::size_t> scratch_changed_slots_; // report span storage
  std::vector<occupied_point> scratch_prev_occupied_;
  std::vector<vec2> scratch_prev_robots_;
};

}  // namespace gather::config
