// Robot configurations with strong multiplicity detection.
//
// A configuration (paper, Sec. II) is the multiset C = {p_1, ..., p_n} of
// robot positions.  The robots of the ATOM^M model have *strong multiplicity
// detection*: a snapshot reveals exactly how many robots sit at each point.
// This class canonicalizes a raw position multiset: positions closer than the
// tolerance are clustered and snapped to a common representative, so that
// multiplicities, U(C) and all downstream predicates are exact.
//
// Mutation and the derived-geometry cache
// ---------------------------------------
// A configuration owns its point storage; the raw input multiset is only
// changed through the invalidating mutation API (`set_position`,
// `apply_moves`, `insert_robot`, `remove_robot`).  Every mutation bumps the
// generation counter and atomically invalidates the lazily computed
// derived-geometry snapshot (hull, Weber point, views, classification, ...;
// see config/derived.h), so a cached value can never outlive the points it
// was computed from.  `apply_moves` with a bitwise-identical input is a
// no-op: the canonical state is a deterministic function of the input, so
// the cache (and the generation) are provably still valid.
//
// The cache is per-object and not synchronized: a configuration must not be
// mutated or lazily read from two threads at once (the runner's
// one-engine-per-cell model already guarantees this).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "geometry/enclosing_circle.h"
#include "geometry/tolerance.h"
#include "geometry/vec2.h"

namespace gather::config {

using geom::vec2;

struct derived_geometry;  // config/derived.h

/// One distinct occupied location together with its multiplicity.
struct occupied_point {
  vec2 position;
  int multiplicity = 0;
};

class configuration {
 public:
  configuration();

  /// Build from raw robot positions.  Positions within the tolerance derived
  /// from the point spread are identified (snapped to their centroid).
  explicit configuration(std::vector<vec2> robots);

  /// Build with an explicit tolerance context.  The tolerance is fixed: it is
  /// carried unchanged through subsequent mutations.
  configuration(std::vector<vec2> robots, geom::tol t);

  ~configuration();
  /// Copies carry the canonical state but start with a cold derived cache
  /// (slots are recomputed deterministically on demand).
  configuration(const configuration& other);
  configuration& operator=(const configuration& other);
  configuration(configuration&& other) noexcept;
  configuration& operator=(configuration&& other) noexcept;

  /// Number of robots, the paper's n.
  [[nodiscard]] std::size_t size() const { return robots_.size(); }
  [[nodiscard]] bool empty() const { return robots_.empty(); }

  /// All robot positions after snapping, in input order.
  [[nodiscard]] const std::vector<vec2>& robots() const { return robots_; }

  /// U(C): the distinct occupied locations with multiplicities, sorted
  /// lexicographically for determinism.
  [[nodiscard]] const std::vector<occupied_point>& occupied() const {
    return occupied_;
  }

  /// Number of distinct occupied locations, |U(C)|.
  [[nodiscard]] std::size_t distinct_count() const { return occupied_.size(); }

  /// mult(p): number of robots at `p` (0 when `p` is unoccupied).
  [[nodiscard]] int multiplicity(vec2 p) const;

  /// Index into occupied() of the location *bitwise* equal to `p`, or
  /// nullopt.  occupied() is kept sorted by position, so this is an O(log n)
  /// binary search on the canonical array itself -- there is no side table
  /// to build or invalidate.  (Tolerance-close but not bitwise-equal
  /// positions intentionally miss: the derived caches keyed on occupied
  /// indices are only valid for exact positions.)
  [[nodiscard]] std::optional<std::size_t> find_occupied(vec2 p) const;

  /// The snapped representative of location `p`, or `p` itself if unoccupied.
  [[nodiscard]] vec2 snapped(vec2 p) const;

  /// The shared tolerance context (length scale = configuration diameter).
  [[nodiscard]] const geom::tol& tolerance() const { return tol_; }

  /// True when all robots lie on one line (within tolerance); configurations
  /// with fewer than three distinct points are linear.
  [[nodiscard]] bool is_linear() const { return linear_; }

  /// sec(C): smallest enclosing circle of U(C).
  [[nodiscard]] const geom::circle& sec() const { return sec_; }

  /// Largest pairwise distance between occupied locations.
  [[nodiscard]] double diameter() const { return diameter_; }

  /// Sum of distances from `p` to every robot (counting multiplicity) --
  /// the objective the Weber point minimizes.
  [[nodiscard]] double sum_distances(vec2 p) const;

  /// True when all robots occupy a single point.
  [[nodiscard]] bool is_gathered() const { return occupied_.size() <= 1; }

  // -- mutation API ----------------------------------------------------------
  // Every call below recanonicalizes, bumps the generation and invalidates
  // the derived cache (except the documented `apply_moves` no-op case).

  /// Replace the raw (pre-snap) position of robot `i`.
  void set_position(std::size_t i, vec2 p);

  /// Replace the whole raw position multiset, e.g. with the outcome of one
  /// simulation round.  When `raw` is bitwise identical to the current raw
  /// input this is a no-op that keeps the cache warm (the canonical state is
  /// a deterministic function of the input).  Capacity is reused: steady
  /// state re-application allocates nothing.
  void apply_moves(const std::vector<vec2>& raw);

  /// Append one robot at raw position `p`.
  void insert_robot(vec2 p);

  /// Remove robot `i` (input-order index).
  void remove_robot(std::size_t i);

  /// Switch the tolerance policy to per-mutation refresh: after every
  /// mutation the tolerance is recomputed from the new raw points
  /// (geom::tol::for_points) with its absolute floor raised to at least
  /// `abs_floor`.  This is the engines' policy: the model's delta gives the
  /// run an absolute length scale (see sim::engine).  Recanonicalizes.
  void set_tol_refresh(double abs_floor);

  /// Mutation counter: bumped on every invalidating mutation.  Two reads of
  /// any derived quantity under one generation return identical bits.
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  /// The lazily computed derived-geometry slots for this generation.
  /// Internal to src/config (the classify/weber/views/safe-point wrappers);
  /// callers elsewhere use those wrappers -- direct access outside src/config
  /// is rejected by gather-lint rule R5.
  [[nodiscard]] derived_geometry& derived() const;

 private:
  enum class tol_policy : std::uint8_t {
    spread_scaled,  ///< default: tol from the input spread, scale := diameter
    fixed,          ///< explicit tolerance carried through mutations
    refreshed,      ///< recomputed per mutation with a floored abs_floor
  };

  void canonicalize();
  void refresh();     // recompute tolerance (per policy) + canonicalize
  void invalidate();  // bump generation, clear derived slots

  struct cluster {
    vec2 sum{};
    int count = 0;
    [[nodiscard]] vec2 centroid() const {
      return sum / static_cast<double>(count);
    }
  };

  std::vector<vec2> input_;               // raw positions, pre-canonicalize
  std::vector<vec2> robots_;              // snapped, input order
  std::vector<occupied_point> occupied_;  // sorted by position
  geom::tol tol_;
  geom::circle sec_;
  double diameter_ = 0.0;
  bool linear_ = true;
  tol_policy policy_ = tol_policy::spread_scaled;
  double refresh_floor_ = 0.0;  // tol_policy::refreshed only
  std::uint64_t generation_ = 0;
  mutable std::unique_ptr<derived_geometry> derived_;
  // Canonicalization scratch (capacity reused across mutations).
  std::vector<cluster> scratch_clusters_;
  std::vector<std::size_t> scratch_assign_;
  std::vector<vec2> scratch_distinct_;
};

}  // namespace gather::config
