// Robot configurations with strong multiplicity detection.
//
// A configuration (paper, Sec. II) is the multiset C = {p_1, ..., p_n} of
// robot positions.  The robots of the ATOM^M model have *strong multiplicity
// detection*: a snapshot reveals exactly how many robots sit at each point.
// This class canonicalizes a raw position multiset: positions closer than the
// tolerance are clustered and snapped to a common representative, so that
// multiplicities, U(C) and all downstream predicates are exact.
#pragma once

#include <span>
#include <vector>

#include "geometry/enclosing_circle.h"
#include "geometry/tolerance.h"
#include "geometry/vec2.h"

namespace gather::config {

using geom::vec2;

/// One distinct occupied location together with its multiplicity.
struct occupied_point {
  vec2 position;
  int multiplicity = 0;
};

class configuration {
 public:
  configuration() = default;

  /// Build from raw robot positions.  Positions within the tolerance derived
  /// from the point spread are identified (snapped to their centroid).
  explicit configuration(std::vector<vec2> robots);

  /// Build with an explicit tolerance context.
  configuration(std::vector<vec2> robots, geom::tol t);

  /// Number of robots, the paper's n.
  [[nodiscard]] std::size_t size() const { return robots_.size(); }
  [[nodiscard]] bool empty() const { return robots_.empty(); }

  /// All robot positions after snapping, in input order.
  [[nodiscard]] const std::vector<vec2>& robots() const { return robots_; }

  /// U(C): the distinct occupied locations with multiplicities, sorted
  /// lexicographically for determinism.
  [[nodiscard]] const std::vector<occupied_point>& occupied() const { return occupied_; }

  /// Number of distinct occupied locations, |U(C)|.
  [[nodiscard]] std::size_t distinct_count() const { return occupied_.size(); }

  /// mult(p): number of robots at `p` (0 when `p` is unoccupied).
  [[nodiscard]] int multiplicity(vec2 p) const;

  /// The snapped representative of location `p`, or `p` itself if unoccupied.
  [[nodiscard]] vec2 snapped(vec2 p) const;

  /// The shared tolerance context (length scale = configuration diameter).
  [[nodiscard]] const geom::tol& tolerance() const { return tol_; }

  /// True when all robots lie on one line (within tolerance); configurations
  /// with fewer than three distinct points are linear.
  [[nodiscard]] bool is_linear() const { return linear_; }

  /// sec(C): smallest enclosing circle of U(C).
  [[nodiscard]] const geom::circle& sec() const { return sec_; }

  /// Largest pairwise distance between occupied locations.
  [[nodiscard]] double diameter() const { return diameter_; }

  /// Sum of distances from `p` to every robot (counting multiplicity) --
  /// the objective the Weber point minimizes.
  [[nodiscard]] double sum_distances(vec2 p) const;

  /// True when all robots occupy a single point.
  [[nodiscard]] bool is_gathered() const { return occupied_.size() <= 1; }

 private:
  void canonicalize();

  std::vector<vec2> robots_;             // snapped, input order
  std::vector<occupied_point> occupied_; // sorted by position
  geom::tol tol_;
  geom::circle sec_;
  double diameter_ = 0.0;
  bool linear_ = true;
  bool explicit_tol_ = false;
};

}  // namespace gather::config
