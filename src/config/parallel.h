// Deterministic intra-round parallelism for the derived-geometry fills.
//
// The bulk view fill (fill_all_view_slots) can shard its pairwise-distance
// table rows and per-observer pipelines across a thread pool.  Sharding uses
// fixed boundaries that depend only on the problem size -- never on the
// thread count or scheduling -- and every output element is written by
// exactly one shard, so the produced bytes are invariant across job counts
// (fuzzed by tests/kernel_test.cpp).
//
// The job count defaults to 1 (strictly sequential, no pool, profiling
// counters intact).  It is raised either programmatically via
// set_geometry_jobs or through the GATHER_GEOM_JOBS environment variable
// (read once on first use; 0 means one job per hardware thread).
#pragma once

#include <cstddef>

namespace gather::util {
class thread_pool;
}

namespace gather::config {

/// The configured intra-round job count (>= 1).
[[nodiscard]] std::size_t geometry_jobs();

/// Set the intra-round job count; 0 selects one job per hardware thread.
/// Takes effect on the next fill; not thread-safe against concurrent fills.
void set_geometry_jobs(std::size_t jobs);

/// The shared pool backing intra-round fills, or nullptr when the job count
/// is 1 (callers then run strictly sequentially on their own thread).
[[nodiscard]] util::thread_pool* geometry_pool();

}  // namespace gather::config
