// The derived-geometry cache behind configuration::derived().
//
// Every slot holds one expensive derived quantity of a configuration --
// convex hull, Weber point, views, string of angles, the classify verdict --
// computed lazily, at most once per mutation generation, by the public
// wrappers in classify.h / weber.h / views.h / safe_points.h / regularity.h.
// The wrappers delegate to the detail::*_uncached functions below (the
// original, cache-free computations), so a cached value is bit-identical to
// a fresh one by construction: same function, same canonical state.
//
// Invalidation: configuration's mutation API calls derived_geometry::clear()
// under the new generation.  clear() empties the slots but keeps vector
// capacity, so a simulation engine reusing one configuration across rounds
// reaches an allocation-free steady state.
//
// This header is internal to src/config: accessing derived() or this struct
// from other layers is rejected by gather-lint rule R5.  Consumers use the
// public wrappers, whose results now come from this cache automatically.
#pragma once

#include <optional>
#include <vector>

#include "config/classify.h"
#include "config/configuration.h"
#include "config/regularity.h"
#include "config/string_of_angles.h"
#include "config/views.h"
#include "config/weber.h"

namespace gather::config {

struct derived_geometry {
  std::optional<classification> verdict;
  std::optional<weber_result> weber;
  std::optional<weber_result> linear_weber;
  bool qr_ready = false;
  std::optional<quasi_regularity> qr;
  std::optional<std::vector<vec2>> hull;
  std::optional<std::vector<std::size_t>> safe_points;
  // Per-occupied-index view slots: elect_leader only looks at safe
  // candidates, so views fill individually instead of all at once.
  std::vector<view> views;
  std::vector<char> view_ready;
  std::optional<std::vector<std::vector<std::size_t>>> view_classes;
  std::optional<std::vector<angular_entry>> angles_about_center;

  /// Empty every slot, keeping vector capacity for reuse.
  void clear();
};

/// Convex hull of the distinct occupied locations (CCW, geom::convex_hull
/// order), cached per generation.
[[nodiscard]] std::vector<vec2> hull(const configuration& c);

/// The cyclic clockwise order of the robots about the center of sec(U(C))
/// (the string-of-angles base sequence, Def. 4), cached per generation.
[[nodiscard]] std::vector<angular_entry> angular_order_about_center(
    const configuration& c);

namespace detail {

// The original cache-free computations.  Public wrappers fill the cache from
// these; the equivalence suite (test_config_cache) compares the two paths
// bit for bit.
[[nodiscard]] classification classify_uncached(const configuration& c);
[[nodiscard]] weber_result weber_point_uncached(const configuration& c);
[[nodiscard]] weber_result linear_weber_uncached(const configuration& c);
[[nodiscard]] std::optional<config::quasi_regularity>
detect_quasi_regularity_uncached(const configuration& c);
[[nodiscard]] view view_of_uncached(const configuration& c, vec2 p);
[[nodiscard]] std::vector<view> all_views_uncached(const configuration& c);
[[nodiscard]] std::vector<std::vector<std::size_t>> view_classes_uncached(
    const configuration& c);
[[nodiscard]] std::vector<std::size_t> safe_occupied_points_uncached(
    const configuration& c);

}  // namespace detail

}  // namespace gather::config
