// The derived-geometry cache behind configuration::derived().
//
// Every slot holds one expensive derived quantity of a configuration --
// convex hull, Weber point, views, string of angles, the classify verdict --
// computed lazily, at most once per mutation generation, by the public
// wrappers in classify.h / weber.h / views.h / safe_points.h / regularity.h.
// The wrappers delegate to the detail::*_uncached functions below, so a
// cached value is bit-identical to a fresh one by construction: same
// function, same canonical state.
//
// Shared polar tables (PR 5): the per-occupied-point angular orders
// (`polar_orders`) are the polar table every angular consumer shares --
// safe-point scoring, quasi-regularity ray analysis and the string of angles
// all read the same cached, snapped cyclic order instead of re-clustering
// per call.  The angle-cluster scratch buffers below make the fill passes
// allocation-free in steady state.  The pre-subquadratic implementations are
// kept verbatim as detail::*_reference oracles for equivalence fuzzing and
// benchmarking (see docs/PERFORMANCE.md, "View pipeline complexity").
//
// Invalidation: configuration's mutation API hands each mutation_report to
// derived_geometry::on_mutation, which invalidates per slot: a mults_only
// mutation (same locations, same tolerance) keeps the hull slot outright and
// keeps the per-location geometry of the angular tables, marking only their
// multiplicity expansion stale (repaired in place on the next read); every
// structural mutation falls back to clear().  Slots are emptied, never
// deallocated -- the ragged tables (`views`, `polar_orders`,
// `angles_about_center`) are grow-only pools whose logical size is carried
// by their ready flags, so a simulation engine reusing one configuration
// across rounds reaches an allocation-free steady state even when the
// number of occupied locations fluctuates.
//
// This header is internal to src/config: accessing derived() or this struct
// from other layers is rejected by gather-lint rule R5.  Consumers use the
// public wrappers, whose results now come from this cache automatically.
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "config/classify.h"
#include "config/configuration.h"
#include "config/regularity.h"
#include "config/string_of_angles.h"
#include "config/views.h"
#include "config/weber.h"

namespace gather::config {

/// Cap on the occupied-center polar-table cache (`polar_orders`): with k
/// distinct locations the full cache holds k orders of ~k entries each --
/// O(k^2) memory, ~3 GB of angular_entry at k = 10^4 -- for a table whose
/// consumers (safe points, quasi-regularity) read each order a constant
/// number of times.  Beyond the cap, angular_order_ref serves occupied
/// centers as owning handles instead, trading a bounded recompute for a
/// memory footprint that stays linear in practice.
inline constexpr std::size_t polar_order_cache_cap = 2048;

struct derived_geometry {
  std::optional<classification> verdict;
  std::optional<weber_result> weber;
  std::optional<weber_result> linear_weber;
  bool qr_ready = false;
  std::optional<quasi_regularity> qr;
  std::optional<std::vector<vec2>> hull;
  std::optional<std::vector<std::size_t>> safe_points;
  // Per-occupied-index view slots: elect_leader only looks at safe
  // candidates, so views fill individually instead of all at once.  The pool
  // is grow-only (views.size() never shrinks); the logical slot count is
  // view_ready.size(), so shrinking occupancy keeps every inner vector's
  // capacity parked for the next round.
  std::vector<view> views;
  std::vector<char> view_ready;
  std::optional<std::vector<std::vector<std::size_t>>> view_classes;
  // Def. 4 order about the SEC center.  angles_state: 0 = cold, 1 = ready,
  // 2 = per-location geometry valid but the multiplicity expansion is stale
  // (on_mutation after a mults_only mutation; repaired in place on the next
  // read -- see detail::angles_about_center_slot).
  std::vector<angular_entry> angles_about_center;
  std::uint8_t angles_state = 0;
  // Shared polar table: angular_order about occupied location i, filled
  // lazily per index (safe points and quasi-regularity both walk every
  // occupied candidate, so each order is computed once and read twice).
  // Grow-only pool like `views`; the ready flags use the same 0/1/2 protocol
  // as angles_state.
  std::vector<std::vector<angular_entry>> polar_orders;
  std::vector<char> polar_order_ready;
  // sym(C) by the Booth/Z rotation kernel on the string about the SEC
  // center; filling this slot does not require computing any view.
  std::optional<int> symmetry;
  // Scratch for the angle clustering/snapping passes (contents transient;
  // capacity reused across calls and generations).
  std::vector<double> scratch_thetas;
  std::vector<double> scratch_reps;
  // Shared pairwise-distance table scratch for all_views: row i holds the
  // distances from occupied i to every occupied j (hypot is sign-symmetric,
  // so each unordered pair is computed once and mirrored).
  std::vector<double> scratch_dists;
  // Ping-pong buffer for the in-place multiplicity re-expansion repair.
  std::vector<angular_entry> scratch_entries;

  /// Empty every slot, keeping vector capacity for reuse.
  void clear();

  /// Per-slot invalidation from a mutation report.  Called by the
  /// configuration for every generation-bumping mutation (no_op/cache_kept
  /// mutations never reach here).  mults_only keeps the hull slot (its
  /// inputs -- distinct locations and tolerance -- are bitwise unchanged)
  /// and downgrades the filled angular tables to stale-mults; every other
  /// kind clears all slots.
  void on_mutation(const mutation_report& rep);
};

/// Convex hull of the distinct occupied locations (CCW, geom::convex_hull
/// order), cached per generation.
[[nodiscard]] std::vector<vec2> hull(const configuration& c);

/// The cyclic clockwise order of the robots about the center of sec(U(C))
/// (the string-of-angles base sequence, Def. 4), cached per generation.
[[nodiscard]] std::vector<angular_entry> angular_order_about_center(
    const configuration& c);

/// The cached angular order about occupied location index `i` (the shared
/// polar table).  The reference is valid until the next mutation.
[[nodiscard]] const std::vector<angular_entry>& angular_order_of_occupied(
    const configuration& c, std::size_t i);

class polar_ref;

/// Cache-routing angular order about an arbitrary center: serves the polar
/// table on an exact occupied-position match, the Def. 4 slot on an exact
/// SEC-center match, and otherwise computes into storage owned by the
/// returned handle.  A cache-aliasing handle is valid until the next
/// mutation of `c`; an owning handle is self-contained.
[[nodiscard]] polar_ref angular_order_ref(const configuration& c, vec2 center);

/// Handle to an angular order: either an alias into the derived-geometry
/// cache (valid until the next mutation -- gather-lint rule R6 tracks these
/// bindings like any other cached reference) or small owned storage for
/// centers the cache does not cover.  Which one it is is recorded, so
/// callers that want to keep the entries past a mutation know whether a copy
/// is needed (`take()` does the right thing either way).
class polar_ref {
 public:
  polar_ref() = default;

  [[nodiscard]] const std::vector<angular_entry>& entries() const {
    return aliased_ != nullptr ? *aliased_ : owned_;
  }
  /// True when entries() points into the configuration's derived cache.
  [[nodiscard]] bool aliases_cache() const { return aliased_ != nullptr; }

  [[nodiscard]] auto begin() const { return entries().begin(); }
  [[nodiscard]] auto end() const { return entries().end(); }
  [[nodiscard]] std::size_t size() const { return entries().size(); }
  [[nodiscard]] bool empty() const { return entries().empty(); }

  /// The entries as an independent vector: moves the owned storage out, or
  /// copies the cache slot (the cache is never stolen from).
  [[nodiscard]] std::vector<angular_entry> take() && {
    return aliased_ != nullptr ? *aliased_ : std::move(owned_);
  }

 private:
  friend polar_ref angular_order_ref(const configuration& c, vec2 center);
  const std::vector<angular_entry>* aliased_ = nullptr;
  std::vector<angular_entry> owned_;
};

namespace detail {

// The original cache-free computations.  Public wrappers fill the cache from
// these; the equivalence suite (test_config_cache) compares the two paths
// bit for bit.
[[nodiscard]] classification classify_uncached(const configuration& c);
[[nodiscard]] weber_result weber_point_uncached(const configuration& c);
[[nodiscard]] weber_result linear_weber_uncached(const configuration& c);
[[nodiscard]] std::optional<config::quasi_regularity>
detect_quasi_regularity_uncached(const configuration& c);
[[nodiscard]] view view_of_uncached(const configuration& c, vec2 p);
// Fill every per-index view slot that is still cold, in bulk through the
// shared pairwise-distance table (one hypot per unordered pair).  Each slot
// ends up bit-identical to what view_of_uncached would produce for it;
// all_views serves references straight from the slots afterwards.  The fill
// runs through the batch kernels (geometry/kernels.h) and, when
// config::geometry_jobs() > 1, shards table rows and observers across the
// pool with fixed boundaries -- output bytes are invariant across job
// counts and dispatch paths.
void fill_all_view_slots(const configuration& c);
// The pre-kernel bulk fill (sequential, scalar pipeline), kept verbatim as
// the equivalence oracle and bench baseline: fill_all_view_slots must leave
// every slot bit-identical to this path (fuzzed by tests/kernel_test.cpp,
// timed by bench_scaling's kernels phase).
void fill_all_view_slots_reference(const configuration& c);
[[nodiscard]] std::vector<std::vector<std::size_t>> view_classes_uncached(
    const configuration& c);
[[nodiscard]] int symmetry_uncached(const configuration& c);
[[nodiscard]] std::vector<angular_entry> angular_order_uncached(
    const configuration& c, vec2 center);
// angular_order_uncached writing into caller storage (bit-identical
// entries); the cache fill paths use this to preserve slot capacity.
void angular_order_into(const configuration& c, vec2 center,
                        std::vector<angular_entry>& out);
// The Def. 4 slot (angular order about the SEC center): fills it when cold,
// repairs the multiplicity expansion in place when stale-mults, and returns
// the slot by reference (valid until the next mutation).
[[nodiscard]] const std::vector<angular_entry>& angles_about_center_slot(
    const configuration& c);
[[nodiscard]] std::vector<std::size_t> safe_occupied_points_uncached(
    const configuration& c);

// PR 5 reference oracles: the pre-subquadratic view/symmetry pipeline kept
// verbatim (naive clustering, linear-scan snapping, tolerance-comparator
// classing, view-based symmetry).  The fast pipeline must reproduce their
// results -- bit for bit for views and angular orders, exactly for classes
// and symmetry away from tolerance boundaries (fuzzed by
// test_view_pipeline); bench_scaling times fast vs reference per phase.
// PR 10 reference oracle: the pre-divisor-driven Lemma 3.4 search (full
// angular order through the polar-table cache, first-fit residue classes,
// every m from n down to 2), kept verbatim.  The fast
// quasi_regular_about_occupied must agree with it away from eps-chain
// residue boundaries (fuzzed by tests/kernel_test.cpp); bench_scaling's
// kernels phase measures the two slopes.
[[nodiscard]] std::optional<int> quasi_regular_about_occupied_reference(
    const configuration& c, vec2 p);

[[nodiscard]] view view_of_reference(const configuration& c, vec2 p);
[[nodiscard]] std::vector<view> all_views_reference(const configuration& c);
[[nodiscard]] std::vector<std::vector<std::size_t>> view_classes_reference(
    const configuration& c);
[[nodiscard]] std::vector<std::vector<std::size_t>>
view_classes_from_views_reference(const std::vector<view>& vs,
                                  const geom::tol& t);
[[nodiscard]] int symmetry_reference(const configuration& c);
[[nodiscard]] std::vector<angular_entry> angular_order_reference(
    const configuration& c, vec2 center);

}  // namespace detail

}  // namespace gather::config
