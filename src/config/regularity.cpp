#include "config/regularity.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>
#include <vector>

#include "config/derived.h"
#include "config/string_of_angles.h"
#include "config/weber.h"
#include "geometry/angles.h"

namespace gather::config {

namespace {

/// A ray from the candidate center: direction angle and total robot load.
struct ray {
  double theta = 0.0;
  int load = 0;
};

/// Distinct rays from `center` through the robots of `c` (robots at `center`
/// excluded), directions clustered under the angle tolerance.
///
/// Ray analysis never reads distances, so this scan builds (snapped theta,
/// multiplicity) pairs directly -- the same clustering pipeline as
/// angular_order_into (per-location thetas, cluster_angles_into,
/// nearest-rep snap), minus the k hypot calls, the multiplicity expansion
/// and the polar-table cache fill.  The resulting rays are identical to
/// walking the full angular order: sorting snapped thetas gives the same
/// theta sequence (the order's dist/position tiebreaks never split a
/// theta), and accumulating each location's multiplicity in one step sums
/// the same loads its expanded entries would have contributed one by one.
/// Merging compares against the ray's first representative, exactly like
/// the order walk did (ang_eq_mod covers exact equality: distance 0).
std::vector<ray> rays_from(const configuration& c, vec2 center) {
  const geom::tol& t = c.tolerance();
  thread_local std::vector<double> thetas;
  thread_local std::vector<double> reps;
  thread_local std::vector<std::pair<double, int>> pairs;
  thetas.clear();
  pairs.clear();
  for (const occupied_point& o : c.occupied()) {
    if (t.same_point(o.position, center)) continue;
    pairs.push_back({geom::cw_angle({1.0, 0.0}, o.position - center),
                     o.multiplicity});
  }
  // One sort carries the whole pipeline: the sorted theta sequence feeds the
  // presorted clustering (bit-identical reps), the monotone merge snap
  // replaces a per-element nearest-rep binary search (bit-identical snapped
  // values, order preserved by monotonicity), and the snapped sequence is
  // already ascending, so no re-sort before the ray merge.  Pair order
  // within one snapped theta can differ from the old sort-after-snap order,
  // but ray formation only compares thetas and sums loads, so the rays are
  // identical.
  std::sort(pairs.begin(), pairs.end());
  for (const auto& [th, mult] : pairs) thetas.push_back(th);
  geom::cluster_presorted_angles_into(thetas, t.angle_eps, reps);
  geom::snap_sorted_angles(thetas, reps);
  std::vector<ray> rays;
  for (std::size_t i = 0; i < thetas.size(); ++i) {
    const double th = thetas[i];
    if (!rays.empty() && t.ang_eq_mod(rays.back().theta, th, geom::two_pi)) {
      rays.back().load += pairs[i].second;
    } else {
      rays.push_back({th, pairs[i].second});
    }
  }
  return rays;
}

/// Total fill-in robots needed to complete the rays into an m-fold
/// rotationally periodic ray structure (Lemma 3.4's sum), or -1 when the
/// rays cannot be aligned to m slots at all.
///
/// Rotation classes form by sorting the residues mod w = 2*pi/m and chain
/// clustering (gap > angle_eps splits, and the trailing chain wraps onto the
/// leading one when they touch modulo w) -- the codebase's canonical
/// tolerance rule, one O(R log R) sweep instead of the reference oracle's
/// O(R * classes) first-fit scan.  The two rules agree whenever residues are
/// either tolerance-separated or tightly co-clustered; only adversarial
/// eps-chain multisets (spacings between eps and 2*eps) can differ, which
/// the equivalence fuzz keeps clear of.
int completion_deficit(const std::vector<ray>& rays, int m, const geom::tol& t,
                       std::vector<std::pair<double, int>>& residues) {
  const double w = geom::two_pi / m;
  residues.clear();
  for (const ray& r : rays) {
    // theta in [0, 2*pi) and w > 0, so fmod lands in [0, w).
    residues.push_back({std::fmod(r.theta, w), r.load});
  }
  std::sort(residues.begin(), residues.end());
  struct cls_acc {
    int count = 0;  // occupied slots in the class
    int max_load = 0;
    int total = 0;
  };
  thread_local std::vector<cls_acc> chains;
  chains.clear();
  for (std::size_t i = 0; i < residues.size(); ++i) {
    if (i == 0 || residues[i].first - residues[i - 1].first > t.angle_eps) {
      chains.push_back({});
    }
    cls_acc& cur = chains.back();
    cur.count += 1;
    cur.max_load = std::max(cur.max_load, residues[i].second);
    cur.total += residues[i].second;
  }
  if (chains.empty()) return 0;
  if (chains.size() > 1 && (residues.front().first + w) -
                                   residues.back().first <=
                               t.angle_eps) {
    // Seam merge: the trailing chain touches the leading one modulo w.
    chains.front().count += chains.back().count;
    chains.front().max_load =
        std::max(chains.front().max_load, chains.back().max_load);
    chains.front().total += chains.back().total;
    chains.pop_back();
  }
  int deficit = 0;
  for (const cls_acc& cls : chains) {
    if (cls.count > m) return -1;  // cannot be aligned to m rotations
    deficit += m * cls.max_load - cls.total;
  }
  return deficit;
}

/// Cheap necessary condition for deficit(m) <= budget, checked before the
/// full O(R log R) deficit test.  In a completed m-fold structure every
/// occupied slot k of a rotation class with slot k+1 also occupied has a
/// class member within the chain span of theta + w; a ray without such a
/// companion marks the end of a maximal run of occupied slots, and each run
/// end is followed by a missing slot.  Summed over classes the missing
/// slots number at most the deficit (a class with `count` occupied slots
/// contributes m * max_load - total >= m - count), so when more than
/// `budget` rays lack a companion, the deficit test must fail.  Counting
/// with an early exit rejects non-periodic ray sets in O(budget * log R)
/// instead of O(R log R) -- the common case for every generic-position
/// center -- while every ray set the deficit test could accept passes
/// through.  The companion window covers the widest chain span the
/// clustering can produce ((R-1) * eps); rays whose residue sits within the
/// window of the slot grid are exempt from the count (their class may
/// legitimately straddle the residue seam, placing companions a full slot
/// away).  Like the chain clustering itself, the bound assumes rays of one
/// class occupy distinct slots, which only adversarial eps-chain multisets
/// violate -- the same regime the equivalence contract already excludes.
bool companion_prefilter(const std::vector<ray>& rays, int m, int budget,
                         const geom::tol& t) {
  const double w = geom::two_pi / m;
  const double window =
      (static_cast<double>(rays.size()) + 2.0) * t.angle_eps;
  if (window * 4.0 >= w) return true;  // window reaches the grid: no power
  const auto has_near = [&](double target) {
    const auto it = std::lower_bound(
        rays.begin(), rays.end(), target - window,
        [](const ray& r, double v) { return r.theta < v; });
    if (it != rays.end() && it->theta <= target + window) return true;
    if (target - window < 0.0 &&
        rays.back().theta >= target - window + geom::two_pi) {
      return true;
    }
    if (target + window >= geom::two_pi &&
        rays.front().theta <= target + window - geom::two_pi) {
      return true;
    }
    return false;
  };
  int lacking = 0;
  for (const ray& r : rays) {
    const double res = std::fmod(r.theta, w);
    if (res <= window || res >= w - window) continue;  // seam-ambiguous
    double target = r.theta + w;
    if (target >= geom::two_pi) target -= geom::two_pi;
    if (!has_near(target) && ++lacking > budget) return false;
  }
  return true;
}

}  // namespace

std::optional<int> quasi_regular_about_occupied(const configuration& c, vec2 p) {
  const int mult_p = c.multiplicity(p);
  if (mult_p <= 0) return std::nullopt;
  const std::vector<ray> rays = rays_from(c, p);
  if (rays.empty()) return std::nullopt;  // every robot is at p
  const int n = static_cast<int>(c.size());
  const int rc = static_cast<int>(rays.size());
  const int budget = mult_p;
  // Divisor-driven candidate degrees instead of trying every m in [2, n]:
  // each rotation class holds at most m rays, so there are at least
  // ceil(rc/m) classes, and a class with s occupied slots needs at least
  // m - s fill-ins -- hence deficit >= m * ceil(rc/m) - rc, the distance
  // from rc up to the next multiple of m.  An admissible m (deficit <=
  // mult(p)) therefore satisfies m <= mult(p)+1 or divides rc+j for some
  // j in [0, mult(p)].  Everything else fails without evaluation, cutting
  // the search to O(mult(p) + divisors) deficit tests; summed over all
  // occupied centers the budgets add to n, keeping the whole detector at
  // O(n^2 log n) (tests/kernel_test.cpp measures the slope).
  std::vector<int> cands;
  for (int m = 2; m <= std::min(n, budget + 1); ++m) cands.push_back(m);
  for (int j = 0; j <= budget; ++j) {
    const int target = rc + j;
    for (int lo = 1; lo * lo <= target; ++lo) {
      if (target % lo != 0) continue;
      if (lo >= 2 && lo <= n) cands.push_back(lo);
      const int hi = target / lo;
      if (hi >= 2 && hi <= n) cands.push_back(hi);
    }
  }
  std::sort(cands.begin(), cands.end(), std::greater<>());
  cands.erase(std::unique(cands.begin(), cands.end()), cands.end());
  thread_local std::vector<std::pair<double, int>> residues;
  for (int m : cands) {
    if (!companion_prefilter(rays, m, budget, c.tolerance())) continue;
    const int deficit = completion_deficit(rays, m, c.tolerance(), residues);
    if (deficit >= 0 && deficit <= budget) return m;
  }
  return std::nullopt;
}

namespace detail {

std::optional<config::quasi_regularity> detect_quasi_regularity_uncached(
    const configuration& c) {
  if (c.distinct_count() < 2) return std::nullopt;
  const geom::tol& t = c.tolerance();

  struct candidate {
    vec2 center;
    int degree;
    double sum_dist;
    int mult;
  };
  std::vector<candidate> cands;

  // 1. Occupied centers via the Lemma 3.4 deficit test.
  for (const occupied_point& o : c.occupied()) {
    if (auto m = quasi_regular_about_occupied(c, o.position)) {
      cands.push_back({o.position, *m, c.sum_distances(o.position), o.multiplicity});
    }
  }

  // 2. The center of the smallest enclosing circle (covers sym(C) > 1).
  // 3. The geometric median (Lemma 3.3: CQR = WP), for regular configurations
  //    whose unoccupied center is not the sec center.
  const vec2 sec_center = c.sec().center;
  std::vector<vec2> unoccupied = {sec_center};
  if (auto med = geometric_median_weiszfeld(c)) {
    if (!t.same_point(*med, sec_center)) unoccupied.push_back(*med);
  }
  for (vec2 u : unoccupied) {
    if (c.multiplicity(u) > 0) continue;  // already tried as occupied
    const int m = regularity_about(c, u);
    if (m > 1) cands.push_back({u, m, c.sum_distances(u), 0});
  }

  if (cands.empty()) return std::nullopt;
  // Deterministic, frame-invariant choice: highest degree, then most
  // Weber-like (smallest sum of distances), then highest multiplicity.
  const candidate* best = &cands.front();
  for (const candidate& cand : cands) {
    if (cand.degree != best->degree) {
      if (cand.degree > best->degree) best = &cand;
      continue;
    }
    const int cmp = t.len_cmp(cand.sum_dist, best->sum_dist);
    if (cmp < 0 || (cmp == 0 && cand.mult > best->mult)) best = &cand;
  }
  return config::quasi_regularity{best->center, best->degree};
}

// ---------------------------------------------------------------------------
// PR 10 reference oracle: the pre-divisor-driven Lemma 3.4 search, preserved
// verbatim -- full angular order (polar-table cache), first-fit residue
// classes, every m from n down to 2.  quasi_regular_about_occupied must agree
// with it away from eps-chain residue boundaries (fuzzed by
// tests/kernel_test.cpp); bench_scaling measures the two slopes.

namespace {

std::vector<ray> rays_from_reference(const configuration& c, vec2 center) {
  const geom::tol& t = c.tolerance();
  std::vector<ray> rays;
  // angular_order already snaps angles to cluster representatives; occupied
  // centers are served from the shared polar table in derived_geometry.
  for (const angular_entry& e : angular_order_ref(c, center)) {
    if (!rays.empty() && rays.back().theta == e.theta) {
      rays.back().load += 1;
    } else if (!rays.empty() && t.ang_eq_mod(rays.back().theta, e.theta, geom::two_pi)) {
      rays.back().load += 1;
    } else {
      rays.push_back({e.theta, 1});
    }
  }
  return rays;
}

int completion_deficit_reference(const std::vector<ray>& rays, int m,
                                 const geom::tol& t) {
  const double w = geom::two_pi / m;
  struct rotation_class {
    double residue = 0.0;          // representative residue in [0, w)
    std::vector<int> slot_loads;   // loads of the occupied slots
  };
  std::vector<rotation_class> classes;
  for (const ray& r : rays) {
    const double res = std::fmod(r.theta, w);
    bool placed = false;
    for (rotation_class& cls : classes) {
      double d = std::fabs(res - cls.residue);
      d = std::min(d, std::fabs(d - w));
      if (d <= t.angle_eps) {
        cls.slot_loads.push_back(r.load);
        placed = true;
        break;
      }
    }
    if (!placed) {
      classes.push_back({res, {r.load}});
    }
  }
  int deficit = 0;
  for (const rotation_class& cls : classes) {
    if (static_cast<int>(cls.slot_loads.size()) > m) return -1;  // cannot happen geometrically
    int max_load = 0, total = 0;
    for (int l : cls.slot_loads) {
      max_load = std::max(max_load, l);
      total += l;
    }
    deficit += m * max_load - total;
  }
  return deficit;
}

}  // namespace

std::optional<int> quasi_regular_about_occupied_reference(
    const configuration& c, vec2 p) {
  const int mult_p = c.multiplicity(p);
  if (mult_p <= 0) return std::nullopt;
  const std::vector<ray> rays = rays_from_reference(c, p);
  if (rays.empty()) return std::nullopt;  // every robot is at p
  const int n = static_cast<int>(c.size());
  for (int m = n; m >= 2; --m) {
    const int deficit = completion_deficit_reference(rays, m, c.tolerance());
    if (deficit >= 0 && deficit <= mult_p) return m;
  }
  return std::nullopt;
}

}  // namespace detail

std::optional<quasi_regularity> detect_quasi_regularity(const configuration& c) {
  derived_geometry& d = c.derived();
  if (!d.qr_ready) {
    d.qr = detail::detect_quasi_regularity_uncached(c);
    d.qr_ready = true;
  }
  return d.qr;
}

}  // namespace gather::config
