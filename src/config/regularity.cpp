#include "config/regularity.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "config/derived.h"
#include "config/string_of_angles.h"
#include "config/weber.h"
#include "geometry/angles.h"

namespace gather::config {

namespace {

/// A ray from the candidate center: direction angle and total robot load.
struct ray {
  double theta = 0.0;
  int load = 0;
};

/// Distinct rays from `center` through the robots of `c` (robots at `center`
/// excluded), directions clustered under the angle tolerance.
std::vector<ray> rays_from(const configuration& c, vec2 center) {
  const geom::tol& t = c.tolerance();
  std::vector<ray> rays;
  // angular_order already snaps angles to cluster representatives; occupied
  // centers are served from the shared polar table in derived_geometry.
  for (const angular_entry& e : angular_order_ref(c, center)) {
    if (!rays.empty() && rays.back().theta == e.theta) {
      rays.back().load += 1;
    } else if (!rays.empty() && t.ang_eq_mod(rays.back().theta, e.theta, geom::two_pi)) {
      rays.back().load += 1;
    } else {
      rays.push_back({e.theta, 1});
    }
  }
  return rays;
}

/// Total fill-in robots needed to complete the rays into an m-fold
/// rotationally periodic ray structure (Lemma 3.4's sum), or -1 when the
/// rays cannot be aligned to m slots at all.
int completion_deficit(const std::vector<ray>& rays, int m, const geom::tol& t) {
  const double w = geom::two_pi / m;
  struct rotation_class {
    double residue = 0.0;          // representative residue in [0, w)
    std::vector<int> slot_loads;   // loads of the occupied slots
  };
  std::vector<rotation_class> classes;
  for (const ray& r : rays) {
    const double res = std::fmod(r.theta, w);
    bool placed = false;
    for (rotation_class& cls : classes) {
      double d = std::fabs(res - cls.residue);
      d = std::min(d, std::fabs(d - w));
      if (d <= t.angle_eps) {
        cls.slot_loads.push_back(r.load);
        placed = true;
        break;
      }
    }
    if (!placed) {
      classes.push_back({res, {r.load}});
    }
  }
  int deficit = 0;
  for (const rotation_class& cls : classes) {
    if (static_cast<int>(cls.slot_loads.size()) > m) return -1;  // cannot happen geometrically
    int max_load = 0, total = 0;
    for (int l : cls.slot_loads) {
      max_load = std::max(max_load, l);
      total += l;
    }
    deficit += m * max_load - total;
  }
  return deficit;
}

}  // namespace

std::optional<int> quasi_regular_about_occupied(const configuration& c, vec2 p) {
  const int mult_p = c.multiplicity(p);
  if (mult_p <= 0) return std::nullopt;
  const std::vector<ray> rays = rays_from(c, p);
  if (rays.empty()) return std::nullopt;  // every robot is at p
  const int n = static_cast<int>(c.size());
  for (int m = n; m >= 2; --m) {
    const int deficit = completion_deficit(rays, m, c.tolerance());
    if (deficit >= 0 && deficit <= mult_p) return m;
  }
  return std::nullopt;
}

namespace detail {

std::optional<config::quasi_regularity> detect_quasi_regularity_uncached(
    const configuration& c) {
  if (c.distinct_count() < 2) return std::nullopt;
  const geom::tol& t = c.tolerance();

  struct candidate {
    vec2 center;
    int degree;
    double sum_dist;
    int mult;
  };
  std::vector<candidate> cands;

  // 1. Occupied centers via the Lemma 3.4 deficit test.
  for (const occupied_point& o : c.occupied()) {
    if (auto m = quasi_regular_about_occupied(c, o.position)) {
      cands.push_back({o.position, *m, c.sum_distances(o.position), o.multiplicity});
    }
  }

  // 2. The center of the smallest enclosing circle (covers sym(C) > 1).
  // 3. The geometric median (Lemma 3.3: CQR = WP), for regular configurations
  //    whose unoccupied center is not the sec center.
  const vec2 sec_center = c.sec().center;
  std::vector<vec2> unoccupied = {sec_center};
  if (auto med = geometric_median_weiszfeld(c)) {
    if (!t.same_point(*med, sec_center)) unoccupied.push_back(*med);
  }
  for (vec2 u : unoccupied) {
    if (c.multiplicity(u) > 0) continue;  // already tried as occupied
    const int m = regularity_about(c, u);
    if (m > 1) cands.push_back({u, m, c.sum_distances(u), 0});
  }

  if (cands.empty()) return std::nullopt;
  // Deterministic, frame-invariant choice: highest degree, then most
  // Weber-like (smallest sum of distances), then highest multiplicity.
  const candidate* best = &cands.front();
  for (const candidate& cand : cands) {
    if (cand.degree != best->degree) {
      if (cand.degree > best->degree) best = &cand;
      continue;
    }
    const int cmp = t.len_cmp(cand.sum_dist, best->sum_dist);
    if (cmp < 0 || (cmp == 0 && cand.mult > best->mult)) best = &cand;
  }
  return config::quasi_regularity{best->center, best->degree};
}

}  // namespace detail

std::optional<quasi_regularity> detect_quasi_regularity(const configuration& c) {
  derived_geometry& d = c.derived();
  if (!d.qr_ready) {
    d.qr = detail::detect_quasi_regularity_uncached(c);
    d.qr_ready = true;
  }
  return d.qr;
}

}  // namespace gather::config
