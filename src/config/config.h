// Umbrella header for the configuration calculus (system S2 in DESIGN.md).
#pragma once

#include "config/classify.h"
#include "config/configuration.h"
#include "config/regularity.h"
#include "config/safe_points.h"
#include "config/state_key.h"
#include "config/string_of_angles.h"
#include "config/views.h"
#include "config/weber.h"
