// PR 5 reference oracles: the pre-subquadratic view/symmetry pipeline, kept
// verbatim as the semantic baseline for the fast path in views.cpp.
//
// view_of_reference / all_views_reference re-cluster and re-snap per
// observer with the naive O(reps)-per-entry linear scan (O(n^3) for all
// views) and the SEC-center branch recomputes every peer's view;
// view_classes_from_views_reference sorts whole views with the tolerance
// comparator (the strict-weak-ordering hazard the canonical keys replace);
// symmetry_reference reads sym(C) off the largest class.  test_view_pipeline
// fuzzes fast-vs-reference equivalence over 1000 configurations and
// bench_scaling reports the per-phase speedup against these oracles.
#include <algorithm>
#include <cmath>

#include "config/derived.h"
#include "geometry/angles.h"

namespace gather::config {

namespace {

/// View of `p` using the explicit reference direction `ref` (non-zero) --
/// the naive per-observer pipeline.
view view_with_reference_naive(const configuration& c, vec2 p, vec2 ref) {
  const double r = std::max(c.sec().radius, 1e-300);
  view v;
  v.reserve(c.size());
  std::vector<double> raw_angles;
  for (const occupied_point& o : c.occupied()) {
    polar_entry e;
    if (c.tolerance().same_point(o.position, p)) {
      e = {0.0, 0.0};
    } else {
      e.angle = geom::cw_angle(ref, o.position - p);
      e.dist = geom::distance(p, o.position) / r;
      raw_angles.push_back(e.angle);
    }
    for (int k = 0; k < o.multiplicity; ++k) v.push_back(e);
  }
  const auto reps = geom::detail::cluster_angle_values_reference(
      std::move(raw_angles), c.tolerance().angle_eps);
  for (polar_entry& e : v) {
    if (e.dist != 0.0)  // gather-lint: allow(R3)
      e.angle = geom::detail::nearest_angle_rep_reference(e.angle, reps);
  }
  std::sort(v.begin(), v.end(), [](const polar_entry& a, const polar_entry& b) {
    if (a.angle != b.angle) return a.angle < b.angle;
    return a.dist < b.dist;
  });
  return v;
}

}  // namespace

namespace detail {

view view_of_reference(const configuration& c, vec2 p) {
  const vec2 center = c.sec().center;
  const geom::tol& t = c.tolerance();
  if (!t.same_point(p, center)) {
    return view_with_reference_naive(c, p, center - p);
  }
  view best_other;
  bool have_other = false;
  std::vector<vec2> maximizers;
  for (const occupied_point& o : c.occupied()) {
    if (t.same_point(o.position, p)) continue;
    view v = view_with_reference_naive(c, o.position, center - o.position);
    if (!have_other || compare_views(v, best_other, t) > 0) {
      best_other = std::move(v);
      have_other = true;
      maximizers.clear();
      maximizers.push_back(o.position);
    } else if (compare_views(v, best_other, t) == 0) {
      maximizers.push_back(o.position);
    }
  }
  if (!have_other) {
    return view(c.size(), polar_entry{0.0, 0.0});
  }
  view best;
  bool have = false;
  for (vec2 x : maximizers) {
    view v = view_with_reference_naive(c, p, x - p);
    if (!have || compare_views(v, best, t) > 0) {
      best = std::move(v);
      have = true;
    }
  }
  return best;
}

std::vector<view> all_views_reference(const configuration& c) {
  std::vector<view> vs;
  vs.reserve(c.distinct_count());
  for (const occupied_point& o : c.occupied())
    vs.push_back(view_of_reference(c, o.position));
  return vs;
}

std::vector<std::vector<std::size_t>> view_classes_from_views_reference(
    const std::vector<view>& vs, const geom::tol& t) {
  std::vector<std::size_t> order(vs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return compare_views(vs[a], vs[b], t) > 0;  // descending
  });
  std::vector<std::vector<std::size_t>> classes;
  for (std::size_t i : order) {
    if (!classes.empty() &&
        compare_views(vs[classes.back().front()], vs[i], t) == 0) {
      classes.back().push_back(i);
    } else {
      classes.push_back({i});
    }
  }
  return classes;
}

std::vector<std::vector<std::size_t>> view_classes_reference(
    const configuration& c) {
  return view_classes_from_views_reference(all_views_reference(c),
                                           c.tolerance());
}

int symmetry_reference(const configuration& c) {
  int best = 0;
  for (const auto& cls : view_classes_reference(c)) {
    best = std::max(best, static_cast<int>(cls.size()));
  }
  return std::max(best, 1);
}

std::vector<angular_entry> angular_order_reference(const configuration& c,
                                                   vec2 center) {
  const geom::tol& t = c.tolerance();
  std::vector<angular_entry> entries;
  entries.reserve(c.size());
  std::vector<double> thetas;
  for (const occupied_point& o : c.occupied()) {
    if (t.same_point(o.position, center)) continue;
    angular_entry e;
    e.position = o.position;
    e.theta = geom::cw_angle({1.0, 0.0}, o.position - center);
    e.dist = geom::distance(o.position, center);
    thetas.push_back(e.theta);
    for (int k = 0; k < o.multiplicity; ++k) entries.push_back(e);
  }
  const std::vector<double> reps =
      geom::detail::cluster_angle_values_reference(std::move(thetas),
                                                   t.angle_eps);
  for (angular_entry& e : entries) {
    e.theta = geom::detail::nearest_angle_rep_reference(e.theta, reps);
  }
  std::sort(entries.begin(), entries.end(),
            [](const angular_entry& a, const angular_entry& b) {
              if (a.theta != b.theta) return a.theta < b.theta;
              if (a.dist != b.dist) return a.dist < b.dist;
              return a.position < b.position;
            });
  return entries;
}

}  // namespace detail

}  // namespace gather::config
